// Snapshot subsystem tests (DESIGN.md §11).
//
// Three layers of guarantees:
//   * Codec: Writer/Reader round-trip every primitive (doubles as IEEE-754
//     bit patterns), and the Reader rejects malformed input — truncation,
//     out-of-range bools, tag desync, trailing bytes — by throwing
//     SnapshotError, never by reading out of bounds (run under ASan via the
//     sanitize job).
//   * Components: every Snapshottable satisfies the byte-stability property
//     serialize -> deserialize -> serialize == identical bytes, exercised on
//     warmed-up state (a mid-run simulator covers the SLP/TLP tables, the
//     coordinators, every baseline prefetcher, the cache + replacement
//     policies, the DRAM channel, the fault injectors and the MSHR map).
//     Fuzz-truncated payload prefixes must all be rejected cleanly.
//   * Format stability: a golden snapshot committed at tests/data/golden.snap
//     must keep decoding. If this test fails after a serialization change,
//     bump snapshot::kFormatVersion and regenerate the golden with
//     PLANARIA_WRITE_GOLDEN=1 (see SnapshotGolden below).

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "cache/replacement.hpp"
#include "cache/system_cache.hpp"
#include "check/contract.hpp"
#include "common/rng.hpp"
#include "common/set_table.hpp"
#include "common/table.hpp"
#include "core/coordinators.hpp"
#include "core/planaria.hpp"
#include "core/slp.hpp"
#include "core/tlp.hpp"
#include "dram/channel.hpp"
#include "fault/fault.hpp"
#include "prefetch/bop.hpp"
#include "prefetch/prefetcher.hpp"
#include "prefetch/simple.hpp"
#include "prefetch/sms.hpp"
#include "prefetch/spp.hpp"
#include "sim/checkpoint.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "snapshot/snapshot.hpp"
#include "trace/apps.hpp"
#include "trace/generator.hpp"

namespace planaria {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Codec primitives
// ---------------------------------------------------------------------------

TEST(SnapshotCodec, PrimitivesRoundTrip) {
  snapshot::Writer w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.b(true);
  w.b(false);
  w.f64(-0.0);
  w.f64(1.0 / 3.0);
  w.str("planaria");
  w.str("");
  w.tag(snapshot::tag4("TEST"));

  snapshot::Reader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.b());
  EXPECT_FALSE(r.b());
  const double neg_zero = r.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));  // bit pattern, not value, survives
  EXPECT_EQ(r.f64(), 1.0 / 3.0);
  EXPECT_EQ(r.str(), "planaria");
  EXPECT_EQ(r.str(), "");
  r.expect_tag(snapshot::tag4("TEST"));
  EXPECT_TRUE(r.at_end());
  r.require_end();
}

TEST(SnapshotCodec, ReaderRejectsMalformedInput) {
  {
    snapshot::Reader r(nullptr, 0);
    EXPECT_THROW(r.u8(), snapshot::SnapshotError);
  }
  {
    const std::uint8_t short_u64[] = {1, 2, 3};
    snapshot::Reader r(short_u64, sizeof short_u64);
    EXPECT_THROW(r.u64(), snapshot::SnapshotError);
  }
  {
    const std::uint8_t bad_bool[] = {2};
    snapshot::Reader r(bad_bool, sizeof bad_bool);
    EXPECT_THROW(r.b(), snapshot::SnapshotError);
  }
  {
    // String whose declared length exceeds the remaining bytes.
    snapshot::Writer w;
    w.u32(1000);
    w.u8('x');
    snapshot::Reader r(w.buffer());
    EXPECT_THROW(r.str(), snapshot::SnapshotError);
  }
  {
    snapshot::Writer w;
    w.tag(snapshot::tag4("AAAA"));
    snapshot::Reader r(w.buffer());
    EXPECT_THROW(r.expect_tag(snapshot::tag4("BBBB")),
                 snapshot::SnapshotError);
  }
  {
    snapshot::Writer w;
    w.u8(1);
    w.u8(2);
    snapshot::Reader r(w.buffer());
    r.u8();
    EXPECT_THROW(r.require_end(), snapshot::SnapshotError);  // trailing byte
  }
}

// Length-framed sections (serve's server envelope uses these to skip or
// validate per-session payloads without decoding them).

TEST(SnapshotCodec, SectionsRoundTripSkipAndNest) {
  snapshot::Writer w;
  const std::size_t outer = w.begin_section(snapshot::tag4("OUTR"));
  w.u64(7);
  const std::size_t inner = w.begin_section(snapshot::tag4("INNR"));
  w.str("nested");
  w.end_section(inner);
  w.u32(0xC0FFEE);
  w.end_section(outer);
  w.u8(0x42);  // data after the section must still line up

  // Full decode: lengths are exact.
  {
    snapshot::Reader r(w.buffer());
    const std::uint64_t outer_len = r.enter_section(snapshot::tag4("OUTR"));
    const std::size_t outer_start = r.position();
    EXPECT_EQ(r.u64(), 7u);
    const std::uint64_t inner_len = r.enter_section(snapshot::tag4("INNR"));
    const std::size_t inner_start = r.position();
    EXPECT_EQ(r.str(), "nested");
    EXPECT_EQ(r.position() - inner_start, inner_len);
    EXPECT_EQ(r.u32(), 0xC0FFEEu);
    EXPECT_EQ(r.position() - outer_start, outer_len);
    EXPECT_EQ(r.u8(), 0x42);
    r.require_end();
  }
  // Skip decode: a reader that does not understand OUTR can hop over it.
  {
    snapshot::Reader r(w.buffer());
    r.skip(r.enter_section(snapshot::tag4("OUTR")));
    EXPECT_EQ(r.u8(), 0x42);
    r.require_end();
  }
}

TEST(SnapshotCodec, SectionsRejectLiesAboutLength) {
  snapshot::Writer w;
  const std::size_t token = w.begin_section(snapshot::tag4("SECT"));
  w.u64(123);
  w.end_section(token);

  // Declared length larger than the remaining buffer: rejected at entry.
  {
    auto bytes = w.buffer();
    bytes[4] = 0xFF;  // low byte of the u64 length, little-endian
    snapshot::Reader r(bytes.data(), bytes.size());
    EXPECT_THROW(r.enter_section(snapshot::tag4("SECT")),
                 snapshot::SnapshotError);
  }
  // skip() past the end of the buffer throws instead of overrunning.
  {
    snapshot::Reader r(w.buffer());
    r.expect_tag(snapshot::tag4("SECT"));
    const std::uint64_t len = r.u64();
    EXPECT_THROW(r.skip(len + 1), snapshot::SnapshotError);
  }
  // Wrong tag at a section boundary desyncs loudly.
  {
    snapshot::Reader r(w.buffer());
    EXPECT_THROW(r.enter_section(snapshot::tag4("OTHR")),
                 snapshot::SnapshotError);
  }
}

// ---------------------------------------------------------------------------
// File envelope
// ---------------------------------------------------------------------------

class SnapshotFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "planaria-test-snapshot";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const char* name) const { return (dir_ / name).string(); }

  fs::path dir_;
};

TEST_F(SnapshotFileTest, EnvelopeRoundTripsAndIsAtomic) {
  std::vector<std::uint8_t> payload;
  for (int i = 0; i < 1000; ++i) {
    payload.push_back(static_cast<std::uint8_t>(i * 7));
  }
  snapshot::write_file(path("a.snap"), payload);
  EXPECT_EQ(snapshot::read_file(path("a.snap")), payload);
  // No temp file left behind.
  EXPECT_FALSE(fs::exists(path("a.snap") + ".tmp"));
  // Overwrite with different content: the reader must see the new bytes.
  std::vector<std::uint8_t> payload2 = {9, 9, 9};
  snapshot::write_file(path("a.snap"), payload2);
  EXPECT_EQ(snapshot::read_file(path("a.snap")), payload2);
}

TEST_F(SnapshotFileTest, RejectsMissingTruncatedAndCorruptFiles) {
  EXPECT_THROW(snapshot::read_file(path("nonexistent.snap")),
               snapshot::SnapshotError);

  std::vector<std::uint8_t> payload(256, 0x5A);
  snapshot::write_file(path("b.snap"), payload);

  // Truncation at several depths: inside the header, and inside the payload.
  for (const std::uintmax_t keep : {0u, 7u, 12u, 23u, 24u, 100u}) {
    fs::copy_file(path("b.snap"), path("trunc.snap"),
                  fs::copy_options::overwrite_existing);
    fs::resize_file(path("trunc.snap"), keep);
    EXPECT_THROW(snapshot::read_file(path("trunc.snap")),
                 snapshot::SnapshotError)
        << "accepted a file truncated to " << keep << " bytes";
  }

  // One flipped payload byte: the CRC must catch it.
  {
    std::fstream f(path("b.snap"),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(24 + 17);
    f.put(static_cast<char>(0x5A ^ 0x01));
  }
  EXPECT_THROW(snapshot::read_file(path("b.snap")), snapshot::SnapshotError);

  // Bad magic and wrong version are both rejected before any payload read.
  snapshot::write_file(path("c.snap"), payload);
  {
    std::fstream f(path("c.snap"),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(0);
    f.put('X');
  }
  EXPECT_THROW(snapshot::read_file(path("c.snap")), snapshot::SnapshotError);
  snapshot::write_file(path("d.snap"), payload);
  {
    std::fstream f(path("d.snap"),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(8);
    f.put(static_cast<char>(snapshot::kFormatVersion + 1));
  }
  EXPECT_THROW(snapshot::read_file(path("d.snap")), snapshot::SnapshotError);
}

// ---------------------------------------------------------------------------
// Component round-trip property: serialize -> deserialize -> serialize is
// byte-identical, on warmed (mid-run) state.
// ---------------------------------------------------------------------------

std::vector<trace::TraceRecord> test_trace(std::uint64_t records) {
  return trace::generate_app_trace(trace::paper_apps().front(), records);
}

/// Simulator with real mid-run state: tables populated, requests in flight,
/// DRAM queues non-empty (no finish(), so nothing has been drained).
std::unique_ptr<sim::Simulator> warmed(sim::PrefetcherKind kind,
                                       const std::vector<trace::TraceRecord>& t,
                                       std::size_t feed,
                                       const sim::SimConfig& config = {}) {
  auto s = std::make_unique<sim::Simulator>(
      config, sim::make_prefetcher_factory(kind),
      sim::prefetcher_kind_name(kind));
  s->run_sharded(t.data(), t.data() + feed);
  return s;
}

TEST(SnapshotRoundTrip, EveryPrefetcherKindIsByteStable) {
  const auto t = test_trace(12000);
  for (sim::PrefetcherKind kind : sim::all_prefetcher_kinds()) {
    SCOPED_TRACE(sim::prefetcher_kind_name(kind));
    const auto original = warmed(kind, t, 9000);
    snapshot::Writer first;
    original->save_state(first);

    auto restored = warmed(kind, t, 0);
    snapshot::Reader r(first.buffer());
    restored->load_state(r);
    r.require_end();

    snapshot::Writer second;
    restored->save_state(second);
    EXPECT_EQ(first.buffer(), second.buffer());
  }
}

TEST(SnapshotRoundTrip, ArmedFaultInjectorsAreByteStable) {
  fault::FaultPlan plan;
  plan.seed = 77;
  for (int c = 0; c < fault::kFaultClassCount; ++c) {
    plan.rate[c] = 0.02;
  }
  sim::SimConfig config;
  config.fault = plan;
  const auto t = test_trace(8000);

  check::RecoveryScope scope;  // trace corruption fires the time contract
  const auto original = warmed(sim::PrefetcherKind::kPlanaria, t, 6000, config);
  snapshot::Writer first;
  original->save_state(first);

  auto restored = warmed(sim::PrefetcherKind::kPlanaria, t, 0, config);
  snapshot::Reader r(first.buffer());
  restored->load_state(r);
  r.require_end();

  snapshot::Writer second;
  restored->save_state(second);
  EXPECT_EQ(first.buffer(), second.buffer());
}

TEST(SnapshotRoundTrip, EveryReplacementPolicyIsByteStable) {
  for (const cache::ReplacementKind kind :
       {cache::ReplacementKind::kLru, cache::ReplacementKind::kRandom,
        cache::ReplacementKind::kSrrip, cache::ReplacementKind::kDrrip}) {
    SCOPED_TRACE(static_cast<int>(kind));
    cache::CacheConfig config;
    config.size_bytes = 1 << 16;  // small slice so evictions actually happen
    config.replacement = kind;

    cache::SystemCache original(config);
    Rng rng(123);
    for (int i = 0; i < 20000; ++i) {
      const std::uint64_t block = rng.next_below(4096);
      original.access(block, rng.chance(0.3) ? AccessType::kWrite
                                             : AccessType::kRead);
      if (rng.chance(0.7)) {
        original.fill(block, rng.chance(0.5)
                                 ? cache::FillSource::kPrefetchSlp
                                 : cache::FillSource::kDemand);
      }
    }
    snapshot::Writer first;
    original.save_state(first);

    cache::SystemCache restored(config);
    snapshot::Reader r(first.buffer());
    restored.load_state(r);
    r.require_end();

    snapshot::Writer second;
    restored.save_state(second);
    EXPECT_EQ(first.buffer(), second.buffer());
  }
}

// LruPolicy is the one policy class visible in the header (the cache calls
// it through a concrete pointer on the hot path), so it gets a standalone
// round-trip in addition to the through-the-cache sweep above.
TEST(SnapshotRoundTrip, LruPolicyIsByteStableStandalone) {
  cache::LruPolicy original(64, 16);
  Rng rng(77);
  for (int i = 0; i < 5000; ++i) {
    const auto set = static_cast<std::uint32_t>(rng.next_below(64));
    const int way = static_cast<int>(rng.next_below(16));
    if (rng.chance(0.5)) {
      original.on_hit(set, way);
    } else {
      original.on_fill(set, way, rng.chance(0.3));
    }
  }
  snapshot::Writer first;
  original.save_state(first);

  cache::LruPolicy restored(64, 16);
  snapshot::Reader r(first.buffer());
  restored.load_state(r);
  r.require_end();
  // Victim choice is the policy's entire observable behaviour; the restored
  // instance must agree with the original on every set.
  for (std::uint32_t set = 0; set < 64; ++set) {
    EXPECT_EQ(original.victim(set), restored.victim(set));
  }

  snapshot::Writer second;
  restored.save_state(second);
  EXPECT_EQ(first.buffer(), second.buffer());
}

TEST(SnapshotRoundTrip, FaultInjectorResumesItsStreamsExactly) {
  const auto plan = fault::FaultPlan::single(fault::FaultClass::kPrefetchDrop,
                                            0.5, 99);
  fault::FaultInjector a(plan, 3);
  for (int i = 0; i < 1000; ++i) {
    if (a.roll(fault::FaultClass::kPrefetchDrop)) {
      a.record(fault::FaultClass::kPrefetchDrop);
    }
  }
  snapshot::Writer w;
  a.save_state(w);

  fault::FaultInjector b(plan, 3);
  snapshot::Reader r(w.buffer());
  b.load_state(r);
  r.require_end();
  EXPECT_EQ(b.injected(fault::FaultClass::kPrefetchDrop),
            a.injected(fault::FaultClass::kPrefetchDrop));
  // Both streams must continue in lockstep after the restore.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.roll(fault::FaultClass::kPrefetchDrop),
              b.roll(fault::FaultClass::kPrefetchDrop));
  }
}

TEST(SnapshotRoundTrip, SimResultSurvivesVerbatim) {
  sim::SimResult a;
  a.prefetcher = "planaria";
  a.demand_reads = 123456;
  a.amat_cycles = 87.125609134847502;
  a.ipc = 1.9999999999999998;  // adjacent representable doubles must survive
  a.data_bus_utilization = 0.3333333333333333;
  a.fault_injected_total = 42;
  a.fault_dram_stalls = 17;

  snapshot::Writer w;
  a.save_state(w);
  sim::SimResult b;
  snapshot::Reader r(w.buffer());
  b.load_state(r);
  r.require_end();
  EXPECT_TRUE(a == b);
}

// ---------------------------------------------------------------------------
// Fuzzed damage: every truncated prefix of a full simulator payload must be
// rejected with SnapshotError — never a crash, hang, or silent acceptance.
// ---------------------------------------------------------------------------

TEST(SnapshotFuzz, TruncatedPayloadsAreRejectedCleanly) {
  const auto t = test_trace(6000);
  const auto original = warmed(sim::PrefetcherKind::kPlanaria, t, 5000);
  snapshot::Writer w;
  original->save_state(w);
  const auto& full = w.buffer();
  ASSERT_GT(full.size(), 200u);

  std::vector<std::size_t> cuts;
  for (std::size_t n = 0; n < 64 && n < full.size(); ++n) cuts.push_back(n);
  for (std::size_t n = 64; n < full.size(); n += 997) cuts.push_back(n);
  cuts.push_back(full.size() - 1);

  for (const std::size_t cut : cuts) {
    auto fresh = warmed(sim::PrefetcherKind::kPlanaria, t, 0);
    snapshot::Reader r(full.data(), cut);
    EXPECT_THROW(
        {
          fresh->load_state(r);
          r.require_end();  // a prefix that "loads" must still fail framing
        },
        snapshot::SnapshotError)
        << "accepted a payload truncated to " << cut << " of " << full.size()
        << " bytes";
  }
}

TEST(SnapshotFuzz, WrongKindPayloadIsRejected) {
  const auto t = test_trace(4000);
  const auto bop = warmed(sim::PrefetcherKind::kBop, t, 3000);
  snapshot::Writer w;
  bop->save_state(w);
  auto spp = warmed(sim::PrefetcherKind::kSpp, t, 0);
  snapshot::Reader r(w.buffer());
  EXPECT_THROW(spp->load_state(r), snapshot::SnapshotError);
}

// ---------------------------------------------------------------------------
// Checkpoint/resume at the API level (the audit's crash stage covers the
// full kill matrix; this is the fast in-tree slice of it).
// ---------------------------------------------------------------------------

TEST_F(SnapshotFileTest, ResumeMatchesUninterruptedRunBitForBit) {
  const auto t = test_trace(10000);
  const auto base = sim::Simulator::run(
      sim::SimConfig{},
      sim::make_prefetcher_factory(sim::PrefetcherKind::kPlanaria), "planaria",
      t);

  // Run 6000 records, checkpoint, abandon; resume must complete identically.
  const auto part = warmed(sim::PrefetcherKind::kPlanaria, t, 6000);
  sim::CheckpointConfig ckpt;
  ckpt.dir = dir_.string();
  ckpt.every = 6000;
  sim::write_checkpoint(*part, ckpt, 6000, sim::trace_fingerprint(t));

  const auto resumed = sim::resume(
      sim::SimConfig{},
      sim::make_prefetcher_factory(sim::PrefetcherKind::kPlanaria), "planaria",
      t, ckpt.current_path());
  EXPECT_TRUE(resumed == base);

  // resume() on a damaged snapshot throws instead of falling back.
  fs::resize_file(ckpt.current_path(), 30);
  EXPECT_THROW(sim::resume(sim::SimConfig{},
                           sim::make_prefetcher_factory(
                               sim::PrefetcherKind::kPlanaria),
                           "planaria", t, ckpt.current_path()),
               snapshot::SnapshotError);
}

TEST_F(SnapshotFileTest, FingerprintMismatchForcesColdStart) {
  const auto t = test_trace(8000);
  const auto part = warmed(sim::PrefetcherKind::kPlanaria, t, 4000);
  sim::CheckpointConfig ckpt;
  ckpt.dir = dir_.string();
  ckpt.every = 4000;
  sim::write_checkpoint(*part, ckpt, 4000, sim::trace_fingerprint(t));

  // A different trace must not resume from this snapshot.
  const auto other = test_trace(8001);
  sim::RecoveryReport rep;
  const auto result = sim::run_checkpointed(
      sim::SimConfig{},
      sim::make_prefetcher_factory(sim::PrefetcherKind::kPlanaria), "planaria",
      other, ckpt, nullptr, &rep);
  EXPECT_EQ(rep.outcome, sim::RecoveryReport::Outcome::kColdStart);
  ASSERT_FALSE(rep.notes.empty());
  EXPECT_NE(rep.notes.front().find("different trace"), std::string::npos);
  const auto base = sim::Simulator::run(
      sim::SimConfig{},
      sim::make_prefetcher_factory(sim::PrefetcherKind::kPlanaria), "planaria",
      other);
  EXPECT_TRUE(result == base);
}

// Rotation boundary: write_checkpoint promotes current -> .prev *before*
// writing the new current, so a kill can land between those two steps. The
// recovery chain must then restore from .prev — one checkpoint older, but
// complete — and still finish bit-identical.

TEST_F(SnapshotFileTest, KillDuringRotationPromotionFallsBackToPrev) {
  const auto t = test_trace(10000);
  const auto base = sim::Simulator::run(
      sim::SimConfig{},
      sim::make_prefetcher_factory(sim::PrefetcherKind::kPlanaria), "planaria",
      t);

  sim::CheckpointConfig ckpt;
  ckpt.dir = dir_.string();
  ckpt.every = 4000;
  const auto part = warmed(sim::PrefetcherKind::kPlanaria, t, 4000);
  sim::write_checkpoint(*part, ckpt, 4000, sim::trace_fingerprint(t));

  // Reproduce the exact mid-rotation state of the *next* checkpoint: the
  // rename has promoted current to .prev and the process died before the
  // fresh current landed. No current file exists at restart.
  fs::rename(ckpt.current_path(), ckpt.prev_path());
  ASSERT_FALSE(fs::exists(ckpt.current_path()));

  sim::RecoveryReport rep;
  const auto result = sim::run_checkpointed(
      sim::SimConfig{},
      sim::make_prefetcher_factory(sim::PrefetcherKind::kPlanaria), "planaria",
      t, ckpt, nullptr, &rep);
  EXPECT_EQ(rep.outcome, sim::RecoveryReport::Outcome::kFellBack);
  EXPECT_EQ(rep.resumed_cursor, 4000u);
  EXPECT_EQ(rep.snapshot_path, ckpt.prev_path());
  EXPECT_TRUE(result == base);
}

TEST_F(SnapshotFileTest, DoubleKillAcrossRotationsColdStartsCleanly) {
  const auto t = test_trace(10000);
  const auto base = sim::Simulator::run(
      sim::SimConfig{},
      sim::make_prefetcher_factory(sim::PrefetcherKind::kPlanaria), "planaria",
      t);

  sim::CheckpointConfig ckpt;
  ckpt.dir = dir_.string();
  ckpt.every = 4000;
  const auto part = warmed(sim::PrefetcherKind::kPlanaria, t, 4000);
  sim::write_checkpoint(*part, ckpt, 4000, sim::trace_fingerprint(t));
  const auto later = warmed(sim::PrefetcherKind::kPlanaria, t, 8000);
  sim::write_checkpoint(*later, ckpt, 8000, sim::trace_fingerprint(t));

  // First kill: torn write of the current snapshot. Second kill: the retry
  // died mid-rotation too, tearing what .prev held. Both candidates are now
  // damaged — recovery must degrade to a cold start with one note per
  // rejected candidate, and the result must still match.
  fs::resize_file(ckpt.current_path(), fs::file_size(ckpt.current_path()) / 3);
  fs::resize_file(ckpt.prev_path(), 16);  // dies inside the file header

  sim::RecoveryReport rep;
  const auto result = sim::run_checkpointed(
      sim::SimConfig{},
      sim::make_prefetcher_factory(sim::PrefetcherKind::kPlanaria), "planaria",
      t, ckpt, nullptr, &rep);
  EXPECT_EQ(rep.outcome, sim::RecoveryReport::Outcome::kColdStart);
  EXPECT_EQ(rep.notes.size(), 2u);
  EXPECT_TRUE(result == base);

  // The recovered run re-checkpointed as it went; a third run resumes from
  // its freshly written current snapshot without drama.
  sim::RecoveryReport rep2;
  const auto again = sim::run_checkpointed(
      sim::SimConfig{},
      sim::make_prefetcher_factory(sim::PrefetcherKind::kPlanaria), "planaria",
      t, ckpt, nullptr, &rep2);
  EXPECT_EQ(rep2.outcome, sim::RecoveryReport::Outcome::kResumed);
  EXPECT_TRUE(again == base);
}

TEST_F(SnapshotFileTest, SweepCellsResumeFromPersistedResults) {
  sim::ExperimentRunner first(sim::SimConfig{}, 4000, 1);
  first.set_checkpoint_dir(dir_.string());
  const std::vector<sim::PrefetcherKind> kinds = {sim::PrefetcherKind::kNone,
                                                  sim::PrefetcherKind::kBop};
  const auto a = first.sweep(kinds);
  // Every completed cell left a validated result file behind.
  std::size_t cell_files = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    cell_files += entry.path().extension() == ".result" ? 1 : 0;
  }
  EXPECT_EQ(cell_files, trace::app_names().size() * kinds.size());

  // A second runner must reload them verbatim.
  sim::ExperimentRunner second(sim::SimConfig{}, 4000, 1);
  second.set_checkpoint_dir(dir_.string());
  const auto b = second.sweep(kinds);
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [app, per_kind] : a) {
    for (const auto& [kind_name, result] : per_kind) {
      EXPECT_TRUE(result == b.at(app).at(kind_name)) << app << "/" << kind_name;
    }
  }

  // A corrupted cell file is silently re-run, not trusted.
  const auto victim = dir_ / ("cell_" + a.begin()->first + "_none.result");
  ASSERT_TRUE(fs::exists(victim));
  fs::resize_file(victim, 10);
  sim::ExperimentRunner third(sim::SimConfig{}, 4000, 1);
  third.set_checkpoint_dir(dir_.string());
  const auto c = third.sweep(kinds);
  EXPECT_TRUE(a.begin()->second.at("none") == c.at(a.begin()->first).at("none"));
}

TEST_F(SnapshotFileTest, PoisonedSweepCellBacksOffThenReportsOthersLand) {
  // Poison exactly one cell's persistence: a directory squatting on the
  // store path's .tmp name makes every store_cell attempt for that cell
  // throw, while all other cells run and persist normally.
  const std::string app = trace::app_names().front();
  fs::create_directories(dir_ / ("cell_" + app + "_none.result.tmp"));

  sim::ExperimentRunner runner(sim::SimConfig{}, 4000, 1);
  runner.set_checkpoint_dir(dir_.string());
  const std::vector<sim::PrefetcherKind> kinds = {sim::PrefetcherKind::kNone,
                                                  sim::PrefetcherKind::kBop};
  std::vector<sim::FailureReport> failures;
  const auto grid = runner.sweep(kinds, false, &failures);

  // The grid keeps its full shape and every healthy cell has a real result.
  EXPECT_EQ(grid.size(), trace::app_names().size());
  for (const auto& [grid_app, per_kind] : grid) {
    EXPECT_EQ(per_kind.size(), kinds.size()) << grid_app;
    EXPECT_GT(per_kind.at("bop").demand_reads, 0u) << grid_app;
  }

  // Exactly one report, carrying the bounded-retry and backoff history:
  // 3 attempts = 2 scheduled backoffs, each of at least the base delay.
  ASSERT_EQ(failures.size(), 1u);
  const sim::FailureReport& report = failures.front();
  EXPECT_EQ(report.app, app);
  EXPECT_EQ(report.kind, "none");
  EXPECT_EQ(report.attempts, 3);
  EXPECT_EQ(report.backoffs, 2);
  EXPECT_GE(report.backoff_rounds, 2u * 2u);  // two waits of >= base rounds
  // The report names the failing VFS op (the squatting directory makes the
  // durable-write `.tmp` creation fail).
  EXPECT_NE(report.what.find("io: create"), std::string::npos);

  // The backoff schedule is a pure function of (cell, attempt): a rerun of
  // the same poisoned sweep files a byte-identical report.
  sim::ExperimentRunner again(sim::SimConfig{}, 4000, 1);
  again.set_checkpoint_dir(dir_.string());
  std::vector<sim::FailureReport> failures2;
  again.sweep(kinds, false, &failures2);
  ASSERT_EQ(failures2.size(), 1u);
  EXPECT_EQ(failures2.front().attempts, report.attempts);
  EXPECT_EQ(failures2.front().backoffs, report.backoffs);
  EXPECT_EQ(failures2.front().backoff_rounds, report.backoff_rounds);
}

// ---------------------------------------------------------------------------
// Golden snapshot: format stability across commits.
// ---------------------------------------------------------------------------

/// Hand-constructed deterministic trace (kept independent of the trace
/// generator so generator tuning can never invalidate the golden file).
/// Addresses walk all four channels; every 7th record is a write.
std::vector<trace::TraceRecord> golden_trace() {
  std::vector<trace::TraceRecord> out;
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  Cycle t = 0;
  for (int i = 0; i < 512; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    trace::TraceRecord rec;
    rec.address = (state >> 16) & 0xFFFFFFC0ull;  // 64B-aligned, 32-bit range
    rec.arrival = t;
    t += (state >> 58) + 1;
    rec.type = i % 7 == 0 ? AccessType::kWrite : AccessType::kRead;
    rec.device = static_cast<DeviceId>(i % static_cast<int>(DeviceId::kCount));
    out.push_back(rec);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Type coverage: every snapshottable component, exercised by name
// ---------------------------------------------------------------------------
// The simulator round-trips above cover these classes as composed state, but
// composition can mask a component whose encode/decode quietly cancels out.
// This section holds each type directly: the interface hierarchy really is
// rooted at snapshot::Snapshottable, and warmed instances of each component
// satisfy serialize -> deserialize -> serialize == identical bytes on their
// own. planaria-lint's snapshot-roundtrip rule checks every snapshottable
// class is named here.

TEST(SnapshotTypeCoverage, HierarchyIsRootedAtSnapshottable) {
  static_assert(
      std::is_base_of_v<snapshot::Snapshottable, prefetch::Prefetcher>);
  static_assert(
      std::is_base_of_v<prefetch::Prefetcher, core::PlanariaPrefetcher>);
  static_assert(std::is_base_of_v<prefetch::Prefetcher, core::SerialComposite>);
  static_assert(
      std::is_base_of_v<prefetch::Prefetcher, core::ParallelComposite>);
  static_assert(
      std::is_base_of_v<prefetch::Prefetcher, prefetch::BestOffsetPrefetcher>);
  static_assert(
      std::is_base_of_v<prefetch::Prefetcher, prefetch::StridePrefetcher>);
  static_assert(
      std::is_base_of_v<prefetch::Prefetcher, prefetch::SmsPrefetcher>);
  static_assert(std::is_base_of_v<prefetch::Prefetcher,
                                  prefetch::SignaturePathPrefetcher>);
  static_assert(
      std::is_base_of_v<prefetch::Prefetcher, prefetch::NextLinePrefetcher>);
  // ReplacementPolicy predates the Snapshottable interface but exposes the
  // same save_state/load_state pair; the suite below holds it to the same
  // byte-stability property via make_replacement.
  static_assert(std::is_abstract_v<cache::ReplacementPolicy>);
  SUCCEED();
}

namespace {

/// Deterministic synthetic demand stream: a few pages touched with a stride
/// pattern plus revisits, enough to populate AT/PT/RPT state in every
/// pattern-based prefetcher.
prefetch::DemandEvent coverage_event(int i) {
  prefetch::DemandEvent e;
  e.page = static_cast<PageNumber>(100 + (i * 7) % 13);
  e.block_in_segment = (i * 3) % 16;
  e.local_block = static_cast<std::uint64_t>(e.page) * 16 +
                  static_cast<std::uint64_t>(e.block_in_segment);
  e.now = static_cast<Cycle>(10 * i);
  e.sc_hit = (i % 3) == 0;
  return e;
}

/// Warms a prefetcher on the synthetic stream, then checks the byte-stability
/// property against a freshly constructed instance.
template <typename MakePrefetcher>
void expect_prefetcher_byte_stable(MakePrefetcher make) {
  auto original = make();
  std::vector<prefetch::PrefetchRequest> out;
  for (int i = 0; i < 2000; ++i) {
    original->on_demand(coverage_event(i), out);
    if (i % 5 == 0) {
      original->on_fill(coverage_event(i).local_block, (i % 10) == 0,
                        static_cast<Cycle>(10 * i + 7));
    }
  }

  snapshot::Writer first;
  original->save_state(first);

  auto restored = make();
  snapshot::Reader r(first.buffer());
  restored->load_state(r);
  r.require_end();

  snapshot::Writer second;
  restored->save_state(second);
  EXPECT_EQ(first.buffer(), second.buffer());
}

}  // namespace

TEST(SnapshotTypeCoverage, EveryPrefetcherImplementorIsByteStableAlone) {
  {
    SCOPED_TRACE("PlanariaPrefetcher");
    expect_prefetcher_byte_stable(
        [] { return std::make_unique<core::PlanariaPrefetcher>(); });
  }
  {
    SCOPED_TRACE("SerialComposite");
    expect_prefetcher_byte_stable(
        [] { return std::make_unique<core::SerialComposite>(); });
  }
  {
    SCOPED_TRACE("ParallelComposite");
    expect_prefetcher_byte_stable(
        [] { return std::make_unique<core::ParallelComposite>(); });
  }
  {
    SCOPED_TRACE("BestOffsetPrefetcher");
    expect_prefetcher_byte_stable(
        [] { return std::make_unique<prefetch::BestOffsetPrefetcher>(); });
  }
  {
    SCOPED_TRACE("StridePrefetcher");
    expect_prefetcher_byte_stable(
        [] { return std::make_unique<prefetch::StridePrefetcher>(); });
  }
  {
    SCOPED_TRACE("SmsPrefetcher");
    expect_prefetcher_byte_stable(
        [] { return std::make_unique<prefetch::SmsPrefetcher>(); });
  }
  {
    SCOPED_TRACE("SignaturePathPrefetcher");
    expect_prefetcher_byte_stable(
        [] { return std::make_unique<prefetch::SignaturePathPrefetcher>(); });
  }
}

TEST(SnapshotTypeCoverage, SlpAndTlpRoundTripOutsideTheCoordinators) {
  core::Slp slp;
  core::Tlp tlp;
  std::vector<prefetch::PrefetchRequest> out;
  for (int i = 0; i < 3000; ++i) {
    const prefetch::DemandEvent e = coverage_event(i);
    slp.learn(e);
    tlp.learn(e);
    if (!e.sc_hit) {
      slp.issue(e, out);
      tlp.issue(e, out);
    }
  }

  snapshot::Writer slp_first;
  slp.save_state(slp_first);
  core::Slp slp_restored;
  snapshot::Reader slp_r(slp_first.buffer());
  slp_restored.load_state(slp_r);
  slp_r.require_end();
  snapshot::Writer slp_second;
  slp_restored.save_state(slp_second);
  EXPECT_EQ(slp_first.buffer(), slp_second.buffer());

  snapshot::Writer tlp_first;
  tlp.save_state(tlp_first);
  core::Tlp tlp_restored;
  snapshot::Reader tlp_r(tlp_first.buffer());
  tlp_restored.load_state(tlp_r);
  tlp_r.require_end();
  snapshot::Writer tlp_second;
  tlp_restored.save_state(tlp_second);
  EXPECT_EQ(tlp_first.buffer(), tlp_second.buffer());
}

TEST(SnapshotTypeCoverage, LruTableRoundTripsWithExactRecency) {
  LruTable<std::uint64_t, std::uint64_t> table(8);
  for (std::uint64_t k = 0; k < 13; ++k) table.insert(k * 3, k + 100);
  // Refresh a surviving entry (the first 5 inserts were evicted) so recency
  // differs from insertion order.
  table.find(18);
  const auto encode = [](snapshot::Writer& w, const std::uint64_t& p) {
    w.u64(p);
  };
  const auto decode = [](snapshot::Reader& r) { return r.u64(); };

  snapshot::Writer first;
  table.save_state(first, encode);

  LruTable<std::uint64_t, std::uint64_t> restored(8);
  snapshot::Reader r(first.buffer());
  restored.load_state(r, decode);
  r.require_end();
  EXPECT_EQ(restored.size(), table.size());
  ASSERT_NE(restored.peek(18), nullptr);
  EXPECT_EQ(*restored.peek(18), 106u);

  snapshot::Writer second;
  restored.save_state(second, encode);
  EXPECT_EQ(first.buffer(), second.buffer());
}

TEST(SnapshotTypeCoverage, SetAssocTableRoundTripsWithExactRecency) {
  SetAssocTable<std::uint64_t, std::uint64_t> table(4, 2);
  for (std::uint64_t k = 0; k < 17; ++k) table.insert(k * 5, k + 200);
  table.find(10);
  const auto encode = [](snapshot::Writer& w, const std::uint64_t& p) {
    w.u64(p);
  };
  const auto decode = [](snapshot::Reader& r) { return r.u64(); };

  snapshot::Writer first;
  table.save_state(first, encode);

  SetAssocTable<std::uint64_t, std::uint64_t> restored(4, 2);
  snapshot::Reader r(first.buffer());
  restored.load_state(r, decode);
  r.require_end();
  EXPECT_EQ(restored.size(), table.size());

  snapshot::Writer second;
  restored.save_state(second, encode);
  EXPECT_EQ(first.buffer(), second.buffer());
}

TEST(SnapshotTypeCoverage, DramChannelRoundTripsMidFlight) {
  dram::DramConfig config;
  dram::DramChannel channel(config);
  for (int i = 0; i < 200; ++i) {
    dram::DramRequest req;
    req.local_block = static_cast<std::uint64_t>((i * 37) % 4096);
    req.arrival = static_cast<Cycle>(i * 11);
    req.is_write = (i % 7) == 0;
    req.is_prefetch = (i % 5) == 0 && !req.is_write;
    req.tag = static_cast<std::uint64_t>(i);
    channel.submit(req);
  }
  channel.advance(1500);  // mid-flight: queues are non-empty, banks are busy
  (void)channel.take_completions();

  snapshot::Writer first;
  channel.save_state(first);

  dram::DramChannel restored(config);
  snapshot::Reader r(first.buffer());
  restored.load_state(r);
  r.require_end();

  snapshot::Writer second;
  restored.save_state(second);
  EXPECT_EQ(first.buffer(), second.buffer());

  // The restored channel must also *behave* identically, not just re-encode.
  channel.drain();
  restored.drain();
  const auto a = channel.take_completions();
  const auto b = restored.take_completions();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tag, b[i].tag);
    EXPECT_EQ(a[i].finish, b[i].finish);
  }
}

TEST(SnapshotGolden, CommittedSnapshotStillDecodes) {
  const std::string golden = std::string(PLANARIA_TESTDATA_DIR) +
                             "/golden.snap";
  const auto t = golden_trace();
  constexpr std::uint64_t kGoldenCursor = 256;

  // lint: suppress(determinism) opt-in regeneration knob for the committed golden snapshot
  if (const char* write = std::getenv("PLANARIA_WRITE_GOLDEN");
      write != nullptr && *write != '\0') {
    const auto s = warmed(sim::PrefetcherKind::kPlanaria, t, kGoldenCursor);
    snapshot::Writer w;
    w.tag(snapshot::tag4("CKPT"));
    w.u64(kGoldenCursor);
    w.u64(sim::trace_fingerprint(t));
    s->save_state(w);
    snapshot::write_file(golden, w.buffer());
    GTEST_SKIP() << "golden snapshot regenerated at " << golden;
  }

  ASSERT_TRUE(fs::exists(golden))
      << "tests/data/golden.snap is missing; regenerate with "
         "PLANARIA_WRITE_GOLDEN=1";
  // Decode gate: the envelope validates, every component section loads, and
  // the resume cursor is intact. A failure here means the serialization
  // changed without a kFormatVersion bump (see snapshot.hpp's versioning
  // rule).
  auto s = warmed(sim::PrefetcherKind::kPlanaria, t, 0);
  const std::uint64_t cursor =
      sim::load_checkpoint(*s, golden, sim::trace_fingerprint(t));
  EXPECT_EQ(cursor, kGoldenCursor);

  // And the restored state is live: completing the run reproduces the
  // uninterrupted result bit for bit.
  s->run_sharded(t.data() + cursor, t.data() + t.size());
  const auto resumed = s->finish();
  const auto base = sim::Simulator::run(
      sim::SimConfig{},
      sim::make_prefetcher_factory(sim::PrefetcherKind::kPlanaria), "planaria",
      t);
  EXPECT_TRUE(resumed == base);
}

}  // namespace
}  // namespace planaria
