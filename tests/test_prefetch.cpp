// Unit tests for the baseline prefetchers: BOP, SPP, next-line, stride, null.
#include <gtest/gtest.h>

#include "prefetch/bop.hpp"
#include "prefetch/prefetcher.hpp"
#include "prefetch/simple.hpp"
#include "prefetch/spp.hpp"

namespace planaria::prefetch {
namespace {

DemandEvent miss_at(std::uint64_t block, Cycle now = 0,
                    AccessType type = AccessType::kRead) {
  DemandEvent e;
  e.local_block = block;
  e.page = block / kBlocksPerSegment;
  e.block_in_segment = static_cast<int>(block % kBlocksPerSegment);
  e.now = now;
  e.type = type;
  e.sc_hit = false;
  return e;
}

// --------------------------------------------------------------------- null

TEST(NullPrefetcher, NeverIssues) {
  NullPrefetcher pf;
  std::vector<PrefetchRequest> out;
  for (std::uint64_t b = 0; b < 100; ++b) pf.on_demand(miss_at(b), out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(pf.storage_bits(), 0u);
}

// ---------------------------------------------------------------- next-line

TEST(NextLine, PrefetchesSequentialSuccessors) {
  NextLinePrefetcher pf(2);
  std::vector<PrefetchRequest> out;
  pf.on_demand(miss_at(100), out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].local_block, 101u);
  EXPECT_EQ(out[1].local_block, 102u);
}

TEST(NextLine, SilentOnHits) {
  NextLinePrefetcher pf;
  std::vector<PrefetchRequest> out;
  auto e = miss_at(100);
  e.sc_hit = true;
  pf.on_demand(e, out);
  EXPECT_TRUE(out.empty());
}

TEST(NextLine, RejectsBadDegree) {
  EXPECT_THROW(NextLinePrefetcher(0), std::invalid_argument);
}

// ------------------------------------------------------------------- stride

TEST(Stride, DetectsConstantStride) {
  StridePrefetcher pf(1);
  std::vector<PrefetchRequest> out;
  // Three accesses with stride 4 build confidence; the next should prefetch.
  for (std::uint64_t b : {100ull, 104ull, 108ull, 112ull}) {
    out.clear();
    pf.on_demand(miss_at(b), out);
  }
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0].local_block, 116u);
}

TEST(Stride, SeparateStreamsPerDevice) {
  StridePrefetcher pf(1);
  std::vector<PrefetchRequest> out;
  for (int i = 0; i < 4; ++i) {
    auto cpu = miss_at(100 + static_cast<std::uint64_t>(i) * 2);
    cpu.device = DeviceId::kCpuBig;
    auto gpu = miss_at(5000 + static_cast<std::uint64_t>(i) * 3);
    gpu.device = DeviceId::kGpu;
    out.clear();
    pf.on_demand(cpu, out);
    if (i == 3) {
      ASSERT_FALSE(out.empty());
      EXPECT_EQ(out[0].local_block, 108u);  // interleaving did not break it
    }
    out.clear();
    pf.on_demand(gpu, out);
  }
}

TEST(Stride, NoIssueWithoutConfidence) {
  StridePrefetcher pf(1);
  std::vector<PrefetchRequest> out;
  pf.on_demand(miss_at(10), out);
  pf.on_demand(miss_at(17), out);  // first delta: confidence 1 only
  EXPECT_TRUE(out.empty());
}

// ---------------------------------------------------------------------- bop

TEST(Bop, ConfigValidation) {
  BopConfig config;
  config.rr_entries = 100;  // not a power of two
  EXPECT_THROW(BestOffsetPrefetcher{config}, std::invalid_argument);
  config = BopConfig{};
  config.degree = 0;
  EXPECT_THROW(BestOffsetPrefetcher{config}, std::invalid_argument);
}

TEST(Bop, StartsDisabled) {
  BestOffsetPrefetcher pf;
  EXPECT_FALSE(pf.prefetch_enabled());
  std::vector<PrefetchRequest> out;
  pf.on_demand(miss_at(100), out);
  EXPECT_TRUE(out.empty());
}

TEST(Bop, LearnsSequentialOffsetAndIssues) {
  BopConfig config;
  config.score_max = 20;  // fast rounds for the test (> bad_score)
  BestOffsetPrefetcher pf(config);
  std::vector<PrefetchRequest> out;
  // Pure sequential stream with fills completing before the next trigger.
  for (std::uint64_t b = 0; b < 4000; ++b) {
    pf.on_fill(b, false, b * 10);
    out.clear();
    pf.on_demand(miss_at(b + 1, b * 10 + 5), out);
  }
  EXPECT_TRUE(pf.prefetch_enabled());
  EXPECT_EQ(pf.best_offset(), 1);
  ASSERT_FALSE(out.empty());
}

TEST(Bop, DisablesOnRandomTraffic) {
  BopConfig config;
  config.round_max = 5;  // converge quickly
  BestOffsetPrefetcher pf(config);
  std::vector<PrefetchRequest> out;
  std::uint64_t x = 12345;
  for (int i = 0; i < 20000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const std::uint64_t block = (x >> 33) % (1 << 30);
    pf.on_fill(block, false, 0);
    out.clear();
    pf.on_demand(miss_at(block ^ 0x5555), out);
  }
  EXPECT_FALSE(pf.prefetch_enabled());
}

TEST(Bop, IgnoresWritesAndPlainHits) {
  BestOffsetPrefetcher pf;
  std::vector<PrefetchRequest> out;
  auto w = miss_at(100);
  w.type = AccessType::kWrite;
  pf.on_demand(w, out);
  auto h = miss_at(101);
  h.sc_hit = true;
  pf.on_demand(h, out);
  EXPECT_TRUE(out.empty());
}

TEST(Bop, StorageIsSmall) {
  BestOffsetPrefetcher pf;
  EXPECT_LT(pf.storage_bits(), 8192u * 8);  // well under 8KB
  EXPECT_GT(pf.storage_bits(), 0u);
}

// ---------------------------------------------------------------------- spp

TEST(Spp, ConfigValidation) {
  SppConfig config;
  config.fill_threshold = 0.0;
  EXPECT_THROW(SignaturePathPrefetcher{config}, std::invalid_argument);
  config = SppConfig{};
  config.pt_entries = 0;
  EXPECT_THROW(SignaturePathPrefetcher{config}, std::invalid_argument);
}

TEST(Spp, LearnsSequentialDeltaChain) {
  SignaturePathPrefetcher pf;
  std::vector<PrefetchRequest> out;
  // Train: many pages with a +1 delta pattern.
  for (std::uint64_t page = 0; page < 200; ++page) {
    for (int b = 0; b < kBlocksPerSegment; ++b) {
      out.clear();
      pf.on_demand(miss_at(page * kBlocksPerSegment +
                           static_cast<std::uint64_t>(b)), out);
    }
  }
  // A fresh page walking +1 should trigger lookahead prefetches.
  out.clear();
  pf.on_demand(miss_at(1000 * kBlocksPerSegment), out);
  out.clear();
  pf.on_demand(miss_at(1000 * kBlocksPerSegment + 1), out);
  ASSERT_FALSE(out.empty());
  // All targets ahead of the current block.
  for (const auto& r : out) {
    EXPECT_GT(r.local_block, 1000u * kBlocksPerSegment + 1);
  }
}

TEST(Spp, NoPrefetchWithoutTraining) {
  SignaturePathPrefetcher pf;
  std::vector<PrefetchRequest> out;
  pf.on_demand(miss_at(42), out);
  EXPECT_TRUE(out.empty());
}

TEST(Spp, SameBlockRetouchIsIgnored) {
  SignaturePathPrefetcher pf;
  std::vector<PrefetchRequest> out;
  pf.on_demand(miss_at(100), out);
  pf.on_demand(miss_at(100), out);  // delta 0
  EXPECT_TRUE(out.empty());
}

TEST(Spp, StorageMatchesConfigScaling) {
  SppConfig small;
  small.pt_entries = 256;
  SppConfig big;
  big.pt_entries = 2048;
  EXPECT_LT(SignaturePathPrefetcher(small).storage_bits(),
            SignaturePathPrefetcher(big).storage_bits());
}

TEST(Spp, ConfidenceDecaysOnNoisyPatterns) {
  // Shuffled deltas must produce far fewer prefetches than sequential ones.
  SignaturePathPrefetcher seq_pf;
  SignaturePathPrefetcher noise_pf;
  std::vector<PrefetchRequest> seq_out, noise_out;
  std::uint64_t x = 99;
  for (std::uint64_t page = 0; page < 300; ++page) {
    for (int i = 0; i < kBlocksPerSegment; ++i) {
      seq_pf.on_demand(miss_at(page * kBlocksPerSegment +
                               static_cast<std::uint64_t>(i)), seq_out);
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      noise_pf.on_demand(
          miss_at(page * kBlocksPerSegment + ((x >> 40) % kBlocksPerSegment)),
          noise_out);
    }
  }
  EXPECT_GT(seq_out.size(), 2 * noise_out.size());
}

}  // namespace
}  // namespace planaria::prefetch
