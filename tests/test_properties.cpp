// Property-based tests: randomized inputs checked against invariants and
// reference models, parameterized over seeds (and configs) with gtest's
// TEST_P machinery. These catch the classes of bug example-based tests miss:
// bookkeeping drift under arbitrary interleavings, conservation violations,
// and table/reference divergence.
#include <gtest/gtest.h>

#include <bitset>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "cache/system_cache.hpp"
#include "common/bitmap.hpp"
#include "common/rng.hpp"
#include "common/set_table.hpp"
#include "common/table.hpp"
#include "core/planaria.hpp"
#include "dram/channel.hpp"
#include "trace/apps.hpp"
#include "trace/generator.hpp"

namespace planaria {
namespace {

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// ----------------------------------------------------- bitmap vs std::bitset

TEST_P(SeededProperty, BitmapMatchesBitsetReference) {
  Rng rng(GetParam());
  SegmentBitmap bm;
  std::bitset<16> ref;
  for (int step = 0; step < 2000; ++step) {
    const int bit = static_cast<int>(rng.next_below(16));
    switch (rng.next_below(3)) {
      case 0:
        bm.set(bit);
        ref.set(static_cast<std::size_t>(bit));
        break;
      case 1:
        bm.clear(bit);
        ref.reset(static_cast<std::size_t>(bit));
        break;
      default:
        ASSERT_EQ(bm.test(bit), ref.test(static_cast<std::size_t>(bit)));
    }
    ASSERT_EQ(bm.popcount(), static_cast<int>(ref.count()));
    ASSERT_EQ(bm.empty(), ref.none());
  }
}

TEST_P(SeededProperty, BitmapSetAlgebra) {
  Rng rng(GetParam());
  for (int step = 0; step < 500; ++step) {
    const SegmentBitmap a(rng.next());
    const SegmentBitmap b(rng.next());
    // |A| + |B| = |A∪B| + |A∩B|
    ASSERT_EQ(a.popcount() + b.popcount(),
              (a | b).popcount() + a.common_with(b));
    // Hamming = |A\B| + |B\A|
    ASSERT_EQ(a.hamming_distance(b),
              a.minus(b).popcount() + b.minus(a).popcount());
    // minus is disjoint from the subtrahend
    ASSERT_EQ(a.minus(b).common_with(b), 0);
  }
}

// ------------------------------------------------ tables vs map references

TEST_P(SeededProperty, LruTableNeverLosesMostRecent) {
  Rng rng(GetParam());
  LruTable<std::uint64_t, std::uint64_t> table(8);
  std::uint64_t last_key = 0;
  bool have_last = false;
  for (int step = 0; step < 3000; ++step) {
    const std::uint64_t key = rng.next_below(32);
    if (rng.chance(0.7)) {
      table.insert(key, key * 10);
      last_key = key;
      have_last = true;
    } else if (rng.chance(0.5)) {
      table.erase(key);
      if (have_last && key == last_key) have_last = false;
    } else if (const auto* v = table.find(key); v != nullptr) {
      ASSERT_EQ(*v, key * 10);
      last_key = key;  // find refreshes recency
    }
    ASSERT_LE(table.size(), table.capacity());
    if (have_last) {
      ASSERT_NE(table.peek(last_key), nullptr)
          << "most recently inserted/refreshed key must survive";
    }
  }
}

TEST_P(SeededProperty, SetAssocTableValuesNeverCorrupt) {
  Rng rng(GetParam());
  SetAssocTable<std::uint64_t, std::uint64_t> table(8, 4);
  std::unordered_map<std::uint64_t, std::uint64_t> reference;
  for (int step = 0; step < 5000; ++step) {
    const std::uint64_t key = rng.next_below(200);
    if (rng.chance(0.6)) {
      const std::uint64_t value = rng.next();
      table.insert(key, value);
      reference[key] = value;
    } else if (const auto* v = table.find(key); v != nullptr) {
      // The table may evict entries the reference keeps, but an entry it
      // still holds must carry the last written value.
      ASSERT_EQ(*v, reference.at(key));
    }
    ASSERT_LE(table.size(), table.capacity());
  }
}

// ------------------------------------------------------ cache conservation

TEST_P(SeededProperty, CacheStatsConserve) {
  Rng rng(GetParam());
  cache::CacheConfig config;
  config.size_bytes = 1 << 13;
  config.ways = 4;
  cache::SystemCache cache(config);
  std::uint64_t reads = 0, writes = 0;
  std::uint64_t pf_fills = 0;
  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t block = rng.next_below(600);
    if (rng.chance(0.6)) {
      const bool write = rng.chance(0.25);
      const auto r = cache.access(
          block, write ? AccessType::kWrite : AccessType::kRead);
      reads += write ? 0 : 1;
      writes += write ? 1 : 0;
      if (!write && !r.hit && rng.chance(0.8)) {
        cache.fill(block, cache::FillSource::kDemand);
      }
    } else {
      const auto source = rng.chance(0.5) ? cache::FillSource::kPrefetchSlp
                                          : cache::FillSource::kPrefetchTlp;
      const bool was_present = cache.contains(block);
      cache.fill(block, source);
      pf_fills += was_present ? 0 : 1;
    }
  }
  const auto& s = cache.stats();
  ASSERT_EQ(s.demand_accesses, reads);
  ASSERT_EQ(s.demand_hits + s.demand_misses, reads);
  ASSERT_EQ(s.write_hits + s.write_misses, writes);
  ASSERT_EQ(s.prefetch_fills, pf_fills);
  // Every useful prefetch was a prefetch fill; sources partition the total.
  ASSERT_EQ(s.hits_on_slp + s.hits_on_tlp + s.hits_on_other_pf,
            s.demand_hits_on_prefetch);
  ASSERT_LE(s.demand_hits_on_prefetch + s.prefetch_unused_evictions, pf_fills);
}

// --------------------------------------------------- DRAM channel invariants

TEST_P(SeededProperty, DramConservesRequestsAndOrdersTime) {
  Rng rng(GetParam());
  dram::DramConfig config;
  dram::DramChannel channel(config);
  Cycle t = 0;
  std::uint64_t submitted_reads = 0, submitted_writes = 0, dropped = 0;
  std::uint64_t next_write_block = 1000000;  // unique per write: no coalescing
  for (int i = 0; i < 3000; ++i) {
    t += rng.next_below(60);
    channel.advance(t);
    dram::DramRequest req;
    req.is_write = rng.chance(0.3);
    // Writes get unique blocks so the coalescing path (tested separately)
    // cannot blur the conservation count.
    req.local_block = req.is_write ? next_write_block++ : rng.next_below(5000);
    req.arrival = t;
    req.is_prefetch = !req.is_write && rng.chance(0.3);
    req.tag = static_cast<std::uint64_t>(i);
    const bool accepted = channel.submit(req);
    if (!accepted) {
      ++dropped;
    } else if (req.is_write) {
      ++submitted_writes;
    } else {
      ++submitted_reads;
    }
    if (rng.chance(0.05)) {
      channel.drain();  // periodically retire everything
    }
  }
  channel.drain();
  const auto done = channel.take_completions();
  // Conservation: every accepted read completes exactly once; writes complete
  // minus coalesced merges.
  std::uint64_t read_completions = 0, write_completions = 0;
  Cycle prev_finish = 0;
  for (const auto& c : done) {
    ASSERT_GE(c.finish, prev_finish) << "completions sorted by finish";
    prev_finish = c.finish;
    ASSERT_GE(c.finish, c.arrival) << "no time travel";
    if (c.is_write) {
      ++write_completions;
    } else {
      ++read_completions;
    }
  }
  ASSERT_EQ(read_completions, submitted_reads);
  ASSERT_EQ(write_completions, submitted_writes);
  ASSERT_EQ(channel.counters().prefetch_drops, dropped);
  // Row hits + misses account for every non-forwarded data burst.
  const auto& counters = channel.counters();
  ASSERT_EQ(counters.row_hits + counters.row_misses,
            counters.reads + counters.writes);
}

TEST_P(SeededProperty, DramReadLatencyBounds) {
  Rng rng(GetParam());
  dram::DramConfig config;
  dram::DramChannel channel(config);
  const auto min_latency =
      static_cast<Cycle>(config.timing.tCL);  // forwarding floor
  Cycle t = 0;
  for (int i = 0; i < 500; ++i) {
    t += 50 + rng.next_below(100);
    channel.advance(t);
    dram::DramRequest req;
    req.local_block = rng.next_below(2000);
    req.arrival = t;
    req.tag = static_cast<std::uint64_t>(i);
    channel.submit(req);
  }
  channel.drain();
  for (const auto& c : channel.take_completions()) {
    ASSERT_GE(c.finish - c.arrival, min_latency);
    // Generous upper bound: queue depth x worst-case row cycle.
    ASSERT_LT(c.finish - c.arrival, 100000u);
  }
}

// ----------------------------------------------------- generator invariants

class AppProperty : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(Apps, AppProperty,
                         ::testing::ValuesIn(trace::app_names()),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST_P(AppProperty, TracesAreWellFormed) {
  const auto& app = trace::app_by_name(GetParam());
  const auto records = trace::generate_app_trace(app, 30000);
  ASSERT_GE(records.size(), 29000u);
  Cycle prev = 0;
  for (const auto& r : records) {
    ASSERT_GE(r.arrival, prev) << "arrivals must be non-decreasing";
    prev = r.arrival;
    ASSERT_EQ(r.address % kBlockBytes, 0u) << "addresses block-aligned";
    ASSERT_LT(static_cast<int>(r.device), static_cast<int>(DeviceId::kCount));
  }
}

TEST_P(AppProperty, TracePacingMatchesMeanGap) {
  const auto& app = trace::app_by_name(GetParam());
  const auto records = trace::generate_app_trace(app, 30000);
  const double span = static_cast<double>(records.back().arrival);
  const double mean_gap = span / static_cast<double>(records.size());
  // The generator must land within 2x of the profile's intensity target —
  // the DRAM contention calibration depends on it.
  ASSERT_GT(mean_gap, 0.5 * static_cast<double>(app.mean_gap));
  ASSERT_LT(mean_gap, 2.0 * static_cast<double>(app.mean_gap));
}

TEST_P(AppProperty, FootprintRegionsAreDisjoint) {
  const auto& app = trace::app_by_name(GetParam());
  // The four component address regions must not collide, or analysis would
  // conflate pattern classes.
  const auto records = trace::generate_app_trace(app, 30000);
  for (const auto& r : records) {
    const auto pn = addr::page_number(r.address);
    int owners = 0;
    // Twins can step slightly below base_page; allow the span slack.
    if (pn >= app.footprint.base_page - 64 &&
        pn < app.footprint.base_page + app.footprint.page_span + 64) {
      ++owners;
    }
    if (pn >= app.neighbor.base_page &&
        pn < app.neighbor.base_page +
                 static_cast<PageNumber>(app.neighbor.clusters) *
                     app.neighbor.cluster_stride) {
      ++owners;
    }
    if (pn >= app.stream.base_page && pn < app.irregular.base_page) {
      ++owners;  // streams grow upward, bounded by the irregular region
    }
    if (pn >= app.irregular.base_page &&
        pn < app.irregular.base_page + app.irregular.page_span) {
      ++owners;
    }
    ASSERT_LE(owners, 1) << "page 0x" << std::hex << pn
                         << " claimed by multiple components";
  }
}

// ----------------------------------------------------- prefetcher invariants

TEST_P(SeededProperty, PlanariaPrefetchesStayOnTriggerPage) {
  Rng rng(GetParam());
  core::PlanariaPrefetcher pf;
  std::vector<prefetch::PrefetchRequest> out;
  for (int i = 0; i < 20000; ++i) {
    prefetch::DemandEvent e;
    e.page = rng.next_below(64);
    e.block_in_segment = static_cast<int>(rng.next_below(16));
    e.local_block = e.page * kBlocksPerSegment +
                    static_cast<std::uint64_t>(e.block_in_segment);
    e.now = static_cast<Cycle>(i) * 20;
    e.sc_hit = rng.chance(0.4);
    out.clear();
    pf.on_demand(e, out);
    for (const auto& r : out) {
      // Both sub-prefetchers predict blocks of the page that triggered them.
      ASSERT_EQ(r.local_block / kBlocksPerSegment, e.page);
      ASSERT_NE(r.local_block, e.local_block) << "never prefetch the trigger";
      ASSERT_TRUE(r.source == cache::FillSource::kPrefetchSlp ||
                  r.source == cache::FillSource::kPrefetchTlp);
    }
  }
  // Coordinator bookkeeping: every trigger is attributed exactly once.
  const auto& s = pf.stats();
  ASSERT_EQ(s.triggers, s.slp_issues + s.tlp_issues + s.no_issues);
}

TEST_P(SeededProperty, SlpNeverIssuesAccessedBlocks) {
  Rng rng(GetParam());
  core::SlpConfig config;
  config.at_timeout = 500;
  config.sweep_interval = 1;
  core::Slp slp(config);
  std::vector<prefetch::PrefetchRequest> out;
  Cycle now = 0;
  std::map<PageNumber, SegmentBitmap> visit_bits;
  for (int i = 0; i < 10000; ++i) {
    now += 20;
    prefetch::DemandEvent e;
    e.page = rng.next_below(16);
    e.block_in_segment = static_cast<int>(rng.next_below(16));
    e.now = now;
    slp.learn(e);
    out.clear();
    if (slp.issue(e, out)) {
      for (const auto& r : out) {
        ASSERT_NE(static_cast<int>(r.local_block % kBlocksPerSegment),
                  e.block_in_segment);
      }
    }
  }
}

}  // namespace
}  // namespace planaria
