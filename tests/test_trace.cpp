// Unit tests for the trace substrate: record IO, merging, generators, and
// the calibrated app registry.
#include <gtest/gtest.h>

#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/bitmap.hpp"
#include "trace/apps.hpp"
#include "trace/generator.hpp"
#include "trace/io.hpp"

namespace planaria::trace {
namespace {

TraceRecord make_record(Address a, Cycle t, AccessType type = AccessType::kRead,
                        DeviceId d = DeviceId::kGpu) {
  return TraceRecord{addr::block_align(a), t, type, d};
}

// ----------------------------------------------------------------- binary IO

TEST(TraceIo, BinaryRoundTrip) {
  std::vector<TraceRecord> records = {
      make_record(0x1000, 10),
      make_record(0x2040, 20, AccessType::kWrite, DeviceId::kDsp),
      make_record(0xFFFF'FFFF'F000, 30, AccessType::kRead, DeviceId::kCpuLittle),
  };
  std::stringstream ss;
  write_binary(ss, records);
  const auto back = read_binary(ss);
  EXPECT_EQ(back, records);
}

TEST(TraceIo, BinaryEmptyTrace) {
  std::stringstream ss;
  write_binary(ss, {});
  EXPECT_TRUE(read_binary(ss).empty());
}

TEST(TraceIo, BinaryRejectsBadMagic) {
  std::stringstream ss;
  ss << "this is not a planaria trace at all....";
  EXPECT_THROW(read_binary(ss), std::runtime_error);
}

TEST(TraceIo, BinaryRejectsTruncatedPayload) {
  std::vector<TraceRecord> records = {make_record(0x1000, 1),
                                      make_record(0x2000, 2)};
  std::stringstream ss;
  write_binary(ss, records);
  std::string data = ss.str();
  data.resize(data.size() - 10);  // chop the last record
  std::stringstream truncated(data);
  EXPECT_THROW(read_binary(truncated), std::runtime_error);
}

TEST(TraceIo, BinaryAlignsAddressesToBlocks) {
  std::stringstream ss;
  write_binary(ss, {TraceRecord{0x1234'5678, 1, AccessType::kRead,
                                DeviceId::kCpuBig}});
  const auto back = read_binary(ss);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].address % kBlockBytes, 0u);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = "/tmp/planaria_test_trace.bin";
  std::vector<TraceRecord> records = {make_record(0x40, 5)};
  write_binary_file(path, records);
  EXPECT_EQ(read_binary_file(path), records);
  std::remove(path.c_str());
}

TEST(TraceIo, FileOpenFailureThrows) {
  EXPECT_THROW(read_binary_file("/nonexistent/dir/trace.bin"),
               std::runtime_error);
  EXPECT_THROW(write_binary_file("/nonexistent/dir/trace.bin", {}),
               std::runtime_error);
}

// -------------------------------------------------------------------- csv IO

TEST(TraceIo, CsvRoundTrip) {
  std::vector<TraceRecord> records = {
      make_record(0x1000, 10),
      make_record(0x20C0, 25, AccessType::kWrite, DeviceId::kNpu),
  };
  std::stringstream ss;
  write_csv(ss, records);
  EXPECT_EQ(read_csv(ss), records);
}

TEST(TraceIo, CsvRejectsBadType) {
  std::stringstream ss("address,arrival,type,device\n0x40,1,X,gpu\n");
  EXPECT_THROW(read_csv(ss), std::runtime_error);
}

TEST(TraceIo, CsvRejectsBadDevice) {
  std::stringstream ss("address,arrival,type,device\n0x40,1,R,quantum\n");
  EXPECT_THROW(read_csv(ss), std::runtime_error);
}

TEST(TraceIo, CsvSkipsBlankLines) {
  std::stringstream ss("address,arrival,type,device\n\n0x40,1,R,gpu\n\n");
  EXPECT_EQ(read_csv(ss).size(), 1u);
}

// --------------------------------------------------------------------- merge

TEST(TraceMerge, MergesByArrival) {
  std::vector<std::vector<TraceRecord>> streams = {
      {make_record(0x0, 1), make_record(0x40, 5)},
      {make_record(0x80, 2), make_record(0xC0, 4)},
  };
  const auto merged = merge_sorted(streams);
  ASSERT_EQ(merged.size(), 4u);
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_GE(merged[i].arrival, merged[i - 1].arrival);
  }
}

TEST(TraceMerge, StableOnTies) {
  std::vector<std::vector<TraceRecord>> streams = {
      {make_record(0x0, 7)},
      {make_record(0x40, 7)},
  };
  const auto merged = merge_sorted(streams);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].address, 0x0u);  // stream 0 wins ties
}

TEST(TraceMerge, HandlesEmptyStreams) {
  EXPECT_TRUE(merge_sorted({}).empty());
  EXPECT_TRUE(merge_sorted({{}, {}}).empty());
  const auto merged = merge_sorted({{}, {make_record(0x0, 1)}, {}});
  EXPECT_EQ(merged.size(), 1u);
}

// --------------------------------------------------------------- generators

Pacing small_pacing(std::uint64_t records) {
  return Pacing{records, records * 20, 0, 0.5};
}

TEST(FootprintGenerator, ProducesRequestedCount) {
  Rng rng(1);
  const auto out = generate_footprint(FootprintParams{}, small_pacing(5000), rng);
  EXPECT_EQ(out.size(), 5000u);
}

TEST(FootprintGenerator, ArrivalsAreMonotone) {
  Rng rng(2);
  const auto out = generate_footprint(FootprintParams{}, small_pacing(3000), rng);
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_GE(out[i].arrival, out[i - 1].arrival);
  }
}

TEST(FootprintGenerator, RespectsPageRegion) {
  FootprintParams params;
  params.base_page = 0x5000;
  params.page_span = 0x1000;
  params.twin_fraction = 0.0;  // twins may step slightly outside the span
  Rng rng(3);
  const auto out = generate_footprint(params, small_pacing(2000), rng);
  for (const auto& r : out) {
    const auto pn = addr::page_number(r.address);
    EXPECT_GE(pn, params.base_page);
    EXPECT_LT(pn, params.base_page + params.page_span);
  }
}

TEST(FootprintGenerator, FootprintsAreStableAcrossVisits) {
  // With mutation off, the set of blocks seen for a page must be constant.
  FootprintParams params;
  params.hot_pages = 4;
  params.page_span = 1024;
  params.mutate_p = 0.0;
  params.twin_fraction = 0.0;
  Rng rng(4);
  const auto out = generate_footprint(params, small_pacing(4000), rng);
  std::unordered_map<PageNumber, PageBitmap> bitmaps;
  for (const auto& r : out) {
    bitmaps[addr::page_number(r.address)].set(addr::block_in_page(r.address));
  }
  for (const auto& [pn, bm] : bitmaps) {
    EXPECT_LE(bm.popcount(), params.footprint_max);
  }
}

TEST(FootprintGenerator, RejectsBadParams) {
  FootprintParams params;
  params.footprint_min = 10;
  params.footprint_max = 5;
  Rng rng(5);
  EXPECT_THROW(generate_footprint(params, small_pacing(10), rng),
               std::invalid_argument);
  params = FootprintParams{};
  params.hot_pages = 0;
  EXPECT_THROW(generate_footprint(params, small_pacing(10), rng),
               std::invalid_argument);
}

TEST(NeighborGenerator, PagesStayInClusters) {
  NeighborParams params;
  params.clusters = 4;
  Rng rng(6);
  const auto out = generate_neighbor(params, small_pacing(3000), rng);
  for (const auto& r : out) {
    const auto pn = addr::page_number(r.address);
    bool in_cluster = false;
    for (int c = 0; c < params.clusters; ++c) {
      const PageNumber origin =
          params.base_page + static_cast<PageNumber>(c) * params.cluster_stride;
      if (pn >= origin && pn < origin + static_cast<PageNumber>(params.cluster_span)) {
        in_cluster = true;
        break;
      }
    }
    EXPECT_TRUE(in_cluster) << "page 0x" << std::hex << pn;
  }
}

TEST(NeighborGenerator, PerPagePerturbationIsStable) {
  // The same page must always deviate from the cluster base in the same bits.
  NeighborParams params;
  params.clusters = 2;
  params.new_page_rate = 0.3;
  Rng rng(7);
  const auto out = generate_neighbor(params, small_pacing(6000), rng);
  // Collect the union bitmap per page; visiting the same page twice must not
  // grow the set beyond one visit's footprint.
  std::unordered_map<PageNumber, PageBitmap> bitmaps;
  for (const auto& r : out) {
    bitmaps[addr::page_number(r.address)].set(addr::block_in_page(r.address));
  }
  for (const auto& [pn, bm] : bitmaps) {
    EXPECT_LE(bm.popcount(), params.base_footprint + params.perturb_bits);
    EXPECT_GE(bm.popcount(), 1);
  }
}

TEST(NeighborGenerator, RejectsBadParams) {
  NeighborParams params;
  params.clusters = 0;
  Rng rng(8);
  EXPECT_THROW(generate_neighbor(params, small_pacing(10), rng),
               std::invalid_argument);
}

TEST(StreamGenerator, EmitsSequentialRuns) {
  StreamParams params;
  params.streams = 1;
  params.run_min = params.run_max = 32;
  Rng rng(9);
  const auto out = generate_stream(params, small_pacing(64), rng);
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 1; i < 32; ++i) {
    EXPECT_EQ(out[i].address, out[i - 1].address + kBlockBytes);
  }
}

TEST(StreamGenerator, RejectsBadParams) {
  StreamParams params;
  params.block_stride = 0;
  Rng rng(10);
  EXPECT_THROW(generate_stream(params, small_pacing(10), rng),
               std::invalid_argument);
}

TEST(IrregularGenerator, TouchesFewBlocksPerPage) {
  IrregularParams params;
  Rng rng(11);
  const auto out = generate_irregular(params, small_pacing(5000), rng);
  std::unordered_map<PageNumber, PageBitmap> bitmaps;
  for (const auto& r : out) {
    bitmaps[addr::page_number(r.address)].set(addr::block_in_page(r.address));
  }
  // A single visit touches blocks_min..blocks_max scattered blocks; rare
  // page revisits can add another visit's worth.
  for (const auto& [pn, bm] : bitmaps) {
    EXPECT_LE(bm.popcount(), 3 * params.blocks_max);
  }
}

TEST(IrregularGenerator, RejectsBadParams) {
  IrregularParams params;
  params.blocks_min = 0;
  Rng rng(12);
  EXPECT_THROW(generate_irregular(params, small_pacing(10), rng),
               std::invalid_argument);
}

// ----------------------------------------------------------------- app trace

TEST(AppTrace, GeneratesMergedSortedTrace) {
  AppProfile app = app_by_name("HoK");
  const auto out = generate_app_trace(app, 20000);
  EXPECT_GE(out.size(), 19000u);  // budget rounding may trim a little
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_GE(out[i].arrival, out[i - 1].arrival);
  }
}

TEST(AppTrace, DeterministicForSameSeed) {
  AppProfile app = app_by_name("CFM");
  const auto a = generate_app_trace(app, 5000);
  const auto b = generate_app_trace(app, 5000);
  EXPECT_EQ(a, b);
}

TEST(AppTrace, DifferentSeedsDiffer) {
  AppProfile app = app_by_name("CFM");
  const auto a = generate_app_trace(app, 5000);
  app.seed += 1;
  const auto b = generate_app_trace(app, 5000);
  EXPECT_NE(a, b);
}

TEST(AppTrace, MixesMultipleDevices) {
  const auto out = generate_app_trace(app_by_name("HoK"), 20000);
  std::unordered_set<int> devices;
  for (const auto& r : out) devices.insert(static_cast<int>(r.device));
  EXPECT_GE(devices.size(), 3u);
}

TEST(AppTrace, MixesReadsAndWrites) {
  const auto out = generate_app_trace(app_by_name("HoK"), 20000);
  std::uint64_t writes = 0;
  for (const auto& r : out) writes += r.type == AccessType::kWrite ? 1 : 0;
  EXPECT_GT(writes, out.size() / 20);
  EXPECT_LT(writes, out.size() / 2);
}

TEST(AppTrace, RejectsZeroRecords) {
  EXPECT_THROW(generate_app_trace(app_by_name("HoK"), 0), std::invalid_argument);
}

TEST(AppTrace, RejectsZeroWeights) {
  AppProfile app = app_by_name("HoK");
  app.weight_footprint = app.weight_neighbor = app.weight_stream =
      app.weight_irregular = 0.0;
  EXPECT_THROW(generate_app_trace(app, 100), std::invalid_argument);
}

// ------------------------------------------------------------------ registry

TEST(AppRegistry, HasAllTenPaperApps) {
  const auto names = app_names();
  ASSERT_EQ(names.size(), 10u);
  const std::vector<std::string> expected = {"CFM", "HoK", "Id-V", "QSM",
                                             "TikT", "Fort", "HI3", "KO",
                                             "NBA2", "PM"};
  EXPECT_EQ(names, expected);
}

TEST(AppRegistry, LookupByNameMatches) {
  for (const auto& name : app_names()) {
    EXPECT_EQ(app_by_name(name).name, name);
  }
}

TEST(AppRegistry, UnknownNameThrows) {
  EXPECT_THROW(app_by_name("DOOM"), std::out_of_range);
}

TEST(AppRegistry, WeightsSumToOne) {
  for (const auto& app : paper_apps()) {
    const double sum = app.weight_footprint + app.weight_neighbor +
                       app.weight_stream + app.weight_irregular;
    EXPECT_NEAR(sum, 1.0, 1e-9) << app.name;
  }
}

TEST(AppRegistry, SeedsAreUnique) {
  std::unordered_set<std::uint64_t> seeds;
  for (const auto& app : paper_apps()) seeds.insert(app.seed);
  EXPECT_EQ(seeds.size(), paper_apps().size());
}

}  // namespace
}  // namespace planaria::trace
