// Unit tests for the system cache: geometry validation, hit/miss behaviour,
// replacement policies, prefetch accounting, writebacks, and pollution
// tracking.
#include <gtest/gtest.h>

#include <set>

#include "cache/replacement.hpp"
#include "cache/system_cache.hpp"

namespace planaria::cache {
namespace {

CacheConfig tiny_config() {
  CacheConfig config;
  config.size_bytes = 1 << 12;  // 4KB = 64 lines
  config.ways = 4;              // 16 sets
  return config;
}

// ------------------------------------------------------------------- config

TEST(CacheConfig, Table1GeometryValidates) {
  CacheConfig config;  // 1MB slice, 16-way, 64B
  EXPECT_NO_THROW(config.validate());
  EXPECT_EQ(config.sets(), 1024u);
}

TEST(CacheConfig, RejectsNonPowerOfTwoSize) {
  CacheConfig config;
  config.size_bytes = 3 << 20;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(CacheConfig, RejectsZeroWays) {
  CacheConfig config;
  config.ways = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

// ------------------------------------------------------------ basic behavior

TEST(SystemCache, MissThenFillThenHit) {
  SystemCache cache(tiny_config());
  EXPECT_FALSE(cache.access(42, AccessType::kRead).hit);
  cache.fill(42, FillSource::kDemand);
  EXPECT_TRUE(cache.access(42, AccessType::kRead).hit);
  EXPECT_EQ(cache.stats().demand_accesses, 2u);
  EXPECT_EQ(cache.stats().demand_hits, 1u);
  EXPECT_EQ(cache.stats().demand_misses, 1u);
}

TEST(SystemCache, ContainsReflectsFills) {
  SystemCache cache(tiny_config());
  EXPECT_FALSE(cache.contains(7));
  cache.fill(7, FillSource::kDemand);
  EXPECT_TRUE(cache.contains(7));
}

TEST(SystemCache, EvictionWithinSet) {
  auto config = tiny_config();
  SystemCache cache(config);
  const std::uint32_t sets = config.sets();
  // Fill one set beyond capacity: blocks k*sets map to set 0.
  for (int i = 0; i <= config.ways; ++i) {
    cache.fill(static_cast<std::uint64_t>(i) * sets, FillSource::kDemand);
  }
  int resident = 0;
  for (int i = 0; i <= config.ways; ++i) {
    resident += cache.contains(static_cast<std::uint64_t>(i) * sets) ? 1 : 0;
  }
  EXPECT_EQ(resident, config.ways);
}

TEST(SystemCache, LruEvictsOldest) {
  auto config = tiny_config();
  config.ways = 2;
  SystemCache cache(config);
  const std::uint32_t sets = config.sets();
  cache.fill(0 * sets, FillSource::kDemand);
  cache.fill(1 * sets, FillSource::kDemand);
  cache.access(0 * sets, AccessType::kRead);  // refresh 0
  cache.fill(2 * sets, FillSource::kDemand);  // evicts 1
  EXPECT_TRUE(cache.contains(0 * sets));
  EXPECT_FALSE(cache.contains(1 * sets));
}

TEST(SystemCache, RedundantFillCounted) {
  SystemCache cache(tiny_config());
  cache.fill(3, FillSource::kDemand);
  cache.fill(3, FillSource::kPrefetchSlp);
  EXPECT_EQ(cache.redundant_prefetch_fills(), 1u);
  EXPECT_EQ(cache.stats().prefetch_fills, 0u);
}

// --------------------------------------------------------------- write path

TEST(SystemCache, WriteMissDoesNotAllocate) {
  SystemCache cache(tiny_config());
  EXPECT_FALSE(cache.access(5, AccessType::kWrite).hit);
  EXPECT_FALSE(cache.contains(5));
  EXPECT_EQ(cache.stats().write_misses, 1u);
}

TEST(SystemCache, WriteHitDirtiesLine) {
  auto config = tiny_config();
  config.ways = 1;
  SystemCache cache(config);
  const std::uint32_t sets = config.sets();
  cache.fill(0, FillSource::kDemand);
  cache.access(0, AccessType::kWrite);
  EXPECT_EQ(cache.stats().write_hits, 1u);
  // Evicting the dirty line must produce a writeback.
  const auto result = cache.fill(sets, FillSource::kDemand);
  EXPECT_TRUE(result.has_writeback);
  EXPECT_EQ(result.writeback_block, 0u);
  EXPECT_EQ(cache.stats().dirty_writebacks, 1u);
}

TEST(SystemCache, CleanEvictionHasNoWriteback) {
  auto config = tiny_config();
  config.ways = 1;
  SystemCache cache(config);
  cache.fill(0, FillSource::kDemand);
  const auto result = cache.fill(config.sets(), FillSource::kDemand);
  EXPECT_FALSE(result.has_writeback);
}

// ------------------------------------------------------- prefetch accounting

TEST(SystemCache, PrefetchHitAttributedToSource) {
  SystemCache cache(tiny_config());
  cache.fill(10, FillSource::kPrefetchSlp);
  cache.fill(11, FillSource::kPrefetchTlp);
  cache.fill(12, FillSource::kPrefetchOther);
  auto r = cache.access(10, AccessType::kRead);
  EXPECT_TRUE(r.hit);
  EXPECT_TRUE(r.first_use_of_prefetch);
  EXPECT_EQ(r.fill_source, FillSource::kPrefetchSlp);
  cache.access(11, AccessType::kRead);
  cache.access(12, AccessType::kRead);
  EXPECT_EQ(cache.stats().hits_on_slp, 1u);
  EXPECT_EQ(cache.stats().hits_on_tlp, 1u);
  EXPECT_EQ(cache.stats().hits_on_other_pf, 1u);
  EXPECT_EQ(cache.stats().demand_hits_on_prefetch, 3u);
}

TEST(SystemCache, SecondHitIsNotFirstUse) {
  SystemCache cache(tiny_config());
  cache.fill(10, FillSource::kPrefetchSlp);
  EXPECT_TRUE(cache.access(10, AccessType::kRead).first_use_of_prefetch);
  EXPECT_FALSE(cache.access(10, AccessType::kRead).first_use_of_prefetch);
  EXPECT_EQ(cache.stats().demand_hits_on_prefetch, 1u);
}

TEST(SystemCache, WriteConsumesPrefetchFlagWithoutCredit) {
  SystemCache cache(tiny_config());
  cache.fill(10, FillSource::kPrefetchSlp);
  cache.access(10, AccessType::kWrite);
  EXPECT_FALSE(cache.is_unused_prefetch(10));
  EXPECT_EQ(cache.stats().demand_hits_on_prefetch, 0u);
}

TEST(SystemCache, UnusedPrefetchEvictionCounted) {
  auto config = tiny_config();
  config.ways = 1;
  SystemCache cache(config);
  cache.fill(0, FillSource::kPrefetchSlp);
  cache.fill(config.sets(), FillSource::kDemand);  // evicts unused prefetch
  EXPECT_EQ(cache.stats().prefetch_unused_evictions, 1u);
}

TEST(SystemCache, AccuracyAndCoverageFormulas) {
  SystemCache cache(tiny_config());
  cache.fill(1, FillSource::kPrefetchSlp);
  cache.fill(2, FillSource::kPrefetchSlp);
  cache.access(1, AccessType::kRead);   // useful prefetch
  cache.access(99, AccessType::kRead);  // demand miss
  EXPECT_DOUBLE_EQ(cache.stats().prefetch_accuracy(), 0.5);
  EXPECT_DOUBLE_EQ(cache.stats().prefetch_coverage(), 0.5);
}

TEST(SystemCache, PollutionMissDetected) {
  auto config = tiny_config();
  config.ways = 1;
  SystemCache cache(config);
  cache.fill(0, FillSource::kDemand);          // useful line
  cache.fill(config.sets(), FillSource::kPrefetchTlp);  // evicts it
  EXPECT_FALSE(cache.access(0, AccessType::kRead).hit);
  EXPECT_EQ(cache.stats().pollution_misses, 1u);
}

TEST(SystemCache, IsUnusedPrefetchLifecycle) {
  SystemCache cache(tiny_config());
  cache.fill(4, FillSource::kPrefetchTlp);
  EXPECT_TRUE(cache.is_unused_prefetch(4));
  cache.access(4, AccessType::kRead);
  EXPECT_FALSE(cache.is_unused_prefetch(4));
  EXPECT_FALSE(cache.is_unused_prefetch(12345));  // absent block
}

// -------------------------------------------------------------- replacement

class ReplacementTest : public ::testing::TestWithParam<ReplacementKind> {};

TEST_P(ReplacementTest, VictimInRange) {
  auto policy = make_replacement(GetParam(), 4, 4, 7);
  for (std::uint32_t set = 0; set < 4; ++set) {
    for (int i = 0; i < 4; ++i) policy->on_fill(set, i, false);
    for (int i = 0; i < 20; ++i) {
      const int v = policy->victim(set);
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 4);
    }
  }
}

TEST_P(ReplacementTest, CacheRunsUnderEveryPolicy) {
  auto config = tiny_config();
  config.replacement = GetParam();
  SystemCache cache(config);
  // 40 distinct blocks over 16 sets x 4 ways: fits, so every policy must
  // produce hits after the first pass (a 200-block cyclic sweep would be the
  // LRU-pathological case instead).
  for (std::uint64_t b = 0; b < 512; ++b) {
    if (!cache.access(b % 40, AccessType::kRead).hit) {
      cache.fill(b % 40, FillSource::kDemand);
    }
  }
  EXPECT_GT(cache.stats().demand_hits, 0u);
  EXPECT_GT(cache.stats().demand_misses, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ReplacementTest,
                         ::testing::Values(ReplacementKind::kLru,
                                           ReplacementKind::kRandom,
                                           ReplacementKind::kSrrip,
                                           ReplacementKind::kDrrip),
                         [](const auto& param_info) {
                           return std::string(
                               replacement_name(param_info.param));
                         });

TEST(Replacement, SrripPrefetchInsertedAtDistantRrpv) {
  // A prefetch fill must be the preferred victim over a demand fill.
  auto policy = make_replacement(ReplacementKind::kSrrip, 1, 2, 1);
  policy->on_fill(0, 0, /*prefetch=*/false);
  policy->on_fill(0, 1, /*prefetch=*/true);
  EXPECT_EQ(policy->victim(0), 1);
}

TEST(Replacement, LruVictimIsLeastRecent) {
  auto policy = make_replacement(ReplacementKind::kLru, 1, 3, 1);
  policy->on_fill(0, 0, false);
  policy->on_fill(0, 1, false);
  policy->on_fill(0, 2, false);
  policy->on_hit(0, 0);
  EXPECT_EQ(policy->victim(0), 1);
}

TEST(Replacement, FactoryRejectsBadGeometry) {
  EXPECT_THROW(make_replacement(ReplacementKind::kLru, 0, 4),
               std::invalid_argument);
  EXPECT_THROW(make_replacement(ReplacementKind::kLru, 4, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace planaria::cache
