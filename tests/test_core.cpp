// Unit tests for the Planaria core: SLP's FT->AT->PT pipeline, TLP's RPT and
// Ref matrix, the coordinator's selection rule, and storage accounting.
#include <gtest/gtest.h>

#include "core/planaria.hpp"
#include "core/slp.hpp"
#include "core/storage.hpp"
#include "core/tlp.hpp"

namespace planaria::core {
namespace {

prefetch::DemandEvent event(PageNumber page, int block, Cycle now,
                            bool sc_hit = false,
                            AccessType type = AccessType::kRead) {
  prefetch::DemandEvent e;
  e.page = page;
  e.block_in_segment = block;
  e.local_block = page * kBlocksPerSegment + static_cast<std::uint64_t>(block);
  e.now = now;
  e.type = type;
  e.sc_hit = sc_hit;
  return e;
}

SlpConfig fast_slp() {
  SlpConfig config;
  config.at_timeout = 100;
  config.sweep_interval = 1;  // sweep every access: deterministic timeouts
  return config;
}

/// Teaches SLP the snapshot {blocks...} for `page`, ending after the timeout
/// so the bitmap lands in the PT.
void teach(Slp& slp, PageNumber page, std::initializer_list<int> blocks,
           Cycle& now) {
  for (int b : blocks) slp.learn(event(page, b, now += 10));
  // Idle long enough for the sweep to see the timeout; the sweep runs on the
  // next (unrelated) access.
  now += 1000;
  slp.learn(event(page + 100000, 0, now));
}

// ---------------------------------------------------------------------- SLP

TEST(Slp, ConfigValidation) {
  SlpConfig config;
  config.promote_threshold = 4;  // FT stores only 3 offsets
  EXPECT_THROW(Slp{config}, std::invalid_argument);
  config = SlpConfig{};
  config.pt_sets = 0;
  EXPECT_THROW(Slp{config}, std::invalid_argument);
}

TEST(Slp, NoPatternBeforeLearning) {
  Slp slp(fast_slp());
  EXPECT_FALSE(slp.has_pattern(5));
  std::vector<prefetch::PrefetchRequest> out;
  EXPECT_FALSE(slp.issue(event(5, 0, 1), out));
  EXPECT_TRUE(out.empty());
}

TEST(Slp, FewerThanThreeOffsetsNeverPromotes) {
  Slp slp(fast_slp());
  Cycle now = 0;
  teach(slp, 7, {1, 2}, now);  // only two distinct offsets
  EXPECT_FALSE(slp.has_pattern(7));
  EXPECT_EQ(slp.stats().promotions, 0u);
}

TEST(Slp, RepeatedSameOffsetDoesNotPromote) {
  Slp slp(fast_slp());
  Cycle now = 0;
  for (int i = 0; i < 10; ++i) slp.learn(event(7, 3, now += 10));
  EXPECT_EQ(slp.stats().promotions, 0u);
}

TEST(Slp, ThreeDistinctOffsetsPromoteAndTimeoutLearns) {
  Slp slp(fast_slp());
  Cycle now = 0;
  teach(slp, 7, {1, 5, 9, 12}, now);
  EXPECT_EQ(slp.stats().promotions, 1u);
  EXPECT_GE(slp.stats().timeout_evictions, 1u);
  EXPECT_TRUE(slp.has_pattern(7));
}

TEST(Slp, IssuePrefetchesPatternMinusTrigger) {
  Slp slp(fast_slp());
  Cycle now = 0;
  teach(slp, 7, {1, 5, 9, 12}, now);
  std::vector<prefetch::PrefetchRequest> out;
  EXPECT_TRUE(slp.issue(event(7, 5, now += 10), out));
  // Pattern {1,5,9,12} minus trigger 5 = {1,9,12}.
  ASSERT_EQ(out.size(), 3u);
  std::set<std::uint64_t> targets;
  for (const auto& r : out) {
    EXPECT_EQ(r.source, cache::FillSource::kPrefetchSlp);
    targets.insert(r.local_block % kBlocksPerSegment);
  }
  EXPECT_EQ(targets, (std::set<std::uint64_t>{1, 9, 12}));
}

TEST(Slp, IssueExcludesBlocksAlreadyAccessedThisVisit) {
  Slp slp(fast_slp());
  Cycle now = 0;
  teach(slp, 7, {1, 5, 9, 12}, now);
  // Revisit: blocks 1 and 9 already touched (they re-enter FT/AT).
  slp.learn(event(7, 1, now += 10));
  slp.learn(event(7, 9, now += 10));
  slp.learn(event(7, 5, now += 10));  // promotes back into AT
  std::vector<prefetch::PrefetchRequest> out;
  EXPECT_TRUE(slp.issue(event(7, 5, now), out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].local_block % kBlocksPerSegment, 12u);
}

TEST(Slp, CapacityEvictionAlsoLearns) {
  SlpConfig config = fast_slp();
  config.at_sets = 1;
  config.at_ways = 1;  // one-entry AT: every promotion evicts the previous
  config.at_timeout = 1000000;  // timeouts never fire
  Slp slp(config);
  Cycle now = 0;
  for (int b : {1, 2, 3}) slp.learn(event(10, b, now += 10));
  for (int b : {4, 5, 6}) slp.learn(event(20, b, now += 10));  // evicts page 10
  EXPECT_EQ(slp.stats().capacity_evictions, 1u);
  EXPECT_TRUE(slp.has_pattern(10));
}

TEST(Slp, TinySnapshotsFilteredFromPt) {
  // A capacity-evicted AT entry with fewer than promote_threshold bits must
  // not pollute the PT. Construct via promotion that immediately displaces.
  SlpConfig config = fast_slp();
  config.at_sets = 1;
  config.at_ways = 1;
  config.at_timeout = 1000000;
  Slp slp(config);
  Cycle now = 0;
  for (int b : {1, 2, 3}) slp.learn(event(10, b, now += 10));
  EXPECT_FALSE(slp.has_pattern(10));  // still accumulating, PT empty
  std::vector<prefetch::PrefetchRequest> out;
  EXPECT_FALSE(slp.issue(event(10, 1, now), out));
}

TEST(Slp, StorageBitsMatchBreakdownTable) {
  SlpConfig config;
  Slp slp(config);
  PlanariaConfig pc;
  pc.slp = config;
  pc.enable_tlp = false;
  EXPECT_EQ(slp.storage_bits(), planaria_storage(pc).per_channel_bits());
}

// ---------------------------------------------------------------------- TLP

TEST(Tlp, ConfigValidation) {
  TlpConfig config;
  config.rpt_entries = 0;
  EXPECT_THROW(Tlp{config}, std::invalid_argument);
  config = TlpConfig{};
  config.min_common_bits = 17;
  EXPECT_THROW(Tlp{config}, std::invalid_argument);
}

TEST(Tlp, LearnsBitmaps) {
  Tlp tlp;
  tlp.learn(event(100, 3, 1));
  tlp.learn(event(100, 7, 2));
  const SegmentBitmap* bm = tlp.bitmap_of(100);
  ASSERT_NE(bm, nullptr);
  EXPECT_TRUE(bm->test(3));
  EXPECT_TRUE(bm->test(7));
  EXPECT_EQ(bm->popcount(), 2);
}

TEST(Tlp, TransfersFromSimilarNeighbor) {
  Tlp tlp;  // distance 64, min common 4
  Cycle now = 0;
  // Page 0x100: blocks {1,2,3,4,8,9}.
  for (int b : {1, 2, 3, 4, 8, 9}) tlp.learn(event(0x100, b, ++now));
  // Page 0x110 (distance 16): shares {1,2,3,4}.
  for (int b : {1, 2, 3, 4}) tlp.learn(event(0x110, b, ++now));
  std::vector<prefetch::PrefetchRequest> out;
  EXPECT_TRUE(tlp.issue(event(0x110, 4, ++now), out));
  // Blocks set on 0x100 but not on 0x110: {8, 9}.
  ASSERT_EQ(out.size(), 2u);
  std::set<std::uint64_t> targets;
  for (const auto& r : out) {
    EXPECT_EQ(r.source, cache::FillSource::kPrefetchTlp);
    EXPECT_EQ(r.local_block / kBlocksPerSegment, 0x110u);
    targets.insert(r.local_block % kBlocksPerSegment);
  }
  EXPECT_EQ(targets, (std::set<std::uint64_t>{8, 9}));
}

TEST(Tlp, NoTransferBelowSimilarityFloor) {
  Tlp tlp;
  Cycle now = 0;
  for (int b : {1, 2, 3, 8, 9}) tlp.learn(event(0x100, b, ++now));
  for (int b : {1, 2, 3}) tlp.learn(event(0x110, b, ++now));  // only 3 common
  std::vector<prefetch::PrefetchRequest> out;
  EXPECT_FALSE(tlp.issue(event(0x110, 3, ++now), out));
  EXPECT_TRUE(out.empty());
}

TEST(Tlp, NoTransferBeyondDistanceThreshold) {
  Tlp tlp;  // distance threshold 64
  Cycle now = 0;
  for (int b : {1, 2, 3, 4, 8}) tlp.learn(event(0x100, b, ++now));
  for (int b : {1, 2, 3, 4}) tlp.learn(event(0x100 + 65, b, ++now));
  std::vector<prefetch::PrefetchRequest> out;
  EXPECT_FALSE(tlp.issue(event(0x100 + 65, 4, ++now), out));
}

TEST(Tlp, MostSimilarNeighborWins) {
  // Figure 6: page B (6 common blocks) beats page C (3 common blocks).
  Tlp tlp;
  Cycle now = 0;
  // Page C at 0x90: blocks {1,2,3,15} -> 3 common with A, one extra (15).
  for (int b : {1, 2, 3, 15}) tlp.learn(event(0x90, b, ++now));
  // Page B at 0xB0: blocks {1,2,3,4,5,6,10} -> 6 common, extra {10}.
  for (int b : {1, 2, 3, 4, 5, 6, 10}) tlp.learn(event(0xB0, b, ++now));
  // Page A at 0xA0 accesses {1,2,3,4,5,6}.
  for (int b : {1, 2, 3, 4, 5, 6}) tlp.learn(event(0xA0, b, ++now));
  std::vector<prefetch::PrefetchRequest> out;
  EXPECT_TRUE(tlp.issue(event(0xA0, 6, ++now), out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].local_block % kBlocksPerSegment, 10u)
      << "should borrow from B, not C";
}

TEST(Tlp, EvictionClearsRefBits) {
  TlpConfig config;
  config.rpt_entries = 2;
  Tlp tlp(config);
  Cycle now = 0;
  for (int b : {1, 2, 3, 4}) tlp.learn(event(0x10, b, ++now));
  for (int b : {1, 2, 3, 4}) tlp.learn(event(0x12, b, ++now));
  // Evict page 0x10 by allocating a third page far away.
  for (int b : {5, 6}) tlp.learn(event(0x9000, b, ++now));
  EXPECT_EQ(tlp.bitmap_of(0x10), nullptr);
  // 0x12 must no longer transfer from the evicted slot's stale data.
  std::vector<prefetch::PrefetchRequest> out;
  EXPECT_FALSE(tlp.issue(event(0x12, 4, ++now), out));
}

TEST(Tlp, StorageGrowsQuadraticallyWithEntries) {
  TlpConfig small;
  small.rpt_entries = 64;
  TlpConfig big;
  big.rpt_entries = 128;
  // Ref matrix is N*(N-1) bits total, so doubling N more than doubles bits.
  EXPECT_GT(Tlp(big).storage_bits(), 2 * Tlp(small).storage_bits());
}

// -------------------------------------------------------------- coordinator

TEST(Planaria, ConfigRequiresOneSubPrefetcher) {
  PlanariaConfig config;
  config.enable_slp = false;
  config.enable_tlp = false;
  EXPECT_THROW(PlanariaPrefetcher{config}, std::invalid_argument);
}

TEST(Planaria, NameReflectsAblation) {
  PlanariaConfig config;
  EXPECT_STREQ(PlanariaPrefetcher(config).name(), "planaria");
  config.enable_tlp = false;
  EXPECT_STREQ(PlanariaPrefetcher(config).name(), "planaria-slp-only");
  config.enable_tlp = true;
  config.enable_slp = false;
  EXPECT_STREQ(PlanariaPrefetcher(config).name(), "planaria-tlp-only");
}

PlanariaConfig fast_planaria() {
  PlanariaConfig config;
  config.slp = SlpConfig{};
  config.slp.at_timeout = 100;
  config.slp.sweep_interval = 1;
  return config;
}

TEST(Planaria, NoIssueOnHits) {
  PlanariaPrefetcher pf(fast_planaria());
  std::vector<prefetch::PrefetchRequest> out;
  pf.on_demand(event(5, 1, 1, /*sc_hit=*/true), out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(pf.stats().triggers, 0u);
}

TEST(Planaria, SlpHasIssuePriority) {
  PlanariaPrefetcher pf(fast_planaria());
  Cycle now = 0;
  std::vector<prefetch::PrefetchRequest> scratch;
  // Teach SLP page 7's snapshot across one full visit.
  for (int b : {1, 5, 9}) pf.on_demand(event(7, b, now += 10), scratch);
  for (int b : {1, 5, 9}) pf.on_demand(event(7, b, now += 10), scratch);
  now += 1000;
  pf.on_demand(event(999999, 0, now), scratch);  // trigger timeout sweep
  scratch.clear();
  pf.on_demand(event(7, 1, now += 10), scratch);
  ASSERT_FALSE(scratch.empty());
  for (const auto& r : scratch) {
    EXPECT_EQ(r.source, cache::FillSource::kPrefetchSlp);
  }
  EXPECT_GE(pf.stats().slp_issues, 1u);
}

TEST(Planaria, TlpFiresOnlyWhenSlpHasNoHistory) {
  PlanariaPrefetcher pf(fast_planaria());
  Cycle now = 0;
  std::vector<prefetch::PrefetchRequest> scratch;
  // Build TLP neighbor state without completing any SLP snapshot: pages 0x100
  // and 0x104, but each visit stays under the promote threshold... instead,
  // simply use a page with no PT entry (first visit) — SLP has no history.
  for (int b : {1, 2, 3, 4, 8, 9}) pf.on_demand(event(0x100, b, now += 10), scratch);
  scratch.clear();
  for (int b : {1, 2, 3, 4}) pf.on_demand(event(0x104, b, now += 10), scratch);
  // The last miss of 0x104 should have been handled by TLP (SLP's PT cannot
  // contain 0x104 yet).
  bool any_tlp = false;
  for (const auto& r : scratch) {
    any_tlp |= r.source == cache::FillSource::kPrefetchTlp;
  }
  EXPECT_TRUE(any_tlp);
  EXPECT_GE(pf.stats().tlp_issues, 1u);
  EXPECT_EQ(pf.stats().slp_issues, 0u);
}

TEST(Planaria, DisabledSubPrefetcherNeverIssues) {
  PlanariaConfig config = fast_planaria();
  config.enable_tlp = false;
  PlanariaPrefetcher pf(config);
  Cycle now = 0;
  std::vector<prefetch::PrefetchRequest> scratch;
  for (int b : {1, 2, 3, 4, 8, 9}) pf.on_demand(event(0x100, b, now += 10), scratch);
  for (int b : {1, 2, 3, 4}) pf.on_demand(event(0x104, b, now += 10), scratch);
  for (const auto& r : scratch) {
    EXPECT_NE(r.source, cache::FillSource::kPrefetchTlp);
  }
  EXPECT_EQ(pf.stats().tlp_issues, 0u);
}

TEST(Planaria, StorageSumsEnabledParts) {
  PlanariaConfig config;
  const auto full = PlanariaPrefetcher(config).storage_bits();
  config.enable_tlp = false;
  const auto slp_only = PlanariaPrefetcher(config).storage_bits();
  config.enable_tlp = true;
  config.enable_slp = false;
  const auto tlp_only = PlanariaPrefetcher(config).storage_bits();
  EXPECT_EQ(full, slp_only + tlp_only);
}

// ------------------------------------------------------------------ storage

TEST(Storage, DefaultConfigIsInPaperRegime) {
  const auto breakdown = planaria_storage();
  const double kb = breakdown.total_kb();
  // Paper: 345.2KB. Our field-exact accounting lands within 10%.
  EXPECT_GT(kb, 300.0);
  EXPECT_LT(kb, 380.0);
  const double frac = breakdown.fraction_of_sc(4ull << 20);
  EXPECT_GT(frac, 0.07);
  EXPECT_LT(frac, 0.095);
}

TEST(Storage, PtDominates) {
  const auto breakdown = planaria_storage();
  std::uint64_t pt_bits = 0;
  for (const auto& item : breakdown.items) {
    if (item.name.find("PT (pattern") != std::string::npos) pt_bits = item.bits();
  }
  EXPECT_GT(pt_bits, breakdown.per_channel_bits() / 2);
}

TEST(Storage, AblationConfigsShrink) {
  PlanariaConfig config;
  config.enable_tlp = false;
  EXPECT_LT(planaria_storage(config).per_channel_bits(),
            planaria_storage().per_channel_bits());
}

}  // namespace
}  // namespace planaria::core
