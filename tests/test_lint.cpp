// planaria-lint engine tests (DESIGN.md §12).
//
// Four layers:
//   * Tokenizer: the heuristic lexer must survive the constructs that break
//     naive regex scanners — raw strings, line continuations, block comments
//     containing directives — because every rule downstream trusts it.
//   * Config + rules: each rule fires on the in-memory and on-disk fixture
//     corpus (tools/lint/fixtures/<rule>/), and ONLY the targeted rule fires
//     per fixture, so a regression in one rule cannot hide behind another.
//   * The real tree: the repo must lint clean at HEAD, and the committed
//     layers.conf must be load-bearing — removing any single layer, allow,
//     hot-stop, or volatile-member line has to produce findings (or a config
//     error). Same for deleting a load_state (the pairing rule) or a single
//     member-serialize line inside a real save_state body (the state-flow
//     family): the mutation must surface as a finding.
//   * Interprocedural layer: the call graph (recursion, overload merging,
//     qualified binding, method-pointer degradation), the lambda capture
//     table, and the race/hot/state rule families over in-memory trees.
//   * Report: the --json schema (schema_version 4) is byte-pinned.

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/internal.hpp"
#include "lint/lint.hpp"

namespace planaria::lint {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

TEST(LintTokenizer, RawStringsSwallowQuotesAndCommentMarkers) {
  const TokenizedSource src = tokenize(
      "const char* s = R\"x(quote \" slash // star /* )x\";\nint after = 1;");
  std::size_t strings = 0;
  for (const Token& t : src.tokens) {
    if (t.kind == TokenKind::kString) {
      ++strings;
      EXPECT_EQ(t.text, "quote \" slash // star /* ");
    }
  }
  EXPECT_EQ(strings, 1u);
  // Nothing after the raw string was lost.
  bool saw_after = false;
  for (const Token& t : src.tokens) saw_after |= t.text == "after";
  EXPECT_TRUE(saw_after);
  EXPECT_TRUE(src.comments.empty());
}

TEST(LintTokenizer, LineContinuationsSpliceButKeepCounting) {
  const TokenizedSource src = tokenize(
      "int a \\\n    = 3;\n"
      "#define TWICE(x) \\\n  ((x) + (x))\n"
      "int b = 4;");
  int line_a = 0;
  int line_b = 0;
  for (const Token& t : src.tokens) {
    if (t.text == "a") line_a = t.line;
    if (t.text == "b") line_b = t.line;
  }
  EXPECT_EQ(line_a, 1);
  // The continuation inside the #define still advances the line counter.
  EXPECT_EQ(line_b, 5);
}

TEST(LintTokenizer, BlockCommentsHideIncludeDirectives) {
  const TokenizedSource src = tokenize(
      "/* #include \"fake.hpp\"\n   spans lines */\n"
      "#include \"real.hpp\"\n"
      "#include <vector>\n");
  ASSERT_EQ(src.includes.size(), 2u);
  EXPECT_EQ(src.includes[0].path, "real.hpp");
  EXPECT_TRUE(src.includes[0].quoted);
  EXPECT_EQ(src.includes[0].line, 3);
  EXPECT_EQ(src.includes[1].path, "vector");
  EXPECT_FALSE(src.includes[1].quoted);
  ASSERT_EQ(src.comments.size(), 1u);
  EXPECT_NE(src.comments[0].text.find("fake.hpp"), std::string::npos);
}

TEST(LintTokenizer, PragmaOnceAndPpNumbersAndCharLiterals) {
  const TokenizedSource src = tokenize(
      "#pragma once\n"
      "double d = 1.5e+3;\n"
      "unsigned h = 0x1Fu;\n"
      "char c = '\\'';\n");
  EXPECT_TRUE(src.has_pragma_once);
  std::vector<std::string> numbers;
  std::size_t chars = 0;
  for (const Token& t : src.tokens) {
    if (t.kind == TokenKind::kNumber) numbers.push_back(t.text);
    if (t.kind == TokenKind::kChar) ++chars;
  }
  // The exponent sign stays glued to the pp-number.
  ASSERT_EQ(numbers.size(), 2u);
  EXPECT_EQ(numbers[0], "1.5e+3");
  EXPECT_EQ(numbers[1], "0x1Fu");
  EXPECT_EQ(chars, 1u);
  EXPECT_FALSE(tokenize("int x = 0;").has_pragma_once);
}

TEST(LintTokenizer, DigitSeparatorsStayGluedToTheNumber) {
  const TokenizedSource src = tokenize(
      "unsigned a = 0xFF'FF;\n"
      "long b = 1'000'000;\n"
      "unsigned c = 0b1010'1010;\n");
  std::vector<std::string> numbers;
  for (const Token& t : src.tokens) {
    if (t.kind == TokenKind::kNumber) numbers.push_back(t.text);
  }
  // Each literal is ONE pp-number; a lexer that stops at the apostrophe
  // would emit a bogus kChar and desynchronize everything after it.
  ASSERT_EQ(numbers.size(), 3u);
  EXPECT_EQ(numbers[0], "0xFF'FF");
  EXPECT_EQ(numbers[1], "1'000'000");
  EXPECT_EQ(numbers[2], "0b1010'1010");
  for (const Token& t : src.tokens) EXPECT_NE(t.kind, TokenKind::kChar);
}

TEST(LintTokenizer, NumberFollowedByCharLiteralIsNotASeparator) {
  // An apostrophe only continues a pp-number when digit-ish text follows.
  // Directly after `0x1F`, `'+'` must lex as a char literal (the macro-heavy
  // adjacency case), and ordinary char literals after numbers stay intact.
  const TokenizedSource src = tokenize("g(0x1F'+');\ncase 0x2A: f('a');\n");
  std::vector<std::string> chars;
  std::vector<std::string> numbers;
  for (const Token& t : src.tokens) {
    if (t.kind == TokenKind::kChar) chars.push_back(t.text);
    if (t.kind == TokenKind::kNumber) numbers.push_back(t.text);
  }
  ASSERT_EQ(chars.size(), 2u);
  EXPECT_EQ(chars[0], "+");
  EXPECT_EQ(chars[1], "a");
  ASSERT_EQ(numbers.size(), 2u);
  EXPECT_EQ(numbers[0], "0x1F");
  EXPECT_EQ(numbers[1], "0x2A");
}

TEST(LintTokenizer, U8AndRawStringAdjacency) {
  const TokenizedSource src = tokenize(
      "auto a = u8\"plain\";\n"
      "auto b = u8R\"x(raw \" body)x\";\n"
      "auto c = LR\"(wide raw)\";\n"
      "int u8x = 1;\n");  // identifier starting with u8 stays an identifier
  std::vector<std::string> strings;
  bool saw_u8x = false;
  for (const Token& t : src.tokens) {
    if (t.kind == TokenKind::kString) strings.push_back(t.text);
    if (t.kind == TokenKind::kIdentifier && t.text == "u8x") saw_u8x = true;
  }
  ASSERT_EQ(strings.size(), 3u);
  EXPECT_EQ(strings[0], "plain");
  EXPECT_EQ(strings[1], "raw \" body");
  EXPECT_EQ(strings[2], "wide raw");
  EXPECT_TRUE(saw_u8x);
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

const char* const kMiniConf =
    "layer common\n"
    "layer cache core\n"
    "layer sim\n"
    "allow core -> sim : fixture reason\n"
    "sanction determinism src/sim/clock.cpp : config-time only\n"
    "snapshot-modules core\n"
    "contract-modules cache\n"
    "roundtrip-test tests/test_roundtrip.cpp\n";

TEST(LintConfig, ParsesLayersEdgesAndSanctions) {
  const Config c = parse_config(kMiniConf, "mini.conf");
  EXPECT_EQ(c.layer_of("common"), 0);
  EXPECT_EQ(c.layer_of("cache"), 1);
  EXPECT_EQ(c.layer_of("core"), 1);
  EXPECT_EQ(c.layer_of("sim"), 2);
  EXPECT_EQ(c.layer_of("nope"), -1);
  EXPECT_TRUE(c.edge_allowed("core", "sim"));
  EXPECT_FALSE(c.edge_allowed("cache", "sim"));
  EXPECT_TRUE(c.sanctioned("determinism", "src/sim/clock.cpp"));
  EXPECT_FALSE(c.sanctioned("determinism", "src/sim/other.cpp"));
  EXPECT_FALSE(c.sanctioned("raw-assert", "src/sim/clock.cpp"));
  EXPECT_EQ(c.snapshot_modules.count("core"), 1u);
  EXPECT_EQ(c.contract_modules.count("cache"), 1u);
  // Defaults: save_state and finish mark serialization contexts.
  EXPECT_EQ(c.serialization_apis.count("save_state"), 1u);
  EXPECT_EQ(c.serialization_apis.count("finish"), 1u);
}

TEST(LintConfig, RejectsMalformedLines) {
  // Reason-less allow edge.
  EXPECT_THROW(parse_config("layer a b\nallow a -> b\n", "c"),
               std::runtime_error);
  // Allow edge naming an undeclared module.
  EXPECT_THROW(parse_config("layer a\nallow a -> ghost : why\n", "c"),
               std::runtime_error);
  // Unknown keyword.
  EXPECT_THROW(parse_config("layer a\nforbid a\n", "c"), std::runtime_error);
  // Reason-less sanction.
  EXPECT_THROW(parse_config("layer a\nsanction determinism src/a/x.cpp\n", "c"),
               std::runtime_error);
  // No layers at all.
  EXPECT_THROW(parse_config("# empty\n", "c"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Rules and suppressions, in memory
// ---------------------------------------------------------------------------

std::set<std::string> rule_set(const std::vector<Finding>& findings) {
  std::set<std::string> rules;
  for (const Finding& f : findings) rules.insert(f.rule);
  return rules;
}

TEST(LintRules, DeletingLoadStateIsCaught) {
  const Config c = parse_config(kMiniConf, "mini.conf");
  std::map<std::string, std::string> files;
  files["src/core/pair.hpp"] =
      "#pragma once\n"
      "struct Writer;\n"
      "struct Reader;\n"
      "class Paired {\n"
      " public:\n"
      "  void save_state(Writer& w) const;\n"
      "  void load_state(Reader& r);\n"
      " private:\n"
      "  int counter_ = 0;\n"
      "};\n";
  // The mention must be a real token — a comment would not count.
  files["tests/test_roundtrip.cpp"] =
      "struct Paired;\nint main() { return 0; }\n";
  EXPECT_TRUE(run_lint_on(files, c).clean());

  // Delete the load_state declaration: the class decodes nothing it encodes.
  std::string& header = files["src/core/pair.hpp"];
  const std::size_t at = header.find("  void load_state(Reader& r);\n");
  ASSERT_NE(at, std::string::npos);
  header.erase(at, std::string("  void load_state(Reader& r);\n").size());
  const Report broken = run_lint_on(files, c);
  EXPECT_FALSE(broken.clean());
  EXPECT_EQ(rule_set(broken.findings).count("snapshot-pairing"), 1u);
}

TEST(LintRules, SuppressionWithReasonSilencesAndIsReported) {
  const Config c = parse_config(kMiniConf, "mini.conf");
  std::map<std::string, std::string> files;
  files["src/core/seeded.cpp"] =
      "#include <cstdlib>\n"
      "// lint: suppress(determinism) fixture reason text\n"
      "int f() { return rand(); }\n";
  const Report r = run_lint_on(files, c);
  EXPECT_TRUE(r.clean());
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "determinism");
  EXPECT_EQ(r.suppressed[0].suppress_reason, "fixture reason text");
}

TEST(LintRules, SuppressionWithoutReasonIsItselfAFinding) {
  const Config c = parse_config(kMiniConf, "mini.conf");
  std::map<std::string, std::string> files;
  files["src/core/seeded.cpp"] =
      "#include <cstdlib>\n"
      "// lint: suppress(determinism)\n"
      "int f() { return rand(); }\n";
  const Report r = run_lint_on(files, c);
  const std::set<std::string> rules = rule_set(r.findings);
  // The malformed directive is reported AND does not silence the finding.
  EXPECT_EQ(rules.count("suppression"), 1u);
  EXPECT_EQ(rules.count("determinism"), 1u);
}

TEST(LintRules, UnknownRuleInSuppressionIsAFinding) {
  const Config c = parse_config(kMiniConf, "mini.conf");
  std::map<std::string, std::string> files;
  files["src/core/odd.cpp"] =
      "// lint: suppress(not-a-rule) some reason\n"
      "int f() { return 1; }\n";
  const Report r = run_lint_on(files, c);
  EXPECT_EQ(rule_set(r.findings).count("suppression"), 1u);
}

TEST(LintRules, FileScopeSuppressionCoversEveryLine) {
  const Config c = parse_config(kMiniConf, "mini.conf");
  std::map<std::string, std::string> files;
  files["src/core/clocks.cpp"] =
      "// lint: suppress-file(determinism) fixture-wide waiver\n"
      "#include <ctime>\n"
      "long f() { return time(nullptr); }\n"
      "long g() { return clock(); }\n";
  const Report r = run_lint_on(files, c);
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.suppressed.size(), 2u);
}

TEST(LintRules, NoContractWaiverCoversContractCoverage) {
  const Config c = parse_config(kMiniConf, "mini.conf");
  std::map<std::string, std::string> files;
  files["src/cache/bump.hpp"] =
      "#pragma once\n"
      "class Bump {\n"
      " public:\n"
      "  void advance(int by);\n"
      " private:\n"
      "  int position_ = 0;\n"
      "  int steps_ = 0;\n"
      "};\n";
  files["src/cache/bump.cpp"] =
      "#include \"cache/bump.hpp\"\n"
      "void Bump::advance(int by) {\n"
      "  position_ += by;\n"
      "  steps_ += 1;\n"
      "  if (position_ > 9) { position_ = 0; }\n"
      "}\n";
  const Report bare = run_lint_on(files, c);
  EXPECT_EQ(rule_set(bare.findings).count("contract-coverage"), 1u);

  files["src/cache/bump.cpp"] =
      "#include \"cache/bump.hpp\"\n"
      "// lint: no-contract(wraparound counter, nothing to assert)\n"
      "void Bump::advance(int by) {\n"
      "  position_ += by;\n"
      "  steps_ += 1;\n"
      "  if (position_ > 9) { position_ = 0; }\n"
      "}\n";
  const Report waived = run_lint_on(files, c);
  EXPECT_TRUE(waived.clean());
  ASSERT_EQ(waived.suppressed.size(), 1u);
  EXPECT_EQ(waived.suppressed[0].rule, "contract-coverage");
}

// ---------------------------------------------------------------------------
// Interprocedural layer: config keywords, call graph, capture table, and the
// race/hot families over in-memory trees
// ---------------------------------------------------------------------------

TEST(LintConfig, ParsesHotRootsStopsAndParallelApis) {
  const Config c = parse_config(
      "layer core\n"
      "hot-root Simulator::step on_demand\n"
      "hot-stop ThreadPool::parallel_for : amortized batch dispatch\n"
      "parallel-api run_jobs\n",
      "c");
  ASSERT_EQ(c.hot_roots.size(), 2u);
  EXPECT_EQ(c.hot_roots[0], "Simulator::step");
  EXPECT_EQ(c.hot_roots[1], "on_demand");
  ASSERT_EQ(c.hot_stops.size(), 1u);
  // The '::' in a qualified spec must not be mistaken for the ':' that
  // separates the reason.
  EXPECT_EQ(c.hot_stops[0].spec, "ThreadPool::parallel_for");
  EXPECT_EQ(c.hot_stops[0].reason, "amortized batch dispatch");
  EXPECT_EQ(c.parallel_apis.count("run_jobs"), 1u);
  // The built-in parallel APIs stay in alongside additions.
  EXPECT_EQ(c.parallel_apis.count("parallel_for"), 1u);
  EXPECT_EQ(c.parallel_apis.count("submit"), 1u);
  // A hot-stop without a reason is an undocumented exception: rejected.
  EXPECT_THROW(parse_config("layer a\nhot-stop f\n", "c"), std::runtime_error);
}

TEST(LintConfig, ParsesStateRootsAndVolatileMembers) {
  const Config c = parse_config(
      "layer core\n"
      "state-root Simulator::run replay\n"
      "volatile-member DramChannel::next_event_when_ : derived cache\n"
      "volatile-member scratch_ : rebuilt on first use\n",
      "c");
  ASSERT_EQ(c.state_roots.size(), 2u);
  EXPECT_EQ(c.state_roots[0], "Simulator::run");
  EXPECT_EQ(c.state_roots[1], "replay");
  ASSERT_EQ(c.volatile_members.size(), 2u);
  // As with hot-stop, the '::' in a qualified spec must not be read as the
  // ':' that introduces the reason.
  EXPECT_EQ(c.volatile_members[0].spec, "DramChannel::next_event_when_");
  EXPECT_EQ(c.volatile_members[0].reason, "derived cache");
  EXPECT_EQ(c.volatile_members[1].spec, "scratch_");
  EXPECT_EQ(c.volatile_members[1].reason, "rebuilt on first use");
  // A waiver without a reason is a mute button, not an audit trail: rejected.
  EXPECT_THROW(parse_config("layer a\nvolatile-member m_\n", "c"),
               std::runtime_error);
}

FileInfo analyzed_file(const std::string& path, const std::string& text) {
  FileInfo f;
  f.path = path;
  f.module = "core";
  f.src = tokenize(text);
  std::vector<Finding> sink;
  analyze(f, sink);
  return f;
}

TEST(LintCallGraph, RecursionOverloadsAndQualifiedBinding) {
  std::vector<FileInfo> files;
  files.push_back(analyzed_file(
      "src/core/a.cpp",
      "namespace fx {\n"
      "int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }\n"
      "int fib(long n) { return static_cast<int>(n); }\n"
      "struct Runner { void go(); void sweep(); };\n"
      "void Runner::go() { sweep(); }\n"
      "void Runner::sweep() { fib(3); }\n"
      "struct Cleaner { void sweep(); };\n"
      "void Cleaner::sweep() {}\n"
      "}\n"));
  const CallGraph g = build_call_graph(files);
  // Recursion terminates; a bare spec reaches every overload of the name.
  const auto from_fib = g.reachable({"fib"}, {}, nullptr);
  EXPECT_EQ(from_fib.size(), 2u);
  // Unqualified sweep() inside Runner::go binds to Runner::sweep — not to
  // every sweep in the program (C++ lookup prefers the member).
  std::map<std::size_t, std::string> prov;
  const auto from_go = g.reachable({"Runner::go"}, {}, &prov);
  std::set<std::string> names;
  for (const std::size_t id : from_go) names.insert(g.nodes[id].qualified);
  EXPECT_EQ(names.count("Runner::sweep"), 1u);
  EXPECT_EQ(names.count("Cleaner::sweep"), 0u);
  // fib is reached through Runner::sweep, so the whole closure carries the
  // root spec that discovered it.
  EXPECT_EQ(names.count("fib"), 1u);
  for (const std::size_t id : from_go) EXPECT_EQ(prov[id], "Runner::go");
}

TEST(LintCallGraph, MethodPointersCreateNoEdgesAndStopsCut) {
  std::vector<FileInfo> files;
  files.push_back(analyzed_file(
      "src/core/mp.cpp",
      "struct W { void work(); };\n"
      "void W::work() {}\n"
      "void dispatch() { auto fp = &W::work; (void)fp; }\n"
      "void chain_c() {}\n"
      "void chain_b() { chain_c(); }\n"
      "void chain_a() { chain_b(); }\n"));
  const CallGraph g = build_call_graph(files);
  // Taking a method's address is not a call: reachability degrades
  // gracefully to just the root instead of guessing an edge.
  const auto from_dispatch = g.reachable({"dispatch"}, {}, nullptr);
  ASSERT_EQ(from_dispatch.size(), 1u);
  EXPECT_EQ(g.nodes[from_dispatch[0]].bare, "dispatch");
  // A stop removes the node and everything only reachable through it.
  const auto cut = g.reachable({"chain_a"}, {"chain_b"}, nullptr);
  std::set<std::string> names;
  for (const std::size_t id : cut) names.insert(g.nodes[id].bare);
  EXPECT_EQ(names, (std::set<std::string>{"chain_a"}));
}

TEST(LintCaptureTable, LambdasInLambdasAndCaptureModes) {
  const FileInfo f = analyzed_file(
      "src/core/lam.cpp",
      "void outer(int shared) {\n"
      "  int x = 1;\n"
      "  auto a = [&](int i) {\n"
      "    auto b = [=](int j) { return j + i; };\n"
      "    b(i);\n"
      "  };\n"
      "  a(shared);\n"
      "  auto c = [x](int k) { return k + x; };\n"
      "  c(2);\n"
      "}\n");
  ASSERT_EQ(f.lambdas.size(), 3u);  // sorted by intro position: a, b, c
  const LambdaInfo& a = f.lambdas[0];
  EXPECT_TRUE(a.ref_default);
  EXPECT_EQ(a.bound_name, "a");
  EXPECT_EQ(a.first_param, "i");
  // The nested lambda is its own entry, nested inside a's body range, with
  // its own capture default.
  const LambdaInfo& b = f.lambdas[1];
  EXPECT_TRUE(b.value_default);
  EXPECT_FALSE(b.ref_default);
  EXPECT_GT(b.intro_begin, a.body_begin);
  EXPECT_LT(b.body_end, a.body_end);
  const LambdaInfo& c = f.lambdas[2];
  EXPECT_FALSE(c.ref_default);
  EXPECT_EQ(c.by_value.count("x"), 1u);
}

// Acceptance mutation seed: a by-ref-capture write introduced into a
// parallel_for body MUST be caught by the race family.
TEST(LintRules, SeededCaptureWriteIntoParallelForIsCaught) {
  const Config c = parse_config(kMiniConf, "mini.conf");
  std::map<std::string, std::string> files;
  files["src/core/shard.cpp"] =
      "struct Pool { void parallel_for(int n, void (*f)(int)); };\n"
      "int tally(Pool& pool, int n) {\n"
      "  int acc = 0;\n"
      "  pool.parallel_for(n, [&](int i) { acc += i; });\n"
      "  return acc;\n"
      "}\n";
  const Report r = run_lint_on(files, c);
  EXPECT_EQ(rule_set(r.findings).count("race-capture-write"), 1u);
}

TEST(LintRules, DisjointSlotWritesAndAtomicsAreNotRaces) {
  const Config c = parse_config(kMiniConf, "mini.conf");
  std::map<std::string, std::string> files;
  files["src/core/ok.cpp"] =
      "#include <atomic>\n"
      "#include <cstddef>\n"
      "#include <vector>\n"
      "struct Pool { void parallel_for(std::size_t n, void (*f)(std::size_t)); };\n"
      "void fill(Pool& pool, std::vector<int>& out, std::atomic<int>& hits) {\n"
      "  pool.parallel_for(out.size(), [&](std::size_t i) {\n"
      "    out[i] = static_cast<int>(i) * 2;\n"  // disjoint slot per index
      "    hits.fetch_add(1);\n"                 // atomic RMW
      "  });\n"
      "}\n";
  EXPECT_TRUE(run_lint_on(files, c).clean());
}

TEST(LintRules, HotFamilyFollowsReachabilityAndStops) {
  const Config c = parse_config(
      "layer core\n"
      "hot-root outer\n"
      "hot-stop slow_path : error reporting is off the per-record path\n",
      "c");
  std::map<std::string, std::string> files;
  files["src/core/hot.cpp"] =
      "int* helper(int n) { return new int[n]; }\n"
      "void slow_path(int n) { throw n; }\n"
      "int outer(int n) {\n"
      "  if (n < 0) slow_path(n);\n"
      "  int* p = helper(n);\n"
      "  return p[0];\n"
      "}\n";
  const Report r = run_lint_on(files, c);
  const std::set<std::string> rules = rule_set(r.findings);
  // helper is in outer's closure: its allocation is hot.
  EXPECT_EQ(rules.count("hot-alloc"), 1u);
  // slow_path is stopped: its throw is not.
  EXPECT_EQ(rules.count("hot-throw"), 0u);
  bool saw_provenance = false;
  for (const Finding& f : r.findings) {
    saw_provenance |=
        f.message.find("reachable from hot-root 'outer'") != std::string::npos;
  }
  EXPECT_TRUE(saw_provenance);
}

TEST(LintRules, NoHotRootsMeansHotFamilyIsInert) {
  const Config c = parse_config(kMiniConf, "mini.conf");
  std::map<std::string, std::string> files;
  files["src/core/quiet.cpp"] = "int* f(int n) { return new int[n]; }\n";
  EXPECT_TRUE(run_lint_on(files, c).clean());
}

// ---------------------------------------------------------------------------
// State-flow family: member-level save/load reconciliation (DESIGN.md §17)
// ---------------------------------------------------------------------------

// A minimal codec pair; state-flow classifies a member touch as "serializing"
// only when its statement names one of save/load's own parameters.
const char* const kCodec =
    "struct Writer { void u64(unsigned long long) {} };\n"
    "struct Reader { unsigned long long u64() { return 0; } };\n";

TEST(LintStateFlow, SavedButNeverRestoredMemberIsCaught) {
  const Config c = parse_config("layer core\n", "mini.conf");
  std::map<std::string, std::string> files;
  files["src/core/thing.cpp"] =
      std::string(kCodec) +
      "class Thing {\n"
      " public:\n"
      "  void save_state(Writer& w) const { w.u64(a_); w.u64(b_); }\n"
      "  void load_state(Reader& r) { a_ = r.u64(); }\n"
      " private:\n"
      "  unsigned long long a_ = 0;\n"
      "  unsigned long long b_ = 0;\n"
      "};\n";
  const Report r = run_lint_on(files, c);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "state-unloaded-member");
  EXPECT_NE(r.findings[0].message.find("'Thing::b_'"), std::string::npos);
}

TEST(LintStateFlow, SaveLoadOrderDivergenceIsCaught) {
  const Config c = parse_config("layer core\n", "mini.conf");
  std::map<std::string, std::string> files;
  files["src/core/swapped.cpp"] =
      std::string(kCodec) +
      "class Swapped {\n"
      " public:\n"
      "  void save_state(Writer& w) const { w.u64(a_); w.u64(b_); }\n"
      "  void load_state(Reader& r) { b_ = r.u64(); a_ = r.u64(); }\n"
      " private:\n"
      "  unsigned long long a_ = 0;\n"
      "  unsigned long long b_ = 0;\n"
      "};\n";
  const Report r = run_lint_on(files, c);
  ASSERT_EQ(r.findings.size(), 1u);
  // PLNSNAP1 has no field tags: touch order IS the byte layout, so the
  // swapped decode reads a_'s bytes into b_.
  EXPECT_EQ(r.findings[0].rule, "state-order-mismatch");
}

TEST(LintStateFlow, MutatedButNeverSerializedMemberIsCaught) {
  // The unsaved-member check walks mutation sites reachable from the state
  // roots (unioned with hot roots); without roots it is inert.
  const Config c = parse_config("layer core\nstate-root tick\n", "mini.conf");
  std::map<std::string, std::string> files;
  files["src/core/counter.cpp"] =
      std::string(kCodec) +
      "class Counter {\n"
      " public:\n"
      "  void tick() { ++hits_; ++misses_; }\n"
      "  void save_state(Writer& w) const { w.u64(hits_); }\n"
      "  void load_state(Reader& r) { hits_ = r.u64(); }\n"
      " private:\n"
      "  unsigned long long hits_ = 0;\n"
      "  unsigned long long misses_ = 0;\n"
      "};\n";
  const Report r = run_lint_on(files, c);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "state-unsaved-member");
  EXPECT_NE(r.findings[0].message.find("'Counter::misses_'"),
            std::string::npos);
}

TEST(LintStateFlow, SerializedNondeterminismIsCaught) {
  const Config c = parse_config("layer core\n", "mini.conf");
  std::map<std::string, std::string> files;
  files["src/core/tagged.cpp"] =
      std::string(kCodec) +
      "class Tagged {\n"
      " public:\n"
      "  void stamp() { seed_ = reinterpret_cast<unsigned long long>(this); }\n"
      "  void save_state(Writer& w) const { w.u64(seed_); }\n"
      "  void load_state(Reader& r) { seed_ = r.u64(); }\n"
      " private:\n"
      "  unsigned long long seed_ = 0;\n"
      "};\n";
  const Report r = run_lint_on(files, c);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "state-det-taint");
  EXPECT_NE(r.findings[0].message.find("'Tagged::seed_'"), std::string::npos);
}

TEST(LintStateFlow, VolatileDirectiveWaivesWithItsReason) {
  const Config c = parse_config("layer core\nstate-root tick\n", "mini.conf");
  std::map<std::string, std::string> files;
  files["src/core/counter.cpp"] =
      std::string(kCodec) +
      "class Counter {\n"
      " public:\n"
      "  void tick() { ++hits_; ++misses_; }\n"
      "  void save_state(Writer& w) const { w.u64(hits_); }\n"
      "  void load_state(Reader& r) { hits_ = r.u64(); }\n"
      " private:\n"
      "  unsigned long long hits_ = 0;\n"
      "  // lint: volatile(misses_): diagnostic counter, reset on resume\n"
      "  unsigned long long misses_ = 0;\n"
      "};\n";
  const Report r = run_lint_on(files, c);
  EXPECT_TRUE(r.clean());
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "state-unsaved-member");
  EXPECT_EQ(r.suppressed[0].suppress_reason,
            "diagnostic counter, reset on resume");
}

TEST(LintStateFlow, ConfigVolatileMemberWaivesToo) {
  const Config c = parse_config(
      "layer core\n"
      "state-root tick\n"
      "volatile-member Counter::misses_ : diagnostic counter\n",
      "mini.conf");
  std::map<std::string, std::string> files;
  files["src/core/counter.cpp"] =
      std::string(kCodec) +
      "class Counter {\n"
      " public:\n"
      "  void tick() { ++hits_; ++misses_; }\n"
      "  void save_state(Writer& w) const { w.u64(hits_); }\n"
      "  void load_state(Reader& r) { hits_ = r.u64(); }\n"
      " private:\n"
      "  unsigned long long hits_ = 0;\n"
      "  unsigned long long misses_ = 0;\n"
      "};\n";
  const Report r = run_lint_on(files, c);
  EXPECT_TRUE(r.clean());
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "state-unsaved-member");
  // The config origin is visible in the audit trail.
  EXPECT_NE(r.suppressed[0].suppress_reason.find("layers.conf"),
            std::string::npos);
}

TEST(LintStateFlow, MalformedVolatileDirectiveIsAFinding) {
  const Config c = parse_config("layer core\n", "mini.conf");
  // Reason-less waiver: reported, silences nothing.
  std::map<std::string, std::string> files;
  files["src/core/bad.cpp"] =
      "// lint: volatile(misses_)\n"
      "int f() { return 1; }\n";
  EXPECT_EQ(rule_set(run_lint_on(files, c).findings).count("suppression"), 1u);
  // A member spec without the trailing underscore cannot name a data member.
  files["src/core/bad.cpp"] =
      "// lint: volatile(misses): not a member name\n"
      "int f() { return 1; }\n";
  EXPECT_EQ(rule_set(run_lint_on(files, c).findings).count("suppression"), 1u);
}

// ---------------------------------------------------------------------------
// Fixture corpus on disk: each directory trips exactly its namesake rule
// ---------------------------------------------------------------------------

TEST(LintFixtures, EveryFixtureFailsWithItsNamesakeRule) {
  const fs::path fixtures(PLANARIA_LINT_FIXTURES_DIR);
  ASSERT_TRUE(fs::is_directory(fixtures));
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(fixtures)) {
    if (entry.is_directory()) names.push_back(entry.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  // One fixture per rule id; growing the rule catalog must grow the corpus.
  const std::vector<std::string> expected = {
      "contract-coverage",  "determinism",       "hot-alloc",
      "hot-env-read",       "hot-iostream",      "hot-mutex",
      "hot-string",         "hot-throw",         "io-raw-call",
      "io-raw-stream",      "layer-cycle",       "layer-undeclared",
      "layering",           "pragma-once",       "race-capture-write",
      "race-nonconst-call", "race-shared-static", "raw-assert",
      "snapshot-missing",   "snapshot-pairing",  "snapshot-roundtrip",
      "state-det-taint",    "state-order-mismatch", "state-unloaded-member",
      "state-unsaved-member", "suppression",     "unordered-iteration",
      "using-namespace"};
  EXPECT_EQ(names, expected);

  for (const std::string& name : names) {
    SCOPED_TRACE(name);
    Options options;
    options.root = (fixtures / name).string();
    const Report report = run_lint(options);
    EXPECT_FALSE(report.clean());
    const std::set<std::string> rules = rule_set(report.findings);
    // The namesake rule fires...
    EXPECT_EQ(rules.count(name), 1u);
    // ...and nothing else does: a fixture that trips extra rules can no
    // longer prove the namesake rule caused the nonzero exit.
    EXPECT_EQ(rules.size(), 1u);
  }
}

// ---------------------------------------------------------------------------
// The real tree
// ---------------------------------------------------------------------------

TEST(LintRepo, TreeIsCleanAtHead) {
  Options options;
  options.root = PLANARIA_LINT_REPO_ROOT;
  const Report report = run_lint(options);
  for (const Finding& f : report.findings) {
    ADD_FAILURE() << f.file << ":" << f.line << " [" << f.rule << "] "
                  << f.message;
  }
  EXPECT_GT(report.files_scanned, 50);
  // Every suppression in the tree carries a reason; that is what makes the
  // suppressed list auditable rather than a mute button.
  for (const Finding& f : report.suppressed) {
    EXPECT_FALSE(f.suppress_reason.empty()) << f.file << ":" << f.line;
  }
}

/// Removes line `index` (0-based, counting only lines matching `prefix`) from
/// the committed layers.conf and returns the mutated text; empty when there
/// is no such line.
std::string drop_nth_line_with_prefix(const std::string& text,
                                      const std::string& prefix,
                                      std::size_t index) {
  std::istringstream in(text);
  std::ostringstream out;
  std::string line;
  std::size_t seen = 0;
  bool dropped = false;
  while (std::getline(in, line)) {
    if (line.rfind(prefix, 0) == 0) {
      if (seen++ == index) {
        dropped = true;
        continue;
      }
    }
    out << line << "\n";
  }
  return dropped ? out.str() : std::string();
}

TEST(LintRepo, EveryConfigLineIsLoadBearing) {
  const fs::path repo(PLANARIA_LINT_REPO_ROOT);
  std::ifstream in(repo / "tools/lint/layers.conf");
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string committed = buf.str();

  const fs::path scratch =
      fs::temp_directory_path() / "planaria-lint-mutation";
  fs::create_directories(scratch);

  int mutations = 0;
  for (const std::string prefix :
       {"layer ", "allow ", "hot-stop ", "volatile-member "}) {
    for (std::size_t i = 0;; ++i) {
      const std::string mutated =
          drop_nth_line_with_prefix(committed, prefix, i);
      if (mutated.empty()) break;
      ++mutations;
      SCOPED_TRACE(prefix + "line " + std::to_string(i));
      const fs::path conf = scratch / ("mutated_" + std::to_string(mutations) +
                                       ".conf");
      std::ofstream(conf) << mutated;

      Options options;
      options.root = repo.string();
      options.config_path = conf.string();
      try {
        const Report report = run_lint(options);
        // Dropping a layer or allow line must surface findings: the config
        // carries no decorative lines.
        EXPECT_FALSE(report.clean());
      } catch (const std::runtime_error&) {
        // Also acceptable: dropping a layer line orphans an allow edge and
        // the config no longer parses. The gate still fails.
      }
    }
  }
  // The committed config declares 9 layer lines, 7 allow edges, 1 hot-stop
  // (dropping the stop floods the hot family with thread-pool internals),
  // and 1 volatile-member (dropping it resurfaces the DramChannel
  // next-event-cache finding); a rewrite that shrinks it should be a
  // deliberate act, visible here.
  EXPECT_EQ(mutations, 18);
  fs::remove_all(scratch);
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Acceptance mutation seed for the state-flow family: deleting a single
// member-serialize line from a REAL save_state body must surface as a
// state-* finding naming that member. This is the property the byte-pinned
// golden snapshots cannot give us — they catch layout drift only for the
// state the seed trace happens to exercise; the lint family reconciles the
// code paths themselves.
TEST(LintRepo, DeletingAMemberSerializeLineIsCaught) {
  const fs::path repo(PLANARIA_LINT_REPO_ROOT);
  const Config c = parse_config("layer common\nlayer core prefetch\n", "c");

  struct Mutation {
    const char* def_path;   // file holding the save_state body
    const char* decl_path;  // header declaring the class's members
    const char* erase;      // the exact serialize line to delete
    const char* cls;
    const char* member;
  };
  const Mutation kMutations[] = {
      {"src/core/coordinators.cpp", "src/core/coordinators.hpp",
       "  slp_.save_state(w);\n", "SerialComposite", "slp_"},
      {"src/core/coordinators.cpp", "src/core/coordinators.hpp",
       "  tlp_.save_state(w);\n", "SerialComposite", "tlp_"},
      {"src/core/coordinators.cpp", "src/core/coordinators.hpp",
       "  w.b(slp_active_);\n", "SerialComposite", "slp_active_"},
      {"src/core/coordinators.cpp", "src/core/coordinators.hpp",
       "  w.u32(static_cast<std::uint32_t>(slp_failures_));\n",
       "SerialComposite", "slp_failures_"},
      {"src/core/coordinators.cpp", "src/core/coordinators.hpp",
       "  w.u64(switches_);\n", "SerialComposite", "switches_"},
      {"src/prefetch/spp.cpp", "src/prefetch/spp.hpp",
       "  w.u64(static_cast<std::uint64_t>(ghr_next_));\n",
       "SignaturePathPrefetcher", "ghr_next_"},
  };

  for (const Mutation& m : kMutations) {
    SCOPED_TRACE(std::string(m.cls) + "::" + m.member);
    std::map<std::string, std::string> files;
    files[m.def_path] = slurp(repo / m.def_path);
    files[m.decl_path] = slurp(repo / m.decl_path);
    ASSERT_FALSE(files[m.def_path].empty());
    ASSERT_FALSE(files[m.decl_path].empty());

    // Baseline: the untouched pair carries no state findings (other families
    // may grumble about the truncated tree; they are not under test here).
    const auto state_rules = [](const Report& r) {
      std::set<std::string> rules;
      for (const Finding& f : r.findings) {
        if (f.rule.rfind("state-", 0) == 0) rules.insert(f.rule);
      }
      return rules;
    };
    EXPECT_TRUE(state_rules(run_lint_on(files, c)).empty());

    // Delete exactly one serialize line (first occurrence is inside the
    // class's own save_state: the composite bodies come first in the file).
    std::string& body = files[m.def_path];
    const std::size_t at = body.find(m.erase);
    ASSERT_NE(at, std::string::npos);
    body.erase(at, std::string(m.erase).size());

    const Report broken = run_lint_on(files, c);
    bool caught = false;
    const std::string want = std::string("'") + m.cls + "::" + m.member + "'";
    for (const Finding& f : broken.findings) {
      caught |= f.rule.rfind("state-", 0) == 0 &&
                f.message.find(want) != std::string::npos;
    }
    EXPECT_TRUE(caught) << "deleting `" << m.erase
                        << "` produced no state-* finding for " << want;
  }
}

// ---------------------------------------------------------------------------
// JSON report schema (version 4) is byte-pinned
// ---------------------------------------------------------------------------

TEST(LintReport, JsonSchemaVersion4IsStable) {
  Report report;
  report.files_scanned = 2;
  Finding active;
  active.rule = "determinism";
  active.file = "src/core/a.cpp";
  active.line = 7;
  active.message = "call to 'rand()'";
  report.findings.push_back(active);
  Finding race;
  race.rule = "race-capture-write";
  race.file = "src/core/a.cpp";
  race.line = 9;
  race.message = "write to 'n'";
  report.findings.push_back(race);
  Finding hot;
  hot.rule = "hot-alloc";
  hot.file = "src/core/a.cpp";
  hot.line = 11;
  hot.message = "operator new";
  report.findings.push_back(hot);
  Finding quiet;
  quiet.rule = "raw-assert";
  quiet.file = "src/core/b.cpp";
  quiet.line = 3;
  quiet.message = "say \"why\"";
  quiet.suppress_reason = "legacy\tcode";
  report.suppressed.push_back(quiet);

  Finding bypass;
  bypass.rule = "io-raw-call";
  bypass.file = "src/core/a.cpp";
  bypass.line = 13;
  bypass.message = "direct 'fopen'";
  report.findings.push_back(bypass);

  Finding state;
  state.rule = "state-unloaded-member";
  state.file = "src/core/a.cpp";
  state.line = 17;
  state.message = "member 'C::m_' never restored";
  report.findings.push_back(state);

  // Version 4 adds the per-family "state" count of save/load-reconciliation
  // findings next to the version-3 "race"/"hot"/"io" counts — all over
  // ACTIVE findings only, so CI can gate the families without parsing
  // messages (scripts/check_lint_report.py holds the key-level contract).
  const std::string expected =
      "{\"tool\":\"planaria-lint\",\"schema_version\":4,\"root\":\"/r\","
      "\"files_scanned\":2,\"findings\":[{\"rule\":\"determinism\","
      "\"file\":\"src/core/a.cpp\",\"line\":7,"
      "\"message\":\"call to 'rand()'\"},{\"rule\":\"race-capture-write\","
      "\"file\":\"src/core/a.cpp\",\"line\":9,"
      "\"message\":\"write to 'n'\"},{\"rule\":\"hot-alloc\","
      "\"file\":\"src/core/a.cpp\",\"line\":11,"
      "\"message\":\"operator new\"},{\"rule\":\"io-raw-call\","
      "\"file\":\"src/core/a.cpp\",\"line\":13,"
      "\"message\":\"direct 'fopen'\"},{\"rule\":\"state-unloaded-member\","
      "\"file\":\"src/core/a.cpp\",\"line\":17,"
      "\"message\":\"member 'C::m_' never restored\"}],\"suppressed\":["
      "{\"rule\":\"raw-assert\",\"file\":\"src/core/b.cpp\",\"line\":3,"
      "\"message\":\"say \\\"why\\\"\",\"reason\":\"legacy\\tcode\"}],"
      "\"counts\":{\"findings\":5,\"suppressed\":1,\"race\":1,\"hot\":1,"
      "\"io\":1,\"state\":1}}";
  EXPECT_EQ(to_json(report, "/r"), expected);

  Report empty;
  EXPECT_EQ(to_json(empty, ""),
            "{\"tool\":\"planaria-lint\",\"schema_version\":4,\"root\":\"\","
            "\"files_scanned\":0,\"findings\":[],\"suppressed\":[],"
            "\"counts\":{\"findings\":0,\"suppressed\":0,\"race\":0,"
            "\"hot\":0,\"io\":0,\"state\":0}}");
}

}  // namespace
}  // namespace planaria::lint
