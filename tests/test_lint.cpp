// planaria-lint engine tests (DESIGN.md §12).
//
// Four layers:
//   * Tokenizer: the heuristic lexer must survive the constructs that break
//     naive regex scanners — raw strings, line continuations, block comments
//     containing directives — because every rule downstream trusts it.
//   * Config + rules: each rule fires on the in-memory and on-disk fixture
//     corpus (tools/lint/fixtures/<rule>/), and ONLY the targeted rule fires
//     per fixture, so a regression in one rule cannot hide behind another.
//   * The real tree: the repo must lint clean at HEAD, and the committed
//     layers.conf must be load-bearing — removing any single layer or allow
//     line has to produce findings (or a config error). Same for deleting a
//     load_state: the pairing rule must catch it.
//   * Interprocedural layer: the call graph (recursion, overload merging,
//     qualified binding, method-pointer degradation), the lambda capture
//     table, and the race/hot rule families over in-memory trees.
//   * Report: the --json schema (schema_version 3) is byte-pinned.

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/internal.hpp"
#include "lint/lint.hpp"

namespace planaria::lint {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

TEST(LintTokenizer, RawStringsSwallowQuotesAndCommentMarkers) {
  const TokenizedSource src = tokenize(
      "const char* s = R\"x(quote \" slash // star /* )x\";\nint after = 1;");
  std::size_t strings = 0;
  for (const Token& t : src.tokens) {
    if (t.kind == TokenKind::kString) {
      ++strings;
      EXPECT_EQ(t.text, "quote \" slash // star /* ");
    }
  }
  EXPECT_EQ(strings, 1u);
  // Nothing after the raw string was lost.
  bool saw_after = false;
  for (const Token& t : src.tokens) saw_after |= t.text == "after";
  EXPECT_TRUE(saw_after);
  EXPECT_TRUE(src.comments.empty());
}

TEST(LintTokenizer, LineContinuationsSpliceButKeepCounting) {
  const TokenizedSource src = tokenize(
      "int a \\\n    = 3;\n"
      "#define TWICE(x) \\\n  ((x) + (x))\n"
      "int b = 4;");
  int line_a = 0;
  int line_b = 0;
  for (const Token& t : src.tokens) {
    if (t.text == "a") line_a = t.line;
    if (t.text == "b") line_b = t.line;
  }
  EXPECT_EQ(line_a, 1);
  // The continuation inside the #define still advances the line counter.
  EXPECT_EQ(line_b, 5);
}

TEST(LintTokenizer, BlockCommentsHideIncludeDirectives) {
  const TokenizedSource src = tokenize(
      "/* #include \"fake.hpp\"\n   spans lines */\n"
      "#include \"real.hpp\"\n"
      "#include <vector>\n");
  ASSERT_EQ(src.includes.size(), 2u);
  EXPECT_EQ(src.includes[0].path, "real.hpp");
  EXPECT_TRUE(src.includes[0].quoted);
  EXPECT_EQ(src.includes[0].line, 3);
  EXPECT_EQ(src.includes[1].path, "vector");
  EXPECT_FALSE(src.includes[1].quoted);
  ASSERT_EQ(src.comments.size(), 1u);
  EXPECT_NE(src.comments[0].text.find("fake.hpp"), std::string::npos);
}

TEST(LintTokenizer, PragmaOnceAndPpNumbersAndCharLiterals) {
  const TokenizedSource src = tokenize(
      "#pragma once\n"
      "double d = 1.5e+3;\n"
      "unsigned h = 0x1Fu;\n"
      "char c = '\\'';\n");
  EXPECT_TRUE(src.has_pragma_once);
  std::vector<std::string> numbers;
  std::size_t chars = 0;
  for (const Token& t : src.tokens) {
    if (t.kind == TokenKind::kNumber) numbers.push_back(t.text);
    if (t.kind == TokenKind::kChar) ++chars;
  }
  // The exponent sign stays glued to the pp-number.
  ASSERT_EQ(numbers.size(), 2u);
  EXPECT_EQ(numbers[0], "1.5e+3");
  EXPECT_EQ(numbers[1], "0x1Fu");
  EXPECT_EQ(chars, 1u);
  EXPECT_FALSE(tokenize("int x = 0;").has_pragma_once);
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

const char* const kMiniConf =
    "layer common\n"
    "layer cache core\n"
    "layer sim\n"
    "allow core -> sim : fixture reason\n"
    "sanction determinism src/sim/clock.cpp : config-time only\n"
    "snapshot-modules core\n"
    "contract-modules cache\n"
    "roundtrip-test tests/test_roundtrip.cpp\n";

TEST(LintConfig, ParsesLayersEdgesAndSanctions) {
  const Config c = parse_config(kMiniConf, "mini.conf");
  EXPECT_EQ(c.layer_of("common"), 0);
  EXPECT_EQ(c.layer_of("cache"), 1);
  EXPECT_EQ(c.layer_of("core"), 1);
  EXPECT_EQ(c.layer_of("sim"), 2);
  EXPECT_EQ(c.layer_of("nope"), -1);
  EXPECT_TRUE(c.edge_allowed("core", "sim"));
  EXPECT_FALSE(c.edge_allowed("cache", "sim"));
  EXPECT_TRUE(c.sanctioned("determinism", "src/sim/clock.cpp"));
  EXPECT_FALSE(c.sanctioned("determinism", "src/sim/other.cpp"));
  EXPECT_FALSE(c.sanctioned("raw-assert", "src/sim/clock.cpp"));
  EXPECT_EQ(c.snapshot_modules.count("core"), 1u);
  EXPECT_EQ(c.contract_modules.count("cache"), 1u);
  // Defaults: save_state and finish mark serialization contexts.
  EXPECT_EQ(c.serialization_apis.count("save_state"), 1u);
  EXPECT_EQ(c.serialization_apis.count("finish"), 1u);
}

TEST(LintConfig, RejectsMalformedLines) {
  // Reason-less allow edge.
  EXPECT_THROW(parse_config("layer a b\nallow a -> b\n", "c"),
               std::runtime_error);
  // Allow edge naming an undeclared module.
  EXPECT_THROW(parse_config("layer a\nallow a -> ghost : why\n", "c"),
               std::runtime_error);
  // Unknown keyword.
  EXPECT_THROW(parse_config("layer a\nforbid a\n", "c"), std::runtime_error);
  // Reason-less sanction.
  EXPECT_THROW(parse_config("layer a\nsanction determinism src/a/x.cpp\n", "c"),
               std::runtime_error);
  // No layers at all.
  EXPECT_THROW(parse_config("# empty\n", "c"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Rules and suppressions, in memory
// ---------------------------------------------------------------------------

std::set<std::string> rule_set(const std::vector<Finding>& findings) {
  std::set<std::string> rules;
  for (const Finding& f : findings) rules.insert(f.rule);
  return rules;
}

TEST(LintRules, DeletingLoadStateIsCaught) {
  const Config c = parse_config(kMiniConf, "mini.conf");
  std::map<std::string, std::string> files;
  files["src/core/pair.hpp"] =
      "#pragma once\n"
      "struct Writer;\n"
      "struct Reader;\n"
      "class Paired {\n"
      " public:\n"
      "  void save_state(Writer& w) const;\n"
      "  void load_state(Reader& r);\n"
      " private:\n"
      "  int counter_ = 0;\n"
      "};\n";
  // The mention must be a real token — a comment would not count.
  files["tests/test_roundtrip.cpp"] =
      "struct Paired;\nint main() { return 0; }\n";
  EXPECT_TRUE(run_lint_on(files, c).clean());

  // Delete the load_state declaration: the class decodes nothing it encodes.
  std::string& header = files["src/core/pair.hpp"];
  const std::size_t at = header.find("  void load_state(Reader& r);\n");
  ASSERT_NE(at, std::string::npos);
  header.erase(at, std::string("  void load_state(Reader& r);\n").size());
  const Report broken = run_lint_on(files, c);
  EXPECT_FALSE(broken.clean());
  EXPECT_EQ(rule_set(broken.findings).count("snapshot-pairing"), 1u);
}

TEST(LintRules, SuppressionWithReasonSilencesAndIsReported) {
  const Config c = parse_config(kMiniConf, "mini.conf");
  std::map<std::string, std::string> files;
  files["src/core/seeded.cpp"] =
      "#include <cstdlib>\n"
      "// lint: suppress(determinism) fixture reason text\n"
      "int f() { return rand(); }\n";
  const Report r = run_lint_on(files, c);
  EXPECT_TRUE(r.clean());
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "determinism");
  EXPECT_EQ(r.suppressed[0].suppress_reason, "fixture reason text");
}

TEST(LintRules, SuppressionWithoutReasonIsItselfAFinding) {
  const Config c = parse_config(kMiniConf, "mini.conf");
  std::map<std::string, std::string> files;
  files["src/core/seeded.cpp"] =
      "#include <cstdlib>\n"
      "// lint: suppress(determinism)\n"
      "int f() { return rand(); }\n";
  const Report r = run_lint_on(files, c);
  const std::set<std::string> rules = rule_set(r.findings);
  // The malformed directive is reported AND does not silence the finding.
  EXPECT_EQ(rules.count("suppression"), 1u);
  EXPECT_EQ(rules.count("determinism"), 1u);
}

TEST(LintRules, UnknownRuleInSuppressionIsAFinding) {
  const Config c = parse_config(kMiniConf, "mini.conf");
  std::map<std::string, std::string> files;
  files["src/core/odd.cpp"] =
      "// lint: suppress(not-a-rule) some reason\n"
      "int f() { return 1; }\n";
  const Report r = run_lint_on(files, c);
  EXPECT_EQ(rule_set(r.findings).count("suppression"), 1u);
}

TEST(LintRules, FileScopeSuppressionCoversEveryLine) {
  const Config c = parse_config(kMiniConf, "mini.conf");
  std::map<std::string, std::string> files;
  files["src/core/clocks.cpp"] =
      "// lint: suppress-file(determinism) fixture-wide waiver\n"
      "#include <ctime>\n"
      "long f() { return time(nullptr); }\n"
      "long g() { return clock(); }\n";
  const Report r = run_lint_on(files, c);
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.suppressed.size(), 2u);
}

TEST(LintRules, NoContractWaiverCoversContractCoverage) {
  const Config c = parse_config(kMiniConf, "mini.conf");
  std::map<std::string, std::string> files;
  files["src/cache/bump.hpp"] =
      "#pragma once\n"
      "class Bump {\n"
      " public:\n"
      "  void advance(int by);\n"
      " private:\n"
      "  int position_ = 0;\n"
      "  int steps_ = 0;\n"
      "};\n";
  files["src/cache/bump.cpp"] =
      "#include \"cache/bump.hpp\"\n"
      "void Bump::advance(int by) {\n"
      "  position_ += by;\n"
      "  steps_ += 1;\n"
      "  if (position_ > 9) { position_ = 0; }\n"
      "}\n";
  const Report bare = run_lint_on(files, c);
  EXPECT_EQ(rule_set(bare.findings).count("contract-coverage"), 1u);

  files["src/cache/bump.cpp"] =
      "#include \"cache/bump.hpp\"\n"
      "// lint: no-contract(wraparound counter, nothing to assert)\n"
      "void Bump::advance(int by) {\n"
      "  position_ += by;\n"
      "  steps_ += 1;\n"
      "  if (position_ > 9) { position_ = 0; }\n"
      "}\n";
  const Report waived = run_lint_on(files, c);
  EXPECT_TRUE(waived.clean());
  ASSERT_EQ(waived.suppressed.size(), 1u);
  EXPECT_EQ(waived.suppressed[0].rule, "contract-coverage");
}

// ---------------------------------------------------------------------------
// Interprocedural layer: config keywords, call graph, capture table, and the
// race/hot families over in-memory trees
// ---------------------------------------------------------------------------

TEST(LintConfig, ParsesHotRootsStopsAndParallelApis) {
  const Config c = parse_config(
      "layer core\n"
      "hot-root Simulator::step on_demand\n"
      "hot-stop ThreadPool::parallel_for : amortized batch dispatch\n"
      "parallel-api run_jobs\n",
      "c");
  ASSERT_EQ(c.hot_roots.size(), 2u);
  EXPECT_EQ(c.hot_roots[0], "Simulator::step");
  EXPECT_EQ(c.hot_roots[1], "on_demand");
  ASSERT_EQ(c.hot_stops.size(), 1u);
  // The '::' in a qualified spec must not be mistaken for the ':' that
  // separates the reason.
  EXPECT_EQ(c.hot_stops[0].spec, "ThreadPool::parallel_for");
  EXPECT_EQ(c.hot_stops[0].reason, "amortized batch dispatch");
  EXPECT_EQ(c.parallel_apis.count("run_jobs"), 1u);
  // The built-in parallel APIs stay in alongside additions.
  EXPECT_EQ(c.parallel_apis.count("parallel_for"), 1u);
  EXPECT_EQ(c.parallel_apis.count("submit"), 1u);
  // A hot-stop without a reason is an undocumented exception: rejected.
  EXPECT_THROW(parse_config("layer a\nhot-stop f\n", "c"), std::runtime_error);
}

FileInfo analyzed_file(const std::string& path, const std::string& text) {
  FileInfo f;
  f.path = path;
  f.module = "core";
  f.src = tokenize(text);
  std::vector<Finding> sink;
  analyze(f, sink);
  return f;
}

TEST(LintCallGraph, RecursionOverloadsAndQualifiedBinding) {
  std::vector<FileInfo> files;
  files.push_back(analyzed_file(
      "src/core/a.cpp",
      "namespace fx {\n"
      "int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }\n"
      "int fib(long n) { return static_cast<int>(n); }\n"
      "struct Runner { void go(); void sweep(); };\n"
      "void Runner::go() { sweep(); }\n"
      "void Runner::sweep() { fib(3); }\n"
      "struct Cleaner { void sweep(); };\n"
      "void Cleaner::sweep() {}\n"
      "}\n"));
  const CallGraph g = build_call_graph(files);
  // Recursion terminates; a bare spec reaches every overload of the name.
  const auto from_fib = g.reachable({"fib"}, {}, nullptr);
  EXPECT_EQ(from_fib.size(), 2u);
  // Unqualified sweep() inside Runner::go binds to Runner::sweep — not to
  // every sweep in the program (C++ lookup prefers the member).
  std::map<std::size_t, std::string> prov;
  const auto from_go = g.reachable({"Runner::go"}, {}, &prov);
  std::set<std::string> names;
  for (const std::size_t id : from_go) names.insert(g.nodes[id].qualified);
  EXPECT_EQ(names.count("Runner::sweep"), 1u);
  EXPECT_EQ(names.count("Cleaner::sweep"), 0u);
  // fib is reached through Runner::sweep, so the whole closure carries the
  // root spec that discovered it.
  EXPECT_EQ(names.count("fib"), 1u);
  for (const std::size_t id : from_go) EXPECT_EQ(prov[id], "Runner::go");
}

TEST(LintCallGraph, MethodPointersCreateNoEdgesAndStopsCut) {
  std::vector<FileInfo> files;
  files.push_back(analyzed_file(
      "src/core/mp.cpp",
      "struct W { void work(); };\n"
      "void W::work() {}\n"
      "void dispatch() { auto fp = &W::work; (void)fp; }\n"
      "void chain_c() {}\n"
      "void chain_b() { chain_c(); }\n"
      "void chain_a() { chain_b(); }\n"));
  const CallGraph g = build_call_graph(files);
  // Taking a method's address is not a call: reachability degrades
  // gracefully to just the root instead of guessing an edge.
  const auto from_dispatch = g.reachable({"dispatch"}, {}, nullptr);
  ASSERT_EQ(from_dispatch.size(), 1u);
  EXPECT_EQ(g.nodes[from_dispatch[0]].bare, "dispatch");
  // A stop removes the node and everything only reachable through it.
  const auto cut = g.reachable({"chain_a"}, {"chain_b"}, nullptr);
  std::set<std::string> names;
  for (const std::size_t id : cut) names.insert(g.nodes[id].bare);
  EXPECT_EQ(names, (std::set<std::string>{"chain_a"}));
}

TEST(LintCaptureTable, LambdasInLambdasAndCaptureModes) {
  const FileInfo f = analyzed_file(
      "src/core/lam.cpp",
      "void outer(int shared) {\n"
      "  int x = 1;\n"
      "  auto a = [&](int i) {\n"
      "    auto b = [=](int j) { return j + i; };\n"
      "    b(i);\n"
      "  };\n"
      "  a(shared);\n"
      "  auto c = [x](int k) { return k + x; };\n"
      "  c(2);\n"
      "}\n");
  ASSERT_EQ(f.lambdas.size(), 3u);  // sorted by intro position: a, b, c
  const LambdaInfo& a = f.lambdas[0];
  EXPECT_TRUE(a.ref_default);
  EXPECT_EQ(a.bound_name, "a");
  EXPECT_EQ(a.first_param, "i");
  // The nested lambda is its own entry, nested inside a's body range, with
  // its own capture default.
  const LambdaInfo& b = f.lambdas[1];
  EXPECT_TRUE(b.value_default);
  EXPECT_FALSE(b.ref_default);
  EXPECT_GT(b.intro_begin, a.body_begin);
  EXPECT_LT(b.body_end, a.body_end);
  const LambdaInfo& c = f.lambdas[2];
  EXPECT_FALSE(c.ref_default);
  EXPECT_EQ(c.by_value.count("x"), 1u);
}

// Acceptance mutation seed: a by-ref-capture write introduced into a
// parallel_for body MUST be caught by the race family.
TEST(LintRules, SeededCaptureWriteIntoParallelForIsCaught) {
  const Config c = parse_config(kMiniConf, "mini.conf");
  std::map<std::string, std::string> files;
  files["src/core/shard.cpp"] =
      "struct Pool { void parallel_for(int n, void (*f)(int)); };\n"
      "int tally(Pool& pool, int n) {\n"
      "  int acc = 0;\n"
      "  pool.parallel_for(n, [&](int i) { acc += i; });\n"
      "  return acc;\n"
      "}\n";
  const Report r = run_lint_on(files, c);
  EXPECT_EQ(rule_set(r.findings).count("race-capture-write"), 1u);
}

TEST(LintRules, DisjointSlotWritesAndAtomicsAreNotRaces) {
  const Config c = parse_config(kMiniConf, "mini.conf");
  std::map<std::string, std::string> files;
  files["src/core/ok.cpp"] =
      "#include <atomic>\n"
      "#include <cstddef>\n"
      "#include <vector>\n"
      "struct Pool { void parallel_for(std::size_t n, void (*f)(std::size_t)); };\n"
      "void fill(Pool& pool, std::vector<int>& out, std::atomic<int>& hits) {\n"
      "  pool.parallel_for(out.size(), [&](std::size_t i) {\n"
      "    out[i] = static_cast<int>(i) * 2;\n"  // disjoint slot per index
      "    hits.fetch_add(1);\n"                 // atomic RMW
      "  });\n"
      "}\n";
  EXPECT_TRUE(run_lint_on(files, c).clean());
}

TEST(LintRules, HotFamilyFollowsReachabilityAndStops) {
  const Config c = parse_config(
      "layer core\n"
      "hot-root outer\n"
      "hot-stop slow_path : error reporting is off the per-record path\n",
      "c");
  std::map<std::string, std::string> files;
  files["src/core/hot.cpp"] =
      "int* helper(int n) { return new int[n]; }\n"
      "void slow_path(int n) { throw n; }\n"
      "int outer(int n) {\n"
      "  if (n < 0) slow_path(n);\n"
      "  int* p = helper(n);\n"
      "  return p[0];\n"
      "}\n";
  const Report r = run_lint_on(files, c);
  const std::set<std::string> rules = rule_set(r.findings);
  // helper is in outer's closure: its allocation is hot.
  EXPECT_EQ(rules.count("hot-alloc"), 1u);
  // slow_path is stopped: its throw is not.
  EXPECT_EQ(rules.count("hot-throw"), 0u);
  bool saw_provenance = false;
  for (const Finding& f : r.findings) {
    saw_provenance |=
        f.message.find("reachable from hot-root 'outer'") != std::string::npos;
  }
  EXPECT_TRUE(saw_provenance);
}

TEST(LintRules, NoHotRootsMeansHotFamilyIsInert) {
  const Config c = parse_config(kMiniConf, "mini.conf");
  std::map<std::string, std::string> files;
  files["src/core/quiet.cpp"] = "int* f(int n) { return new int[n]; }\n";
  EXPECT_TRUE(run_lint_on(files, c).clean());
}

// ---------------------------------------------------------------------------
// Fixture corpus on disk: each directory trips exactly its namesake rule
// ---------------------------------------------------------------------------

TEST(LintFixtures, EveryFixtureFailsWithItsNamesakeRule) {
  const fs::path fixtures(PLANARIA_LINT_FIXTURES_DIR);
  ASSERT_TRUE(fs::is_directory(fixtures));
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(fixtures)) {
    if (entry.is_directory()) names.push_back(entry.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  // One fixture per rule id; growing the rule catalog must grow the corpus.
  const std::vector<std::string> expected = {
      "contract-coverage",  "determinism",       "hot-alloc",
      "hot-env-read",       "hot-iostream",      "hot-mutex",
      "hot-string",         "hot-throw",         "io-raw-call",
      "io-raw-stream",      "layer-cycle",       "layer-undeclared",
      "layering",           "pragma-once",       "race-capture-write",
      "race-nonconst-call", "race-shared-static", "raw-assert",
      "snapshot-missing",   "snapshot-pairing",  "snapshot-roundtrip",
      "suppression",        "unordered-iteration", "using-namespace"};
  EXPECT_EQ(names, expected);

  for (const std::string& name : names) {
    SCOPED_TRACE(name);
    Options options;
    options.root = (fixtures / name).string();
    const Report report = run_lint(options);
    EXPECT_FALSE(report.clean());
    const std::set<std::string> rules = rule_set(report.findings);
    // The namesake rule fires...
    EXPECT_EQ(rules.count(name), 1u);
    // ...and nothing else does: a fixture that trips extra rules can no
    // longer prove the namesake rule caused the nonzero exit.
    EXPECT_EQ(rules.size(), 1u);
  }
}

// ---------------------------------------------------------------------------
// The real tree
// ---------------------------------------------------------------------------

TEST(LintRepo, TreeIsCleanAtHead) {
  Options options;
  options.root = PLANARIA_LINT_REPO_ROOT;
  const Report report = run_lint(options);
  for (const Finding& f : report.findings) {
    ADD_FAILURE() << f.file << ":" << f.line << " [" << f.rule << "] "
                  << f.message;
  }
  EXPECT_GT(report.files_scanned, 50);
  // Every suppression in the tree carries a reason; that is what makes the
  // suppressed list auditable rather than a mute button.
  for (const Finding& f : report.suppressed) {
    EXPECT_FALSE(f.suppress_reason.empty()) << f.file << ":" << f.line;
  }
}

/// Removes line `index` (0-based, counting only lines matching `prefix`) from
/// the committed layers.conf and returns the mutated text; empty when there
/// is no such line.
std::string drop_nth_line_with_prefix(const std::string& text,
                                      const std::string& prefix,
                                      std::size_t index) {
  std::istringstream in(text);
  std::ostringstream out;
  std::string line;
  std::size_t seen = 0;
  bool dropped = false;
  while (std::getline(in, line)) {
    if (line.rfind(prefix, 0) == 0) {
      if (seen++ == index) {
        dropped = true;
        continue;
      }
    }
    out << line << "\n";
  }
  return dropped ? out.str() : std::string();
}

TEST(LintRepo, EveryConfigLineIsLoadBearing) {
  const fs::path repo(PLANARIA_LINT_REPO_ROOT);
  std::ifstream in(repo / "tools/lint/layers.conf");
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string committed = buf.str();

  const fs::path scratch =
      fs::temp_directory_path() / "planaria-lint-mutation";
  fs::create_directories(scratch);

  int mutations = 0;
  for (const std::string prefix : {"layer ", "allow ", "hot-stop "}) {
    for (std::size_t i = 0;; ++i) {
      const std::string mutated =
          drop_nth_line_with_prefix(committed, prefix, i);
      if (mutated.empty()) break;
      ++mutations;
      SCOPED_TRACE(prefix + "line " + std::to_string(i));
      const fs::path conf = scratch / ("mutated_" + std::to_string(mutations) +
                                       ".conf");
      std::ofstream(conf) << mutated;

      Options options;
      options.root = repo.string();
      options.config_path = conf.string();
      try {
        const Report report = run_lint(options);
        // Dropping a layer or allow line must surface findings: the config
        // carries no decorative lines.
        EXPECT_FALSE(report.clean());
      } catch (const std::runtime_error&) {
        // Also acceptable: dropping a layer line orphans an allow edge and
        // the config no longer parses. The gate still fails.
      }
    }
  }
  // The committed config declares 9 layer lines, 7 allow edges, and 1
  // hot-stop (dropping the stop floods the hot family with thread-pool
  // internals); a rewrite that shrinks it should be a deliberate act,
  // visible here.
  EXPECT_EQ(mutations, 17);
  fs::remove_all(scratch);
}

// ---------------------------------------------------------------------------
// JSON report schema (version 3) is byte-pinned
// ---------------------------------------------------------------------------

TEST(LintReport, JsonSchemaVersion3IsStable) {
  Report report;
  report.files_scanned = 2;
  Finding active;
  active.rule = "determinism";
  active.file = "src/core/a.cpp";
  active.line = 7;
  active.message = "call to 'rand()'";
  report.findings.push_back(active);
  Finding race;
  race.rule = "race-capture-write";
  race.file = "src/core/a.cpp";
  race.line = 9;
  race.message = "write to 'n'";
  report.findings.push_back(race);
  Finding hot;
  hot.rule = "hot-alloc";
  hot.file = "src/core/a.cpp";
  hot.line = 11;
  hot.message = "operator new";
  report.findings.push_back(hot);
  Finding quiet;
  quiet.rule = "raw-assert";
  quiet.file = "src/core/b.cpp";
  quiet.line = 3;
  quiet.message = "say \"why\"";
  quiet.suppress_reason = "legacy\tcode";
  report.suppressed.push_back(quiet);

  Finding bypass;
  bypass.rule = "io-raw-call";
  bypass.file = "src/core/a.cpp";
  bypass.line = 13;
  bypass.message = "direct 'fopen'";
  report.findings.push_back(bypass);

  // Version 3 adds the per-family "io" count of VFS-bypass findings next to
  // the version-2 "race"/"hot" counts — all over ACTIVE findings only, so CI
  // can gate the families without parsing messages.
  const std::string expected =
      "{\"tool\":\"planaria-lint\",\"schema_version\":3,\"root\":\"/r\","
      "\"files_scanned\":2,\"findings\":[{\"rule\":\"determinism\","
      "\"file\":\"src/core/a.cpp\",\"line\":7,"
      "\"message\":\"call to 'rand()'\"},{\"rule\":\"race-capture-write\","
      "\"file\":\"src/core/a.cpp\",\"line\":9,"
      "\"message\":\"write to 'n'\"},{\"rule\":\"hot-alloc\","
      "\"file\":\"src/core/a.cpp\",\"line\":11,"
      "\"message\":\"operator new\"},{\"rule\":\"io-raw-call\","
      "\"file\":\"src/core/a.cpp\",\"line\":13,"
      "\"message\":\"direct 'fopen'\"}],\"suppressed\":["
      "{\"rule\":\"raw-assert\",\"file\":\"src/core/b.cpp\",\"line\":3,"
      "\"message\":\"say \\\"why\\\"\",\"reason\":\"legacy\\tcode\"}],"
      "\"counts\":{\"findings\":4,\"suppressed\":1,\"race\":1,\"hot\":1,"
      "\"io\":1}}";
  EXPECT_EQ(to_json(report, "/r"), expected);

  Report empty;
  EXPECT_EQ(to_json(empty, ""),
            "{\"tool\":\"planaria-lint\",\"schema_version\":3,\"root\":\"\","
            "\"files_scanned\":0,\"findings\":[],\"suppressed\":[],"
            "\"counts\":{\"findings\":0,\"suppressed\":0,\"race\":0,"
            "\"hot\":0,\"io\":0}}");
}

}  // namespace
}  // namespace planaria::lint
