// Tests for the Fig. 2/4/5 analysis tools.
#include <gtest/gtest.h>

#include "analysis/analysis.hpp"
#include "trace/apps.hpp"
#include "trace/generator.hpp"

namespace planaria::analysis {
namespace {

using trace::TraceRecord;

TraceRecord at(PageNumber page, int block, Cycle t) {
  return TraceRecord{addr::compose(page, block), t, AccessType::kRead,
                     DeviceId::kCpuBig};
}

// ---------------------------------------------------------------- footprint

TEST(Footprint, ExtractsOnlyRequestedPage) {
  const std::vector<TraceRecord> records = {at(1, 0, 10), at(2, 5, 20),
                                            at(1, 7, 30)};
  const auto samples = footprint_snapshot(records, 1);
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].block, 0);
  EXPECT_EQ(samples[0].arrival, 10u);
  EXPECT_EQ(samples[1].block, 7);
}

TEST(Footprint, MissingPageGivesEmpty) {
  const std::vector<TraceRecord> records = {at(1, 0, 10)};
  EXPECT_TRUE(footprint_snapshot(records, 99).empty());
}

TEST(Footprint, HottestPageByAccessCount) {
  std::vector<TraceRecord> records = {at(1, 0, 1), at(2, 0, 2), at(2, 1, 3),
                                      at(2, 2, 4), at(3, 0, 5)};
  PageNumber page = 0;
  ASSERT_TRUE(hottest_page(records, page));
  EXPECT_EQ(page, 2u);
}

TEST(Footprint, HottestPageEmptyTrace) {
  PageNumber page = 0;
  EXPECT_FALSE(hottest_page({}, page));
}

// ------------------------------------------------------------- overlap rate

TEST(Overlap, IdenticalWindowsGiveFullOverlap) {
  // Page with blocks {0,1,2} accessed twice in the same pattern.
  std::vector<TraceRecord> records;
  Cycle t = 0;
  for (int rep = 0; rep < 2; ++rep) {
    for (int b : {0, 1, 2}) records.push_back(at(5, b, ++t));
  }
  const auto result = overlap_rate(records);
  EXPECT_EQ(result.pages_analyzed, 1u);
  EXPECT_EQ(result.windows_compared, 1u);
  EXPECT_DOUBLE_EQ(result.average_overlap, 1.0);
}

TEST(Overlap, DisjointWindowsGiveZeroOverlap) {
  std::vector<TraceRecord> records;
  Cycle t = 0;
  // Window size = distinct blocks = 6; first 6 accesses {0..5}, next six
  // {6..11}: wait — distinct count includes all 12. Use explicit window.
  for (int b : {0, 1, 2}) records.push_back(at(5, b, ++t));
  for (int b : {10, 11, 12}) records.push_back(at(5, b, ++t));
  const auto result = overlap_rate(records, /*window=*/3);
  EXPECT_EQ(result.windows_compared, 1u);
  EXPECT_DOUBLE_EQ(result.average_overlap, 0.0);
}

TEST(Overlap, PartialOverlapComputed) {
  std::vector<TraceRecord> records;
  Cycle t = 0;
  for (int b : {0, 1, 2, 3}) records.push_back(at(5, b, ++t));
  for (int b : {2, 3, 4, 5}) records.push_back(at(5, b, ++t));
  const auto result = overlap_rate(records, /*window=*/4);
  EXPECT_DOUBLE_EQ(result.average_overlap, 0.5);
}

TEST(Overlap, PagesWithOneWindowAreSkipped) {
  std::vector<TraceRecord> records = {at(5, 0, 1), at(5, 1, 2)};
  const auto result = overlap_rate(records);
  EXPECT_EQ(result.pages_analyzed, 0u);
  EXPECT_EQ(result.windows_compared, 0u);
}

TEST(Overlap, SyntheticAppsExceedPaperFloor) {
  // The paper's claim: average overlap rate > 80% on every app. Check two.
  for (const char* name : {"HoK", "Fort"}) {
    const auto trace =
        trace::generate_app_trace(trace::app_by_name(name), 60000);
    const auto result = overlap_rate(trace);
    EXPECT_GT(result.average_overlap, 0.8) << name;
  }
}

// -------------------------------------------------------------- page bitmaps

TEST(PageBitmaps, AccumulateAcrossTrace) {
  const std::vector<TraceRecord> records = {at(1, 0, 1), at(1, 5, 2),
                                            at(2, 63, 3)};
  const auto bitmaps = page_bitmaps(records);
  ASSERT_EQ(bitmaps.size(), 2u);
  EXPECT_EQ(bitmaps.at(1).popcount(), 2);
  EXPECT_TRUE(bitmaps.at(2).test(63));
}

// --------------------------------------------------------- neighbor fraction

TEST(Neighbors, IdenticalAdjacentPagesAreLearnable) {
  std::vector<TraceRecord> records;
  Cycle t = 0;
  for (PageNumber p : {100ull, 101ull}) {
    for (int b : {0, 1, 2, 3, 4}) records.push_back(at(p, b, ++t));
  }
  const auto fractions = learnable_neighbor_fraction(records, {1, 4});
  EXPECT_DOUBLE_EQ(fractions[0], 1.0);
  EXPECT_DOUBLE_EQ(fractions[1], 1.0);
}

TEST(Neighbors, DistantPagesAreNot) {
  std::vector<TraceRecord> records;
  Cycle t = 0;
  for (PageNumber p : {100ull, 500ull}) {
    for (int b : {0, 1, 2, 3, 4}) records.push_back(at(p, b, ++t));
  }
  const auto fractions = learnable_neighbor_fraction(records, {4, 64});
  EXPECT_DOUBLE_EQ(fractions[0], 0.0);
  EXPECT_DOUBLE_EQ(fractions[1], 0.0);
}

TEST(Neighbors, DissimilarBitmapsAreNot) {
  std::vector<TraceRecord> records;
  Cycle t = 0;
  for (int b : {0, 1, 2, 3, 4}) records.push_back(at(100, b, ++t));
  for (int b : {20, 21, 22, 23, 24}) records.push_back(at(101, b, ++t));
  const auto fractions =
      learnable_neighbor_fraction(records, {4}, /*max_bit_diff=*/4);
  EXPECT_DOUBLE_EQ(fractions[0], 0.0);
}

TEST(Neighbors, BitDiffThresholdIsInclusive) {
  std::vector<TraceRecord> records;
  Cycle t = 0;
  // Pages share {0..3}; each has two private blocks => Hamming distance 4.
  for (int b : {0, 1, 2, 3, 8, 9}) records.push_back(at(100, b, ++t));
  for (int b : {0, 1, 2, 3, 12, 13}) records.push_back(at(101, b, ++t));
  EXPECT_DOUBLE_EQ(learnable_neighbor_fraction(records, {4}, 4)[0], 1.0);
  EXPECT_DOUBLE_EQ(learnable_neighbor_fraction(records, {4}, 3)[0], 0.0);
}

TEST(Neighbors, FractionIsMonotoneInDistance) {
  const auto trace = trace::generate_app_trace(trace::app_by_name("HoK"), 60000);
  const auto fractions = learnable_neighbor_fraction(trace, {4, 16, 64});
  EXPECT_LE(fractions[0], fractions[1]);
  EXPECT_LE(fractions[1], fractions[2]);
  EXPECT_GT(fractions[0], 0.0);
}

TEST(Neighbors, EmptyTraceGivesZeros) {
  const auto fractions = learnable_neighbor_fraction({}, {4, 64});
  EXPECT_EQ(fractions.size(), 2u);
  EXPECT_EQ(fractions[0], 0.0);
}

// ---------------------------------------------------------------------------
// Rolling summaries (the serve layer's fleet aggregation)
// ---------------------------------------------------------------------------

TEST(StreamSummary, NearestRankQuantilesAndExtremes) {
  StreamSummary s;
  for (double v : {5.0, 1.0, 4.0, 2.0, 3.0}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  // Nearest-rank: rank = ceil(q * n), 1-based.
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.9), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  // q = 0.2 -> rank 1, q = 0.21 -> rank 2: the estimator is a step function.
  EXPECT_DOUBLE_EQ(s.quantile(0.2), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.21), 2.0);
}

TEST(StreamSummary, InsertionOrderIsInvisible) {
  // The serve loop folds results in completion order live, but in id order
  // after a resume; the two summaries must compare equal bit-for-bit. The
  // summary therefore sorts its values and sums the mean ascending — any
  // order-dependent accumulation would break this with FP non-associativity.
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) {
    values.push_back(1.0 / 3.0 + i * 0.1 + (i % 7) * 1e-13);
  }
  StreamSummary forward;
  for (double v : values) forward.add(v);
  StreamSummary backward;
  for (auto it = values.rbegin(); it != values.rend(); ++it) backward.add(*it);
  StreamSummary shuffled;  // deterministic interleave, no RNG needed
  for (std::size_t i = 0; i < values.size(); i += 2) shuffled.add(values[i]);
  for (std::size_t i = 1; i < values.size(); i += 2) shuffled.add(values[i]);
  EXPECT_TRUE(forward == backward);
  EXPECT_TRUE(forward == shuffled);
  EXPECT_EQ(forward.mean(), backward.mean());  // exact, not approximate
}

TEST(StreamSummary, EmptySummaryIsInert) {
  const StreamSummary s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.quantile(0.5), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_TRUE(s == StreamSummary{});
}

TEST(GroupedSummary, GroupsByKeyAndFindsThem) {
  GroupedSummary g;
  g.add("phone", 10.0);
  g.add("phone", 20.0);
  g.add("tablet", 5.0);
  ASSERT_NE(g.find("phone"), nullptr);
  EXPECT_EQ(g.find("phone")->count(), 2u);
  EXPECT_DOUBLE_EQ(g.find("phone")->mean(), 15.0);
  EXPECT_EQ(g.find("tablet")->count(), 1u);
  EXPECT_EQ(g.find("missing"), nullptr);

  GroupedSummary same;
  same.add("tablet", 5.0);  // different arrival order, same content
  same.add("phone", 20.0);
  same.add("phone", 10.0);
  EXPECT_TRUE(g == same);
}

}  // namespace
}  // namespace planaria::analysis
