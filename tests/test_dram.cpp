// Unit tests for the LPDDR4 DRAM model: config validation, address mapping,
// bank timing, scheduling policy, refresh, write handling, and power.
#include <gtest/gtest.h>

#include <set>

#include "dram/channel.hpp"
#include "dram/config.hpp"
#include "dram/power.hpp"

namespace planaria::dram {
namespace {

DramConfig test_config() {
  DramConfig config;  // Table 1 defaults
  return config;
}

/// Submits a read at `arrival` and returns its completion.
DramCompletion one_read(DramChannel& channel, std::uint64_t block,
                        Cycle arrival, bool prefetch = false) {
  channel.advance(arrival);
  DramRequest req;
  req.local_block = block;
  req.arrival = arrival;
  req.is_prefetch = prefetch;
  req.tag = block;
  EXPECT_TRUE(channel.submit(req));
  channel.drain();
  const auto done = channel.take_completions();
  EXPECT_EQ(done.size(), 1u);
  return done.front();
}

// ------------------------------------------------------------------- config

TEST(DramConfig, DefaultsValidate) { EXPECT_NO_THROW(test_config().validate()); }

TEST(DramConfig, RejectsNonPositiveTiming) {
  DramConfig config = test_config();
  config.timing.tRCD = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(DramConfig, RejectsInconsistentTrc) {
  DramConfig config = test_config();
  config.timing.tRC = config.timing.tRAS - 1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(DramConfig, RejectsRefreshStarvation) {
  DramConfig config = test_config();
  config.timing.tREFI = config.timing.tRFC;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(DramConfig, RejectsOddBurstLength) {
  DramConfig config = test_config();
  config.timing.burst_length = 15;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(DramConfig, RejectsNonPowerOfTwoBanks) {
  DramConfig config = test_config();
  config.geometry.banks = 6;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(DramConfig, RejectsInvertedDrainThresholds) {
  DramConfig config = test_config();
  config.controller.write_drain_low = config.controller.write_drain_high;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

// ----------------------------------------------------------- address mapping

TEST(AddressMapper, LocalBlockStripsChannelBits) {
  // Page 5, channel 2, block-in-segment 3 => local block 5*16 + 3.
  const Address a = addr::compose_segment(5, 2, 3);
  EXPECT_EQ(AddressMapper::local_block(a), 5u * 16 + 3);
}

TEST(AddressMapper, MapCoversAllBanks) {
  AddressMapper mapper(test_config().geometry);
  std::set<int> banks;
  for (std::uint64_t block = 0; block < 1024; block += 32) {
    banks.insert(mapper.map(block).bank);
  }
  EXPECT_EQ(banks.size(), 8u);
}

TEST(AddressMapper, SequentialBlocksShareRow) {
  AddressMapper mapper(test_config().geometry);
  const auto a = mapper.map(0);
  const auto b = mapper.map(1);
  EXPECT_EQ(a.bank, b.bank);
  EXPECT_EQ(a.row, b.row);
  EXPECT_EQ(b.column, a.column + 1);
}

TEST(AddressMapper, MapIsInjectiveOverARegion) {
  AddressMapper mapper(test_config().geometry);
  std::set<std::tuple<int, std::uint32_t, int>> seen;
  for (std::uint64_t block = 0; block < 4096; ++block) {
    const auto loc = mapper.map(block);
    EXPECT_TRUE(seen.insert({loc.bank, loc.row, loc.column}).second)
        << "collision at block " << block;
  }
}

// ------------------------------------------------------------------- timing

TEST(DramChannel, ColdReadLatencyIsActPlusCasPlusBurst) {
  DramChannel channel(test_config());
  const auto& t = test_config().timing;
  const auto done = one_read(channel, 0, 100);
  // ACT at 100, RD at +tRCD, data end at +tCL+burst.
  const Cycle expected =
      100 + static_cast<Cycle>(t.tRCD + t.tCL + t.burst_cycles());
  EXPECT_EQ(done.finish, expected);
  EXPECT_FALSE(done.row_hit);
}

TEST(DramChannel, RowHitIsFasterThanRowMiss) {
  DramConfig config = test_config();
  DramChannel channel(config);
  const auto first = one_read(channel, 0, 100);
  const auto second = one_read(channel, 1, 1000);  // same row
  EXPECT_TRUE(second.row_hit);
  const Cycle first_latency = first.finish - 100;
  const Cycle second_latency = second.finish - 1000;
  EXPECT_LT(second_latency, first_latency);
}

TEST(DramChannel, RowConflictIsSlowerThanRowHit) {
  DramConfig config = test_config();
  const auto blocks_per_row =
      static_cast<std::uint64_t>(config.geometry.blocks_per_row);
  DramChannel channel(config);
  one_read(channel, 0, 100);
  // Same bank, different row: blocks_per_row * banks apart. All arrivals stay
  // inside the first tREFI window so refresh does not close the rows.
  const auto conflict_block =
      blocks_per_row * static_cast<std::uint64_t>(config.geometry.banks);
  const auto conflict = one_read(channel, conflict_block, 3000);
  EXPECT_FALSE(conflict.row_hit);
  const auto hit = one_read(channel, conflict_block + 1, 4000);
  EXPECT_TRUE(hit.row_hit);
}

TEST(DramChannel, BackToBackReadsRespectTccd) {
  DramConfig config = test_config();
  DramChannel channel(config);
  channel.advance(100);
  for (int i = 0; i < 4; ++i) {
    DramRequest req;
    req.local_block = static_cast<std::uint64_t>(i);
    req.arrival = 100;
    req.tag = static_cast<std::uint64_t>(i);
    channel.submit(req);
  }
  channel.drain();
  const auto done = channel.take_completions();
  ASSERT_EQ(done.size(), 4u);
  for (std::size_t i = 1; i < done.size(); ++i) {
    EXPECT_GE(done[i].finish - done[i - 1].finish,
              static_cast<Cycle>(config.timing.tCCD));
  }
}

TEST(DramChannel, CompletionsSortedByFinish) {
  DramChannel channel(test_config());
  channel.advance(10);
  for (int i = 0; i < 16; ++i) {
    DramRequest req;
    req.local_block = static_cast<std::uint64_t>(i) * 257;  // scatter banks
    req.arrival = 10;
    req.tag = static_cast<std::uint64_t>(i);
    channel.submit(req);
  }
  channel.drain();
  const auto done = channel.take_completions();
  ASSERT_EQ(done.size(), 16u);
  for (std::size_t i = 1; i < done.size(); ++i) {
    EXPECT_GE(done[i].finish, done[i - 1].finish);
  }
}

// ---------------------------------------------------------------- scheduling

TEST(DramChannel, FrfcfsPrefersRowHits) {
  DramConfig config = test_config();
  DramChannel channel(config);
  // Open row 0 of bank 0. Stay inside the first tREFI window so refresh
  // cannot close the row under the test.
  one_read(channel, 0, 100);
  channel.advance(2000);
  // Submit a row-conflict (same bank, other row) then a row-hit.
  const auto conflict_block =
      static_cast<std::uint64_t>(config.geometry.blocks_per_row) *
      static_cast<std::uint64_t>(config.geometry.banks);
  DramRequest conflict;
  conflict.local_block = conflict_block;
  conflict.arrival = 2000;
  conflict.tag = 1;
  channel.submit(conflict);
  DramRequest hit;
  hit.local_block = 1;  // still in open row 0
  hit.arrival = 2000;
  hit.tag = 2;
  channel.submit(hit);
  channel.drain();
  const auto done = channel.take_completions();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].tag, 2u) << "row hit should be served first";
}

TEST(DramChannel, DemandBeatsPrefetchAtSameReadiness) {
  DramConfig config = test_config();
  DramChannel channel(config);
  channel.advance(100);
  DramRequest pf;
  pf.local_block = 0;
  pf.arrival = 100;
  pf.is_prefetch = true;
  pf.tag = 1;
  channel.submit(pf);
  DramRequest demand;
  demand.local_block = 1024;  // different bank
  demand.arrival = 100;
  demand.tag = 2;
  channel.submit(demand);
  channel.drain();
  const auto done = channel.take_completions();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].tag, 2u) << "demand should be served first";
}

TEST(DramChannel, PrefetchDroppedWhenQueueFull) {
  DramConfig config = test_config();
  config.controller.read_queue_depth = 4;
  DramChannel channel(config);
  channel.advance(1);
  bool any_dropped = false;
  for (int i = 0; i < 16; ++i) {
    DramRequest req;
    req.local_block = static_cast<std::uint64_t>(i) * 997;
    req.arrival = 1;
    req.is_prefetch = true;
    req.tag = static_cast<std::uint64_t>(i);
    if (!channel.submit(req)) any_dropped = true;
  }
  EXPECT_TRUE(any_dropped);
  EXPECT_GT(channel.counters().prefetch_drops, 0u);
  channel.drain();
}

TEST(DramChannel, DemandAcceptedEvenWhenQueueFull) {
  DramConfig config = test_config();
  config.controller.read_queue_depth = 2;
  DramChannel channel(config);
  channel.advance(1);
  for (int i = 0; i < 8; ++i) {
    DramRequest req;
    req.local_block = static_cast<std::uint64_t>(i) * 997;
    req.arrival = 1;
    req.tag = static_cast<std::uint64_t>(i);
    EXPECT_TRUE(channel.submit(req));
  }
  EXPECT_GT(channel.counters().read_queue_overflows, 0u);
  channel.drain();
  EXPECT_EQ(channel.take_completions().size(), 8u);
}

// ------------------------------------------------------------------- writes

TEST(DramChannel, WritesComplete) {
  DramChannel channel(test_config());
  channel.advance(10);
  DramRequest req;
  req.local_block = 5;
  req.arrival = 10;
  req.is_write = true;
  req.tag = 1;
  channel.submit(req);
  channel.drain();
  const auto done = channel.take_completions();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_TRUE(done[0].is_write);
  EXPECT_EQ(channel.counters().writes, 1u);
}

TEST(DramChannel, WriteCoalescingMergesSameBlock) {
  DramChannel channel(test_config());
  channel.advance(10);
  for (int i = 0; i < 3; ++i) {
    DramRequest req;
    req.local_block = 7;
    req.arrival = 10;
    req.is_write = true;
    req.tag = static_cast<std::uint64_t>(i);
    channel.submit(req);
  }
  channel.drain();
  EXPECT_EQ(channel.counters().writes, 1u) << "coalesced into one burst";
}

TEST(DramChannel, ReadForwardedFromWriteQueue) {
  DramChannel channel(test_config());
  channel.advance(10);
  DramRequest wr;
  wr.local_block = 9;
  wr.arrival = 10;
  wr.is_write = true;
  wr.tag = 1;
  channel.submit(wr);
  DramRequest rd;
  rd.local_block = 9;
  rd.arrival = 10;
  rd.tag = 2;
  channel.submit(rd);
  channel.drain();
  const auto done = channel.take_completions();
  bool forwarded = false;
  for (const auto& c : done) forwarded |= c.forwarded;
  EXPECT_TRUE(forwarded);
  EXPECT_EQ(channel.counters().forwarded_reads, 1u);
}

TEST(DramChannel, WriteDrainEventuallyServesWrites) {
  DramConfig config = test_config();
  DramChannel channel(config);
  channel.advance(10);
  for (int i = 0; i < 20; ++i) {
    DramRequest req;
    req.local_block = static_cast<std::uint64_t>(i) * 31;
    req.arrival = 10;
    req.is_write = true;
    req.tag = static_cast<std::uint64_t>(i);
    channel.submit(req);
  }
  channel.drain();
  EXPECT_EQ(channel.counters().writes, 20u);
  EXPECT_EQ(channel.write_queue_size(), 0u);
}

// ------------------------------------------------------------------ refresh

TEST(DramChannel, RefreshHappensWhenIdle) {
  DramConfig config = test_config();
  DramChannel channel(config);
  // Idle for 10 refresh intervals: all deadlines must be honored.
  channel.advance(static_cast<Cycle>(config.timing.tREFI) * 10 + 100);
  EXPECT_GE(channel.counters().refreshes, 9u);
  EXPECT_LE(channel.counters().refreshes, 11u);
}

TEST(DramChannel, RefreshDebtIsBounded) {
  DramConfig config = test_config();
  DramChannel channel(config);
  // Keep the channel busy across many tREFI periods; postponement is capped
  // at 8, so refreshes must still happen.
  Cycle t = 0;
  for (int i = 0; i < 4000; ++i) {
    t += 30;
    channel.advance(t);
    DramRequest req;
    req.local_block = static_cast<std::uint64_t>(i) * 7919 % 100000;
    req.arrival = t;
    req.tag = static_cast<std::uint64_t>(i);
    channel.submit(req);
  }
  channel.drain();
  const auto elapsed = channel.now();
  const auto periods = elapsed / static_cast<Cycle>(config.timing.tREFI);
  EXPECT_GE(channel.counters().refreshes + 9, periods);
}

TEST(DramChannel, TimeOnlyMovesForward) {
  DramChannel channel(test_config());
  channel.advance(1000);
  EXPECT_EQ(channel.now(), 1000u);
  channel.advance(500);  // going backwards is a no-op
  EXPECT_EQ(channel.now(), 1000u);
}

// --------------------------------------------------------------- multi-rank

TEST(MultiRank, MappingCoversBothRanks) {
  GeometryConfig g;
  g.ranks = 2;
  AddressMapper mapper(g);
  std::set<int> ranks;
  for (std::uint64_t block = 0; block < 2048; block += 32) {
    const auto loc = mapper.map(block);
    EXPECT_GE(loc.rank, 0);
    EXPECT_LT(loc.rank, 2);
    ranks.insert(loc.rank);
  }
  EXPECT_EQ(ranks.size(), 2u);
}

TEST(MultiRank, SingleRankMappingUnchanged) {
  // With 1 rank the rank digit decodes to zero and (bank,row,col) match the
  // historical layout, so Table 1 results are unaffected by the multi-rank
  // generalization.
  GeometryConfig one;
  GeometryConfig two = one;
  two.ranks = 2;
  AddressMapper m1(one), m2(two);
  for (std::uint64_t block = 0; block < 4096; ++block) {
    const auto a = m1.map(block);
    EXPECT_EQ(a.rank, 0);
    const auto b = m2.map(block);
    EXPECT_EQ(b.bank, a.bank);
    EXPECT_EQ(b.column, a.column);
  }
}

TEST(MultiRank, TwoRankChannelCompletesAllRequests) {
  DramConfig config = test_config();
  config.geometry.ranks = 2;
  DramChannel channel(config);
  channel.advance(10);
  for (int i = 0; i < 64; ++i) {
    DramRequest req;
    req.local_block = static_cast<std::uint64_t>(i) * 61;
    req.arrival = 10;
    req.tag = static_cast<std::uint64_t>(i);
    channel.submit(req);
  }
  channel.drain();
  EXPECT_EQ(channel.take_completions().size(), 64u);
}

TEST(MultiRank, AlternatingRanksPayTurnaround) {
  DramConfig config = test_config();
  config.geometry.ranks = 2;
  config.timing.tRTRS = 20;  // exaggerate so the effect dominates
  const auto rank_stride =
      static_cast<std::uint64_t>(config.geometry.blocks_per_row) *
      static_cast<std::uint64_t>(config.geometry.banks);
  // Same-rank row-hit pairs vs alternating-rank row-hit pairs.
  const auto run = [&](bool alternate) {
    DramChannel channel(config);
    channel.advance(10);
    for (int i = 0; i < 16; ++i) {
      DramRequest req;
      const std::uint64_t rank_part =
          alternate && (i % 2 == 1) ? rank_stride : 0;
      req.local_block = rank_part + static_cast<std::uint64_t>(i / 2);
      req.arrival = 10;
      req.tag = static_cast<std::uint64_t>(i);
      channel.submit(req);
    }
    channel.drain();
    const auto done = channel.take_completions();
    return done.back().finish;
  };
  EXPECT_GT(run(true), run(false))
      << "rank-alternating bursts must pay tRTRS turnarounds";
}

// ------------------------------------------------------------ refresh modes

TEST(PerBankRefresh, HappensWhenIdle) {
  DramConfig config = test_config();
  config.controller.per_bank_refresh = true;
  DramChannel channel(config);
  // Over 2 tREFI of idle time, every bank must have been refreshed twice:
  // 2 * banks REFpb commands (allow +-1 boundary slack).
  channel.advance(static_cast<Cycle>(config.timing.tREFI) * 2 + 100);
  const auto expected =
      2u * static_cast<std::uint64_t>(config.geometry.banks);
  EXPECT_GE(channel.counters().refreshes_pb + 1, expected);
  EXPECT_LE(channel.counters().refreshes_pb, expected + 2);
  EXPECT_EQ(channel.counters().refreshes, 0u) << "no REFab in REFpb mode";
}

TEST(PerBankRefresh, BlocksLessThanAllBank) {
  // A steady read stream across banks: per-bank refresh should cost less
  // demand latency than all-bank refresh (only 1/8 of the channel stalls).
  const auto run = [](bool per_bank) {
    DramConfig config;
    config.controller.per_bank_refresh = per_bank;
    DramChannel channel(config);
    Cycle t = 0;
    double latency_sum = 0;
    for (int i = 0; i < 3000; ++i) {
      t += 45;
      channel.advance(t);
      DramRequest req;
      req.local_block = static_cast<std::uint64_t>(i) * 37 % 20000;
      req.arrival = t;
      req.tag = static_cast<std::uint64_t>(i);
      channel.submit(req);
    }
    channel.drain();
    for (const auto& c : channel.take_completions()) {
      latency_sum += static_cast<double>(c.finish - c.arrival);
    }
    return latency_sum / 3000.0;
  };
  EXPECT_LT(run(true), run(false) + 1.0)
      << "REFpb must not be slower than REFab under load";
}

TEST(PerBankRefresh, EnergyComparableToAllBank) {
  // Equal idle time: 8x the refreshes at 1/8 energy each ~ same total.
  dram::PowerModel model;
  DramConfig config = test_config();
  const Cycle horizon = static_cast<Cycle>(config.timing.tREFI) * 16;
  DramChannel ab(config);
  ab.advance(horizon);
  config.controller.per_bank_refresh = true;
  DramChannel pb(config);
  pb.advance(horizon);
  const double e_ab = model.energy_nj(ab.counters());
  const double e_pb = model.energy_nj(pb.counters());
  // The refresh energy itself matches (8x commands at 1/8 energy); REFpb
  // pays a real premium in standby windows (8x more power-down exits), so
  // the total lands slightly above REFab when fully idle.
  EXPECT_NEAR(e_pb / e_ab, 1.0, 0.3);
  EXPECT_GT(e_pb, e_ab);
}

// --------------------------------------------------------------- power-down

TEST(DramChannel, PowerDownEnteredWhenIdle) {
  DramConfig config = test_config();
  DramChannel channel(config);
  one_read(channel, 0, 100);  // initialize the device (first command)
  // Long idle gap, then another read: the gap past the idle threshold must be
  // billed as power-down and the read pays the tXP exit penalty.
  const auto before = channel.counters().powerdown_cycles;
  one_read(channel, 1, 4000);
  const auto& c = channel.counters();
  EXPECT_GT(c.powerdown_entries, 0u);
  EXPECT_GT(c.powerdown_cycles, before);
}

TEST(DramChannel, NoPowerDownUnderSteadyTraffic) {
  DramConfig config = test_config();
  DramChannel channel(config);
  Cycle t = 0;
  for (int i = 0; i < 200; ++i) {
    t += 40;  // well under the 128-cycle idle threshold
    channel.advance(t);
    DramRequest req;
    req.local_block = static_cast<std::uint64_t>(i);
    req.arrival = t;
    req.tag = static_cast<std::uint64_t>(i);
    channel.submit(req);
  }
  channel.drain();
  EXPECT_EQ(channel.counters().powerdown_entries, 0u);
}

TEST(DramChannel, PowerDownThresholdValidated) {
  DramConfig config = test_config();
  config.controller.powerdown_idle_threshold = 0;
  EXPECT_THROW(DramChannel{config}, std::invalid_argument);
}

// -------------------------------------------------------------------- power

TEST(DramPower, EnergyScalesWithCommands) {
  PowerModel model;
  ChannelCounters a;
  a.elapsed = 1000000;
  ChannelCounters b = a;
  b.activates = 1000;
  b.reads = 1000;
  EXPECT_GT(model.energy_nj(b), model.energy_nj(a));
}

TEST(DramPower, BackgroundEnergyScalesWithTime) {
  PowerModel model;
  EXPECT_NEAR(model.background_energy_nj(2000) /
                  model.background_energy_nj(1000),
              2.0, 1e-9);
}

TEST(DramPower, AveragePowerIsFiniteAndPositive) {
  PowerModel model;
  ChannelCounters c;
  c.elapsed = 1600000;  // 1 ms at 1.6GHz
  c.activates = 5000;
  c.reads = 20000;
  c.writes = 8000;
  c.refreshes = 256;
  const double mw = model.average_power_mw(c);
  EXPECT_GT(mw, 10.0);
  EXPECT_LT(mw, 5000.0);
}

TEST(DramPower, ZeroElapsedYieldsZeroPower) {
  PowerModel model;
  EXPECT_EQ(model.average_power_mw(ChannelCounters{}), 0.0);
}

TEST(DramPower, RejectsNegativeParams) {
  PowerParams params;
  params.e_read_nj = -1.0;
  EXPECT_THROW(PowerModel{params}, std::invalid_argument);
}

TEST(DramPower, PowerDownCyclesAreCheaper) {
  PowerModel model;
  ChannelCounters active;
  active.elapsed = 1600000;
  ChannelCounters mostly_down = active;
  mostly_down.powerdown_cycles = 1500000;
  EXPECT_LT(model.energy_nj(mostly_down), model.energy_nj(active));
  // A fully powered-down interval costs exactly the power-down rate.
  EXPECT_NEAR(model.powerdown_energy_nj(1600000) /
                  model.background_energy_nj(1600000),
              model.params().p_powerdown_mw / model.params().p_background_mw,
              1e-9);
}

TEST(DramPower, MorePrefetchTrafficMorePower) {
  // The Fig. 10 mechanism in miniature: same elapsed time, extra reads and
  // activates from useless prefetches => strictly more power.
  PowerModel model;
  ChannelCounters base;
  base.elapsed = 1600000;
  base.reads = 10000;
  base.activates = 3000;
  ChannelCounters noisy = base;
  noisy.reads += 2340;  // +23.4% reads (the paper's BOP overhead)
  noisy.activates += 700;
  EXPECT_GT(model.average_power_mw(noisy), model.average_power_mw(base));
}

}  // namespace
}  // namespace planaria::dram
