// Edge-path tests for the simulation layer: dirty writebacks reaching DRAM,
// late-prefetch merging, prefetch throttling under saturation, redundant
// prefetch suppression, and the analytic IPC model's monotonicity.
#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "trace/generator.hpp"

namespace planaria::sim {
namespace {

trace::TraceRecord rec(Address a, Cycle t,
                       AccessType type = AccessType::kRead) {
  return trace::TraceRecord{addr::block_align(a), t, type, DeviceId::kCpuBig};
}

SimConfig tiny_cache_config() {
  SimConfig config;
  config.cache.size_bytes = 1 << 12;  // 4KB slice: 64 lines, easy to thrash
  config.cache.ways = 4;
  return config;
}

TEST(SimulatorEdge, DirtyWritebackReachesDram) {
  // Fill a line, dirty it, then thrash its set so the eviction writes back.
  const auto config = tiny_cache_config();
  std::vector<trace::TraceRecord> records;
  Cycle t = 100;
  const Address base = addr::compose_segment(0, 0, 0);
  records.push_back(rec(base, t));                      // miss + fill
  records.push_back(rec(base, t += 400, AccessType::kWrite));  // dirty it
  // 64 sets in channel 0's slice; same set repeats every 64 * 16 blocks...
  // simpler: hammer many distinct pages' block 0 so every set cycles.
  for (int p = 1; p < 600; ++p) {
    records.push_back(rec(addr::compose_segment(static_cast<PageNumber>(p), 0, 0),
                          t += 400));
  }
  const auto r = Simulator::run(config, make_prefetcher_factory(PrefetcherKind::kNone),
                                "none", records);
  EXPECT_GT(r.dram_writes, 0u) << "dirty eviction must write back to DRAM";
}

TEST(SimulatorEdge, LatePrefetchStillReducesLatency) {
  // A prefetch issued just before the demand: the demand merges with the
  // in-flight fill and pays only the residual latency.
  const auto config = tiny_cache_config();
  // next-line on a sequential stream with arrivals tighter than DRAM latency:
  // every prefetch is late, yet AMAT must still improve via merging.
  std::vector<trace::TraceRecord> records;
  Cycle t = 100;
  for (int i = 0; i < 200; ++i) {
    records.push_back(rec(addr::compose_segment(3, 0, 0) +
                              static_cast<Address>(i) * kBlockBytes,
                          t += 30));  // < cold-miss latency
  }
  const auto none = Simulator::run(
      config, make_prefetcher_factory(PrefetcherKind::kNone), "none", records);
  const auto nl = Simulator::run(
      config, make_prefetcher_factory(PrefetcherKind::kNextLine), "next-line",
      records);
  EXPECT_LT(nl.amat_cycles, none.amat_cycles);
}

TEST(SimulatorEdge, PrefetchDropsUnderSaturation) {
  SimConfig config = tiny_cache_config();
  config.dram.controller.read_queue_depth = 8;
  std::vector<trace::TraceRecord> records;
  Cycle t = 100;
  // Dense random misses + an aggressive prefetcher: the tiny queue must
  // throttle speculation.
  Rng rng(3);
  for (int i = 0; i < 4000; ++i) {
    records.push_back(rec(addr::compose_segment(
                              static_cast<PageNumber>(rng.next_below(4096)), 0,
                              static_cast<int>(rng.next_below(16))),
                          t += 6));
  }
  const auto r = Simulator::run(
      config, make_prefetcher_factory(PrefetcherKind::kNextLine), "next-line",
      records);
  EXPECT_GT(r.prefetch_dropped, 0u);
}

TEST(SimulatorEdge, RedundantPrefetchesNeverReachDram) {
  // Planaria re-triggers on every miss of a page; dedupe against cache and
  // in-flight must keep DRAM prefetch reads bounded by distinct blocks.
  SimConfig config;
  config.cache.size_bytes = 1 << 18;
  auto trace = trace::generate_app_trace(trace::app_by_name("HoK"), 50000);
  const auto r = Simulator::run(
      config, make_prefetcher_factory(PrefetcherKind::kPlanaria), "planaria",
      trace);
  EXPECT_LE(r.prefetch_issued, r.dram_reads)
      << "every issued prefetch is a distinct DRAM read";
}

TEST(SimulatorEdge, IpcFallsWithAmat) {
  // The analytic core model must be monotone: worse AMAT => lower IPC.
  CpuModelParams cpu;
  SimResult fast;
  fast.amat_cycles = 40;
  SimResult slow;
  slow.amat_cycles = 80;
  // Reconstruct the model by running two tiny sims is overkill; check the
  // formula through the public result of two real runs instead.
  SimConfig config = tiny_cache_config();
  std::vector<trace::TraceRecord> hits, misses;
  Cycle t = 100;
  for (int i = 0; i < 500; ++i) {
    hits.push_back(rec(addr::compose_segment(1, 0, i % 4), t += 100));
    misses.push_back(rec(addr::compose_segment(static_cast<PageNumber>(i), 0, 0),
                         t += 100));
  }
  const auto hit_run = Simulator::run(
      config, make_prefetcher_factory(PrefetcherKind::kNone), "none", hits);
  const auto miss_run = Simulator::run(
      config, make_prefetcher_factory(PrefetcherKind::kNone), "none", misses);
  EXPECT_LT(hit_run.amat_cycles, miss_run.amat_cycles);
  EXPECT_GT(hit_run.ipc, miss_run.ipc);
}

TEST(SimulatorEdge, WriteHeavyTraceIsStable) {
  SimConfig config = tiny_cache_config();
  std::vector<trace::TraceRecord> records;
  Cycle t = 100;
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    records.push_back(rec(addr::compose_segment(
                              static_cast<PageNumber>(rng.next_below(256)), 0,
                              static_cast<int>(rng.next_below(16))),
                          t += 20,
                          rng.chance(0.8) ? AccessType::kWrite
                                          : AccessType::kRead));
  }
  const auto r = Simulator::run(
      config, make_prefetcher_factory(PrefetcherKind::kNone), "none", records);
  EXPECT_GT(r.demand_writes, r.demand_reads);
  EXPECT_GT(r.dram_writes, 0u);
  EXPECT_GT(r.total_power_mw, 0.0);
}

TEST(SimulatorEdge, TimelinessAndUtilizationPopulated) {
  SimConfig config = tiny_cache_config();
  // Tight sequential stream: next-line prefetches are systematically late,
  // so demands merge with airborne prefetch fills.
  std::vector<trace::TraceRecord> records;
  Cycle t = 100;
  for (int i = 0; i < 300; ++i) {
    records.push_back(rec(addr::compose_segment(3, 0, 0) +
                              static_cast<Address>(i) * kBlockBytes,
                          t += 25));
  }
  const auto r = Simulator::run(
      config, make_prefetcher_factory(PrefetcherKind::kNextLine), "next-line",
      records);
  EXPECT_GT(r.late_prefetch_merges, 0u);
  EXPECT_GT(r.data_bus_utilization, 0.0);
  EXPECT_LT(r.data_bus_utilization, 1.0);
}

TEST(SimulatorEdge, SmsAndCompositesRunEndToEnd) {
  // Smoke: every registered prefetcher kind survives a real workload.
  SimConfig config;
  auto trace = trace::generate_app_trace(trace::app_by_name("KO"), 30000);
  for (const auto kind :
       {PrefetcherKind::kSms, PrefetcherKind::kSerialComposite,
        PrefetcherKind::kParallelComposite, PrefetcherKind::kNextLine,
        PrefetcherKind::kStride}) {
    const auto r = Simulator::run(config, make_prefetcher_factory(kind),
                                  prefetcher_kind_name(kind), trace);
    EXPECT_GT(r.demand_reads, 0u) << prefetcher_kind_name(kind);
    EXPECT_GT(r.amat_cycles, 0.0) << prefetcher_kind_name(kind);
  }
}

}  // namespace
}  // namespace planaria::sim
