// Targeted tests for deeper baseline-prefetcher paths: BOP's prefetch-fill
// RR insertion and timeliness semantics, SPP's cross-page GHR bootstrap,
// and the saturating-counter aging in SPP's pattern table.
#include <gtest/gtest.h>

#include "prefetch/bop.hpp"
#include "prefetch/spp.hpp"

namespace planaria::prefetch {
namespace {

DemandEvent miss_at(std::uint64_t block, Cycle now = 0) {
  DemandEvent e;
  e.local_block = block;
  e.page = block / kBlocksPerSegment;
  e.block_in_segment = static_cast<int>(block % kBlocksPerSegment);
  e.now = now;
  e.sc_hit = false;
  return e;
}

// ----------------------------------------------------------------- BOP fills

TEST(BopFillPath, PrefetchFillsInsertShiftedBase) {
  // Per Michaud: when a *prefetched* line Y completes, insert Y - D so that a
  // later trigger at Y scores offset D only if prefetching was timely.
  // Construct: train offset 1 on with demand fills, then verify prefetch
  // fills keep the offset scoring (the stream stays covered).
  BopConfig config;
  config.score_max = 20;
  BestOffsetPrefetcher pf(config);
  std::vector<PrefetchRequest> out;
  // Phase 1: demand-fill training.
  for (std::uint64_t b = 0; b < 3000; ++b) {
    pf.on_fill(b, /*was_prefetch=*/false, b * 10);
    out.clear();
    pf.on_demand(miss_at(b + 1, b * 10 + 5), out);
  }
  ASSERT_TRUE(pf.prefetch_enabled());
  ASSERT_EQ(pf.best_offset(), 1);
  // Phase 2: now every fill is a prefetch fill (steady covered stream);
  // the prefetcher must stay on through multiple rounds.
  for (std::uint64_t b = 3000; b < 12000; ++b) {
    pf.on_fill(b, /*was_prefetch=*/true, b * 10);
    out.clear();
    auto e = miss_at(b + 1, b * 10 + 5);
    e.sc_hit = true;
    e.hit_was_prefetch = true;  // covered stream: prefetched-hit triggers
    pf.on_demand(e, out);
  }
  // The shifted insertion (Y - D) makes the measured best offset drift in
  // this open-loop harness (real prefetch fills would track the offset and
  // close the loop); the meaningful property is that a fully covered stream
  // keeps the prefetcher ON rather than mistraining it off.
  EXPECT_TRUE(pf.prefetch_enabled());
  EXPECT_GE(pf.best_offset(), 1);
}

TEST(BopFillPath, PrefetchFillBelowOffsetIsIgnored) {
  // A prefetch fill whose address is smaller than the current offset cannot
  // underflow the RR insertion.
  BestOffsetPrefetcher pf;
  pf.on_fill(0, /*was_prefetch=*/true, 10);  // best_offset starts at 1 > 0
  SUCCEED();  // no crash / UB is the assertion
}

TEST(BopFillPath, StaleRrEntriesStopScoring) {
  // RR is direct-mapped: a conflicting insertion must overwrite, so an old
  // address no longer scores. Use two addresses that alias in the RR table.
  BopConfig config;
  config.rr_entries = 16;
  BestOffsetPrefetcher pf(config);
  std::vector<PrefetchRequest> out;
  // Fill X, then fill X + 16 (same RR slot). Trigger at X+1 tests offset 1
  // against a slot that now holds X+16 -> no score.
  pf.on_fill(100, false, 1);
  pf.on_fill(116, false, 2);
  // We can't observe scores directly; drive many aliased rounds and confirm
  // the prefetcher does NOT enable (nothing consistent to learn).
  std::uint64_t x = 7;
  for (int i = 0; i < 20000; ++i) {
    x = x * 2862933555777941757ull + 3037000493ull;
    const std::uint64_t fill_block = (x >> 32) % 1000000;
    pf.on_fill(fill_block, false, 0);
    out.clear();
    pf.on_demand(miss_at((fill_block + 5000) % 1000000), out);
  }
  EXPECT_FALSE(pf.prefetch_enabled());
}

// ------------------------------------------------------------------ SPP GHR

TEST(SppGhr, CrossPageBootstrapPrefetchesImmediately) {
  SignaturePathPrefetcher pf;
  std::vector<PrefetchRequest> out;
  // Train +1 streams that run off the end of their page: the lookahead walk
  // records the boundary crossing in the GHR.
  for (std::uint64_t page = 0; page < 300; ++page) {
    for (int b = 0; b < kBlocksPerSegment; ++b) {
      out.clear();
      pf.on_demand(miss_at(page * kBlocksPerSegment +
                           static_cast<std::uint64_t>(b)), out);
    }
  }
  // A brand-new page whose first access matches the GHR's predicted landing
  // offset (block 0 after a +1 walk) must issue prefetches on its very first
  // access — the warm-start SPP's GHR exists for.
  out.clear();
  pf.on_demand(miss_at(5000 * kBlocksPerSegment), out);
  EXPECT_FALSE(out.empty())
      << "GHR bootstrap should prefetch on the first access of a new page";
}

TEST(SppGhr, UnrelatedFirstAccessStaysQuiet) {
  SignaturePathPrefetcher pf;
  std::vector<PrefetchRequest> out;
  // Without any page-boundary-crossing training, a new page's first access
  // has no GHR match and the pattern table has no entry for its bootstrap
  // signature.
  pf.on_demand(miss_at(42 * kBlocksPerSegment + 7), out);
  EXPECT_TRUE(out.empty());
}

TEST(SppAging, SaturationHalvesCounters) {
  // Drive one signature's counter to saturation with delta +1, then switch
  // the behaviour to delta +2: the aging path must let the new delta win
  // within a bounded number of observations.
  SppConfig config;
  config.counter_max = 15;
  SignaturePathPrefetcher pf(config);
  std::vector<PrefetchRequest> out;
  // Page visits: 0, +1 repeatedly (re-allocating the page each time via a
  // long run of pages with the same two-access pattern).
  for (std::uint64_t page = 0; page < 400; ++page) {
    pf.on_demand(miss_at(page * kBlocksPerSegment + 0), out);
    pf.on_demand(miss_at(page * kBlocksPerSegment + 1), out);
  }
  // Now the same bootstrap signature observes +2 instead.
  for (std::uint64_t page = 1000; page < 1400; ++page) {
    pf.on_demand(miss_at(page * kBlocksPerSegment + 0), out);
    pf.on_demand(miss_at(page * kBlocksPerSegment + 2), out);
  }
  // Fresh page, first delta unknown: after the +2 retraining, a trigger at
  // block 0 should predict +2 (i.e. prefetch block 2, not block 1).
  out.clear();
  pf.on_demand(miss_at(9999 * kBlocksPerSegment + 0), out);
  bool predicts_plus2 = false;
  for (const auto& r : out) {
    if (r.local_block % kBlocksPerSegment == 2) predicts_plus2 = true;
  }
  EXPECT_TRUE(predicts_plus2);
}

}  // namespace
}  // namespace planaria::prefetch
