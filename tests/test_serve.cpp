// Multi-tenant serving loop tests (DESIGN.md §15).
//
// The contracts under test, in rough order of load-bearing-ness:
//   * Determinism: a fleet's outcomes, counters and rolling summaries are a
//     pure function of (config, specs) — identical at 1 vs 4 threads, and a
//     server killed mid-serve and restarted from its checkpoints finishes
//     byte-identical to the uninterrupted run (the audit's --stage serve
//     repeats this over seeded kill points; here we pin one).
//   * Fault isolation: drill faults delay a session's scheduling but never
//     change what it feeds its simulator — per-session SimResults with
//     drills armed equal the drill-free run's for every surviving session.
//   * Explicit backpressure: admission and ingest beyond their budgets
//     defer and count; shed sessions account their queued remainder; the
//     record-conservation identities hold at drain.
//   * Graceful drain: pending sessions reject, queues flush to zero, live
//     sessions finalize with partial results.

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "io/vfs.hpp"
#include "serve/serve.hpp"

namespace planaria {
namespace {

namespace fs = std::filesystem;

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "planaria-test-serve";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string subdir(const char* name) const {
    const fs::path p = dir_ / name;
    fs::create_directories(p);
    return p.string();
  }

  fs::path dir_;
};

serve::ServeConfig small_config() {
  serve::ServeConfig config;
  config.records_per_session = 3000;
  config.max_live_sessions = 4;
  config.queue_capacity = 512;
  config.ingest_per_tick = 256;
  config.quantum_records = 128;
  return config;
}

std::vector<serve::SessionSpec> small_fleet() {
  std::vector<serve::SessionSpec> fleet;
  const char* apps[] = {"HoK", "Fort", "TikT"};
  const char* devices[] = {"phone", "tablet"};
  for (std::uint64_t i = 0; i < 6; ++i) {
    serve::SessionSpec spec;
    spec.app = apps[i % 3];
    spec.kind = i % 2 == 0 ? sim::PrefetcherKind::kPlanaria
                           : sim::PrefetcherKind::kStride;
    spec.user_seed = 100 + i;
    spec.device = devices[i % 2];
    fleet.push_back(spec);
  }
  return fleet;
}

/// The identities every finished serve must satisfy: terminal-state
/// partition and record conservation (nothing dropped silently).
void expect_reconciled(const serve::SessionServer& server) {
  const serve::ServeCounters& c = server.counters();
  EXPECT_EQ(c.submitted, c.admitted + c.sessions_rejected);
  EXPECT_EQ(c.admitted, c.sessions_completed + c.sessions_drained +
                            c.sessions_shed_retry + c.sessions_shed_deadline);
  EXPECT_EQ(c.ingested_records, c.fed_records + c.shed_queued_records);
  EXPECT_EQ(server.queued_records(), 0u);
  // Checkpoint ledger: every attempt either landed or was charged as
  // degraded — a failed write is a shed, never a silent drop.
  EXPECT_EQ(c.ckpt_attempted, c.ckpt_written + c.ckpt_degraded);
}

TEST(ServeConfig, ValidateRejectsDegenerateKnobs) {
  serve::ServeConfig config = small_config();
  config.quantum_records = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = small_config();
  config.max_attempts = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = small_config();
  config.backoff_cap_ticks = 1;  // below base
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = small_config();
  config.session_fault_rate = 1.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  EXPECT_NO_THROW(small_config().validate());
}

TEST(ServeConfig, SessionStateNamesAndTerminality) {
  EXPECT_STREQ(serve::session_state_name(serve::SessionState::kLive), "live");
  EXPECT_STREQ(serve::session_state_name(serve::SessionState::kShedRetry),
               "shed-retry");
  EXPECT_FALSE(serve::session_state_terminal(serve::SessionState::kPending));
  EXPECT_FALSE(serve::session_state_terminal(serve::SessionState::kBackoff));
  EXPECT_TRUE(serve::session_state_terminal(serve::SessionState::kCompleted));
  EXPECT_TRUE(serve::session_state_terminal(serve::SessionState::kRejected));
}

TEST(Serve, FleetCompletesAndReconciles) {
  serve::SessionServer server(small_config(), 1);
  server.add_fleet(small_fleet());
  server.serve();
  ASSERT_TRUE(server.finished());
  const auto& outcomes = server.outcomes();
  ASSERT_EQ(outcomes.size(), 6u);
  for (const auto& o : outcomes) {
    EXPECT_EQ(o.state, serve::SessionState::kCompleted) << "session " << o.id;
    EXPECT_EQ(o.records_fed, 3000u);
    EXPECT_GT(o.result.demand_reads, 0u);
  }
  expect_reconciled(server);
  const serve::ServeCounters& c = server.counters();
  EXPECT_EQ(c.sessions_completed, 6u);
  EXPECT_EQ(c.ingested_records, 6u * 3000u);
  // max_live_sessions = 4 with 6 submitted: the last two must have deferred
  // at least once each.
  EXPECT_GE(c.admission_defers, 2u);
  // Rolling summaries cover every completed session, keyed both ways.
  EXPECT_EQ(server.summary().amat_by_app.groups.size(), 3u);
  EXPECT_EQ(server.summary().amat_by_device.groups.size(), 2u);
  std::uint64_t summarized = 0;
  for (const auto& [app, summary] : server.summary().amat_by_app.groups) {
    summarized += summary.count();
    EXPECT_GT(summary.quantile(0.5), 0.0) << app;
  }
  EXPECT_EQ(summarized, 6u);
}

TEST(Serve, ThreadCountIsInvisible) {
  serve::SessionServer serial(small_config(), 1);
  serial.add_fleet(small_fleet());
  serial.serve();
  serve::SessionServer pooled(small_config(), 4);
  pooled.add_fleet(small_fleet());
  pooled.serve();
  EXPECT_TRUE(serial.outcomes() == pooled.outcomes());
  EXPECT_TRUE(serial.counters() == pooled.counters());
  EXPECT_TRUE(serial.summary() == pooled.summary());
}

TEST(Serve, DrillFaultsDelaySchedulingButNotResults) {
  serve::SessionServer calm(small_config(), 1);
  calm.add_fleet(small_fleet());
  calm.serve();

  serve::ServeConfig faulty = small_config();
  faulty.session_fault_rate = 0.10;
  faulty.max_attempts = 50;  // nothing sheds; every fault only delays
  serve::SessionServer drilled(faulty, 2);
  drilled.add_fleet(small_fleet());
  drilled.serve();

  const serve::ServeCounters& c = drilled.counters();
  EXPECT_GT(c.drills_injected, 0u);
  EXPECT_EQ(c.drills_injected, c.backoff_events);
  EXPECT_EQ(c.sessions_completed, 6u);
  ASSERT_EQ(drilled.outcomes().size(), calm.outcomes().size());
  for (std::size_t i = 0; i < calm.outcomes().size(); ++i) {
    // Same simulation, different schedule: the SimResult is bit-identical
    // even though end ticks and attempts differ.
    EXPECT_TRUE(drilled.outcomes()[i].result == calm.outcomes()[i].result)
        << "session " << i;
  }
  EXPECT_TRUE(drilled.summary() == calm.summary());
  expect_reconciled(drilled);
}

TEST(Serve, RetryBudgetShedsChronicallyFaultySessions) {
  serve::ServeConfig config = small_config();
  config.session_fault_rate = 1.0;  // every quantum faults
  config.max_attempts = 3;
  serve::SessionServer server(config, 1);
  server.add_fleet(small_fleet());
  server.serve();
  const serve::ServeCounters& c = server.counters();
  EXPECT_EQ(c.sessions_shed_retry, 6u);
  EXPECT_EQ(c.sessions_completed, 0u);
  // Each session: (max_attempts - 1) backoffs, then the shedding fault.
  EXPECT_EQ(c.drills_injected, c.backoff_events + c.sessions_shed_retry);
  for (const auto& o : server.outcomes()) {
    EXPECT_EQ(o.state, serve::SessionState::kShedRetry);
    EXPECT_EQ(o.attempts, 3);
    EXPECT_EQ(o.records_fed, 0u);
  }
  expect_reconciled(server);
}

TEST(Serve, DeadlineWatchdogShedsSlowSessions) {
  serve::ServeConfig config = small_config();
  config.deadline_ticks = 5;  // 3000 records need ~24 quanta: nobody makes it
  serve::SessionServer server(config, 1);
  server.add_fleet(small_fleet());
  server.serve();
  const serve::ServeCounters& c = server.counters();
  EXPECT_EQ(c.sessions_shed_deadline, 6u);
  EXPECT_EQ(c.deadline_violations, 6u);
  EXPECT_GT(c.shed_queued_records, 0u);
  expect_reconciled(server);
}

TEST(Serve, BackpressureDefersIngestWhenQueueFills) {
  serve::ServeConfig config = small_config();
  config.queue_capacity = 256;
  config.ingest_per_tick = 256;
  config.quantum_records = 64;  // drains slower than it fills
  serve::SessionServer server(config, 1);
  server.add_fleet(small_fleet());
  server.serve();
  EXPECT_GT(server.counters().ingest_defers, 0u);
  EXPECT_EQ(server.counters().sessions_completed, 6u);
  expect_reconciled(server);
}

TEST(Serve, GracefulDrainFlushesRejectsAndAccounts) {
  serve::ServeConfig config = small_config();
  config.max_live_sessions = 2;  // guarantee pending sessions at drain time
  serve::SessionServer server(config, 1);
  server.add_fleet(small_fleet());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(server.tick());
  server.request_drain();
  server.serve();
  ASSERT_TRUE(server.finished());
  const serve::ServeCounters& c = server.counters();
  EXPECT_EQ(c.sessions_rejected, 4u);
  EXPECT_EQ(c.sessions_drained, 2u);
  EXPECT_EQ(server.queued_records(), 0u);
  for (const auto& o : server.outcomes()) {
    if (o.state == serve::SessionState::kDrained) {
      EXPECT_GT(o.records_fed, 0u);
      EXPECT_LT(o.records_fed, 3000u);
      EXPECT_GT(o.result.demand_reads, 0u);  // partial result is real
    } else {
      EXPECT_EQ(o.state, serve::SessionState::kRejected);
      EXPECT_EQ(o.records_fed, 0u);
    }
  }
  // Drained partials stay out of the completed-session percentiles.
  EXPECT_TRUE(server.summary().amat_by_app.groups.empty());
  expect_reconciled(server);
}

/// Chaos-grade config: in-simulator faults armed per session plus drill
/// faults on the serving loop, checkpointing on.
serve::ServeConfig chaos_config(const std::string& checkpoint_dir) {
  serve::ServeConfig config = small_config();
  config.sim.fault.rate[static_cast<int>(fault::FaultClass::kSlpPatternFlip)] =
      0.01;
  config.sim.fault.rate[static_cast<int>(fault::FaultClass::kDramStall)] =
      0.005;
  config.session_fault_rate = 0.05;
  config.max_attempts = 50;
  config.checkpoint_dir = checkpoint_dir;
  config.checkpoint_every_ticks = 4;
  return config;
}

TEST_F(ServeTest, KilledServerResumesBitIdentically) {
  serve::SessionServer reference(chaos_config(subdir("ref")), 1);
  reference.add_fleet(small_fleet());
  reference.serve();

  const std::string dir = subdir("killed");
  {
    serve::SessionServer victim(chaos_config(dir), 2);
    victim.add_fleet(small_fleet());
    // Kill mid-serve, past at least one checkpoint boundary.
    for (int i = 0; i < 9; ++i) ASSERT_TRUE(victim.tick());
  }  // destructor = the kill; no drain, no final checkpoint

  serve::SessionServer resumed(chaos_config(dir), 2);
  resumed.add_fleet(small_fleet());
  resumed.serve();
  EXPECT_TRUE(resumed.recovery().resumed);
  EXPECT_GT(resumed.recovery().resumed_tick, 0u);
  EXPECT_TRUE(resumed.outcomes() == reference.outcomes());
  EXPECT_TRUE(resumed.counters() == reference.counters());
  EXPECT_TRUE(resumed.summary() == reference.summary());
  expect_reconciled(resumed);
}

TEST_F(ServeTest, CorruptEnvelopeFallsBackToPrev) {
  serve::SessionServer reference(chaos_config(subdir("ref")), 1);
  reference.add_fleet(small_fleet());
  reference.serve();

  const std::string dir = subdir("killed");
  {
    serve::SessionServer victim(chaos_config(dir), 1);
    victim.add_fleet(small_fleet());
    for (int i = 0; i < 9; ++i) ASSERT_TRUE(victim.tick());
  }
  // Simulate a torn envelope write: truncate current; .prev must carry.
  {
    const std::string envelope = dir + "/server.snap";
    ASSERT_TRUE(fs::exists(envelope));
    fs::resize_file(envelope, fs::file_size(envelope) / 2);
  }
  serve::SessionServer resumed(chaos_config(dir), 1);
  resumed.add_fleet(small_fleet());
  resumed.serve();
  EXPECT_TRUE(resumed.recovery().resumed);
  EXPECT_TRUE(resumed.recovery().fell_back);
  EXPECT_FALSE(resumed.recovery().notes.empty());
  EXPECT_TRUE(resumed.outcomes() == reference.outcomes());
  EXPECT_TRUE(resumed.counters() == reference.counters());
}

TEST_F(ServeTest, CheckpointEnospcDegradesNotCrashes) {
  // Reference run with quiet storage.
  serve::SessionServer reference(chaos_config(subdir("ref")), 1);
  reference.add_fleet(small_fleet());
  reference.serve();

  // Same fleet with ENOSPC injected across the checkpoint write sites: every
  // failed envelope becomes a ckpt_degraded shed (with a recovery note and a
  // bounded backoff re-attempt), and the ledger balances at drain.
  io::IoFaultInjector shim(
      io::IoFaultPlan::single(io::IoFaultClass::kEnospc, 0.4, 0xD15C));
  serve::SessionServer stormy(chaos_config(subdir("enospc")), 1);
  stormy.add_fleet(small_fleet());
  {
    io::ScopedFaultInjector armed(&shim);
    stormy.serve();
  }
  ASSERT_TRUE(stormy.finished());
  expect_reconciled(stormy);
  const serve::ServeCounters& c = stormy.counters();
  EXPECT_GT(shim.injected(io::IoFaultClass::kEnospc), 0u);
  EXPECT_GT(c.ckpt_degraded, 0u);
  EXPECT_GT(c.ckpt_written, 0u);
  EXPECT_FALSE(stormy.recovery().notes.empty());
  // Checkpointing is resilience plumbing, not simulation state: the served
  // results are byte-identical to the quiet-storage run's.
  EXPECT_TRUE(stormy.outcomes() == reference.outcomes());
  EXPECT_TRUE(stormy.summary() == reference.summary());
}

TEST_F(ServeTest, MissingCheckpointsColdStartStillMatches) {
  serve::SessionServer reference(chaos_config(subdir("ref")), 1);
  reference.add_fleet(small_fleet());
  reference.serve();
  // No prior run in this dir: resume finds nothing, serves cold, and the
  // result is still the same pure function of (config, specs).
  serve::SessionServer cold(chaos_config(subdir("fresh")), 1);
  cold.add_fleet(small_fleet());
  cold.serve();
  EXPECT_FALSE(cold.recovery().resumed);
  EXPECT_TRUE(cold.outcomes() == reference.outcomes());
  EXPECT_TRUE(cold.counters() == reference.counters());
}

TEST(Serve, AddSessionAfterStartThrows) {
  serve::SessionServer server(small_config(), 1);
  server.add_fleet(small_fleet());
  ASSERT_TRUE(server.tick());
  EXPECT_THROW(server.add_session(serve::SessionSpec{}), std::logic_error);
}

TEST(Serve, UnknownAppRejectedAtSubmitTime) {
  serve::SessionServer server(small_config(), 1);
  serve::SessionSpec spec;
  spec.app = "NotAnApp";
  EXPECT_THROW(server.add_session(spec), std::out_of_range);
}

TEST(Serve, ForEachReadySerialAndPooledAgree) {
  std::vector<int> serial(16, 0);
  serve::for_each_ready(nullptr, serial.size(),
                        [&serial](std::size_t i) { serial[i] = static_cast<int>(i); });
  common::ThreadPool pool(3);
  std::vector<int> pooled(16, 0);
  serve::for_each_ready(&pool, pooled.size(),
                        [&pooled](std::size_t i) { pooled[i] = static_cast<int>(i); });
  EXPECT_EQ(serial, pooled);
}

}  // namespace
}  // namespace planaria
