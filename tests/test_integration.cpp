// Integration tests: the full pipeline (generator -> 4-channel SC + Planaria
// + LPDDR4) at reduced scale, asserting the paper's qualitative claims hold
// end to end, plus determinism and cross-module consistency checks.
#include <gtest/gtest.h>

#include "core/storage.hpp"
#include "sim/experiment.hpp"

namespace planaria::sim {
namespace {

/// Shared small-scale grid: computed once, asserted on by several tests.
class IntegrationFixture : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kRecords = 400000;

  static ExperimentRunner& runner() {
    static ExperimentRunner instance{SimConfig{}, kRecords};
    return instance;
  }

  static const SimResult& result(const std::string& app, PrefetcherKind kind) {
    static std::map<std::string, SimResult> cache;
    const std::string key = app + "/" + prefetcher_kind_name(kind);
    auto it = cache.find(key);
    if (it == cache.end()) {
      it = cache.emplace(key, runner().run(app, kind)).first;
    }
    return it->second;
  }
};

TEST_F(IntegrationFixture, PlanariaBeatsNoPrefetcherOnEveryApp) {
  for (const auto& app : trace::app_names()) {
    const auto& none = result(app, PrefetcherKind::kNone);
    const auto& planaria = result(app, PrefetcherKind::kPlanaria);
    EXPECT_LT(planaria.amat_cycles, none.amat_cycles) << app;
    EXPECT_GT(planaria.sc_hit_rate, none.sc_hit_rate) << app;
  }
}

TEST_F(IntegrationFixture, PlanariaTrafficIsModest) {
  // The paper's selling point: big gains without BOP/SPP-class traffic.
  for (const auto& app : {"HoK", "CFM", "Fort"}) {
    const auto& none = result(app, PrefetcherKind::kNone);
    const auto& planaria = result(app, PrefetcherKind::kPlanaria);
    const auto& bop = result(app, PrefetcherKind::kBop);
    EXPECT_LT(planaria.traffic_overhead_vs(none),
              0.5 * bop.traffic_overhead_vs(none))
        << app;
  }
}

TEST_F(IntegrationFixture, PlanariaAccuracyExceedsBaselines) {
  for (const auto& app : {"HoK", "NBA2"}) {
    const auto& planaria = result(app, PrefetcherKind::kPlanaria);
    const auto& bop = result(app, PrefetcherKind::kBop);
    const auto& spp = result(app, PrefetcherKind::kSpp);
    EXPECT_GT(planaria.prefetch_accuracy, bop.prefetch_accuracy) << app;
    EXPECT_GT(planaria.prefetch_accuracy, spp.prefetch_accuracy) << app;
  }
}

TEST_F(IntegrationFixture, PowerOrderingMatchesPaper) {
  // Planaria's power overhead must be far below BOP's and SPP's.
  for (const auto& app : {"HoK", "PM"}) {
    const auto& none = result(app, PrefetcherKind::kNone);
    const auto& planaria = result(app, PrefetcherKind::kPlanaria);
    const auto& bop = result(app, PrefetcherKind::kBop);
    EXPECT_LT(planaria.power_increase_vs(none), bop.power_increase_vs(none))
        << app;
  }
}

TEST_F(IntegrationFixture, SlpDominatesOnSlpFriendlyApps) {
  // Fig. 9: on CFM/QSM/HI3/KO/NBA2 "the effect of TLP is limited". SLP needs
  // one full visit per page to warm up, so this is asserted at the fixture's
  // larger scale.
  for (const auto& app : {"CFM", "HI3"}) {
    const auto& planaria = result(app, PrefetcherKind::kPlanaria);
    EXPECT_GT(planaria.hits_on_slp, planaria.hits_on_tlp) << app;
  }
}

TEST_F(IntegrationFixture, TlpCarriesFort) {
  const auto& planaria = result("Fort", PrefetcherKind::kPlanaria);
  EXPECT_GT(planaria.hits_on_tlp, planaria.hits_on_slp)
      << "Fort is the transfer-learning showcase (paper Fig. 9)";
}

TEST_F(IntegrationFixture, IpcImprovesWithPlanaria) {
  for (const auto& app : {"HoK", "QSM"}) {
    const auto& none = result(app, PrefetcherKind::kNone);
    const auto& planaria = result(app, PrefetcherKind::kPlanaria);
    EXPECT_GT(planaria.ipc_gain_vs(none), 0.05) << app;
  }
}

TEST_F(IntegrationFixture, CoordinatorNeverIdleWhenPatternsExist) {
  const auto& planaria = result("HoK", PrefetcherKind::kPlanaria);
  EXPECT_GT(planaria.slp_issues, 0u);
  EXPECT_GT(planaria.tlp_issues, 0u);
}

TEST_F(IntegrationFixture, DemandTrafficConservedAcrossPrefetchers) {
  // Prefetchers may add traffic but never change the demand stream itself.
  const auto& none = result("HoK", PrefetcherKind::kNone);
  const auto& planaria = result("HoK", PrefetcherKind::kPlanaria);
  EXPECT_EQ(none.demand_reads, planaria.demand_reads);
  EXPECT_EQ(none.demand_writes, planaria.demand_writes);
}

TEST(IntegrationDeterminism, SameSeedSameResult) {
  ExperimentRunner a(SimConfig{}, 40000);
  ExperimentRunner b(SimConfig{}, 40000);
  const auto ra = a.run("KO", PrefetcherKind::kPlanaria);
  const auto rb = b.run("KO", PrefetcherKind::kPlanaria);
  EXPECT_EQ(ra.amat_cycles, rb.amat_cycles);
  EXPECT_EQ(ra.dram_reads, rb.dram_reads);
  EXPECT_EQ(ra.prefetch_issued, rb.prefetch_issued);
  EXPECT_EQ(ra.hits_on_slp, rb.hits_on_slp);
}

TEST(IntegrationStorage, SimReportsPlanariaStorageBudget) {
  ExperimentRunner runner(SimConfig{}, 20000);
  const auto r = runner.run("HoK", PrefetcherKind::kPlanaria);
  // 4 channels x per-channel metadata; must match the storage accounting.
  const auto breakdown = core::planaria_storage(runner.planaria_config());
  EXPECT_EQ(r.storage_bits, breakdown.total_bits());
}

}  // namespace
}  // namespace planaria::sim
