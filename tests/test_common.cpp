// Unit tests for the common substrate: geometry, bitmaps, RNG, stats, tables.
#include <gtest/gtest.h>

#include <set>

#include "common/bitmap.hpp"
#include "common/rng.hpp"
#include "common/set_table.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/types.hpp"

namespace planaria {
namespace {

// ---------------------------------------------------------------- geometry

TEST(AddressGeometry, BlockAlignmentMasksLowBits) {
  EXPECT_EQ(addr::block_align(0x1234'5678), 0x1234'5640u);
  EXPECT_EQ(addr::block_align(0x40), 0x40u);
  EXPECT_EQ(addr::block_align(0x3F), 0x0u);
}

TEST(AddressGeometry, PageNumberIsAddressOver4K) {
  EXPECT_EQ(addr::page_number(0x0), 0u);
  EXPECT_EQ(addr::page_number(0xFFF), 0u);
  EXPECT_EQ(addr::page_number(0x1000), 1u);
  EXPECT_EQ(addr::page_number(0xDEAD'F000), 0xDEADFu);
}

TEST(AddressGeometry, BlockInPageCoversAll64Blocks) {
  std::set<int> seen;
  for (Address a = 0; a < kPageBytes; a += kBlockBytes) {
    seen.insert(addr::block_in_page(a));
  }
  EXPECT_EQ(seen.size(), 64u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 63);
}

TEST(AddressGeometry, ChannelMapSplitsPageIntoFourSegments) {
  // Blocks 0-15 -> channel 0, 16-31 -> 1, 32-47 -> 2, 48-63 -> 3.
  for (int block = 0; block < kBlocksPerPage; ++block) {
    const Address a = addr::compose(7, block);
    EXPECT_EQ(addr::channel_of(a), block / 16) << "block " << block;
    EXPECT_EQ(addr::block_in_segment(a), block % 16) << "block " << block;
  }
}

TEST(AddressGeometry, ComposeRoundTrips) {
  const PageNumber pn = 0xABCDE;
  for (int block = 0; block < kBlocksPerPage; ++block) {
    const Address a = addr::compose(pn, block);
    EXPECT_EQ(addr::page_number(a), pn);
    EXPECT_EQ(addr::block_in_page(a), block);
  }
}

TEST(AddressGeometry, ComposeSegmentMatchesCompose) {
  for (int ch = 0; ch < kChannels; ++ch) {
    for (int b = 0; b < kBlocksPerSegment; ++b) {
      const Address a = addr::compose_segment(0x42, ch, b);
      EXPECT_EQ(addr::channel_of(a), ch);
      EXPECT_EQ(addr::block_in_segment(a), b);
    }
  }
}

TEST(AddressGeometry, DeviceNamesAreDistinct) {
  std::set<std::string> names;
  for (int d = 0; d < static_cast<int>(DeviceId::kCount); ++d) {
    names.insert(device_name(static_cast<DeviceId>(d)));
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(DeviceId::kCount));
}

// ------------------------------------------------------------------ bitmap

TEST(BlockBitmap, StartsEmpty) {
  SegmentBitmap bm;
  EXPECT_TRUE(bm.empty());
  EXPECT_EQ(bm.popcount(), 0);
  EXPECT_EQ(bm.first_set(), -1);
}

TEST(BlockBitmap, SetTestClear) {
  SegmentBitmap bm;
  bm.set(3);
  bm.set(15);
  EXPECT_TRUE(bm.test(3));
  EXPECT_TRUE(bm.test(15));
  EXPECT_FALSE(bm.test(4));
  EXPECT_EQ(bm.popcount(), 2);
  bm.clear(3);
  EXPECT_FALSE(bm.test(3));
  EXPECT_EQ(bm.popcount(), 1);
}

TEST(BlockBitmap, RawConstructorMasksToWidth) {
  SegmentBitmap bm(0xFFFF'FFFFull);
  EXPECT_EQ(bm.popcount(), 16);
  EXPECT_EQ(bm.raw(), 0xFFFFull);
}

TEST(BlockBitmap, CommonAndHamming) {
  SegmentBitmap a(0b1111'0000'1111'0000);
  SegmentBitmap b(0b1010'0000'1111'1111);
  EXPECT_EQ(a.common_with(b), 6);
  EXPECT_EQ(a.hamming_distance(b), 6);
  EXPECT_EQ(a.hamming_distance(a), 0);
}

TEST(BlockBitmap, MinusKeepsOnlyExclusiveBits) {
  SegmentBitmap a(0b1100);
  SegmentBitmap b(0b1010);
  EXPECT_EQ(a.minus(b).raw(), 0b0100u);
  EXPECT_EQ(b.minus(a).raw(), 0b0010u);
  EXPECT_TRUE(a.minus(a).empty());
}

TEST(BlockBitmap, ForEachSetVisitsAscending) {
  SegmentBitmap bm;
  bm.set(1);
  bm.set(7);
  bm.set(14);
  std::vector<int> visited;
  bm.for_each_set([&](int i) { visited.push_back(i); });
  EXPECT_EQ(visited, (std::vector<int>{1, 7, 14}));
}

TEST(BlockBitmap, ToStringPutsBitZeroFirst) {
  BlockBitmap<4> bm;
  bm.set(0);
  bm.set(3);
  EXPECT_EQ(bm.to_string(), "1001");
}

TEST(BlockBitmap, FullWidth64Works) {
  PageBitmap bm;
  for (int i = 0; i < 64; ++i) bm.set(i);
  EXPECT_EQ(bm.popcount(), 64);
  EXPECT_EQ(bm.raw(), ~0ull);
}

// --------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ZipfSkewsTowardLowRanks) {
  Rng rng(17);
  std::uint64_t low = 0, high = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto r = rng.next_zipf(1000, 0.9);
    ASSERT_LT(r, 1000u);
    if (r < 100) ++low;
    if (r >= 900) ++high;
  }
  EXPECT_GT(low, high * 3);
}

TEST(Rng, BurstLengthRespectsCap) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    const int len = rng.burst_length(0.9, 5);
    EXPECT_GE(len, 1);
    EXPECT_LE(len, 5);
  }
}

// ------------------------------------------------------------------- stats

TEST(Stats, CounterAccumulates) {
  Counter c;
  c.add();
  c.add(10);
  EXPECT_EQ(c.value(), 11u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, AccumulatorTracksMoments) {
  Accumulator a;
  EXPECT_EQ(a.mean(), 0.0);
  a.add(2.0);
  a.add(4.0);
  a.add(6.0);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 6.0);
}

TEST(Stats, HistogramBucketsAndQuantiles) {
  Histogram h(10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i));
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.bucket(0), 10u);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 10.0);
  h.add(1e9);  // overflow lands in the last bucket
  EXPECT_EQ(h.bucket(9), 11u);
}

TEST(Stats, StatSetDumpsCountersAndAccumulators) {
  StatSet set;
  set.counter("hits").add(5);
  set.accumulator("latency").add(100.0);
  set.accumulator("latency").add(200.0);
  const auto snap = set.dump();
  EXPECT_EQ(snap.at("hits"), 5.0);
  EXPECT_EQ(snap.at("latency.count"), 2.0);
  EXPECT_EQ(snap.at("latency.mean"), 150.0);
}

// --------------------------------------------------------------- LruTable

TEST(LruTable, FindMissOnEmpty) {
  LruTable<int, int> t(4);
  EXPECT_EQ(t.find(1), nullptr);
  EXPECT_EQ(t.size(), 0u);
}

TEST(LruTable, InsertThenFind) {
  LruTable<int, int> t(4);
  EXPECT_FALSE(t.insert(1, 100).has_value());
  ASSERT_NE(t.find(1), nullptr);
  EXPECT_EQ(*t.find(1), 100);
}

TEST(LruTable, InsertOverwritesExistingKey) {
  LruTable<int, int> t(4);
  t.insert(1, 100);
  EXPECT_FALSE(t.insert(1, 200).has_value());
  EXPECT_EQ(*t.find(1), 200);
  EXPECT_EQ(t.size(), 1u);
}

TEST(LruTable, EvictsLeastRecentlyUsed) {
  LruTable<int, int> t(2);
  t.insert(1, 10);
  t.insert(2, 20);
  t.find(1);  // refresh 1; victim should be 2
  const auto evicted = t.insert(3, 30);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->key, 2);
  EXPECT_EQ(evicted->payload, 20);
  EXPECT_NE(t.find(1), nullptr);
  EXPECT_EQ(t.find(2), nullptr);
}

TEST(LruTable, EraseReturnsPayload) {
  LruTable<int, int> t(2);
  t.insert(5, 55);
  const auto erased = t.erase(5);
  ASSERT_TRUE(erased.has_value());
  EXPECT_EQ(*erased, 55);
  EXPECT_EQ(t.find(5), nullptr);
  EXPECT_FALSE(t.erase(5).has_value());
}

TEST(LruTable, EvictIfRemovesMatching) {
  LruTable<int, int> t(4);
  for (int i = 0; i < 4; ++i) t.insert(i, i * 10);
  std::vector<int> evicted;
  t.evict_if([](int k, const int&) { return k % 2 == 0; },
             [&](int k, int&&) { evicted.push_back(k); });
  EXPECT_EQ(evicted.size(), 2u);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.find(0), nullptr);
  EXPECT_NE(t.find(1), nullptr);
}

TEST(LruTable, PeekDoesNotRefreshLru) {
  LruTable<int, int> t(2);
  t.insert(1, 10);
  t.insert(2, 20);
  t.peek(1);  // does NOT refresh: 1 stays LRU
  const auto evicted = t.insert(3, 30);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->key, 1);
}

// ----------------------------------------------------------- SetAssocTable

TEST(SetAssocTable, InsertFindErase) {
  SetAssocTable<std::uint64_t, int> t(8, 2);
  EXPECT_EQ(t.capacity(), 16u);
  t.insert(100, 1);
  ASSERT_NE(t.find(100), nullptr);
  EXPECT_EQ(*t.find(100), 1);
  EXPECT_TRUE(t.erase(100).has_value());
  EXPECT_EQ(t.find(100), nullptr);
}

TEST(SetAssocTable, EvictsWithinSetOnly) {
  // 1 set x 2 ways: third insert must evict the LRU of the two.
  SetAssocTable<std::uint64_t, int> t(1, 2);
  t.insert(1, 10);
  t.insert(2, 20);
  t.find(1);
  const auto evicted = t.insert(3, 30);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->first, 2u);
}

TEST(SetAssocTable, SizeCountsValidEntries) {
  SetAssocTable<std::uint64_t, int> t(4, 4);
  for (std::uint64_t k = 0; k < 10; ++k) t.insert(k, 1);
  EXPECT_LE(t.size(), 10u);
  // Even if every key hashed to one set, that set retains its 4 ways.
  EXPECT_GE(t.size(), 4u);
}

TEST(SetAssocTable, ForEachVisitsAll) {
  SetAssocTable<std::uint64_t, int> t(4, 2);
  t.insert(1, 1);
  t.insert(2, 2);
  int sum = 0;
  t.for_each([&](std::uint64_t, int& v) { sum += v; });
  EXPECT_EQ(sum, 3);
}

TEST(SetAssocTable, EvictIfSweeps) {
  SetAssocTable<std::uint64_t, int> t(4, 2);
  for (std::uint64_t k = 0; k < 6; ++k) t.insert(k, static_cast<int>(k));
  std::size_t evicted = 0;
  t.evict_if([](std::uint64_t, const int& v) { return v >= 3; },
             [&](std::uint64_t, int&&) { ++evicted; });
  t.for_each([](std::uint64_t, int& v) { EXPECT_LT(v, 3); });
  EXPECT_GE(evicted, 1u);
}

}  // namespace
}  // namespace planaria
