// Tests for the alternative coordinators (serial/parallel composites) and
// the PC-free SMS baseline.
#include <gtest/gtest.h>

#include "core/coordinators.hpp"
#include "prefetch/sms.hpp"

namespace planaria {
namespace {

prefetch::DemandEvent event(PageNumber page, int block, Cycle now,
                            bool sc_hit = false,
                            DeviceId device = DeviceId::kCpuBig) {
  prefetch::DemandEvent e;
  e.page = page;
  e.block_in_segment = block;
  e.local_block = page * kBlocksPerSegment + static_cast<std::uint64_t>(block);
  e.now = now;
  e.device = device;
  e.sc_hit = sc_hit;
  return e;
}

// ------------------------------------------------------------------- serial

TEST(SerialComposite, ConfigValidation) {
  core::SerialCoordinatorConfig config;
  config.switch_after = 0;
  EXPECT_THROW(core::SerialComposite{config}, std::invalid_argument);
}

TEST(SerialComposite, StartsWithSlpActive) {
  core::SerialComposite pf;
  EXPECT_TRUE(pf.slp_active());
  EXPECT_EQ(pf.switches(), 0u);
}

TEST(SerialComposite, SwitchesToTlpAfterRepeatedSlpFailures) {
  core::SerialCoordinatorConfig config;
  config.switch_after = 4;
  core::SerialComposite pf(config);
  std::vector<prefetch::PrefetchRequest> out;
  Cycle now = 0;
  // Misses on fresh pages: SLP can never issue (no PT history).
  for (PageNumber p = 1000; p < 1010; ++p) {
    pf.on_demand(event(p, 0, now += 10), out);
  }
  EXPECT_FALSE(pf.slp_active());
  EXPECT_EQ(pf.switches(), 1u);
}

TEST(SerialComposite, HitsDoNotCountAsFailures) {
  core::SerialCoordinatorConfig config;
  config.switch_after = 2;
  core::SerialComposite pf(config);
  std::vector<prefetch::PrefetchRequest> out;
  Cycle now = 0;
  for (PageNumber p = 1000; p < 1100; ++p) {
    pf.on_demand(event(p, 0, now += 10, /*sc_hit=*/true), out);
  }
  EXPECT_TRUE(pf.slp_active());
}

TEST(SerialComposite, StorageCoversBothSubPrefetchers) {
  core::SerialComposite pf;
  core::Slp slp;
  core::Tlp tlp;
  EXPECT_EQ(pf.storage_bits(), slp.storage_bits() + tlp.storage_bits());
}

// ----------------------------------------------------------------- parallel

TEST(ParallelComposite, BothSubPrefetchersCanIssueOnOneTrigger) {
  core::ParallelCoordinatorConfig config;
  config.slp.at_timeout = 100;
  config.slp.sweep_interval = 1;
  core::ParallelComposite pf(config);
  std::vector<prefetch::PrefetchRequest> out;
  Cycle now = 0;
  // Teach SLP page 7 and give TLP a similar neighbor (page 9): four common
  // bits {1,5,9,11} clear TLP's similarity floor, and 13 is transferable.
  for (int b : {1, 5, 9, 11}) pf.on_demand(event(7, b, now += 10), out);
  for (int b : {1, 5, 9, 11, 13}) pf.on_demand(event(9, b, now += 10), out);
  now += 1000;
  pf.on_demand(event(999999, 0, now), out);  // trigger the timeout sweep
  out.clear();
  pf.on_demand(event(7, 1, now += 10), out);
  bool any_slp = false, any_tlp = false;
  for (const auto& r : out) {
    any_slp |= r.source == cache::FillSource::kPrefetchSlp;
    any_tlp |= r.source == cache::FillSource::kPrefetchTlp;
  }
  EXPECT_TRUE(any_slp);
  EXPECT_TRUE(any_tlp) << "parallel coordination issues from both";
}

TEST(ParallelComposite, SilentOnHits) {
  core::ParallelComposite pf;
  std::vector<prefetch::PrefetchRequest> out;
  pf.on_demand(event(1, 0, 1, /*sc_hit=*/true), out);
  EXPECT_TRUE(out.empty());
}

// ---------------------------------------------------------------------- sms

TEST(Sms, ConfigValidation) {
  prefetch::SmsConfig config;
  config.pht_entries = 0;
  EXPECT_THROW(prefetch::SmsPrefetcher{config}, std::invalid_argument);
}

TEST(Sms, NoPredictionWithoutClosedGeneration) {
  prefetch::SmsPrefetcher pf;
  std::vector<prefetch::PrefetchRequest> out;
  pf.on_demand(event(5, 3, 10), out);
  EXPECT_TRUE(out.empty());
}

TEST(Sms, ReplaysTriggerRelativePattern) {
  prefetch::SmsConfig config;
  config.generation_timeout = 100;
  config.sweep_interval = 1;
  prefetch::SmsPrefetcher pf(config);
  std::vector<prefetch::PrefetchRequest> out;
  Cycle now = 0;
  // Generation on page 5: trigger block 2, then 3 and 4 (pattern +1, +2).
  for (int b : {2, 3, 4}) pf.on_demand(event(5, b, now += 10), out);
  now += 1000;
  pf.on_demand(event(77777, 0, now), out);  // sweep closes the generation
  out.clear();
  // New page, same device, same trigger offset: pattern replays relative to
  // the trigger.
  pf.on_demand(event(50, 2, now += 10), out);
  std::set<std::uint64_t> targets;
  for (const auto& r : out) targets.insert(r.local_block % kBlocksPerSegment);
  EXPECT_EQ(targets, (std::set<std::uint64_t>{3, 4}));
}

TEST(Sms, PatternRotatesWithTriggerOffset) {
  prefetch::SmsConfig config;
  config.generation_timeout = 100;
  config.sweep_interval = 1;
  prefetch::SmsPrefetcher pf(config);
  std::vector<prefetch::PrefetchRequest> out;
  Cycle now = 0;
  for (int b : {2, 3, 4}) pf.on_demand(event(5, b, now += 10), out);
  now += 1000;
  pf.on_demand(event(77777, 0, now), out);
  out.clear();
  // Different trigger offset with the same device: the aliased slot is keyed
  // by {device, offset}, so offset 6 maps to a different (empty) slot.
  pf.on_demand(event(50, 6, now += 10), out);
  EXPECT_TRUE(out.empty());
}

TEST(Sms, DevicesSeparateSignatures) {
  prefetch::SmsConfig config;
  config.generation_timeout = 100;
  config.sweep_interval = 1;
  prefetch::SmsPrefetcher pf(config);
  std::vector<prefetch::PrefetchRequest> out;
  Cycle now = 0;
  for (int b : {2, 3, 4}) {
    pf.on_demand(event(5, b, now += 10, false, DeviceId::kGpu), out);
  }
  now += 1000;
  pf.on_demand(event(77777, 0, now), out);
  out.clear();
  // Same trigger offset but a different device: no aliasing across devices.
  pf.on_demand(event(50, 2, now += 10, false, DeviceId::kDsp), out);
  EXPECT_TRUE(out.empty());
}

TEST(Sms, LoneTriggerGenerationsAreDiscarded) {
  prefetch::SmsConfig config;
  config.generation_timeout = 100;
  config.sweep_interval = 1;
  prefetch::SmsPrefetcher pf(config);
  std::vector<prefetch::PrefetchRequest> out;
  Cycle now = 0;
  pf.on_demand(event(5, 2, now += 10), out);  // one-block generation
  now += 1000;
  pf.on_demand(event(77777, 0, now), out);
  out.clear();
  pf.on_demand(event(50, 2, now += 10), out);
  EXPECT_TRUE(out.empty());
}

TEST(Sms, StorageIsPositiveAndBounded) {
  prefetch::SmsPrefetcher pf;
  EXPECT_GT(pf.storage_bits(), 0u);
  EXPECT_LT(pf.storage_bits(), 64u * 1024 * 8);
}

}  // namespace
}  // namespace planaria
