// Storage-fault torture for the src/io VFS and the recovery layers above it
// (DESIGN.md §16).
//
// Four layers:
//   * Envelope fuzz: a PLNSNAP1 file truncated at EVERY byte offset, and with
//     a bit flipped in every byte, must be rejected — torn and rotted writes
//     are never silently decodable.
//   * Shim semantics: each injected fault class keeps its contract — throwing
//     classes leave the previous complete generation readable, the lying
//     classes (torn write, fsync loss) leave damage the CRC layer catches.
//   * Recovery chain: checkpointed runs with EIO/ENOSPC/torn/rename/fsync
//     faults armed still finish bit-identical to the uninterrupted run, and a
//     clean rerun resumes from whatever the storm left behind.
//   * Scrub/repair: corrupt envelopes are quarantined (never deleted) and
//     repaired from the surviving partner, with exact counts.
//
// planaria-audit --stage storm drives the same machinery as an end-to-end
// gate; this is the fast in-tree slice with per-offset coverage the audit's
// seeded sampling cannot promise.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "io/vfs.hpp"
#include "sim/checkpoint.hpp"
#include "sim/simulator.hpp"
#include "snapshot/snapshot.hpp"
#include "trace/apps.hpp"
#include "trace/generator.hpp"

namespace {

namespace fs = std::filesystem;
namespace io = planaria::io;
namespace sim = planaria::sim;
namespace snapshot = planaria::snapshot;
namespace trace = planaria::trace;

// PLNSNAP1 header: 8B magic + u32 version + u64 payload length + u32 CRC32.
constexpr std::streamoff kEnvelopeHeaderBytes = 24;

class IoFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "planaria-test-io-fault";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const char* name) const { return (dir_ / name).string(); }

  fs::path dir_;
};

std::vector<std::uint8_t> pattern_payload(std::size_t n) {
  std::vector<std::uint8_t> payload(n);
  for (std::size_t i = 0; i < n; ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 131 + 7);
  }
  return payload;
}

// ---------------------------------------------------------------------------
// Envelope fuzz: every truncation offset, every byte rotted
// ---------------------------------------------------------------------------

TEST_F(IoFaultTest, TruncationAtEveryByteOffsetIsRejected) {
  const auto payload = pattern_payload(97);
  snapshot::write_file(path("full.snap"), payload);
  const std::uintmax_t size = fs::file_size(path("full.snap"));
  ASSERT_EQ(size, static_cast<std::uintmax_t>(kEnvelopeHeaderBytes) +
                      payload.size());

  for (std::uintmax_t keep = 0; keep < size; ++keep) {
    fs::copy_file(path("full.snap"), path("torn.snap"),
                  fs::copy_options::overwrite_existing);
    fs::resize_file(path("torn.snap"), keep);
    EXPECT_THROW(snapshot::read_file(path("torn.snap")),
                 snapshot::SnapshotError)
        << "accepted a write torn at byte " << keep << " of " << size;
  }
}

TEST_F(IoFaultTest, BitRotInEveryByteIsRejected) {
  const auto payload = pattern_payload(64);
  snapshot::write_file(path("clean.snap"), payload);
  const std::uintmax_t size = fs::file_size(path("clean.snap"));

  // One flipped bit per byte position, cycling through all eight bit lanes,
  // covers header (magic, version, length, CRC) and payload alike.
  for (std::uintmax_t at = 0; at < size; ++at) {
    fs::copy_file(path("clean.snap"), path("rot.snap"),
                  fs::copy_options::overwrite_existing);
    {
      std::fstream f(path("rot.snap"),
                     std::ios::in | std::ios::out | std::ios::binary);
      f.seekg(static_cast<std::streamoff>(at));
      char byte = 0;
      f.get(byte);
      f.seekp(static_cast<std::streamoff>(at));
      f.put(static_cast<char>(byte ^ (1 << (at % 8))));
    }
    EXPECT_THROW(snapshot::read_file(path("rot.snap")),
                 snapshot::SnapshotError)
        << "accepted a flipped bit in byte " << at;
  }
}

// ---------------------------------------------------------------------------
// Shim semantics per fault class
// ---------------------------------------------------------------------------

TEST_F(IoFaultTest, ThrowingClassesLeaveThePreviousGenerationIntact) {
  const auto good = pattern_payload(256);
  for (const io::IoFaultClass c :
       {io::IoFaultClass::kWriteError, io::IoFaultClass::kEnospc,
        io::IoFaultClass::kRenameFail}) {
    SCOPED_TRACE(io::io_fault_class_name(c));
    const std::string file = path("gen.snap");
    snapshot::write_file(file, good);

    io::IoFaultInjector shim(io::IoFaultPlan::single(c, 1.0, 0xBADD15C));
    {
      io::ScopedFaultInjector armed(&shim);
      EXPECT_THROW(snapshot::write_file(file, pattern_payload(300)),
                   snapshot::SnapshotError);
    }
    EXPECT_GT(shim.injected(c), 0u);
    // The failed write changed nothing: old bytes intact, no tmp litter.
    EXPECT_EQ(snapshot::read_file(file), good);
    EXPECT_FALSE(fs::exists(file + ".tmp"));
    fs::remove(file);
  }
}

TEST_F(IoFaultTest, LyingClassesAlwaysLeaveDetectableDamage) {
  // Torn write and fsync loss "succeed" at the API yet persist a strict
  // prefix. Across many seeds (= many torn offsets) the CRC envelope must
  // reject every single one — no offset may slip through as decodable.
  for (const io::IoFaultClass c :
       {io::IoFaultClass::kTornWrite, io::IoFaultClass::kFsyncLoss}) {
    SCOPED_TRACE(io::io_fault_class_name(c));
    std::uint64_t applied = 0;
    for (std::uint64_t seed = 1; seed <= 64; ++seed) {
      const std::string file = path("liar.snap");
      fs::remove(file);
      io::IoFaultInjector shim(io::IoFaultPlan::single(c, 1.0, seed));
      {
        io::ScopedFaultInjector armed(&shim);
        snapshot::write_file(file, pattern_payload(48 + seed % 91));
      }
      applied += shim.injected(c);
      EXPECT_THROW(snapshot::read_file(file), snapshot::SnapshotError)
          << "seed " << seed << " produced a decodable torn file";
    }
    EXPECT_GT(applied, 0u);
  }
}

TEST_F(IoFaultTest, ReadSideFaultsAreLoudNotWrong) {
  const auto good = pattern_payload(128);
  snapshot::write_file(path("readable.snap"), good);

  io::IoFaultInjector eio(
      io::IoFaultPlan::single(io::IoFaultClass::kReadError, 1.0, 0xE10));
  {
    io::ScopedFaultInjector armed(&eio);
    EXPECT_THROW(snapshot::read_file(path("readable.snap")),
                 snapshot::SnapshotError);
  }
  EXPECT_GT(eio.injected(io::IoFaultClass::kReadError), 0u);

  io::IoFaultInjector rot(
      io::IoFaultPlan::single(io::IoFaultClass::kBitRot, 1.0, 0xB17));
  {
    io::ScopedFaultInjector armed(&rot);
    EXPECT_THROW(snapshot::read_file(path("readable.snap")),
                 snapshot::SnapshotError);
  }
  EXPECT_GT(rot.injected(io::IoFaultClass::kBitRot), 0u);

  // Disarmed, the same file reads back clean — the faults were in-flight,
  // never on disk.
  EXPECT_EQ(snapshot::read_file(path("readable.snap")), good);
}

TEST_F(IoFaultTest, AppendLineDegradesToFalseUnderEveryFaultClass) {
  io::IoFaultPlan all;
  for (int c = 0; c < io::kIoFaultClassCount; ++c) all.rate[c] = 1.0;
  io::IoFaultInjector shim(all);
  {
    io::ScopedFaultInjector armed(&shim);
    // Advisory appends must never throw, only report failure.
    for (int i = 0; i < 32; ++i) {
      io::append_line(path("traj.json"), "{\"n\":" + std::to_string(i) + "}\n");
    }
  }
  EXPECT_GT(shim.total_injected(), 0u);
  EXPECT_TRUE(io::append_line(path("traj.json"), "{\"n\":-1}\n"));
}

// ---------------------------------------------------------------------------
// Checkpoint recovery chain under injected storms
// ---------------------------------------------------------------------------

std::vector<trace::TraceRecord> storm_trace(std::uint64_t records) {
  return trace::generate_app_trace(trace::paper_apps().front(), records);
}

TEST_F(IoFaultTest, CheckpointedRunSurvivesEveryWriteSideFaultClass) {
  const auto t = storm_trace(8000);
  const auto factory = sim::make_prefetcher_factory(sim::PrefetcherKind::kPlanaria);
  const auto base = sim::Simulator::run(sim::SimConfig{}, factory, "planaria", t);

  for (const io::IoFaultClass c :
       {io::IoFaultClass::kWriteError, io::IoFaultClass::kEnospc,
        io::IoFaultClass::kTornWrite, io::IoFaultClass::kRenameFail,
        io::IoFaultClass::kFsyncLoss}) {
    SCOPED_TRACE(io::io_fault_class_name(c));
    std::uint64_t applied = 0;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      sim::CheckpointConfig ckpt;
      ckpt.dir = dir_.string();
      ckpt.every = 1000;
      ckpt.label = "storm";
      for (const std::string& p :
           {ckpt.current_path(), ckpt.prev_path(),
            ckpt.current_path() + ".quarantine",
            ckpt.prev_path() + ".quarantine"}) {
        io::remove_file(p);
      }

      // Storm pass: every checkpoint write rolls against the armed class. A
      // failed checkpoint costs resumability, never the result.
      io::IoFaultInjector shim(io::IoFaultPlan::single(c, 0.5, seed * 0x51C));
      sim::RecoveryReport stormy;
      sim::SimResult under_storm;
      {
        io::ScopedFaultInjector armed(&shim);
        under_storm = sim::run_checkpointed(sim::SimConfig{}, factory,
                                            "planaria", t, ckpt, nullptr,
                                            &stormy);
      }
      applied += shim.injected(c);
      EXPECT_TRUE(under_storm == base);
      // Every failed write is accounted, with a note per failure.
      if (stormy.checkpoint_failures > 0) {
        EXPECT_GE(stormy.notes.size(), stormy.checkpoint_failures);
      }

      // Clean rerun: whatever chain state the storm left (fresh current,
      // stale current + good .prev, or nothing at all) must recover to the
      // same result — resumed, fell back, or cold-started, never wrong.
      sim::RecoveryReport calm;
      const auto rerun = sim::run_checkpointed(
          sim::SimConfig{}, factory, "planaria", t, ckpt, nullptr, &calm);
      EXPECT_TRUE(rerun == base);
    }
    EXPECT_GT(applied, 0u) << "storm never actually fired";
  }
}

// ---------------------------------------------------------------------------
// Scrub / repair round-trips
// ---------------------------------------------------------------------------

void flip_payload_byte(const std::string& file) {
  std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(kEnvelopeHeaderBytes);
  char byte = 0;
  f.get(byte);
  f.seekp(kEnvelopeHeaderBytes);
  f.put(static_cast<char>(byte ^ 0x20));
}

TEST_F(IoFaultTest, ScrubQuarantinesAndRepairsFromTheSurvivingCopy) {
  const auto t = storm_trace(6000);
  const auto factory = sim::make_prefetcher_factory(sim::PrefetcherKind::kPlanaria);
  const auto base = sim::Simulator::run(sim::SimConfig{}, factory, "planaria", t);

  sim::CheckpointConfig ckpt;
  ckpt.dir = dir_.string();
  ckpt.every = 2000;
  ckpt.label = "scrub";

  // Two generations on disk: cursor 2000 in .prev, cursor 4000 in current.
  {
    sim::Simulator s(sim::SimConfig{}, factory, "planaria");
    s.run_sharded(t.data(), t.data() + 2000);
    sim::write_checkpoint(s, ckpt, 2000, sim::trace_fingerprint(t));
    s.run_sharded(t.data() + 2000, t.data() + 4000);
    sim::write_checkpoint(s, ckpt, 4000, sim::trace_fingerprint(t));
  }
  const auto prev_bytes = snapshot::read_file(ckpt.prev_path());

  // A clean pair scrubs as two intact envelopes, no actions taken.
  {
    const sim::ScrubReport rep = sim::scrub_checkpoints(ckpt);
    EXPECT_EQ(rep.scanned, 2u);
    EXPECT_EQ(rep.intact, 2u);
    EXPECT_EQ(rep.quarantined, 0u);
    EXPECT_EQ(rep.repaired, 0u);
    EXPECT_EQ(rep.missing, 0u);
    EXPECT_TRUE(rep.notes.empty());
  }

  // Rot the current envelope: scrub must move it aside — never delete — and
  // rebuild the slot from the good .prev.
  flip_payload_byte(ckpt.current_path());
  {
    const sim::ScrubReport rep = sim::scrub_checkpoints(ckpt);
    EXPECT_EQ(rep.scanned, 2u);
    EXPECT_EQ(rep.intact, 1u);
    EXPECT_EQ(rep.quarantined, 1u);
    EXPECT_EQ(rep.repaired, 1u);
    EXPECT_EQ(rep.missing, 0u);
    EXPECT_TRUE(fs::exists(ckpt.current_path() + ".quarantine"));
    // The repaired current is byte-for-byte the surviving generation.
    EXPECT_EQ(snapshot::read_file(ckpt.current_path()), prev_bytes);
  }

  // The repaired chain resumes (one generation older) and still finishes
  // bit-identical.
  sim::RecoveryReport rep;
  const auto result = sim::run_checkpointed(sim::SimConfig{}, factory,
                                            "planaria", t, ckpt, nullptr, &rep);
  EXPECT_EQ(rep.outcome, sim::RecoveryReport::Outcome::kResumed);
  EXPECT_EQ(rep.resumed_cursor, 2000u);
  EXPECT_TRUE(result == base);
}

TEST_F(IoFaultTest, ScrubWithBothCopiesRottenQuarantinesBothRepairsNothing) {
  const auto t = storm_trace(4000);
  const auto factory = sim::make_prefetcher_factory(sim::PrefetcherKind::kPlanaria);

  sim::CheckpointConfig ckpt;
  ckpt.dir = dir_.string();
  ckpt.every = 1000;
  ckpt.label = "doomed";
  {
    sim::Simulator s(sim::SimConfig{}, factory, "planaria");
    s.run_sharded(t.data(), t.data() + 1000);
    sim::write_checkpoint(s, ckpt, 1000, sim::trace_fingerprint(t));
    s.run_sharded(t.data() + 1000, t.data() + 2000);
    sim::write_checkpoint(s, ckpt, 2000, sim::trace_fingerprint(t));
  }
  flip_payload_byte(ckpt.current_path());
  flip_payload_byte(ckpt.prev_path());

  const sim::ScrubReport rep = sim::scrub_checkpoints(ckpt);
  EXPECT_EQ(rep.scanned, 2u);
  EXPECT_EQ(rep.intact, 0u);
  EXPECT_EQ(rep.quarantined, 2u);
  EXPECT_EQ(rep.repaired, 0u);
  EXPECT_TRUE(fs::exists(ckpt.current_path() + ".quarantine"));
  EXPECT_TRUE(fs::exists(ckpt.prev_path() + ".quarantine"));

  // With both generations quarantined the run cold-starts — and says so.
  const auto base = sim::Simulator::run(sim::SimConfig{}, factory, "planaria", t);
  sim::RecoveryReport recovery;
  const auto result = sim::run_checkpointed(
      sim::SimConfig{}, factory, "planaria", t, ckpt, nullptr, &recovery);
  EXPECT_EQ(recovery.outcome, sim::RecoveryReport::Outcome::kColdStart);
  EXPECT_TRUE(result == base);
}

TEST_F(IoFaultTest, ScrubCountsAMissingPartnerWithoutFabricatingIt) {
  const auto t = storm_trace(3000);
  const auto factory = sim::make_prefetcher_factory(sim::PrefetcherKind::kPlanaria);

  sim::CheckpointConfig ckpt;
  ckpt.dir = dir_.string();
  ckpt.every = 1000;
  ckpt.label = "lone";
  {
    sim::Simulator s(sim::SimConfig{}, factory, "planaria");
    s.run_sharded(t.data(), t.data() + 1000);
    sim::write_checkpoint(s, ckpt, 1000, sim::trace_fingerprint(t));
  }
  ASSERT_FALSE(fs::exists(ckpt.prev_path()));

  const sim::ScrubReport rep = sim::scrub_checkpoints(ckpt);
  EXPECT_EQ(rep.scanned, 1u);
  EXPECT_EQ(rep.intact, 1u);
  EXPECT_EQ(rep.quarantined, 0u);
  EXPECT_EQ(rep.missing, 1u);
  // A run that has only ever written current legitimately has no .prev; the
  // scrub does not invent one.
  EXPECT_FALSE(fs::exists(ckpt.prev_path()));
}

}  // namespace
