// Negative-path corpus for the trace boundary: hostile or damaged input fed
// to every reader (binary, CSV, DRAMSim2, ChampSim) under both recovery
// policies. kThrow must fail precisely (location in the message, no giant
// allocation first); kRecover must salvage what is intact, tally what it
// skipped, and still refuse input that is the wrong format outright.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/contract.hpp"
#include "trace/import.hpp"
#include "trace/io.hpp"

namespace {

namespace check = planaria::check;
namespace trace = planaria::trace;
using planaria::AccessType;
using planaria::DeviceId;
using trace::RecoveryPolicy;
using trace::TraceReadReport;
using trace::TraceRecord;

std::vector<TraceRecord> sample_records(std::size_t n) {
  std::vector<TraceRecord> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    TraceRecord r;
    r.address = 0x1000 + (i << 6);
    r.arrival = 10 * i;
    r.type = i % 2 == 0 ? AccessType::kRead : AccessType::kWrite;
    r.device = DeviceId::kCpuBig;
    out.push_back(r);
  }
  return out;
}

std::string valid_binary(std::size_t n) {
  std::ostringstream os;
  trace::write_binary(os, sample_records(n));
  return os.str();
}

// ---------------------------------------------------------------------------
// Binary reader

TEST(BinaryNegative, RoundTripReportsCleanRead) {
  std::istringstream is(valid_binary(5));
  TraceReadReport report;
  const auto out = trace::read_binary(is, RecoveryPolicy::kRecover, &report);
  EXPECT_EQ(out.size(), 5u);
  EXPECT_EQ(report.records, 5u);
  EXPECT_EQ(report.errors, 0u);
  EXPECT_FALSE(report.truncated);
}

TEST(BinaryNegative, TruncatedHeaderThrowsUnderBothPolicies) {
  for (auto policy : {RecoveryPolicy::kThrow, RecoveryPolicy::kRecover}) {
    std::istringstream empty("");
    EXPECT_THROW(trace::read_binary(empty, policy), std::runtime_error);
    std::istringstream partial(valid_binary(1).substr(0, 7));
    EXPECT_THROW(trace::read_binary(partial, policy), std::runtime_error);
  }
}

TEST(BinaryNegative, BadMagicThrowsUnderBothPolicies) {
  std::string bytes = valid_binary(2);
  bytes[0] = 'X';  // not a planaria trace: nothing is salvageable
  for (auto policy : {RecoveryPolicy::kThrow, RecoveryPolicy::kRecover}) {
    std::istringstream is(bytes);
    EXPECT_THROW(trace::read_binary(is, policy), std::runtime_error);
  }
}

TEST(BinaryNegative, BadVersionThrowsUnderBothPolicies) {
  std::string bytes = valid_binary(2);
  bytes[4] = 0x7F;  // version field
  for (auto policy : {RecoveryPolicy::kThrow, RecoveryPolicy::kRecover}) {
    std::istringstream is(bytes);
    EXPECT_THROW(trace::read_binary(is, policy), std::runtime_error);
  }
}

/// The headline bugfix: a 16-byte stream whose header claims 2^61 records
/// used to size a multi-gigabyte reserve before reading a single record. The
/// count must be validated against the stream's real size first.
TEST(BinaryNegative, HugeHeaderCountIsRejectedBeforeAllocation) {
  std::string bytes = valid_binary(0);
  const std::uint64_t huge = std::uint64_t{1} << 61;
  std::memcpy(&bytes[8], &huge, sizeof(huge));

  std::istringstream is(bytes);
  try {
    trace::read_binary(is, RecoveryPolicy::kThrow);
    FAIL() << "huge header count must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("header claims"), std::string::npos);
  }

  // kRecover: the honest answer is "zero whole records", delivered instantly.
  std::istringstream is2(bytes);
  TraceReadReport report;
  const auto out =
      trace::read_binary(is2, RecoveryPolicy::kRecover, &report);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(report.truncated);
  EXPECT_GE(report.errors, 1u);
}

TEST(BinaryNegative, TruncatedPayloadSalvagesCompletePrefix) {
  // 4 declared records but the last one cut mid-record.
  std::string bytes = valid_binary(4);
  bytes.resize(bytes.size() - 10);

  std::istringstream throwing(bytes);
  EXPECT_THROW(trace::read_binary(throwing, RecoveryPolicy::kThrow),
               std::runtime_error);

  std::istringstream recovering(bytes);
  TraceReadReport report;
  const auto out =
      trace::read_binary(recovering, RecoveryPolicy::kRecover, &report);
  EXPECT_EQ(out.size(), 3u);
  EXPECT_TRUE(report.truncated);
  EXPECT_EQ(report.records, 3u);
  const auto reference = sample_records(4);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].arrival, reference[i].arrival);
  }
}

TEST(BinaryNegative, CorruptEnumBytesSkippedUnderRecover) {
  // Record 1's type byte lives at header + record + offset-of-type.
  std::string bytes = valid_binary(3);
  bytes[16 + 24 + 16] = 0x55;  // type byte of record 1: neither R nor W

  std::istringstream throwing(bytes);
  EXPECT_THROW(trace::read_binary(throwing, RecoveryPolicy::kThrow),
               std::runtime_error);

  std::istringstream recovering(bytes);
  TraceReadReport report;
  const auto out =
      trace::read_binary(recovering, RecoveryPolicy::kRecover, &report);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(report.errors, 1u);
  ASSERT_EQ(report.messages.size(), 1u);
  EXPECT_NE(report.messages[0].find("record 1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// CSV reader

TEST(CsvNegative, EmptyFileThrowsOrReportsEmpty) {
  std::istringstream throwing("");
  EXPECT_THROW(trace::read_csv(throwing, RecoveryPolicy::kThrow),
               std::runtime_error);

  std::istringstream recovering("");
  TraceReadReport report;
  const auto out = trace::read_csv(recovering, RecoveryPolicy::kRecover, &report);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(report.errors, 1u);
}

TEST(CsvNegative, GarbageLinesSkippedAndCounted) {
  const std::string csv =
      "address,arrival,type,device\n"
      "0x1000,5,R,cpu-big\n"
      "complete garbage\n"
      "0x2000,notanumber,R,cpu-big\n"
      "0x3000,15,Q,cpu-big\n"
      "0x4000,20,W,no-such-device\n"
      "0x5000,25,W,cpu-big\n";

  std::istringstream throwing(csv);
  EXPECT_THROW(trace::read_csv(throwing, RecoveryPolicy::kThrow),
               std::runtime_error);

  std::istringstream recovering(csv);
  TraceReadReport report;
  const auto out = trace::read_csv(recovering, RecoveryPolicy::kRecover, &report);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(report.errors, 4u);
  EXPECT_EQ(report.records, 2u);
  // Each defect message carries its line number for the operator.
  ASSERT_GE(report.messages.size(), 1u);
  EXPECT_NE(report.messages[0].find("line 3"), std::string::npos);
}

TEST(CsvNegative, WindowsLineEndingsParseClean) {
  const std::string csv =
      "address,arrival,type,device\r\n"
      "0x1000,5,R,cpu-big\r\n"
      "0x2000,10,W,cpu-big\r\n";
  std::istringstream is(csv);
  // The '\r' of each CRLF pair used to poison the device-name match; a CRLF
  // file must now parse identically to its LF twin, even under kThrow.
  const auto out = trace::read_csv(is, RecoveryPolicy::kThrow);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].arrival, 5u);
  EXPECT_EQ(out[1].type, AccessType::kWrite);
}

TEST(CsvNegative, OverlongLineRejected) {
  std::string csv = "address,arrival,type,device\n";
  csv += std::string(trace::kMaxLineBytes + 1, 'a');
  csv += "\n0x1000,5,R,cpu-big\n";
  std::istringstream is(csv);
  TraceReadReport report;
  const auto out = trace::read_csv(is, RecoveryPolicy::kRecover, &report);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(report.errors, 1u);
  EXPECT_NE(report.messages[0].find("overlong"), std::string::npos);
}

TEST(CsvNegative, ErrorBudgetExhaustionThrowsEvenUnderRecover) {
  std::string csv = "address,arrival,type,device\n";
  for (std::uint64_t i = 0; i < trace::kDefaultErrorBudget + 2; ++i) {
    csv += "garbage line\n";
  }
  std::istringstream is(csv);
  TraceReadReport report;
  try {
    trace::read_csv(is, RecoveryPolicy::kRecover, &report);
    FAIL() << "budget exhaustion must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("error budget"), std::string::npos);
  }
  // Only the first few messages are retained verbatim; the rest only count.
  EXPECT_EQ(report.messages.size(), trace::kMaxReportedErrors);
  EXPECT_GT(report.errors, trace::kDefaultErrorBudget);
}

// ---------------------------------------------------------------------------
// Importers (DRAMSim2, ChampSim CSV)

TEST(ImportNegative, Dramsim2GarbageSkippedAndCounted) {
  const std::string trc =
      "; comment line\n"
      "0x1000 P_MEM_RD 5\n"
      "not a trace line\n"
      "ZZZZ P_MEM_RD 15\n"
      "0x3000 P_BOGUS_TYPE 20\n"
      "0x4000 P_MEM_WR 25\n";

  std::istringstream throwing(trc);
  EXPECT_THROW(trace::read_dramsim2(throwing, RecoveryPolicy::kThrow),
               std::runtime_error);

  std::istringstream recovering(trc);
  TraceReadReport report;
  const auto out =
      trace::read_dramsim2(recovering, RecoveryPolicy::kRecover, &report);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(report.errors, 3u);
  ASSERT_GE(report.messages.size(), 1u);
  EXPECT_NE(report.messages[0].find("line 3"), std::string::npos);
}

TEST(ImportNegative, Dramsim2ThrowCarriesLineNumber) {
  std::istringstream is("0x1000 P_MEM_RD 5\nbroken\n");
  try {
    trace::read_dramsim2(is, RecoveryPolicy::kThrow);
    FAIL() << "malformed line must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(ImportNegative, Dramsim2OverlongLineRejected) {
  std::string trc = "0x1000 P_MEM_RD 5\n";
  trc += "0x2000 " + std::string(trace::kMaxLineBytes, 'R') + " 10\n";
  std::istringstream is(trc);
  TraceReadReport report;
  const auto out =
      trace::read_dramsim2(is, RecoveryPolicy::kRecover, &report);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(report.errors, 1u);
}

TEST(ImportNegative, ChampsimGarbageSkippedAndCounted) {
  const std::string csv =
      "address,is_write,cycle\n"
      "0x1000,0,5\n"
      "0x2000,1\n"
      "GGGG,0,15\n"
      "0x4000,1,20\n";

  std::istringstream throwing(csv);
  EXPECT_THROW(trace::read_champsim_csv(throwing, RecoveryPolicy::kThrow),
               std::runtime_error);

  std::istringstream recovering(csv);
  TraceReadReport report;
  const auto out =
      trace::read_champsim_csv(recovering, RecoveryPolicy::kRecover, &report);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(report.errors, 2u);
}

TEST(ImportNegative, ChampsimWindowsLineEndingsParseClean) {
  std::istringstream is("address,is_write,cycle\r\n0x1000,0,5\r\n0x2000,1,10\r\n");
  const auto out = trace::read_champsim_csv(is, RecoveryPolicy::kThrow);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].type, AccessType::kWrite);
}

TEST(ImportNegative, EmptyStreamsYieldEmptyTraces) {
  // Text formats treat an empty stream as an empty capture, not an error —
  // only the binary format (whose header is mandatory) rejects it.
  std::istringstream a(""), b("");
  EXPECT_TRUE(trace::read_dramsim2(a, RecoveryPolicy::kThrow).empty());
  EXPECT_TRUE(trace::read_champsim_csv(b, RecoveryPolicy::kThrow).empty());
}

// ---------------------------------------------------------------------------
// merge_sorted precondition (previously unchecked)

TEST(MergeSortedNegative, UnsortedInputFiresTimingContract) {
  std::vector<std::vector<TraceRecord>> streams(2);
  streams[0] = sample_records(3);  // sorted: arrivals 0, 10, 20
  streams[1] = sample_records(3);
  std::swap(streams[1][0], streams[1][2]);  // 20, 10, 0: out of order

  check::CountingScope scope;
  check::reset_violations();
  const auto merged = trace::merge_sorted(streams);
  EXPECT_GT(check::violation_count(check::Category::kTimingMonotonicity), 0u);
  // Best-effort merge still delivers every record.
  EXPECT_EQ(merged.size(), 6u);
  check::reset_violations();
}

TEST(MergeSortedNegative, SortedInputStaysSilent) {
  std::vector<std::vector<TraceRecord>> streams(2);
  streams[0] = sample_records(4);
  streams[1] = sample_records(4);

  check::CountingScope scope;
  check::reset_violations();
  const auto merged = trace::merge_sorted(streams);
  EXPECT_EQ(check::total_violations(), 0u);
  ASSERT_EQ(merged.size(), 8u);
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_GE(merged[i].arrival, merged[i - 1].arrival);
  }
  check::reset_violations();
}

}  // namespace
