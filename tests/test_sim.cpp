// Tests for the simulation layer: config plumbing, request flow, MSHR
// merging, AMAT/IPC/power accounting, and the experiment runner.
#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "trace/apps.hpp"
#include "trace/generator.hpp"

namespace planaria::sim {
namespace {

trace::TraceRecord rec(Address a, Cycle t,
                       AccessType type = AccessType::kRead) {
  return trace::TraceRecord{addr::block_align(a), t, type, DeviceId::kCpuBig};
}

SimConfig small_config() {
  SimConfig config;
  config.cache.size_bytes = 1 << 16;  // 64KB slices keep tests fast
  return config;
}

PrefetcherFactory null_factory() {
  return make_prefetcher_factory(PrefetcherKind::kNone);
}

// ------------------------------------------------------------------- basics

TEST(Simulator, EmptyTraceProducesZeroResult) {
  const auto r = Simulator::run(small_config(), null_factory(), "none", {});
  EXPECT_EQ(r.demand_reads, 0u);
  EXPECT_EQ(r.amat_cycles, 0.0);
  EXPECT_EQ(r.sc_hit_rate, 0.0);
}

TEST(Simulator, SingleReadCostsScPlusDram) {
  const auto config = small_config();
  const auto r = Simulator::run(config, null_factory(), "none",
                                {rec(0x10000, 100)});
  EXPECT_EQ(r.demand_reads, 1u);
  EXPECT_EQ(r.sc_hit_rate, 0.0);
  // Cold miss: SC latency + ACT + CAS + burst.
  const auto& t = config.dram.timing;
  EXPECT_NEAR(r.amat_cycles,
              static_cast<double>(config.sc_hit_latency + t.tRCD + t.tCL +
                                  t.burst_cycles()),
              2.0);
}

TEST(Simulator, RepeatAccessHitsAfterFill) {
  const auto config = small_config();
  const auto r = Simulator::run(
      config, null_factory(), "none",
      {rec(0x10000, 100), rec(0x10000, 5000)});
  EXPECT_EQ(r.demand_reads, 2u);
  EXPECT_NEAR(r.sc_hit_rate, 0.5, 1e-9);
}

TEST(Simulator, MergedDemandsShareOneFill) {
  // Two reads of the same block, the second arriving while the first is in
  // flight: one DRAM read, two resolved demands.
  const auto r = Simulator::run(
      small_config(), null_factory(), "none",
      {rec(0x10000, 100), rec(0x10000, 110)});
  EXPECT_EQ(r.demand_reads, 2u);
  EXPECT_EQ(r.dram_reads, 1u);
}

TEST(Simulator, WritesGoToDramOnMiss) {
  const auto r = Simulator::run(
      small_config(), null_factory(), "none",
      {rec(0x10000, 100, AccessType::kWrite)});
  EXPECT_EQ(r.demand_writes, 1u);
  EXPECT_EQ(r.dram_writes, 1u);
  EXPECT_EQ(r.dram_reads, 0u);
}

TEST(Simulator, ChannelsAreIndependent) {
  // Blocks in different segments of one page go to different channels.
  std::vector<trace::TraceRecord> records;
  for (int ch = 0; ch < kChannels; ++ch) {
    records.push_back(rec(addr::compose_segment(42, ch, 0), 100 + ch));
  }
  Simulator sim(small_config(), null_factory(), "none");
  for (const auto& r : records) sim.step(r);
  const auto result = sim.finish();
  EXPECT_EQ(result.demand_reads, 4u);
  EXPECT_EQ(result.dram_reads, 4u);
}

TEST(Simulator, OutOfOrderTraceAsserts) {
  Simulator sim(small_config(), null_factory(), "none");
  sim.step(rec(0x10000, 100));
  EXPECT_DEATH(sim.step(rec(0x20000, 50)), "time-ordered");
}

TEST(Simulator, RejectsNullFactory) {
  EXPECT_THROW(Simulator(small_config(), nullptr, "x"), std::invalid_argument);
}

TEST(Simulator, RejectsInvalidConfig) {
  SimConfig config = small_config();
  config.sc_hit_latency = 0;
  EXPECT_THROW(Simulator(config, null_factory(), "x"), std::invalid_argument);
}

// ------------------------------------------------------------ prefetch path

TEST(Simulator, NextLinePrefetchProducesPrefetchHits) {
  // Sequential stream: next-line prefetch should convert later misses into
  // prefetch hits.
  std::vector<trace::TraceRecord> records;
  Cycle t = 100;
  for (int i = 0; i < 64; ++i) {
    records.push_back(rec(addr::compose_segment(7, 0, 0) +
                              static_cast<Address>(i) * kBlockBytes,
                          t += 200));
  }
  const auto none = Simulator::run(small_config(), null_factory(), "none",
                                   records);
  const auto nl = Simulator::run(
      small_config(), make_prefetcher_factory(PrefetcherKind::kNextLine),
      "next-line", records);
  EXPECT_GT(nl.sc_hit_rate, none.sc_hit_rate);
  EXPECT_GT(nl.prefetch_issued, 0u);
  EXPECT_GT(nl.prefetch_accuracy, 0.5);
  EXPECT_LT(nl.amat_cycles, none.amat_cycles);
}

TEST(Simulator, PrefetchTrafficCountsInDram) {
  std::vector<trace::TraceRecord> records;
  Cycle t = 100;
  for (int i = 0; i < 32; ++i) {
    records.push_back(rec(addr::compose_segment(7, 0, 0) +
                              static_cast<Address>(2 * i) * kBlockBytes,
                          t += 300));
  }
  // Next-line on a stride-2 stream: all prefetches useless, pure traffic.
  const auto none = Simulator::run(small_config(), null_factory(), "none",
                                   records);
  const auto nl = Simulator::run(
      small_config(), make_prefetcher_factory(PrefetcherKind::kNextLine),
      "next-line", records);
  EXPECT_GT(nl.dram_reads, none.dram_reads);
  EXPECT_EQ(nl.prefetch_accuracy, 0.0);
  EXPECT_GT(nl.traffic_overhead_vs(none), 0.2);
}

// --------------------------------------------------------------- aggregates

TEST(SimResult, ComparisonHelpers) {
  SimResult base;
  base.amat_cycles = 100.0;
  base.dram_traffic_blocks = 1000;
  base.total_power_mw = 400.0;
  base.ipc = 1.0;
  SimResult better;
  better.amat_cycles = 75.0;
  better.dram_traffic_blocks = 1100;
  better.total_power_mw = 402.0;
  better.ipc = 1.2;
  EXPECT_NEAR(better.amat_reduction_vs(base), 0.25, 1e-9);
  EXPECT_NEAR(better.traffic_overhead_vs(base), 0.10, 1e-9);
  EXPECT_NEAR(better.power_increase_vs(base), 0.005, 1e-9);
  EXPECT_NEAR(better.ipc_gain_vs(base), 0.20, 1e-9);
}

TEST(SimResult, HelpersHandleZeroBaselines) {
  SimResult zero;
  SimResult x;
  x.amat_cycles = 10.0;
  EXPECT_EQ(x.amat_reduction_vs(zero), 0.0);
  EXPECT_EQ(x.traffic_overhead_vs(zero), 0.0);
  EXPECT_EQ(x.power_increase_vs(zero), 0.0);
  EXPECT_EQ(x.ipc_gain_vs(zero), 0.0);
}

TEST(Simulator, PowerAndIpcArePopulated) {
  std::vector<trace::TraceRecord> records;
  Cycle t = 0;
  for (int i = 0; i < 2000; ++i) {
    records.push_back(rec(static_cast<Address>(i % 300) * kBlockBytes * 7,
                          t += 40));
  }
  const auto r = Simulator::run(small_config(), null_factory(), "none",
                                records);
  EXPECT_GT(r.total_power_mw, 0.0);
  EXPECT_GT(r.dram_power_mw, 0.0);
  EXPECT_GT(r.sram_power_mw, 0.0);
  EXPECT_GT(r.ipc, 0.0);
  EXPECT_GT(r.elapsed, 0u);
}

// --------------------------------------------------------- experiment runner

TEST(Experiment, KindNamesRoundTrip) {
  for (PrefetcherKind k :
       {PrefetcherKind::kNone, PrefetcherKind::kBop, PrefetcherKind::kSpp,
        PrefetcherKind::kPlanaria, PrefetcherKind::kPlanariaSlpOnly,
        PrefetcherKind::kPlanariaTlpOnly, PrefetcherKind::kNextLine,
        PrefetcherKind::kStride}) {
    EXPECT_EQ(prefetcher_kind_from_name(prefetcher_kind_name(k)), k);
  }
  EXPECT_THROW(prefetcher_kind_from_name("doom"), std::invalid_argument);
}

TEST(Experiment, TraceCacheReturnsSameObject) {
  ExperimentRunner runner(small_config(), 5000);
  const auto* first = &runner.trace_for("HoK");
  const auto* second = &runner.trace_for("HoK");
  EXPECT_EQ(first, second);
  EXPECT_EQ(first->size(), 5000u);
}

TEST(Experiment, RunProducesNamedResult) {
  ExperimentRunner runner(small_config(), 20000);
  const auto r = runner.run("HoK", PrefetcherKind::kPlanaria);
  EXPECT_EQ(r.prefetcher, "planaria");
  EXPECT_GT(r.demand_reads, 1000u);
  EXPECT_GT(r.storage_bits, 0u);
}

TEST(Experiment, AblationKindsDiffer) {
  ExperimentRunner runner(small_config(), 20000);
  const auto slp = runner.run("HoK", PrefetcherKind::kPlanariaSlpOnly);
  const auto tlp = runner.run("HoK", PrefetcherKind::kPlanariaTlpOnly);
  EXPECT_EQ(slp.tlp_issues, 0u);
  EXPECT_EQ(tlp.slp_issues, 0u);
}

TEST(Experiment, MeanAndGeomean) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_NEAR(geomean_ratio({0.5, 2.0}), 1.0, 1e-9);
  EXPECT_EQ(geomean_ratio({1.0, -1.0}), 0.0);
}

TEST(Experiment, RecordsFromEnvParses) {
  // Not set in the test environment; returns the fallback.
  unsetenv("PLANARIA_RECORDS");
  EXPECT_EQ(records_from_env(123), 123u);
  setenv("PLANARIA_RECORDS", "4567", 1);
  EXPECT_EQ(records_from_env(123), 4567u);
  setenv("PLANARIA_RECORDS", "bogus", 1);
  EXPECT_THROW(records_from_env(123), std::invalid_argument);
  unsetenv("PLANARIA_RECORDS");
}

}  // namespace
}  // namespace planaria::sim
