// Differential tests for the hot-path data structures (DESIGN.md §14).
//
// Every structure here replaced a straightforward implementation with an
// indexed or event-driven one whose only permissible difference is speed.
// These tests pin that claim directly: each indexed structure is driven
// through long randomized operation sequences in lockstep with a reference
// implementation that keeps the original linear-scan semantics, and every
// return value plus the canonical save_state encoding must agree at every
// step. The DRAM section replays identical request schedules — shaped by
// all six fault classes — through a channel whose next-event cache is live
// and a twin whose cache is destroyed before every advance, under both
// per-cycle stepping and the simulator's coarse event jumps: the cache must
// be exactly invisible, never merely close.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <random>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/block_map.hpp"
#include "common/set_table.hpp"
#include "common/table.hpp"
#include "dram/channel.hpp"
#include "dram/config.hpp"
#include "fault/fault.hpp"
#include "snapshot/snapshot.hpp"

namespace planaria {
namespace {

using Payload = std::uint64_t;

void save_payload(snapshot::Writer& w, const Payload& p) { w.u64(p); }

// ------------------------------------------------------------ reference LRU

// The original fully-associative LruTable: linear scan for every lookup,
// victim = first invalid slot in slot order, else minimum last_use (lowest
// index on ties). Kept deliberately naive — its simplicity is the spec.
class RefLruTable {
 public:
  struct Entry {
    std::uint64_t key = 0;
    Payload payload = 0;
    std::uint64_t last_use = 0;
    bool valid = false;
  };

  explicit RefLruTable(std::size_t capacity) : entries_(capacity) {}

  Payload* find(std::uint64_t key) {
    for (auto& e : entries_) {
      if (e.valid && e.key == key) {
        e.last_use = ++tick_;
        return &e.payload;
      }
    }
    return nullptr;
  }

  const Payload* peek(std::uint64_t key) const {
    for (const auto& e : entries_) {
      if (e.valid && e.key == key) return &e.payload;
    }
    return nullptr;
  }

  std::optional<Entry> insert(std::uint64_t key, Payload payload) {
    for (auto& e : entries_) {
      if (e.valid && e.key == key) {
        e.payload = payload;
        e.last_use = ++tick_;
        return std::nullopt;
      }
    }
    std::size_t slot = entries_.size();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (!entries_[i].valid) {
        slot = i;
        break;
      }
    }
    std::optional<Entry> evicted;
    if (slot == entries_.size()) {
      slot = 0;
      for (std::size_t i = 1; i < entries_.size(); ++i) {
        if (entries_[i].last_use < entries_[slot].last_use) slot = i;
      }
      evicted = entries_[slot];
    }
    Entry& e = entries_[slot];
    e.key = key;
    e.payload = payload;
    e.last_use = ++tick_;
    e.valid = true;
    return evicted;
  }

  std::optional<Payload> erase(std::uint64_t key) {
    for (auto& e : entries_) {
      if (e.valid && e.key == key) {
        e.valid = false;
        return e.payload;
      }
    }
    return std::nullopt;
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& e : entries_) n += e.valid ? 1 : 0;
    return n;
  }

  template <typename Pred, typename OnEvict>
  void evict_if(Pred&& pred, OnEvict&& on_evict) {
    for (auto& e : entries_) {
      if (e.valid && pred(e.key, e.payload)) {
        e.valid = false;
        on_evict(e.key, std::move(e.payload));
      }
    }
  }

  void clear() {
    for (auto& e : entries_) e.valid = false;
    tick_ = 0;
  }

  void save_state(snapshot::Writer& w) const {
    w.u64(tick_);
    w.u64(size());
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      if (!e.valid) continue;
      w.u64(i);
      w.u64(e.key);
      w.u64(e.last_use);
      w.u64(e.payload);
    }
  }

 private:
  std::vector<Entry> entries_;
  std::uint64_t tick_ = 0;
};

// ------------------------------------------------------ reference set-assoc

// The original SetAssocTable: same set hash, but lookups scan the set's ways
// instead of probing the TagIndex.
class RefSetAssocTable {
 public:
  RefSetAssocTable(std::size_t sets, int ways)
      : sets_(sets), ways_(ways),
        entries_(sets * static_cast<std::size_t>(ways)) {}

  Payload* find(std::uint64_t key) {
    Entry* base = set_base(key);
    for (int w = 0; w < ways_; ++w) {
      Entry& e = base[w];
      if (e.valid && e.key == key) {
        e.last_use = ++tick_;
        return &e.payload;
      }
    }
    return nullptr;
  }

  const Payload* peek(std::uint64_t key) const {
    const Entry* base = set_base(key);
    for (int w = 0; w < ways_; ++w) {
      if (base[w].valid && base[w].key == key) return &base[w].payload;
    }
    return nullptr;
  }

  std::optional<std::pair<std::uint64_t, Payload>> insert(std::uint64_t key,
                                                          Payload payload) {
    Entry* base = set_base(key);
    for (int w = 0; w < ways_; ++w) {
      Entry& e = base[w];
      if (e.valid && e.key == key) {
        e.payload = payload;
        e.last_use = ++tick_;
        return std::nullopt;
      }
    }
    Entry* victim = nullptr;
    for (int w = 0; w < ways_; ++w) {
      Entry& e = base[w];
      if (!e.valid) {
        if (victim == nullptr || victim->valid) victim = &e;
      } else if (victim == nullptr ||
                 (victim->valid && e.last_use < victim->last_use)) {
        victim = &e;
      }
    }
    std::optional<std::pair<std::uint64_t, Payload>> evicted;
    if (victim->valid) evicted.emplace(victim->key, victim->payload);
    victim->key = key;
    victim->payload = payload;
    victim->last_use = ++tick_;
    victim->valid = true;
    return evicted;
  }

  std::optional<Payload> erase(std::uint64_t key) {
    Entry* base = set_base(key);
    for (int w = 0; w < ways_; ++w) {
      Entry& e = base[w];
      if (e.valid && e.key == key) {
        e.valid = false;
        return e.payload;
      }
    }
    return std::nullopt;
  }

  template <typename Pred, typename OnEvict>
  void evict_if(Pred&& pred, OnEvict&& on_evict) {
    for (auto& e : entries_) {
      if (e.valid && pred(e.key, e.payload)) {
        e.valid = false;
        on_evict(e.key, std::move(e.payload));
      }
    }
  }

  void save_state(snapshot::Writer& w) const {
    std::uint64_t live = 0;
    for (const auto& e : entries_) live += e.valid ? 1 : 0;
    w.u64(tick_);
    w.u64(live);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      if (!e.valid) continue;
      w.u64(i);
      w.u64(e.key);
      w.u64(e.last_use);
      w.u64(e.payload);
    }
  }

 private:
  struct Entry {
    std::uint64_t key = 0;
    Payload payload = 0;
    std::uint64_t last_use = 0;
    bool valid = false;
  };

  static std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return x;
  }

  Entry* set_base(std::uint64_t key) {
    const std::size_t set = mix(key) & (sets_ - 1);
    return &entries_[set * static_cast<std::size_t>(ways_)];
  }
  const Entry* set_base(std::uint64_t key) const {
    return const_cast<RefSetAssocTable*>(this)->set_base(key);
  }

  std::size_t sets_;
  int ways_;
  std::vector<Entry> entries_;
  std::uint64_t tick_ = 0;
};

std::vector<std::uint8_t> lru_bytes(const LruTable<std::uint64_t, Payload>& t) {
  snapshot::Writer w;
  t.save_state(w, [](snapshot::Writer& ww, const Payload& p) { ww.u64(p); });
  return w.buffer();
}

std::vector<std::uint8_t> ref_lru_bytes(const RefLruTable& t) {
  snapshot::Writer w;
  t.save_state(w);
  return w.buffer();
}

// --------------------------------------------------------------- LRU table

TEST(DifferentialLruTable, MatchesLinearScanReferenceOverRandomOps) {
  for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
    std::mt19937_64 rng(seed);
    constexpr std::size_t kCapacity = 32;
    LruTable<std::uint64_t, Payload> indexed(kCapacity);
    RefLruTable reference(kCapacity);
    // Key universe 3x capacity: plenty of eviction pressure plus repeat hits.
    std::uniform_int_distribution<std::uint64_t> key_dist(0, 3 * kCapacity - 1);
    std::uniform_int_distribution<int> op_dist(0, 99);
    for (int step = 0; step < 6000; ++step) {
      const std::uint64_t key = key_dist(rng);
      const int op = op_dist(rng);
      if (op < 40) {
        Payload* a = indexed.find(key);
        Payload* b = reference.find(key);
        ASSERT_EQ(a != nullptr, b != nullptr) << "step " << step;
        if (a != nullptr) {
          ASSERT_EQ(*a, *b) << "step " << step;
        }
      } else if (op < 70) {
        const Payload payload = rng();
        auto a = indexed.insert(key, payload);
        auto b = reference.insert(key, payload);
        ASSERT_EQ(a.has_value(), b.has_value()) << "step " << step;
        if (a.has_value()) {
          ASSERT_EQ(a->key, b->key) << "step " << step;
          ASSERT_EQ(a->payload, b->payload) << "step " << step;
          ASSERT_EQ(a->last_use, b->last_use) << "step " << step;
        }
      } else if (op < 85) {
        ASSERT_EQ(indexed.erase(key), reference.erase(key)) << "step " << step;
      } else if (op < 95) {
        const Payload* a = indexed.peek(key);
        const Payload* b = reference.peek(key);
        ASSERT_EQ(a != nullptr, b != nullptr) << "step " << step;
        if (a != nullptr) {
          ASSERT_EQ(*a, *b) << "step " << step;
        }
      } else if (op < 99) {
        // Timeout-style sweep: evict every payload divisible by three.
        std::vector<std::pair<std::uint64_t, Payload>> got_a;
        std::vector<std::pair<std::uint64_t, Payload>> got_b;
        const auto pred = [](std::uint64_t, const Payload& p) {
          return p % 3 == 0;
        };
        indexed.evict_if(pred, [&](std::uint64_t k, Payload&& p) {
          got_a.emplace_back(k, p);
        });
        reference.evict_if(pred, [&](std::uint64_t k, Payload&& p) {
          got_b.emplace_back(k, p);
        });
        ASSERT_EQ(got_a, got_b) << "step " << step;
      } else {
        indexed.clear();
        reference.clear();
      }
      ASSERT_EQ(indexed.size(), reference.size()) << "step " << step;
      if (step % 97 == 0) {
        ASSERT_EQ(lru_bytes(indexed), ref_lru_bytes(reference))
            << "snapshot divergence at step " << step;
      }
    }
    EXPECT_EQ(lru_bytes(indexed), ref_lru_bytes(reference));
  }
}

// ---------------------------------------------------------- set-assoc table

TEST(DifferentialSetAssocTable, MatchesWayScanReferenceOverRandomOps) {
  for (std::uint64_t seed : {7ull, 77ull, 777ull}) {
    std::mt19937_64 rng(seed);
    constexpr std::size_t kSets = 8;
    constexpr int kWays = 4;
    SetAssocTable<std::uint64_t, Payload> indexed(kSets, kWays);
    RefSetAssocTable reference(kSets, kWays);
    std::uniform_int_distribution<std::uint64_t> key_dist(0, 127);
    std::uniform_int_distribution<int> op_dist(0, 99);
    const auto snap_indexed = [&] {
      snapshot::Writer w;
      indexed.save_state(w, save_payload);
      return w.buffer();
    };
    const auto snap_reference = [&] {
      snapshot::Writer w;
      reference.save_state(w);
      return w.buffer();
    };
    for (int step = 0; step < 6000; ++step) {
      const std::uint64_t key = key_dist(rng);
      const int op = op_dist(rng);
      if (op < 40) {
        Payload* a = indexed.find(key);
        Payload* b = reference.find(key);
        ASSERT_EQ(a != nullptr, b != nullptr) << "step " << step;
        if (a != nullptr) {
          ASSERT_EQ(*a, *b) << "step " << step;
        }
      } else if (op < 75) {
        const Payload payload = rng();
        auto a = indexed.insert(key, payload);
        auto b = reference.insert(key, payload);
        ASSERT_EQ(a.has_value(), b.has_value()) << "step " << step;
        if (a.has_value()) {
          ASSERT_EQ(a->first, b->first) << "step " << step;
          ASSERT_EQ(a->second, b->second) << "step " << step;
        }
      } else if (op < 88) {
        ASSERT_EQ(indexed.erase(key), reference.erase(key)) << "step " << step;
      } else if (op < 97) {
        const Payload* a = indexed.peek(key);
        const Payload* b = reference.peek(key);
        ASSERT_EQ(a != nullptr, b != nullptr) << "step " << step;
        if (a != nullptr) {
          ASSERT_EQ(*a, *b) << "step " << step;
        }
      } else {
        std::vector<std::pair<std::uint64_t, Payload>> got_a;
        std::vector<std::pair<std::uint64_t, Payload>> got_b;
        const auto pred = [](std::uint64_t, const Payload& p) {
          return p % 5 == 0;
        };
        indexed.evict_if(pred, [&](std::uint64_t k, Payload&& p) {
          got_a.emplace_back(k, p);
        });
        reference.evict_if(pred, [&](std::uint64_t k, Payload&& p) {
          got_b.emplace_back(k, p);
        });
        ASSERT_EQ(got_a, got_b) << "step " << step;
      }
      if (step % 101 == 0) {
        ASSERT_EQ(snap_indexed(), snap_reference())
            << "snapshot divergence at step " << step;
      }
    }
    EXPECT_EQ(snap_indexed(), snap_reference());
  }
}

// ---------------------------------------------------------------- BlockMap

TEST(DifferentialBlockMap, MatchesUnorderedMapOverRandomOps) {
  for (std::uint64_t seed : {3ull, 1003ull}) {
    std::mt19937_64 rng(seed);
    common::BlockMap<std::uint64_t> map;
    std::unordered_map<std::uint64_t, std::uint64_t> reference;
    // Includes block 0 — a legal key the open-addressing cells must not
    // confuse with "empty".
    std::uniform_int_distribution<std::uint64_t> key_dist(0, 499);
    std::uniform_int_distribution<int> op_dist(0, 99);
    for (int step = 0; step < 20000; ++step) {
      const std::uint64_t key = key_dist(rng);
      const int op = op_dist(rng);
      if (op < 35) {
        const std::uint64_t value = rng();
        if (reference.find(key) == reference.end()) {
          map.insert(key, value);
          reference.emplace(key, value);
        }
      } else if (op < 60) {
        // BlockMap::erase is a no-op on absent keys; size parity below (and
        // the final content sweep) pins that it removed exactly the right one.
        map.erase(key);
        reference.erase(key);
      } else if (op < 90) {
        const std::uint64_t* got = map.find(key);
        const auto it = reference.find(key);
        ASSERT_EQ(got != nullptr, it != reference.end()) << "step " << step;
        if (got != nullptr) {
          ASSERT_EQ(*got, it->second) << "step " << step;
        }
      } else if (op < 99) {
        ASSERT_EQ(map.contains(key), reference.count(key) > 0)
            << "step " << step;
      } else if (step % 4000 == 3999) {
        map.clear();
        reference.clear();
      }
      ASSERT_EQ(map.size(), reference.size()) << "step " << step;
    }
    // Full-content sweep: every surviving entry agrees.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> contents;
    map.for_each([&](std::uint64_t k, const std::uint64_t& v) {
      contents.emplace_back(k, v);
    });
    ASSERT_EQ(contents.size(), reference.size());
    for (const auto& [k, v] : contents) {
      const auto it = reference.find(k);
      ASSERT_NE(it, reference.end());
      EXPECT_EQ(v, it->second);
    }
  }
}


// ------------------------------------------------- DRAM advance equivalence

// The channel's scheduling semantics are deliberately defined relative to
// its own clock, which only advances at the horizons the caller passes to
// advance(): the FR-FCFS anti-starvation age and the refresh-postponement
// debt are both measured against now_. Two channels fed *different* advance
// granularities therefore legitimately diverge (a starvation flip or a
// forced refresh lands wherever the caller's horizon put the clock) — that
// is inherited controller behavior the bit-identity contract freezes, not an
// artifact of this PR. What the event-driven rewrite must guarantee is that
// the next-event cache is invisible: for the SAME sequence of advance()
// calls, a channel whose cache is live behaves bit-identically to one whose
// cache is destroyed before every call. These tests pin that under the two
// call patterns that matter — per-cycle stepping (the cache fast path fires
// on almost every call) and coarse event jumps (the simulator's real
// pattern) — across request schedules shaped by all six fault classes.
//
// The cache is destroyed through a full snapshot round-trip, which rebuilds
// every piece of derived state (next-event bound, write-queue membership
// shadow) from the serialized ground truth; the round-trip doubles as a
// restore-purity stress on 10^4 distinct mid-flight channel states.

// One scheduled interaction with the channel: either a request submission or
// a fault-injection stall, at a fixed cycle.
struct PlanEvent {
  Cycle at = 0;
  bool stall = false;
  Cycle stall_cycles = 0;
  dram::DramRequest req;
};

// Builds a request/stall schedule whose shape exercises the perturbation each
// fault class introduces. The two pattern-flip classes never touch the DRAM
// request stream — for those the plan is simply a distinct random workload,
// so every class still contributes an independent equivalence trial.
std::vector<PlanEvent> make_plan(fault::FaultClass fault_class) {
  std::mt19937_64 rng(0x9E3779B97F4A7C15ull ^
                      static_cast<std::uint64_t>(fault_class));
  std::uniform_int_distribution<std::uint64_t> block_dist(0, (1 << 18) - 1);
  std::uniform_int_distribution<int> gap_dist(0, 120);
  std::uniform_int_distribution<int> pct(0, 99);
  std::vector<PlanEvent> plan;
  Cycle t = 0;
  for (int i = 0; i < 220; ++i) {
    t += static_cast<Cycle>(gap_dist(rng));
    PlanEvent ev;
    ev.at = t;
    const int roll = pct(rng);
    if (fault_class == fault::FaultClass::kDramStall && roll < 8) {
      ev.stall = true;
      ev.stall_cycles = 50 + static_cast<Cycle>(pct(rng));
      plan.push_back(ev);
      continue;
    }
    ev.req.local_block = block_dist(rng);
    ev.req.arrival = t;
    ev.req.is_write = roll >= 70 && roll < 85;
    ev.req.is_prefetch = !ev.req.is_write && roll >= 40;
    ev.req.tag = static_cast<std::uint64_t>(i);
    switch (fault_class) {
      case fault::FaultClass::kTraceCorruption:
        // Corrupted arrivals: bursts of requests landing on the same cycle.
        if (roll < 20) ev.at = ev.req.arrival = t = std::max<Cycle>(t, 1) - 1;
        break;
      case fault::FaultClass::kPrefetchDrop:
        // Dropped prefetches: the request never reaches the channel.
        if (ev.req.is_prefetch && roll % 3 == 0) continue;
        break;
      case fault::FaultClass::kPrefetchDelay:
        // Delayed prefetches arrive late, bunched behind younger demands.
        if (ev.req.is_prefetch) {
          ev.at += 400;
          ev.req.arrival += 400;
        }
        break;
      default:
        break;
    }
    plan.push_back(ev);
  }
  // Delayed prefetches can land out of order relative to later demands; the
  // channel requires monotonic arrivals, so replay the plan in time order.
  std::stable_sort(plan.begin(), plan.end(),
                   [](const PlanEvent& a, const PlanEvent& b) {
                     return a.at < b.at;
                   });
  return plan;
}

std::vector<std::uint8_t> channel_bytes(const dram::DramChannel& ch) {
  snapshot::Writer w;
  ch.save_state(w);
  return w.buffer();
}

// Destroys all derived state (the next-event cache above all) by rebuilding
// the channel from its own canonical snapshot.
void scrub_derived_state(dram::DramChannel& ch) {
  const std::vector<std::uint8_t> bytes = channel_bytes(ch);
  snapshot::Reader r(bytes);
  ch.load_state(r);
}

struct ReplayResult {
  std::vector<dram::DramCompletion> completions;
  std::vector<std::uint8_t> final_state;
};

/// Replays `plan` through a fresh channel. `cycle_step` advances the clock
/// one cycle at a time instead of jumping to each event; `scrub` round-trips
/// the channel through a snapshot before every advance, so the next-event
/// cache can never be consulted.
ReplayResult replay(const std::vector<PlanEvent>& plan, bool cycle_step,
                    bool scrub) {
  dram::DramConfig config;  // Table 1 defaults — refresh stays live
  dram::DramChannel ch(config);
  ReplayResult result;
  std::vector<dram::DramCompletion> scratch;
  const auto advance_to = [&](Cycle target) {
    if (cycle_step) {
      for (Cycle t = ch.now(); t < target; ++t) {
        if (scrub) scrub_derived_state(ch);
        ch.advance(t + 1);
      }
    } else {
      if (scrub) scrub_derived_state(ch);
      ch.advance(target);
    }
  };
  for (const PlanEvent& ev : plan) {
    advance_to(ev.at);
    if (ev.stall) {
      ch.inject_stall(ev.stall_cycles);
    } else {
      ch.submit(ev.req);
    }
    if (ch.has_completions()) {
      ch.take_completions(scratch);
      result.completions.insert(result.completions.end(), scratch.begin(),
                                scratch.end());
    }
  }
  // A generous tail horizon: long enough for every read (and any write the
  // drain hysteresis chooses to issue) to complete.
  advance_to(plan.back().at + 200000);
  ch.take_completions(scratch);
  result.completions.insert(result.completions.end(), scratch.begin(),
                            scratch.end());
  result.final_state = channel_bytes(ch);
  return result;
}

void expect_same_replay(const ReplayResult& a, const ReplayResult& b) {
  ASSERT_EQ(a.completions.size(), b.completions.size());
  for (std::size_t i = 0; i < a.completions.size(); ++i) {
    const dram::DramCompletion& ca = a.completions[i];
    const dram::DramCompletion& cb = b.completions[i];
    ASSERT_EQ(ca.tag, cb.tag) << "completion " << i;
    ASSERT_EQ(ca.arrival, cb.arrival) << "completion " << i;
    ASSERT_EQ(ca.finish, cb.finish) << "completion " << i;
    ASSERT_EQ(ca.is_write, cb.is_write) << "completion " << i;
    ASSERT_EQ(ca.is_prefetch, cb.is_prefetch) << "completion " << i;
    ASSERT_EQ(ca.row_hit, cb.row_hit) << "completion " << i;
    ASSERT_EQ(ca.forwarded, cb.forwarded) << "completion " << i;
  }
  // The strongest form: the full serialized channel state (banks, queues,
  // timing horizons, counters) is byte-identical.
  EXPECT_EQ(a.final_state, b.final_state);
}

TEST(DifferentialDram, CachedCycleSteppingMatchesUncachedAcrossFaultClasses) {
  for (int fc = 0; fc < fault::kFaultClassCount; ++fc) {
    const auto fault_class = static_cast<fault::FaultClass>(fc);
    SCOPED_TRACE(fault::fault_class_name(fault_class));
    const std::vector<PlanEvent> plan = make_plan(fault_class);
    const ReplayResult cached =
        replay(plan, /*cycle_step=*/true, /*scrub=*/false);
    const ReplayResult uncached =
        replay(plan, /*cycle_step=*/true, /*scrub=*/true);
    expect_same_replay(cached, uncached);
  }
}

TEST(DifferentialDram, CachedEventJumpsMatchUncachedAcrossFaultClasses) {
  for (int fc = 0; fc < fault::kFaultClassCount; ++fc) {
    const auto fault_class = static_cast<fault::FaultClass>(fc);
    SCOPED_TRACE(fault::fault_class_name(fault_class));
    const std::vector<PlanEvent> plan = make_plan(fault_class);
    const ReplayResult cached =
        replay(plan, /*cycle_step=*/false, /*scrub=*/false);
    const ReplayResult uncached =
        replay(plan, /*cycle_step=*/false, /*scrub=*/true);
    expect_same_replay(cached, uncached);
  }
}

}  // namespace
}  // namespace planaria
