// Tests for the invariant contract layer (src/check) and the config
// rejection paths it backs up: every validate() bound that guards a
// hardware field width, and the violation-handler plumbing planaria-audit
// relies on to stay un-blind.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "cache/system_cache.hpp"
#include "check/contract.hpp"
#include "common/stats.hpp"
#include "core/coordinators.hpp"
#include "core/planaria.hpp"
#include "core/storage.hpp"
#include "core/storage_layout.hpp"

namespace {

using planaria::Cycle;
using planaria::StatSet;
namespace check = planaria::check;
namespace core = planaria::core;
namespace layout = planaria::core::layout;

// ---------------------------------------------------------------------------
// Config rejection paths.

TEST(ConfigValidation, DefaultConfigsPass) {
  EXPECT_NO_THROW(core::SlpConfig{}.validate());
  EXPECT_NO_THROW(core::TlpConfig{}.validate());
  EXPECT_NO_THROW(core::PlanariaConfig{}.validate());
  EXPECT_NO_THROW(core::SerialCoordinatorConfig{}.validate());
  EXPECT_NO_THROW(planaria::cache::CacheConfig{}.validate());
}

TEST(ConfigValidation, SlpRejectsNonPositiveGeometry) {
  core::SlpConfig config;
  config.ft_ways = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = {};
  config.pt_sets = -4;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(ConfigValidation, SlpRejectsNonPowerOfTwoSetCounts) {
  core::SlpConfig config;
  config.ft_sets = 48;  // hardware set index needs a power of two
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = {};
  config.at_sets = 3;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = {};
  config.pt_sets = 1000;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(ConfigValidation, SlpRejectsPromoteThresholdOutsideFtSlots) {
  core::SlpConfig config;
  config.promote_threshold = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.promote_threshold = layout::kFtOffsetSlots + 1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.promote_threshold = layout::kFtOffsetSlots;
  EXPECT_NO_THROW(config.validate());
}

TEST(ConfigValidation, SlpRejectsTimeoutOverflowingAtTimeField) {
  core::SlpConfig config;
  config.at_timeout = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.at_timeout = Cycle{1} << layout::kAtTimeBits;  // one past the field
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.at_timeout = (Cycle{1} << layout::kAtTimeBits) - 1;
  EXPECT_NO_THROW(config.validate());
  config = {};
  config.sweep_interval = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(ConfigValidation, TlpRejectsDegenerateParameters) {
  core::TlpConfig config;
  config.rpt_entries = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = {};
  config.distance_threshold = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = {};
  config.min_common_bits = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.min_common_bits = 17;  // bitmap only has 16 bits to share
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.min_common_bits = 16;
  EXPECT_NO_THROW(config.validate());
}

TEST(ConfigValidation, PlanariaRejectsBothSubPrefetchersDisabled) {
  core::PlanariaConfig config;
  config.enable_slp = false;
  config.enable_tlp = false;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  EXPECT_THROW(core::PlanariaPrefetcher{config}, std::invalid_argument);
}

TEST(ConfigValidation, PlanariaRejectsBadSubConfigs) {
  core::PlanariaConfig config;
  config.slp.ft_sets = 7;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = {};
  config.tlp.min_common_bits = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(ConfigValidation, SerialCoordinatorRejectsNonPositiveSwitchAfter) {
  core::SerialCoordinatorConfig config;
  config.switch_after = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.switch_after = -1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(ConfigValidation, CacheRejectsBrokenGeometry) {
  planaria::cache::CacheConfig config;
  config.size_bytes = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = {};
  config.size_bytes = 3u << 20;  // not a power of two
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = {};
  config.ways = 7;  // does not divide the line count
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Violation handler plumbing.

TEST(ContractHandler, CountingModeCountsPerCategoryWithoutAborting) {
  check::CountingScope scope;
  check::reset_violations();

  PLANARIA_INVARIANT(kTableOccupancy, false);
  PLANARIA_INVARIANT(kTableOccupancy, false);
  PLANARIA_REQUIRE(kTimingMonotonicity, false);
  PLANARIA_ENSURE(kStorageBudget, 1 + 1 == 2);  // holds, must not count

  EXPECT_EQ(check::violation_count(check::Category::kTableOccupancy), 2u);
  EXPECT_EQ(check::violation_count(check::Category::kTimingMonotonicity), 1u);
  EXPECT_EQ(check::violation_count(check::Category::kCoordinatorExclusivity),
            0u);
  EXPECT_EQ(check::violation_count(check::Category::kStorageBudget), 0u);
  EXPECT_EQ(check::total_violations(), 3u);

  check::reset_violations();
  EXPECT_EQ(check::total_violations(), 0u);
}

TEST(ContractHandler, CountingScopeRestoresAbortModeOnExit) {
  ASSERT_EQ(check::mode(), check::Mode::kAbort);
  {
    check::CountingScope scope;
    EXPECT_EQ(check::mode(), check::Mode::kCount);
  }
  EXPECT_EQ(check::mode(), check::Mode::kAbort);
  EXPECT_EQ(check::handler(), nullptr);
}

// Handlers are plain function pointers (installable from hardware-model code
// with no allocation), so the capture goes through a file-scope slot.
check::Violation g_seen;
int g_calls = 0;

void capture_handler(const check::Violation& v) {
  g_seen = v;
  ++g_calls;
}

TEST(ContractHandler, CustomHandlerReceivesViolationDetails) {
  check::CountingScope scope;
  check::reset_violations();
  check::set_handler(&capture_handler);
  g_calls = 0;

  const int line_before = __LINE__;
  PLANARIA_ENSURE_MSG(kCoordinatorExclusivity, 2 < 1, "double disposition");

  EXPECT_EQ(g_calls, 1);
  EXPECT_EQ(g_seen.category, check::Category::kCoordinatorExclusivity);
  EXPECT_EQ(g_seen.kind, check::Kind::kEnsure);
  EXPECT_EQ(std::string(g_seen.expr), "2 < 1");
  EXPECT_NE(std::string(g_seen.file).find("test_contracts.cpp"),
            std::string::npos);
  EXPECT_EQ(g_seen.line, line_before + 1);
  EXPECT_EQ(std::string(g_seen.message), "double disposition");
  // Counters update before the handler runs.
  EXPECT_EQ(check::violation_count(check::Category::kCoordinatorExclusivity),
            1u);

  check::set_handler(nullptr);
  check::reset_violations();
}

TEST(ContractHandler, ExportMirrorsCountersIntoStats) {
  check::CountingScope scope;
  check::reset_violations();
  PLANARIA_INVARIANT(kStorageBudget, false);

  StatSet stats;
  check::export_violations(stats);
  bool found_budget = false;
  for (const auto& [name, value] : stats.dump()) {
    if (name == "contract.violations.storage-budget") {
      found_budget = true;
      EXPECT_EQ(value, 1.0);
    } else if (name.rfind("contract.violations.", 0) == 0) {
      EXPECT_EQ(value, 0.0) << name;
    }
  }
  EXPECT_TRUE(found_budget);
  check::reset_violations();
}

TEST(ContractHandler, NamesAreStable) {
  EXPECT_STREQ(check::category_name(check::Category::kTableOccupancy),
               "table-occupancy");
  EXPECT_STREQ(check::category_name(check::Category::kTimingMonotonicity),
               "timing-monotonicity");
  EXPECT_STREQ(check::category_name(check::Category::kCoordinatorExclusivity),
               "coordinator-exclusivity");
  EXPECT_STREQ(check::category_name(check::Category::kStorageBudget),
               "storage-budget");
  EXPECT_STREQ(check::kind_name(check::Kind::kRequire), "require");
  EXPECT_STREQ(check::kind_name(check::Kind::kEnsure), "ensure");
  EXPECT_STREQ(check::kind_name(check::Kind::kInvariant), "invariant");
}

using ContractDeathTest = testing::Test;

TEST(ContractDeathTest, DefaultModeAbortsWithDiagnostic) {
  EXPECT_DEATH(PLANARIA_REQUIRE_MSG(kTimingMonotonicity, false,
                                    "clock ran backward"),
               "timing-monotonicity");
}

// ---------------------------------------------------------------------------
// Storage layout agreement: the two independent accountings must match, and
// the default hardware stays inside the paper's budget.

TEST(StorageLayout, BreakdownMatchesComponentAccounting) {
  for (const bool enable_tlp : {true, false}) {
    core::PlanariaConfig config;
    config.enable_tlp = enable_tlp;
    const auto breakdown = core::planaria_storage(config);
    EXPECT_EQ(breakdown.per_channel_bits(),
              core::PlanariaPrefetcher(config).storage_bits());
  }
}

TEST(StorageLayout, DefaultHardwareFitsPaperBudget) {
  const auto breakdown = core::planaria_storage(core::PlanariaConfig{});
  EXPECT_LE(breakdown.total_kb(planaria::kChannels),
            layout::kPaperBudgetKb);
}

TEST(StorageLayout, EntryWidthsMatchPaperFigures) {
  EXPECT_EQ(layout::kFtEntryBits, 45);
  EXPECT_EQ(layout::kAtEntryBits, 67);
  EXPECT_EQ(layout::kPtEntryBits, 48);
  EXPECT_EQ(layout::rpt_entry_bits(128), 178u);
}

}  // namespace
