// Tests for the fault-injection layer (src/fault): plan validation, the
// determinism contract of FaultInjector streams, the roll()/record()
// counting split, and the end-to-end properties the chaos gate depends on —
// zero-fault runs stay bit-identical, armed runs reproduce exactly (serial
// and channel-sharded), and recovered violations reconcile with the
// injector's applied-fault counters.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "check/contract.hpp"
#include "common/thread_pool.hpp"
#include "fault/fault.hpp"
#include "sim/simulator.hpp"
#include "trace/apps.hpp"
#include "trace/generator.hpp"

namespace {

namespace check = planaria::check;
namespace fault = planaria::fault;
namespace sim = planaria::sim;
namespace trace = planaria::trace;
using fault::FaultClass;
using fault::FaultInjector;
using fault::FaultPlan;

// ---------------------------------------------------------------------------
// FaultPlan

TEST(FaultPlan, DefaultPlanInjectsNothing) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.any_enabled());
  for (int c = 0; c < fault::kFaultClassCount; ++c) {
    EXPECT_FALSE(plan.enabled(static_cast<FaultClass>(c)));
  }
  EXPECT_NO_THROW(plan.validate());
}

TEST(FaultPlan, SingleArmsExactlyOneClass) {
  const auto plan = FaultPlan::single(FaultClass::kPrefetchDrop, 0.25, 7);
  EXPECT_TRUE(plan.any_enabled());
  EXPECT_EQ(plan.seed, 7u);
  for (int c = 0; c < fault::kFaultClassCount; ++c) {
    const auto fault_class = static_cast<FaultClass>(c);
    EXPECT_EQ(plan.enabled(fault_class),
              fault_class == FaultClass::kPrefetchDrop);
  }
}

TEST(FaultPlan, ValidateRejectsOutOfRangeRates) {
  FaultPlan plan;
  plan.rate[static_cast<int>(FaultClass::kDramStall)] = 1.5;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan = {};
  plan.rate[static_cast<int>(FaultClass::kSlpPatternFlip)] = -0.1;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(FaultPlan, ValidateRejectsZeroIntervalsWhileArmed) {
  FaultPlan plan = FaultPlan::single(FaultClass::kDramStall, 0.5, 1);
  plan.dram_stall_cycles = 0;
  EXPECT_THROW(plan.validate(), std::invalid_argument);

  plan = FaultPlan::single(FaultClass::kPrefetchDelay, 0.5, 1);
  plan.prefetch_delay_cycles = 0;
  EXPECT_THROW(plan.validate(), std::invalid_argument);

  // The same zero intervals are fine while their class is disarmed.
  plan = {};
  plan.dram_stall_cycles = 0;
  plan.prefetch_delay_cycles = 0;
  EXPECT_NO_THROW(plan.validate());
}

TEST(FaultPlan, EveryClassHasAName) {
  for (int c = 0; c < fault::kFaultClassCount; ++c) {
    const char* name = fault::fault_class_name(static_cast<FaultClass>(c));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u);
  }
}

// ---------------------------------------------------------------------------
// FaultInjector determinism

std::vector<bool> decision_sequence(FaultInjector& injector, FaultClass c,
                                    int n) {
  std::vector<bool> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(injector.roll(c));
  return out;
}

TEST(FaultInjector, SameSeedSameStreamReproducesDecisions) {
  const auto plan = FaultPlan::single(FaultClass::kPrefetchDrop, 0.3, 42);
  FaultInjector a(plan, 0);
  FaultInjector b(plan, 0);
  EXPECT_EQ(decision_sequence(a, FaultClass::kPrefetchDrop, 512),
            decision_sequence(b, FaultClass::kPrefetchDrop, 512));
}

TEST(FaultInjector, SiblingStreamsAreDisjoint) {
  const auto plan = FaultPlan::single(FaultClass::kPrefetchDrop, 0.3, 42);
  FaultInjector a(plan, 0);
  FaultInjector b(plan, 1);
  FaultInjector ingest(plan, FaultInjector::kIngestStream);
  const auto sa = decision_sequence(a, FaultClass::kPrefetchDrop, 512);
  EXPECT_NE(sa, decision_sequence(b, FaultClass::kPrefetchDrop, 512));
  EXPECT_NE(sa, decision_sequence(ingest, FaultClass::kPrefetchDrop, 512));
}

TEST(FaultInjector, DisabledClassConsumesNoRandomness) {
  const auto plan = FaultPlan::single(FaultClass::kPrefetchDrop, 0.3, 9);
  FaultInjector plain(plan, 0);
  FaultInjector interleaved(plan, 0);
  std::vector<bool> a, b;
  for (int i = 0; i < 256; ++i) {
    a.push_back(plain.roll(FaultClass::kPrefetchDrop));
    // Rolling a disarmed class between armed rolls must not shift the armed
    // class's stream: disabled rolls consume nothing.
    EXPECT_FALSE(interleaved.roll(FaultClass::kDramStall));
    b.push_back(interleaved.roll(FaultClass::kPrefetchDrop));
  }
  EXPECT_EQ(a, b);
}

TEST(FaultInjector, RateOneAlwaysFiresRateZeroNever) {
  FaultPlan plan;
  plan.rate[static_cast<int>(FaultClass::kTraceCorruption)] = 1.0;
  for (int i = 0; i < 64; ++i) {
    FaultInjector injector(plan, static_cast<std::uint64_t>(i));
    EXPECT_TRUE(injector.roll(FaultClass::kTraceCorruption));
    EXPECT_FALSE(injector.roll(FaultClass::kSlpPatternFlip));
  }
}

TEST(FaultInjector, RecordCountsApplyNotRolls) {
  const auto plan = FaultPlan::single(FaultClass::kSlpPatternFlip, 1.0, 3);
  FaultInjector injector(plan, 0);
  for (int i = 0; i < 10; ++i) injector.roll(FaultClass::kSlpPatternFlip);
  EXPECT_EQ(injector.injected(FaultClass::kSlpPatternFlip), 0u);
  EXPECT_EQ(injector.total_injected(), 0u);
  injector.record(FaultClass::kSlpPatternFlip);
  injector.record(FaultClass::kSlpPatternFlip);
  EXPECT_EQ(injector.injected(FaultClass::kSlpPatternFlip), 2u);
  EXPECT_EQ(injector.total_injected(), 2u);
}

// ---------------------------------------------------------------------------
// End-to-end through the simulator

std::vector<trace::TraceRecord> test_trace(std::uint64_t records) {
  return trace::generate_app_trace(trace::paper_apps().front(), records);
}

sim::SimResult run_kind(const sim::SimConfig& config,
                        const std::vector<trace::TraceRecord>& records,
                        planaria::common::ThreadPool* pool = nullptr) {
  const auto kind = sim::PrefetcherKind::kPlanaria;
  return sim::Simulator::run(config, sim::make_prefetcher_factory(kind),
                             sim::prefetcher_kind_name(kind), records, pool);
}

TEST(FaultSimulation, ZeroFaultRunReportsZeroCounters) {
  const auto records = test_trace(5000);
  const auto result = run_kind(sim::SimConfig{}, records);
  EXPECT_EQ(result.fault_injected_total, 0u);
  EXPECT_EQ(result.fault_trace_corruptions, 0u);
  EXPECT_EQ(result.fault_slp_flips, 0u);
  EXPECT_EQ(result.fault_tlp_flips, 0u);
  EXPECT_EQ(result.fault_prefetch_drops, 0u);
  EXPECT_EQ(result.fault_prefetch_delays, 0u);
  EXPECT_EQ(result.fault_dram_stalls, 0u);
}

TEST(FaultSimulation, ArmedRunReproducesAcrossRunsAndThreadCounts) {
  const auto records = test_trace(8000);
  sim::SimConfig config;
  config.fault = FaultPlan::single(FaultClass::kPrefetchDrop, 0.05, 0xFA01);

  check::RecoveryScope scope;
  const auto first = run_kind(config, records);
  const auto second = run_kind(config, records);
  planaria::common::ThreadPool pool(4);
  const auto pooled = run_kind(config, records, &pool);

  EXPECT_GT(first.fault_prefetch_drops, 0u);
  EXPECT_EQ(first.fault_injected_total, first.fault_prefetch_drops);
  EXPECT_EQ(first.fault_prefetch_drops, second.fault_prefetch_drops);
  EXPECT_EQ(first.fault_prefetch_drops, pooled.fault_prefetch_drops);
  EXPECT_EQ(first.amat_cycles, second.amat_cycles);
  EXPECT_EQ(first.amat_cycles, pooled.amat_cycles);
  EXPECT_EQ(first.prefetch_issued, second.prefetch_issued);
  EXPECT_EQ(first.prefetch_issued, pooled.prefetch_issued);
}

TEST(FaultSimulation, DropRateOneSuppressesEveryPrefetch) {
  const auto records = test_trace(8000);
  const auto clean = run_kind(sim::SimConfig{}, records);
  ASSERT_GT(clean.prefetch_issued, 0u);

  sim::SimConfig config;
  config.fault = FaultPlan::single(FaultClass::kPrefetchDrop, 1.0, 0xFA02);
  check::RecoveryScope scope;
  const auto faulted = run_kind(config, records);

  // Every dedup-surviving candidate is dropped before reaching the channel,
  // so nothing issues — and the run still completes, drops counted.
  EXPECT_EQ(faulted.prefetch_issued, 0u);
  EXPECT_GT(faulted.fault_prefetch_drops, 0u);
  EXPECT_EQ(faulted.demand_reads + faulted.demand_writes, records.size());
}

TEST(FaultSimulation, TraceCorruptionRecoveredAndReconciled) {
  const auto records = test_trace(8000);
  sim::SimConfig config;
  config.fault = FaultPlan::single(FaultClass::kTraceCorruption, 0.01, 0xFA03);

  check::RecoveryScope scope;
  check::reset_violations();
  check::reset_recoveries();
  const auto result = run_kind(config, records);

  // Every corruption regresses an arrival, fires the time-order contract,
  // and is clamped back by the recovery hook — three counters, one number.
  EXPECT_GT(result.fault_trace_corruptions, 0u);
  EXPECT_EQ(check::violation_count(check::Category::kTimingMonotonicity),
            result.fault_trace_corruptions);
  EXPECT_EQ(check::total_recoveries(), result.fault_trace_corruptions);
  // Recovery means the run still completes over the full trace.
  EXPECT_EQ(result.demand_reads + result.demand_writes, records.size());
  check::reset_violations();
  check::reset_recoveries();
}

TEST(FaultSimulation, SlpFlipViolationsAreRecoveredNotFatal) {
  const auto records = test_trace(8000);
  sim::SimConfig config;
  config.fault = FaultPlan::single(FaultClass::kSlpPatternFlip, 0.02, 0xFA04);

  check::RecoveryScope scope;
  check::reset_violations();
  check::reset_recoveries();
  const auto result = run_kind(config, records);

  EXPECT_GT(result.fault_slp_flips, 0u);
  // Only flips that drag a pattern below the promote threshold AND get
  // issued before relearning manifest; each manifestation is recovered.
  EXPECT_LE(check::violation_count(check::Category::kTableOccupancy),
            result.fault_slp_flips);
  EXPECT_EQ(check::total_recoveries(), check::total_violations());
  EXPECT_EQ(result.demand_reads + result.demand_writes, records.size());
  check::reset_violations();
  check::reset_recoveries();
}

TEST(FaultSimulation, ConfigValidateRejectsBadFaultPlan) {
  sim::SimConfig config;
  config.fault.rate[static_cast<int>(FaultClass::kDramStall)] = 2.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(FaultPlanPerSession, DerivedPlansKeepRatesButDecorrelateSeeds) {
  FaultPlan base = FaultPlan::single(FaultClass::kPrefetchDrop, 0.25, 0xABCD);
  base.dram_stall_cycles = 777;

  const FaultPlan a = base.for_session(0);
  const FaultPlan b = base.for_session(1);
  // Same policy: rates and intervals are untouched, validity is preserved.
  for (int c = 0; c < fault::kFaultClassCount; ++c) {
    EXPECT_EQ(a.rate[c], base.rate[c]);
    EXPECT_EQ(b.rate[c], base.rate[c]);
  }
  EXPECT_EQ(a.dram_stall_cycles, base.dram_stall_cycles);
  EXPECT_NO_THROW(a.validate());
  // Different universe: adjacent ids (and the base itself) get distinct
  // seeds, so their injectors' decision sequences diverge immediately.
  EXPECT_NE(a.seed, base.seed);
  EXPECT_NE(a.seed, b.seed);

  // Stability: the derivation is a pure function of (plan, id) — the serve
  // layer rebuilds injectors from for_session at resume time and needs the
  // same sequence back.
  EXPECT_EQ(base.for_session(7).seed, base.for_session(7).seed);
  fault::FaultInjector first(base.for_session(7), 0);
  fault::FaultInjector again(base.for_session(7), 0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(first.roll(FaultClass::kPrefetchDrop),
              again.roll(FaultClass::kPrefetchDrop));
  }
}

TEST(FaultPlanPerSession, SessionsDrawDisjointDecisionSequences) {
  const FaultPlan base =
      FaultPlan::single(FaultClass::kTraceCorruption, 0.5, 0x5E55);
  fault::FaultInjector a(base.for_session(3), 0);
  fault::FaultInjector b(base.for_session(4), 0);
  int agree = 0;
  const int kRolls = 2000;
  for (int i = 0; i < kRolls; ++i) {
    agree += a.roll(FaultClass::kTraceCorruption) ==
                     b.roll(FaultClass::kTraceCorruption)
                 ? 1
                 : 0;
  }
  // Independent fair-ish coins agree about half the time; identical streams
  // would agree always. Allow a wide band — this is a decorrelation check,
  // not a statistics test.
  EXPECT_GT(agree, kRolls / 4);
  EXPECT_LT(agree, 3 * kRolls / 4);
}

}  // namespace
