// Tests for the public-format trace importers (DRAMSim2 .trc, ChampSim CSV).
#include <gtest/gtest.h>

#include <sstream>

#include "trace/import.hpp"

namespace planaria::trace {
namespace {

// ----------------------------------------------------------------- dramsim2

TEST(DramSim2Import, ParsesReadsAndWrites) {
  std::stringstream ss(
      "0x7f0000001000 P_MEM_RD 100\n"
      "0x7f0000002040 P_MEM_WR 250\n");
  const auto records = read_dramsim2(ss);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].address, 0x7f0000001000u);
  EXPECT_EQ(records[0].type, AccessType::kRead);
  EXPECT_EQ(records[0].arrival, 100u);
  EXPECT_EQ(records[1].type, AccessType::kWrite);
}

TEST(DramSim2Import, SkipsCommentsAndBlankLines) {
  std::stringstream ss(
      "; DRAMSim2 trace\n"
      "\n"
      "   ; indented comment\n"
      "0x1000 P_MEM_RD 5\n");
  EXPECT_EQ(read_dramsim2(ss).size(), 1u);
}

TEST(DramSim2Import, AcceptsFetchAndBoff) {
  std::stringstream ss(
      "0x1000 P_FETCH 1\n"
      "0x2000 BOFF 2\n");
  const auto records = read_dramsim2(ss);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].type, AccessType::kRead);
  EXPECT_EQ(records[1].type, AccessType::kRead);
}

TEST(DramSim2Import, RejectsUnknownType) {
  std::stringstream ss("0x1000 P_MEM_ZAP 1\n");
  EXPECT_THROW(read_dramsim2(ss), std::runtime_error);
}

TEST(DramSim2Import, RejectsMalformedLine) {
  std::stringstream ss("0x1000 P_MEM_RD\n");
  EXPECT_THROW(read_dramsim2(ss), std::runtime_error);
}

TEST(DramSim2Import, RejectsBadAddress) {
  std::stringstream ss("zzzz P_MEM_RD 1\n");
  EXPECT_THROW(read_dramsim2(ss), std::runtime_error);
}

TEST(DramSim2Import, SortsOutOfOrderArrivals) {
  std::stringstream ss(
      "0x1000 P_MEM_RD 50\n"
      "0x2000 P_MEM_RD 10\n");
  const auto records = read_dramsim2(ss);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_LE(records[0].arrival, records[1].arrival);
}

TEST(DramSim2Import, RoundTripsThroughWriter) {
  std::vector<TraceRecord> records = {
      {0x1000, 10, AccessType::kRead, DeviceId::kCpuBig},
      {0x2040, 20, AccessType::kWrite, DeviceId::kCpuBig},
  };
  std::stringstream ss;
  write_dramsim2(ss, records);
  EXPECT_EQ(read_dramsim2(ss), records);
}

TEST(DramSim2Import, AlignsAddressesToBlocks) {
  std::stringstream ss("0x1033 P_MEM_RD 1\n");
  const auto records = read_dramsim2(ss);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].address, 0x1000u);
}

TEST(DramSim2Import, MissingFileThrows) {
  EXPECT_THROW(read_dramsim2_file("/nonexistent/x.trc"), std::runtime_error);
}

// ----------------------------------------------------------------- champsim

TEST(ChampSimImport, ParsesCsvRows) {
  std::stringstream ss(
      "0x1000,0,100\n"
      "8256,1,200\n");
  const auto records = read_champsim_csv(ss);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].address, 0x1000u);
  EXPECT_EQ(records[0].type, AccessType::kRead);
  EXPECT_EQ(records[1].address, addr::block_align(8256));
  EXPECT_EQ(records[1].type, AccessType::kWrite);
}

TEST(ChampSimImport, SkipsHeaderAndComments) {
  std::stringstream ss(
      "address,is_write,cycle\n"
      "# comment\n"
      "0x40,0,1\n");
  EXPECT_EQ(read_champsim_csv(ss).size(), 1u);
}

TEST(ChampSimImport, RejectsMalformedRow) {
  std::stringstream ss("0x40,0\n");
  EXPECT_THROW(read_champsim_csv(ss), std::runtime_error);
}

TEST(ChampSimImport, RejectsGarbageFields) {
  std::stringstream ss("0x40,maybe,7\n");
  EXPECT_THROW(read_champsim_csv(ss), std::runtime_error);
}

TEST(ChampSimImport, SortsByArrival) {
  std::stringstream ss(
      "0x40,0,90\n"
      "0x80,0,10\n");
  const auto records = read_champsim_csv(ss);
  EXPECT_LE(records[0].arrival, records[1].arrival);
}

}  // namespace
}  // namespace planaria::trace
