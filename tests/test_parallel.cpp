// Parallel execution engine tests.
//
// The contract the sweep engine sells is not "roughly the same results,
// faster" but *bit-identical* results at every thread count: the trace is
// sharded by channel (a pure function of address bits [11:10]), no simulator
// state crosses channels, and every merged quantity is either integer or
// reduced in fixed channel order. These tests hold that contract for every
// registered prefetcher kind, and cover the thread pool primitive itself plus
// the PLANARIA_THREADS validation and the contract-counter atomicity the
// concurrent paths rely on. Run them under PLANARIA_SANITIZE=thread to let
// TSan vet the synchronization.

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/contract.hpp"
#include "common/thread_pool.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "trace/apps.hpp"
#include "trace/generator.hpp"

namespace planaria {
namespace {

using common::ThreadPool;

// ---------------------------------------------------------------------------
// Thread pool unit tests
// ---------------------------------------------------------------------------

TEST(ThreadPool, StartupAndShutdownAcrossSizes) {
  for (std::size_t threads : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
  }  // destructor joins cleanly with no tasks ever submitted
}

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool pool(0), std::invalid_argument);
}

TEST(ThreadPool, SubmitReturnsResultThroughFuture) {
  ThreadPool pool(3);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForZeroTasksIsANoOp) {
  ThreadPool pool(4);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "body ran for n == 0"; });
}

TEST(ThreadPool, ParallelForPropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(64,
                                 [](std::size_t i) {
                                   if (i == 13) {
                                     throw std::runtime_error("unlucky");
                                   }
                                 }),
               std::runtime_error);
  // The pool must survive a failed batch.
  std::atomic<int> ran{0};
  pool.parallel_for(8, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // Mirrors the sweep shape: grid cells fan out on the pool and each cell
  // shards its channels on the same pool. The caller-participation design
  // must drain the inner batches even when every worker is busy.
  ThreadPool pool(2);
  std::atomic<int> leaves{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(4, [&](std::size_t) { leaves.fetch_add(1); });
  });
  EXPECT_EQ(leaves.load(), 32);
}

// ---------------------------------------------------------------------------
// PLANARIA_THREADS validation
// ---------------------------------------------------------------------------

class ThreadsEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // lint: suppress(determinism) the test saves/restores PLANARIA_THREADS to exercise pool sizing
    const char* prior = std::getenv("PLANARIA_THREADS");
    if (prior != nullptr) saved_ = prior;
    unsetenv("PLANARIA_THREADS");
  }
  void TearDown() override {
    if (saved_.empty()) {
      unsetenv("PLANARIA_THREADS");
    } else {
      setenv("PLANARIA_THREADS", saved_.c_str(), 1);
    }
  }

 private:
  std::string saved_;
};

TEST_F(ThreadsEnvTest, UnsetAndEmptyFallBack) {
  EXPECT_EQ(ThreadPool::threads_from_env(3), 3u);
  setenv("PLANARIA_THREADS", "", 1);
  EXPECT_EQ(ThreadPool::threads_from_env(5), 5u);
}

TEST_F(ThreadsEnvTest, ParsesValidCounts) {
  setenv("PLANARIA_THREADS", "1", 1);
  EXPECT_EQ(ThreadPool::threads_from_env(7), 1u);
  setenv("PLANARIA_THREADS", "16", 1);
  EXPECT_EQ(ThreadPool::threads_from_env(7), 16u);
}

TEST_F(ThreadsEnvTest, RejectsMalformedValues) {
  for (const char* bad : {"0", "abc", "12x", "4.5", "-4", "999999999"}) {
    setenv("PLANARIA_THREADS", bad, 1);
    EXPECT_THROW(ThreadPool::threads_from_env(1), std::invalid_argument)
        << "accepted PLANARIA_THREADS=" << bad;
  }
}

// ---------------------------------------------------------------------------
// Contract counters under concurrency (the PR 1 atomics, exercised in anger)
// ---------------------------------------------------------------------------

TEST(ContractConcurrency, CountersAreExactUnderParallelViolations) {
  check::CountingScope scope;
  check::reset_violations();
  ThreadPool pool(4);
  constexpr std::size_t kN = 2000;
  pool.parallel_for(kN, [](std::size_t) {
    PLANARIA_INVARIANT_MSG(kTableOccupancy, false,
                           "deliberate violation for the concurrency test");
  });
  EXPECT_EQ(check::violation_count(check::Category::kTableOccupancy), kN);
  EXPECT_EQ(check::total_violations(), kN);
  check::reset_violations();
}

// ---------------------------------------------------------------------------
// Bit-identical simulation results
// ---------------------------------------------------------------------------

/// Exact comparison via SimResult::operator== (defaulted memberwise
/// equality). A few high-signal fields get their own EXPECT first so a
/// regression names the quantity that diverged; doubles are compared with ==
/// on purpose — the determinism contract is bit-identity, not tolerance.
void expect_bit_identical(const sim::SimResult& a, const sim::SimResult& b,
                          const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.demand_reads, b.demand_reads);
  EXPECT_EQ(a.amat_cycles, b.amat_cycles);
  EXPECT_EQ(a.prefetch_issued, b.prefetch_issued);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.fault_injected_total, b.fault_injected_total);
  EXPECT_TRUE(a == b) << "SimResult differs in a field not itemized above";
}

std::vector<trace::TraceRecord> test_trace(std::uint64_t records) {
  return trace::generate_app_trace(trace::paper_apps().front(), records);
}

TEST(ParallelSimulation, ShardedRunMatchesStepLoopForAllKinds) {
  const auto records = test_trace(30000);
  ThreadPool pool(4);
  for (sim::PrefetcherKind kind : sim::all_prefetcher_kinds()) {
    const char* name = sim::prefetcher_kind_name(kind);

    // Reference: the incremental per-record dispatch through the public
    // step() API, the original serial execution model.
    sim::Simulator serial(sim::SimConfig{}, sim::make_prefetcher_factory(kind),
                          name);
    for (const auto& rec : records) serial.step(rec);
    const sim::SimResult expected = serial.finish();

    const sim::SimResult sharded = sim::Simulator::run(
        sim::SimConfig{}, sim::make_prefetcher_factory(kind), name, records);
    expect_bit_identical(expected, sharded, std::string(name) + " sharded");

    const sim::SimResult parallel =
        sim::Simulator::run(sim::SimConfig{}, sim::make_prefetcher_factory(kind),
                            name, records, &pool);
    expect_bit_identical(expected, parallel, std::string(name) + " parallel");
  }
}

TEST(ParallelSimulation, RepeatedParallelRunsAreStable) {
  // Scheduling nondeterminism must never leak into results: run the same
  // configuration several times on a pool and demand identical output.
  const auto records = test_trace(20000);
  ThreadPool pool(4);
  const auto factory = [] {
    return sim::make_prefetcher_factory(sim::PrefetcherKind::kPlanaria);
  };
  const sim::SimResult first =
      sim::Simulator::run(sim::SimConfig{}, factory(), "planaria", records, &pool);
  for (int i = 0; i < 3; ++i) {
    const sim::SimResult again = sim::Simulator::run(
        sim::SimConfig{}, factory(), "planaria", records, &pool);
    expect_bit_identical(first, again, "repeat " + std::to_string(i));
  }
}

TEST(ParallelSweep, MatchesSerialSweepBitForBit) {
  const std::vector<sim::PrefetcherKind> kinds = {
      sim::PrefetcherKind::kNone, sim::PrefetcherKind::kBop,
      sim::PrefetcherKind::kPlanaria};
  sim::ExperimentRunner serial(sim::SimConfig{}, 15000, 1);
  sim::ExperimentRunner parallel(sim::SimConfig{}, 15000, 4);
  EXPECT_EQ(serial.threads(), 1u);
  EXPECT_EQ(parallel.threads(), 4u);

  const auto a = serial.sweep(kinds);
  const auto b = parallel.sweep(kinds);
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [app, per_kind] : a) {
    ASSERT_TRUE(b.count(app)) << app;
    ASSERT_EQ(per_kind.size(), b.at(app).size());
    for (const auto& [kind_name, result] : per_kind) {
      ASSERT_TRUE(b.at(app).count(kind_name)) << app << "/" << kind_name;
      expect_bit_identical(result, b.at(app).at(kind_name),
                           app + "/" + kind_name);
    }
  }
}

TEST(ParallelSweep, SharedTraceCacheGeneratesOncePerApp) {
  // trace_for from many threads must hand back the same generated trace
  // object (one call_once generation per app, no racing copies).
  sim::ExperimentRunner runner(sim::SimConfig{}, 5000, 4);
  const std::string app = trace::app_names().front();
  std::vector<const std::vector<trace::TraceRecord>*> seen(16, nullptr);
  runner.pool()->parallel_for(seen.size(), [&](std::size_t i) {
    seen[i] = &runner.trace_for(app);
  });
  for (const auto* p : seen) EXPECT_EQ(p, seen.front());
  EXPECT_EQ(seen.front()->size(), 5000u);
}

TEST(ParallelSimulation, RunnerRejectsZeroThreads) {
  EXPECT_THROW(sim::ExperimentRunner(sim::SimConfig{}, 1000, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace planaria
