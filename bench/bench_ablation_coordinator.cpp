// Ablation: coordination strategy (paper Section 7 / Section 2).
//
// The paper's claim: the decoupled "parallel training, serial issuing"
// coordinator harvests the benefits of both prior classes — it matches the
// serial coordinator's accuracy (one issuer per trigger) while avoiding its
// cold-start cost (the inactive sub-prefetcher of a TPC-style serial design
// learns nothing), and it approaches the parallel coordinator's coverage
// without its duplicated low-confidence traffic.
//
// The same SLP/TLP instances run under all three coordinators, plus a
// PC-free SMS adaptation as the spatial-prefetcher yardstick (§7: spatial
// prefetchers "mainly rely on a PC"; without one their signatures alias).
#include "bench_util.hpp"

int main() {
  using namespace planaria;
  bench::print_header(
      "Ablation: coordinator strategy (decoupled vs serial vs parallel) + SMS",
      "§2/§7 — coordination classes and the PC-free SMS yardstick");
  const auto records = std::min<std::uint64_t>(bench::default_records(), 600000);
  const std::vector<std::string> apps = {"HoK", "Fort", "NBA2"};

  sim::ExperimentRunner runner(sim::SimConfig{}, records);
  std::printf("%-10s %-10s %10s %9s %9s %9s %10s\n", "app", "coord",
              "AMAT(cyc)", "hit-rate", "accuracy", "coverage", "traffic");
  for (const auto& app : apps) {
    const auto none = runner.run(app, sim::PrefetcherKind::kNone);
    for (const auto kind :
         {sim::PrefetcherKind::kSerialComposite,
          sim::PrefetcherKind::kParallelComposite, sim::PrefetcherKind::kSms,
          sim::PrefetcherKind::kPlanaria}) {
      const auto r = runner.run(app, kind);
      std::printf("%-10s %-10s %10.1f %8.1f%% %8.1f%% %8.1f%% %+9.1f%%\n",
                  app.c_str(), r.prefetcher.c_str(), r.amat_cycles,
                  100 * r.sc_hit_rate, 100 * r.prefetch_accuracy,
                  100 * r.prefetch_coverage,
                  100 * r.traffic_overhead_vs(none));
    }
  }
  std::printf(
      "\nexpected shape: planaria's AMAT <= min(serial, parallel); parallel\n"
      "pays extra traffic for its coverage; serial forfeits coverage when the\n"
      "inactive sub-prefetcher misses training; sms trails them all (aliased\n"
      "PC-free signatures).\n");
  return 0;
}
