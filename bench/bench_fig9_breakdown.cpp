// Figure 9: breakdown of Planaria's improvement into SLP vs TLP shares.
//
// Methodology: ablation runs per app — {none, SLP-only, full Planaria}. The
// share attributed to SLP is the AMAT improvement SLP-only achieves over the
// no-prefetcher baseline; TLP's share is the additional improvement the full
// coordinator adds on top. Cross-checked against the cache's fill-source
// attribution (useful prefetches tagged SLP vs TLP).
//
// Paper shape: SLP contributes ~80% of the overall gain; TLP's contribution
// is small on CFM/QSM/HI3/KO/NBA2 and dominant on Fort (SLP starves there,
// and the low-priority TLP finally gets to issue).
#include "bench_util.hpp"

int main() {
  using namespace planaria;
  bench::print_header("Figure 9: Planaria performance breakdown (SLP vs TLP)",
                      "Fig. 9 — Planaria performance breakdown");

  sim::ExperimentRunner runner(sim::SimConfig{}, bench::default_records());
  const std::vector<sim::PrefetcherKind> kinds = {
      sim::PrefetcherKind::kNone, sim::PrefetcherKind::kPlanariaSlpOnly,
      sim::PrefetcherKind::kPlanaria};
  const auto grid = runner.sweep(kinds, /*verbose=*/true);
  const auto& apps = trace::app_names();

  std::printf("%-10s %10s %10s %10s %9s %9s %14s\n", "app", "amat-none",
              "amat-slp", "amat-full", "slp-share", "tlp-share", "useful slp/tlp");
  std::vector<double> slp_shares;
  for (const auto& app : apps) {
    const auto& none = grid.at(app).at("none");
    const auto& slp = grid.at(app).at("planaria-slp");
    const auto& full = grid.at(app).at("planaria");
    const double total_gain = none.amat_cycles - full.amat_cycles;
    const double slp_gain = none.amat_cycles - slp.amat_cycles;
    double slp_share = total_gain > 0 ? slp_gain / total_gain : 0.0;
    if (slp_share < 0) slp_share = 0;
    if (slp_share > 1) slp_share = 1;
    slp_shares.push_back(slp_share);
    std::printf("%-10s %10.1f %10.1f %10.1f %8.1f%% %8.1f%% %8llu/%llu\n",
                app.c_str(), none.amat_cycles, slp.amat_cycles, full.amat_cycles,
                100 * slp_share, 100 * (1 - slp_share),
                static_cast<unsigned long long>(full.hits_on_slp),
                static_cast<unsigned long long>(full.hits_on_tlp));
  }
  std::printf("%-10s %43s %8.1f%% %8.1f%%\n", "average", "",
              100 * sim::mean(slp_shares), 100 * (1 - sim::mean(slp_shares)));
  std::printf(
      "\npaper: SLP ~80%% of overall improvement on average; TLP contributes\n"
      "most of Fort's improvement and little on CFM/QSM/HI3/KO/NBA2.\n");
  return 0;
}
