// Figure 8: AMAT of the memory system with different prefetchers, plus the
// Section-1 motivation numbers (traffic overhead of each prefetcher).
//
// Paper headlines:
//   * Planaria reduces AMAT by 24.3% / 21.3% / 15.1% vs none / BOP / SPP.
//   * BOP *increases* AMAT on Fort, NBA2 and PM despite raising hit rate
//     (superfluous prefetches congest the LPDDR4 channels).
//   * Motivation (§1): SPP/BOP reduce AMAT only 10.8% / 3.3% while adding
//     15.9% / 23.4% memory traffic.
#include "bench_util.hpp"

int main() {
  using namespace planaria;
  bench::print_header("Figure 8: AMAT per application (memory-controller cycles)",
                      "Fig. 8 — AMAT with different prefetchers; §1 traffic");

  sim::ExperimentRunner runner(sim::SimConfig{}, bench::default_records());
  const std::vector<sim::PrefetcherKind> kinds = {
      sim::PrefetcherKind::kNone, sim::PrefetcherKind::kBop,
      sim::PrefetcherKind::kSpp, sim::PrefetcherKind::kPlanaria};
  const auto grid = runner.sweep(kinds, /*verbose=*/true);
  const auto& apps = trace::app_names();

  bench::print_apps_header("prefetcher");
  for (const auto kind : kinds) {
    const char* name = sim::prefetcher_kind_name(kind);
    std::vector<double> row;
    for (const auto& app : apps) row.push_back(grid.at(app).at(name).amat_cycles);
    row.push_back(sim::mean(row));
    bench::print_series_row(name, row);
  }

  // AMAT reductions of Planaria vs each baseline (paper: 24.3/21.3/15.1%).
  std::printf("\nAMAT reduction of planaria vs baseline (%%):\n");
  bench::print_apps_header("baseline");
  for (const auto kind : {sim::PrefetcherKind::kNone, sim::PrefetcherKind::kBop,
                          sim::PrefetcherKind::kSpp}) {
    const char* name = sim::prefetcher_kind_name(kind);
    std::vector<double> row;
    for (const auto& app : apps) {
      row.push_back(100.0 * grid.at(app).at("planaria").amat_reduction_vs(
                                grid.at(app).at(name)));
    }
    row.push_back(sim::mean(row));
    bench::print_series_row(name, row);
  }
  std::printf("paper:      vs none 24.3%%   vs bop 21.3%%   vs spp 15.1%%\n");

  // Traffic overhead vs no-prefetcher (paper §1: SPP +15.9%, BOP +23.4%).
  std::printf("\nDRAM traffic overhead vs none (%%):\n");
  bench::print_apps_header("prefetcher");
  for (const auto kind : {sim::PrefetcherKind::kBop, sim::PrefetcherKind::kSpp,
                          sim::PrefetcherKind::kPlanaria}) {
    const char* name = sim::prefetcher_kind_name(kind);
    std::vector<double> row;
    for (const auto& app : apps) {
      row.push_back(100.0 * grid.at(app).at(name).traffic_overhead_vs(
                                grid.at(app).at("none")));
    }
    row.push_back(sim::mean(row));
    bench::print_series_row(name, row);
  }
  std::printf("paper:      bop +23.4%%   spp +15.9%%   (planaria: small)\n");

  // The BOP anomaly: apps where BOP raises hit rate yet raises AMAT too.
  std::printf("\nBOP anomaly check (paper: Fort, NBA2, PM):\n");
  for (const auto& app : apps) {
    const auto& none = grid.at(app).at("none");
    const auto& bop = grid.at(app).at("bop");
    if (bop.sc_hit_rate > none.sc_hit_rate && bop.amat_cycles > none.amat_cycles) {
      std::printf("  %s: hit %.1f%% -> %.1f%% but AMAT %.1f -> %.1f\n",
                  app.c_str(), 100 * none.sc_hit_rate, 100 * bop.sc_hit_rate,
                  none.amat_cycles, bop.amat_cycles);
    }
  }
  return 0;
}
