// Ablation: SLP design choices (DESIGN.md §4).
//
// Sweeps the three SLP knobs the paper fixes by construction and reports
// their AMAT/accuracy impact on one SLP-friendly app (HoK) and one hostile
// app (PM):
//   * FT promotion threshold (paper: 3 distinct offsets) — lower thresholds
//     admit one-touch noise pages into the AT/PT.
//   * AT timeout — too short fragments snapshots, too long delays learning.
//   * PT capacity — must hold the app's hot-page population.
#include "bench_util.hpp"

namespace {

void run_sweep(planaria::sim::ExperimentRunner& runner, const char* label,
               const std::vector<std::string>& apps) {
  using namespace planaria;
  for (const auto& app : apps) {
    const auto r = runner.run(app, sim::PrefetcherKind::kPlanaria);
    std::printf("  %-24s %-5s amat=%7.1f hit=%5.1f%% acc=%5.1f%% cov=%5.1f%%\n",
                label, app.c_str(), r.amat_cycles, 100 * r.sc_hit_rate,
                100 * r.prefetch_accuracy, 100 * r.prefetch_coverage);
  }
}

}  // namespace

int main() {
  using namespace planaria;
  bench::print_header("Ablation: SLP parameters (FT threshold, AT timeout, PT size)",
                      "design-choice ablations for Section 3");
  const std::vector<std::string> apps = {"HoK", "PM"};
  const auto records = std::min<std::uint64_t>(bench::default_records(), 600000);

  std::printf("FT promotion threshold (paper default 3):\n");
  for (int threshold : {1, 2, 3}) {
    sim::ExperimentRunner runner(sim::SimConfig{}, records);
    runner.planaria_config().slp.promote_threshold = threshold;
    char label[32];
    std::snprintf(label, sizeof label, "promote_threshold=%d", threshold);
    run_sweep(runner, label, apps);
  }

  std::printf("\nAT timeout (cycles, paper: \"time-out mechanism\"):\n");
  for (Cycle timeout : {Cycle{5000}, Cycle{50000}, Cycle{500000}}) {
    sim::ExperimentRunner runner(sim::SimConfig{}, records);
    runner.planaria_config().slp.at_timeout = timeout;
    char label[32];
    std::snprintf(label, sizeof label, "at_timeout=%llu",
                  static_cast<unsigned long long>(timeout));
    run_sweep(runner, label, apps);
  }

  std::printf("\nPT capacity (entries per channel):\n");
  for (int ways : {2, 6, 12}) {
    sim::ExperimentRunner runner(sim::SimConfig{}, records);
    runner.planaria_config().slp.pt_ways = ways;
    char label[32];
    std::snprintf(label, sizeof label, "pt_entries=%d", 1024 * ways);
    run_sweep(runner, label, apps);
  }
  return 0;
}
