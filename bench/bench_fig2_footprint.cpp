// Figure 2: the footprint snapshot of one memory page.
//
// The paper's scatter plot (arrival cycle vs block number) illustrates
// Observation 1: a stable set of blocks is touched together in brief
// intervals, the snapshot repeats after a long reuse distance, and the order
// within a snapshot is shuffled. This bench renders the same scatter for the
// hottest page of an app's trace as ASCII (one column per time bucket, one
// row per block), plus the quantified properties.
#include <algorithm>
#include <set>

#include "analysis/analysis.hpp"
#include "bench_util.hpp"
#include "trace/generator.hpp"

int main() {
  using namespace planaria;
  bench::print_header("Figure 2: footprint snapshot of a memory page",
                      "Fig. 2 — block/time scatter; Observation 1");

  const auto& app = trace::app_by_name("HoK");
  const auto records =
      trace::generate_app_trace(app, std::min<std::uint64_t>(
                                         bench::default_records(), 400000));
  PageNumber page = 0;
  if (!analysis::hottest_page(records, page)) {
    std::printf("empty trace\n");
    return 1;
  }
  const auto samples = analysis::footprint_snapshot(records, page);
  std::printf("app=HoK page=0x%llx accesses=%zu\n\n",
              static_cast<unsigned long long>(page), samples.size());

  // ASCII scatter: 96 time buckets x 64 block rows.
  constexpr int kCols = 96;
  const Cycle t0 = samples.front().arrival;
  const Cycle t1 = std::max(samples.back().arrival, t0 + 1);
  std::vector<std::string> rows(kBlocksPerPage, std::string(kCols, '.'));
  for (const auto& s : samples) {
    const int col = static_cast<int>((s.arrival - t0) * (kCols - 1) / (t1 - t0));
    rows[static_cast<std::size_t>(s.block)][static_cast<std::size_t>(col)] = '#';
  }
  std::printf("block |time ->  (%llu .. %llu cycles)\n",
              static_cast<unsigned long long>(t0),
              static_cast<unsigned long long>(t1));
  for (int b = kBlocksPerPage - 1; b >= 0; --b) {
    bool any = rows[static_cast<std::size_t>(b)].find('#') != std::string::npos;
    if (!any) continue;  // compact: only accessed blocks get a row
    std::printf("%5d |%s\n", b, rows[static_cast<std::size_t>(b)].c_str());
  }

  // Quantify the three observations.
  std::set<int> constituent;
  for (const auto& s : samples) constituent.insert(s.block);
  std::printf("\nconstituent blocks: %zu of 64 (stable set, paper: \"the\n"
              "constituent and structure of the snapshot are stable\")\n",
              constituent.size());

  // Reuse distance: gaps between consecutive touches of the same block.
  std::vector<Cycle> last(kBlocksPerPage, 0);
  std::vector<bool> seen(kBlocksPerPage, false);
  double reuse_sum = 0;
  std::uint64_t reuse_n = 0;
  for (const auto& s : samples) {
    if (seen[static_cast<std::size_t>(s.block)]) {
      reuse_sum += static_cast<double>(s.arrival - last[static_cast<std::size_t>(s.block)]);
      ++reuse_n;
    }
    seen[static_cast<std::size_t>(s.block)] = true;
    last[static_cast<std::size_t>(s.block)] = s.arrival;
  }
  if (reuse_n > 0) {
    std::printf("mean block reuse distance: %.0f cycles (long temporal gap)\n",
                reuse_sum / static_cast<double>(reuse_n));
  }
  std::printf("access order within snapshots is shuffled by construction\n"
              "(paper: \"highly unpredictable sequence of deltas\")\n");
  return 0;
}
