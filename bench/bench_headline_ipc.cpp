// Headline IPC result (abstract / §1): overall system performance in IPC.
//
// Paper: Planaria improves IPC by 28.9% / 21.9% / 15.3% on average over
// no prefetcher / BOP / SPP. The paper evaluates IPC with an RTL model; we
// substitute the analytic core model of CpuModelParams (instructions per SC
// access + exposed-stall fraction — see DESIGN.md), which preserves the
// ordering and approximate magnitude because IPC at this intensity is an
// almost-affine function of demand AMAT.
#include "bench_util.hpp"

int main() {
  using namespace planaria;
  bench::print_header("Headline: IPC improvement of Planaria",
                      "abstract/§1 — IPC +28.9%/+21.9%/+15.3% vs none/BOP/SPP");

  sim::ExperimentRunner runner(sim::SimConfig{}, bench::default_records());
  const std::vector<sim::PrefetcherKind> kinds = {
      sim::PrefetcherKind::kNone, sim::PrefetcherKind::kBop,
      sim::PrefetcherKind::kSpp, sim::PrefetcherKind::kPlanaria};
  const auto grid = runner.sweep(kinds, /*verbose=*/true);
  const auto& apps = trace::app_names();

  bench::print_apps_header("prefetcher");
  for (const auto kind : kinds) {
    const char* name = sim::prefetcher_kind_name(kind);
    std::vector<double> row;
    for (const auto& app : apps) row.push_back(grid.at(app).at(name).ipc);
    row.push_back(sim::mean(row));
    bench::print_series_row(name, row, " %8.3f");
  }

  std::printf("\nIPC gain of planaria vs baseline (%%):\n");
  bench::print_apps_header("baseline");
  for (const auto kind : {sim::PrefetcherKind::kNone, sim::PrefetcherKind::kBop,
                          sim::PrefetcherKind::kSpp}) {
    const char* name = sim::prefetcher_kind_name(kind);
    std::vector<double> row;
    for (const auto& app : apps) {
      row.push_back(
          100.0 * grid.at(app).at("planaria").ipc_gain_vs(grid.at(app).at(name)));
    }
    row.push_back(sim::mean(row));
    bench::print_series_row(name, row);
  }
  std::printf("paper:      vs none +28.9%%   vs bop +21.9%%   vs spp +15.3%%\n");
  return 0;
}
