// Figure 10: power consumption of the memory system with different
// prefetchers.
//
// Paper headlines: Planaria adds only 0.5% average power (range -3.3%..+2.8%,
// with HI3 and PM actually *saving* power); BOP adds 13.5% and SPP 9.7%.
// The mechanism: useless prefetches are pure extra DRAM activate/read energy,
// while accurate prefetches merely move a read earlier; Planaria's metadata
// adds a small SRAM leakage term.
#include "bench_util.hpp"

int main() {
  using namespace planaria;
  bench::print_header("Figure 10: memory-system power per application (mW)",
                      "Fig. 10 — power consumption with different prefetchers");

  sim::ExperimentRunner runner(sim::SimConfig{}, bench::default_records());
  const std::vector<sim::PrefetcherKind> kinds = {
      sim::PrefetcherKind::kNone, sim::PrefetcherKind::kBop,
      sim::PrefetcherKind::kSpp, sim::PrefetcherKind::kPlanaria};
  const auto grid = runner.sweep(kinds, /*verbose=*/true);
  const auto& apps = trace::app_names();

  bench::print_apps_header("prefetcher");
  for (const auto kind : kinds) {
    const char* name = sim::prefetcher_kind_name(kind);
    std::vector<double> row;
    for (const auto& app : apps) {
      row.push_back(grid.at(app).at(name).total_power_mw);
    }
    row.push_back(sim::mean(row));
    bench::print_series_row(name, row, " %8.1f");
  }

  std::printf("\npower increase vs none (%%):\n");
  bench::print_apps_header("prefetcher");
  for (const auto kind : {sim::PrefetcherKind::kBop, sim::PrefetcherKind::kSpp,
                          sim::PrefetcherKind::kPlanaria}) {
    const char* name = sim::prefetcher_kind_name(kind);
    std::vector<double> row;
    for (const auto& app : apps) {
      row.push_back(100.0 * grid.at(app).at(name).power_increase_vs(
                                grid.at(app).at("none")));
    }
    row.push_back(sim::mean(row));
    bench::print_series_row(name, row);
  }
  std::printf(
      "paper:      bop +13.5%%   spp +9.7%%   planaria +0.5%% "
      "(range -3.3%%..+2.8%%)\n");
  return 0;
}
