// Figure 4: the window overlap rate of footprint snapshots per application.
//
// Methodology from Fig. 3: per page, consecutive equal-size access windows
// are reduced to block sets and compared; overlap = |cur ∩ prev| / |cur|.
// Paper: the average overlap rate exceeds 80% on every app, validating that
// page number alone (no PC) is an adequate signature for a footprint.
#include "analysis/analysis.hpp"
#include "bench_util.hpp"
#include "trace/generator.hpp"

int main() {
  using namespace planaria;
  bench::print_header("Figure 4: snapshot overlap rate per application (%)",
                      "Fig. 4 — overlap rate of different applications");

  const auto records = std::min<std::uint64_t>(bench::default_records(), 400000);
  std::printf("%-10s %10s %14s %12s\n", "app", "overlap", "windows", "pages");
  std::vector<double> overlaps;
  for (const auto& app : trace::paper_apps()) {
    const auto trace = trace::generate_app_trace(app, records);
    const auto result = analysis::overlap_rate(trace);
    overlaps.push_back(100.0 * result.average_overlap);
    std::printf("%-10s %9.1f%% %14llu %12llu\n", app.name.c_str(),
                100.0 * result.average_overlap,
                static_cast<unsigned long long>(result.windows_compared),
                static_cast<unsigned long long>(result.pages_analyzed));
  }
  std::printf("%-10s %9.1f%%\n", "average", sim::mean(overlaps));
  std::printf("\npaper: average overlap rate > 80%% on every application\n");
  return 0;
}
