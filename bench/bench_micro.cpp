// Microbenchmarks (google-benchmark): throughput of the hot simulation
// primitives. These are engineering benchmarks, not paper reproductions —
// they guard the simulator's own performance so the figure benches stay
// usable at paper-scale record counts.
#include <benchmark/benchmark.h>

#include "core/planaria.hpp"
#include "dram/channel.hpp"
#include "prefetch/bop.hpp"
#include "prefetch/spp.hpp"
#include "trace/apps.hpp"
#include "trace/generator.hpp"

namespace {

using namespace planaria;

std::vector<trace::TraceRecord> sample_trace(std::uint64_t n) {
  trace::AppProfile app = trace::app_by_name("HoK");
  return trace::generate_app_trace(app, n);
}

prefetch::DemandEvent event_for(const trace::TraceRecord& r) {
  prefetch::DemandEvent e;
  e.local_block = dram::AddressMapper::local_block(r.address);
  e.page = addr::page_number(r.address);
  e.block_in_segment = addr::block_in_segment(r.address);
  e.now = r.arrival;
  e.type = r.type;
  e.device = r.device;
  e.sc_hit = false;
  return e;
}

void BM_PlanariaOnDemand(benchmark::State& state) {
  const auto trace = sample_trace(100000);
  core::PlanariaPrefetcher pf;
  std::vector<prefetch::PrefetchRequest> out;
  std::size_t i = 0;
  for (auto _ : state) {
    out.clear();
    pf.on_demand(event_for(trace[i]), out);
    benchmark::DoNotOptimize(out.data());
    i = (i + 1) % trace.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlanariaOnDemand);

void BM_BopOnDemand(benchmark::State& state) {
  const auto trace = sample_trace(100000);
  prefetch::BestOffsetPrefetcher pf;
  std::vector<prefetch::PrefetchRequest> out;
  std::size_t i = 0;
  for (auto _ : state) {
    out.clear();
    auto e = event_for(trace[i]);
    pf.on_fill(e.local_block, false, e.now);
    pf.on_demand(e, out);
    benchmark::DoNotOptimize(out.data());
    i = (i + 1) % trace.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BopOnDemand);

void BM_SppOnDemand(benchmark::State& state) {
  const auto trace = sample_trace(100000);
  prefetch::SignaturePathPrefetcher pf;
  std::vector<prefetch::PrefetchRequest> out;
  std::size_t i = 0;
  for (auto _ : state) {
    out.clear();
    pf.on_demand(event_for(trace[i]), out);
    benchmark::DoNotOptimize(out.data());
    i = (i + 1) % trace.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SppOnDemand);

void BM_DramChannelReads(benchmark::State& state) {
  dram::DramConfig config;
  for (auto _ : state) {
    state.PauseTiming();
    dram::DramChannel channel(config);
    state.ResumeTiming();
    Cycle t = 0;
    for (int i = 0; i < 1000; ++i) {
      t += 40;
      channel.advance(t);
      dram::DramRequest req;
      req.local_block = static_cast<std::uint64_t>(i) * 7919;
      req.arrival = t;
      req.tag = static_cast<std::uint64_t>(i);
      channel.submit(req);
    }
    channel.drain();
    benchmark::DoNotOptimize(channel.take_completions().size());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_DramChannelReads);

void BM_TraceGeneration(benchmark::State& state) {
  for (auto _ : state) {
    auto trace = sample_trace(50000);
    benchmark::DoNotOptimize(trace.data());
  }
  state.SetItemsProcessed(state.iterations() * 50000);
}
BENCHMARK(BM_TraceGeneration);

}  // namespace

BENCHMARK_MAIN();
