// Figure 7: hit rate of the system cache with different prefetchers.
//
// Paper series: per-app SC hit rate for {no prefetcher, BOP, SPP, Planaria}.
// Expected shape: Planaria raises the hit rate most on every app; BOP raises
// it modestly (at great traffic cost, see Fig. 8 bench); SPP sits between.
#include "bench_util.hpp"

int main() {
  using namespace planaria;
  bench::print_header("Figure 7: SC hit rate per application (%)",
                      "Fig. 7 — hit rate of SC with different prefetchers");

  sim::ExperimentRunner runner(sim::SimConfig{}, bench::default_records());
  const std::vector<sim::PrefetcherKind> kinds = {
      sim::PrefetcherKind::kNone, sim::PrefetcherKind::kBop,
      sim::PrefetcherKind::kSpp, sim::PrefetcherKind::kPlanaria};
  const auto grid = runner.sweep(kinds, /*verbose=*/true);

  bench::print_apps_header("prefetcher");
  for (const auto kind : kinds) {
    const char* name = sim::prefetcher_kind_name(kind);
    std::vector<double> row;
    for (const auto& app : trace::app_names()) {
      row.push_back(100.0 * grid.at(app).at(name).sc_hit_rate);
    }
    row.push_back(sim::mean(row));
    bench::print_series_row(name, row);
  }
  std::printf(
      "\npaper: Planaria raises SC hit rate on every app; BOP's gains are\n"
      "smaller and bought with traffic (see Fig. 8 bench for the anomaly).\n");
  return 0;
}
