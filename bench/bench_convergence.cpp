// Convergence study: how the headline comparison depends on trace length.
//
// The paper's traces are 67-71M records; the figure benches default to 1M.
// This bench sweeps the record count on one representative app and reports
// the AMAT reduction of each prefetcher vs no-prefetcher, showing where the
// shape stabilizes — the justification for the default, and the guide for
// how far PLANARIA_RECORDS needs to go when chasing asymptotic numbers.
//
// Expected: Planaria's edge *grows* with trace length (self-learning
// compounds: more revisits per page means more PT-covered misses), while
// BOP/SPP converge quickly (their tables warm within ~100k records).
#include "bench_util.hpp"

int main() {
  using namespace planaria;
  bench::print_header("Convergence: AMAT reduction vs trace length (HoK)",
                      "methodology check for the 1M-record default");

  const std::vector<std::uint64_t> lengths = {100000, 200000, 400000, 800000,
                                              1600000};
  std::printf("%-10s %12s %12s %12s %12s\n", "records", "bop", "spp",
              "planaria", "hit(planaria)");
  for (const auto records : lengths) {
    sim::ExperimentRunner runner(sim::SimConfig{}, records);
    const auto none = runner.run("HoK", sim::PrefetcherKind::kNone);
    const auto bop = runner.run("HoK", sim::PrefetcherKind::kBop);
    const auto spp = runner.run("HoK", sim::PrefetcherKind::kSpp);
    const auto planaria = runner.run("HoK", sim::PrefetcherKind::kPlanaria);
    std::printf("%-10llu %11.1f%% %11.1f%% %11.1f%% %11.1f%%\n",
                static_cast<unsigned long long>(records),
                100 * bop.amat_reduction_vs(none),
                100 * spp.amat_reduction_vs(none),
                100 * planaria.amat_reduction_vs(none),
                100 * planaria.sc_hit_rate);
  }
  std::printf(
      "\nPlanaria's gain compounds with page revisits; the baselines warm\n"
      "early. The paper's 67-71M-record traces sit beyond the right edge.\n");
  return 0;
}
