// Ablation: the paper's §1 motivation — "neither state-of-the-art cache
// replacement policies nor increasing cache size significantly improve SC
// performance", which is what justifies building a prefetcher instead.
//
// Runs the no-prefetcher baseline across replacement policies and SC sizes
// and contrasts the best of those against what Planaria achieves at the
// stock configuration.
#include "bench_util.hpp"

int main() {
  using namespace planaria;
  bench::print_header(
      "Ablation: replacement policy and SC size (no prefetcher)",
      "§1 — replacement/size insensitivity of the SC");
  const auto records = std::min<std::uint64_t>(bench::default_records(), 600000);
  const std::vector<std::string> apps = {"HoK", "Fort", "NBA2"};

  std::printf("replacement policy sweep (4MB SC, no prefetcher):\n");
  for (const auto kind :
       {cache::ReplacementKind::kLru, cache::ReplacementKind::kRandom,
        cache::ReplacementKind::kSrrip, cache::ReplacementKind::kDrrip}) {
    sim::SimConfig config;
    config.cache.replacement = kind;
    sim::ExperimentRunner runner(config, records);
    for (const auto& app : apps) {
      const auto r = runner.run(app, sim::PrefetcherKind::kNone);
      std::printf("  %-8s %-5s amat=%7.1f hit=%5.1f%%\n",
                  cache::replacement_name(kind), app.c_str(), r.amat_cycles,
                  100 * r.sc_hit_rate);
    }
  }

  std::printf("\nSC size sweep (LRU, no prefetcher; per-channel slice shown):\n");
  for (const std::uint64_t mb : {2ull, 4ull, 8ull}) {
    sim::SimConfig config;
    config.cache.size_bytes = mb << 20 >> 2;  // total mb MB over 4 channels
    sim::ExperimentRunner runner(config, records);
    for (const auto& app : apps) {
      const auto r = runner.run(app, sim::PrefetcherKind::kNone);
      std::printf("  %lluMB     %-5s amat=%7.1f hit=%5.1f%%\n",
                  static_cast<unsigned long long>(mb), app.c_str(),
                  r.amat_cycles, 100 * r.sc_hit_rate);
    }
  }

  std::printf("\nreference: Planaria at the stock 4MB/LRU configuration:\n");
  {
    sim::ExperimentRunner runner(sim::SimConfig{}, records);
    for (const auto& app : apps) {
      const auto r = runner.run(app, sim::PrefetcherKind::kPlanaria);
      std::printf("  planaria %-5s amat=%7.1f hit=%5.1f%%\n", app.c_str(),
                  r.amat_cycles, 100 * r.sc_hit_rate);
    }
  }
  std::printf("\nrefresh mode sweep (LPDDR4 REFab vs REFpb, no prefetcher):\n");
  for (const bool per_bank : {false, true}) {
    sim::SimConfig config;
    config.dram.controller.per_bank_refresh = per_bank;
    sim::ExperimentRunner runner(config, records);
    for (const auto& app : apps) {
      const auto r = runner.run(app, sim::PrefetcherKind::kNone);
      std::printf("  %-8s %-5s amat=%7.1f hit=%5.1f%%\n",
                  per_bank ? "REFpb" : "REFab", app.c_str(), r.amat_cycles,
                  100 * r.sc_hit_rate);
    }
  }

  std::printf(
      "\npaper: doubling the SC or changing replacement moves the needle far\n"
      "less than Planaria does — the SC's misses are capacity/compulsory\n"
      "misses over a huge working set, not recency mistakes.\n");
  return 0;
}
