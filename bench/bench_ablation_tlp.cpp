// Ablation: TLP design choices (DESIGN.md §4).
//
// Sweeps the RPT size, the page-number distance threshold (Fig. 5/6's 64),
// and the bitmap similarity floor (the worked example's 4 common bits) on the
// TLP showcase app (Fort) and on an SLP-dominated app (HoK) where TLP should
// stay out of the way.
#include "bench_util.hpp"

namespace {

void run_sweep(planaria::sim::ExperimentRunner& runner, const char* label,
               const std::vector<std::string>& apps) {
  using namespace planaria;
  for (const auto& app : apps) {
    const auto r = runner.run(app, sim::PrefetcherKind::kPlanaria);
    std::printf(
        "  %-24s %-5s amat=%7.1f acc=%5.1f%% cov=%5.1f%% tlp_hits=%llu\n",
        label, app.c_str(), r.amat_cycles, 100 * r.prefetch_accuracy,
        100 * r.prefetch_coverage,
        static_cast<unsigned long long>(r.hits_on_tlp));
  }
}

}  // namespace

int main() {
  using namespace planaria;
  bench::print_header(
      "Ablation: TLP parameters (RPT size, distance, similarity floor)",
      "design-choice ablations for Section 4");
  const std::vector<std::string> apps = {"Fort", "HoK"};
  const auto records = std::min<std::uint64_t>(bench::default_records(), 600000);

  std::printf("RPT entries (paper: 128):\n");
  for (int entries : {32, 64, 128, 256}) {
    sim::ExperimentRunner runner(sim::SimConfig{}, records);
    runner.planaria_config().tlp.rpt_entries = entries;
    char label[32];
    std::snprintf(label, sizeof label, "rpt_entries=%d", entries);
    run_sweep(runner, label, apps);
  }

  std::printf("\ndistance threshold (paper: 64 pages):\n");
  for (std::uint64_t dist : {4ull, 16ull, 64ull, 256ull}) {
    sim::ExperimentRunner runner(sim::SimConfig{}, records);
    runner.planaria_config().tlp.distance_threshold = dist;
    char label[32];
    std::snprintf(label, sizeof label, "distance<=%llu",
                  static_cast<unsigned long long>(dist));
    run_sweep(runner, label, apps);
  }

  std::printf("\nsimilarity floor in common bits (paper example: 4):\n");
  for (int common : {2, 4, 8}) {
    sim::ExperimentRunner runner(sim::SimConfig{}, records);
    runner.planaria_config().tlp.min_common_bits = common;
    char label[32];
    std::snprintf(label, sizeof label, "min_common_bits=%d", common);
    run_sweep(runner, label, apps);
  }
  return 0;
}
