// Shared helpers for the figure/table benches.
//
// Every bench binary regenerates one table or figure from the paper: it runs
// the necessary (app x prefetcher) grid and prints the same rows/series the
// paper reports, plus the paper's headline value for side-by-side comparison.
// Record count defaults to a laptop-scale trace and scales with
// PLANARIA_RECORDS (the paper's traces are 67-71M records; the shapes are
// stable from ~1M on).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "sim/experiment.hpp"

namespace planaria::bench {

/// Default records per app for figure benches. 1.6M is where the headline
/// comparison has converged to within a point or two of its asymptote (see
/// bench_convergence) while a full 10-app, 4-prefetcher grid still completes
/// in minutes; the paper's traces are 67-71M records.
inline std::uint64_t default_records() {
  return sim::records_from_env(1600000);
}

inline void print_header(const std::string& what, const std::string& paper_ref) {
  std::printf("=============================================================\n");
  std::printf("%s\n", what.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("=============================================================\n");
}

/// Prints "name  v1 v2 v3 ..." rows for per-app series.
inline void print_series_row(const std::string& name,
                             const std::vector<double>& values,
                             const char* fmt = " %8.2f") {
  std::printf("%-10s", name.c_str());
  for (double v : values) std::printf(fmt, v);
  std::printf("\n");
}

inline void print_apps_header(const char* row_label) {
  std::printf("%-10s", row_label);
  for (const auto& app : trace::app_names()) std::printf(" %8s", app.c_str());
  std::printf(" %8s\n", "avg");
}

}  // namespace planaria::bench
