// Storage overhead (§6): "The storage of Planaria is 345.2KB, which is only
// 8.4% of the capacity of 4MB SC."
//
// Bit-exact accounting of every Planaria table across the four channels,
// substituting for the paper's Verilog synthesis area estimate.
#include "bench_util.hpp"
#include "core/storage.hpp"

int main() {
  using namespace planaria;
  bench::print_header("Table: Planaria metadata storage",
                      "§6 — 345.2KB, 8.4% of the 4MB SC");

  const core::PlanariaConfig config;
  const auto breakdown = core::planaria_storage(config);

  std::printf("%-62s %9s %6s %12s\n", "table (per channel)", "entries",
              "bits", "KB/channel");
  for (const auto& item : breakdown.items) {
    std::printf("%-62s %9llu %6llu %12.2f\n", item.name.c_str(),
                static_cast<unsigned long long>(item.entries),
                static_cast<unsigned long long>(item.bits_per_entry),
                static_cast<double>(item.bits()) / 8.0 / 1024.0);
  }
  const double per_channel_kb =
      static_cast<double>(breakdown.per_channel_bits()) / 8.0 / 1024.0;
  const double total_kb = breakdown.total_kb();
  const double frac = breakdown.fraction_of_sc(4ull << 20);
  std::printf("%-62s %9s %6s %12.2f\n", "total per channel", "", "",
              per_channel_kb);
  std::printf("\ntotal over %d channels: %.1f KB  (%.1f%% of the 4MB SC)\n",
              kChannels, total_kb, 100.0 * frac);
  std::printf("paper: 345.2 KB (8.4%% of the 4MB SC)\n");

  // Per-prefetcher comparison: metadata budgets of the baselines.
  std::printf("\nbaseline metadata (per channel, KB): ");
  {
    prefetch::BestOffsetPrefetcher bop;
    prefetch::SignaturePathPrefetcher spp;
    std::printf("bop %.2f, spp %.2f\n",
                static_cast<double>(bop.storage_bits()) / 8.0 / 1024.0,
                static_cast<double>(spp.storage_bits()) / 8.0 / 1024.0);
  }
  return 0;
}
