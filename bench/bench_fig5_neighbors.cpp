// Figure 5: the proportion of learnable neighboring pages vs the distance
// threshold.
//
// Two pages are learnable neighbors when their final access bitmaps differ by
// at most 4 bits and their page numbers differ by at most the distance
// threshold. Paper: on average 26.95% of pages have such a neighbor at
// distance 4, rising to 39.26% at distance 64 — the headroom TLP harvests.
#include "analysis/analysis.hpp"
#include "bench_util.hpp"
#include "trace/generator.hpp"

int main() {
  using namespace planaria;
  bench::print_header(
      "Figure 5: proportion of learnable neighboring pages (%)",
      "Fig. 5 — learnable neighbors vs distance threshold");

  const std::vector<std::uint64_t> thresholds = {4, 8, 16, 32, 64};
  const auto records = std::min<std::uint64_t>(bench::default_records(), 400000);

  std::printf("%-10s", "app");
  for (const auto d : thresholds) std::printf("   dist<=%-3llu",
                                              static_cast<unsigned long long>(d));
  std::printf("\n");

  std::vector<double> sums(thresholds.size(), 0.0);
  int n = 0;
  for (const auto& app : trace::paper_apps()) {
    const auto trace = trace::generate_app_trace(app, records);
    const auto fractions =
        analysis::learnable_neighbor_fraction(trace, thresholds);
    std::printf("%-10s", app.name.c_str());
    for (std::size_t i = 0; i < fractions.size(); ++i) {
      std::printf("   %8.2f%%", 100.0 * fractions[i]);
      sums[i] += 100.0 * fractions[i];
    }
    std::printf("\n");
    ++n;
  }
  std::printf("%-10s", "average");
  for (double s : sums) std::printf("   %8.2f%%", s / n);
  std::printf("\n\npaper: average 26.95%% at distance 4, 39.26%% at 64\n");
  return 0;
}
