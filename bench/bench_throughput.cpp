// End-to-end sweep throughput: serial vs thread-pooled execution.
//
// Runs the full (10 app x 11 prefetcher kind) grid — the workload behind
// every figure bench — at 1, 2, 4 and hardware-concurrency threads and
// reports records simulated per second plus the speedup over serial. Before
// timing anything it asserts the engine's determinism contract: the pooled
// sweep must return bit-identical SimResults to the serial sweep for every
// registered prefetcher kind (a throughput number from a wrong simulation is
// worthless). Each run APPENDS one JSON-lines entry (git rev, per-thread-count
// records/sec, hardware concurrency) to the repo-root BENCH_throughput.json,
// so the file accumulates a machine-trackable perf trajectory across PRs
// instead of remembering only the latest run.
//
// Record count defaults to a quick-run length; scale with PLANARIA_RECORDS.
// PLANARIA_THREADS does not apply here — this bench sweeps thread counts
// itself. PLANARIA_BENCH_TRAJECTORY overrides the trajectory file path.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "bench_util.hpp"
#include "common/thread_pool.hpp"

namespace {

using namespace planaria;
using SweepGrid = std::map<std::string, std::map<std::string, sim::SimResult>>;

double run_sweep_seconds(std::uint64_t records, std::size_t threads,
                         const std::vector<sim::PrefetcherKind>& kinds,
                         SweepGrid* out) {
  sim::ExperimentRunner runner(sim::SimConfig{}, records, threads);
  // Pre-generate all traces so the timing isolates simulation throughput and
  // every thread count pays the identical generation cost of zero.
  for (const auto& app : trace::app_names()) runner.trace_for(app);
  const auto start = std::chrono::steady_clock::now();
  SweepGrid grid = runner.sweep(kinds);
  const auto stop = std::chrono::steady_clock::now();
  if (out != nullptr) *out = std::move(grid);
  return std::chrono::duration<double>(stop - start).count();
}

/// SimResult::operator== is defaulted memberwise equality, doubles compared
/// with == on purpose: the contract is bit-identity, not numeric tolerance.
bool bit_identical(const sim::SimResult& a, const sim::SimResult& b) {
  return a == b;
}

}  // namespace

int main() {
  using namespace planaria;
  bench::print_header(
      "Sweep throughput: serial vs thread-pooled (records/sec)",
      "engine benchmark — no paper figure; tracks PR-over-PR perf");

  const std::uint64_t records = sim::records_from_env(100000);
  const auto& kinds = sim::all_prefetcher_kinds();
  const std::uint64_t grid_records =
      records * trace::app_names().size() * kinds.size();

  // Determinism gate first: pooled results must equal serial results bit for
  // bit on every kind, or the speedup below is measuring a different
  // simulation.
  SweepGrid serial_grid;
  const double serial_s =
      run_sweep_seconds(records, 1, kinds, &serial_grid);
  {
    SweepGrid pooled_grid;
    run_sweep_seconds(records, 4, kinds, &pooled_grid);
    for (const auto& [app, per_kind] : serial_grid) {
      for (const auto& [kind_name, result] : per_kind) {
        if (!bit_identical(result, pooled_grid.at(app).at(kind_name))) {
          std::fprintf(stderr,
                       "FATAL: parallel sweep diverged from serial on %s/%s\n",
                       app.c_str(), kind_name.c_str());
          return 1;
        }
      }
    }
    std::printf("determinism: 4-thread sweep bit-identical to serial on all "
                "%zu kinds x %zu apps\n\n",
                kinds.size(), trace::app_names().size());
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::size_t> thread_counts = {1, 2, 4};
  if (hw > 4) thread_counts.push_back(hw);

  std::printf("%8s %12s %14s %10s\n", "threads", "seconds", "records/sec",
              "speedup");

  // One self-contained JSON object per bench invocation, accumulated as a
  // JSON-lines trajectory (append, never overwrite): each line records the
  // revision the numbers were measured at.
  std::string entry =
      "{\"git_rev\": \"" PLANARIA_GIT_REV "\", \"records_per_cell\": " +
      std::to_string(records) +
      ", \"apps\": " + std::to_string(trace::app_names().size()) +
      ", \"kinds\": " + std::to_string(kinds.size()) +
      ", \"grid_records\": " + std::to_string(grid_records) +
      ", \"hardware_concurrency\": " + std::to_string(hw) + ", \"runs\": [";

  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    const std::size_t threads = thread_counts[i];
    const double seconds = threads == 1
                               ? serial_s
                               : run_sweep_seconds(records, threads, kinds,
                                                   nullptr);
    const double rps = seconds > 0.0
                           ? static_cast<double>(grid_records) / seconds
                           : 0.0;
    const double speedup = seconds > 0.0 ? serial_s / seconds : 0.0;
    std::printf("%8zu %12.3f %14.0f %9.2fx\n", threads, seconds, rps, speedup);
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "%s{\"threads\": %zu, \"seconds\": %.6f, "
                  "\"records_per_sec\": %.1f, \"speedup_vs_serial\": %.4f}",
                  i == 0 ? "" : ", ", threads, seconds, rps, speedup);
    entry += buf;
  }
  entry += "]}\n";

  const char* traj_env = std::getenv("PLANARIA_BENCH_TRAJECTORY");
  const std::string trajectory = traj_env != nullptr && *traj_env != '\0'
                                     ? std::string(traj_env)
                                     : std::string(PLANARIA_BENCH_TRAJECTORY);
  FILE* json = std::fopen(trajectory.c_str(), "a");
  if (json != nullptr) {
    std::fputs(entry.c_str(), json);
    std::fclose(json);
    std::printf("\nappended trajectory entry (rev %s) to %s\n",
                PLANARIA_GIT_REV, trajectory.c_str());
  } else {
    std::fprintf(stderr, "warning: cannot append to %s\n", trajectory.c_str());
  }
  std::printf(
      "\nthe grid is embarrassingly parallel (110 independent cells, 4\n"
      "independent channels per cell); speedup at 4+ threads should approach\n"
      "the core count on an unloaded machine.\n");
  return 0;
}
