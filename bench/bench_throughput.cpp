// End-to-end sweep throughput: serial vs thread-pooled execution.
//
// Runs the full (10 app x 11 prefetcher kind) grid — the workload behind
// every figure bench — at 1, 2, 4 and hardware-concurrency threads and
// reports records simulated per second plus the speedup over serial. Before
// timing anything it asserts the engine's determinism contract: the pooled
// sweep must return bit-identical SimResults to the serial sweep for every
// registered prefetcher kind (a throughput number from a wrong simulation is
// worthless). Each run APPENDS one JSON-lines entry (git rev, per-thread-count
// records/sec, per-phase seconds, peak RSS, hardware concurrency) to the
// repo-root BENCH_throughput.json, so the file accumulates a machine-trackable
// perf trajectory across PRs instead of remembering only the latest run.
//
// Phase attribution (serial run): `trace_gen` is synthetic trace
// materialization, `simulate` is the sweep proper (cell simulation plus the
// grid assembly inside sweep()), `merge_verify` is the bench-side
// cross-thread-count bit-identity comparison. Only `simulate` scales with
// thread count; the split shows how much of wall time the timed loop below
// actually governs.
//
// Record count defaults to a quick-run length; scale with PLANARIA_RECORDS.
// PLANARIA_THREADS does not apply here — this bench sweeps thread counts
// itself; override the swept counts with PLANARIA_BENCH_THREADS (comma
// separated, e.g. "1" for a serial-only profiling run — the determinism gate
// needs a pooled run and is skipped, with a note, when no count exceeds 1).
// PLANARIA_BENCH_TRAJECTORY overrides the trajectory file path.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "bench_util.hpp"
#include "common/thread_pool.hpp"
#include "io/vfs.hpp"

namespace {

using namespace planaria;
using SweepGrid = std::map<std::string, std::map<std::string, sim::SimResult>>;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Runs one full-grid sweep at `threads`; trace materialization is timed
/// separately (and charged to *trace_gen_s when non-null) so the returned
/// duration isolates simulation throughput.
double run_sweep_seconds(std::uint64_t records, std::size_t threads,
                         const std::vector<sim::PrefetcherKind>& kinds,
                         SweepGrid* out, double* trace_gen_s = nullptr) {
  sim::ExperimentRunner runner(sim::SimConfig{}, records, threads);
  const auto gen_start = std::chrono::steady_clock::now();
  for (const auto& app : trace::app_names()) runner.trace_for(app);
  if (trace_gen_s != nullptr) *trace_gen_s = seconds_since(gen_start);
  const auto start = std::chrono::steady_clock::now();
  SweepGrid grid = runner.sweep(kinds);
  const double elapsed = seconds_since(start);
  if (out != nullptr) *out = std::move(grid);
  return elapsed;
}

/// SimResult::operator== is defaulted memberwise equality, doubles compared
/// with == on purpose: the contract is bit-identity, not numeric tolerance.
bool bit_identical(const sim::SimResult& a, const sim::SimResult& b) {
  return a == b;
}

/// Thread counts to sweep: PLANARIA_BENCH_THREADS (comma separated) if set,
/// else {1, 2, 4, hardware_concurrency when > 4}. A serial run is always
/// included — every other row is reported relative to it.
std::vector<std::size_t> thread_counts_from_env() {
  std::vector<std::size_t> counts;
  if (const char* env = std::getenv("PLANARIA_BENCH_THREADS");
      env != nullptr && *env != '\0') {
    std::string spec(env);
    std::size_t pos = 0;
    while (pos < spec.size()) {
      const std::size_t comma = spec.find(',', pos);
      const std::string tok =
          spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
      const long v = std::strtol(tok.c_str(), nullptr, 10);
      if (v > 0) counts.push_back(static_cast<std::size_t>(v));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  if (counts.empty()) {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    counts = {1, 2, 4};
    if (hw > 4) counts.push_back(hw);
  }
  if (std::find(counts.begin(), counts.end(), std::size_t{1}) ==
      counts.end()) {
    counts.insert(counts.begin(), 1);
  }
  return counts;
}

/// Peak resident set size of this process in bytes (ru_maxrss is KiB on
/// Linux). Captures the high-water mark across every sweep run — traces,
/// per-cell simulator state, and the result grids together.
std::uint64_t peak_rss_bytes() {
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024u;
}

/// FNV-1a over the workload-defining knobs. Throughput entries are only
/// comparable when they measured the same grid: records/sec at 2k records
/// per cell and at 100k are different quantities (fixed per-cell setup
/// amortizes differently), so the CI perf gate keys its baseline lookup on
/// this hash and compares like with like. The Python side of the gate
/// (.github/workflows/ci.yml perf-smoke) reimplements this byte for byte —
/// keep the two in sync.
std::uint64_t bench_config_hash(std::uint64_t records, std::size_t apps,
                                std::size_t kinds) {
  const std::string key = std::to_string(records) + "|" +
                          std::to_string(apps) + "|" + std::to_string(kinds);
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

int main() {
  using namespace planaria;
  bench::print_header(
      "Sweep throughput: serial vs thread-pooled (records/sec)",
      "engine benchmark — no paper figure; tracks PR-over-PR perf");

  const std::uint64_t records = sim::records_from_env(100000);
  const auto& kinds = sim::all_prefetcher_kinds();
  const std::uint64_t grid_records =
      records * trace::app_names().size() * kinds.size();

  const std::vector<std::size_t> thread_counts = thread_counts_from_env();
  const std::size_t max_threads =
      *std::max_element(thread_counts.begin(), thread_counts.end());

  // Determinism gate first: pooled results must equal serial results bit for
  // bit on every kind, or the speedup below is measuring a different
  // simulation. The pooled reference uses the widest swept count so the gate
  // covers the same pool configuration the timing rows do.
  SweepGrid serial_grid;
  double trace_gen_s = 0.0;
  const double serial_s =
      run_sweep_seconds(records, 1, kinds, &serial_grid, &trace_gen_s);
  double merge_verify_s = 0.0;
  if (max_threads > 1) {
    SweepGrid pooled_grid;
    run_sweep_seconds(records, max_threads, kinds, &pooled_grid);
    const auto verify_start = std::chrono::steady_clock::now();
    for (const auto& [app, per_kind] : serial_grid) {
      for (const auto& [kind_name, result] : per_kind) {
        if (!bit_identical(result, pooled_grid.at(app).at(kind_name))) {
          std::fprintf(stderr,
                       "FATAL: parallel sweep diverged from serial on %s/%s\n",
                       app.c_str(), kind_name.c_str());
          return 1;
        }
      }
    }
    merge_verify_s = seconds_since(verify_start);
    std::printf("determinism: %zu-thread sweep bit-identical to serial on all "
                "%zu kinds x %zu apps\n\n",
                max_threads, kinds.size(), trace::app_names().size());
  } else {
    std::printf("determinism gate skipped: PLANARIA_BENCH_THREADS sweeps no "
                "pooled run\n\n");
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("phases (serial): trace_gen %.3fs, simulate %.3fs, "
              "merge_verify %.3fs\n\n",
              trace_gen_s, serial_s, merge_verify_s);
  std::printf("%8s %12s %14s %10s\n", "threads", "seconds", "records/sec",
              "speedup");

  // One self-contained JSON object per bench invocation, accumulated as a
  // JSON-lines trajectory (append, never overwrite): each line records the
  // revision the numbers were measured at.
  char hash_hex[24];
  std::snprintf(hash_hex, sizeof hash_hex, "%016llx",
                static_cast<unsigned long long>(bench_config_hash(
                    records, trace::app_names().size(), kinds.size())));
  std::string entry =
      "{\"git_rev\": \"" PLANARIA_GIT_REV "\", \"records_per_cell\": " +
      std::to_string(records) +
      ", \"apps\": " + std::to_string(trace::app_names().size()) +
      ", \"kinds\": " + std::to_string(kinds.size()) +
      ", \"grid_records\": " + std::to_string(grid_records) +
      ", \"bench_config_hash\": \"" + hash_hex +
      "\", \"hardware_concurrency\": " + std::to_string(hw) + ", \"runs\": [";

  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    const std::size_t threads = thread_counts[i];
    const double seconds = threads == 1
                               ? serial_s
                               : run_sweep_seconds(records, threads, kinds,
                                                   nullptr);
    const double rps = seconds > 0.0
                           ? static_cast<double>(grid_records) / seconds
                           : 0.0;
    const double speedup = seconds > 0.0 ? serial_s / seconds : 0.0;
    std::printf("%8zu %12.3f %14.0f %9.2fx\n", threads, seconds, rps, speedup);
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "%s{\"threads\": %zu, \"seconds\": %.6f, "
                  "\"records_per_sec\": %.1f, \"speedup_vs_serial\": %.4f}",
                  i == 0 ? "" : ", ", threads, seconds, rps, speedup);
    entry += buf;
  }
  char tail[224];
  std::snprintf(tail, sizeof tail,
                "], \"phases\": {\"trace_gen_seconds\": %.6f, "
                "\"simulate_seconds\": %.6f, \"merge_verify_seconds\": %.6f}, "
                "\"peak_rss_bytes\": %llu}\n",
                trace_gen_s, serial_s, merge_verify_s,
                static_cast<unsigned long long>(peak_rss_bytes()));
  entry += tail;

  const char* traj_env = std::getenv("PLANARIA_BENCH_TRAJECTORY");
  const std::string trajectory = traj_env != nullptr && *traj_env != '\0'
                                     ? std::string(traj_env)
                                     : std::string(PLANARIA_BENCH_TRAJECTORY);
  // Routed through the io VFS: the append is advisory (a full disk must not
  // fail the bench), but it still participates in the storage-fault drills.
  if (io::append_line(trajectory, entry)) {
    std::printf("\nappended trajectory entry (rev %s) to %s\n",
                PLANARIA_GIT_REV, trajectory.c_str());
  } else {
    std::fprintf(stderr, "warning: cannot append to %s\n", trajectory.c_str());
  }
  std::printf(
      "\nthe grid is embarrassingly parallel (110 independent cells, 4\n"
      "independent channels per cell); speedup at 4+ threads should approach\n"
      "the core count on an unloaded machine.\n");
  return 0;
}
