#!/usr/bin/env python3
"""Tests for perf_gate.py, registered with ctest (test_perf_gate).

The load-bearing property: the gate survives the trajectory damage the
storage-fault drills manufacture — truncated trailing lines from a crash
mid-append, rotted bytes anywhere — by skipping the damaged lines, while
still gating correctly on the surviving complete entries.
"""

import io
import json
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stderr, redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import perf_gate  # noqa: E402


def entry(rate, records=10000, apps=8, kinds=4, threads=(1, 4)):
    return {
        "records_per_cell": records,
        "apps": apps,
        "kinds": kinds,
        "runs": [{"threads": t, "records_per_sec": rate * (1 if t == 1 else 3)}
                 for t in threads],
    }


class PerfGateTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()

    def tearDown(self):
        self.dir.cleanup()

    def write(self, name, lines):
        path = os.path.join(self.dir.name, name)
        with open(path, "w", encoding="utf-8") as f:
            for line in lines:
                f.write(line if isinstance(line, str) else json.dumps(line))
                f.write("\n")
        return path

    def run_gate(self, current, baseline):
        out, err = io.StringIO(), io.StringIO()
        with redirect_stdout(out), redirect_stderr(err):
            status = perf_gate.main(["perf_gate.py", current, baseline])
        return status, out.getvalue(), err.getvalue()

    def test_passes_at_or_above_the_floor(self):
        current = self.write("current.json", [entry(90000.0)])
        baseline = self.write("base.json", [entry(100000.0)])
        status, out, _ = self.run_gate(current, baseline)
        self.assertEqual(status, 0)
        self.assertIn("floor", out)

    def test_fails_below_the_floor(self):
        current = self.write("current.json", [entry(70000.0)])
        baseline = self.write("base.json", [entry(100000.0)])
        status, _, err = self.run_gate(current, baseline)
        self.assertEqual(status, 1)
        self.assertIn("regressed", err)

    def test_no_like_for_like_baseline_skips_the_gate(self):
        current = self.write("current.json", [entry(10.0, records=10000)])
        baseline = self.write("base.json", [entry(100000.0, records=100000)])
        status, out, _ = self.run_gate(current, baseline)
        self.assertEqual(status, 0)
        self.assertIn("gate skipped", out)

    def test_truncated_trailing_line_is_skipped(self):
        # A crash mid-append tears the last record; the gate must fall back
        # to the newest COMPLETE entry, warn, and still gate against it.
        torn = json.dumps(entry(90000.0))[:37]
        current = self.write("current.json", [entry(90000.0), torn])
        baseline = self.write("base.json", [entry(100000.0)])
        status, _, err = self.run_gate(current, baseline)
        self.assertEqual(status, 0)
        self.assertIn("skipping malformed entry", err)

    def test_rotted_baseline_lines_do_not_crash_the_gate(self):
        baseline = self.write("base.json", [
            "{\"bench_config_hash\": \x07 garbage",   # rotted bytes
            entry(100000.0),
            {"runs": "not-a-list-entry-shape"},        # wrong structure
            "[1, 2, 3]",                               # JSON but not an object
        ])
        current = self.write("current.json", [entry(90000.0)])
        status, _, err = self.run_gate(current, baseline)
        self.assertEqual(status, 0)
        self.assertIn("skipping", err)

    def test_all_lines_damaged_is_a_loud_failure(self):
        current = self.write("current.json", ["{torn", "also torn"])
        baseline = self.write("base.json", [entry(100000.0)])
        status, _, err = self.run_gate(current, baseline)
        self.assertEqual(status, 1)
        self.assertIn("no complete trajectory entries", err)

    def test_legacy_baseline_without_hash_field_still_keys(self):
        legacy = entry(100000.0)
        keyed = entry(90000.0)
        keyed["bench_config_hash"] = perf_gate.config_hash(legacy)
        current = self.write("current.json", [keyed])
        baseline = self.write("base.json", [legacy])
        status, out, _ = self.run_gate(current, baseline)
        self.assertEqual(status, 0)
        self.assertIn("best committed", out)

    def test_entry_without_serial_run_is_unusable_current(self):
        no_serial = entry(90000.0, threads=(2, 4))
        current = self.write("current.json", [no_serial])
        baseline = self.write("base.json", [entry(100000.0)])
        status, _, err = self.run_gate(current, baseline)
        self.assertEqual(status, 1)
        self.assertIn("no serial run", err)


if __name__ == "__main__":
    unittest.main()
