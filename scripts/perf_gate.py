#!/usr/bin/env python3
"""CI perf gate: serial-throughput floor against the committed trajectory.

Compares the newest entry of a freshly produced trajectory (JSONL, one entry
per bench run) against the best committed BENCH_throughput.json entry measured
on the SAME workload. Entries are keyed by bench_config_hash (FNV-1a over
records|apps|kinds, mirrored from bench_throughput.cpp; legacy lines without
the field get it derived from the same fields). A 2k-record quick entry and a
100k-record overnight entry measure different quantities and must never gate
each other. No like-for-like baseline means no gate (a workload change lands
its own first baseline).

Robustness: trajectory files are append-only JSONL written via an advisory
append path — a crash (or an injected storage fault) can leave a truncated
trailing line, and bit-rot drills can damage any line. Malformed or
structurally wrong lines are reported to stderr and skipped; the gate operates
on the surviving complete entries instead of crashing on the first bad byte.

Usage: perf_gate.py <current-trajectory.json> <committed-baseline.json>
Exit status: 0 pass or no-baseline skip, 1 regression or unusable input.
"""

import json
import sys


def config_hash(entry):
    """Workload key: committed hash if present, else derived (legacy lines)."""
    if "bench_config_hash" in entry:
        return entry["bench_config_hash"]
    key = (f"{entry['records_per_cell']}|{entry['apps']}|"
           f"{entry['kinds']}")
    h = 1469598103934665603
    for b in key.encode():
        h = ((h ^ b) * 1099511628211) % (1 << 64)
    return f"{h:016x}"


def serial_rate(entry):
    """records/sec of the threads==1 run, or None when the entry lacks one."""
    for run in entry.get("runs", []):
        if run.get("threads") == 1:
            return run.get("records_per_sec")
    return None


def load_entries(path):
    """Parses a JSONL trajectory, skipping damaged lines with a warning."""
    entries = []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as err:
                print(f"{path}:{lineno}: skipping malformed entry ({err})",
                      file=sys.stderr)
                continue
            if not isinstance(entry, dict):
                print(f"{path}:{lineno}: skipping non-object entry",
                      file=sys.stderr)
                continue
            entries.append(entry)
    return entries


def main(argv):
    if len(argv) != 3:
        print(f"usage: {argv[0]} <current.json> <baseline.json>",
              file=sys.stderr)
        return 1

    current_entries = load_entries(argv[1])
    if not current_entries:
        print(f"{argv[1]}: no complete trajectory entries", file=sys.stderr)
        return 1
    current = current_entries[-1]

    try:
        want = config_hash(current)
    except KeyError as err:
        print(f"{argv[1]}: newest entry lacks workload field {err}",
              file=sys.stderr)
        return 1
    rate = serial_rate(current)
    if rate is None:
        print(f"{argv[1]}: no serial run in the newest trajectory entry",
              file=sys.stderr)
        return 1

    best = 0.0
    for entry in load_entries(argv[2]):
        try:
            if config_hash(entry) != want:
                continue
        except KeyError:
            # A baseline entry too old (or damaged) to key — never gates.
            continue
        entry_rate = serial_rate(entry)
        if entry_rate is not None:
            best = max(best, entry_rate)

    if best == 0.0:
        print(f"no committed baseline for workload {want}; "
              f"serial {rate:,.0f} rec/s recorded, gate skipped")
        return 0

    floor = 0.8 * best
    print(f"workload {want}: serial {rate:,.0f} rec/s; best committed "
          f"{best:,.0f}; floor {floor:,.0f}")
    if rate < floor:
        print("perf gate: serial throughput regressed >20% vs the best "
              "like-for-like baseline entry", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
