#!/usr/bin/env bash
# Local mirror of the CI pipeline (.github/workflows/ci.yml).
#
# Runs, in order:
#   1. release  — -Werror build of everything + full ctest suite
#   2. lint     — planaria-lint over src/, tools/, bench/, tests/: layering
#                 DAG, determinism bans, snapshot pairing/round-trip coverage,
#                 contract coverage, hygiene, plus the interprocedural race-*
#                 (parallel-region capture/static/non-const-call), hot-*
#                 (alloc/string/iostream/throw/mutex/env on hot-root paths)
#                 and state-* (member-level save/load reconciliation:
#                 unsaved/unloaded members, order mismatch, determinism
#                 taint) families and the io-raw VFS-bypass bans; must finish
#                 under a 10s budget; writes the --json report to
#                 build-release/lint-report.json (CI uploads it as an
#                 artifact) and validates its v4 schema with
#                 scripts/check_lint_report.py
#   3. sanitize — ASan+UBSan build (arms PLANARIA_DASSERT) + full ctest suite
#   4. audit    — planaria-audit invariant gate (from the sanitizer build, so
#                 the replay stage runs instrumented; includes the serial-vs-
#                 parallel bit-identity replay)
#   5. chaos    — planaria-audit --stage chaos: every (app x kind) cell under
#                 each fault class with contracts in recover mode; exits
#                 nonzero on any abort or injected-vs-recovered counter
#                 mismatch
#   6. crash    — planaria-audit --stage crash: kill-and-resume drills at
#                 randomized record indices across the full (app x kind x
#                 faults x threads) matrix, asserting the resumed run is
#                 bit-identical to an uninterrupted one, plus truncated /
#                 CRC-corrupt snapshot recovery
#   7. serve    — planaria-audit --stage serve: the multi-tenant serving loop
#                 under backpressure, drills and faults — graceful-drain
#                 accounting, kill/resume drills at seeded ticks x {1,4}
#                 threads with a byte-identity gate, and a chaos soak with
#                 all six fault classes armed per tenant
#   8. storm    — planaria-audit --stage storm: seeded storage-fault drills
#                 through the src/io VFS shim — envelope torture per fault
#                 class, the checkpoint recovery chain (current -> .prev ->
#                 quarantine + cold start) under each storm, scrub/repair
#                 with exact counts, and the serving loop's degraded
#                 checkpoint ledger under injected ENOSPC
#   9. tsan     — TSan build of the parallel sweep tests, run with a 4-lane
#                 PLANARIA_THREADS pool
#  10. tidy     — clang-tidy over src/ against the compilation database
#                 (skipped with a notice if clang-tidy is not installed)
#
# Every stage runs even if an earlier one fails; each stage runs under a
# timeout; the script exits nonzero with a summary naming the failed stages.
#
# Usage: scripts/run_checks.sh [--skip-sanitize] [--skip-tsan] [--skip-tidy]
set -euo pipefail

cd "$(dirname "$0")/.."

SKIP_SANITIZE=0
SKIP_TSAN=0
SKIP_TIDY=0
for arg in "$@"; do
  case "$arg" in
    --skip-sanitize) SKIP_SANITIZE=1 ;;
    --skip-tsan) SKIP_TSAN=1 ;;
    --skip-tidy) SKIP_TIDY=1 ;;
    *) echo "usage: $0 [--skip-sanitize] [--skip-tsan] [--skip-tidy]" >&2; exit 1 ;;
  esac
done

JOBS=$(nproc 2>/dev/null || echo 4)
FAILED_STAGES=()

# run_stage <name> <timeout-seconds> <function>
# Runs <function> under `timeout`, recording — not aborting on — failure so
# every stage gets its run. `set -e` stays active inside the stage function
# itself (it runs in a subshell via the if-guard), so the first failing
# command still short-circuits that stage.
run_stage() {
  local name="$1" limit="$2" fn="$3"
  printf '\n==> %s (timeout %ss)\n' "$name" "$limit"
  local status=0
  timeout --foreground "$limit" bash -euo pipefail -c "
    cd '$PWD'
    JOBS='$JOBS'
    $(declare -f "$fn")
    $fn
  " || status=$?
  if [[ "$status" -ne 0 ]]; then
    if [[ "$status" -eq 124 ]]; then
      printf '!! stage %s TIMED OUT after %ss\n' "$name" "$limit" >&2
    else
      printf '!! stage %s FAILED (exit %s)\n' "$name" "$status" >&2
    fi
    FAILED_STAGES+=("$name")
  fi
}

stage_release() {
  cmake -B build-release -S . -DPLANARIA_WERROR=ON >/dev/null
  cmake --build build-release -j "$JOBS"
  ctest --test-dir build-release --output-on-failure -j "$JOBS"
}

stage_sanitize() {
  cmake -B build-sanitize -S . -DPLANARIA_WERROR=ON \
    -DPLANARIA_SANITIZE=address,undefined >/dev/null
  cmake --build build-sanitize -j "$JOBS"
  ctest --test-dir build-sanitize --output-on-failure -j "$JOBS"
}

stage_lint() {
  # Budget assertion (DESIGN.md §13): the full-repo analysis — call graph,
  # race, hot, and state-flow families included — must finish in under 10
  # seconds, or the gate has become too slow to run on every push.
  timeout 10 ./build-release/tools/lint/planaria-lint \
    --json=build-release/lint-report.json
  # Schema contract (v4): same checker CI runs against the JSON artifact.
  python3 scripts/check_lint_report.py build-release/lint-report.json
}

stage_audit() {
  "$AUDIT" --stage static
  "$AUDIT" --stage replay
}

stage_chaos() {
  "$AUDIT" --stage chaos
}

stage_crash() {
  "$AUDIT" --stage crash
}

stage_serve() {
  "$AUDIT" --stage serve
}

stage_storm() {
  "$AUDIT" --stage storm
}

stage_tsan() {
  cmake -B build-tsan -S . -DPLANARIA_WERROR=ON \
    -DPLANARIA_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS" --target test_parallel test_sim test_sim_edge
  PLANARIA_THREADS=4 TSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-tsan -R 'test_parallel|test_sim' --output-on-failure
}

stage_tidy() {
  # Fixture corpus excluded: deliberately-bad code with no compile commands.
  mapfile -t sources < <(find src tools -name '*.cpp' -not -path 'tools/lint/fixtures/*' | sort)
  clang-tidy -p build-release --quiet "${sources[@]}"
}

run_stage release 1800 stage_release
# The stage timeout only needs headroom over the 10s in-stage budget.
run_stage lint 30 stage_lint

if [[ "$SKIP_SANITIZE" -eq 0 ]]; then
  run_stage sanitize 1800 stage_sanitize
  AUDIT=./build-sanitize/tools/planaria-audit
else
  AUDIT=./build-release/tools/planaria-audit
fi
export AUDIT

run_stage audit 900 stage_audit
run_stage chaos 900 stage_chaos
run_stage crash 1200 stage_crash
run_stage serve 900 stage_serve
run_stage storm 900 stage_storm

if [[ "$SKIP_TSAN" -eq 0 ]]; then
  run_stage tsan 1800 stage_tsan
fi

if [[ "$SKIP_TIDY" -eq 0 ]] && command -v clang-tidy >/dev/null 2>&1; then
  run_stage tidy 1800 stage_tidy
elif [[ "$SKIP_TIDY" -eq 0 ]]; then
  printf '\n==> tidy: clang-tidy not installed — skipped (CI runs it)\n'
fi

if [[ "${#FAILED_STAGES[@]}" -ne 0 ]]; then
  printf '\n==> FAILED stages: %s\n' "${FAILED_STAGES[*]}" >&2
  exit 1
fi
printf '\n==> all checks passed\n'
