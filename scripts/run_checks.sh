#!/usr/bin/env bash
# Local mirror of the CI pipeline (.github/workflows/ci.yml).
#
# Runs, in order:
#   1. release  — -Werror build of everything + full ctest suite
#   2. sanitize — ASan+UBSan build (arms PLANARIA_DASSERT) + full ctest suite
#   3. audit    — planaria-audit invariant gate (from the sanitizer build, so
#                 the replay stage runs instrumented; includes the serial-vs-
#                 parallel bit-identity replay)
#   4. chaos    — planaria-audit --stage chaos: every (app x kind) cell under
#                 each fault class with contracts in recover mode; exits
#                 nonzero on any abort or injected-vs-recovered counter
#                 mismatch
#   5. tsan     — TSan build of the parallel sweep tests, run with a 4-lane
#                 PLANARIA_THREADS pool
#   6. tidy     — clang-tidy over src/ against the compilation database
#                 (skipped with a notice if clang-tidy is not installed)
#
# Usage: scripts/run_checks.sh [--skip-sanitize] [--skip-tsan] [--skip-tidy]
set -euo pipefail

cd "$(dirname "$0")/.."

SKIP_SANITIZE=0
SKIP_TSAN=0
SKIP_TIDY=0
for arg in "$@"; do
  case "$arg" in
    --skip-sanitize) SKIP_SANITIZE=1 ;;
    --skip-tsan) SKIP_TSAN=1 ;;
    --skip-tidy) SKIP_TIDY=1 ;;
    *) echo "usage: $0 [--skip-sanitize] [--skip-tsan] [--skip-tidy]" >&2; exit 1 ;;
  esac
done

JOBS=$(nproc 2>/dev/null || echo 4)

step() { printf '\n==> %s\n' "$*"; }

step "release: -Werror build + tests"
cmake -B build-release -S . -DPLANARIA_WERROR=ON >/dev/null
cmake --build build-release -j "$JOBS"
ctest --test-dir build-release --output-on-failure -j "$JOBS"

if [[ "$SKIP_SANITIZE" -eq 0 ]]; then
  step "sanitize: ASan+UBSan build + tests"
  cmake -B build-sanitize -S . -DPLANARIA_WERROR=ON \
    -DPLANARIA_SANITIZE=address,undefined >/dev/null
  cmake --build build-sanitize -j "$JOBS"
  ctest --test-dir build-sanitize --output-on-failure -j "$JOBS"
  AUDIT=./build-sanitize/tools/planaria-audit
else
  AUDIT=./build-release/tools/planaria-audit
fi

step "audit: planaria-audit static + replay ($AUDIT)"
"$AUDIT" --stage static
"$AUDIT" --stage replay

step "chaos: planaria-audit fault-injection gate"
"$AUDIT" --stage chaos

if [[ "$SKIP_TSAN" -eq 0 ]]; then
  step "tsan: thread-pooled sweep tests under ThreadSanitizer"
  cmake -B build-tsan -S . -DPLANARIA_WERROR=ON \
    -DPLANARIA_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS" --target test_parallel test_sim test_sim_edge
  PLANARIA_THREADS=4 TSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-tsan -R 'test_parallel|test_sim' --output-on-failure
fi

if [[ "$SKIP_TIDY" -eq 0 ]] && command -v clang-tidy >/dev/null 2>&1; then
  step "tidy: clang-tidy over src/"
  mapfile -t sources < <(find src tools -name '*.cpp' | sort)
  clang-tidy -p build-release --quiet "${sources[@]}"
elif [[ "$SKIP_TIDY" -eq 0 ]]; then
  step "tidy: clang-tidy not installed — skipped (CI runs it)"
fi

step "all checks passed"
