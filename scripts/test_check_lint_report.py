#!/usr/bin/env python3
"""Unit tests for check_lint_report.py (registered with ctest).

Each case builds a report dict, round-trips it through a temp file, and
asserts the checker's verdict. The good-report template mirrors the v4
shape byte-pinned in tests/test_lint.cpp; if the schema moves, that pin,
this template, and SCHEMA_VERSION in the checker move together.
"""

import copy
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_lint_report


GOOD = {
    "tool": "planaria-lint",
    "schema_version": 4,
    "root": "/repo",
    "files_scanned": 2,
    "findings": [
        {"rule": "determinism", "file": "src/core/a.cpp", "line": 7,
         "message": "call to 'rand()'"},
        {"rule": "state-unsaved-member", "file": "src/core/a.hpp", "line": 3,
         "message": "member 'C::m_' is mutated but never serialized"},
    ],
    "suppressed": [
        {"rule": "hot-alloc", "file": "src/core/b.cpp", "line": 9,
         "message": "local 'vector' constructed per call",
         "reason": "amortized"},
    ],
    "counts": {"findings": 2, "suppressed": 1, "race": 0, "hot": 0,
               "io": 0, "state": 1},
}


def run_checker(report):
    """Runs main() on a serialized report; returns (exit_code, ok_bool)."""
    with tempfile.NamedTemporaryFile(
            mode="w", suffix=".json", delete=False) as handle:
        json.dump(report, handle)
        path = handle.name
    try:
        try:
            code = check_lint_report.main(["check_lint_report.py", path])
            return code, code == 0
        except SystemExit as err:
            return err.code, False
    finally:
        os.unlink(path)


class CheckLintReportTest(unittest.TestCase):
    def test_good_report_passes(self):
        code, ok = run_checker(GOOD)
        self.assertTrue(ok, "well-formed v4 report must pass (exit %r)" % code)

    def test_wrong_schema_version_fails(self):
        bad = copy.deepcopy(GOOD)
        bad["schema_version"] = 3
        self.assertFalse(run_checker(bad)[1])

    def test_missing_counts_state_fails(self):
        bad = copy.deepcopy(GOOD)
        del bad["counts"]["state"]
        self.assertFalse(run_checker(bad)[1])

    def test_missing_top_level_key_fails(self):
        for key in check_lint_report.TOP_KEYS:
            bad = copy.deepcopy(GOOD)
            del bad[key]
            self.assertFalse(run_checker(bad)[1], "missing %r must fail" % key)

    def test_count_disagreeing_with_array_fails(self):
        bad = copy.deepcopy(GOOD)
        bad["counts"]["findings"] = 5
        self.assertFalse(run_checker(bad)[1])

    def test_family_count_disagreeing_with_rules_fails(self):
        bad = copy.deepcopy(GOOD)
        bad["counts"]["state"] = 0  # but one state-* finding is active
        self.assertFalse(run_checker(bad)[1])

    def test_suppressed_without_reason_fails(self):
        bad = copy.deepcopy(GOOD)
        del bad["suppressed"][0]["reason"]
        self.assertFalse(run_checker(bad)[1])
        bad["suppressed"][0]["reason"] = ""
        self.assertFalse(run_checker(bad)[1])

    def test_finding_missing_key_fails(self):
        bad = copy.deepcopy(GOOD)
        del bad["findings"][0]["message"]
        self.assertFalse(run_checker(bad)[1])

    def test_nonempty_findings_still_pass(self):
        # Cleanliness gating belongs to the linter's exit code; the checker
        # only validates shape.
        code, ok = run_checker(GOOD)
        self.assertTrue(ok)
        self.assertEqual(code, 0)

    def test_unreadable_file_is_usage_error(self):
        code = check_lint_report.main(
            ["check_lint_report.py", "/nonexistent/report.json"])
        self.assertEqual(code, 2)


if __name__ == "__main__":
    unittest.main()
