#!/usr/bin/env python3
"""Validates a planaria-lint JSON report against the schema-v4 contract.

CI used to assert the report's shape with greps over the raw JSON; this
script is the single place that knowledge lives now (the byte-level pin is
tests/test_lint.cpp). It checks:

  * schema_version is exactly 4;
  * the top-level keys and the counts keys are all present
    (tool/root/files_scanned/findings/suppressed/counts, and
    counts.{findings,suppressed,race,hot,io,state});
  * counts agree with the arrays they summarize — counts.findings equals
    len(findings), counts.suppressed equals len(suppressed), and each
    per-family count equals the number of active findings whose rule carries
    that family's prefix;
  * every finding has rule/file/line/message, with a known-shaped rule id;
  * every suppressed entry carries a non-empty reason — the suppressed list
    is an audit trail, not a mute button.

Exit 0 when the report is well-formed (findings may still be non-empty:
gating on cleanliness is the linter's own exit code, not this script's
job), 1 on a contract violation, 2 on usage/IO errors.

Usage: check_lint_report.py <report.json>
"""

import json
import sys

SCHEMA_VERSION = 4
TOP_KEYS = ("tool", "schema_version", "root", "files_scanned", "findings",
            "suppressed", "counts")
COUNT_KEYS = ("findings", "suppressed", "race", "hot", "io", "state")
FAMILY_PREFIXES = {"race": "race-", "hot": "hot-", "io": "io-raw",
                   "state": "state-"}
FINDING_KEYS = ("rule", "file", "line", "message")


def fail(message):
    print("check_lint_report: %s" % message, file=sys.stderr)
    raise SystemExit(1)


def check_finding(entry, where, suppressed):
    for key in FINDING_KEYS:
        if key not in entry:
            fail("%s entry missing key '%s': %r" % (where, key, entry))
    if not isinstance(entry["line"], int) or entry["line"] < 0:
        fail("%s entry has a non-integer line: %r" % (where, entry))
    rule = entry["rule"]
    if not rule or not all(c.islower() or c == "-" for c in rule):
        fail("%s entry has a malformed rule id %r" % (where, rule))
    if suppressed and not entry.get("reason"):
        fail("suppressed entry for %s:%s has no reason — every waiver "
             "must say why" % (entry["file"], entry["line"]))


def check_report(report):
    for key in TOP_KEYS:
        if key not in report:
            fail("missing top-level key '%s'" % key)
    if report["tool"] != "planaria-lint":
        fail("tool is %r, expected 'planaria-lint'" % report["tool"])
    if report["schema_version"] != SCHEMA_VERSION:
        fail("schema_version is %r, expected %d (regenerate the report "
             "with a current planaria-lint build)"
             % (report["schema_version"], SCHEMA_VERSION))

    counts = report["counts"]
    for key in COUNT_KEYS:
        if key not in counts:
            fail("counts is missing key '%s'" % key)
        if not isinstance(counts[key], int) or counts[key] < 0:
            fail("counts.%s is %r, expected a non-negative integer"
                 % (key, counts[key]))

    for entry in report["findings"]:
        check_finding(entry, "findings", suppressed=False)
    for entry in report["suppressed"]:
        check_finding(entry, "suppressed", suppressed=True)

    if counts["findings"] != len(report["findings"]):
        fail("counts.findings=%d but findings has %d entries"
             % (counts["findings"], len(report["findings"])))
    if counts["suppressed"] != len(report["suppressed"]):
        fail("counts.suppressed=%d but suppressed has %d entries"
             % (counts["suppressed"], len(report["suppressed"])))
    for family, prefix in FAMILY_PREFIXES.items():
        actual = sum(1 for f in report["findings"]
                     if f["rule"].startswith(prefix))
        if counts[family] != actual:
            fail("counts.%s=%d but %d active findings match prefix %r"
                 % (family, counts[family], actual, prefix))


def main(argv):
    if len(argv) != 2:
        print(__doc__.strip().splitlines()[-1], file=sys.stderr)
        return 2
    try:
        with open(argv[1], "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError) as err:
        print("check_lint_report: cannot read %s: %s" % (argv[1], err),
              file=sys.stderr)
        return 2
    check_report(report)
    print("check_lint_report: %s OK (schema v%d, %d findings, %d suppressed)"
          % (argv[1], SCHEMA_VERSION, len(report["findings"]),
             len(report["suppressed"])))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
