// planaria-audit — the invariant audit gate CI runs on every change.
//
// Three stages:
//   1. Self-test: deliberately injects a storage-budget violation and checks
//      the contract layer flags it. A gate that cannot see a planted bug is
//      blind; this stage failing exits 2 and nothing else is trusted.
//   2. Static audit: instantiates every registered prefetcher kind,
//      cross-checks the two independent storage accountings (component
//      storage_bits() vs the field-by-field breakdown) against each other and
//      against the paper's hardware budget, and verifies table geometry
//      (power-of-two set counts, field bit-widths wide enough for their
//      configured values).
//   3. Replay audit: runs every kind over randomized synthetic traces with
//      all contracts armed in log-and-count mode; any violation anywhere in
//      the FT/AT/PHT pipeline, the RPT, the coordinator, the cache, or the
//      DRAM timing model fails the gate. Each replay also runs on the
//      channel-sharded parallel path (4-lane thread pool) and must produce a
//      bit-identical SimResult — the parallel engine's determinism contract
//      is part of the gate.
//
// Exit codes: 0 = clean, 1 = an audit check failed, 2 = self-test failed.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "check/contract.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "core/storage.hpp"
#include "core/storage_layout.hpp"
#include "sim/simulator.hpp"
#include "trace/apps.hpp"
#include "trace/generator.hpp"

namespace {

using planaria::Cycle;
using planaria::kBlocksPerSegment;
using planaria::kChannels;
using planaria::StatSet;
namespace check = planaria::check;
namespace core = planaria::core;
namespace layout = planaria::core::layout;
namespace sim = planaria::sim;
namespace trace = planaria::trace;

int g_failures = 0;

bool expect(bool ok, const std::string& what) {
  std::printf("  %-5s %s\n", ok ? "ok" : "FAIL", what.c_str());
  if (!ok) ++g_failures;
  return ok;
}

/// Allow measurement slack above the paper's synthesis number: the default
/// reproduction configuration lands a few percent under it, and a config
/// drifting past this bound has outgrown the hardware the paper costed.
constexpr double kBudgetSlack = 1.05;

/// Exact (bit-identical) SimResult comparison for the parallel replay stage.
/// Doubles are compared with == on purpose: the parallel engine's contract is
/// bit-identity with the serial path, not numeric tolerance.
bool results_identical(const sim::SimResult& a, const sim::SimResult& b) {
  return a.prefetcher == b.prefetcher && a.demand_reads == b.demand_reads &&
         a.demand_writes == b.demand_writes && a.amat_cycles == b.amat_cycles &&
         a.sc_hit_rate == b.sc_hit_rate &&
         a.prefetch_accuracy == b.prefetch_accuracy &&
         a.prefetch_coverage == b.prefetch_coverage &&
         a.prefetch_issued == b.prefetch_issued &&
         a.prefetch_dropped == b.prefetch_dropped &&
         a.dram_reads == b.dram_reads && a.dram_writes == b.dram_writes &&
         a.dram_traffic_blocks == b.dram_traffic_blocks &&
         a.dram_power_mw == b.dram_power_mw &&
         a.sram_power_mw == b.sram_power_mw &&
         a.total_power_mw == b.total_power_mw && a.ipc == b.ipc &&
         a.elapsed == b.elapsed && a.hits_on_slp == b.hits_on_slp &&
         a.hits_on_tlp == b.hits_on_tlp &&
         a.hits_on_other_pf == b.hits_on_other_pf &&
         a.pollution_misses == b.pollution_misses &&
         a.slp_issues == b.slp_issues && a.tlp_issues == b.tlp_issues &&
         a.late_prefetch_merges == b.late_prefetch_merges &&
         a.data_bus_utilization == b.data_bus_utilization &&
         a.storage_bits == b.storage_bits;
}

/// The storage contract applied to one configuration: the field-by-field
/// breakdown must equal the component accounting bit for bit, and the
/// 4-channel total must stay inside the paper's budget.
void audit_storage(const core::StorageBreakdown& breakdown,
                   std::uint64_t component_bits_per_channel) {
  PLANARIA_ENSURE_MSG(
      kStorageBudget,
      breakdown.per_channel_bits() == component_bits_per_channel,
      "storage breakdown disagrees with the component accounting");
  PLANARIA_ENSURE_MSG(
      kStorageBudget,
      breakdown.total_kb(kChannels) <= layout::kPaperBudgetKb * kBudgetSlack,
      "metadata storage exceeds the paper's hardware budget");
}

/// Stage 1: the gate must notice a planted one-bit-per-entry drift.
bool self_test() {
  std::printf("self-test: injected storage-budget violation\n");
  const core::PlanariaConfig config;
  const std::uint64_t honest_bits =
      core::PlanariaPrefetcher(config).storage_bits();

  check::CountingScope scope;
  check::reset_violations();

  core::StorageBreakdown drifted = core::planaria_storage(config);
  drifted.items.front().bits_per_entry += 1;  // the planted bug
  audit_storage(drifted, honest_bits);

  const bool detected =
      check::violation_count(check::Category::kStorageBudget) > 0;
  expect(detected, "planted one-bit FT drift is detected");
  check::reset_violations();
  return detected;
}

/// Stage 2 helper: storage cross-check for one Planaria-family config.
void audit_planaria_storage(const std::string& label,
                            const core::PlanariaConfig& config) {
  const std::uint64_t before = check::total_violations();
  audit_storage(core::planaria_storage(config),
                core::PlanariaPrefetcher(config).storage_bits());
  char budget[32];
  std::snprintf(budget, sizeof budget, "%.1f", layout::kPaperBudgetKb);
  expect(check::total_violations() == before,
         label + ": breakdown == component bits and within " + budget +
             "KB budget");
}

void static_audit() {
  std::printf("static audit: registered configurations\n");
  check::CountingScope scope;
  check::reset_violations();

  // Geometry of the default configuration. validate() throws on violations
  // (non-power-of-two set counts, field overflow), so surviving it is the
  // check; the contracts below catch what validate() cannot see.
  const core::PlanariaConfig planaria_config;
  const sim::SimConfig sim_config;
  bool geometry_ok = true;
  try {
    planaria_config.validate();
    sim_config.validate();
  } catch (const std::exception& e) {
    std::printf("  default config rejected: %s\n", e.what());
    geometry_ok = false;
  }
  expect(geometry_ok, "default configs pass validate()");

  const auto sets = sim_config.cache.sets();
  expect(sets != 0 && (sets & (sets - 1)) == 0,
         "cache slice set count is a power of two");
  expect(planaria_config.slp.at_timeout <
             (Cycle{1} << layout::kAtTimeBits),
         "AT timeout fits the 20-bit last-access time field");
  expect(planaria_config.tlp.min_common_bits <= kBlocksPerSegment,
         "TLP similarity floor fits the 16-bit bitmap");

  // Field widths: the breakdown must carry exactly the documented widths.
  const auto breakdown = core::planaria_storage(planaria_config);
  bool widths_ok = breakdown.items.size() == 4 &&
                   breakdown.items[0].bits_per_entry == layout::kFtEntryBits &&
                   breakdown.items[1].bits_per_entry == layout::kAtEntryBits &&
                   breakdown.items[2].bits_per_entry == layout::kPtEntryBits &&
                   breakdown.items[3].bits_per_entry ==
                       layout::rpt_entry_bits(static_cast<std::uint64_t>(
                           planaria_config.tlp.rpt_entries));
  expect(widths_ok, "breakdown entry widths match storage_layout.hpp");

  // Storage contracts for each Planaria family member.
  audit_planaria_storage("planaria", planaria_config);
  core::PlanariaConfig slp_only = planaria_config;
  slp_only.enable_tlp = false;
  audit_planaria_storage("planaria-slp", slp_only);
  core::PlanariaConfig tlp_only = planaria_config;
  tlp_only.enable_slp = false;
  audit_planaria_storage("planaria-tlp", tlp_only);

  // Every registered kind instantiates and reports sane metadata storage
  // (prefetcher metadata must stay far below the cache it serves).
  const std::uint64_t sc_slice_bits = sim_config.cache.size_bytes * 8;
  for (sim::PrefetcherKind kind : sim::all_prefetcher_kinds()) {
    const auto pf = sim::make_prefetcher_factory(kind)(0);
    const std::uint64_t bits = pf->storage_bits();
    expect(pf->name() != nullptr && bits < sc_slice_bits,
           std::string(sim::prefetcher_kind_name(kind)) + ": instantiates, " +
               std::to_string(bits) + " metadata bits < 1MB SC slice");
  }

  expect(check::total_violations() == 0,
         "no contract violations during the static audit");
  check::reset_violations();
}

void replay_audit(std::uint64_t records, std::uint64_t seed) {
  std::printf("replay audit: %llu records/app, all kinds, contracts armed\n",
              static_cast<unsigned long long>(records));
  check::CountingScope scope;
  check::reset_violations();

  // One calibrated app plus one deliberately noisy randomized profile: the
  // calibrated stream exercises the learned-pattern paths, the randomized one
  // pushes occupancy/eviction corners the calibrated mixes rarely reach.
  trace::AppProfile fuzz = trace::paper_apps().front();
  fuzz.name = "fuzz";
  fuzz.seed = seed;
  fuzz.weight_irregular = 0.4;
  fuzz.weight_footprint = 0.3;
  fuzz.weight_neighbor = 0.2;
  fuzz.weight_stream = 0.1;
  fuzz.burstiness = 0.6;
  fuzz.footprint.mutate_p = 0.3;
  fuzz.neighbor.new_page_rate = 0.8;

  const std::vector<trace::AppProfile> profiles = {trace::paper_apps().front(),
                                                   fuzz};
  planaria::common::ThreadPool pool(4);
  // Profile-level parallel generation (deterministic: each profile owns its
  // seeds); also exercises the generator under the pool for the TSan build.
  const auto traces = trace::generate_app_traces(profiles, records, &pool);
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    const auto& app = profiles[p];
    const auto& trace_records = traces[p];
    for (sim::PrefetcherKind kind : sim::all_prefetcher_kinds()) {
      const std::uint64_t before = check::total_violations();
      const auto result =
          sim::Simulator::run(sim::SimConfig{}, sim::make_prefetcher_factory(kind),
                              sim::prefetcher_kind_name(kind), trace_records);
      expect(check::total_violations() == before &&
                 result.demand_reads + result.demand_writes ==
                     trace_records.size(),
             app.name + " x " + result.prefetcher + ": replay clean");

      // Parallel path: same trace through the channel-sharded engine on a
      // thread pool must replay clean AND bit-identical to the serial run.
      const std::uint64_t before_par = check::total_violations();
      const auto par = sim::Simulator::run(
          sim::SimConfig{}, sim::make_prefetcher_factory(kind),
          sim::prefetcher_kind_name(kind), trace_records, &pool);
      expect(check::total_violations() == before_par &&
                 results_identical(result, par),
             app.name + " x " + result.prefetcher +
                 ": parallel replay clean and bit-identical");
    }
  }

  StatSet stats;
  check::export_violations(stats);
  for (const auto& [name, value] : stats.dump()) {
    std::printf("  %-50s %.0f\n", name.c_str(), value);
  }
  expect(check::total_violations() == 0,
         "no contract violations across all replays");
  check::reset_violations();
}

}  // namespace

int main(int argc, char** argv) {
  // Violation logs go to stderr unbuffered; keep stdout line-buffered so the
  // interleaving stays readable when the output is piped (CI logs).
  std::setvbuf(stdout, nullptr, _IOLBF, 0);

  std::uint64_t records = 20000;
  std::uint64_t seed = 0xA0D17;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--records") == 0 && i + 1 < argc) {
      records = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: planaria-audit [--records N] [--seed S]\n");
      return 1;
    }
  }
  if (records == 0) {
    std::fprintf(stderr, "planaria-audit: --records must be >= 1\n");
    return 1;
  }

  if (!self_test()) {
    std::fprintf(stderr, "planaria-audit: SELF-TEST FAILED — gate is blind\n");
    return 2;
  }
  static_audit();
  replay_audit(records, seed);

  if (g_failures > 0) {
    std::fprintf(stderr, "planaria-audit: %d check(s) FAILED\n", g_failures);
    return 1;
  }
  std::printf("planaria-audit: all checks passed\n");
  return 0;
}
