// planaria-audit — the invariant audit gate CI runs on every change.
//
// Eight stages (select with --stage, default all):
//   1. Self-test: deliberately injects a storage-budget violation and checks
//      the contract layer flags it. A gate that cannot see a planted bug is
//      blind; this stage failing exits 2 and nothing else is trusted.
//   2. Static audit: instantiates every registered prefetcher kind,
//      cross-checks the two independent storage accountings (component
//      storage_bits() vs the field-by-field breakdown) against each other and
//      against the paper's hardware budget, and verifies table geometry
//      (power-of-two set counts, field bit-widths wide enough for their
//      configured values).
//   3. Replay audit: runs every kind over randomized synthetic traces with
//      all contracts armed in log-and-count mode; any violation anywhere in
//      the FT/AT/PHT pipeline, the RPT, the coordinator, the cache, or the
//      DRAM timing model fails the gate. Each replay also runs on the
//      channel-sharded parallel path (4-lane thread pool) and must produce a
//      bit-identical SimResult — the parallel engine's determinism contract
//      is part of the gate.
//   4. Chaos audit: replays every (app x kind) cell under each fault class in
//      isolation (src/fault) with contracts in kRecover mode. The gate: every
//      cell completes without abort, every violation is recovered, the
//      violation tally matches the injector's applied-fault count per the
//      class's manifestation rule, and the flagship kind reproduces the same
//      result and counters across two serial runs and a 4-thread run.
//   5. Crash audit: kills checkpointed runs at randomized record indices,
//      resumes from the on-disk snapshot, and requires the resumed result to
//      be bit-identical to the uninterrupted run for every (app x kind) cell,
//      serial and 4-thread, with and without an armed FaultPlan; damaged
//      snapshots (truncation, CRC corruption) must degrade gracefully to
//      .prev and then to a cold start, with a populated RecoveryReport.
//   6. Serve audit: drives the multi-tenant serving loop (src/serve) through
//      three legs — (a) graceful drain under backpressure with full record
//      and session accounting (zero queued records, reconciled counters);
//      (b) kill/resume drills at three seeded ticks with session drills and
//      in-simulator faults armed, requiring byte-identical per-session
//      outcomes, fleet summaries and counters versus the uninterrupted
//      serve, at 1 and 4 threads; (c) a chaos soak with all six fault
//      classes armed per tenant (FaultPlan::for_session) in recover mode,
//      requiring every violation recovered and a bounded peak-RSS delta
//      (the RSS gate is skipped under ASan, whose shadow memory dwarfs it).
//   7. Storm audit: seeded storage-fault drills through the src/io VFS shim.
//      Every write-side fault class (EIO, ENOSPC mid-write, torn write,
//      rename failure, fsync loss) and read-side class (EIO, bit rot) is
//      armed in isolation against the snapshot envelope, the checkpoint
//      recovery chain (current -> .prev -> cold start), scrub/repair with
//      exact quarantine accounting, and the serving loop's degraded
//      checkpoint ledger (ckpt_attempted == ckpt_written + ckpt_degraded
//      with drain reconciliation intact under injected ENOSPC). The gate:
//      results stay bit-identical or cleanly cold-started — a damaged
//      envelope may be lost, never silently believed.
//   8. Lint audit: runs planaria-lint (tools/lint) over the source tree this
//      binary was built from — layering DAG, determinism bans, snapshot
//      pairing/round-trip coverage, contract coverage, hygiene, and the
//      interprocedural race-* / hot-* families (DESIGN.md §13). Any
//      unsuppressed finding fails the gate.
//
// Exit codes: 0 = clean, 1 = an audit check failed, 2 = self-test failed.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "check/contract.hpp"
#include "common/rng.hpp"
#include "lint/lint.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "core/storage.hpp"
#include "core/storage_layout.hpp"
#include "fault/fault.hpp"
#include "io/vfs.hpp"
#include "serve/serve.hpp"
#include "sim/checkpoint.hpp"
#include "snapshot/snapshot.hpp"
#include "sim/simulator.hpp"
#include "trace/apps.hpp"
#include "trace/generator.hpp"

namespace {

using planaria::Cycle;
using planaria::kBlocksPerSegment;
using planaria::kChannels;
using planaria::StatSet;
namespace check = planaria::check;
namespace core = planaria::core;
namespace fault = planaria::fault;
namespace io = planaria::io;
namespace serve = planaria::serve;
namespace snapshot = planaria::snapshot;
namespace layout = planaria::core::layout;
namespace sim = planaria::sim;
namespace trace = planaria::trace;

int g_failures = 0;

bool expect(bool ok, const std::string& what) {
  std::printf("  %-5s %s\n", ok ? "ok" : "FAIL", what.c_str());
  if (!ok) ++g_failures;
  return ok;
}

/// Allow measurement slack above the paper's synthesis number: the default
/// reproduction configuration lands a few percent under it, and a config
/// drifting past this bound has outgrown the hardware the paper costed.
constexpr double kBudgetSlack = 1.05;

/// Exact (bit-identical) SimResult comparison for the determinism stages:
/// SimResult::operator== is defaulted memberwise equality, doubles compared
/// with == on purpose — the contract is bit-identity, not numeric tolerance.
bool results_identical(const sim::SimResult& a, const sim::SimResult& b) {
  return a == b;
}

/// The storage contract applied to one configuration: the field-by-field
/// breakdown must equal the component accounting bit for bit, and the
/// 4-channel total must stay inside the paper's budget.
void audit_storage(const core::StorageBreakdown& breakdown,
                   std::uint64_t component_bits_per_channel) {
  PLANARIA_ENSURE_MSG(
      kStorageBudget,
      breakdown.per_channel_bits() == component_bits_per_channel,
      "storage breakdown disagrees with the component accounting");
  PLANARIA_ENSURE_MSG(
      kStorageBudget,
      breakdown.total_kb(kChannels) <= layout::kPaperBudgetKb * kBudgetSlack,
      "metadata storage exceeds the paper's hardware budget");
}

/// Stage 1: the gate must notice a planted one-bit-per-entry drift.
bool self_test() {
  std::printf("self-test: injected storage-budget violation\n");
  const core::PlanariaConfig config;
  const std::uint64_t honest_bits =
      core::PlanariaPrefetcher(config).storage_bits();

  check::CountingScope scope;
  check::reset_violations();

  core::StorageBreakdown drifted = core::planaria_storage(config);
  drifted.items.front().bits_per_entry += 1;  // the planted bug
  audit_storage(drifted, honest_bits);

  const bool detected =
      check::violation_count(check::Category::kStorageBudget) > 0;
  expect(detected, "planted one-bit FT drift is detected");
  check::reset_violations();
  return detected;
}

/// Stage 2 helper: storage cross-check for one Planaria-family config.
void audit_planaria_storage(const std::string& label,
                            const core::PlanariaConfig& config) {
  const std::uint64_t before = check::total_violations();
  audit_storage(core::planaria_storage(config),
                core::PlanariaPrefetcher(config).storage_bits());
  char budget[32];
  std::snprintf(budget, sizeof budget, "%.1f", layout::kPaperBudgetKb);
  expect(check::total_violations() == before,
         label + ": breakdown == component bits and within " + budget +
             "KB budget");
}

void static_audit() {
  std::printf("static audit: registered configurations\n");
  check::CountingScope scope;
  check::reset_violations();

  // Geometry of the default configuration. validate() throws on violations
  // (non-power-of-two set counts, field overflow), so surviving it is the
  // check; the contracts below catch what validate() cannot see.
  const core::PlanariaConfig planaria_config;
  const sim::SimConfig sim_config;
  bool geometry_ok = true;
  try {
    planaria_config.validate();
    sim_config.validate();
  } catch (const std::exception& e) {
    std::printf("  default config rejected: %s\n", e.what());
    geometry_ok = false;
  }
  expect(geometry_ok, "default configs pass validate()");

  const auto sets = sim_config.cache.sets();
  expect(sets != 0 && (sets & (sets - 1)) == 0,
         "cache slice set count is a power of two");
  expect(planaria_config.slp.at_timeout <
             (Cycle{1} << layout::kAtTimeBits),
         "AT timeout fits the 20-bit last-access time field");
  expect(planaria_config.tlp.min_common_bits <= kBlocksPerSegment,
         "TLP similarity floor fits the 16-bit bitmap");

  // Field widths: the breakdown must carry exactly the documented widths.
  const auto breakdown = core::planaria_storage(planaria_config);
  bool widths_ok = breakdown.items.size() == 4 &&
                   breakdown.items[0].bits_per_entry == layout::kFtEntryBits &&
                   breakdown.items[1].bits_per_entry == layout::kAtEntryBits &&
                   breakdown.items[2].bits_per_entry == layout::kPtEntryBits &&
                   breakdown.items[3].bits_per_entry ==
                       layout::rpt_entry_bits(static_cast<std::uint64_t>(
                           planaria_config.tlp.rpt_entries));
  expect(widths_ok, "breakdown entry widths match storage_layout.hpp");

  // Storage contracts for each Planaria family member.
  audit_planaria_storage("planaria", planaria_config);
  core::PlanariaConfig slp_only = planaria_config;
  slp_only.enable_tlp = false;
  audit_planaria_storage("planaria-slp", slp_only);
  core::PlanariaConfig tlp_only = planaria_config;
  tlp_only.enable_slp = false;
  audit_planaria_storage("planaria-tlp", tlp_only);

  // Every registered kind instantiates and reports sane metadata storage
  // (prefetcher metadata must stay far below the cache it serves).
  const std::uint64_t sc_slice_bits = sim_config.cache.size_bytes * 8;
  for (sim::PrefetcherKind kind : sim::all_prefetcher_kinds()) {
    const auto pf = sim::make_prefetcher_factory(kind)(0);
    const std::uint64_t bits = pf->storage_bits();
    expect(pf->name() != nullptr && bits < sc_slice_bits,
           std::string(sim::prefetcher_kind_name(kind)) + ": instantiates, " +
               std::to_string(bits) + " metadata bits < 1MB SC slice");
  }

  expect(check::total_violations() == 0,
         "no contract violations during the static audit");
  check::reset_violations();
}

/// One calibrated app plus one deliberately noisy randomized profile: the
/// calibrated stream exercises the learned-pattern paths, the randomized one
/// pushes occupancy/eviction corners the calibrated mixes rarely reach.
/// Shared by the replay and chaos stages.
std::vector<trace::AppProfile> audit_profiles(std::uint64_t seed) {
  trace::AppProfile fuzz = trace::paper_apps().front();
  fuzz.name = "fuzz";
  fuzz.seed = seed;
  fuzz.weight_irregular = 0.4;
  fuzz.weight_footprint = 0.3;
  fuzz.weight_neighbor = 0.2;
  fuzz.weight_stream = 0.1;
  fuzz.burstiness = 0.6;
  fuzz.footprint.mutate_p = 0.3;
  fuzz.neighbor.new_page_rate = 0.8;
  return {trace::paper_apps().front(), fuzz};
}

void replay_audit(std::uint64_t records, std::uint64_t seed) {
  std::printf("replay audit: %llu records/app, all kinds, contracts armed\n",
              static_cast<unsigned long long>(records));
  check::CountingScope scope;
  check::reset_violations();

  const std::vector<trace::AppProfile> profiles = audit_profiles(seed);
  planaria::common::ThreadPool pool(4);
  // Profile-level parallel generation (deterministic: each profile owns its
  // seeds); also exercises the generator under the pool for the TSan build.
  const auto traces = trace::generate_app_traces(profiles, records, &pool);
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    const auto& app = profiles[p];
    const auto& trace_records = traces[p];
    for (sim::PrefetcherKind kind : sim::all_prefetcher_kinds()) {
      const std::uint64_t before = check::total_violations();
      const auto result =
          sim::Simulator::run(sim::SimConfig{}, sim::make_prefetcher_factory(kind),
                              sim::prefetcher_kind_name(kind), trace_records);
      expect(check::total_violations() == before &&
                 result.demand_reads + result.demand_writes ==
                     trace_records.size(),
             app.name + " x " + result.prefetcher + ": replay clean");

      // Parallel path: same trace through the channel-sharded engine on a
      // thread pool must replay clean AND bit-identical to the serial run.
      const std::uint64_t before_par = check::total_violations();
      const auto par = sim::Simulator::run(
          sim::SimConfig{}, sim::make_prefetcher_factory(kind),
          sim::prefetcher_kind_name(kind), trace_records, &pool);
      expect(check::total_violations() == before_par &&
                 results_identical(result, par),
             app.name + " x " + result.prefetcher +
                 ": parallel replay clean and bit-identical");
    }
  }

  StatSet stats;
  check::export_violations(stats);
  for (const auto& [name, value] : stats.dump()) {
    std::printf("  %-50s %.0f\n", name.c_str(), value);
  }
  expect(check::total_violations() == 0,
         "no contract violations across all replays");
  check::reset_violations();
}

/// Injection rate per fault class, tuned so a 20k-record replay applies a
/// meaningful number of each fault without drowning the simulation.
double chaos_rate(fault::FaultClass fault_class) {
  switch (fault_class) {
    case fault::FaultClass::kTraceCorruption: return 0.002;
    case fault::FaultClass::kSlpPatternFlip: return 0.01;
    case fault::FaultClass::kTlpPatternFlip: return 0.01;
    case fault::FaultClass::kPrefetchDrop: return 0.05;
    case fault::FaultClass::kPrefetchDelay: return 0.05;
    case fault::FaultClass::kDramStall: return 0.001;
    case fault::FaultClass::kCount: break;
  }
  return 0.0;
}

/// Everything one chaos cell produces: the simulation result plus the
/// contract-layer tallies accumulated during that run.
struct ChaosOutcome {
  sim::SimResult result;
  std::uint64_t violations = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t timing_violations = 0;
  std::uint64_t occupancy_violations = 0;
};

ChaosOutcome run_chaos_cell(const sim::SimConfig& config,
                            sim::PrefetcherKind kind,
                            const std::vector<trace::TraceRecord>& records,
                            planaria::common::ThreadPool* pool) {
  check::reset_violations();
  check::reset_recoveries();
  ChaosOutcome o;
  o.result =
      sim::Simulator::run(config, sim::make_prefetcher_factory(kind),
                          sim::prefetcher_kind_name(kind), records, pool);
  o.violations = check::total_violations();
  o.recoveries = check::total_recoveries();
  o.timing_violations =
      check::violation_count(check::Category::kTimingMonotonicity);
  o.occupancy_violations =
      check::violation_count(check::Category::kTableOccupancy);
  return o;
}

/// The per-class manifestation rule the chaos gate asserts. Trace corruption
/// regresses an arrival strictly, so it fires the time-order contract exactly
/// once per applied fault. An SLP flip only manifests when it drags a pattern
/// below the promotion threshold AND the page triggers an issue before the
/// entry is relearned, hence <=. The remaining classes shift timing or drop
/// work without breaking any structural invariant, so they must stay silent.
bool chaos_counters_ok(fault::FaultClass fault_class, const ChaosOutcome& o) {
  if (o.recoveries != o.violations) return false;
  switch (fault_class) {
    case fault::FaultClass::kTraceCorruption:
      return o.violations == o.timing_violations &&
             o.timing_violations == o.result.fault_trace_corruptions;
    case fault::FaultClass::kSlpPatternFlip:
      return o.violations == o.occupancy_violations &&
             o.occupancy_violations <= o.result.fault_slp_flips;
    default:
      return o.violations == 0;
  }
}

void chaos_audit(std::uint64_t records, std::uint64_t seed) {
  std::printf(
      "chaos audit: %llu records/app, every kind x fault class, recover mode\n",
      static_cast<unsigned long long>(records));

  const std::vector<trace::AppProfile> profiles = audit_profiles(seed);
  planaria::common::ThreadPool pool(4);
  const auto traces = trace::generate_app_traces(profiles, records, &pool);

  // kRecover for the whole stage: a violation under chaos is expected and
  // must be recovered, not aborted on. Counters are reset per cell inside
  // run_chaos_cell, so the scope only sets the mode.
  check::RecoveryScope scope;

  for (int c = 0; c < fault::kFaultClassCount; ++c) {
    const auto fault_class = static_cast<fault::FaultClass>(c);
    sim::SimConfig config;
    config.fault =
        fault::FaultPlan::single(fault_class, chaos_rate(fault_class), seed);

    for (std::size_t p = 0; p < profiles.size(); ++p) {
      const auto& app = profiles[p];
      const auto& trace_records = traces[p];
      for (sim::PrefetcherKind kind : sim::all_prefetcher_kinds()) {
        const auto o = run_chaos_cell(config, kind, trace_records, nullptr);
        const std::string cell = app.name + " x " +
                                 sim::prefetcher_kind_name(kind) + " / " +
                                 fault::fault_class_name(fault_class);
        const bool complete = o.result.demand_reads + o.result.demand_writes ==
                              trace_records.size();
        if (!expect(complete && chaos_counters_ok(fault_class, o),
                    cell + ": completes, counters reconcile (" +
                        std::to_string(o.result.fault_injected_total) +
                        " injected, " + std::to_string(o.violations) +
                        " violations, " + std::to_string(o.recoveries) +
                        " recoveries)")) {
          continue;
        }

        // Determinism leg, flagship kind only (cost): the same seed must
        // reproduce the identical result — fault counters included — on a
        // second serial run and on the 4-thread channel-sharded path.
        if (kind != sim::PrefetcherKind::kPlanaria) continue;
        // The flagship must actually exercise the armed class (vacuous
        // counter equalities don't gate anything); skip the floor only for
        // tiny --records smoke runs.
        if (records >= 5000) {
          expect(o.result.fault_injected_total > 0,
                 cell + ": armed class injected at least one fault");
        }
        const auto again =
            run_chaos_cell(config, kind, trace_records, nullptr);
        const auto threaded =
            run_chaos_cell(config, kind, trace_records, &pool);
        expect(results_identical(o.result, again.result) &&
                   o.violations == again.violations &&
                   o.recoveries == again.recoveries,
               cell + ": second run reproduces result and counters");
        expect(results_identical(o.result, threaded.result) &&
                   o.violations == threaded.violations &&
                   o.recoveries == threaded.recoveries,
               cell + ": 4-thread run reproduces result and counters");
      }
    }
  }
  check::reset_violations();
  check::reset_recoveries();
}

/// In-process crash model for the crash-recovery audit. Drives a simulator
/// exactly the way run_checkpointed would — full `every`-record chunks with a
/// checkpoint after each — then feeds the partial chunk past the last
/// checkpoint WITHOUT checkpointing and abandons the instance (finish() is
/// never called). That is what SIGKILL at record `kill_at` leaves behind: a
/// last-good snapshot on disk, all in-memory progress since it lost.
void crash_at(const sim::SimConfig& config, sim::PrefetcherKind kind,
              const std::vector<trace::TraceRecord>& records,
              const sim::CheckpointConfig& ckpt, std::uint64_t kill_at,
              std::uint64_t fingerprint, planaria::common::ThreadPool* pool) {
  sim::Simulator doomed(config, sim::make_prefetcher_factory(kind),
                        sim::prefetcher_kind_name(kind));
  std::uint64_t cursor = 0;
  while (cursor + ckpt.every <= kill_at) {
    doomed.run_sharded(records.data() + cursor,
                       records.data() + cursor + ckpt.every, pool);
    cursor += ckpt.every;
    sim::write_checkpoint(doomed, ckpt, cursor, fingerprint);
  }
  if (cursor < kill_at) {
    doomed.run_sharded(records.data() + cursor, records.data() + kill_at,
                       pool);
  }
}

void scrub_snapshots(const sim::CheckpointConfig& ckpt) {
  std::error_code ec;
  std::filesystem::remove(ckpt.current_path(), ec);
  std::filesystem::remove(ckpt.prev_path(), ec);
}

/// Flips one payload byte in a snapshot file; the envelope CRC must catch it.
void corrupt_snapshot(const std::string& path) {
  // lint: suppress(io-raw-stream) this drill damages bytes in place on purpose; the VFS refuses to author torn envelopes
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(40);  // past the 24-byte envelope header, inside the payload
  char byte = 0;
  f.get(byte);
  f.seekp(40);
  f.put(static_cast<char>(byte ^ 0x40));
}

/// Stage 5: crash-recovery audit. For every (app x kind) cell, kill the run
/// at randomized record indices (deterministic xoshiro streams), restart from
/// the on-disk snapshot via run_checkpointed, and require the resumed
/// SimResult to be bit-identical to the uninterrupted run — serial and
/// 4-thread, zero-fault and with an armed FaultPlan. Then, on the flagship
/// kind, damage the snapshots on purpose (truncation, CRC corruption, both
/// generations) and require graceful degradation: fall back to .prev, else
/// cold start, with a populated RecoveryReport — never a crash, never a
/// silently wrong result.
void crash_audit(std::uint64_t records, std::uint64_t seed) {
  std::printf(
      "crash audit: %llu records/app, kill/resume every kind, "
      "bit-identical gate\n",
      static_cast<unsigned long long>(records));
  // Recover mode for the whole stage: the armed-fault legs deliberately fire
  // the time-order contract (trace corruption), which must recover, not
  // abort. The closing gate requires every violation to have been recovered.
  check::RecoveryScope scope;
  check::reset_violations();
  check::reset_recoveries();

  const std::vector<trace::AppProfile> profiles = audit_profiles(seed);
  planaria::common::ThreadPool pool(4);
  const auto traces = trace::generate_app_traces(profiles, records, &pool);

  sim::CheckpointConfig ckpt;
  std::error_code ec;
  const auto dir =
      std::filesystem::temp_directory_path() / "planaria-crash-audit";
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir, ec);
  ckpt.dir = dir.string();
  // A deliberately trace-misaligned interval so kills land both before the
  // first checkpoint (cold-start resume) and between later ones.
  ckpt.every = std::max<std::uint64_t>(1, records / 7);
  ckpt.label = "audit";

  // Armed leg: timing-shifting classes plus trace corruption, so the resumed
  // run must reproduce the injector streams and the recovery path mid-flight.
  fault::FaultPlan armed;
  armed.seed = seed;
  armed.rate[static_cast<int>(fault::FaultClass::kTraceCorruption)] = 0.002;
  armed.rate[static_cast<int>(fault::FaultClass::kPrefetchDrop)] = 0.05;
  armed.rate[static_cast<int>(fault::FaultClass::kDramStall)] = 0.001;

  std::uint64_t cell_index = 0;
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    const auto& app = profiles[p];
    const auto& trace_records = traces[p];
    const std::uint64_t n = trace_records.size();
    if (n < 2) continue;
    const std::uint64_t fingerprint = sim::trace_fingerprint(trace_records);
    for (sim::PrefetcherKind kind : sim::all_prefetcher_kinds()) {
      for (const bool with_faults : {false, true}) {
        sim::SimConfig config;
        if (with_faults) config.fault = armed;
        for (planaria::common::ThreadPool* cell_pool :
             {static_cast<planaria::common::ThreadPool*>(nullptr), &pool}) {
          const std::string cell =
              app.name + " x " + sim::prefetcher_kind_name(kind) +
              (with_faults ? " / faults" : "") +
              (cell_pool != nullptr ? " / 4-thread" : " / serial");
          scrub_snapshots(ckpt);
          const auto base = sim::Simulator::run(
              config, sim::make_prefetcher_factory(kind),
              sim::prefetcher_kind_name(kind), trace_records, cell_pool);

          planaria::Rng kills(seed ^ (++cell_index * 0x9E3779B97F4A7C15ull));
          bool identical = true;
          bool outcomes_ok = true;
          for (int drill = 0; drill < 3; ++drill) {
            scrub_snapshots(ckpt);
            const std::uint64_t kill_at = 1 + kills.next_below(n - 1);
            crash_at(config, kind, trace_records, ckpt, kill_at, fingerprint,
                     cell_pool);
            sim::RecoveryReport rep;
            const auto resumed = sim::run_checkpointed(
                config, sim::make_prefetcher_factory(kind),
                sim::prefetcher_kind_name(kind), trace_records, ckpt,
                cell_pool, &rep);
            identical = identical && resumed == base;
            // A kill past the first boundary must resume from the snapshot;
            // an earlier kill finds no snapshot and cold-starts quietly.
            const std::uint64_t expect_cursor =
                kill_at / ckpt.every * ckpt.every;
            outcomes_ok =
                outcomes_ok &&
                (expect_cursor > 0
                     ? rep.outcome == sim::RecoveryReport::Outcome::kResumed &&
                           rep.resumed_cursor == expect_cursor
                     : rep.outcome ==
                           sim::RecoveryReport::Outcome::kColdStart) &&
                rep.notes.empty();
          }
          expect(identical && outcomes_ok,
                 cell + ": 3 kill/resume drills bit-identical");
        }
      }
    }
  }

  // Corruption drills (flagship kind, serial, zero-fault): damage the
  // snapshot generations on purpose and require graceful degradation.
  const auto& flagship_records = traces[0];
  const std::uint64_t n = flagship_records.size();
  const std::uint64_t kill_at = 3 * ckpt.every;  // leaves .snap and .prev
  if (kill_at < n) {
    const std::uint64_t fingerprint =
        sim::trace_fingerprint(flagship_records);
    const sim::SimConfig config;
    const auto kind = sim::PrefetcherKind::kPlanaria;
    const auto base = sim::Simulator::run(
        config, sim::make_prefetcher_factory(kind),
        sim::prefetcher_kind_name(kind), flagship_records, nullptr);
    const auto drill = [&](const char* what, auto&& damage,
                           sim::RecoveryReport::Outcome want,
                           std::size_t want_notes) {
      scrub_snapshots(ckpt);
      crash_at(config, kind, flagship_records, ckpt, kill_at, fingerprint,
               nullptr);
      damage();
      sim::RecoveryReport rep;
      const auto resumed = sim::run_checkpointed(
          config, sim::make_prefetcher_factory(kind),
          sim::prefetcher_kind_name(kind), flagship_records, ckpt, nullptr,
          &rep);
      expect(resumed == base && rep.outcome == want &&
                 rep.notes.size() == want_notes,
             std::string("corruption drill: ") + what + " -> " +
                 sim::recovery_outcome_name(want) + ", bit-identical");
    };
    drill("truncated current snapshot",
          [&] {
            std::filesystem::resize_file(
                ckpt.current_path(),
                std::filesystem::file_size(ckpt.current_path()) / 2);
          },
          sim::RecoveryReport::Outcome::kFellBack, 1);
    drill("CRC-corrupt current snapshot",
          [&] { corrupt_snapshot(ckpt.current_path()); },
          sim::RecoveryReport::Outcome::kFellBack, 1);
    drill("both generations corrupt",
          [&] {
            corrupt_snapshot(ckpt.current_path());
            std::filesystem::resize_file(ckpt.prev_path(), 10);
          },
          sim::RecoveryReport::Outcome::kColdStart, 2);
  }

  expect(check::total_recoveries() == check::total_violations(),
         "every contract violation during crash drills was recovered");
  std::filesystem::remove_all(dir, ec);
  check::reset_violations();
  check::reset_recoveries();
}

// ---------------------------------------------------------------------------
// Stage 6: serve audit (multi-tenant serving loop, src/serve)
// ---------------------------------------------------------------------------

/// Peak RSS high-water mark in bytes, 0 where unavailable.
std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

constexpr bool asan_enabled() {
#if defined(__SANITIZE_ADDRESS__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

/// A mixed fleet: three apps, two prefetcher kinds, two device labels, so
/// every GroupedSummary key path is exercised.
std::vector<serve::SessionSpec> audit_fleet(std::size_t n,
                                            std::uint64_t seed) {
  const char* apps[] = {"HoK", "Fort", "TikT"};
  const char* devices[] = {"phone", "tablet"};
  std::vector<serve::SessionSpec> fleet;
  for (std::size_t i = 0; i < n; ++i) {
    serve::SessionSpec spec;
    spec.app = apps[i % 3];
    spec.kind = i % 2 == 0 ? sim::PrefetcherKind::kPlanaria
                           : sim::PrefetcherKind::kStride;
    spec.user_seed = seed + i;
    spec.device = devices[i % 2];
    fleet.push_back(spec);
  }
  return fleet;
}

/// Terminal-state partition and record conservation for a finished server.
bool serve_counters_reconcile(const serve::SessionServer& server) {
  const serve::ServeCounters& c = server.counters();
  return c.submitted == c.admitted + c.sessions_rejected &&
         c.admitted == c.sessions_completed + c.sessions_drained +
                           c.sessions_shed_retry + c.sessions_shed_deadline &&
         c.ingested_records == c.fed_records + c.shed_queued_records &&
         server.queued_records() == 0;
}

void serve_audit(std::uint64_t records, std::uint64_t seed) {
  std::printf(
      "serve audit: serving loop — drain, kill/resume x threads, chaos "
      "soak\n");
  // Session drills deliberately interrupt quanta; armed in-simulator fault
  // classes fire contract violations that must recover, not abort.
  check::RecoveryScope scope;
  check::reset_violations();
  check::reset_recoveries();

  const std::uint64_t per_session = std::max<std::uint64_t>(records / 4, 2000);
  serve::ServeConfig base;
  base.records_per_session = per_session;
  base.max_live_sessions = 4;
  base.queue_capacity = 1024;
  base.ingest_per_tick = 512;
  base.quantum_records = 256;
  base.drill_seed = seed;

  // Leg (a): graceful drain under backpressure. A drain requested mid-serve
  // must reject every pending session, flush every queued record, finalize
  // partial results, and leave the accounting identities intact.
  {
    serve::ServeConfig config = base;
    config.max_live_sessions = 2;    // force admission defers + rejections
    config.queue_capacity = 256;     // force ingest defers
    config.quantum_records = 64;     // queue drains slower than it fills
    serve::SessionServer server(config, 1);
    server.add_fleet(audit_fleet(6, seed));
    for (int i = 0; i < 4; ++i) server.tick();
    server.request_drain();
    server.serve();
    const serve::ServeCounters& c = server.counters();
    expect(server.finished() && server.queued_records() == 0,
           "drain: queues flushed to zero");
    expect(c.sessions_rejected == 4 && c.sessions_drained == 2,
           "drain: pending sessions rejected, live sessions drained (" +
               std::to_string(c.sessions_rejected) + " rejected, " +
               std::to_string(c.sessions_drained) + " drained)");
    expect(c.admission_defers > 0 && c.ingest_defers > 0,
           "drain: backpressure was exercised and counted (" +
               std::to_string(c.admission_defers) + " admission, " +
               std::to_string(c.ingest_defers) + " ingest defers)");
    expect(serve_counters_reconcile(server),
           "drain: record and session accounting reconciles");
  }

  // Leg (b): kill/resume drills. One uninterrupted reference serve, then
  // three seeded kill ticks x {1, 4} threads, each killed server abandoned
  // mid-tick-loop and a fresh server resumed from its checkpoints. Every
  // resumed serve must finish byte-identical — per-session outcomes (their
  // SimResults compared with defaulted operator==, doubles included), the
  // fleet summaries, and the full counter block.
  {
    std::error_code ec;
    const auto root =
        std::filesystem::temp_directory_path() / "planaria-serve-audit";
    std::filesystem::remove_all(root, ec);

    serve::ServeConfig config = base;
    config.session_fault_rate = 0.05;  // drills armed during the kill matrix
    config.max_attempts = 64;          // drills delay, never shed
    config.sim.fault.rate[static_cast<int>(
        fault::FaultClass::kTraceCorruption)] = 0.001;
    config.sim.fault.rate[static_cast<int>(fault::FaultClass::kDramStall)] =
        0.001;
    config.sim.fault.seed = seed;
    config.checkpoint_every_ticks = 3;

    const auto serve_dir = [&](const std::string& name) {
      const auto dir = root / name;
      std::filesystem::create_directories(dir, ec);
      return dir.string();
    };

    serve::ServeConfig ref_config = config;
    ref_config.checkpoint_dir = serve_dir("reference");
    serve::SessionServer reference(ref_config, 1);
    reference.add_fleet(audit_fleet(8, seed));
    reference.serve();
    expect(serve_counters_reconcile(reference) &&
               reference.counters().sessions_completed == 8,
           "kill/resume: uninterrupted reference completes all sessions");

    planaria::Rng kill_rng(seed ^ 0x5E55'A0D1ull);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      for (int drill = 0; drill < 3; ++drill) {
        // Kill somewhere in the first ~3/4 of the reference's tick span so
        // every drill leaves real work to redo after resume.
        const std::uint64_t span = reference.current_tick();
        const std::uint64_t kill_tick =
            1 + kill_rng.next_below(std::max<std::uint64_t>(span * 3 / 4, 2));
        serve::ServeConfig drill_config = config;
        drill_config.checkpoint_dir = serve_dir(
            "drill-" + std::to_string(threads) + "-" + std::to_string(drill));
        {
          serve::SessionServer victim(drill_config, threads);
          victim.add_fleet(audit_fleet(8, seed));
          for (std::uint64_t t = 0; t < kill_tick && victim.tick(); ++t) {
          }
        }  // destruction without drain or final checkpoint IS the kill
        serve::SessionServer resumed(drill_config, threads);
        resumed.add_fleet(audit_fleet(8, seed));
        resumed.serve();
        const std::string label = "kill/resume: tick " +
                                  std::to_string(kill_tick) + ", " +
                                  std::to_string(threads) + " thread(s)";
        expect(resumed.outcomes() == reference.outcomes(),
               label + " — per-session outcomes byte-identical");
        expect(resumed.summary() == reference.summary(),
               label + " — fleet summaries byte-identical");
        expect(resumed.counters() == reference.counters(),
               label + " — counters byte-identical");
        expect(resumed.recovery().resumed || kill_tick < 3,
               label + " — resume path actually engaged");
      }
    }
    std::filesystem::remove_all(root, ec);
  }

  // Leg (c): chaos soak. All six fault classes armed per tenant through
  // FaultPlan::for_session, plus serving-loop drills, over a fleet larger
  // than the admission budget. The gate: every session still completes,
  // every contract violation is recovered, the accounting reconciles, and
  // the soak's peak-RSS growth stays bounded (sessions must release their
  // trace/simulator state as they retire).
  {
    const std::uint64_t rss_before = peak_rss_bytes();
    serve::ServeConfig config = base;
    config.session_fault_rate = 0.02;
    config.max_attempts = 64;
    config.sim.fault.seed = seed ^ 0xC4A05;
    for (int c = 0; c < fault::kFaultClassCount; ++c) {
      config.sim.fault.rate[c] =
          chaos_rate(static_cast<fault::FaultClass>(c));
    }
    serve::SessionServer server(config, 4);
    server.add_fleet(audit_fleet(12, seed ^ 1));
    server.serve();
    const serve::ServeCounters& c = server.counters();
    expect(c.sessions_completed == 12,
           "soak: all 12 sessions complete under all six fault classes (" +
               std::to_string(c.drills_injected) + " drills, " +
               std::to_string(c.backoff_events) + " backoffs)");
    expect(serve_counters_reconcile(server),
           "soak: record and session accounting reconciles");
    expect(check::total_recoveries() == check::total_violations(),
           "soak: every contract violation was recovered (" +
               std::to_string(check::total_violations()) + " violations)");
    const std::uint64_t rss_after = peak_rss_bytes();
    constexpr std::uint64_t kSoakRssCeiling = 768ull << 20;
    if (asan_enabled() || rss_before == 0) {
      std::printf("  skip  soak: peak-RSS ceiling (sanitizer build or no "
                  "rusage)\n");
    } else {
      expect(rss_after - rss_before < kSoakRssCeiling,
             "soak: peak-RSS growth " +
                 std::to_string((rss_after - rss_before) >> 20) +
                 "MB stays under " +
                 std::to_string(kSoakRssCeiling >> 20) + "MB");
    }
  }

  check::reset_violations();
  check::reset_recoveries();
}

// ---------------------------------------------------------------------------
// Stage 7: storm audit (storage-fault drills through the src/io VFS)
// ---------------------------------------------------------------------------

/// Seeded junk payload for the envelope-torture leg; every trial writes a
/// distinct image so a stale generation can never masquerade as a fresh one.
std::vector<std::uint8_t> storm_payload(std::uint64_t seed, std::size_t size) {
  planaria::Rng rng(seed);
  std::vector<std::uint8_t> bytes(size);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_below(256));
  return bytes;
}

/// crash_at with a storage storm blowing: checkpoint writes may fail under
/// the armed shim, and a real checkpointed run degrades (counts the loss,
/// keeps simulating) instead of dying — so the doomed instance does the same.
/// Returns how many checkpoints the storm swallowed outright; torn/fsync-loss
/// damage "succeeds" here and is only caught by the resume-side CRC.
std::uint64_t storm_crash_at(const sim::SimConfig& config,
                             sim::PrefetcherKind kind,
                             const std::vector<trace::TraceRecord>& records,
                             const sim::CheckpointConfig& ckpt,
                             std::uint64_t kill_at,
                             std::uint64_t fingerprint) {
  sim::Simulator doomed(config, sim::make_prefetcher_factory(kind),
                        sim::prefetcher_kind_name(kind));
  std::uint64_t lost = 0;
  std::uint64_t cursor = 0;
  while (cursor + ckpt.every <= kill_at) {
    doomed.run_sharded(records.data() + cursor,
                       records.data() + cursor + ckpt.every, nullptr);
    cursor += ckpt.every;
    try {
      sim::write_checkpoint(doomed, ckpt, cursor, fingerprint);
    } catch (const snapshot::SnapshotError&) {
      ++lost;
    }
  }
  if (cursor < kill_at) {
    doomed.run_sharded(records.data() + cursor, records.data() + kill_at,
                       nullptr);
  }
  return lost;
}

void storm_remove_generations(const sim::CheckpointConfig& ckpt) {
  for (const std::string& path : {ckpt.current_path(), ckpt.prev_path()}) {
    io::remove_file(path);
    io::remove_file(path + ".quarantine");
  }
}

/// Stage 7: storm audit. Leg (a) tortures the snapshot envelope itself: for
/// every io fault class in isolation, a run of seeded write/read drills must
/// end each trial in exactly one of three states — the new payload read back
/// byte-identical, a *detected* failure (IoError on the write, SnapshotError
/// on the read-back), or the previous complete generation still in place.
/// A read that returns wrong bytes without throwing is the one outcome that
/// fails the gate: zero silent corruption. Leg (b) drives the checkpoint
/// recovery chain under each storm class: kill a checkpointed run mid-flight
/// with the shim armed, resume clean, and require the resumed result to be
/// bit-identical to the uninterrupted run whether recovery lands on current,
/// .prev, or a cold start; read-side storms (EIO, bit rot) at rate 1.0 must
/// degrade to a cold start with both rejections documented. Leg (c) checks
/// scrub/repair bookkeeping to the exact count, quarantine files included.
/// Leg (d) serves a fleet under injected ENOSPC: every session completes,
/// drain accounting reconciles, and the degraded-checkpoint ledger balances.
void storm_audit(std::uint64_t records, std::uint64_t seed) {
  std::printf(
      "storm audit: %llu records, seeded storage faults over every write "
      "site\n",
      static_cast<unsigned long long>(records));

  std::error_code ec;
  const auto dir =
      std::filesystem::temp_directory_path() / "planaria-storm-audit";
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir, ec);

  // Leg (a): envelope torture, one class at a time.
  {
    const std::string path = (dir / "torture.snap").string();
    for (int c = 0; c < io::kIoFaultClassCount; ++c) {
      const auto fault_class = static_cast<io::IoFaultClass>(c);
      io::remove_file(path);
      io::remove_file(path + ".tmp");
      io::IoFaultInjector shim(
          io::IoFaultPlan::single(fault_class, 0.6, seed ^ (0x570B + c)));
      io::ScopedFaultInjector arm(&shim);
      std::vector<std::uint8_t> good;  // last payload fully on disk
      bool ok = true;
      std::uint64_t detected = 0;
      for (int t = 0; t < 32; ++t) {
        const auto payload =
            storm_payload(seed ^ (c * 131ull + t), 64 + t * 7);
        bool wrote = false;
        try {
          snapshot::write_file(path, payload);
          wrote = true;
        } catch (const snapshot::SnapshotError&) {
          ++detected;  // EIO / ENOSPC / rename failure, surfaced not dropped
        }
        try {
          const auto back = snapshot::read_file(path);
          // A read that *returns* must return a complete generation: the
          // fresh payload after a clean write, the previous one after a
          // failed write that left the old file in place.
          ok = ok && back == (wrote ? payload : good);
          if (wrote) good = payload;
        } catch (const snapshot::SnapshotError&) {
          ++detected;  // torn write, lost fsync suffix, bit rot, read EIO
        }
      }
      const bool stormed = shim.total_injected() > 0;
      expect(ok && stormed && detected >= shim.total_injected(),
             std::string(io::io_fault_class_name(fault_class)) +
                 ": 32 envelope drills, " +
                 std::to_string(shim.total_injected()) + " injected, " +
                 std::to_string(detected) +
                 " detected, zero silent corruption");
    }
  }

  // Legs (b) and (c) run against a real checkpointed simulation.
  const std::vector<trace::AppProfile> profiles = audit_profiles(seed);
  const auto traces =
      trace::generate_app_traces(profiles, records, nullptr);
  const auto& trace_records = traces[0];
  const std::uint64_t n = trace_records.size();
  sim::CheckpointConfig ckpt;
  ckpt.dir = (dir / "ckpt").string();
  std::filesystem::create_directories(ckpt.dir, ec);
  ckpt.every = std::max<std::uint64_t>(1, records / 7);
  ckpt.label = "storm";
  const std::uint64_t kill_at = 3 * ckpt.every;  // leaves .snap and .prev

  if (kill_at < n) {
    const std::uint64_t fingerprint = sim::trace_fingerprint(trace_records);
    const sim::SimConfig config;
    const auto kind = sim::PrefetcherKind::kPlanaria;
    const auto base = sim::Simulator::run(
        config, sim::make_prefetcher_factory(kind),
        sim::prefetcher_kind_name(kind), trace_records, nullptr);

    // Leg (b), write-side: storm while checkpointing, resume in calm
    // weather. Whatever the storm did to the generations, the resumed result
    // must be bit-identical — recovered from current, .prev, or a cold
    // start; damage is visible in the RecoveryReport, never in the result.
    for (const auto fault_class :
         {io::IoFaultClass::kWriteError, io::IoFaultClass::kEnospc,
          io::IoFaultClass::kTornWrite, io::IoFaultClass::kRenameFail,
          io::IoFaultClass::kFsyncLoss}) {
      storm_remove_generations(ckpt);
      std::uint64_t lost = 0;
      std::uint64_t applied = 0;
      {
        io::IoFaultInjector shim(io::IoFaultPlan::single(
            fault_class, 0.5, seed ^ (0xCA57ull + static_cast<int>(fault_class))));
        io::ScopedFaultInjector arm(&shim);
        lost = storm_crash_at(config, kind, trace_records, ckpt, kill_at,
                              fingerprint);
        applied = shim.total_injected();
      }
      sim::RecoveryReport rep;
      const auto resumed = sim::run_checkpointed(
          config, sim::make_prefetcher_factory(kind),
          sim::prefetcher_kind_name(kind), trace_records, ckpt, nullptr,
          &rep);
      // A degraded recovery must be accounted somewhere loud: either the
      // write already failed in-flight (counted in `lost` — ENOSPC and
      // rename failures leave no current at all, so resume quietly falls
      // back) or the resume rejected a damaged candidate with a note (torn
      // writes and lost fsync suffixes "succeed" and are only caught by the
      // envelope CRC at read time).
      const bool chain_ok =
          rep.outcome == sim::RecoveryReport::Outcome::kResumed
              ? true
              : !rep.notes.empty() || lost > 0;
      expect(resumed == base && chain_ok && applied > 0,
             std::string(io::io_fault_class_name(fault_class)) +
                 " storm: kill/resume bit-identical via " +
                 sim::recovery_outcome_name(rep.outcome) + " (" +
                 std::to_string(applied) + " injected, " +
                 std::to_string(lost) + " checkpoints lost)");
    }

    // Leg (b), read-side: checkpoints land intact, the *resume* reads are
    // stormed at rate 1.0 — every candidate must be rejected with a note
    // (the CRC envelope catches a single flipped bit) and the run must
    // degrade to a clean cold start, still bit-identical.
    for (const auto fault_class :
         {io::IoFaultClass::kReadError, io::IoFaultClass::kBitRot}) {
      storm_remove_generations(ckpt);
      storm_crash_at(config, kind, trace_records, ckpt, kill_at, fingerprint);
      io::IoFaultInjector shim(io::IoFaultPlan::single(
          fault_class, 1.0, seed ^ (0xB17ull + static_cast<int>(fault_class))));
      sim::RecoveryReport rep;
      std::uint64_t applied = 0;
      {
        io::ScopedFaultInjector arm(&shim);
        const auto resumed = sim::run_checkpointed(
            config, sim::make_prefetcher_factory(kind),
            sim::prefetcher_kind_name(kind), trace_records, ckpt, nullptr,
            &rep);
        applied = shim.injected(fault_class);
        expect(resumed == base &&
                   rep.outcome == sim::RecoveryReport::Outcome::kColdStart &&
                   rep.notes.size() == 2 && applied >= 2,
               std::string(io::io_fault_class_name(fault_class)) +
                   " storm at resume: both generations rejected, cold start "
                   "bit-identical");
      }
    }

    // Leg (c): scrub/repair bookkeeping to the exact count. Corrupt current,
    // scrub: the bad envelope is quarantined (never deleted) and rebuilt
    // from .prev, so resume lands on .prev's generation via a repaired
    // current — then a double-corruption scrub must quarantine both and the
    // resume must cold-start.
    {
      storm_remove_generations(ckpt);
      storm_crash_at(config, kind, trace_records, ckpt, kill_at, fingerprint);
      corrupt_snapshot(ckpt.current_path());
      const sim::ScrubReport scrub = sim::scrub_checkpoints(ckpt);
      expect(scrub.scanned == 2 && scrub.intact == 1 &&
                 scrub.quarantined == 1 && scrub.repaired == 1 &&
                 scrub.missing == 0 &&
                 scrub.scanned == scrub.intact + scrub.quarantined &&
                 io::exists(ckpt.current_path() + ".quarantine"),
             "scrub: corrupt current quarantined and repaired from .prev");
      sim::RecoveryReport rep;
      const auto resumed = sim::run_checkpointed(
          config, sim::make_prefetcher_factory(kind),
          sim::prefetcher_kind_name(kind), trace_records, ckpt, nullptr,
          &rep);
      expect(resumed == base &&
                 rep.outcome == sim::RecoveryReport::Outcome::kResumed &&
                 rep.resumed_cursor == kill_at - ckpt.every,
             "scrub: resume rides the repaired generation, bit-identical");

      storm_remove_generations(ckpt);
      storm_crash_at(config, kind, trace_records, ckpt, kill_at, fingerprint);
      corrupt_snapshot(ckpt.current_path());
      corrupt_snapshot(ckpt.prev_path());
      const sim::ScrubReport both = sim::scrub_checkpoints(ckpt);
      expect(both.scanned == 2 && both.intact == 0 && both.quarantined == 2 &&
                 both.repaired == 0 && both.missing == 0,
             "scrub: double corruption quarantines both, repairs none");
      sim::RecoveryReport cold;
      const auto restarted = sim::run_checkpointed(
          config, sim::make_prefetcher_factory(kind),
          sim::prefetcher_kind_name(kind), trace_records, ckpt, nullptr,
          &cold);
      expect(restarted == base &&
                 cold.outcome == sim::RecoveryReport::Outcome::kColdStart,
             "scrub: nothing left to repair -> clean cold start");
    }
  }

  // Leg (d): the serving loop under injected ENOSPC. Checkpoint attempts
  // degrade — they never shed a session and never crash the server — and the
  // drain ledger must balance on both identities: the session partition and
  // ckpt_attempted == ckpt_written + ckpt_degraded.
  {
    const auto root = dir / "serve";
    std::filesystem::create_directories(root, ec);
    serve::ServeConfig config;
    config.records_per_session = std::max<std::uint64_t>(records / 4, 2000);
    config.max_live_sessions = 4;
    config.queue_capacity = 1024;
    config.ingest_per_tick = 512;
    config.quantum_records = 256;
    config.drill_seed = seed;
    config.checkpoint_every_ticks = 2;
    config.checkpoint_dir = root.string();
    io::IoFaultInjector shim(io::IoFaultPlan::single(
        io::IoFaultClass::kEnospc, 0.3, seed ^ 0x5707));
    io::ScopedFaultInjector arm(&shim);
    serve::SessionServer server(config, 1);
    server.add_fleet(audit_fleet(8, seed));
    server.serve();
    const serve::ServeCounters& c = server.counters();
    expect(c.sessions_completed == 8,
           "storm serve: all 8 sessions complete under ENOSPC");
    expect(serve_counters_reconcile(server),
           "storm serve: drain accounting reconciles");
    expect(c.ckpt_attempted == c.ckpt_written + c.ckpt_degraded &&
               c.ckpt_degraded > 0 && shim.injected(io::IoFaultClass::kEnospc) > 0,
           "storm serve: checkpoint ledger balances (" +
               std::to_string(c.ckpt_attempted) + " attempted = " +
               std::to_string(c.ckpt_written) + " written + " +
               std::to_string(c.ckpt_degraded) + " degraded)");
    expect(!server.recovery().notes.empty(),
           "storm serve: degraded checkpoints are documented, not silent");
  }

  std::filesystem::remove_all(dir, ec);
}

// ---------------------------------------------------------------------------
// Stage 8: lint audit
// ---------------------------------------------------------------------------

/// Runs planaria-lint in-process over the tree this binary was compiled from
/// (PLANARIA_AUDIT_SOURCE_ROOT is baked in by CMake). A rebuilt binary always
/// audits its own sources; stale trees require a rebuild, which is the point.
void lint_audit() {
  std::printf("[lint audit] root=%s\n", PLANARIA_AUDIT_SOURCE_ROOT);
  namespace lint = planaria::lint;
  lint::Options options;
  options.root = PLANARIA_AUDIT_SOURCE_ROOT;
  try {
    const lint::Report report = lint::run_lint(options);
    for (const lint::Finding& f : report.findings) {
      std::printf("  %s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
    }
    expect(report.files_scanned > 0, "lint scanned the source tree");
    expect(report.clean(),
           "no unsuppressed lint findings (" +
               std::to_string(report.findings.size()) + " active, " +
               std::to_string(report.suppressed.size()) + " suppressed)");
  } catch (const std::exception& e) {
    expect(false, std::string("lint engine ran to completion: ") + e.what());
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Violation logs go to stderr unbuffered; keep stdout line-buffered so the
  // interleaving stays readable when the output is piped (CI logs).
  std::setvbuf(stdout, nullptr, _IOLBF, 0);

  std::uint64_t records = 20000;
  std::uint64_t seed = 0xA0D17;
  std::string stage = "all";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--records") == 0 && i + 1 < argc) {
      records = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--stage") == 0 && i + 1 < argc) {
      stage = argv[++i];
    } else {
      std::fprintf(
          stderr,
          "usage: planaria-audit [--records N] [--seed S] "
          "[--stage all|self-test|static|lint|replay|chaos|crash|serve|"
          "storm]\n");
      return 1;
    }
  }
  if (records == 0) {
    std::fprintf(stderr, "planaria-audit: --records must be >= 1\n");
    return 1;
  }
  if (stage != "all" && stage != "self-test" && stage != "static" &&
      stage != "lint" && stage != "replay" && stage != "chaos" &&
      stage != "crash" && stage != "serve" && stage != "storm") {
    std::fprintf(stderr, "planaria-audit: unknown --stage '%s'\n",
                 stage.c_str());
    return 1;
  }

  // The self-test runs first regardless of stage selection: a gate that
  // cannot see a planted bug must not be trusted to pass anything.
  if (!self_test()) {
    std::fprintf(stderr, "planaria-audit: SELF-TEST FAILED — gate is blind\n");
    return 2;
  }
  if (stage == "all" || stage == "static") static_audit();
  if (stage == "all" || stage == "lint") lint_audit();
  if (stage == "all" || stage == "replay") replay_audit(records, seed);
  if (stage == "all" || stage == "chaos") chaos_audit(records, seed);
  if (stage == "all" || stage == "crash") crash_audit(records, seed);
  if (stage == "all" || stage == "serve") serve_audit(records, seed);
  if (stage == "all" || stage == "storm") storm_audit(records, seed);

  if (g_failures > 0) {
    std::fprintf(stderr, "planaria-audit: %d check(s) FAILED\n", g_failures);
    return 1;
  }
  std::printf("planaria-audit: all checks passed\n");
  return 0;
}
