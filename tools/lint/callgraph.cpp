// Interprocedural layer of planaria-lint (DESIGN.md §13): a best-effort
// call graph and lambda-capture table built on the same token stream the
// per-file rules use.
//
// Soundness limits, deliberate and documented:
//   * no template instantiation — a template function is one node, analyzed
//     once over its written body;
//   * no virtual-call resolution — a member call `obj->f(...)` adds an edge
//     to *every* definition named `f`, which over-approximates dispatch (the
//     direction that finds races rather than hides them);
//   * method pointers (`&Cls::f`) create no edge — taking an address is not
//     a call, so reachability degrades gracefully instead of guessing;
//   * overloads merge by name — one bare name keys all definitions.
#include "lint/internal.hpp"

#include <algorithm>
#include <deque>

namespace planaria::lint {
namespace {

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}
bool is_ident(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

std::size_t match_forward(const std::vector<Token>& toks, std::size_t open,
                          const char* opener, const char* closer) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], opener)) ++depth;
    else if (is_punct(toks[i], closer) && --depth == 0) return i;
  }
  return std::string::npos;
}

/// Keywords and keyword-like idents that look like calls but are not.
const std::set<std::string>& non_call_idents() {
  static const std::set<std::string> kw = {
      "if",       "for",      "while",    "switch",     "catch",
      "return",   "sizeof",   "alignof",  "static_assert", "decltype",
      "new",      "delete",   "throw",    "co_return",  "co_await",
      "constexpr", "noexcept", "defined", "alignas",    "assert",
  };
  return kw;
}

}  // namespace

// ---------------------------------------------------------------------------
// Call sites

std::set<std::string> collect_callees(const TokenizedSource& src,
                                      std::size_t begin, std::size_t end) {
  const auto& toks = src.tokens;
  std::set<std::string> out;
  for (std::size_t i = begin; i <= end && i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier) continue;
    if (!is_punct(toks[i + 1], "(")) continue;
    if (non_call_idents().count(toks[i].text) != 0) continue;
    // `&Cls::f` is an address-of, not a call — but that pattern has no `(`
    // after the name, so it never reaches here; nothing special to do.
    // Member calls (`obj.f(`, `p->f(`) ARE collected: with no type
    // information an edge to every `f` approximates virtual dispatch.
    out.insert(toks[i].text);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Lambda collection

namespace {

/// Parses the capture list between intro_begin and intro_end into `lam`.
void parse_captures(const std::vector<Token>& toks, LambdaInfo& lam) {
  std::size_t k = lam.intro_begin + 1;
  const std::size_t end = lam.intro_end;
  // Skips an init-capture initializer up to the next top-level comma.
  const auto skip_to_comma = [&](std::size_t from) {
    int depth = 0;
    for (std::size_t j = from; j < end; ++j) {
      if (is_punct(toks[j], "(") || is_punct(toks[j], "[") ||
          is_punct(toks[j], "{") || is_punct(toks[j], "<")) {
        ++depth;
      } else if (is_punct(toks[j], ")") || is_punct(toks[j], "]") ||
                 is_punct(toks[j], "}") || is_punct(toks[j], ">")) {
        --depth;
      } else if (depth == 0 && is_punct(toks[j], ",")) {
        return j + 1;
      }
    }
    return end;
  };
  while (k < end) {
    const Token& t = toks[k];
    if (is_punct(t, "&")) {
      if (k + 1 < end && toks[k + 1].kind == TokenKind::kIdentifier &&
          !is_ident(toks[k + 1], "this")) {
        lam.by_ref.insert(toks[k + 1].text);
        k = skip_to_comma(k + 2);
      } else {
        lam.ref_default = true;
        ++k;
      }
      continue;
    }
    if (is_punct(t, "=")) {
      lam.value_default = true;
      ++k;
      continue;
    }
    if (is_ident(t, "this")) {
      lam.captures_this = true;
      ++k;
      continue;
    }
    if (is_punct(t, "*") && k + 1 < end && is_ident(toks[k + 1], "this")) {
      // [*this] copies the object; writes land on the copy, not shared state.
      k += 2;
      continue;
    }
    if (t.kind == TokenKind::kIdentifier) {
      lam.by_value.insert(t.text);
      k = skip_to_comma(k + 1);
      continue;
    }
    ++k;
  }
}

/// Parses `( ... )` parameter list: the last identifier of each top-level
/// comma segment is the parameter name (types like std::vector<int> leave
/// their declarator last, the project style never uses trailing qualifiers).
void parse_params(const std::vector<Token>& toks, std::size_t open,
                  std::size_t close, LambdaInfo& lam) {
  std::string last;
  int depth = 0;
  for (std::size_t j = open + 1; j < close; ++j) {
    if (is_punct(toks[j], "(") || is_punct(toks[j], "<") ||
        is_punct(toks[j], "[") || is_punct(toks[j], "{")) {
      ++depth;
    } else if (is_punct(toks[j], ")") || is_punct(toks[j], ">") ||
               is_punct(toks[j], "]") || is_punct(toks[j], "}")) {
      --depth;
    } else if (depth == 0 && is_punct(toks[j], ",")) {
      if (!last.empty()) {
        lam.params.insert(last);
        if (lam.first_param.empty()) lam.first_param = last;
      }
      last.clear();
    } else if (toks[j].kind == TokenKind::kIdentifier) {
      last = toks[j].text;
    }
  }
  if (!last.empty()) {
    lam.params.insert(last);
    if (lam.first_param.empty()) lam.first_param = last;
  }
}

/// Heuristic body-local declarations: `Type name =/;/{/(`, `Type& name :`
/// (range-for), structured bindings after & or auto, and catch parameters.
/// Misses err toward *reporting* (a missed local looks shared), so the
/// patterns cover exactly the project's clang-formatted style.
void collect_locals(const std::vector<Token>& toks, LambdaInfo& lam) {
  for (std::size_t k = lam.body_begin + 1; k < lam.body_end; ++k) {
    const Token& t = toks[k];
    // Structured binding: `auto [a, b]` / `auto& [a, b]`.
    if (is_punct(t, "[") && k > 0 &&
        (is_punct(toks[k - 1], "&") || is_ident(toks[k - 1], "auto"))) {
      const std::size_t close = match_forward(toks, k, "[", "]");
      if (close == std::string::npos || close > lam.body_end) continue;
      for (std::size_t j = k + 1; j < close; ++j) {
        if (toks[j].kind == TokenKind::kIdentifier) {
          lam.locals.insert(toks[j].text);
        }
      }
      k = close;
      continue;
    }
    // Catch parameter: `catch (const std::exception& e)`.
    if (is_ident(t, "catch") && k + 1 < lam.body_end &&
        is_punct(toks[k + 1], "(")) {
      const std::size_t close = match_forward(toks, k + 1, "(", ")");
      if (close == std::string::npos || close > lam.body_end) continue;
      for (std::size_t j = close; j > k + 1; --j) {
        if (toks[j].kind == TokenKind::kIdentifier) {
          lam.locals.insert(toks[j].text);
          break;
        }
      }
      continue;
    }
    if (t.kind != TokenKind::kIdentifier || k == 0) continue;
    const Token& prev = toks[k - 1];
    const bool type_before =
        (prev.kind == TokenKind::kIdentifier &&
         non_call_idents().count(prev.text) == 0) ||
        is_punct(prev, "&") || is_punct(prev, "*") || is_punct(prev, ">");
    if (!type_before) continue;
    if (k + 1 >= lam.body_end) continue;
    const Token& next = toks[k + 1];
    if (is_punct(next, "=") || is_punct(next, ";") || is_punct(next, "{") ||
        is_punct(next, ":") || is_punct(next, "(")) {
      // `a = b` has a punct before `a`; two idents in a row followed by a
      // declarator-ending token is a declaration in this codebase's style.
      if (is_punct(next, ":") && k + 2 < lam.body_end &&
          is_punct(toks[k + 2], ":")) {
        continue;  // qualified name `ns::x`, not a range-for declarator
      }
      if (is_punct(next, "=") && k + 2 < lam.body_end &&
          is_punct(toks[k + 2], "=")) {
        continue;  // `T x == y` is not a declaration (comparison misparse)
      }
      lam.locals.insert(t.text);
    }
  }
}

}  // namespace

void collect_lambdas(FileInfo& file) {
  const auto& toks = file.src.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_punct(toks[i], "[")) continue;
    if (i > 0) {
      const Token& prev = toks[i - 1];
      // Subscript (`a[i]`, `f()[0]`) or attribute (`[[nodiscard]]`) — the
      // lambda-introducer positions are everything else.
      if (prev.kind == TokenKind::kIdentifier ||
          prev.kind == TokenKind::kString || prev.kind == TokenKind::kNumber ||
          is_punct(prev, ")") || is_punct(prev, "]")) {
        continue;
      }
    }
    if (i + 1 < toks.size() && is_punct(toks[i + 1], "[")) continue;
    const std::size_t close = match_forward(toks, i, "[", "]");
    if (close == std::string::npos) continue;

    LambdaInfo lam;
    lam.line = toks[i].line;
    lam.intro_begin = i;
    lam.intro_end = close;

    std::size_t j = close + 1;
    if (j < toks.size() && is_punct(toks[j], "(")) {
      const std::size_t pclose = match_forward(toks, j, "(", ")");
      if (pclose == std::string::npos) continue;
      parse_params(toks, j, pclose, lam);
      j = pclose + 1;
    }
    // Trailer: mutable/noexcept(±expr)/-> return-type, then the body brace.
    std::size_t guard = 0;
    while (j < toks.size() && guard++ < 24 && !is_punct(toks[j], "{")) {
      const Token& t = toks[j];
      if (t.kind == TokenKind::kIdentifier) {
        ++j;
      } else if (is_punct(t, "(")) {
        const std::size_t g = match_forward(toks, j, "(", ")");
        if (g == std::string::npos) break;
        j = g + 1;
      } else if (is_punct(t, "<")) {
        const std::size_t g = match_forward(toks, j, "<", ">");
        if (g == std::string::npos) break;
        j = g + 1;
      } else if (t.kind == TokenKind::kPunct &&
                 (t.text == "-" || t.text == ">" || t.text == ":" ||
                  t.text == "*" || t.text == "&")) {
        ++j;
      } else {
        break;
      }
    }
    if (j >= toks.size() || !is_punct(toks[j], "{")) continue;
    const std::size_t body_end = match_forward(toks, j, "{", "}");
    if (body_end == std::string::npos) continue;
    lam.body_begin = j;
    lam.body_end = body_end;

    parse_captures(toks, lam);
    collect_locals(toks, lam);
    if (i >= 2 && is_punct(toks[i - 1], "=") &&
        toks[i - 2].kind == TokenKind::kIdentifier) {
      lam.bound_name = toks[i - 2].text;
    }
    for (std::size_t k = lam.body_begin; k <= lam.body_end; ++k) {
      if (is_ident(toks[k], "lock_guard") || is_ident(toks[k], "unique_lock") ||
          is_ident(toks[k], "scoped_lock") || is_ident(toks[k], "shared_lock")) {
        lam.has_lock = true;
        break;
      }
    }
    file.lambdas.push_back(std::move(lam));
  }
}

// ---------------------------------------------------------------------------
// Graph construction and reachability

CallGraph build_call_graph(const std::vector<FileInfo>& files) {
  CallGraph g;
  // Pass 1: every function definition becomes a node, so pass 2 can bind
  // unqualified calls against the full name index.
  for (const FileInfo& f : files) {
    for (const FunctionDef& fn : f.functions) {
      CallGraphNode node;
      node.bare = fn.name;
      node.qualified =
          fn.class_name.empty() ? fn.name : fn.class_name + "::" + fn.name;
      node.file = &f;
      node.fn = &fn;
      g.by_bare[node.bare].push_back(g.nodes.size());
      g.by_qualified[node.qualified].push_back(g.nodes.size());
      g.nodes.push_back(std::move(node));
    }
  }
  // Pass 2: callees, with the sharpest binding the tokens allow.
  //   * `obj.f(` / `p->f(`  — bare name: no type info, so the edge goes to
  //     every definition of `f` (virtual-dispatch over-approximation);
  //   * `X::f(`             — qualified when a node `X::f` exists (out-of-
  //     line member definitions); `std::f(` never binds into the project;
  //     other qualifiers (namespaces) fall back to the bare name;
  //   * unqualified `f(` inside a member of class C — binds to `C::f` when
  //     that node exists (C++ lookup prefers the member), else bare. This
  //     keeps `SmsPrefetcher::sweep()` from aliasing `ExperimentRunner::
  //     sweep()` across the whole graph.
  for (CallGraphNode& node : g.nodes) {
    const auto& toks = node.file->src.tokens;
    const FunctionDef& fn = *node.fn;
    for (std::size_t i = fn.body_begin; i <= fn.body_end && i + 1 < toks.size();
         ++i) {
      if (toks[i].kind != TokenKind::kIdentifier) continue;
      if (!is_punct(toks[i + 1], "(")) continue;
      if (non_call_idents().count(toks[i].text) != 0) continue;
      const std::string& name = toks[i].text;
      const bool member =
          i > 0 && (is_punct(toks[i - 1], ".") ||
                    (is_punct(toks[i - 1], ">") && i > 1 &&
                     is_punct(toks[i - 2], "-")));
      if (member) {
        node.callees.insert(name);
        continue;
      }
      if (i >= 3 && is_punct(toks[i - 1], ":") && is_punct(toks[i - 2], ":") &&
          toks[i - 3].kind == TokenKind::kIdentifier) {
        const std::string& qual = toks[i - 3].text;
        if (qual == "std") continue;  // std::move, std::to_string, ...
        const std::string q = qual + "::" + name;
        node.callees.insert(g.by_qualified.count(q) != 0 ? q : name);
        continue;
      }
      if (!fn.class_name.empty()) {
        const std::string q = fn.class_name + "::" + name;
        if (g.by_qualified.count(q) != 0) {
          node.callees.insert(q);
          continue;
        }
      }
      node.callees.insert(name);
    }
  }
  return g;
}

std::vector<std::size_t> CallGraph::reachable(
    const std::vector<std::string>& roots, const std::vector<std::string>& stops,
    std::map<std::size_t, std::string>* provenance) const {
  const auto resolve = [&](const std::string& spec) {
    std::vector<std::size_t> ids;
    const auto& index =
        spec.find("::") != std::string::npos ? by_qualified : by_bare;
    const auto it = index.find(spec);
    if (it != index.end()) ids = it->second;
    return ids;
  };
  std::set<std::size_t> stopped;
  for (const std::string& s : stops) {
    for (const std::size_t id : resolve(s)) stopped.insert(id);
  }
  std::set<std::size_t> visited;
  std::deque<std::size_t> queue;
  std::map<std::size_t, std::string> prov;
  for (const std::string& r : roots) {
    for (const std::size_t id : resolve(r)) {
      if (stopped.count(id) != 0 || !visited.insert(id).second) continue;
      prov[id] = r;
      queue.push_back(id);
    }
  }
  while (!queue.empty()) {
    const std::size_t n = queue.front();
    queue.pop_front();
    for (const std::string& callee : nodes[n].callees) {
      for (const std::size_t m : resolve(callee)) {
        if (stopped.count(m) != 0 || !visited.insert(m).second) continue;
        prov[m] = prov[n];
        queue.push_back(m);
      }
    }
  }
  std::vector<std::size_t> out(visited.begin(), visited.end());
  if (provenance != nullptr) *provenance = std::move(prov);
  return out;
}

}  // namespace planaria::lint
