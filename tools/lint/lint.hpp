// planaria-lint — a project-specific static analyzer for the Planaria
// reproduction (DESIGN.md §12).
//
// Generic tooling (clang-tidy, sanitizers) cannot express the properties the
// last few PRs stake correctness on: bit-identical replay forbids hidden
// nondeterminism, crash recovery requires save_state/load_state to stay in
// sync with every stateful class, and the SLP → TLP → coordinator pipeline
// only stays reviewable if the module layering holds. This tool encodes
// those rules directly: a lightweight C++ tokenizer (raw strings, line
// continuations, comments, preprocessor lines), an include-graph builder,
// and a rule engine driven by a committed config (tools/lint/layers.conf).
//
// Rule catalog (rule ids are what suppressions name):
//   layering              cross-module #include violates the declared DAG
//   layer-cycle           actual module include graph has a cycle
//   layer-undeclared      a src/ module is missing from layers.conf
//   determinism           banned nondeterminism source (time/clock/rand/
//                         random_device/getenv/...) outside sanctioned files
//   unordered-iteration   iteration over an unordered container inside a
//                         function that serializes or merges accounting
//   snapshot-pairing      save_state without load_state (or vice versa)
//   snapshot-roundtrip    a snapshottable class never named in the
//                         round-trip test file
//   snapshot-missing      a stateful class in a snapshot-reachable module
//                         with no save_state
//   contract-coverage     public mutating method in a contract-gated module
//                         with no REQUIRE/ENSURE/INVARIANT/DASSERT
//   pragma-once           header without #pragma once
//   using-namespace       `using namespace` at file scope in a header
//   raw-assert            <cassert> assert() instead of PLANARIA_ASSERT
//   io-raw-call           direct fopen/freopen/rename/::open/::creat outside
//                         src/io — bypasses the VFS durability discipline
//                         and the storage-fault shim (tests/ exempt)
//   io-raw-stream         std::{o,i,}fstream outside src/io — same bypass,
//                         stream-object form (tests/ exempt)
//   suppression           malformed suppression (missing reason or unknown
//                         rule) — never suppressible itself
//
// Interprocedural families (DESIGN.md §13; call graph + capture table):
//   race-capture-write    write to a by-reference/pointer capture of shared
//                         state inside a parallel region, with no adjacent
//                         lock and no atomic type
//   race-shared-static    mutable global / function-local static reachable
//                         from a parallel region
//   race-nonconst-call    non-const method call on an object shared across
//                         a parallel region (class has no mutex member)
//   hot-alloc             heap allocation (new/make_unique/malloc/container
//                         construction) in the hot reachable set
//   hot-string            std::string construction / to_string / stream
//                         buffers in the hot reachable set
//   hot-iostream          stdio / iostream traffic in the hot reachable set
//   hot-throw             throw statement in the hot reachable set
//   hot-mutex             lock acquisition in the hot reachable set
//   hot-env-read          repeated config/env read in the hot reachable set
//
// State-flow family (DESIGN.md §17; member-level save/load reconciliation):
//   state-unsaved-member  member mutated somewhere reachable from the state
//                         roots (state-root + hot-root specs) but never
//                         serialized by its class's save_state/load_state
//   state-unloaded-member member serialized by save_state but never restored
//                         by load_state, or vice versa
//   state-order-mismatch  save_state and load_state touch the serialized
//                         members in different sequences (byte-layout skew)
//   state-det-taint       a serialized member assigned from a nondeterminism
//                         source (banned call/type, `this` as a value,
//                         address-of / pointer-as-integer, unordered-
//                         container iteration order), directly or through a
//                         called helper (interprocedural, depth-bounded)
//
// Suppressions (inline comments, reason mandatory, each prefixed "lint:"):
//   suppress(<rule>) <reason>       — covers its own line and the next
//   suppress-file(<rule>) <reason>  — covers the whole file
//   no-contract(<reason>)           — sugar for suppressing contract-coverage
//   volatile(<member>): <reason>    — declares one data member derived or
//                                     scratch state for the state-* family
//
// The engine is dependency-free (no libclang); everything is std C++20.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace planaria::lint {

// ---------------------------------------------------------------------------
// Tokenizer

enum class TokenKind {
  kIdentifier,   ///< identifiers and keywords
  kNumber,       ///< numeric literal (pp-number, including 0x.., 1.5f)
  kString,       ///< string literal, raw strings included (text = contents)
  kChar,         ///< character literal
  kPunct,        ///< one operator/punctuator per token (">>" splits to ">",">")
};

struct Token {
  TokenKind kind;
  std::string text;
  int line = 0;
};

struct Comment {
  std::string text;  ///< without the // or /* */ markers, trimmed
  int line = 0;      ///< line the comment starts on
};

struct IncludeDirective {
  std::string path;
  int line = 0;
  bool quoted = false;  ///< "" include (project) vs <> include (system)
};

/// A fully tokenized source file. Line continuations are spliced (tokens
/// carry the line the construct started on), comments and preprocessor
/// directives are captured out-of-band rather than appearing in `tokens`.
struct TokenizedSource {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<IncludeDirective> includes;
  bool has_pragma_once = false;
};

TokenizedSource tokenize(const std::string& text);

// ---------------------------------------------------------------------------
// Configuration (tools/lint/layers.conf)

struct AllowedEdge {
  std::string from, to, reason;
};

struct FileSanction {
  std::string rule, path, reason;  ///< path is repo-relative, '/' separators
};

/// A function excluded (with everything only reachable through it) from the
/// hot-path cost analysis, with a mandatory reason.
struct HotStop {
  std::string spec;    ///< "Cls::name" (exact) or bare name (all overloads)
  std::string reason;
};

/// A data member excluded (with a mandatory reason) from the state-flow
/// family: derived or scratch state that is rebuilt rather than restored.
/// Config-level equivalent of the inline `volatile(<m>): reason` directive.
struct VolatileMember {
  std::string spec;    ///< "Cls::member_" (exact) or bare "member_"
  std::string reason;
};

struct Config {
  /// layers[i] = set of sibling modules at layer i; a module may include any
  /// module in a strictly lower layer, never a sibling or a higher layer.
  std::vector<std::vector<std::string>> layers;
  std::vector<AllowedEdge> allowed_edges;
  std::vector<FileSanction> sanctions;
  /// Modules where snapshot-missing / snapshot-roundtrip apply.
  std::set<std::string> snapshot_modules;
  /// Modules where contract-coverage applies.
  std::set<std::string> contract_modules;
  /// Repo-relative file(s) that must mention every snapshottable class.
  std::vector<std::string> roundtrip_tests;
  /// Function names that mark a function as a serialization/accounting
  /// context for the unordered-iteration rule (defaults: save_state, finish).
  std::set<std::string> serialization_apis;
  /// Hot-path roots for the hot-* cost rules: "Cls::name" or bare names.
  /// Empty = the hot-path family is inert.
  std::vector<std::string> hot_roots;
  /// Reason-carrying exclusions from the hot reachable set.
  std::vector<HotStop> hot_stops;
  /// Function names whose lambda arguments become parallel regions for the
  /// race-* rules (defaults: parallel_for, submit).
  std::set<std::string> parallel_apis;
  /// Extra reachability roots for state-unsaved-member, unioned with
  /// hot_roots. Both empty = the unsaved-member check is inert (the other
  /// state-* checks still run: they need only the save/load bodies).
  std::vector<std::string> state_roots;
  /// Reason-carrying member exclusions from the state-flow family.
  std::vector<VolatileMember> volatile_members;

  int layer_of(const std::string& module) const;  ///< -1 if undeclared
  bool edge_allowed(const std::string& from, const std::string& to) const;
  bool sanctioned(const std::string& rule, const std::string& path) const;
};

/// Parses layers.conf. Throws std::runtime_error with file:line on a
/// malformed line (unknown keyword, allow-edge naming an undeclared module,
/// missing reason).
Config parse_config(const std::string& text, const std::string& filename);
Config load_config(const std::string& path);

// ---------------------------------------------------------------------------
// Findings and report

struct Finding {
  std::string rule;
  std::string file;  ///< repo-relative path
  int line = 0;
  std::string message;
  std::string suppress_reason;  ///< non-empty when suppressed
};

struct Report {
  std::vector<Finding> findings;    ///< active (unsuppressed) findings
  std::vector<Finding> suppressed;  ///< findings silenced with a reason
  int files_scanned = 0;

  bool clean() const { return findings.empty(); }
};

/// Renders the stable machine-readable report (schema_version 4: per-family
/// "race"/"hot"/"io" counts plus the v4 "state" count of state-flow findings
/// in "counts"). Keys and their order are part of the contract
/// tests/test_lint.cpp pins down and scripts/check_lint_report.py validates.
std::string to_json(const Report& report, const std::string& root);

// ---------------------------------------------------------------------------
// Engine

struct Options {
  std::string root;         ///< repo root; scan roots are relative to it
  std::string config_path;  ///< defaults to <root>/tools/lint/layers.conf
  /// Directories under root to scan (repo-relative).
  std::vector<std::string> scan_roots = {"src", "tools", "bench", "tests"};
  /// Path prefixes to skip (the deliberately-bad fixture corpus).
  std::vector<std::string> skip_prefixes = {"tools/lint/fixtures"};
};

/// Scans the tree and runs every rule. Throws std::runtime_error on config
/// or I/O errors (missing root, unparseable layers.conf).
Report run_lint(const Options& options);

/// In-memory variant used by the unit tests and fixtures: `files` maps
/// repo-relative paths to contents.
Report run_lint_on(const std::map<std::string, std::string>& files,
                   const Config& config);

}  // namespace planaria::lint
