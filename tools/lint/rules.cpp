// Rule passes of planaria-lint. Each rule consumes the analyzed file set
// and emits raw findings; the engine applies suppressions afterwards so a
// suppressed finding still shows up (with its reason) in the JSON report.
#include "lint/internal.hpp"

#include <algorithm>
#include <functional>
#include <sstream>

namespace planaria::lint {
namespace {

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}
bool is_ident(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

// ---------------------------------------------------------------------------
// layering / layer-cycle / layer-undeclared

/// Module of a quoted project include ("core/slp.hpp" -> "core"), or empty.
std::string include_module(const IncludeDirective& inc) {
  if (!inc.quoted) return {};
  const std::size_t slash = inc.path.find('/');
  return slash == std::string::npos ? std::string() : inc.path.substr(0, slash);
}

void rule_layering(const std::vector<FileInfo>& files, const Config& config,
                   std::vector<Finding>& out) {
  std::set<std::string> modules_in_tree;
  for (const FileInfo& f : files) {
    if (!f.module.empty()) modules_in_tree.insert(f.module);
  }

  std::set<std::string> undeclared_reported;
  // from-module -> (to-module -> first include location), for cycle search.
  std::map<std::string, std::map<std::string, std::pair<std::string, int>>>
      edges;

  for (const FileInfo& f : files) {
    if (f.module.empty()) continue;  // tools/tests/bench sit above the DAG
    const int from_layer = config.layer_of(f.module);
    if (from_layer < 0) {
      if (undeclared_reported.insert(f.module).second) {
        out.push_back({"layer-undeclared", f.path, 1,
                       "module 'src/" + f.module +
                           "' is not declared in layers.conf — every module "
                           "must have a place in the DAG",
                       ""});
      }
      continue;
    }
    for (const IncludeDirective& inc : f.src.includes) {
      const std::string to = include_module(inc);
      if (to.empty() || to == f.module) continue;
      if (modules_in_tree.count(to) == 0) continue;  // not a src module
      edges[f.module].emplace(to, std::make_pair(f.path, inc.line));
      const int to_layer = config.layer_of(to);
      if (to_layer < 0) {
        if (undeclared_reported.insert(to).second) {
          out.push_back({"layer-undeclared", f.path, inc.line,
                         "included module 'src/" + to +
                             "' is not declared in layers.conf",
                         ""});
        }
        continue;
      }
      if (to_layer < from_layer) continue;  // downward edge: always legal
      if (config.edge_allowed(f.module, to)) continue;
      std::ostringstream msg;
      msg << "layering: src/" << f.module << " (layer " << from_layer
          << ") must not include \"" << inc.path << "\" (src/" << to
          << ", layer " << to_layer << "); "
          << (to_layer == from_layer
                  ? "siblings in the DAG may not include each other"
                  : "the edge points up the DAG")
          << " — fix the dependency or add an `allow` edge with a reason to "
             "layers.conf";
      out.push_back({"layering", f.path, inc.line, msg.str(), ""});
    }
  }

  // Cycle detection over the *actual* module graph (allow edges included —
  // an allowed edge still must not close a cycle).
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  std::set<std::string> cycle_reported;
  std::function<void(const std::string&)> dfs = [&](const std::string& m) {
    color[m] = 1;
    stack.push_back(m);
    for (const auto& [to, where] : edges[m]) {
      if (color[to] == 1) {
        // Reconstruct the cycle from the grey stack.
        std::ostringstream msg;
        msg << "module include cycle: ";
        bool in_cycle = false;
        for (const auto& s : stack) {
          if (s == to) in_cycle = true;
          if (in_cycle) msg << s << " -> ";
        }
        msg << to;
        if (cycle_reported.insert(msg.str()).second) {
          out.push_back(
              {"layer-cycle", where.first, where.second, msg.str(), ""});
        }
      } else if (color[to] == 0) {
        dfs(to);
      }
    }
    stack.pop_back();
    color[m] = 2;
  };
  for (const auto& [m, _] : edges) {
    if (color[m] == 0) dfs(m);
  }
}

// ---------------------------------------------------------------------------
// determinism

void rule_determinism(const FileInfo& f, std::vector<Finding>& out) {
  static const std::set<std::string> banned_calls = {
      "time",       "clock",   "gettimeofday", "clock_gettime",
      "timespec_get", "rand",  "srand",        "rand_r",
      "drand48",    "getenv",  "secure_getenv",
  };
  static const std::set<std::string> banned_types = {
      "random_device", "system_clock", "steady_clock", "high_resolution_clock",
  };
  const auto& toks = f.src.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (banned_types.count(t.text) != 0) {
      out.push_back({"determinism", f.path, t.line,
                     "'" + t.text +
                         "' is a nondeterminism source; simulation state must "
                         "derive only from the trace and the seed (use "
                         "planaria::Rng)",
                     ""});
      continue;
    }
    if (banned_calls.count(t.text) == 0) continue;
    if (i + 1 >= toks.size() || !is_punct(toks[i + 1], "(")) continue;
    // A member named like a banned function (obj.time(...)) is not libc's.
    if (i > 0 && (is_punct(toks[i - 1], ".") ||
                  (is_punct(toks[i - 1], ">") && i > 1 &&
                   is_punct(toks[i - 2], "-")))) {
      continue;
    }
    out.push_back({"determinism", f.path, t.line,
                   "call to '" + t.text +
                       "()' — wall clock, libc randomness, and environment "
                       "reads break bit-identical replay; sanction the file "
                       "in layers.conf if this use is config-time only",
                   ""});
  }
}

// ---------------------------------------------------------------------------
// unordered-iteration

void rule_unordered_iteration(const FileInfo& f,
                              const std::map<std::string, const FileInfo*>& by_path,
                              const Config& config,
                              std::vector<Finding>& out) {
  // Identifiers known to be unordered containers: declared in this file or
  // in a directly-included project header (a .cpp sees its class's members).
  std::set<std::string> unordered = f.unordered_names;
  for (const IncludeDirective& inc : f.src.includes) {
    if (!inc.quoted) continue;
    for (const char* root : {"src/", "tools/", "bench/", "tests/"}) {
      const auto it = by_path.find(root + inc.path);
      if (it != by_path.end()) {
        unordered.insert(it->second->unordered_names.begin(),
                         it->second->unordered_names.end());
      }
    }
  }
  if (unordered.empty()) return;

  const auto& toks = f.src.tokens;
  for (const FunctionDef& fn : f.functions) {
    // Serialization / accounting context?
    bool serializes = config.serialization_apis.count(fn.name) != 0;
    for (std::size_t i = fn.params_begin;
         !serializes && i <= fn.params_end && i < toks.size(); ++i) {
      if (is_ident(toks[i], "Writer")) serializes = true;
    }
    for (std::size_t i = fn.body_begin;
         !serializes && i <= fn.body_end && i < toks.size(); ++i) {
      if (toks[i].kind == TokenKind::kIdentifier && i + 1 <= fn.body_end &&
          is_punct(toks[i + 1], "(") &&
          config.serialization_apis.count(toks[i].text) != 0) {
        serializes = true;
      }
    }
    if (!serializes) continue;

    for (std::size_t i = fn.body_begin; i <= fn.body_end && i < toks.size();
         ++i) {
      // Pattern A: range-for whose range expression names an unordered
      // container: for ( ... : <range> )
      if (is_ident(toks[i], "for") && i + 1 <= fn.body_end &&
          is_punct(toks[i + 1], "(")) {
        int depth = 0;
        std::size_t colon = 0, close = 0;
        for (std::size_t j = i + 1; j <= fn.body_end; ++j) {
          if (is_punct(toks[j], "(")) ++depth;
          else if (is_punct(toks[j], ")")) {
            if (--depth == 0) {
              close = j;
              break;
            }
          } else if (depth == 1 && colon == 0 && is_punct(toks[j], ":") &&
                     j + 1 < toks.size() && !is_punct(toks[j + 1], ":") &&
                     j > 0 && !is_punct(toks[j - 1], ":")) {
            colon = j;
          }
        }
        if (colon != 0 && close != 0) {
          for (std::size_t j = colon + 1; j < close; ++j) {
            if (toks[j].kind == TokenKind::kIdentifier &&
                unordered.count(toks[j].text) != 0) {
              out.push_back(
                  {"unordered-iteration", f.path, toks[j].line,
                   "iteration over unordered container '" + toks[j].text +
                       "' inside '" + fn.name +
                       "', which serializes or merges accounted state — "
                       "hash-order dependence breaks byte-stable encodings; "
                       "iterate a sorted copy instead",
                   ""});
              break;
            }
          }
        }
      }
      // Pattern B: explicit iterator walk, `container.begin(`.
      if (toks[i].kind == TokenKind::kIdentifier &&
          unordered.count(toks[i].text) != 0 && i + 3 <= fn.body_end &&
          is_punct(toks[i + 1], ".") &&
          (is_ident(toks[i + 2], "begin") || is_ident(toks[i + 2], "cbegin")) &&
          is_punct(toks[i + 3], "(")) {
        out.push_back({"unordered-iteration", f.path, toks[i].line,
                       "iterator walk over unordered container '" +
                           toks[i].text + "' inside '" + fn.name +
                           "', which serializes or merges accounted state",
                       ""});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// snapshot-pairing / snapshot-roundtrip / snapshot-missing

void rule_snapshot(const std::vector<FileInfo>& files, const Config& config,
                   std::vector<Finding>& out) {
  // Identifier sets of the round-trip test files.
  std::set<std::string> roundtrip_idents;
  bool have_roundtrip_file = false;
  for (const FileInfo& f : files) {
    if (std::find(config.roundtrip_tests.begin(), config.roundtrip_tests.end(),
                  f.path) == config.roundtrip_tests.end()) {
      continue;
    }
    have_roundtrip_file = true;
    for (const Token& t : f.src.tokens) {
      if (t.kind == TokenKind::kIdentifier) roundtrip_idents.insert(t.text);
    }
  }

  for (const FileInfo& f : files) {
    if (!f.is_header) continue;
    for (const ClassInfo& cls : f.classes) {
      if (cls.has_save() != cls.has_load()) {
        const char* has = cls.has_save() ? "save_state" : "load_state";
        const char* missing = cls.has_save() ? "load_state" : "save_state";
        out.push_back(
            {"snapshot-pairing", f.path,
             cls.has_save() ? cls.save_state_line : cls.load_state_line,
             "class '" + cls.name + "' declares " + has + " but no " +
                 missing +
                 " — checkpoint encode and decode must evolve together",
             ""});
      }
      if (cls.has_save() && cls.has_load() && have_roundtrip_file &&
          roundtrip_idents.count(cls.name) == 0) {
        out.push_back({"snapshot-roundtrip", f.path, cls.save_state_line,
                       "snapshottable class '" + cls.name +
                           "' is never mentioned in the round-trip test (" +
                           config.roundtrip_tests.front() +
                           ") — byte-stability is only real if a test holds "
                           "it",
                       ""});
      }
      if (!f.module.empty() && config.snapshot_modules.count(f.module) != 0 &&
          cls.is_class && !cls.members.empty() && !cls.has_save() &&
          !cls.has_load()) {
        out.push_back({"snapshot-missing", f.path, cls.line,
                       "class '" + cls.name + "' in snapshot-reachable "
                       "module 'src/" + f.module + "' holds state (" +
                           std::to_string(cls.members.size()) +
                           " member(s), e.g. '" + cls.members.front().name +
                           "') but has no save_state — a checkpointed run "
                           "would silently lose it",
                       ""});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// contract-coverage

void rule_contract_coverage(const std::vector<FileInfo>& files,
                            const Config& config,
                            std::vector<Finding>& out) {
  static const std::set<std::string> contract_macros = {
      "PLANARIA_REQUIRE",      "PLANARIA_REQUIRE_MSG",
      "PLANARIA_ENSURE",       "PLANARIA_ENSURE_MSG",
      "PLANARIA_INVARIANT",    "PLANARIA_INVARIANT_MSG",
      "PLANARIA_ASSERT",       "PLANARIA_ASSERT_MSG",
      "PLANARIA_DASSERT",      "PLANARIA_DASSERT_MSG",
      "PLANARIA_UNREACHABLE",
  };

  // Public mutating methods per class, from headers of contract modules.
  std::map<std::string, std::set<std::string>> public_mutating;
  for (const FileInfo& f : files) {
    if (!f.is_header || f.module.empty() ||
        config.contract_modules.count(f.module) == 0) {
      continue;
    }
    for (const ClassInfo& cls : f.classes) {
      for (const auto& method : cls.public_mutating_methods) {
        public_mutating[cls.name].insert(method.first);
      }
    }
  }

  for (const FileInfo& f : files) {
    if (f.module.empty() || config.contract_modules.count(f.module) == 0) {
      continue;
    }
    const auto& toks = f.src.tokens;
    for (const FunctionDef& fn : f.functions) {
      if (fn.is_const || fn.class_name.empty()) continue;
      const auto cls = public_mutating.find(fn.class_name);
      if (cls == public_mutating.end() || cls->second.count(fn.name) == 0) {
        continue;  // not a public mutating method of a known class
      }
      if (fn.name == fn.class_name || fn.name == "load_state") {
        // Constructors establish invariants rather than check them;
        // load_state validates via the snapshot Reader (throws on bad input).
        continue;
      }
      bool has_contract = false;
      int statements = 0;
      for (std::size_t i = fn.body_begin; i <= fn.body_end && i < toks.size();
           ++i) {
        if (is_punct(toks[i], ";")) ++statements;
        if (toks[i].kind == TokenKind::kIdentifier &&
            contract_macros.count(toks[i].text) != 0) {
          has_contract = true;
          break;
        }
      }
      // Trivial bodies (a forwarding call or a couple of assignments) would
      // only grow noise contracts; the threshold is part of the rule's
      // documented contract (DESIGN.md §12).
      if (has_contract || statements <= 2) continue;
      out.push_back(
          {"contract-coverage", f.path, fn.line,
           "public mutating method '" + fn.class_name + "::" + fn.name +
               "' has no REQUIRE/ENSURE/INVARIANT/DASSERT — state-changing "
               "entry points in src/" + f.module +
               " must check something or carry // lint: no-contract(<why>)",
           ""});
    }
  }
}

// ---------------------------------------------------------------------------
// hygiene: pragma-once / using-namespace / raw-assert

void rule_hygiene(const FileInfo& f, std::vector<Finding>& out) {
  const auto& toks = f.src.tokens;
  if (f.is_header) {
    if (!f.src.has_pragma_once) {
      out.push_back({"pragma-once", f.path, 1,
                     "header lacks #pragma once (project headers use pragma "
                     "guards exclusively)",
                     ""});
    }
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (is_ident(toks[i], "using") && is_ident(toks[i + 1], "namespace")) {
        out.push_back({"using-namespace", f.path, toks[i].line,
                       "`using namespace` in a header leaks into every "
                       "includer",
                       ""});
      }
    }
  }
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (is_ident(toks[i], "assert") && is_punct(toks[i + 1], "(")) {
      if (i > 0 && (is_punct(toks[i - 1], ".") ||
                    (is_punct(toks[i - 1], ">") && i > 1 &&
                     is_punct(toks[i - 2], "-")))) {
        continue;
      }
      out.push_back({"raw-assert", f.path, toks[i].line,
                     "raw assert() compiles out in release builds — use "
                     "PLANARIA_ASSERT (always on) or PLANARIA_DASSERT "
                     "(debug-only, sanitizer-armed)",
                     ""});
    }
  }
}

// ---------------------------------------------------------------------------
// io-raw-call / io-raw-stream
//
// All durable file I/O routes through the src/io VFS (write-tmp -> fsync ->
// rename -> fsync-dir, plus the storage-fault shim the storm audit drives).
// A direct fopen/::open/rename or an fstream object bypasses both the
// durability discipline and the fault injection, so outside src/io each one
// needs a reason-carrying suppression. tests/ are exempt: durability tests
// damage files on purpose, and raw I/O *is* their fixture machinery.

bool member_call_prefix(const std::vector<Token>& toks, std::size_t i);

void rule_io_raw(const FileInfo& f, std::vector<Finding>& out) {
  if (f.module == "io") return;  // the VFS implementation itself
  if (f.path.rfind("tests/", 0) == 0) return;
  const auto& toks = f.src.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (member_call_prefix(toks, i)) continue;  // obj.rename(...) is not libc
    const bool call_next = i + 1 < toks.size() && is_punct(toks[i + 1], "(");

    // Raw open/rename calls: fopen/freopen, rename (std::, ::, or
    // std::filesystem::), and the globally-qualified POSIX ::open/::creat.
    bool raw_call = false;
    if ((t.text == "fopen" || t.text == "freopen" || t.text == "rename") &&
        call_next) {
      raw_call = true;
    } else if ((t.text == "open" || t.text == "creat") && call_next &&
               i >= 2 && is_punct(toks[i - 1], ":") &&
               is_punct(toks[i - 2], ":") &&
               (i == 2 || toks[i - 3].kind != TokenKind::kIdentifier)) {
      raw_call = true;  // `::open(` — global qualifier, not `ns::open(`
    }
    if (raw_call) {
      out.push_back(
          {"io-raw-call", f.path, t.line,
           "direct '" + t.text +
               "' bypasses the src/io VFS — no tmp-file staging, no fsync "
               "discipline, no storage-fault injection; use "
               "io::write_file_durable/read_file/rename_file, or carry a "
               "reasoned suppression for a read-only or tooling path",
           ""});
      continue;
    }

    // Raw stream objects.
    if (t.text == "ofstream" || t.text == "ifstream" || t.text == "fstream") {
      out.push_back(
          {"io-raw-stream", f.path, t.line,
           "'" + t.text +
               "' I/O bypasses the src/io VFS — writes skip the durable "
               "rename discipline and neither direction sees the "
               "storage-fault shim; route through io::, or carry a reasoned "
               "suppression for a read-only or tooling path",
           ""});
    }
  }
}

// ---------------------------------------------------------------------------
// Interprocedural analyses (DESIGN.md §13): parallel regions + hot paths
//
// Shared machinery: the call graph from callgraph.cpp, the lambda capture
// tables from analysis, and a handful of token-pattern helpers. Both
// families restrict findings to files with a module (src/...) — tests and
// tools exercise races and costs on purpose.

std::size_t match_forward(const std::vector<Token>& toks, std::size_t open,
                          const char* opener, const char* closer) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], opener)) ++depth;
    else if (is_punct(toks[i], closer) && --depth == 0) return i;
  }
  return std::string::npos;
}

std::size_t match_backward(const std::vector<Token>& toks, std::size_t close,
                           const char* opener, const char* closer) {
  int depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    if (is_punct(toks[i], closer)) ++depth;
    else if (is_punct(toks[i], opener) && --depth == 0) return i;
  }
  return std::string::npos;
}

bool member_call_prefix(const std::vector<Token>& toks, std::size_t i) {
  return i > 0 && (is_punct(toks[i - 1], ".") ||
                   (is_punct(toks[i - 1], ">") && i > 1 &&
                    is_punct(toks[i - 2], "-")));
}

/// Container member functions that mutate, regardless of which class they
/// belong to (the heuristic has no type info for locals).
const std::set<std::string>& container_mutators() {
  static const std::set<std::string> m = {
      "push_back", "emplace_back", "emplace_front", "push_front", "insert",
      "emplace",   "erase",        "clear",         "resize",     "pop_back",
      "pop_front", "push",         "pop",           "assign",     "append",
      "reserve",
  };
  return m;
}

/// std::atomic's own member API — calls on an atomic are the fix, not the bug.
const std::set<std::string>& atomic_safe_methods() {
  static const std::set<std::string> m = {
      "fetch_add", "fetch_sub", "fetch_or",  "fetch_and",
      "fetch_xor", "store",     "load",      "exchange",
      "compare_exchange_weak",  "compare_exchange_strong",
      "notify_one", "notify_all", "wait",
  };
  return m;
}

/// Lambdas of `f` that are parallel roots under `config`: lambda literals in
/// the argument list of a parallel-api call, plus lambdas whose bound name
/// (`auto work = [...]...`) is referenced in such an argument list.
std::vector<char> parallel_roots(const FileInfo& f, const Config& config) {
  std::vector<char> root(f.lambdas.size(), 0);
  const auto& toks = f.src.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier) continue;
    if (config.parallel_apis.count(toks[i].text) == 0) continue;
    if (!is_punct(toks[i + 1], "(")) continue;
    const std::size_t close = match_forward(toks, i + 1, "(", ")");
    if (close == std::string::npos) continue;
    for (std::size_t li = 0; li < f.lambdas.size(); ++li) {
      const LambdaInfo& lam = f.lambdas[li];
      if (lam.intro_begin > i + 1 && lam.intro_begin < close) root[li] = 1;
    }
    for (std::size_t j = i + 2; j < close; ++j) {
      if (toks[j].kind != TokenKind::kIdentifier) continue;
      for (std::size_t li = 0; li < f.lambdas.size(); ++li) {
        const LambdaInfo& lam = f.lambdas[li];
        if (!lam.bound_name.empty() && lam.bound_name == toks[j].text &&
            lam.intro_begin < i) {
          root[li] = 1;
        }
      }
    }
  }
  return root;
}

/// Per-run cross-file indexes for the race rules.
struct RaceIndex {
  std::map<std::string, std::vector<const ClassInfo*>> classes;
  std::set<std::string> unsafe_methods;  ///< public mutating, class w/o mutex
  std::set<std::string> safe_methods;    ///< public mutating, class w/ mutex
};

RaceIndex build_race_index(const std::vector<FileInfo>& files) {
  RaceIndex idx;
  for (const FileInfo& f : files) {
    for (const ClassInfo& cls : f.classes) {
      idx.classes[cls.name].push_back(&cls);
      for (const auto& [method, line] : cls.public_mutating_methods) {
        (void)line;
        (cls.has_mutex_member ? idx.safe_methods : idx.unsafe_methods)
            .insert(method);
      }
    }
  }
  return idx;
}

/// Analysis context for one parallel-root lambda.
struct ParallelRegion {
  const FileInfo* file = nullptr;
  const LambdaInfo* lam = nullptr;
  std::set<std::string> exempt;  ///< params/locals/value-captures, nested too
  bool locked = false;           ///< lambda (or a nested one) takes a lock
  const ClassInfo* enclosing_class = nullptr;  ///< of the enclosing method
};

ParallelRegion make_region(const FileInfo& f, std::size_t li,
                           const RaceIndex& idx) {
  ParallelRegion region;
  region.file = &f;
  const LambdaInfo& lam = f.lambdas[li];
  region.lam = &lam;
  const auto absorb = [&](const LambdaInfo& l) {
    region.exempt.insert(l.params.begin(), l.params.end());
    region.exempt.insert(l.locals.begin(), l.locals.end());
    region.exempt.insert(l.by_value.begin(), l.by_value.end());
    if (l.has_lock) region.locked = true;
  };
  absorb(lam);
  for (const LambdaInfo& other : f.lambdas) {
    if (&other != &lam && other.intro_begin > lam.body_begin &&
        other.body_end < lam.body_end) {
      absorb(other);  // nested lambda: its scope is inside the region
    }
  }
  // Enclosing member function -> class, for unqualified this-calls.
  const FunctionDef* enclosing = nullptr;
  for (const FunctionDef& fn : f.functions) {
    if (fn.body_begin < lam.intro_begin && lam.body_end < fn.body_end &&
        (enclosing == nullptr ||
         fn.body_end - fn.body_begin <
             enclosing->body_end - enclosing->body_begin)) {
      enclosing = &fn;
    }
  }
  if (enclosing != nullptr && !enclosing->class_name.empty()) {
    const auto it = idx.classes.find(enclosing->class_name);
    if (it != idx.classes.end()) region.enclosing_class = it->second.front();
  }
  return region;
}

/// Why `name` is shared across the region, or empty if it is not (or is
/// exempt: lambda-local, value-captured, or declared atomic in this file).
std::string shared_reason(const ParallelRegion& r, const std::string& name) {
  if (name.empty() || r.exempt.count(name) != 0) return {};
  if (r.file->atomic_names.count(name) != 0) return {};
  if (r.lam->by_ref.count(name) != 0) return "captured by reference";
  if (name.back() == '_' && (r.lam->captures_this || r.lam->ref_default)) {
    return "a data member shared via the captured object";
  }
  if (r.lam->ref_default) return "implicitly captured by reference ([&])";
  return {};
}

/// Walks left from token `m` through a postfix chain (subscripts, `.`, `->`)
/// to the base identifier. Sets `subscript_exempt` when any subscript on the
/// chain names the lambda's first parameter — the per-index disjoint-slot
/// idiom (`out[i] = ...` inside `parallel_for(n, [&](size_t i) ...)`).
const Token* postfix_base(const std::vector<Token>& toks, std::size_t m,
                          std::size_t lo, const LambdaInfo& lam,
                          bool& subscript_exempt) {
  for (;;) {
    if (m <= lo) return nullptr;
    if (is_punct(toks[m], "]")) {
      const std::size_t open = match_backward(toks, m, "[", "]");
      if (open == std::string::npos || open <= lo) return nullptr;
      if (!lam.first_param.empty()) {
        for (std::size_t j = open + 1; j < m; ++j) {
          if (is_ident(toks[j], lam.first_param.c_str())) {
            subscript_exempt = true;
            break;
          }
        }
      }
      m = open - 1;
      continue;
    }
    if (toks[m].kind == TokenKind::kIdentifier) {
      if (m >= 2 && is_punct(toks[m - 1], ".") &&
          toks[m - 2].kind != TokenKind::kNumber) {
        m -= 2;
        continue;
      }
      if (m >= 3 && is_punct(toks[m - 1], ">") && is_punct(toks[m - 2], "-")) {
        m -= 3;
        continue;
      }
      return &toks[m];
    }
    return nullptr;  // `(*p).x = ...` and friends: stay silent
  }
}

void scan_region_writes(const ParallelRegion& r,
                        const std::vector<char>& roots,
                        std::vector<Finding>& out) {
  const FileInfo& f = *r.file;
  const LambdaInfo& lam = *r.lam;
  const auto& toks = f.src.tokens;
  if (r.locked) return;  // adjacent lock: the region synchronizes itself

  const auto emit_write = [&](const Token& base, int line,
                              const std::string& why) {
    out.push_back(
        {"race-capture-write", f.path, line,
         "write to '" + base.text + "' (" + why +
             ") inside a parallel region (lambda at line " +
             std::to_string(lam.line) +
             " runs on pool threads) with no adjacent lock or atomic — "
             "unsynchronized cross-thread write",
         ""});
  };

  for (std::size_t k = lam.body_begin + 1; k < lam.body_end; ++k) {
    // Nested parallel roots get their own region scan; skip their bodies.
    bool skipped = false;
    for (std::size_t li = 0; li < f.lambdas.size(); ++li) {
      if (roots[li] == 0) continue;
      const LambdaInfo& n = f.lambdas[li];
      if (&n != &lam && n.intro_begin == k && n.body_end < lam.body_end) {
        k = n.body_end;
        skipped = true;
        break;
      }
    }
    if (skipped) continue;

    // Assignment (simple or compound; the tokenizer splits `+=` into + =).
    if (is_punct(toks[k], "=")) {
      if (k + 1 < lam.body_end && is_punct(toks[k + 1], "=")) {
        ++k;  // == comparison
        continue;
      }
      std::size_t opstart = k;
      const Token& prev = toks[k - 1];
      if (prev.kind == TokenKind::kPunct) {
        const std::string& p = prev.text;
        if (p == "=" || p == "!" || p == "<" || p == ">") continue;
        if (p == "+" || p == "-" || p == "*" || p == "/" || p == "%" ||
            p == "&" || p == "|" || p == "^") {
          opstart = k - 1;
        } else if (p != "]" && p != ")") {
          continue;  // brace-init `{ .x = }`, default args, etc.
        }
      }
      bool subscript_exempt = false;
      const Token* base = postfix_base(toks, opstart - 1, lam.body_begin, lam,
                                       subscript_exempt);
      if (base == nullptr || subscript_exempt) continue;
      const std::string why = shared_reason(r, base->text);
      if (!why.empty()) emit_write(*base, toks[opstart].line, why);
      continue;
    }
    // Increment/decrement.
    const bool plus2 = is_punct(toks[k], "+") && k + 1 < lam.body_end &&
                       is_punct(toks[k + 1], "+");
    const bool minus2 = is_punct(toks[k], "-") && k + 1 < lam.body_end &&
                        is_punct(toks[k + 1], "-");
    if (plus2 || minus2) {
      bool subscript_exempt = false;
      const Token* base = nullptr;
      if (toks[k - 1].kind == TokenKind::kIdentifier ||
          is_punct(toks[k - 1], "]")) {
        base = postfix_base(toks, k - 1, lam.body_begin, lam, subscript_exempt);
      } else if (k + 2 < lam.body_end &&
                 toks[k + 2].kind == TokenKind::kIdentifier) {
        base = &toks[k + 2];
      }
      ++k;  // consume the operator pair
      if (base == nullptr || subscript_exempt) continue;
      const std::string why = shared_reason(r, base->text);
      if (!why.empty()) emit_write(*base, toks[k].line, why);
    }
  }
}

void scan_region_calls(const ParallelRegion& r, const RaceIndex& idx,
                       const std::vector<char>& roots,
                       std::vector<Finding>& out) {
  const FileInfo& f = *r.file;
  const LambdaInfo& lam = *r.lam;
  const auto& toks = f.src.tokens;
  if (r.locked) return;

  for (std::size_t k = lam.body_begin + 1; k < lam.body_end; ++k) {
    bool skipped = false;
    for (std::size_t li = 0; li < f.lambdas.size(); ++li) {
      if (roots[li] == 0) continue;
      const LambdaInfo& n = f.lambdas[li];
      if (&n != &lam && n.intro_begin == k && n.body_end < lam.body_end) {
        k = n.body_end;
        skipped = true;
        break;
      }
    }
    if (skipped) continue;
    if (!is_punct(toks[k], "(") || toks[k - 1].kind != TokenKind::kIdentifier) {
      continue;
    }
    const Token& method = toks[k - 1];
    if (!member_call_prefix(toks, k - 1)) {
      // Unqualified call: a non-const method of the enclosing class invoked
      // on the captured `this`. Classes with a mutex member are treated as
      // internally synchronized (§13 soundness trade).
      if (!(r.lam->captures_this || r.lam->ref_default)) continue;
      if (k >= 2 && is_punct(toks[k - 2], ":")) continue;  // ns::f(...)
      if (r.exempt.count(method.text) != 0) continue;  // callable param/local
      if (r.enclosing_class == nullptr ||
          r.enclosing_class->has_mutex_member) {
        continue;
      }
      if (r.enclosing_class->public_mutating_methods.count(method.text) == 0) {
        continue;
      }
      out.push_back(
          {"race-nonconst-call", f.path, method.line,
           "call to non-const method '" + r.enclosing_class->name +
               "::" + method.text +
               "' on the captured object inside a parallel region (lambda at "
               "line " + std::to_string(lam.line) +
               ") — the class has no internal lock planaria-lint can see",
           ""});
      continue;
    }
    if (atomic_safe_methods().count(method.text) != 0) continue;
    // Universally-const container observers: even if some project class has
    // a same-named non-const method, a `.size()` call is never the race.
    static const std::set<std::string> known_const = {
        "size", "empty", "capacity", "data", "begin",
        "end",  "cbegin", "cend",    "count", "contains",
    };
    if (known_const.count(method.text) != 0) continue;
    const bool builtin = container_mutators().count(method.text) != 0;
    const bool known_unsafe = idx.unsafe_methods.count(method.text) != 0 &&
                              idx.safe_methods.count(method.text) == 0;
    if (!builtin && !known_unsafe) continue;
    // Walk to the object the call is on: skip the `.` / `->`.
    std::size_t m = k - 1;
    if (is_punct(toks[m - 1], ".")) m -= 2;
    else m -= 3;  // -> (member_call_prefix guaranteed the shape)
    bool subscript_exempt = false;
    const Token* base =
        postfix_base(toks, m, lam.body_begin, lam, subscript_exempt);
    if (base == nullptr || subscript_exempt) continue;
    if (f.atomic_names.count(base->text) != 0) continue;
    const std::string why = shared_reason(r, base->text);
    if (why.empty()) continue;
    out.push_back(
        {"race-nonconst-call", f.path, method.line,
         "non-const call '" + base->text + "." + method.text +
             "(...)' on shared '" + base->text + "' (" + why +
             ") inside a parallel region (lambda at line " +
             std::to_string(lam.line) + ") — '" + method.text +
             "' mutates and no adjacent lock or atomic guards it",
         ""});
  }
}

/// race-shared-static: mutable statics in parallel lambda bodies and in
/// every function reachable from one.
void scan_statics(const FileInfo& f, std::size_t begin, std::size_t end,
                  const std::string& where, std::set<std::string>& seen,
                  std::vector<Finding>& out) {
  const auto& toks = f.src.tokens;
  static const std::set<std::string> safe_markers = {
      "const",        "constexpr", "atomic",     "atomic_flag",
      "thread_local", "mutex",     "shared_mutex", "recursive_mutex",
      "once_flag",
  };
  for (std::size_t k = begin; k <= end && k < toks.size(); ++k) {
    if (!is_ident(toks[k], "static")) continue;
    bool safe = false;
    std::string declarator;
    for (std::size_t j = k + 1; j <= end && j < toks.size(); ++j) {
      if (is_punct(toks[j], ";") || is_punct(toks[j], "=") ||
          is_punct(toks[j], "{") || is_punct(toks[j], "(")) {
        break;
      }
      if (toks[j].kind == TokenKind::kIdentifier) {
        if (safe_markers.count(toks[j].text) != 0) {
          safe = true;
          break;
        }
        declarator = toks[j].text;
      }
    }
    if (safe) continue;
    const std::string key = f.path + ":" + std::to_string(toks[k].line);
    if (!seen.insert(key).second) continue;
    out.push_back(
        {"race-shared-static", f.path, toks[k].line,
         "mutable static '" + (declarator.empty() ? "?" : declarator) +
             "' is shared across worker threads (" + where +
             ") — make it const, atomic, thread_local, or hoist it out of "
             "the parallel region",
         ""});
  }
}

void rule_race(const std::vector<FileInfo>& files, const Config& config,
               const CallGraph& graph, std::vector<Finding>& out) {
  const RaceIndex idx = build_race_index(files);
  std::set<std::string> static_seen;
  std::set<std::string> seed_callees;

  for (const FileInfo& f : files) {
    if (f.lambdas.empty()) continue;
    const std::vector<char> roots = parallel_roots(f, config);
    for (std::size_t li = 0; li < f.lambdas.size(); ++li) {
      if (roots[li] == 0) continue;
      const LambdaInfo& lam = f.lambdas[li];
      const std::set<std::string> callees =
          collect_callees(f.src, lam.body_begin, lam.body_end);
      seed_callees.insert(callees.begin(), callees.end());
      if (f.module.empty()) continue;  // tests/tools race on purpose
      const ParallelRegion region = make_region(f, li, idx);
      scan_region_writes(region, roots, out);
      scan_region_calls(region, idx, roots, out);
      scan_statics(f, lam.body_begin + 1, lam.body_end - 1,
                   "declared directly inside the parallel lambda at line " +
                       std::to_string(lam.line),
                   static_seen, out);
    }
  }

  // Statics in the transitive closure of everything the regions call.
  std::map<std::size_t, std::string> prov;
  const std::vector<std::string> seeds(seed_callees.begin(),
                                       seed_callees.end());
  for (const std::size_t id : graph.reachable(seeds, {}, &prov)) {
    const CallGraphNode& node = graph.nodes[id];
    if (node.file->module.empty()) continue;
    scan_statics(*node.file, node.fn->body_begin + 1, node.fn->body_end - 1,
                 "in '" + node.qualified +
                     "', reachable from a parallel region via '" + prov[id] +
                     "'",
                 static_seen, out);
  }
}

// ---------------------------------------------------------------------------
// Hot-path cost rules

const std::set<std::string>& container_types() {
  static const std::set<std::string> t = {
      "vector", "deque", "list",          "map",           "set",
      "multimap", "multiset", "unordered_map", "unordered_set",
      "queue",  "priority_queue", "stack",
  };
  return t;
}

/// True when the declaration the token at `k` belongs to is static or
/// thread_local — one-time initialization, not a per-visit cost (and the
/// race-shared-static rule owns the mutable case).
bool static_decl_before(const std::vector<Token>& toks, std::size_t k,
                        std::size_t lo) {
  for (std::size_t b = k; b-- > lo && k - b < 8;) {
    if (is_ident(toks[b], "static") || is_ident(toks[b], "thread_local")) {
      return true;
    }
    if (toks[b].kind == TokenKind::kPunct &&
        (toks[b].text == ";" || toks[b].text == "{" || toks[b].text == "}" ||
         toks[b].text == "(")) {
      return false;
    }
  }
  return false;
}

void rule_hot(const std::vector<FileInfo>& files, const Config& config,
              const CallGraph& graph, std::vector<Finding>& out) {
  (void)files;
  if (config.hot_roots.empty()) return;
  std::vector<std::string> stops;
  for (const HotStop& s : config.hot_stops) stops.push_back(s.spec);
  std::map<std::size_t, std::string> prov;

  for (const std::size_t id : graph.reachable(config.hot_roots, stops, &prov)) {
    const CallGraphNode& node = graph.nodes[id];
    const FileInfo& f = *node.file;
    if (f.module.empty()) continue;  // hot mocks in tests are fair game
    const auto& toks = f.src.tokens;
    const std::size_t lo = node.fn->body_begin;
    const std::size_t hi = node.fn->body_end;
    const std::string where = "in hot function '" + node.qualified +
                              "' (reachable from hot-root '" + prov[id] + "')";
    const auto emit = [&](const char* rule, int line, const std::string& what,
                          const char* fix) {
      out.push_back({rule, f.path, line,
                     what + " " + where + " — " + fix, ""});
    };

    for (std::size_t k = lo + 1; k < hi; ++k) {
      const Token& t = toks[k];
      if (t.kind != TokenKind::kIdentifier) continue;
      const bool member = member_call_prefix(toks, k);
      const bool call_next = k + 1 < hi && is_punct(toks[k + 1], "(");
      const bool tmpl_next = k + 1 < hi && is_punct(toks[k + 1], "<");

      // hot-alloc -----------------------------------------------------------
      if (t.text == "new" && !(k > 0 && is_ident(toks[k - 1], "operator"))) {
        emit("hot-alloc", t.line, "operator new",
             "allocate once outside the per-record path or pool the storage");
        continue;
      }
      if ((t.text == "make_unique" || t.text == "make_shared") && !member &&
          (call_next || tmpl_next)) {
        emit("hot-alloc", t.line, "'" + t.text + "' allocation",
             "allocate once outside the per-record path or pool the storage");
        continue;
      }
      if ((t.text == "malloc" || t.text == "calloc" || t.text == "realloc" ||
           t.text == "strdup") &&
          !member && call_next) {
        emit("hot-alloc", t.line, "'" + t.text + "' allocation",
             "allocate once outside the per-record path or pool the storage");
        continue;
      }
      if (container_types().count(t.text) != 0 && tmpl_next && !member &&
          !static_decl_before(toks, k, lo)) {
        // Local container construction: `<...>` then a declarator identifier
        // (not a reference/pointer binding, not a nested-name qualifier).
        const std::size_t close = match_forward(toks, k + 1, "<", ">");
        if (close != std::string::npos && close < hi) {
          std::size_t j = close + 1;
          while (j < hi && is_ident(toks[j], "const")) ++j;
          if (j < hi && toks[j].kind == TokenKind::kIdentifier &&
              !(j + 1 < hi && is_punct(toks[j + 1], ":"))) {
            emit("hot-alloc", t.line,
                 "local '" + t.text + "' constructed per call",
                 "hoist the container out of the hot loop and reuse its "
                 "capacity (clear() keeps the allocation)");
            continue;
          }
        }
      }

      // hot-string ----------------------------------------------------------
      if (t.text == "string" && !member && !static_decl_before(toks, k, lo)) {
        const bool decl_like =
            k + 1 < hi && (toks[k + 1].kind == TokenKind::kIdentifier ||
                           is_punct(toks[k + 1], "("));
        if (decl_like) {
          emit("hot-string", t.line, "std::string construction",
               "operate on string_view/char buffers or hoist the string");
          continue;
        }
      }
      if (t.text == "to_string" && !member && call_next) {
        emit("hot-string", t.line, "'std::to_string' call",
             "format outside the per-record path");
        continue;
      }
      if (t.text == "ostringstream" || t.text == "stringstream" ||
          t.text == "stringbuf") {
        emit("hot-string", t.line, "'" + t.text + "' construction",
             "stream formatting allocates; move it off the hot path");
        continue;
      }

      // hot-iostream --------------------------------------------------------
      {
        static const std::set<std::string> stream_objects = {
            "cout", "cerr", "clog", "endl", "ofstream", "ifstream", "fstream",
        };
        static const std::set<std::string> io_calls = {
            "printf", "fprintf", "sprintf", "snprintf", "puts",
            "putchar", "fputs",  "fwrite",  "fread",    "fopen",
            "getline",
        };
        if (!member && (stream_objects.count(t.text) != 0 ||
                        (io_calls.count(t.text) != 0 && call_next))) {
          emit("hot-iostream", t.line, "I/O ('" + t.text + "')",
               "buffer diagnostics outside the per-record path");
          continue;
        }
      }

      // hot-throw -----------------------------------------------------------
      if (t.text == "throw") {
        emit("hot-throw", t.line, "throw statement",
             "hot paths report failure by contract macro or return value; "
             "unwinding machinery does not belong per record");
        continue;
      }

      // hot-mutex -----------------------------------------------------------
      if (t.text == "lock_guard" || t.text == "unique_lock" ||
          t.text == "scoped_lock" || t.text == "shared_lock") {
        emit("hot-mutex", t.line, "lock acquisition ('" + t.text + "')",
             "per-record locking serializes the pipeline; shard the state "
             "instead");
        continue;
      }
      if ((t.text == "lock" || t.text == "try_lock") && member && call_next) {
        emit("hot-mutex", t.line, "lock acquisition ('." + t.text + "()')",
             "per-record locking serializes the pipeline; shard the state "
             "instead");
        continue;
      }

      // hot-env-read --------------------------------------------------------
      const bool env_suffix =
          t.text.size() >= 8 &&
          t.text.compare(t.text.size() - 8, 8, "from_env") == 0;
      if (((t.text == "getenv" || t.text == "secure_getenv") || env_suffix) &&
          !member && call_next) {
        emit("hot-env-read", t.line, "config/env read ('" + t.text + "')",
             "resolve configuration once at construction time, not per "
             "record");
        continue;
      }
    }
  }
}

}  // namespace

bool known_rule(const std::string& rule) {
  static const std::set<std::string> rules = {
      "layering",          "layer-cycle",        "layer-undeclared",
      "determinism",       "unordered-iteration", "snapshot-pairing",
      "snapshot-roundtrip", "snapshot-missing",   "contract-coverage",
      "pragma-once",       "using-namespace",     "raw-assert",
      "suppression",
      "io-raw-call",       "io-raw-stream",
      "race-capture-write", "race-shared-static", "race-nonconst-call",
      "hot-alloc",         "hot-string",          "hot-iostream",
      "hot-throw",         "hot-mutex",           "hot-env-read",
      "state-unsaved-member", "state-unloaded-member",
      "state-order-mismatch", "state-det-taint",
  };
  return rules.count(rule) != 0;
}

std::vector<Finding> run_rules(const std::vector<FileInfo>& files,
                               const Config& config) {
  std::vector<Finding> out;
  std::map<std::string, const FileInfo*> by_path;
  for (const FileInfo& f : files) by_path.emplace(f.path, &f);

  rule_layering(files, config, out);
  rule_snapshot(files, config, out);
  rule_contract_coverage(files, config, out);
  for (const FileInfo& f : files) {
    rule_determinism(f, out);
    rule_unordered_iteration(f, by_path, config, out);
    rule_hygiene(f, out);
    rule_io_raw(f, out);
  }
  const CallGraph graph = build_call_graph(files);
  rule_race(files, config, graph, out);
  rule_hot(files, config, graph, out);
  rule_state(files, config, graph, out);
  return out;
}

}  // namespace planaria::lint
