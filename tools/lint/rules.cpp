// Rule passes of planaria-lint. Each rule consumes the analyzed file set
// and emits raw findings; the engine applies suppressions afterwards so a
// suppressed finding still shows up (with its reason) in the JSON report.
#include "lint/internal.hpp"

#include <algorithm>
#include <functional>
#include <sstream>

namespace planaria::lint {
namespace {

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}
bool is_ident(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

// ---------------------------------------------------------------------------
// layering / layer-cycle / layer-undeclared

/// Module of a quoted project include ("core/slp.hpp" -> "core"), or empty.
std::string include_module(const IncludeDirective& inc) {
  if (!inc.quoted) return {};
  const std::size_t slash = inc.path.find('/');
  return slash == std::string::npos ? std::string() : inc.path.substr(0, slash);
}

void rule_layering(const std::vector<FileInfo>& files, const Config& config,
                   std::vector<Finding>& out) {
  std::set<std::string> modules_in_tree;
  for (const FileInfo& f : files) {
    if (!f.module.empty()) modules_in_tree.insert(f.module);
  }

  std::set<std::string> undeclared_reported;
  // from-module -> (to-module -> first include location), for cycle search.
  std::map<std::string, std::map<std::string, std::pair<std::string, int>>>
      edges;

  for (const FileInfo& f : files) {
    if (f.module.empty()) continue;  // tools/tests/bench sit above the DAG
    const int from_layer = config.layer_of(f.module);
    if (from_layer < 0) {
      if (undeclared_reported.insert(f.module).second) {
        out.push_back({"layer-undeclared", f.path, 1,
                       "module 'src/" + f.module +
                           "' is not declared in layers.conf — every module "
                           "must have a place in the DAG",
                       ""});
      }
      continue;
    }
    for (const IncludeDirective& inc : f.src.includes) {
      const std::string to = include_module(inc);
      if (to.empty() || to == f.module) continue;
      if (modules_in_tree.count(to) == 0) continue;  // not a src module
      edges[f.module].emplace(to, std::make_pair(f.path, inc.line));
      const int to_layer = config.layer_of(to);
      if (to_layer < 0) {
        if (undeclared_reported.insert(to).second) {
          out.push_back({"layer-undeclared", f.path, inc.line,
                         "included module 'src/" + to +
                             "' is not declared in layers.conf",
                         ""});
        }
        continue;
      }
      if (to_layer < from_layer) continue;  // downward edge: always legal
      if (config.edge_allowed(f.module, to)) continue;
      std::ostringstream msg;
      msg << "layering: src/" << f.module << " (layer " << from_layer
          << ") must not include \"" << inc.path << "\" (src/" << to
          << ", layer " << to_layer << "); "
          << (to_layer == from_layer
                  ? "siblings in the DAG may not include each other"
                  : "the edge points up the DAG")
          << " — fix the dependency or add an `allow` edge with a reason to "
             "layers.conf";
      out.push_back({"layering", f.path, inc.line, msg.str(), ""});
    }
  }

  // Cycle detection over the *actual* module graph (allow edges included —
  // an allowed edge still must not close a cycle).
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  std::set<std::string> cycle_reported;
  std::function<void(const std::string&)> dfs = [&](const std::string& m) {
    color[m] = 1;
    stack.push_back(m);
    for (const auto& [to, where] : edges[m]) {
      if (color[to] == 1) {
        // Reconstruct the cycle from the grey stack.
        std::ostringstream msg;
        msg << "module include cycle: ";
        bool in_cycle = false;
        for (const auto& s : stack) {
          if (s == to) in_cycle = true;
          if (in_cycle) msg << s << " -> ";
        }
        msg << to;
        if (cycle_reported.insert(msg.str()).second) {
          out.push_back(
              {"layer-cycle", where.first, where.second, msg.str(), ""});
        }
      } else if (color[to] == 0) {
        dfs(to);
      }
    }
    stack.pop_back();
    color[m] = 2;
  };
  for (const auto& [m, _] : edges) {
    if (color[m] == 0) dfs(m);
  }
}

// ---------------------------------------------------------------------------
// determinism

void rule_determinism(const FileInfo& f, std::vector<Finding>& out) {
  static const std::set<std::string> banned_calls = {
      "time",       "clock",   "gettimeofday", "clock_gettime",
      "timespec_get", "rand",  "srand",        "rand_r",
      "drand48",    "getenv",  "secure_getenv",
  };
  static const std::set<std::string> banned_types = {
      "random_device", "system_clock", "steady_clock", "high_resolution_clock",
  };
  const auto& toks = f.src.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (banned_types.count(t.text) != 0) {
      out.push_back({"determinism", f.path, t.line,
                     "'" + t.text +
                         "' is a nondeterminism source; simulation state must "
                         "derive only from the trace and the seed (use "
                         "planaria::Rng)",
                     ""});
      continue;
    }
    if (banned_calls.count(t.text) == 0) continue;
    if (i + 1 >= toks.size() || !is_punct(toks[i + 1], "(")) continue;
    // A member named like a banned function (obj.time(...)) is not libc's.
    if (i > 0 && (is_punct(toks[i - 1], ".") ||
                  (is_punct(toks[i - 1], ">") && i > 1 &&
                   is_punct(toks[i - 2], "-")))) {
      continue;
    }
    out.push_back({"determinism", f.path, t.line,
                   "call to '" + t.text +
                       "()' — wall clock, libc randomness, and environment "
                       "reads break bit-identical replay; sanction the file "
                       "in layers.conf if this use is config-time only",
                   ""});
  }
}

// ---------------------------------------------------------------------------
// unordered-iteration

void rule_unordered_iteration(const FileInfo& f,
                              const std::map<std::string, const FileInfo*>& by_path,
                              const Config& config,
                              std::vector<Finding>& out) {
  // Identifiers known to be unordered containers: declared in this file or
  // in a directly-included project header (a .cpp sees its class's members).
  std::set<std::string> unordered = f.unordered_names;
  for (const IncludeDirective& inc : f.src.includes) {
    if (!inc.quoted) continue;
    for (const char* root : {"src/", "tools/", "bench/", "tests/"}) {
      const auto it = by_path.find(root + inc.path);
      if (it != by_path.end()) {
        unordered.insert(it->second->unordered_names.begin(),
                         it->second->unordered_names.end());
      }
    }
  }
  if (unordered.empty()) return;

  const auto& toks = f.src.tokens;
  for (const FunctionDef& fn : f.functions) {
    // Serialization / accounting context?
    bool serializes = config.serialization_apis.count(fn.name) != 0;
    for (std::size_t i = fn.params_begin;
         !serializes && i <= fn.params_end && i < toks.size(); ++i) {
      if (is_ident(toks[i], "Writer")) serializes = true;
    }
    for (std::size_t i = fn.body_begin;
         !serializes && i <= fn.body_end && i < toks.size(); ++i) {
      if (toks[i].kind == TokenKind::kIdentifier && i + 1 <= fn.body_end &&
          is_punct(toks[i + 1], "(") &&
          config.serialization_apis.count(toks[i].text) != 0) {
        serializes = true;
      }
    }
    if (!serializes) continue;

    for (std::size_t i = fn.body_begin; i <= fn.body_end && i < toks.size();
         ++i) {
      // Pattern A: range-for whose range expression names an unordered
      // container: for ( ... : <range> )
      if (is_ident(toks[i], "for") && i + 1 <= fn.body_end &&
          is_punct(toks[i + 1], "(")) {
        int depth = 0;
        std::size_t colon = 0, close = 0;
        for (std::size_t j = i + 1; j <= fn.body_end; ++j) {
          if (is_punct(toks[j], "(")) ++depth;
          else if (is_punct(toks[j], ")")) {
            if (--depth == 0) {
              close = j;
              break;
            }
          } else if (depth == 1 && colon == 0 && is_punct(toks[j], ":") &&
                     j + 1 < toks.size() && !is_punct(toks[j + 1], ":") &&
                     j > 0 && !is_punct(toks[j - 1], ":")) {
            colon = j;
          }
        }
        if (colon != 0 && close != 0) {
          for (std::size_t j = colon + 1; j < close; ++j) {
            if (toks[j].kind == TokenKind::kIdentifier &&
                unordered.count(toks[j].text) != 0) {
              out.push_back(
                  {"unordered-iteration", f.path, toks[j].line,
                   "iteration over unordered container '" + toks[j].text +
                       "' inside '" + fn.name +
                       "', which serializes or merges accounted state — "
                       "hash-order dependence breaks byte-stable encodings; "
                       "iterate a sorted copy instead",
                   ""});
              break;
            }
          }
        }
      }
      // Pattern B: explicit iterator walk, `container.begin(`.
      if (toks[i].kind == TokenKind::kIdentifier &&
          unordered.count(toks[i].text) != 0 && i + 3 <= fn.body_end &&
          is_punct(toks[i + 1], ".") &&
          (is_ident(toks[i + 2], "begin") || is_ident(toks[i + 2], "cbegin")) &&
          is_punct(toks[i + 3], "(")) {
        out.push_back({"unordered-iteration", f.path, toks[i].line,
                       "iterator walk over unordered container '" +
                           toks[i].text + "' inside '" + fn.name +
                           "', which serializes or merges accounted state",
                       ""});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// snapshot-pairing / snapshot-roundtrip / snapshot-missing

void rule_snapshot(const std::vector<FileInfo>& files, const Config& config,
                   std::vector<Finding>& out) {
  // Identifier sets of the round-trip test files.
  std::set<std::string> roundtrip_idents;
  bool have_roundtrip_file = false;
  for (const FileInfo& f : files) {
    if (std::find(config.roundtrip_tests.begin(), config.roundtrip_tests.end(),
                  f.path) == config.roundtrip_tests.end()) {
      continue;
    }
    have_roundtrip_file = true;
    for (const Token& t : f.src.tokens) {
      if (t.kind == TokenKind::kIdentifier) roundtrip_idents.insert(t.text);
    }
  }

  for (const FileInfo& f : files) {
    if (!f.is_header) continue;
    for (const ClassInfo& cls : f.classes) {
      if (cls.has_save() != cls.has_load()) {
        const char* has = cls.has_save() ? "save_state" : "load_state";
        const char* missing = cls.has_save() ? "load_state" : "save_state";
        out.push_back(
            {"snapshot-pairing", f.path,
             cls.has_save() ? cls.save_state_line : cls.load_state_line,
             "class '" + cls.name + "' declares " + has + " but no " +
                 missing +
                 " — checkpoint encode and decode must evolve together",
             ""});
      }
      if (cls.has_save() && cls.has_load() && have_roundtrip_file &&
          roundtrip_idents.count(cls.name) == 0) {
        out.push_back({"snapshot-roundtrip", f.path, cls.save_state_line,
                       "snapshottable class '" + cls.name +
                           "' is never mentioned in the round-trip test (" +
                           config.roundtrip_tests.front() +
                           ") — byte-stability is only real if a test holds "
                           "it",
                       ""});
      }
      if (!f.module.empty() && config.snapshot_modules.count(f.module) != 0 &&
          cls.is_class && !cls.members.empty() && !cls.has_save() &&
          !cls.has_load()) {
        out.push_back({"snapshot-missing", f.path, cls.line,
                       "class '" + cls.name + "' in snapshot-reachable "
                       "module 'src/" + f.module + "' holds state (" +
                           std::to_string(cls.members.size()) +
                           " member(s), e.g. '" + cls.members.front().name +
                           "') but has no save_state — a checkpointed run "
                           "would silently lose it",
                       ""});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// contract-coverage

void rule_contract_coverage(const std::vector<FileInfo>& files,
                            const Config& config,
                            std::vector<Finding>& out) {
  static const std::set<std::string> contract_macros = {
      "PLANARIA_REQUIRE",      "PLANARIA_REQUIRE_MSG",
      "PLANARIA_ENSURE",       "PLANARIA_ENSURE_MSG",
      "PLANARIA_INVARIANT",    "PLANARIA_INVARIANT_MSG",
      "PLANARIA_ASSERT",       "PLANARIA_ASSERT_MSG",
      "PLANARIA_DASSERT",      "PLANARIA_DASSERT_MSG",
      "PLANARIA_UNREACHABLE",
  };

  // Public mutating methods per class, from headers of contract modules.
  std::map<std::string, std::set<std::string>> public_mutating;
  for (const FileInfo& f : files) {
    if (!f.is_header || f.module.empty() ||
        config.contract_modules.count(f.module) == 0) {
      continue;
    }
    for (const ClassInfo& cls : f.classes) {
      for (const auto& method : cls.public_mutating_methods) {
        public_mutating[cls.name].insert(method.first);
      }
    }
  }

  for (const FileInfo& f : files) {
    if (f.module.empty() || config.contract_modules.count(f.module) == 0) {
      continue;
    }
    const auto& toks = f.src.tokens;
    for (const FunctionDef& fn : f.functions) {
      if (fn.is_const || fn.class_name.empty()) continue;
      const auto cls = public_mutating.find(fn.class_name);
      if (cls == public_mutating.end() || cls->second.count(fn.name) == 0) {
        continue;  // not a public mutating method of a known class
      }
      if (fn.name == fn.class_name || fn.name == "load_state") {
        // Constructors establish invariants rather than check them;
        // load_state validates via the snapshot Reader (throws on bad input).
        continue;
      }
      bool has_contract = false;
      int statements = 0;
      for (std::size_t i = fn.body_begin; i <= fn.body_end && i < toks.size();
           ++i) {
        if (is_punct(toks[i], ";")) ++statements;
        if (toks[i].kind == TokenKind::kIdentifier &&
            contract_macros.count(toks[i].text) != 0) {
          has_contract = true;
          break;
        }
      }
      // Trivial bodies (a forwarding call or a couple of assignments) would
      // only grow noise contracts; the threshold is part of the rule's
      // documented contract (DESIGN.md §12).
      if (has_contract || statements <= 2) continue;
      out.push_back(
          {"contract-coverage", f.path, fn.line,
           "public mutating method '" + fn.class_name + "::" + fn.name +
               "' has no REQUIRE/ENSURE/INVARIANT/DASSERT — state-changing "
               "entry points in src/" + f.module +
               " must check something or carry // lint: no-contract(<why>)",
           ""});
    }
  }
}

// ---------------------------------------------------------------------------
// hygiene: pragma-once / using-namespace / raw-assert

void rule_hygiene(const FileInfo& f, std::vector<Finding>& out) {
  const auto& toks = f.src.tokens;
  if (f.is_header) {
    if (!f.src.has_pragma_once) {
      out.push_back({"pragma-once", f.path, 1,
                     "header lacks #pragma once (project headers use pragma "
                     "guards exclusively)",
                     ""});
    }
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (is_ident(toks[i], "using") && is_ident(toks[i + 1], "namespace")) {
        out.push_back({"using-namespace", f.path, toks[i].line,
                       "`using namespace` in a header leaks into every "
                       "includer",
                       ""});
      }
    }
  }
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (is_ident(toks[i], "assert") && is_punct(toks[i + 1], "(")) {
      if (i > 0 && (is_punct(toks[i - 1], ".") ||
                    (is_punct(toks[i - 1], ">") && i > 1 &&
                     is_punct(toks[i - 2], "-")))) {
        continue;
      }
      out.push_back({"raw-assert", f.path, toks[i].line,
                     "raw assert() compiles out in release builds — use "
                     "PLANARIA_ASSERT (always on) or PLANARIA_DASSERT "
                     "(debug-only, sanitizer-armed)",
                     ""});
    }
  }
}

}  // namespace

bool known_rule(const std::string& rule) {
  static const std::set<std::string> rules = {
      "layering",          "layer-cycle",        "layer-undeclared",
      "determinism",       "unordered-iteration", "snapshot-pairing",
      "snapshot-roundtrip", "snapshot-missing",   "contract-coverage",
      "pragma-once",       "using-namespace",     "raw-assert",
      "suppression",
  };
  return rules.count(rule) != 0;
}

std::vector<Finding> run_rules(const std::vector<FileInfo>& files,
                               const Config& config) {
  std::vector<Finding> out;
  std::map<std::string, const FileInfo*> by_path;
  for (const FileInfo& f : files) by_path.emplace(f.path, &f);

  rule_layering(files, config, out);
  rule_snapshot(files, config, out);
  rule_contract_coverage(files, config, out);
  for (const FileInfo& f : files) {
    rule_determinism(f, out);
    rule_unordered_iteration(f, by_path, config, out);
    rule_hygiene(f, out);
  }
  return out;
}

}  // namespace planaria::lint
