// Lightweight C++ tokenizer for planaria-lint.
//
// Deliberately not a full lexer: the rules only need identifiers, literals,
// punctuation, comments, and preprocessor directives, each with a line
// number. The corner cases that matter for correctness of the *rules* are
// handled exactly:
//   * line continuations (backslash-newline) are spliced anywhere, including
//     inside // comments and #include lines, without losing line numbers;
//   * raw string literals R"delim(...)delim" — an #include or banned call
//     inside one is data, not code;
//   * block comments spanning lines, including ones containing "#include";
//   * digraphs and multi-char operators are split into single-char puncts,
//     which is lossless for every pattern the rules match on.
#include "lint/lint.hpp"

#include <cctype>

namespace planaria::lint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  TokenizedSource run() {
    while (pos_ < text_.size()) {
      skip_continuations();
      if (pos_ >= text_.size()) break;
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        preprocessor_line();
        continue;
      }
      at_line_start_ = false;
      if (c == 'R' && peek(1) == '"') {
        raw_string();
        continue;
      }
      // Encoding prefixes on ordinary/raw literals: u8"", u"", U"", L"".
      if ((c == 'u' || c == 'U' || c == 'L') && string_prefix()) continue;
      if (c == '"') {
        quoted_string('"', TokenKind::kString);
        continue;
      }
      if (c == '\'') {
        quoted_string('\'', TokenKind::kChar);
        continue;
      }
      if (ident_start(c)) {
        identifier();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
        number();
        continue;
      }
      out_.tokens.push_back({TokenKind::kPunct, std::string(1, c), line_});
      ++pos_;
    }
    return std::move(out_);
  }

 private:
  char peek(std::size_t ahead) const {
    // A backslash-newline between this char and the next is handled by
    // skip_continuations at consumption time; for lookahead, skip it here.
    std::size_t p = pos_ + 1;
    std::size_t skipped = 0;
    while (p + 1 < text_.size() && text_[p] == '\\' &&
           (text_[p + 1] == '\n' ||
            (text_[p + 1] == '\r' && p + 2 < text_.size() &&
             text_[p + 2] == '\n'))) {
      p += text_[p + 1] == '\r' ? 3 : 2;
    }
    (void)skipped;
    if (ahead == 1) return p < text_.size() ? text_[p] : '\0';
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  /// Splices backslash-newline at the cursor (possibly several in a row).
  void skip_continuations() {
    while (pos_ + 1 < text_.size() && text_[pos_] == '\\') {
      if (text_[pos_ + 1] == '\n') {
        pos_ += 2;
        ++line_;
      } else if (text_[pos_ + 1] == '\r' && pos_ + 2 < text_.size() &&
                 text_[pos_ + 2] == '\n') {
        pos_ += 3;
        ++line_;
      } else {
        break;
      }
    }
  }

  /// Advances one character, splicing continuations and counting lines.
  /// Returns '\0' at end of input.
  char take() {
    skip_continuations();
    if (pos_ >= text_.size()) return '\0';
    const char c = text_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  void line_comment() {
    const int start = line_;
    pos_ += 2;
    std::string body;
    for (;;) {
      skip_continuations();  // a \-newline extends the comment
      if (pos_ >= text_.size() || text_[pos_] == '\n') break;
      body.push_back(text_[pos_++]);
    }
    out_.comments.push_back({trim(body), start});
  }

  void block_comment() {
    const int start = line_;
    pos_ += 2;
    std::string body;
    while (pos_ < text_.size()) {
      if (text_[pos_] == '*' && pos_ + 1 < text_.size() &&
          text_[pos_ + 1] == '/') {
        pos_ += 2;
        break;
      }
      if (text_[pos_] == '\n') ++line_;
      body.push_back(text_[pos_++]);
    }
    out_.comments.push_back({trim(body), start});
  }

  /// Consumes a whole preprocessor logical line (continuations spliced) and
  /// records #include / #pragma once. A // comment ends the directive; a
  /// raw "#include" inside it is already dead by then.
  void preprocessor_line() {
    const int start = line_;
    std::string body;
    ++pos_;  // '#'
    for (;;) {
      skip_continuations();
      if (pos_ >= text_.size() || text_[pos_] == '\n') break;
      if (text_[pos_] == '/' && pos_ + 1 < text_.size() &&
          (text_[pos_ + 1] == '/' || text_[pos_ + 1] == '*')) {
        if (text_[pos_ + 1] == '/') {
          line_comment();
          break;
        }
        block_comment();
        continue;
      }
      body.push_back(text_[pos_++]);
    }
    parse_directive(trim(body), start);
    at_line_start_ = true;
  }

  void parse_directive(const std::string& body, int start) {
    std::size_t i = 0;
    auto word = [&] {
      while (i < body.size() &&
             std::isspace(static_cast<unsigned char>(body[i]))) {
        ++i;
      }
      std::string w;
      while (i < body.size() && ident_char(body[i])) w.push_back(body[i++]);
      return w;
    };
    const std::string kw = word();
    if (kw == "include") {
      while (i < body.size() &&
             std::isspace(static_cast<unsigned char>(body[i]))) {
        ++i;
      }
      if (i < body.size() && (body[i] == '"' || body[i] == '<')) {
        const char close = body[i] == '"' ? '"' : '>';
        const bool quoted = body[i] == '"';
        ++i;
        std::string path;
        while (i < body.size() && body[i] != close) path.push_back(body[i++]);
        out_.includes.push_back({path, start, quoted});
      }
    } else if (kw == "pragma" && word() == "once") {
      out_.has_pragma_once = true;
    }
  }

  void raw_string() {
    const int start = line_;
    pos_ += 2;  // R"
    std::string delim;
    while (pos_ < text_.size() && text_[pos_] != '(') {
      delim.push_back(text_[pos_++]);
    }
    if (pos_ < text_.size()) ++pos_;  // '('
    const std::string closer = ")" + delim + "\"";
    std::string body;
    while (pos_ < text_.size() &&
           text_.compare(pos_, closer.size(), closer) != 0) {
      if (text_[pos_] == '\n') ++line_;
      body.push_back(text_[pos_++]);
    }
    pos_ += std::min(closer.size(), text_.size() - pos_);
    out_.tokens.push_back({TokenKind::kString, body, start});
  }

  /// Handles u8"..", u'..', U"..", L"..", uR"..(..)..": consumes the prefix
  /// and dispatches. Returns false when the u/U/L starts a plain identifier.
  bool string_prefix() {
    std::size_t p = pos_ + 1;
    if (text_[pos_] == 'u' && p < text_.size() && text_[p] == '8') ++p;
    if (p >= text_.size()) return false;
    if (text_[p] == 'R' && p + 1 < text_.size() && text_[p + 1] == '"') {
      pos_ = p;
      raw_string();
      return true;
    }
    if (text_[p] == '"' || text_[p] == '\'') {
      const char q = text_[p];
      pos_ = p;
      quoted_string(q, q == '"' ? TokenKind::kString : TokenKind::kChar);
      return true;
    }
    return false;
  }

  void quoted_string(char quote, TokenKind kind) {
    const int start = line_;
    ++pos_;
    std::string body;
    while (pos_ < text_.size() && text_[pos_] != quote) {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
        // Keep escapes verbatim; a \" must not terminate the literal and a
        // \<newline> inside a literal is a continuation.
        if (text_[pos_ + 1] == '\n') {
          pos_ += 2;
          ++line_;
          continue;
        }
        body.push_back(text_[pos_++]);
        body.push_back(text_[pos_++]);
        continue;
      }
      if (text_[pos_] == '\n') break;  // unterminated; don't eat the file
      body.push_back(text_[pos_++]);
    }
    if (pos_ < text_.size() && text_[pos_] == quote) ++pos_;
    out_.tokens.push_back({kind, body, start});
  }

  void identifier() {
    const int start = line_;
    std::string word;
    word.push_back(text_[pos_++]);
    for (;;) {
      skip_continuations();
      if (pos_ >= text_.size() || !ident_char(text_[pos_])) break;
      word.push_back(text_[pos_++]);
    }
    out_.tokens.push_back({TokenKind::kIdentifier, std::move(word), start});
  }

  void number() {
    const int start = line_;
    std::string word;
    // pp-number: digits, idents, dots, exponent signs, and C++14 digit
    // separators (0xFF'FF) glue together. A separator only continues the
    // number when a digit-ish character follows — `0x1F'a'` must leave the
    // char literal alone.
    while (pos_ < text_.size()) {
      skip_continuations();
      const char c = pos_ < text_.size() ? text_[pos_] : '\0';
      if (c == '\'' && pos_ + 1 < text_.size() && ident_char(text_[pos_ + 1])) {
        word.push_back(c);
        ++pos_;
        continue;
      }
      if (ident_char(c) || c == '.') {
        word.push_back(c);
        ++pos_;
        if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') &&
            pos_ < text_.size() &&
            (text_[pos_] == '+' || text_[pos_] == '-')) {
          word.push_back(text_[pos_++]);
        }
      } else {
        break;
      }
    }
    out_.tokens.push_back({TokenKind::kNumber, std::move(word), start});
  }

  static std::string trim(const std::string& s) {
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
    return s.substr(b, e - b);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  TokenizedSource out_;
};

}  // namespace

TokenizedSource tokenize(const std::string& text) { return Lexer(text).run(); }

}  // namespace planaria::lint
