#include <cstdint>

namespace fx::core {

struct Writer {
  void u64(std::uint64_t) {}
};
struct Reader {
  std::uint64_t u64() { return 0; }
};

class Tagged {
 public:
  // BAD: the address of this object is not part of the deterministic state;
  // a snapshot of seed_ can never be reproduced by a replay.
  void stamp() { seed_ = reinterpret_cast<std::uint64_t>(this); }
  void save_state(Writer& w) const { w.u64(seed_); }
  void load_state(Reader& r) { seed_ = r.u64(); }

 private:
  std::uint64_t seed_ = 0;
};

}  // namespace fx::core
