#include <cstddef>

namespace fx::core {

std::size_t threads_from_env(std::size_t fallback);

std::size_t spin(std::size_t records) {
  return records / threads_from_env(4);  // BAD: env-derived config per call
}

}  // namespace fx::core
