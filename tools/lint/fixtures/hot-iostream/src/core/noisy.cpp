#include <iostream>

namespace fx::core {

void spin(long value) {
  std::cout << value << '\n';  // BAD: stream I/O per record
}

}  // namespace fx::core
