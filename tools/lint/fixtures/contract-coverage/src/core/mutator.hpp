#pragma once

#include <cstdint>

namespace fx::core {

class Mutator {
 public:
  void advance(std::uint64_t by);

 private:
  std::uint64_t position_ = 0;
  std::uint64_t steps_ = 0;
};

}  // namespace fx::core
