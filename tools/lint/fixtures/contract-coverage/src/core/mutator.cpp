#include "core/mutator.hpp"

namespace fx::core {

// BAD: mutates observable state with no REQUIRE/ENSURE/DASSERT and no
// no-contract waiver.
void Mutator::advance(std::uint64_t by) {
  position_ += by;
  steps_ += 1;
  if (position_ > 1000) {
    position_ = 0;
  }
}

}  // namespace fx::core
