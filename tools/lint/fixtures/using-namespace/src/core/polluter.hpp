#pragma once

#include <string>

using namespace std;  // BAD: leaks into every includer

namespace fx::core {
inline string shout() { return "hi"; }
}  // namespace fx::core
