#include <mutex>

namespace fx::core {

std::mutex g_meter_mutex;
long g_meter = 0;

long spin(long value) {
  std::lock_guard<std::mutex> lock(g_meter_mutex);  // BAD: per-record lock
  g_meter += value;
  return g_meter;
}

}  // namespace fx::core
