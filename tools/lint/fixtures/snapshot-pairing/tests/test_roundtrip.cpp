// Fixture round-trip suite: names OneWay so only snapshot-pairing fires.
#include "core/oneway.hpp"

int main() {
  fx::core::OneWay one_way;
  (void)one_way;
  return 0;
}
