#pragma once

#include <cstdint>

namespace fx::core {

struct Writer;

class OneWay {
 public:
  void save_state(Writer& w) const;  // BAD: no load_state counterpart

 private:
  std::uint64_t counter_ = 0;
};

}  // namespace fx::core
