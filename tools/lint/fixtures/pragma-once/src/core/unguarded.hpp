// BAD: no #pragma once.

namespace fx::core {
inline int unguarded() { return 3; }
}  // namespace fx::core
