#include <cstdint>

namespace fx::core {

// lint: suppress(made-up-rule) some words
std::uint64_t a() { return 1; }

// lint: suppress(determinism)
std::uint64_t b() { return 2; }

}  // namespace fx::core
