#include <fstream>

namespace fx::core {

void dump(const char* path) {
  std::ofstream out(path, std::ios::binary);  // BAD: no durable rename cycle
  out << 42;
}

}  // namespace fx::core
