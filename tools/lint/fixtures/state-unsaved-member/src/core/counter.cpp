#include <cstdint>

namespace fx::core {

struct Writer {
  void u64(std::uint64_t) {}
};
struct Reader {
  std::uint64_t u64() { return 0; }
};

class Counter {
 public:
  void tick() {
    ++hits_;
    ++skipped_;  // BAD: mutated on the state path, never serialized
  }
  void save_state(Writer& w) const { w.u64(hits_); }
  void load_state(Reader& r) { hits_ = r.u64(); }

 private:
  std::uint64_t hits_ = 0;
  std::uint64_t skipped_ = 0;
};

}  // namespace fx::core
