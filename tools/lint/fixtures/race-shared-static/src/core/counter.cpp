#include <cstddef>

namespace fx::core {

class Pool {
 public:
  void parallel_for(std::size_t n, void (*body)(std::size_t));
};

std::size_t next_ticket() {
  static std::size_t ticket = 0;  // BAD: mutable static shared across workers
  return ++ticket;
}

void hand_out(Pool& pool, std::size_t n) {
  pool.parallel_for(n, [](std::size_t) { next_ticket(); });
}

}  // namespace fx::core
