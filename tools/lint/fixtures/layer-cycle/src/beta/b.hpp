#pragma once

#include "alpha/a.hpp"

namespace fx::beta {
inline int b() { return 2; }
}  // namespace fx::beta
