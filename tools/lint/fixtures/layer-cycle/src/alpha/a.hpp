#pragma once

#include "beta/b.hpp"

namespace fx::alpha {
inline int a() { return 1; }
}  // namespace fx::alpha
