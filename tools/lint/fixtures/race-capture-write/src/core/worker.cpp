#include <cstddef>
#include <vector>

namespace fx::core {

class Pool {
 public:
  void parallel_for(std::size_t n, void (*body)(std::size_t));
};

long sum_all(Pool& pool, const std::vector<long>& values) {
  long total = 0;
  pool.parallel_for(values.size(), [&](std::size_t i) {
    total += values[i];  // BAD: by-ref capture written without mutex/atomic
  });
  return total;
}

}  // namespace fx::core
