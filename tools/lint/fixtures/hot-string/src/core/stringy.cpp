#include <string>

namespace fx::core {

bool spin(const char* name) {
  std::string key(name);  // BAD: per-call string construction on the hot path
  return !key.empty();
}

}  // namespace fx::core
