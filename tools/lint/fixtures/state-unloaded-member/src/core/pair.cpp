#include <cstdint>

namespace fx::core {

struct Writer {
  void u64(std::uint64_t) {}
};
struct Reader {
  std::uint64_t u64() { return 0; }
};

class Pair {
 public:
  void save_state(Writer& w) const {
    w.u64(a_);
    w.u64(b_);  // BAD: b_ is encoded but load_state never restores it
  }
  void load_state(Reader& r) { a_ = r.u64(); }

 private:
  std::uint64_t a_ = 0;
  std::uint64_t b_ = 0;
};

}  // namespace fx::core
