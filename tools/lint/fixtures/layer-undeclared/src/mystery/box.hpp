#pragma once

namespace fx::mystery {
inline int box() { return 7; }
}  // namespace fx::mystery
