#include <cassert>

namespace fx::core {

int halve(int v) {
  assert(v % 2 == 0);  // BAD: raw assert bypasses the contract layer
  return v / 2;
}

}  // namespace fx::core
