#pragma once

#include <cstdint>

namespace fx::core {

struct Writer;
struct Reader;

class Forgotten {
 public:
  void save_state(Writer& w) const;
  void load_state(Reader& r);

 private:
  std::uint64_t counter_ = 0;
};

}  // namespace fx::core
