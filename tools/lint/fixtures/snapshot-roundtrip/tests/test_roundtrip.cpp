// Fixture round-trip suite that does NOT mention the Forgotten class.
int main() { return 0; }
