#include <cstdint>
#include <unordered_map>

namespace fx::core {

struct Writer {
  void u64(std::uint64_t v) { sum += v; }
  std::uint64_t sum = 0;
};

class Accounts {
 public:
  void save_state(Writer& w) const {
    // BAD: hash-order dependent encoding.
    for (const auto& [key, value] : balances_) {
      w.u64(key);
      w.u64(value);
    }
  }

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> balances_;
};

}  // namespace fx::core
