#include <cstddef>

namespace fx::core {

class Pool {
 public:
  void parallel_for(std::size_t n, void (*body)(std::size_t));
};

class Histogram {
 public:
  void record(std::size_t bucket) { counts_[bucket & 15] += 1; }

 private:
  std::size_t counts_[16] = {};
};

void tally(Pool& pool, Histogram& hist, std::size_t n) {
  pool.parallel_for(n, [&](std::size_t i) {
    hist.record(i);  // BAD: non-const call on a shared, unlocked object
  });
}

}  // namespace fx::core
