#include <cstddef>

namespace fx::core {

int* spin(std::size_t n) {
  int* buf = new int[n];  // BAD: per-call heap allocation on the hot path
  for (std::size_t i = 0; i < n; ++i) buf[i] = static_cast<int>(i);
  return buf;
}

}  // namespace fx::core
