#include <cstdio>

namespace fx::core {

void persist(const char* path) {
  std::FILE* f = std::fopen(path, "wb");  // BAD: raw open bypasses the VFS
  std::fputc('x', f);
  std::fclose(f);
  std::rename(path, "final.bin");  // BAD: rename without directory fsync
}

}  // namespace fx::core
