#pragma once

#include "core/engine.hpp"  // BAD: common sits below core in the DAG

namespace fx::common {
inline int helper() { return fx::core::answer(); }
}  // namespace fx::common
