#pragma once

namespace fx::core {
inline int answer() { return 42; }
}  // namespace fx::core
