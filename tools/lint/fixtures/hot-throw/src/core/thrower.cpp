namespace fx::core {

long spin(long value) {
  if (value < 0) throw value;  // BAD: throw in the per-record path
  return value * 2;
}

}  // namespace fx::core
