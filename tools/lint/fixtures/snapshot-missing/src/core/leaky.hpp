#pragma once

#include <cstdint>

namespace fx::core {

class Leaky {
 public:
  void bump() { ++hits_; }

 private:
  std::uint64_t hits_ = 0;  // BAD: mutable state, no save_state/load_state
};

}  // namespace fx::core
