#include <cstdlib>
#include <ctime>
#include <random>

namespace fx::core {

long stamp() {
  return static_cast<long>(time(nullptr));  // BAD: wall clock
}

int roll() {
  std::random_device rd;  // BAD: hardware entropy
  return rand() + static_cast<int>(rd());  // BAD: libc randomness
}

const char* knob() {
  return std::getenv("FX_KNOB");  // BAD: environment read
}

}  // namespace fx::core
