// Internal shapes shared between planaria-lint's analysis, rules, and
// engine translation units. Not part of the public lint.hpp surface.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace planaria::lint {

struct Suppression {
  std::string rule;
  std::string reason;
  int line = 0;
  bool file_scope = false;
};

/// The `volatile(<member>): reason` directive (lint-prefixed, like every
/// suppression) — declares one data member to be
/// derived or scratch state for the state-* family: it may be mutated on hot
/// paths without being serialized, and may be rebuilt on one side of the
/// save/load pair only. The reason is mandatory; a reason-less directive is
/// itself a finding, like every other mute button in this tool.
struct MemberWaiver {
  std::string member;
  std::string reason;
  int line = 0;
};

struct FunctionDef {
  std::string name;
  std::string class_name;  ///< `Cls` for `Cls::name(...)` definitions
  bool is_const = false;
  int line = 0;
  std::size_t params_begin = 0, params_end = 0;  ///< token indices of ( )
  std::size_t body_begin = 0, body_end = 0;      ///< token indices of { }
};

struct DataMember {
  std::string name;
  int line = 0;
};

/// A lambda expression with its capture table (DESIGN.md §13). Collected
/// structurally; whether it is a *parallel root* (passed to a parallel API)
/// is decided later against the config's parallel-api list.
struct LambdaInfo {
  int line = 0;
  std::size_t intro_begin = 0, intro_end = 0;  ///< token indices of [ ]
  std::size_t body_begin = 0, body_end = 0;    ///< token indices of { }
  std::string bound_name;   ///< `auto name = [...]` binding, if any
  std::string first_param;  ///< name of the first parameter, if any
  bool ref_default = false;      ///< [&] capture default
  bool value_default = false;    ///< [=] capture default
  bool captures_this = false;    ///< [this] (not [*this], which copies)
  bool has_lock = false;         ///< body constructs a lock_guard-style lock
  std::set<std::string> by_ref;    ///< explicit &name captures
  std::set<std::string> by_value;  ///< explicit name / name=expr captures
  std::set<std::string> params;
  std::set<std::string> locals;    ///< heuristic body-local declarations
};

struct ClassInfo {
  std::string name;
  int line = 0;
  bool is_class = false;  ///< `class` vs `struct`
  std::vector<std::string> bases;
  /// Token indices of the class body braces { }, so the state-flow pass can
  /// associate inline method definitions (empty FunctionDef::class_name)
  /// with the class whose body contains them.
  std::size_t body_begin = 0, body_end = 0;
  int save_state_line = 0;  ///< 0 = no save_state declared
  int load_state_line = 0;
  std::vector<DataMember> members;
  /// Public non-const methods declared in the class body: name -> line.
  std::multimap<std::string, int> public_mutating_methods;
  /// Class declares a mutex/shared_mutex member: treated as internally
  /// synchronized by the race rules (documented soundness trade, §13).
  bool has_mutex_member = false;

  bool has_save() const { return save_state_line != 0; }
  bool has_load() const { return load_state_line != 0; }
};

struct FileInfo {
  std::string path;    ///< repo-relative, '/' separators
  std::string module;  ///< `<mod>` for src/<mod>/...; empty otherwise
  bool is_header = false;
  TokenizedSource src;
  std::vector<Suppression> suppressions;
  /// Parsed `volatile(<member>): reason` waiver directives.
  std::vector<MemberWaiver> volatile_waivers;
  std::set<std::string> unordered_names;
  /// Identifiers declared as std::atomic<...> in this file.
  std::set<std::string> atomic_names;
  std::vector<FunctionDef> functions;
  std::vector<ClassInfo> classes;
  std::vector<LambdaInfo> lambdas;  ///< sorted by intro_begin
};

// ---------------------------------------------------------------------------
// Call graph (tools/lint/callgraph.cpp, DESIGN.md §13)

/// One function definition as a call-graph node. Pointers reference the
/// FileInfo vector the graph was built from; the graph must not outlive it.
struct CallGraphNode {
  std::string qualified;  ///< "Cls::name" for member definitions, else "name"
  std::string bare;
  const FileInfo* file = nullptr;
  const FunctionDef* fn = nullptr;
  std::set<std::string> callees;  ///< callee names found in the body; bound
                                  ///< to "Cls::name" where the tokens allow
};

struct CallGraph {
  std::vector<CallGraphNode> nodes;
  /// bare / qualified name -> indices into `nodes` (overloads merge by name).
  std::map<std::string, std::vector<std::size_t>> by_bare;
  std::map<std::string, std::vector<std::size_t>> by_qualified;

  /// Node indices reachable from `roots` without passing through `stops`.
  /// A spec containing "::" matches qualified names exactly; a bare spec
  /// matches every overload and every class's method of that name.
  /// `provenance`, when non-null, maps each reached node to the root spec
  /// that first reached it.
  std::vector<std::size_t> reachable(
      const std::vector<std::string>& roots,
      const std::vector<std::string>& stops,
      std::map<std::size_t, std::string>* provenance) const;
};

CallGraph build_call_graph(const std::vector<FileInfo>& files);

/// Fills file.lambdas (capture table, params, locals, lock detection).
void collect_lambdas(FileInfo& file);

/// Bare names of call sites inside the token range [begin, end] — the same
/// collection the call-graph builder uses for function bodies, exposed so
/// the race rules can seed reachability from parallel lambda bodies.
std::set<std::string> collect_callees(const TokenizedSource& src,
                                      std::size_t begin, std::size_t end);

/// True for every rule id the engine can emit (suppressions must name one).
bool known_rule(const std::string& rule);

/// Tokenize + structural passes; malformed suppressions land in `malformed`.
void analyze(FileInfo& file, std::vector<Finding>& malformed);

/// All rule passes over the analyzed file set; returns raw findings (the
/// engine applies suppressions afterwards).
std::vector<Finding> run_rules(const std::vector<FileInfo>& files,
                               const Config& config);

/// The member-level state-flow pass (tools/lint/stateflow.cpp, DESIGN.md
/// §17): for every class with a save_state/load_state pair, reconciles the
/// members the pair serializes against each other (state-unloaded-member,
/// state-order-mismatch), against every mutation reachable from the state
/// roots (state-unsaved-member), and against the determinism ban list
/// (state-det-taint). Waived findings arrive with suppress_reason pre-filled
/// so the engine routes them to the suppressed list.
void rule_state(const std::vector<FileInfo>& files, const Config& config,
                const CallGraph& graph, std::vector<Finding>& out);

}  // namespace planaria::lint
