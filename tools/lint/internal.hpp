// Internal shapes shared between planaria-lint's analysis, rules, and
// engine translation units. Not part of the public lint.hpp surface.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace planaria::lint {

struct Suppression {
  std::string rule;
  std::string reason;
  int line = 0;
  bool file_scope = false;
};

struct FunctionDef {
  std::string name;
  std::string class_name;  ///< `Cls` for `Cls::name(...)` definitions
  bool is_const = false;
  int line = 0;
  std::size_t params_begin = 0, params_end = 0;  ///< token indices of ( )
  std::size_t body_begin = 0, body_end = 0;      ///< token indices of { }
};

struct DataMember {
  std::string name;
  int line = 0;
};

struct ClassInfo {
  std::string name;
  int line = 0;
  bool is_class = false;  ///< `class` vs `struct`
  std::vector<std::string> bases;
  int save_state_line = 0;  ///< 0 = no save_state declared
  int load_state_line = 0;
  std::vector<DataMember> members;
  /// Public non-const methods declared in the class body: name -> line.
  std::multimap<std::string, int> public_mutating_methods;

  bool has_save() const { return save_state_line != 0; }
  bool has_load() const { return load_state_line != 0; }
};

struct FileInfo {
  std::string path;    ///< repo-relative, '/' separators
  std::string module;  ///< `<mod>` for src/<mod>/...; empty otherwise
  bool is_header = false;
  TokenizedSource src;
  std::vector<Suppression> suppressions;
  std::set<std::string> unordered_names;
  std::vector<FunctionDef> functions;
  std::vector<ClassInfo> classes;
};

/// True for every rule id the engine can emit (suppressions must name one).
bool known_rule(const std::string& rule);

/// Tokenize + structural passes; malformed suppressions land in `malformed`.
void analyze(FileInfo& file, std::vector<Finding>& malformed);

/// All rule passes over the analyzed file set; returns raw findings (the
/// engine applies suppressions afterwards).
std::vector<Finding> run_rules(const std::vector<FileInfo>& files,
                               const Config& config);

}  // namespace planaria::lint
