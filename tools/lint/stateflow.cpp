// Member-level state-flow pass of planaria-lint (DESIGN.md §17).
//
// For every class that declares a save_state/load_state pair, this pass
// reconciles the class's data members (trailing-underscore identifiers from
// the structural analysis) against what the pair actually serializes:
//
//   state-unsaved-member   member mutated somewhere reachable from the state
//                          roots (state-root + hot-root specs) but never
//                          touched by save_state/load_state
//   state-unloaded-member  member serialized on one side of the pair only
//   state-order-mismatch   save and load touch the common members in
//                          different sequences — PLNSNAP1 has no field tags,
//                          so the touch order IS the byte layout
//   state-det-taint        serialized member assigned from a nondeterminism
//                          source, directly or through a called helper
//
// Soundness limits, deliberate and documented (§17):
//   * members are recognized by the project's trailing-underscore
//     convention; plain structs (SimResult) are invisible to the pass;
//   * an ordered "serializing touch" is a whole-value use (w.u64(m_),
//     m_ = r.u64()) or a member call (m_.save_state(w, ...)) in a statement
//     that names the codec object (the method's Writer/Reader parameter) —
//     derived-state rebuilds (clear(), rebuild_index()) and bare field
//     accesses (w.u64(counters_.reads)) register as mentions but never as
//     ordered touches, so field-granular codecs are checked at member
//     granularity only;
//   * helper calls are followed same-class only, to depth 3; lambdas are
//     scanned at their definition site, which matches the define-then-call
//     shape every codec in this tree uses;
//   * templates are analyzed once over their written body, never per
//     instantiation — one LruTable node stands for every payload type.
//
// Waivers: a lint-prefixed `volatile(<member>): reason` comment near the
// member or the codec, or a `volatile-member <spec> : <reason>` line in
// layers.conf.
// Waived findings are emitted with suppress_reason pre-filled so they land
// in the report's suppressed list — auditable, not invisible.
#include "lint/internal.hpp"

#include <algorithm>
#include <deque>
#include <sstream>

namespace planaria::lint {
namespace {

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}
bool is_ident(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

std::size_t match_forward(const std::vector<Token>& toks, std::size_t open,
                          const char* opener, const char* closer) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], opener)) ++depth;
    else if (is_punct(toks[i], closer) && --depth == 0) return i;
  }
  return std::string::npos;
}

bool member_prefix(const std::vector<Token>& toks, std::size_t i) {
  return i > 0 && (is_punct(toks[i - 1], ".") ||
                   (is_punct(toks[i - 1], ">") && i > 1 &&
                    is_punct(toks[i - 2], "-")));
}

/// Same mutating-member-function list the race rules use (rules.cpp keeps
/// its copy in its own anonymous namespace).
const std::set<std::string>& container_mutators() {
  static const std::set<std::string> m = {
      "push_back", "emplace_back", "emplace_front", "push_front", "insert",
      "emplace",   "erase",        "clear",         "resize",     "pop_back",
      "pop_front", "push",         "pop",           "assign",     "append",
      "reserve",
  };
  return m;
}

/// The determinism rule's ban lists (rule_determinism keeps its copies in
/// rules.cpp's anonymous namespace); here they taint assigned values rather
/// than flagging the call site itself.
const std::set<std::string>& banned_calls() {
  static const std::set<std::string> c = {
      "time",         "clock", "gettimeofday", "clock_gettime",
      "timespec_get", "rand",  "srand",        "rand_r",
      "drand48",      "getenv", "secure_getenv",
  };
  return c;
}
const std::set<std::string>& banned_types() {
  static const std::set<std::string> t = {
      "random_device", "system_clock", "steady_clock", "high_resolution_clock",
  };
  return t;
}

/// One function definition bound to the file that holds its tokens.
struct MethodDef {
  const FunctionDef* fn = nullptr;
  const FileInfo* file = nullptr;
  bool valid() const { return fn != nullptr; }
};

/// An ordered serializing touch: member name + the line of its first touch.
struct Touch {
  std::string member;
  int line = 0;
};

struct StateClass {
  const ClassInfo* cls = nullptr;
  const FileInfo* decl_file = nullptr;
  std::set<std::string> members;
  std::map<std::string, int> member_line;
  /// Every definition attributed to this class (out-of-line by class_name,
  /// inline by innermost body nesting), keyed by name for helper following.
  std::map<std::string, MethodDef> methods;
  MethodDef save, load;
  std::vector<Touch> save_seq, load_seq;
  std::set<std::string> save_mentions, load_mentions;
};

/// Reason a member is waived (inline directive in the declaring or codec
/// files, or a layers.conf volatile-member line), or empty.
std::string waiver_reason(const StateClass& sc, const Config& config,
                          const std::string& member) {
  std::vector<const FileInfo*> sources = {sc.decl_file, sc.save.file,
                                          sc.load.file};
  for (const FileInfo* f : sources) {
    if (f == nullptr) continue;
    for (const MemberWaiver& w : f->volatile_waivers) {
      if (w.member == member) return w.reason;
    }
  }
  for (const VolatileMember& v : config.volatile_members) {
    if (v.spec == member || v.spec == sc.cls->name + "::" + member) {
      return "[layers.conf volatile-member] " + v.reason;
    }
  }
  return {};
}

/// Parameter names of a definition: identifiers in the parameter list that
/// are immediately followed by ',' / ')' / '=' — i.e. declarator tails.
std::set<std::string> param_names(const FunctionDef& fn,
                                  const std::vector<Token>& toks) {
  std::set<std::string> names;
  for (std::size_t i = fn.params_begin + 1;
       i < fn.params_end && i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier) continue;
    const Token& next = toks[i + 1];
    if (next.kind == TokenKind::kPunct &&
        (next.text == "," || next.text == ")" || next.text == "=")) {
      names.insert(toks[i].text);
    }
  }
  return names;
}

/// True when the statement containing token `i` (bounded by ';' '{' '}')
/// names any identifier in `names`. Used to separate byte-carrying codec
/// statements (w.u64(tick_); tick_ = r.u64();) from derived-state rebuilds
/// (clear(); index_.insert(...);) that touch members without moving bytes.
bool stmt_has_any(const std::vector<Token>& toks, std::size_t i,
                  std::size_t lo, std::size_t hi,
                  const std::set<std::string>& names) {
  if (names.empty()) return false;
  std::size_t b = i;
  while (b > lo) {
    const Token& t = toks[b - 1];
    if (t.kind == TokenKind::kPunct &&
        (t.text == ";" || t.text == "{" || t.text == "}")) {
      break;
    }
    --b;
  }
  std::size_t e = i;
  while (e < hi) {
    const Token& t = toks[e];
    if (t.kind == TokenKind::kPunct &&
        (t.text == ";" || t.text == "{" || t.text == "}")) {
      break;
    }
    ++e;
  }
  for (std::size_t k = b; k < e; ++k) {
    if (toks[k].kind == TokenKind::kIdentifier &&
        names.count(toks[k].text) != 0) {
      return true;
    }
  }
  return false;
}

/// Innermost class in `f` whose body token range contains `pos`, or null.
const ClassInfo* innermost_class(const FileInfo& f, std::size_t pos) {
  const ClassInfo* best = nullptr;
  for (const ClassInfo& cls : f.classes) {
    if (cls.body_begin == 0 && cls.body_end == 0) continue;
    if (cls.body_begin < pos && pos < cls.body_end) {
      if (best == nullptr ||
          cls.body_end - cls.body_begin < best->body_end - best->body_begin) {
        best = &cls;
      }
    }
  }
  return best;
}

/// True when the identifier at `i` is a call site on the class itself:
/// unqualified `helper(` or explicitly qualified `Cls::helper(`.
bool own_call(const std::vector<Token>& toks, std::size_t i,
              const std::string& cls_name) {
  if (member_prefix(toks, i)) return false;
  if (i >= 2 && is_punct(toks[i - 1], ":") && is_punct(toks[i - 2], ":")) {
    return i >= 3 && is_ident(toks[i - 3], cls_name.c_str());
  }
  return true;
}

/// Walks one codec body (save_state or load_state), recording mentions and
/// ordered serializing touches of the class's members, following same-class
/// helper calls to `depth` levels.
///
/// `codec` holds the identifiers that carry bytes in this body (the codec
/// method's own parameter names — the Writer/Reader and any payload
/// functors). A touch joins the ordered sequence only when its statement
/// names one of them: `w.u64(tick_)` and `tick_ = r.u64()` are layout,
/// `clear()` and `index_.insert(...)` are derived-state rebuilds and
/// register as mentions only. A helper call forwards its byte stream — and
/// so contributes to the sequence — only when its call statement passes a
/// codec identifier along; it is always followed for mentions.
void scan_touches(const StateClass& sc, const MethodDef& def,
                  const std::set<std::string>& codec,
                  std::vector<Touch>& seq, std::set<std::string>& mentions,
                  std::set<const FunctionDef*>& visited, int depth) {
  if (!def.valid() || !visited.insert(def.fn).second) return;
  const auto& toks = def.file->src.tokens;
  const std::size_t begin = def.fn->body_begin;
  const std::size_t end = std::min(def.fn->body_end, toks.size() - 1);
  for (std::size_t i = begin + 1; i < end; ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (sc.members.count(t.text) != 0 && !member_prefix(toks, i)) {
      mentions.insert(t.text);
      // Serializing touch: whole-value use, or a member call. A bare field
      // access (counters_.reads) is a mention only.
      bool strict = true;
      if (i + 1 < end && is_punct(toks[i + 1], ".")) {
        strict = i + 3 < end && toks[i + 2].kind == TokenKind::kIdentifier &&
                 is_punct(toks[i + 3], "(");
      } else if (i + 2 < end && is_punct(toks[i + 1], "-") &&
                 is_punct(toks[i + 2], ">")) {
        strict = i + 4 < end && toks[i + 3].kind == TokenKind::kIdentifier &&
                 is_punct(toks[i + 4], "(");
      }
      if (strict && stmt_has_any(toks, i, begin, end, codec)) {
        const bool seen = std::any_of(
            seq.begin(), seq.end(),
            [&](const Touch& s) { return s.member == t.text; });
        if (!seen) seq.push_back({t.text, t.line});
      }
      continue;
    }
    // Same-class helper call: recurse so `save_state` -> `encode_tables(w)`
    // keeps the member stream visible (depth-bounded, §17).
    if (depth > 0 && i + 1 < end && is_punct(toks[i + 1], "(") &&
        own_call(toks, i, sc.cls->name)) {
      const auto helper = sc.methods.find(t.text);
      if (helper != sc.methods.end() && helper->second.fn != def.fn) {
        const bool carries = stmt_has_any(toks, i, begin, end, codec);
        scan_touches(sc, helper->second,
                     carries ? param_names(*helper->second.fn,
                                           helper->second.file->src.tokens)
                             : std::set<std::string>{},
                     seq, mentions, visited, depth - 1);
      }
    }
  }
}

/// Mutation of the member whose identifier sits at `i`: walks the postfix
/// chain (subscripts, field accesses) and checks for an assignment operator,
/// compound assignment, ++/--, or a mutating container call. Returns the
/// line of the mutation, or 0.
int mutation_at(const std::vector<Token>& toks, std::size_t i,
                std::size_t end) {
  // Prefix ++/--.
  if (i >= 2 &&
      ((is_punct(toks[i - 1], "+") && is_punct(toks[i - 2], "+")) ||
       (is_punct(toks[i - 1], "-") && is_punct(toks[i - 2], "-")))) {
    return toks[i].line;
  }
  std::size_t j = i + 1;
  while (j < end) {
    if (is_punct(toks[j], "[")) {
      const std::size_t close = match_forward(toks, j, "[", "]");
      if (close == std::string::npos || close >= end) return 0;
      j = close + 1;
      continue;
    }
    if (is_punct(toks[j], ".") && j + 1 < end &&
        toks[j + 1].kind == TokenKind::kIdentifier) {
      if (j + 2 < end && is_punct(toks[j + 2], "(")) {
        return container_mutators().count(toks[j + 1].text) != 0
                   ? toks[j + 1].line
                   : 0;
      }
      j += 2;
      continue;
    }
    if (is_punct(toks[j], "-") && j + 2 < end && is_punct(toks[j + 1], ">") &&
        toks[j + 2].kind == TokenKind::kIdentifier) {
      if (j + 3 < end && is_punct(toks[j + 3], "(")) {
        return container_mutators().count(toks[j + 2].text) != 0
                   ? toks[j + 2].line
                   : 0;
      }
      j += 3;
      continue;
    }
    break;
  }
  if (j >= end) return 0;
  const Token& op = toks[j];
  if (op.kind != TokenKind::kPunct) return 0;
  const bool eq_next = j + 1 < end && is_punct(toks[j + 1], "=");
  if (op.text == "=" && !eq_next) return op.line;  // = but not ==
  if (eq_next && (op.text == "+" || op.text == "-" || op.text == "*" ||
                  op.text == "/" || op.text == "%" || op.text == "&" ||
                  op.text == "|" || op.text == "^")) {
    return op.line;  // compound assignment (tokenizer splits +=)
  }
  if ((op.text == "<" || op.text == ">") && j + 2 < end &&
      is_punct(toks[j + 1], op.text.c_str()) && is_punct(toks[j + 2], "=")) {
    return op.line;  // <<= / >>=
  }
  if ((op.text == "+" && j + 1 < end && is_punct(toks[j + 1], "+")) ||
      (op.text == "-" && j + 1 < end && is_punct(toks[j + 1], "-"))) {
    return op.line;  // postfix ++/--
  }
  return 0;
}

/// Token intervals of statements executed under iteration over an unordered
/// container (range-for whose range names one) — assignment order inside is
/// hash-order-dependent.
std::vector<std::pair<std::size_t, std::size_t>> unordered_loop_bodies(
    const FileInfo& f, const FunctionDef& fn) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  const auto& toks = f.src.tokens;
  for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
    if (!is_ident(toks[i], "for") || i + 1 >= fn.body_end ||
        !is_punct(toks[i + 1], "(")) {
      continue;
    }
    const std::size_t close = match_forward(toks, i + 1, "(", ")");
    if (close == std::string::npos || close >= fn.body_end) continue;
    std::size_t colon = 0;
    int depth = 0;
    for (std::size_t j = i + 1; j < close; ++j) {
      if (is_punct(toks[j], "(")) ++depth;
      else if (is_punct(toks[j], ")")) --depth;
      else if (depth == 1 && colon == 0 && is_punct(toks[j], ":") &&
               !is_punct(toks[j + 1], ":") && !is_punct(toks[j - 1], ":")) {
        colon = j;
      }
    }
    if (colon == 0) continue;
    bool unordered = false;
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (toks[j].kind == TokenKind::kIdentifier &&
          f.unordered_names.count(toks[j].text) != 0) {
        unordered = true;
        break;
      }
    }
    if (!unordered) continue;
    if (close + 1 < fn.body_end && is_punct(toks[close + 1], "{")) {
      const std::size_t body = match_forward(toks, close + 1, "{", "}");
      if (body != std::string::npos) out.emplace_back(close + 1, body);
    } else {
      std::size_t semi = close + 1;
      while (semi < fn.body_end && !is_punct(toks[semi], ";")) ++semi;
      out.emplace_back(close + 1, semi);
    }
  }
  return out;
}

std::string join_members(const std::vector<Touch>& seq,
                         const std::set<std::string>& keep) {
  std::ostringstream out;
  std::size_t n = 0;
  for (const Touch& t : seq) {
    if (keep.count(t.member) == 0) continue;
    if (n++ != 0) out << ", ";
    if (n > 6) {
      out << "...";
      break;
    }
    out << t.member;
  }
  return out.str();
}

void emit(std::vector<Finding>& out, const StateClass& sc,
          const Config& config, const std::string& rule,
          const std::string& member, const std::string& file, int line,
          const std::string& message) {
  Finding f{rule, file, line, message, ""};
  f.suppress_reason = waiver_reason(sc, config, member);
  out.push_back(std::move(f));
}

// ---------------------------------------------------------------------------
// The per-class checks

void check_pair_symmetry(const StateClass& sc, const Config& config,
                         std::vector<Finding>& out) {
  // state-unloaded-member: a serializing touch on one side with no mention
  // at all on the other. Mentions soften the check so field-granular codecs
  // (w.u64(counters_.reads) / counters_.reads = r.u64()) stay symmetric at
  // member granularity.
  for (const Touch& t : sc.save_seq) {
    if (sc.load_mentions.count(t.member) != 0) continue;
    emit(out, sc, config, "state-unloaded-member", t.member,
         sc.save.file->path, t.line,
         "member '" + sc.cls->name + "::" + t.member +
             "' is serialized by save_state but never restored by "
             "load_state — a resumed run keeps the constructor default while "
             "the snapshot carries the live value; decode it, or waive with "
             "// lint: volatile(" + t.member + "): <reason> if it is derived "
             "state");
  }
  for (const Touch& t : sc.load_seq) {
    if (sc.save_mentions.count(t.member) != 0) continue;
    emit(out, sc, config, "state-unloaded-member", t.member,
         sc.load.file->path, t.line,
         "member '" + sc.cls->name + "::" + t.member +
             "' is touched by load_state but never written by save_state — "
             "either the decode consumes bytes the encode never produced, or "
             "this is derived state being rebuilt and wants // lint: "
             "volatile(" + t.member + "): <reason>");
  }

  // state-order-mismatch over the members both sides serialize (waived
  // members excluded: their rebuild position is not part of the layout).
  std::set<std::string> common;
  for (const Touch& t : sc.save_seq) {
    if (waiver_reason(sc, config, t.member).empty()) common.insert(t.member);
  }
  std::set<std::string> in_load;
  for (const Touch& t : sc.load_seq) in_load.insert(t.member);
  for (auto it = common.begin(); it != common.end();) {
    it = in_load.count(*it) == 0 ? common.erase(it) : std::next(it);
  }
  std::vector<std::string> save_order, load_order;
  for (const Touch& t : sc.save_seq) {
    if (common.count(t.member) != 0) save_order.push_back(t.member);
  }
  for (const Touch& t : sc.load_seq) {
    if (common.count(t.member) != 0) load_order.push_back(t.member);
  }
  if (save_order != load_order) {
    std::string diverge;
    for (std::size_t i = 0; i < save_order.size(); ++i) {
      if (i >= load_order.size() || save_order[i] != load_order[i]) {
        diverge = save_order[i];
        break;
      }
    }
    emit(out, sc, config, "state-order-mismatch", diverge,
         sc.load.file->path, sc.load.fn->line,
         "'" + sc.cls->name + "' save_state touches members in order [" +
             join_members(sc.save_seq, common) + "] but load_state in [" +
             join_members(sc.load_seq, common) + "] (first divergence at '" +
             diverge + "') — PLNSNAP1 has no field tags, so the touch order "
             "IS the byte layout; one side is decoding another's bytes");
  }
}

void check_det_taint(const StateClass& sc, const Config& config,
                     const CallGraph& graph,
                     std::map<std::string, std::string>& taint_cache,
                     std::vector<Finding>& out) {
  std::set<std::string> serialized = sc.save_mentions;
  serialized.insert(sc.load_mentions.begin(), sc.load_mentions.end());
  if (serialized.empty()) return;

  // Does any definition reachable from `spec` (depth-bounded BFS) directly
  // contain a banned nondeterminism source? Memoized: "" = clean.
  const auto taints_via = [&](const std::string& spec) -> std::string {
    const auto hit = taint_cache.find(spec);
    if (hit != taint_cache.end()) return hit->second;
    std::string verdict;
    std::set<std::size_t> visited;
    std::deque<std::pair<std::size_t, int>> queue;
    const auto& index =
        spec.find("::") != std::string::npos ? graph.by_qualified
                                             : graph.by_bare;
    const auto it = index.find(spec);
    if (it != index.end()) {
      for (const std::size_t id : it->second) {
        if (visited.insert(id).second) queue.emplace_back(id, 0);
      }
    }
    while (!queue.empty() && verdict.empty()) {
      const auto [id, depth] = queue.front();
      queue.pop_front();
      const CallGraphNode& node = graph.nodes[id];
      const auto& toks = node.file->src.tokens;
      for (std::size_t i = node.fn->body_begin;
           i <= node.fn->body_end && i < toks.size(); ++i) {
        if (toks[i].kind != TokenKind::kIdentifier) continue;
        if (banned_types().count(toks[i].text) != 0 ||
            (banned_calls().count(toks[i].text) != 0 && i + 1 < toks.size() &&
             is_punct(toks[i + 1], "(") && !member_prefix(toks, i))) {
          verdict = "'" + toks[i].text + "' in '" + node.qualified + "'";
          break;
        }
      }
      if (depth >= 3 || !verdict.empty()) continue;
      for (const std::string& callee : node.callees) {
        const auto& cindex = callee.find("::") != std::string::npos
                                 ? graph.by_qualified
                                 : graph.by_bare;
        const auto cit = cindex.find(callee);
        if (cit == cindex.end()) continue;
        for (const std::size_t cid : cit->second) {
          if (visited.insert(cid).second) queue.emplace_back(cid, depth + 1);
        }
      }
    }
    taint_cache[spec] = verdict;
    return verdict;
  };

  std::set<std::string> reported;  // file:line:member
  for (const auto& [name, def] : sc.methods) {
    (void)name;
    const auto& toks = def.file->src.tokens;
    const std::size_t end = std::min(def.fn->body_end, toks.size() - 1);
    const auto unordered_bodies = unordered_loop_bodies(*def.file, *def.fn);
    for (std::size_t i = def.fn->body_begin + 1; i < end; ++i) {
      const Token& t = toks[i];
      if (t.kind != TokenKind::kIdentifier ||
          serialized.count(t.text) == 0 || member_prefix(toks, i)) {
        continue;
      }
      // Assignment (simple or compound) to the serialized member?
      std::size_t op = i + 1;
      if (op >= end || toks[op].kind != TokenKind::kPunct) continue;
      if (is_punct(toks[op], "=") && op + 1 < end &&
          is_punct(toks[op + 1], "=")) {
        continue;  // comparison
      }
      bool assign = is_punct(toks[op], "=");
      if (!assign && op + 1 < end && is_punct(toks[op + 1], "=") &&
          (toks[op].text == "+" || toks[op].text == "-" ||
           toks[op].text == "*" || toks[op].text == "/" ||
           toks[op].text == "%" || toks[op].text == "&" ||
           toks[op].text == "|" || toks[op].text == "^")) {
        assign = true;
        ++op;
      }
      if (!assign) continue;

      // RHS extent: to the statement's `;` at nesting depth 0.
      std::size_t stop = op + 1;
      int depth = 0;
      while (stop < end) {
        if (is_punct(toks[stop], "(") || is_punct(toks[stop], "[") ||
            is_punct(toks[stop], "{")) {
          ++depth;
        } else if (is_punct(toks[stop], ")") || is_punct(toks[stop], "]") ||
                   is_punct(toks[stop], "}")) {
          if (--depth < 0) break;
        } else if (depth == 0 && is_punct(toks[stop], ";")) {
          break;
        }
        ++stop;
      }

      std::string what;
      for (std::size_t j = op + 1; j < stop && what.empty(); ++j) {
        const Token& r = toks[j];
        if (r.kind == TokenKind::kIdentifier) {
          if (banned_types().count(r.text) != 0) {
            what = "nondeterminism type '" + r.text + "'";
          } else if (r.text == "reinterpret_cast" || r.text == "uintptr_t" ||
                     r.text == "intptr_t") {
            what = "pointer-as-integer ('" + r.text + "')";
          } else if (r.text == "this" &&
                     !(j + 1 < stop && is_punct(toks[j + 1], "-")) &&
                     !(j > 0 && is_punct(toks[j - 1], "*"))) {
            what = "'this' used as a value";
          } else if (banned_calls().count(r.text) != 0 && j + 1 < stop &&
                     is_punct(toks[j + 1], "(") && !member_prefix(toks, j)) {
            what = "call to '" + r.text + "()'";
          } else if (j + 1 < stop && is_punct(toks[j + 1], "(") &&
                     !member_prefix(toks, j)) {
            // Interprocedural: does the called helper reach a banned source?
            std::string spec = r.text;
            if (j >= 2 && is_punct(toks[j - 1], ":") &&
                is_punct(toks[j - 2], ":")) {
              if (j >= 3 && toks[j - 3].kind == TokenKind::kIdentifier) {
                if (toks[j - 3].text == "std") continue;
                spec = toks[j - 3].text + "::" + r.text;
                if (graph.by_qualified.count(spec) == 0) spec = r.text;
              }
            } else if (sc.methods.count(r.text) != 0) {
              spec = sc.cls->name + "::" + r.text;
              if (graph.by_qualified.count(spec) == 0) spec = r.text;
            }
            const std::string via = taints_via(spec);
            if (!via.empty()) {
              what = "call to '" + r.text + "()', which reaches " + via;
            }
          }
        } else if (is_punct(r, "&") && j + 1 < stop &&
                   toks[j + 1].kind == TokenKind::kIdentifier &&
                   !(j > 0 && is_punct(toks[j - 1], "&")) &&
                   j > 0 && toks[j - 1].kind == TokenKind::kPunct &&
                   (toks[j - 1].text == "=" || toks[j - 1].text == "(" ||
                    toks[j - 1].text == "," || toks[j - 1].text == "<")) {
          what = "address-of used as a value";
        }
      }
      // Hash-order taint: the assignment executes under iteration over an
      // unordered container, so its final value is insertion-history-
      // dependent in a way no seed controls.
      if (what.empty()) {
        for (const auto& [lo, hi] : unordered_bodies) {
          if (i > lo && i < hi) {
            what = "assignment under unordered-container iteration order";
            break;
          }
        }
      }
      if (what.empty()) continue;
      const std::string key = def.file->path + ":" +
                              std::to_string(t.line) + ":" + t.text;
      if (!reported.insert(key).second) continue;
      emit(out, sc, config, "state-det-taint", t.text, def.file->path, t.line,
           "serialized member '" + sc.cls->name + "::" + t.text +
               "' is assigned from a nondeterminism source (" + what +
               ") — the snapshot would encode a value no replay can "
               "reproduce; derive it from the trace and the seed "
               "(planaria::Rng) instead");
    }
  }
}

void check_unsaved(const std::vector<StateClass>& classes,
                   const std::map<const FunctionDef*, std::size_t>& owner,
                   const Config& config, const CallGraph& graph,
                   std::vector<Finding>& out) {
  std::vector<std::string> roots = config.hot_roots;
  roots.insert(roots.end(), config.state_roots.begin(),
               config.state_roots.end());
  if (roots.empty()) return;

  std::map<std::size_t, std::string> prov;
  std::set<std::string> reported;  // class::member
  for (const std::size_t id : graph.reachable(roots, {}, &prov)) {
    const CallGraphNode& node = graph.nodes[id];
    const auto own = owner.find(node.fn);
    if (own == owner.end()) continue;
    const StateClass& sc = classes[own->second];
    if (node.fn == sc.save.fn || node.fn == sc.load.fn) continue;
    if (node.fn->name == sc.cls->name) continue;  // constructors initialize
    std::set<std::string> serialized = sc.save_mentions;
    serialized.insert(sc.load_mentions.begin(), sc.load_mentions.end());

    const auto& toks = node.file->src.tokens;
    const std::size_t end = std::min(node.fn->body_end, toks.size() - 1);
    for (std::size_t i = node.fn->body_begin + 1; i < end; ++i) {
      const Token& t = toks[i];
      if (t.kind != TokenKind::kIdentifier ||
          sc.members.count(t.text) == 0 || member_prefix(toks, i)) {
        continue;
      }
      if (serialized.count(t.text) != 0) continue;
      const int line = mutation_at(toks, i, end);
      if (line == 0) continue;
      const std::string key = sc.cls->name + "::" + t.text;
      if (!reported.insert(key).second) continue;
      emit(out, sc, config, "state-unsaved-member", t.text,
           sc.decl_file->path, sc.member_line.at(t.text),
           "member '" + key + "' is mutated in '" + node.qualified + "' (" +
               node.file->path + ":" + std::to_string(line) +
               ", reachable from state root '" + prov[id] +
               "') but never serialized by " + sc.cls->name +
               "::save_state — a checkpoint/resume silently resets it; "
               "serialize it, or carry // lint: volatile(" + t.text +
               "): <reason> if a restore can rebuild it");
    }
  }
}

}  // namespace

void rule_state(const std::vector<FileInfo>& files, const Config& config,
                const CallGraph& graph, std::vector<Finding>& out) {
  // Pass 1: every class with a save/load pair and at least one recognized
  // member becomes a StateClass; classes whose codec definitions cannot be
  // located (template specializations in other TUs, macro-generated bodies)
  // are skipped — the documented blind spots of §17.
  std::vector<StateClass> classes;
  for (const FileInfo& f : files) {
    for (const ClassInfo& cls : f.classes) {
      if (!cls.has_save() || !cls.has_load() || cls.members.empty()) continue;
      StateClass sc;
      sc.cls = &cls;
      sc.decl_file = &f;
      for (const DataMember& m : cls.members) {
        sc.members.insert(m.name);
        sc.member_line.emplace(m.name, m.line);
      }
      classes.push_back(std::move(sc));
    }
  }

  std::map<const FunctionDef*, std::size_t> owner;
  for (std::size_t ci = 0; ci < classes.size(); ++ci) {
    StateClass& sc = classes[ci];
    for (const FileInfo& f : files) {
      for (const FunctionDef& fn : f.functions) {
        bool ours = false;
        if (!fn.class_name.empty()) {
          ours = fn.class_name == sc.cls->name;
        } else if (&f == sc.decl_file) {
          ours = innermost_class(f, fn.body_begin) == sc.cls;
        }
        if (!ours) continue;
        owner.emplace(&fn, ci);
        sc.methods.emplace(fn.name, MethodDef{&fn, &f});
        if (fn.name == "save_state" && !sc.save.valid()) sc.save = {&fn, &f};
        if (fn.name == "load_state" && !sc.load.valid()) sc.load = {&fn, &f};
      }
    }
  }

  for (StateClass& sc : classes) {
    if (!sc.save.valid() || !sc.load.valid()) continue;
    std::set<const FunctionDef*> visited;
    scan_touches(sc, sc.save,
                 param_names(*sc.save.fn, sc.save.file->src.tokens),
                 sc.save_seq, sc.save_mentions, visited, 3);
    visited.clear();
    scan_touches(sc, sc.load,
                 param_names(*sc.load.fn, sc.load.file->src.tokens),
                 sc.load_seq, sc.load_mentions, visited, 3);
  }

  std::map<std::string, std::string> taint_cache;
  for (const StateClass& sc : classes) {
    if (!sc.save.valid() || !sc.load.valid()) continue;
    check_pair_symmetry(sc, config, out);
    check_det_taint(sc, config, graph, taint_cache, out);
  }
  check_unsaved(classes, owner, config, graph, out);
}

}  // namespace planaria::lint
