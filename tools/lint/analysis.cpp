// Structural analysis layer of planaria-lint: turns a token stream into the
// shapes the rules reason about — suppression directives, function
// definitions with body ranges, class declarations with access-tracked
// members, and unordered-container identifiers.
//
// This is heuristic parsing, tuned to the project's own style (clang-format,
// trailing-underscore members) rather than a general C++ grammar; DESIGN.md
// §12 documents the contract. Where the heuristics have known blind spots
// the rules err toward silence — a project-specific linter that cries wolf
// gets deleted, one that misses a case gets a fixture added.
#include "lint/internal.hpp"

#include <algorithm>

namespace planaria::lint {

namespace {

const std::set<std::string>& statement_keywords() {
  static const std::set<std::string> kw = {
      "if",     "for",    "while",  "switch",        "catch",
      "return", "sizeof", "alignof", "static_assert", "decltype",
      "new",    "delete", "throw",  "co_return",     "co_await",
  };
  return kw;
}

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}
bool is_ident(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

/// Index of the punct matching opener/closer starting at `open`; npos when
/// unbalanced (the file is then analyzed as far as the tokens allow).
std::size_t match_forward(const std::vector<Token>& toks, std::size_t open,
                          const char* opener, const char* closer) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], opener)) ++depth;
    else if (is_punct(toks[i], closer) && --depth == 0) return i;
  }
  return std::string::npos;
}

}  // namespace

// ---------------------------------------------------------------------------
// Suppressions

void parse_suppressions(FileInfo& file, std::vector<Finding>& malformed) {
  for (const Comment& c : file.src.comments) {
    const std::size_t at = c.text.find("lint:");
    if (at == std::string::npos) continue;
    std::string body = c.text.substr(at + 5);
    while (!body.empty() && body.front() == ' ') body.erase(body.begin());
    // Only the directive verbs make a comment a directive; prose that
    // merely mentions "lint:" (docs, this file's own header) is not one.
    if (body.rfind("suppress", 0) != 0 && body.rfind("no-contract", 0) != 0 &&
        body.rfind("volatile(", 0) != 0) {
      continue;
    }

    if (body.rfind("volatile(", 0) == 0) {
      // volatile(<member>): reason — a state-* family member waiver.
      const std::size_t close = body.find(')');
      MemberWaiver waiver;
      waiver.line = c.line;
      waiver.member = close == std::string::npos
                          ? std::string()
                          : body.substr(9, close - 9);
      std::size_t after = close == std::string::npos ? body.size() : close + 1;
      while (after < body.size() &&
             (body[after] == ' ' || body[after] == ':')) {
        if (body[after] == ':') {
          waiver.reason = body.substr(after + 1);
          while (!waiver.reason.empty() && waiver.reason.front() == ' ') {
            waiver.reason.erase(waiver.reason.begin());
          }
          break;
        }
        ++after;
      }
      if (waiver.member.empty() || waiver.member.back() != '_') {
        malformed.push_back({"suppression", file.path, c.line,
                             "volatile() must name a data member "
                             "(trailing-underscore identifier)",
                             ""});
        continue;
      }
      if (waiver.reason.empty()) {
        malformed.push_back({"suppression", file.path, c.line,
                             "volatile(" + waiver.member +
                                 ") carries no ': <reason>' — derived state "
                                 "must say why a restore can rebuild it",
                             ""});
        continue;
      }
      file.volatile_waivers.push_back(std::move(waiver));
      continue;
    }

    Suppression s;
    s.line = c.line;
    std::string head;
    if (body.rfind("suppress-file(", 0) == 0) {
      s.file_scope = true;
      head = body.substr(14);
    } else if (body.rfind("suppress(", 0) == 0) {
      head = body.substr(9);
    } else if (body.rfind("no-contract(", 0) == 0) {
      // Sugar: the whole parenthesized text is the reason.
      const std::size_t close = body.rfind(')');
      s.rule = "contract-coverage";
      s.reason = close == std::string::npos || close <= 12
                     ? std::string()
                     : body.substr(12, close - 12);
      if (s.reason.empty()) {
        malformed.push_back({"suppression", file.path, c.line,
                             "no-contract() requires a reason inside the "
                             "parentheses",
                             ""});
        continue;
      }
      file.suppressions.push_back(s);
      continue;
    } else {
      malformed.push_back({"suppression", file.path, c.line,
                           "unrecognized lint directive '" + body +
                               "' (expected a suppress(<rule>) <reason>, "
                               "suppress-file(<rule>) <reason>, or "
                               "no-contract(<reason>) form)",
                           ""});
      continue;
    }
    const std::size_t close = head.find(')');
    if (close == std::string::npos) {
      malformed.push_back({"suppression", file.path, c.line,
                           "unterminated suppress( directive", ""});
      continue;
    }
    s.rule = head.substr(0, close);
    s.reason = head.substr(close + 1);
    while (!s.reason.empty() && s.reason.front() == ' ') {
      s.reason.erase(s.reason.begin());
    }
    if (s.rule.empty() || !known_rule(s.rule)) {
      malformed.push_back({"suppression", file.path, c.line,
                           "suppression names unknown rule '" + s.rule + "'",
                           ""});
      continue;
    }
    if (s.rule == "suppression") {
      malformed.push_back({"suppression", file.path, c.line,
                           "the suppression rule cannot be suppressed", ""});
      continue;
    }
    if (s.reason.empty()) {
      malformed.push_back({"suppression", file.path, c.line,
                           "suppression of '" + s.rule +
                               "' carries no reason — every exception must "
                               "say why",
                           ""});
      continue;
    }
    file.suppressions.push_back(s);
  }
}

// ---------------------------------------------------------------------------
// Unordered-container identifiers

void collect_unordered_names(FileInfo& file) {
  const auto& toks = file.src.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_ident(toks[i], "unordered_map") &&
        !is_ident(toks[i], "unordered_set")) {
      continue;
    }
    // Skip the template argument list, then take the declarator name. A bare
    // mention without <...> (e.g. in a using-declaration) declares nothing.
    std::size_t j = i + 1;
    if (j >= toks.size() || !is_punct(toks[j], "<")) continue;
    int depth = 0;
    for (; j < toks.size(); ++j) {
      if (is_punct(toks[j], "<")) ++depth;
      else if (is_punct(toks[j], ">") && --depth == 0) break;
    }
    for (++j; j < toks.size(); ++j) {
      if (toks[j].kind == TokenKind::kIdentifier) {
        file.unordered_names.insert(toks[j].text);
        break;
      }
      // `>` of a nested template, `&`, `*`, `const` are part of the type;
      // anything that ends a declaration means there was no declarator.
      if (is_punct(toks[j], ";") || is_punct(toks[j], ")") ||
          is_punct(toks[j], ",") || is_punct(toks[j], "(")) {
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Atomic identifiers (exempt from the race-capture-write rule)

void collect_atomic_names(FileInfo& file) {
  const auto& toks = file.src.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "atomic") && !is_ident(toks[i], "atomic_flag")) {
      continue;
    }
    std::size_t j = i + 1;
    if (is_punct(toks[j], "<")) {
      int depth = 0;
      for (; j < toks.size(); ++j) {
        if (is_punct(toks[j], "<")) ++depth;
        else if (is_punct(toks[j], ">") && --depth == 0) break;
      }
      ++j;
    }
    for (; j < toks.size(); ++j) {
      if (toks[j].kind == TokenKind::kIdentifier) {
        file.atomic_names.insert(toks[j].text);
        break;
      }
      if (is_punct(toks[j], ";") || is_punct(toks[j], ")") ||
          is_punct(toks[j], ",") || is_punct(toks[j], "(")) {
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Function definitions

void collect_functions(FileInfo& file) {
  const auto& toks = file.src.tokens;
  for (std::size_t i = 1; i < toks.size(); ++i) {
    if (!is_punct(toks[i], "(")) continue;
    const Token& name = toks[i - 1];
    if (name.kind != TokenKind::kIdentifier) continue;
    if (statement_keywords().count(name.text) != 0) continue;

    const std::size_t close = match_forward(toks, i, "(", ")");
    if (close == std::string::npos) continue;

    // Trailer: const/noexcept/override/final, then `{`, `;`, or a ctor
    // initializer list (identifier + balanced (…)/{…} groups, commas).
    std::size_t j = close + 1;
    bool is_const = false;
    while (j < toks.size() &&
           (is_ident(toks[j], "const") || is_ident(toks[j], "noexcept") ||
            is_ident(toks[j], "override") || is_ident(toks[j], "final"))) {
      if (toks[j].text == "const") is_const = true;
      ++j;
    }
    if (j < toks.size() && is_punct(toks[j], "(")) {
      // noexcept(expr)
      const std::size_t ne = match_forward(toks, j, "(", ")");
      if (ne == std::string::npos) continue;
      j = ne + 1;
    }
    if (j < toks.size() && is_punct(toks[j], ":")) {
      // Constructor initializer list: consume `ident (…)`/`ident {…}` groups
      // until the token after a group is not a comma — that `{` is the body.
      ++j;
      for (;;) {
        while (j < toks.size() && !is_punct(toks[j], "(") &&
               !is_punct(toks[j], "{") && !is_punct(toks[j], ";")) {
          ++j;
        }
        if (j >= toks.size() || is_punct(toks[j], ";")) break;
        if (is_punct(toks[j], "(")) {
          const std::size_t g = match_forward(toks, j, "(", ")");
          if (g == std::string::npos) break;
          j = g + 1;
        } else {
          const std::size_t g = match_forward(toks, j, "{", "}");
          if (g == std::string::npos) break;
          j = g + 1;
        }
        if (j < toks.size() && is_punct(toks[j], ",")) {
          ++j;
          continue;
        }
        break;
      }
    }
    if (j >= toks.size() || !is_punct(toks[j], "{")) continue;
    const std::size_t body_end = match_forward(toks, j, "{", "}");
    if (body_end == std::string::npos) continue;

    FunctionDef fn;
    fn.name = name.text;
    fn.line = name.line;
    fn.is_const = is_const;
    fn.params_begin = i;
    fn.params_end = close;
    fn.body_begin = j;
    fn.body_end = body_end;
    if (i >= 3 && is_punct(toks[i - 2], ":") && is_punct(toks[i - 3], ":") &&
        i >= 4 && toks[i - 4].kind == TokenKind::kIdentifier) {
      fn.class_name = toks[i - 4].text;
    }
    file.functions.push_back(std::move(fn));
  }
}

// ---------------------------------------------------------------------------
// Class declarations

void collect_classes(FileInfo& file) {
  const auto& toks = file.src.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    const bool is_class_kw = is_ident(toks[i], "class");
    if (!is_class_kw && !is_ident(toks[i], "struct")) continue;
    // `enum class` is not a class.
    if (i > 0 && is_ident(toks[i - 1], "enum")) continue;
    std::size_t j = i + 1;
    if (j >= toks.size() || toks[j].kind != TokenKind::kIdentifier) continue;
    ClassInfo cls;
    cls.name = toks[j].text;
    cls.line = toks[j].line;
    cls.is_class = is_class_kw;
    ++j;
    if (j < toks.size() && is_ident(toks[j], "final")) ++j;
    // Base clause: skip to the opening brace; a `;` first means forward
    // declaration, a `(` means this was e.g. a function parameter.
    while (j < toks.size() && !is_punct(toks[j], "{") &&
           !is_punct(toks[j], ";") && !is_punct(toks[j], "(") &&
           !is_punct(toks[j], ")") && !is_punct(toks[j], "=")) {
      if (toks[j].kind == TokenKind::kIdentifier &&
          !is_ident(toks[j], "public") && !is_ident(toks[j], "private") &&
          !is_ident(toks[j], "protected") && !is_ident(toks[j], "virtual")) {
        cls.bases.push_back(toks[j].text);
      }
      ++j;
    }
    if (j >= toks.size() || !is_punct(toks[j], "{")) continue;
    const std::size_t body_end = match_forward(toks, j, "{", "}");
    if (body_end == std::string::npos) continue;
    cls.body_begin = j;
    cls.body_end = body_end;

    // Walk the body at depth 1 (relative to the class brace), tracking
    // access sections; deeper braces (method bodies, nested classes) are
    // invisible to the member scan.
    bool is_public = !is_class_kw;
    int depth = 0;
    for (std::size_t k = j; k <= body_end; ++k) {
      const Token& t = toks[k];
      if (is_punct(t, "{")) {
        ++depth;
        continue;
      }
      if (is_punct(t, "}")) {
        --depth;
        continue;
      }
      if (depth != 1) continue;
      if (t.kind == TokenKind::kIdentifier && k + 1 <= body_end &&
          is_punct(toks[k + 1], ":") &&
          !(k + 2 <= body_end && is_punct(toks[k + 2], ":"))) {
        if (t.text == "public") is_public = true;
        else if (t.text == "private" || t.text == "protected") is_public = false;
        continue;
      }
      if (t.kind != TokenKind::kIdentifier) continue;
      if (t.text == "mutex" || t.text == "shared_mutex" ||
          t.text == "recursive_mutex") {
        // A mutex member at class-body depth marks the class internally
        // synchronized for the race rules (DESIGN.md §13).
        cls.has_mutex_member = true;
      }
      const bool call_like = k + 1 <= body_end && is_punct(toks[k + 1], "(");
      if (call_like) {
        if (t.text == "save_state") cls.save_state_line = t.line;
        if (t.text == "load_state") cls.load_state_line = t.line;
        if (statement_keywords().count(t.text) != 0) continue;
        if (t.text == cls.name) continue;  // constructor
        if (k > 0 && is_punct(toks[k - 1], "~")) continue;  // destructor
        if (k > 0 && (is_punct(toks[k - 1], ".") ||
                      (is_punct(toks[k - 1], ">") && k > 1 &&
                       is_punct(toks[k - 2], "-")))) {
          continue;  // member call (`.` / `->`) inside a default initializer
        }
        // Method declaration or inline definition: constness from the
        // trailer after the parameter list.
        const std::size_t close = match_forward(toks, k + 1, "(", ")");
        if (close == std::string::npos) continue;
        bool is_const = false;
        std::size_t after = close + 1;
        while (after <= body_end &&
               (is_ident(toks[after], "const") ||
                is_ident(toks[after], "noexcept") ||
                is_ident(toks[after], "override") ||
                is_ident(toks[after], "final"))) {
          if (toks[after].text == "const") is_const = true;
          ++after;
        }
        // static / constexpr methods never mutate instance state; scan a few
        // tokens back (bounded by the previous declaration) for either.
        bool is_static = false;
        for (std::size_t b = k; b-- > j && k - b < 8;) {
          if (is_ident(toks[b], "static") || is_ident(toks[b], "constexpr")) {
            is_static = true;
            break;
          }
          if (is_punct(toks[b], ";") || is_punct(toks[b], "{") ||
              is_punct(toks[b], "}") || is_punct(toks[b], "(") ||
              is_punct(toks[b], ")")) {
            break;
          }
        }
        if (is_public && !is_const && !is_static) {
          cls.public_mutating_methods.emplace(t.text, t.line);
        }
        continue;
      }
      // Data member, by project convention: trailing-underscore identifier
      // followed by `;`, `=`, `{`, or `[`.
      if (!t.text.empty() && t.text.back() == '_' && k + 1 <= body_end &&
          (is_punct(toks[k + 1], ";") || is_punct(toks[k + 1], "=") ||
           is_punct(toks[k + 1], "{") || is_punct(toks[k + 1], "["))) {
        cls.members.push_back({t.text, t.line});
      }
    }
    file.classes.push_back(std::move(cls));
  }
}

void analyze(FileInfo& file, std::vector<Finding>& malformed) {
  parse_suppressions(file, malformed);
  collect_unordered_names(file);
  collect_atomic_names(file);
  collect_functions(file);
  collect_classes(file);
  collect_lambdas(file);
}

}  // namespace planaria::lint
