// layers.conf parser for planaria-lint.
//
// Grammar (one statement per line, '#' starts a comment):
//
//   layer <module> [<module>...]
//       Declares the next layer up. Modules on one line are siblings: they
//       may include any lower layer but not each other. Order of `layer`
//       lines is the DAG.
//   allow <from> -> <to> : <reason>
//       Permits one extra include edge outside the layer order. The reason
//       is mandatory and both modules must be declared.
//   sanction <rule> <path> : <reason>
//       Exempts one file (repo-relative) from one rule, with a reason —
//       e.g. the env-reading configuration files for `determinism`.
//   snapshot-modules <module>...
//       Modules where snapshot-missing / snapshot-roundtrip apply.
//   contract-modules <module>...
//       Modules where contract-coverage applies.
//   roundtrip-test <path>
//       File that must mention every snapshottable class (repeatable).
//   serialization-api <name>...
//       Extra function names treated as serialization/accounting context by
//       the unordered-iteration rule (save_state is always one).
//   hot-root <spec>...
//       Hot-path roots for the hot-* cost rules: `Cls::name` matches one
//       member definition exactly, a bare name matches every definition of
//       that name (all overloads, every class). No hot-root lines = the
//       hot-path family is off.
//   hot-stop <spec> : <reason>
//       Cuts the hot reachable set at one function (plus everything only
//       reachable through it), with a mandatory reason.
//   parallel-api <name>...
//       Extra function names whose lambda arguments become parallel regions
//       for the race-* rules (parallel_for and submit are always in).
//   state-root <spec>...
//       Extra reachability roots for the state-unsaved-member check, unioned
//       with the hot-root specs. Same spec grammar as hot-root.
//   volatile-member <spec> : <reason>
//       Excludes one data member (`Cls::member_` exact, or bare `member_`
//       for every class) from the state-flow family, with a mandatory
//       reason — config-level form of the inline `volatile(<m>): reason`
//       directive, for members whose waiver belongs next to the DAG rather
//       than the code.
#include "lint/lint.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace planaria::lint {

int Config::layer_of(const std::string& module) const {
  for (std::size_t i = 0; i < layers.size(); ++i) {
    for (const auto& m : layers[i]) {
      if (m == module) return static_cast<int>(i);
    }
  }
  return -1;
}

bool Config::edge_allowed(const std::string& from,
                          const std::string& to) const {
  for (const auto& e : allowed_edges) {
    if (e.from == from && e.to == to) return true;
  }
  return false;
}

bool Config::sanctioned(const std::string& rule,
                        const std::string& path) const {
  for (const auto& s : sanctions) {
    if (s.rule == rule && s.path == path) return true;
  }
  return false;
}

namespace {

[[noreturn]] void conf_error(const std::string& filename, int line,
                             const std::string& what) {
  throw std::runtime_error(filename + ":" + std::to_string(line) + ": " +
                           what);
}

std::vector<std::string> split_words(const std::string& s) {
  std::istringstream in(s);
  std::vector<std::string> out;
  std::string w;
  while (in >> w) out.push_back(w);
  return out;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace

Config parse_config(const std::string& text, const std::string& filename) {
  Config config;
  config.serialization_apis = {"save_state", "finish"};
  config.parallel_apis = {"parallel_for", "submit"};

  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::size_t hash = raw.find('#');
    std::string line = trim(hash == std::string::npos ? raw : raw.substr(0, hash));
    if (line.empty()) continue;

    const std::size_t sp = line.find(' ');
    const std::string keyword = line.substr(0, sp);
    const std::string rest =
        sp == std::string::npos ? std::string() : trim(line.substr(sp + 1));

    if (keyword == "layer") {
      const auto modules = split_words(rest);
      if (modules.empty()) conf_error(filename, lineno, "layer needs modules");
      for (const auto& m : modules) {
        if (config.layer_of(m) >= 0) {
          conf_error(filename, lineno, "module '" + m + "' declared twice");
        }
      }
      config.layers.push_back(modules);
    } else if (keyword == "allow" || keyword == "sanction" ||
               keyword == "hot-stop" || keyword == "volatile-member") {
      // The reason separator is a single ':' — skip over '::' so qualified
      // specs (hot-stop ThreadPool::parallel_for : ...) parse whole.
      std::size_t colon = std::string::npos;
      for (std::size_t i = 0; i < rest.size(); ++i) {
        if (rest[i] != ':') continue;
        if (i + 1 < rest.size() && rest[i + 1] == ':') { ++i; continue; }
        colon = i;
        break;
      }
      if (colon == std::string::npos || trim(rest.substr(colon + 1)).empty()) {
        conf_error(filename, lineno,
                   keyword + " requires ': <reason>' — undocumented "
                             "exceptions are findings waiting to happen");
      }
      const std::string head = trim(rest.substr(0, colon));
      const std::string reason = trim(rest.substr(colon + 1));
      const auto words = split_words(head);
      if (keyword == "allow") {
        if (words.size() != 3 || words[1] != "->") {
          conf_error(filename, lineno, "expected: allow <from> -> <to> : <reason>");
        }
        if (config.layer_of(words[0]) < 0 || config.layer_of(words[2]) < 0) {
          conf_error(filename, lineno,
                     "allow edge names an undeclared module (declare layers "
                     "before allow lines)");
        }
        config.allowed_edges.push_back({words[0], words[2], reason});
      } else if (keyword == "sanction") {
        if (words.size() != 2) {
          conf_error(filename, lineno, "expected: sanction <rule> <path> : <reason>");
        }
        config.sanctions.push_back({words[0], words[1], reason});
      } else if (keyword == "hot-stop") {
        if (words.size() != 1) {
          conf_error(filename, lineno, "expected: hot-stop <spec> : <reason>");
        }
        config.hot_stops.push_back({words[0], reason});
      } else {
        if (words.size() != 1) {
          conf_error(filename, lineno,
                     "expected: volatile-member <spec> : <reason>");
        }
        config.volatile_members.push_back({words[0], reason});
      }
    } else if (keyword == "hot-root" || keyword == "state-root") {
      const auto specs = split_words(rest);
      if (specs.empty()) conf_error(filename, lineno, keyword + " needs specs");
      auto& roots =
          keyword == "hot-root" ? config.hot_roots : config.state_roots;
      for (const auto& s : specs) roots.push_back(s);
    } else if (keyword == "parallel-api") {
      for (const auto& f : split_words(rest)) config.parallel_apis.insert(f);
    } else if (keyword == "snapshot-modules") {
      for (const auto& m : split_words(rest)) config.snapshot_modules.insert(m);
    } else if (keyword == "contract-modules") {
      for (const auto& m : split_words(rest)) config.contract_modules.insert(m);
    } else if (keyword == "roundtrip-test") {
      if (rest.empty()) conf_error(filename, lineno, "roundtrip-test needs a path");
      config.roundtrip_tests.push_back(rest);
    } else if (keyword == "serialization-api") {
      for (const auto& f : split_words(rest)) config.serialization_apis.insert(f);
    } else {
      conf_error(filename, lineno, "unknown keyword '" + keyword + "'");
    }
  }
  if (config.layers.empty()) {
    throw std::runtime_error(filename + ": no layer lines — nothing to enforce");
  }
  return config;
}

Config load_config(const std::string& path) {
  // lint: suppress(io-raw-stream) planaria-lint links nothing from src/ so it stays buildable while the tree is broken; this is a read-only config load
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open lint config: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_config(buf.str(), path);
}

}  // namespace planaria::lint
