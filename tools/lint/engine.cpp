// planaria-lint engine: file-set construction (disk walk or in-memory),
// suppression application, and report rendering.
#include "lint/internal.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace planaria::lint {
namespace {

namespace fs = std::filesystem;

bool cpp_source(const std::string& path) {
  return path.size() > 4 && (path.rfind(".hpp") == path.size() - 4 ||
                             path.rfind(".cpp") == path.size() - 4);
}

std::string module_of(const std::string& path) {
  if (path.rfind("src/", 0) != 0) return {};
  const std::size_t slash = path.find('/', 4);
  return slash == std::string::npos ? std::string() : path.substr(4, slash - 4);
}

FileInfo make_file(const std::string& path, const std::string& text,
                   std::vector<Finding>& malformed) {
  FileInfo f;
  f.path = path;
  f.module = module_of(path);
  f.is_header = path.rfind(".hpp") == path.size() - 4;
  f.src = tokenize(text);
  analyze(f, malformed);
  return f;
}

/// Applies suppressions and file sanctions: findings move to `suppressed`
/// when a matching directive covers them. A line suppression covers its own
/// line and the next (comment-above style).
Report finalize(std::vector<FileInfo>& files, const Config& config,
                std::vector<Finding> raw, std::vector<Finding> malformed) {
  Report report;
  report.files_scanned = static_cast<int>(files.size());

  std::map<std::string, const FileInfo*> by_path;
  for (const FileInfo& f : files) by_path.emplace(f.path, &f);

  for (Finding& finding : raw) {
    // The state-flow pass resolves its own waivers (volatile(...) directives
    // and layers.conf volatile-member lines) and pre-fills the reason; those
    // findings go straight to the suppressed list so the waiver stays
    // auditable in the report.
    if (!finding.suppress_reason.empty()) {
      report.suppressed.push_back(std::move(finding));
      continue;
    }
    if (config.sanctioned(finding.rule, finding.file)) {
      for (const FileSanction& s : config.sanctions) {
        if (s.rule == finding.rule && s.path == finding.file) {
          finding.suppress_reason = "[layers.conf sanction] " + s.reason;
          break;
        }
      }
      report.suppressed.push_back(std::move(finding));
      continue;
    }
    const FileInfo* f = by_path.count(finding.file) != 0
                            ? by_path.at(finding.file)
                            : nullptr;
    const Suppression* hit = nullptr;
    if (f != nullptr) {
      for (const Suppression& s : f->suppressions) {
        if (s.rule != finding.rule) continue;
        if (s.file_scope || s.line == finding.line ||
            s.line + 1 == finding.line) {
          hit = &s;
          break;
        }
        // no-contract / suppress placed anywhere inside a function body
        // covers a contract-coverage finding on that function: match any
        // suppression within 40 lines below the function head, which is the
        // simple, reviewable approximation of "inside the body".
        if (finding.rule == "contract-coverage" && s.line >= finding.line &&
            s.line <= finding.line + 40) {
          hit = &s;
          break;
        }
      }
    }
    if (hit != nullptr) {
      finding.suppress_reason = hit->reason;
      report.suppressed.push_back(std::move(finding));
    } else {
      report.findings.push_back(std::move(finding));
    }
  }

  for (Finding& m : malformed) report.findings.push_back(std::move(m));

  const auto order = [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
  };
  std::sort(report.findings.begin(), report.findings.end(), order);
  std::sort(report.suppressed.begin(), report.suppressed.end(), order);
  return report;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void json_finding(std::ostringstream& out, const Finding& f, bool suppressed) {
  out << "{\"rule\":\"" << json_escape(f.rule) << "\",\"file\":\""
      << json_escape(f.file) << "\",\"line\":" << f.line << ",\"message\":\""
      << json_escape(f.message) << "\"";
  if (suppressed) out << ",\"reason\":\"" << json_escape(f.suppress_reason) << "\"";
  out << "}";
}

}  // namespace

Report run_lint_on(const std::map<std::string, std::string>& sources,
                   const Config& config) {
  std::vector<FileInfo> files;
  std::vector<Finding> malformed;
  files.reserve(sources.size());
  for (const auto& [path, text] : sources) {
    files.push_back(make_file(path, text, malformed));
  }
  return finalize(files, config, run_rules(files, config),
                  std::move(malformed));
}

Report run_lint(const Options& options) {
  const fs::path root(options.root);
  if (!fs::is_directory(root)) {
    throw std::runtime_error("lint root is not a directory: " + options.root);
  }
  // Default config is <root>/tools/lint/layers.conf; a bare <root>/layers.conf
  // is the fallback so fixture trees (tools/lint/fixtures/<rule>/) are
  // self-contained lintable roots.
  std::string config_path = options.config_path;
  if (config_path.empty()) {
    config_path = (root / "tools/lint/layers.conf").string();
    if (!fs::is_regular_file(config_path)) {
      config_path = (root / "layers.conf").string();
    }
  }
  const Config config = load_config(config_path);

  std::vector<FileInfo> files;
  std::vector<Finding> malformed;
  for (const std::string& scan_root : options.scan_roots) {
    const fs::path dir = root / scan_root;
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string rel =
          fs::relative(entry.path(), root).generic_string();
      if (!cpp_source(rel)) continue;
      const bool skipped =
          std::any_of(options.skip_prefixes.begin(),
                      options.skip_prefixes.end(), [&](const std::string& p) {
                        return rel.rfind(p, 0) == 0;
                      });
      if (skipped) continue;
      // lint: suppress(io-raw-stream) planaria-lint links nothing from src/ so it stays buildable while the tree is broken; this is a read-only scan
      std::ifstream in(entry.path(), std::ios::binary);
      if (!in) throw std::runtime_error("cannot read " + rel);
      std::ostringstream buf;
      buf << in.rdbuf();
      files.push_back(make_file(rel, buf.str(), malformed));
    }
  }
  std::sort(files.begin(), files.end(),
            [](const FileInfo& a, const FileInfo& b) { return a.path < b.path; });
  return finalize(files, config, run_rules(files, config),
                  std::move(malformed));
}

std::string to_json(const Report& report, const std::string& root) {
  std::ostringstream out;
  out << "{\"tool\":\"planaria-lint\",\"schema_version\":4,\"root\":\""
      << json_escape(root) << "\",\"files_scanned\":" << report.files_scanned
      << ",\"findings\":[";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    if (i != 0) out << ",";
    json_finding(out, report.findings[i], false);
  }
  out << "],\"suppressed\":[";
  for (std::size_t i = 0; i < report.suppressed.size(); ++i) {
    if (i != 0) out << ",";
    json_finding(out, report.suppressed[i], true);
  }
  // schema_version 4: per-family counts over *active* findings, so CI can
  // gate the interprocedural families, the VFS-bypass family, and the
  // state-flow family without re-parsing messages (v3 added "io", v4 adds
  // "state"). scripts/check_lint_report.py validates this shape.
  std::size_t race = 0, hot = 0, io = 0, state = 0;
  for (const Finding& f : report.findings) {
    if (f.rule.rfind("race-", 0) == 0) ++race;
    if (f.rule.rfind("hot-", 0) == 0) ++hot;
    if (f.rule.rfind("io-raw", 0) == 0) ++io;
    if (f.rule.rfind("state-", 0) == 0) ++state;
  }
  out << "],\"counts\":{\"findings\":" << report.findings.size()
      << ",\"suppressed\":" << report.suppressed.size() << ",\"race\":" << race
      << ",\"hot\":" << hot << ",\"io\":" << io << ",\"state\":" << state
      << "}}";
  return out.str();
}

}  // namespace planaria::lint
