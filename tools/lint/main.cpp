// planaria-lint CLI.
//
//   planaria-lint [--root DIR] [--config FILE] [--json[=FILE]] [--quiet]
//
// Scans src/, tools/, bench/, and tests/ under the root (default: the
// source tree this binary was built from, overridable with --root or
// PLANARIA_LINT_ROOT) against tools/lint/layers.conf and prints findings as
// `file:line: [rule] message`. Exit codes: 0 clean, 1 unsuppressed
// findings, 2 usage/config/I-O error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>

#include "lint/lint.hpp"

#ifndef PLANARIA_LINT_DEFAULT_ROOT
#define PLANARIA_LINT_DEFAULT_ROOT ""
#endif

namespace lint = planaria::lint;

int main(int argc, char** argv) {
  lint::Options options;
  options.root = PLANARIA_LINT_DEFAULT_ROOT;
  if (const char* env = std::getenv("PLANARIA_LINT_ROOT")) options.root = env;

  bool emit_json = false;
  bool quiet = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      options.root = argv[++i];
    } else if (arg == "--config" && i + 1 < argc) {
      options.config_path = argv[++i];
    } else if (arg == "--json") {
      emit_json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      emit_json = true;
      json_path = arg.substr(7);
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr,
                   "usage: planaria-lint [--root DIR] [--config FILE] "
                   "[--json[=FILE]] [--quiet]\n");
      return 2;
    }
  }
  if (options.root.empty()) {
    std::fprintf(stderr,
                 "planaria-lint: no root (pass --root or set "
                 "PLANARIA_LINT_ROOT)\n");
    return 2;
  }

  lint::Report report;
  try {
    report = lint::run_lint(options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "planaria-lint: %s\n", e.what());
    return 2;
  }

  if (emit_json) {
    const std::string json = lint::to_json(report, options.root);
    if (json_path.empty()) {
      std::printf("%s\n", json.c_str());
    } else {
      // lint: suppress(io-raw-stream) planaria-lint links nothing from src/ so it stays buildable while the tree is broken; a torn report just re-runs
      std::ofstream out(json_path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "planaria-lint: cannot write %s\n",
                     json_path.c_str());
        return 2;
      }
      out << json << "\n";
    }
  }
  if (!emit_json || !json_path.empty()) {
    if (!quiet) {
      for (const auto& f : report.suppressed) {
        std::printf("%s:%d: [%s/suppressed] %s (reason: %s)\n",
                    f.file.c_str(), f.line, f.rule.c_str(), f.message.c_str(),
                    f.suppress_reason.c_str());
      }
    }
    for (const auto& f : report.findings) {
      std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
    }
    std::printf(
        "planaria-lint: %d file(s), %zu finding(s), %zu suppressed\n",
        report.files_scanned, report.findings.size(),
        report.suppressed.size());
  }
  return report.clean() ? 0 : 1;
}
