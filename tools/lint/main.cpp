// planaria-lint CLI.
//
//   planaria-lint [--root DIR] [--config FILE] [--json[=FILE]]
//                 [--diff-base REV] [--quiet]
//
// Scans src/, tools/, bench/, and tests/ under the root (default: the
// source tree this binary was built from, overridable with --root or
// PLANARIA_LINT_ROOT) against tools/lint/layers.conf and prints findings as
// `file:line: [rule] message`. Exit codes: 0 clean, 1 unsuppressed
// findings, 2 usage/config/I-O error.
//
// --diff-base REV restricts *reported* findings to files changed since REV
// (per `git diff --name-only REV`): the analysis still runs over the whole
// tree — layering, call-graph reach, and save/load pairing are all global
// properties — only the report is filtered. CI stays a full scan; diff mode
// is for iterating locally on a large change without wading through
// pre-existing suppressed noise.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "lint/lint.hpp"

#ifndef PLANARIA_LINT_DEFAULT_ROOT
#define PLANARIA_LINT_DEFAULT_ROOT ""
#endif

namespace lint = planaria::lint;

namespace {

/// Repo-relative paths changed since `rev`, via `git diff --name-only`.
/// Throws std::runtime_error when git fails (unknown rev, not a repo).
std::set<std::string> changed_files(const std::string& root,
                                    const std::string& rev) {
  std::string cmd = "git -C '" + root + "' diff --name-only '" + rev + "' --";
  for (const char c : rev + root) {
    // Refuse shell metacharacters rather than trying to quote them: revs
    // and roots are operator input, not attacker input, but a typo that
    // splices the shell should fail loudly.
    if (c == '\'' || c == ';' || c == '`' || c == '$') {
      throw std::runtime_error("--diff-base rev/root contains shell metacharacters");
    }
  }
  FILE* pipe = popen((cmd + " 2>/dev/null").c_str(), "r");
  if (pipe == nullptr) throw std::runtime_error("cannot spawn git diff");
  std::set<std::string> out;
  std::string line;
  char buf[4096];
  while (std::fgets(buf, sizeof buf, pipe) != nullptr) {
    line = buf;
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    if (!line.empty()) out.insert(line);
  }
  if (pclose(pipe) != 0) {
    throw std::runtime_error("git diff --name-only '" + rev +
                             "' failed (unknown revision, or root is not a "
                             "git work tree)");
  }
  return out;
}

/// Keeps only findings whose file is in `keep`.
void filter_to(std::vector<lint::Finding>& findings,
               const std::set<std::string>& keep) {
  std::vector<lint::Finding> kept;
  for (auto& f : findings) {
    if (keep.count(f.file) != 0) kept.push_back(std::move(f));
  }
  findings = std::move(kept);
}

}  // namespace

int main(int argc, char** argv) {
  lint::Options options;
  options.root = PLANARIA_LINT_DEFAULT_ROOT;
  if (const char* env = std::getenv("PLANARIA_LINT_ROOT")) options.root = env;

  bool emit_json = false;
  bool quiet = false;
  std::string json_path;
  std::string diff_base;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      options.root = argv[++i];
    } else if (arg == "--config" && i + 1 < argc) {
      options.config_path = argv[++i];
    } else if (arg == "--json") {
      emit_json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      emit_json = true;
      json_path = arg.substr(7);
    } else if (arg == "--diff-base" && i + 1 < argc) {
      diff_base = argv[++i];
    } else if (arg.rfind("--diff-base=", 0) == 0) {
      diff_base = arg.substr(12);
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr,
                   "usage: planaria-lint [--root DIR] [--config FILE] "
                   "[--json[=FILE]] [--diff-base REV] [--quiet]\n");
      return 2;
    }
  }
  if (options.root.empty()) {
    std::fprintf(stderr,
                 "planaria-lint: no root (pass --root or set "
                 "PLANARIA_LINT_ROOT)\n");
    return 2;
  }

  lint::Report report;
  try {
    report = lint::run_lint(options);
    if (!diff_base.empty()) {
      // Full-tree analysis, changed-files report: global rules still see
      // everything, but only findings in touched files are surfaced.
      const std::set<std::string> keep = changed_files(options.root, diff_base);
      filter_to(report.findings, keep);
      filter_to(report.suppressed, keep);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "planaria-lint: %s\n", e.what());
    return 2;
  }

  if (emit_json) {
    const std::string json = lint::to_json(report, options.root);
    if (json_path.empty()) {
      std::printf("%s\n", json.c_str());
    } else {
      // lint: suppress(io-raw-stream) planaria-lint links nothing from src/ so it stays buildable while the tree is broken; a torn report just re-runs
      std::ofstream out(json_path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "planaria-lint: cannot write %s\n",
                     json_path.c_str());
        return 2;
      }
      out << json << "\n";
    }
  }
  if (!emit_json || !json_path.empty()) {
    if (!quiet) {
      for (const auto& f : report.suppressed) {
        std::printf("%s:%d: [%s/suppressed] %s (reason: %s)\n",
                    f.file.c_str(), f.line, f.rule.c_str(), f.message.c_str(),
                    f.suppress_reason.c_str());
      }
    }
    for (const auto& f : report.findings) {
      std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
    }
    std::printf(
        "planaria-lint: %d file(s), %zu finding(s), %zu suppressed\n",
        report.files_scanned, report.findings.size(),
        report.suppressed.size());
  }
  return report.clean() ? 0 : 1;
}
