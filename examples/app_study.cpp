// Per-application deep dive: reproduce the paper's narrative for one workload
// end to end — observation figures (footprint stability, learnable
// neighbors), then the full prefetcher comparison, then the Planaria
// breakdown. `./app_study Fort` tells the transfer-learning story; the
// default HoK tells the self-learning one.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/analysis.hpp"
#include "sim/experiment.hpp"
#include "trace/generator.hpp"

int main(int argc, char** argv) {
  using namespace planaria;
  const std::string app_name = argc > 1 ? argv[1] : "HoK";
  const std::uint64_t records =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10)
               : sim::records_from_env(400000);

  try {
    const auto& app = trace::app_by_name(app_name);
    std::printf("=== %s — %s ===\n\n", app.name.c_str(),
                app.description.c_str());

    sim::ExperimentRunner runner(sim::SimConfig{}, records);
    const auto& trace = runner.trace_for(app_name);

    // --- Observation 1: footprint stability (Fig. 3/4 methodology) ---
    const auto overlap = analysis::overlap_rate(trace);
    std::printf("observation 1 — intra-page snapshots:\n");
    std::printf("  window overlap rate: %.1f%% over %llu windows "
                "(paper: >80%%)\n",
                100 * overlap.average_overlap,
                static_cast<unsigned long long>(overlap.windows_compared));

    // --- Observation 2: learnable neighbors (Fig. 5) ---
    const auto fractions =
        analysis::learnable_neighbor_fraction(trace, {4, 16, 64});
    std::printf("observation 2 — inter-page similarity:\n");
    std::printf("  learnable neighbors: %.1f%% (d<=4), %.1f%% (d<=16), "
                "%.1f%% (d<=64)\n\n",
                100 * fractions[0], 100 * fractions[1], 100 * fractions[2]);

    // --- The comparison grid ---
    std::printf("%-14s %10s %9s %9s %9s %10s %10s\n", "prefetcher",
                "AMAT(cyc)", "hit-rate", "accuracy", "coverage", "traffic",
                "power");
    sim::SimResult none;
    for (const auto kind :
         {sim::PrefetcherKind::kNone, sim::PrefetcherKind::kBop,
          sim::PrefetcherKind::kSpp, sim::PrefetcherKind::kPlanariaSlpOnly,
          sim::PrefetcherKind::kPlanariaTlpOnly,
          sim::PrefetcherKind::kPlanaria}) {
      const auto r = runner.run(app_name, kind);
      if (kind == sim::PrefetcherKind::kNone) none = r;
      std::printf("%-14s %10.1f %8.1f%% %8.1f%% %8.1f%% %+9.1f%% %+9.1f%%\n",
                  r.prefetcher.c_str(), r.amat_cycles, 100 * r.sc_hit_rate,
                  100 * r.prefetch_accuracy, 100 * r.prefetch_coverage,
                  100 * r.traffic_overhead_vs(none),
                  100 * r.power_increase_vs(none));
    }

    // --- Coordinator attribution ---
    const auto full = runner.run(app_name, sim::PrefetcherKind::kPlanaria);
    const auto total_issues = full.slp_issues + full.tlp_issues;
    std::printf("\ncoordinator: %llu triggers issued by SLP (%.1f%%), "
                "%llu by TLP (%.1f%%)\n",
                static_cast<unsigned long long>(full.slp_issues),
                total_issues ? 100.0 * static_cast<double>(full.slp_issues) /
                                   static_cast<double>(total_issues)
                             : 0.0,
                static_cast<unsigned long long>(full.tlp_issues),
                total_issues ? 100.0 * static_cast<double>(full.tlp_issues) /
                                   static_cast<double>(total_issues)
                             : 0.0);
    std::printf("useful prefetch hits: SLP %llu, TLP %llu\n",
                static_cast<unsigned long long>(full.hits_on_slp),
                static_cast<unsigned long long>(full.hits_on_tlp));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
