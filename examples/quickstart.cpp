// Quickstart: simulate one mobile app trace through the system cache with and
// without Planaria, and print the headline metrics.
//
//   ./quickstart [app] [records]
//
// app defaults to "HoK" (Honor of Kings), records to 300000.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace planaria;
  const std::string app = argc > 1 ? argv[1] : "HoK";
  const std::uint64_t records =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 300000;

  try {
    sim::ExperimentRunner runner(sim::SimConfig{}, records);
    std::printf("app=%s records=%llu\n\n", app.c_str(),
                static_cast<unsigned long long>(records));
    std::printf("%-10s %10s %9s %9s %9s %10s %10s\n", "prefetcher",
                "AMAT(cyc)", "hit-rate", "accuracy", "coverage", "traffic",
                "power(mW)");

    sim::SimResult baseline;
    for (const auto kind :
         {sim::PrefetcherKind::kNone, sim::PrefetcherKind::kBop,
          sim::PrefetcherKind::kSpp, sim::PrefetcherKind::kPlanaria}) {
      const auto r = runner.run(app, kind);
      if (kind == sim::PrefetcherKind::kNone) baseline = r;
      std::printf("%-10s %10.1f %8.1f%% %8.1f%% %8.1f%% %+9.1f%% %10.1f\n",
                  r.prefetcher.c_str(), r.amat_cycles, 100.0 * r.sc_hit_rate,
                  100.0 * r.prefetch_accuracy, 100.0 * r.prefetch_coverage,
                  100.0 * r.traffic_overhead_vs(baseline), r.total_power_mw);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
