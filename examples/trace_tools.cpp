// Trace utility CLI: generate synthetic app traces to disk, convert between
// binary and CSV, and print summary statistics — the workflow a user needs to
// feed their own bus captures into the simulator.
//
//   trace_tools gen <app> <records> <out.bin>
//   trace_tools convert <in.bin> <out.csv>        (direction by extension)
//   trace_tools stats <trace.bin|trace.csv>
//   trace_tools sim <trace.bin> <prefetcher>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "analysis/analysis.hpp"
#include "sim/simulator.hpp"
#include "trace/apps.hpp"
#include "trace/generator.hpp"
#include "trace/import.hpp"
#include "trace/io.hpp"

namespace {

using namespace planaria;

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::vector<trace::TraceRecord> load(const std::string& path) {
  if (ends_with(path, ".csv")) {
    std::ifstream is(path);
    if (!is) throw std::runtime_error("cannot open " + path);
    return trace::read_csv(is);
  }
  if (ends_with(path, ".trc")) {  // DRAMSim2 text format
    return trace::read_dramsim2_file(path);
  }
  return trace::read_binary_file(path);
}

void store(const std::string& path, const std::vector<trace::TraceRecord>& records) {
  if (ends_with(path, ".csv")) {
    std::ofstream os(path);
    if (!os) throw std::runtime_error("cannot open " + path);
    trace::write_csv(os, records);
    return;
  }
  if (ends_with(path, ".trc")) {
    std::ofstream os(path);
    if (!os) throw std::runtime_error("cannot open " + path);
    trace::write_dramsim2(os, records);
    return;
  }
  trace::write_binary_file(path, records);
}

int cmd_gen(int argc, char** argv) {
  if (argc != 5) {
    std::fprintf(stderr, "usage: trace_tools gen <app> <records> <out>\n");
    return 2;
  }
  const auto& app = trace::app_by_name(argv[2]);
  const auto records = std::strtoull(argv[3], nullptr, 10);
  const auto trace = trace::generate_app_trace(app, records);
  store(argv[4], trace);
  std::printf("wrote %zu records (%s) to %s\n", trace.size(),
              app.description.c_str(), argv[4]);
  return 0;
}

int cmd_convert(int argc, char** argv) {
  if (argc != 4) {
    std::fprintf(stderr, "usage: trace_tools convert <in> <out>\n");
    return 2;
  }
  const auto records = load(argv[2]);
  store(argv[3], records);
  std::printf("converted %zu records: %s -> %s\n", records.size(), argv[2],
              argv[3]);
  return 0;
}

int cmd_stats(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: trace_tools stats <trace>\n");
    return 2;
  }
  const auto records = load(argv[2]);
  if (records.empty()) {
    std::printf("empty trace\n");
    return 0;
  }
  std::uint64_t writes = 0;
  std::uint64_t per_device[static_cast<int>(DeviceId::kCount)] = {};
  for (const auto& r : records) {
    writes += r.type == AccessType::kWrite ? 1 : 0;
    ++per_device[static_cast<int>(r.device)];
  }
  const auto bitmaps = analysis::page_bitmaps(records);
  double blocks_per_page = 0;
  for (const auto& [pn, bm] : bitmaps) blocks_per_page += bm.popcount();
  blocks_per_page /= static_cast<double>(bitmaps.size());

  const Cycle span = records.back().arrival - records.front().arrival;
  std::printf("records:          %zu\n", records.size());
  std::printf("span:             %llu cycles (%.2f ms @1.6GHz)\n",
              static_cast<unsigned long long>(span),
              static_cast<double>(span) / 1.6e6);
  std::printf("write fraction:   %.1f%%\n",
              100.0 * static_cast<double>(writes) /
                  static_cast<double>(records.size()));
  std::printf("distinct pages:   %zu\n", bitmaps.size());
  std::printf("blocks/page:      %.1f of 64\n", blocks_per_page);
  std::printf("footprint:        %.1f MB\n",
              static_cast<double>(bitmaps.size()) * blocks_per_page * 64 /
                  (1024.0 * 1024.0));
  const auto overlap = analysis::overlap_rate(records);
  std::printf("overlap rate:     %.1f%% over %llu windows (Fig. 4 metric)\n",
              100.0 * overlap.average_overlap,
              static_cast<unsigned long long>(overlap.windows_compared));
  std::printf("per device:      ");
  for (int d = 0; d < static_cast<int>(DeviceId::kCount); ++d) {
    if (per_device[d] > 0) {
      std::printf(" %s=%.1f%%", device_name(static_cast<DeviceId>(d)),
                  100.0 * static_cast<double>(per_device[d]) /
                      static_cast<double>(records.size()));
    }
  }
  std::printf("\n");
  return 0;
}

int cmd_sim(int argc, char** argv) {
  if (argc != 4) {
    std::fprintf(stderr, "usage: trace_tools sim <trace> <prefetcher>\n");
    return 2;
  }
  const auto records = load(argv[2]);
  const auto kind = sim::prefetcher_kind_from_name(argv[3]);
  const auto result = sim::Simulator::run(
      sim::SimConfig{}, sim::make_prefetcher_factory(kind), argv[3], records);
  std::printf("%s: amat=%.1f cycles, hit=%.1f%%, accuracy=%.1f%%, "
              "coverage=%.1f%%, power=%.1f mW\n",
              result.prefetcher.c_str(), result.amat_cycles,
              100 * result.sc_hit_rate, 100 * result.prefetch_accuracy,
              100 * result.prefetch_coverage, result.total_power_mw);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 2) {
      if (std::strcmp(argv[1], "gen") == 0) return cmd_gen(argc, argv);
      if (std::strcmp(argv[1], "convert") == 0) return cmd_convert(argc, argv);
      if (std::strcmp(argv[1], "stats") == 0) return cmd_stats(argc, argv);
      if (std::strcmp(argv[1], "sim") == 0) return cmd_sim(argc, argv);
    }
    std::fprintf(stderr,
                 "usage: trace_tools <gen|convert|stats|sim> ...\n"
                 "  gen <app> <records> <out.bin|.csv|.trc>\n"
                 "  convert <in> <out>\n"
                 "  stats <trace>\n"
                 "  sim <trace> <none|bop|spp|planaria|...>\n");
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
