// Extending the library: implement a custom memory-side prefetcher against
// the prefetch::Prefetcher interface and evaluate it on the standard grid.
//
// The example prefetcher ("page-burst") is deliberately simple: on a demand
// miss it prefetches the rest of the 16-block segment the miss landed in —
// a memory-side cousin of adjacent-line prefetching. Comparing it against
// Planaria shows why footprint *patterns* beat blanket spatial coverage: the
// burst prefetcher wins coverage but pays in accuracy and traffic.
#include <cstdio>
#include <memory>

#include "sim/experiment.hpp"

namespace {

using namespace planaria;

/// Prefetches every remaining block of the current page segment on a miss.
class PageBurstPrefetcher final : public prefetch::Prefetcher {
 public:
  void on_demand(const prefetch::DemandEvent& event,
                 std::vector<prefetch::PrefetchRequest>& out) override {
    if (event.sc_hit) return;
    const std::uint64_t base = event.page * kBlocksPerSegment;
    for (int b = 0; b < kBlocksPerSegment; ++b) {
      if (b == event.block_in_segment) continue;
      out.push_back(prefetch::PrefetchRequest{
          base + static_cast<std::uint64_t>(b),
          cache::FillSource::kPrefetchOther});
    }
  }

  const char* name() const override { return "page-burst"; }
  std::uint64_t storage_bits() const override { return 0; }
};

}  // namespace

int main() {
  try {
    sim::ExperimentRunner runner(sim::SimConfig{},
                                 sim::records_from_env(300000));
    std::printf("%-12s %-10s %10s %9s %9s %9s %10s\n", "app", "prefetcher",
                "AMAT(cyc)", "hit-rate", "accuracy", "coverage", "traffic");
    for (const char* app : {"HoK", "Fort"}) {
      const auto none = runner.run(app, sim::PrefetcherKind::kNone);

      // Plug the custom prefetcher into the same simulator the built-in
      // sweeps use: a factory returns one instance per channel.
      const auto burst = sim::Simulator::run(
          runner.config(),
          [](int) { return std::make_unique<PageBurstPrefetcher>(); },
          "page-burst", runner.trace_for(app));
      const auto planaria = runner.run(app, sim::PrefetcherKind::kPlanaria);

      for (const auto* r : {&none, &burst, &planaria}) {
        std::printf("%-12s %-10s %10.1f %8.1f%% %8.1f%% %8.1f%% %+9.1f%%\n",
                    app, r->prefetcher.c_str(), r->amat_cycles,
                    100 * r->sc_hit_rate, 100 * r->prefetch_accuracy,
                    100 * r->prefetch_coverage,
                    100 * r->traffic_overhead_vs(none));
      }
    }
    std::printf(
        "\npage-burst buys coverage with indiscriminate traffic; Planaria\n"
        "gets comparable coverage at a fraction of the fetches by replaying\n"
        "learned footprints only.\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
