// Prefetcher diagnostics: per-app deep-dive into what each prefetcher did.
//
//   ./prefetcher_diag [app] [records] [prefetcher]
//
// Prints coordinator decisions, per-table learning counters, prefetch
// accuracy/coverage/pollution, and DRAM-side traffic — the numbers behind the
// headline figures, useful when calibrating workloads or tuning table sizes.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/planaria.hpp"
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace planaria;
  const std::string app = argc > 1 ? argv[1] : "HoK";
  const std::uint64_t records =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 300000;
  const std::string kind_name = argc > 3 ? argv[3] : "planaria";

  try {
    sim::ExperimentRunner runner(sim::SimConfig{}, records);
    const auto kind = sim::prefetcher_kind_from_name(kind_name);

    // Re-run manually so we can inspect the live prefetcher objects.
    const auto& trace = runner.trace_for(app);
    auto factory = sim::make_prefetcher_factory(kind, runner.planaria_config(),
                                                runner.bop_config(),
                                                runner.spp_config());
    sim::Simulator simulator(runner.config(), std::move(factory), kind_name);
    for (const auto& rec : trace) simulator.step(rec);
    const auto result = simulator.finish();

    // Channel-0 prefetcher internals (all channels are statistically alike).
    if (const auto* p = dynamic_cast<const core::PlanariaPrefetcher*>(
            &simulator.prefetcher(0));
        p != nullptr) {
      const auto& ps = p->stats();
      const auto& ss = p->slp().stats();
      const auto& ts = p->tlp().stats();
      std::printf("— channel 0 coordinator —\n");
      std::printf("  triggers=%llu slp_issues=%llu tlp_issues=%llu none=%llu\n",
                  (unsigned long long)ps.triggers,
                  (unsigned long long)ps.slp_issues,
                  (unsigned long long)ps.tlp_issues,
                  (unsigned long long)ps.no_issues);
      std::printf("— channel 0 SLP —\n");
      std::printf(
          "  ft_inserts=%llu promotions=%llu snapshots=%llu (timeout=%llu "
          "capacity=%llu) issue_triggers=%llu prefetches=%llu\n",
          (unsigned long long)ss.ft_inserts, (unsigned long long)ss.promotions,
          (unsigned long long)ss.snapshots_learned,
          (unsigned long long)ss.timeout_evictions,
          (unsigned long long)ss.capacity_evictions,
          (unsigned long long)ss.issue_triggers,
          (unsigned long long)ss.prefetches_issued);
      std::printf("— channel 0 TLP —\n");
      std::printf(
          "  allocations=%llu issue_triggers=%llu transfers=%llu "
          "prefetches=%llu\n",
          (unsigned long long)ts.allocations,
          (unsigned long long)ts.issue_triggers,
          (unsigned long long)ts.transfers,
          (unsigned long long)ts.prefetches_issued);
    }

    const auto& cs = simulator.cache_slice(0).stats();
    std::printf("— channel 0 cache —\n");
    std::printf(
        "  demand=%llu hits=%llu pf_fills=%llu pf_used=%llu (slp=%llu tlp=%llu "
        "other=%llu) pf_dead=%llu pollution=%llu\n",
        (unsigned long long)cs.demand_accesses,
        (unsigned long long)cs.demand_hits,
        (unsigned long long)cs.prefetch_fills,
        (unsigned long long)cs.demand_hits_on_prefetch,
        (unsigned long long)cs.hits_on_slp, (unsigned long long)cs.hits_on_tlp,
        (unsigned long long)cs.hits_on_other_pf,
        (unsigned long long)cs.prefetch_unused_evictions,
        (unsigned long long)cs.pollution_misses);

    std::printf("— totals —\n");
    std::printf(
        "  amat=%.1f hit=%.1f%% acc=%.1f%% cov=%.1f%% issued=%llu dropped=%llu "
        "late=%llu dram_rd=%llu dram_wr=%llu bus=%.1f%% power=%.1fmW "
        "ipc=%.3f\n",
        result.amat_cycles, 100 * result.sc_hit_rate,
        100 * result.prefetch_accuracy, 100 * result.prefetch_coverage,
        (unsigned long long)result.prefetch_issued,
        (unsigned long long)result.prefetch_dropped,
        (unsigned long long)result.late_prefetch_merges,
        (unsigned long long)result.dram_reads,
        (unsigned long long)result.dram_writes,
        100 * result.data_bus_utilization, result.total_power_mw,
        result.ipc);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
