#include "cache/replacement.hpp"

#include <array>
#include <stdexcept>

#include "common/assert.hpp"

namespace planaria::cache {

void LruPolicy::save_state(snapshot::Writer& w) const {
  w.tag(snapshot::tag4("RLRU"));
  w.u64(tick_);
  for (std::uint64_t s : stamps_) w.u64(s);
}

void LruPolicy::load_state(snapshot::Reader& r) {
  r.expect_tag(snapshot::tag4("RLRU"));
  tick_ = r.u64();
  for (std::uint64_t& s : stamps_) s = r.u64();
}

namespace {

class RandomPolicy final : public ReplacementPolicy {
 public:
  RandomPolicy(int ways, std::uint64_t seed) : ways_(ways), rng_(seed) {}

  void on_hit(std::uint32_t, int) override {}
  void on_fill(std::uint32_t, int, bool) override {}
  int victim(std::uint32_t) override {
    return static_cast<int>(rng_.next_below(static_cast<std::uint64_t>(ways_)));
  }

  void save_state(snapshot::Writer& w) const override {
    w.tag(snapshot::tag4("RRND"));
    for (std::uint64_t word : rng_.state()) w.u64(word);
  }
  void load_state(snapshot::Reader& r) override {
    r.expect_tag(snapshot::tag4("RRND"));
    std::array<std::uint64_t, 4> s{};
    for (std::uint64_t& word : s) word = r.u64();
    rng_.set_state(s);
  }

 private:
  int ways_;
  Rng rng_;
};

/// Static RRIP (Jaleel et al., ISCA'10) with 2-bit re-reference prediction
/// values. Prefetch fills insert at distant-rereference to resist pollution.
class SrripPolicy : public ReplacementPolicy {
 public:
  SrripPolicy(std::uint32_t sets, int ways)
      : ways_(ways), rrpv_(static_cast<std::size_t>(sets) * ways, kMax) {}

  void on_hit(std::uint32_t set, int way) override { at(set, way) = 0; }

  void on_fill(std::uint32_t set, int way, bool prefetch) override {
    at(set, way) = insertion_rrpv(set, prefetch);
  }

  int victim(std::uint32_t set) override {
    for (;;) {
      for (int w = 0; w < ways_; ++w) {
        if (at(set, w) == kMax) return w;
      }
      for (int w = 0; w < ways_; ++w) ++at(set, w);
    }
  }

  void save_state(snapshot::Writer& w) const override {
    w.tag(snapshot::tag4("RSRR"));
    for (std::uint8_t v : rrpv_) w.u8(v);
  }
  void load_state(snapshot::Reader& r) override {
    r.expect_tag(snapshot::tag4("RSRR"));
    for (std::uint8_t& v : rrpv_) v = r.u8();
  }

 protected:
  static constexpr std::uint8_t kMax = 3;

  virtual std::uint8_t insertion_rrpv(std::uint32_t, bool prefetch) {
    return prefetch ? kMax : kMax - 1;
  }

  std::uint8_t& at(std::uint32_t set, int way) {
    return rrpv_[static_cast<std::size_t>(set) * static_cast<std::size_t>(ways_) +
                 static_cast<std::size_t>(way)];
  }

 private:
  int ways_;
  std::vector<std::uint8_t> rrpv_;
};

/// Dynamic RRIP: set-dueling between SRRIP insertion and bimodal (mostly
/// distant) insertion, with follower sets steered by a PSEL counter.
class DrripPolicy final : public SrripPolicy {
 public:
  DrripPolicy(std::uint32_t sets, int ways, std::uint64_t seed)
      : SrripPolicy(sets, ways), sets_(sets), rng_(seed) {}

  void save_state(snapshot::Writer& w) const override {
    SrripPolicy::save_state(w);
    w.tag(snapshot::tag4("RDRR"));
    w.u32(static_cast<std::uint32_t>(psel_));
    for (std::uint64_t word : rng_.state()) w.u64(word);
  }
  void load_state(snapshot::Reader& r) override {
    SrripPolicy::load_state(r);
    r.expect_tag(snapshot::tag4("RDRR"));
    psel_ = static_cast<int>(r.u32());
    std::array<std::uint64_t, 4> s{};
    for (std::uint64_t& word : s) word = r.u64();
    rng_.set_state(s);
  }

 protected:
  std::uint8_t insertion_rrpv(std::uint32_t set, bool prefetch) override {
    if (prefetch) return kMax;
    const std::uint32_t group = set % 32;
    bool use_brrip;
    if (group == 0) {  // SRRIP leader set
      if (psel_ > 0) --psel_;
      use_brrip = false;
    } else if (group == 1) {  // BRRIP leader set
      if (psel_ < 1023) ++psel_;
      use_brrip = true;
    } else {
      use_brrip = psel_ >= 512;
    }
    if (!use_brrip) return kMax - 1;
    // Bimodal: long re-reference interval most of the time.
    return rng_.chance(1.0 / 32.0) ? kMax - 1 : kMax;
  }

 private:
  [[maybe_unused]] std::uint32_t sets_;
  int psel_ = 512;
  Rng rng_;
};

}  // namespace

const char* replacement_name(ReplacementKind kind) {
  switch (kind) {
    case ReplacementKind::kLru: return "lru";
    case ReplacementKind::kRandom: return "random";
    case ReplacementKind::kSrrip: return "srrip";
    case ReplacementKind::kDrrip: return "drrip";
  }
  PLANARIA_UNREACHABLE();
}

std::unique_ptr<ReplacementPolicy> make_replacement(ReplacementKind kind,
                                                    std::uint32_t sets, int ways,
                                                    std::uint64_t seed) {
  if (sets == 0 || ways <= 0) {
    throw std::invalid_argument("replacement: sets/ways must be positive");
  }
  switch (kind) {
    case ReplacementKind::kLru:
      return std::make_unique<LruPolicy>(sets, ways);
    case ReplacementKind::kRandom:
      return std::make_unique<RandomPolicy>(ways, seed);
    case ReplacementKind::kSrrip:
      return std::make_unique<SrripPolicy>(sets, ways);
    case ReplacementKind::kDrrip:
      return std::make_unique<DrripPolicy>(sets, ways, seed);
  }
  PLANARIA_UNREACHABLE();
}

}  // namespace planaria::cache
