// Set-associative system cache model (one per-channel slice).
//
// Table 1: 4MB 16-way total, 64B blocks, shared by all SoC agents. With the
// static segment-to-channel interleave each channel owns a 1MB slice, which
// is what one SystemCache instance models. Lines are keyed by channel-local
// block index (the same coordinate the DRAM controller uses).
//
// Prefetch accounting follows the standard definitions:
//   accuracy  = useful prefetches / issued prefetches
//   coverage  = useful prefetches / (useful prefetches + demand misses)
//   pollution = demand misses to blocks evicted by an unused prefetch fill
// A line filled by a prefetcher carries its source (SLP/TLP/baseline) so the
// Fig. 9 breakdown can attribute hits to the sub-prefetcher that earned them.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/replacement.hpp"
#include "common/deferred_set.hpp"
#include "common/types.hpp"

namespace planaria::cache {

enum class FillSource : std::uint8_t {
  kDemand = 0,
  kPrefetchSlp,
  kPrefetchTlp,
  kPrefetchOther,
};

struct CacheConfig {
  std::uint64_t size_bytes = 1ull << 20;  ///< per-channel slice of the 4MB SC
  int ways = 16;
  int block_bytes = 64;
  ReplacementKind replacement = ReplacementKind::kLru;
  std::uint64_t seed = 1;

  std::uint32_t sets() const {
    return static_cast<std::uint32_t>(
        size_bytes / static_cast<std::uint64_t>(block_bytes) /
        static_cast<std::uint64_t>(ways));
  }

  /// Throws std::invalid_argument on non-power-of-two or zero geometry.
  void validate() const;
};

struct CacheStats {
  std::uint64_t demand_accesses = 0;
  std::uint64_t demand_hits = 0;
  std::uint64_t demand_misses = 0;
  std::uint64_t demand_hits_on_prefetch = 0;  ///< first-use hits on pf lines
  std::uint64_t hits_on_slp = 0;              ///< first-use hits per source
  std::uint64_t hits_on_tlp = 0;
  std::uint64_t hits_on_other_pf = 0;
  std::uint64_t prefetch_fills = 0;
  std::uint64_t prefetch_unused_evictions = 0;
  std::uint64_t pollution_misses = 0;
  std::uint64_t dirty_writebacks = 0;
  std::uint64_t write_hits = 0;
  std::uint64_t write_misses = 0;

  double hit_rate() const {
    return demand_accesses == 0
               ? 0.0
               : static_cast<double>(demand_hits) /
                     static_cast<double>(demand_accesses);
  }
  double prefetch_accuracy() const {
    return prefetch_fills == 0
               ? 0.0
               : static_cast<double>(demand_hits_on_prefetch) /
                     static_cast<double>(prefetch_fills);
  }
  double prefetch_coverage() const {
    const auto denom = demand_hits_on_prefetch + demand_misses;
    return denom == 0 ? 0.0
                      : static_cast<double>(demand_hits_on_prefetch) /
                            static_cast<double>(denom);
  }
};

struct AccessResult {
  bool hit = false;
  bool first_use_of_prefetch = false;  ///< hit consumed a prefetched line
  FillSource fill_source = FillSource::kDemand;  ///< who filled the hit line
  std::uint64_t writeback_block = 0;
  bool has_writeback = false;
};

class SystemCache {
 public:
  explicit SystemCache(const CacheConfig& config);

  /// Demand access. On a miss the caller is responsible for requesting the
  /// block from DRAM and calling fill() at completion time; reads do not
  /// allocate here. Write misses do not allocate (write-around), matching a
  /// memory-side SC that forwards write bursts to DRAM.
  AccessResult access(std::uint64_t block, AccessType type);

  /// Installs a block (demand fill at DRAM completion, or prefetch fill).
  /// Returns an evicted dirty block via the result when a writeback to DRAM
  /// is required. Filling an already-present block refreshes nothing and is
  /// counted as redundant.
  AccessResult fill(std::uint64_t block, FillSource source);

  bool contains(std::uint64_t block) const;

  /// True iff the block is cached and was filled by a still-unused prefetch.
  bool is_unused_prefetch(std::uint64_t block) const;

  const CacheStats& stats() const { return stats_; }
  const CacheConfig& config() const { return config_; }
  std::uint64_t redundant_prefetch_fills() const { return redundant_fills_; }

  /// Checkpoint/restore (DESIGN.md §11): tags/flags of every valid line, the
  /// replacement policy's recency state, all stats, and the pollution filter.
  /// The membership set is emitted in sorted order so the encoding is
  /// canonical (serialize -> deserialize -> serialize is byte-identical).
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

 private:
  struct Line {
    std::uint64_t block = 0;
    bool valid = false;
    bool dirty = false;
    bool prefetched = false;  ///< filled by prefetch, not yet demand-used
    FillSource source = FillSource::kDemand;
  };

  std::uint32_t set_of(std::uint64_t block) const {
    // sets_ is validated to be a power of two; the mask replaces a 64-bit
    // division on the per-access path.
    return static_cast<std::uint32_t>(block & set_mask_);
  }
  Line* find(std::uint64_t block);
  const Line* find(std::uint64_t block) const;
  void track_pollution_eviction(std::uint64_t block);

  // Static dispatch for the default policy (same trick as the simulator's
  // channel kernels): when the configured policy is LRU, lru_ aliases
  // policy_ and the per-access recency update inlines to a stamp store.
  void policy_on_hit(std::uint32_t set, int way) {
    if (lru_ != nullptr) {
      lru_->LruPolicy::on_hit(set, way);
    } else {
      policy_->on_hit(set, way);
    }
  }
  void policy_on_fill(std::uint32_t set, int way, bool prefetch) {
    if (lru_ != nullptr) {
      lru_->LruPolicy::on_fill(set, way, prefetch);
    } else {
      policy_->on_fill(set, way, prefetch);
    }
  }
  int policy_victim(std::uint32_t set) {
    return lru_ != nullptr ? lru_->LruPolicy::victim(set)
                           : policy_->victim(set);
  }

  CacheConfig config_;
  std::uint32_t sets_;
  std::uint64_t set_mask_ = 0;  ///< sets_ - 1 (power-of-two geometry)
  std::vector<Line> lines_;  ///< sets_ * ways, row-major by set
  // Tag column (SoA): tags_[slot] mirrors lines_[slot].block for valid
  // slots. A lookup scans the ways of one set — 16 consecutive u64s, two
  // cache lines — instead of hashing into an index sized 2x the line count;
  // the tag column for a 1MB slice is L2-resident, the hash cells were not.
  // Invalid slots keep a stale tag, so a tag match is confirmed against the
  // line's valid bit (false positives are possible, false negatives are not:
  // every valid line's tag is rewritten on fill).
  std::vector<std::uint64_t> tags_;
  // Valid lines per set: once a set is full (the steady state after warmup,
  // since lines are only invalidated wholesale by load_state) fill() goes
  // straight to the replacement victim instead of scanning the ways for a
  // free slot.
  std::vector<std::uint16_t> set_valid_;
  std::unique_ptr<ReplacementPolicy> policy_;
  LruPolicy* lru_ = nullptr;  ///< == policy_.get() iff the policy is LRU
  CacheStats stats_;
  std::uint64_t redundant_fills_ = 0;

  // Pollution filter: blocks recently evicted to make room for a prefetch
  // that was never used. Bounded FIFO + sorted-vector membership set whose
  // inserts/erases land in small deferred buffers instead of allocating
  // hash nodes on the access path.
  static constexpr std::size_t kPollutionFilterCap = 1 << 14;
  DeferredSortedSet pollution_set_;
  std::vector<std::uint64_t> pollution_fifo_;
  std::size_t pollution_head_ = 0;
};

}  // namespace planaria::cache
