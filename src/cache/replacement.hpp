// Cache replacement policies for the system cache.
//
// The paper motivates Planaria by noting that "neither state-of-the-art cache
// replacement policies nor increasing cache size significantly improve SC
// performance"; the ablation bench reproduces that claim by sweeping these
// policies under the no-prefetcher configuration. LRU is the default used in
// all headline experiments.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "snapshot/snapshot.hpp"

namespace planaria::cache {

enum class ReplacementKind { kLru, kRandom, kSrrip, kDrrip };

const char* replacement_name(ReplacementKind kind);

/// Per-set victim selection + recency bookkeeping. The cache guarantees that
/// `victim()` is only consulted when every way in the set is valid; invalid
/// ways are always filled first.
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  virtual void on_hit(std::uint32_t set, int way) = 0;
  /// `prefetch` lets insertion-aware policies (SRRIP/DRRIP here; the paper's
  /// Planaria does not alter insertion) deprioritize speculative fills.
  virtual void on_fill(std::uint32_t set, int way, bool prefetch) = 0;
  virtual int victim(std::uint32_t set) = 0;

  /// Checkpoint/restore: recency metadata (LRU stamps, RRPV arrays, PSEL,
  /// RNG state) is as much simulation state as the tags — victim choice
  /// after a restore must match the uninterrupted run exactly.
  virtual void save_state(snapshot::Writer& w) const = 0;
  virtual void load_state(snapshot::Reader& r) = 0;
};

/// Factory. Throws std::invalid_argument for malformed geometry.
std::unique_ptr<ReplacementPolicy> make_replacement(ReplacementKind kind,
                                                    std::uint32_t sets, int ways,
                                                    std::uint64_t seed = 1);

/// LRU — the policy every headline experiment runs. Defined in the header
/// (unlike the ablation-only policies, which stay private to the .cpp) so the
/// cache's hot path can call `on_hit`/`on_fill`/`victim` through a concrete
/// pointer when this policy is selected: the calls inline to a stamp store /
/// stamp scan instead of a virtual dispatch per access. Behaviour is
/// identical either way — only the dispatch is static.
class LruPolicy final : public ReplacementPolicy {
 public:
  LruPolicy(std::uint32_t sets, int ways)
      : ways_(ways),
        stamps_(static_cast<std::size_t>(sets) * static_cast<std::size_t>(ways),
                0) {}

  void on_hit(std::uint32_t set, int way) override { touch(set, way); }
  void on_fill(std::uint32_t set, int way, bool) override { touch(set, way); }

  int victim(std::uint32_t set) override {
    int v = 0;
    std::uint64_t oldest = stamps_[index(set, 0)];
    for (int w = 1; w < ways_; ++w) {
      if (stamps_[index(set, w)] < oldest) {
        oldest = stamps_[index(set, w)];
        v = w;
      }
    }
    return v;
  }

  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;

 private:
  std::size_t index(std::uint32_t set, int way) const {
    return static_cast<std::size_t>(set) * static_cast<std::size_t>(ways_) +
           static_cast<std::size_t>(way);
  }
  void touch(std::uint32_t set, int way) { stamps_[index(set, way)] = ++tick_; }

  int ways_;
  std::vector<std::uint64_t> stamps_;
  std::uint64_t tick_ = 0;
};

}  // namespace planaria::cache
