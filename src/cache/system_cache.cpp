#include "cache/system_cache.hpp"

#include <algorithm>
#include <stdexcept>

#include "check/contract.hpp"
#include "common/assert.hpp"

namespace planaria::cache {

void CacheConfig::validate() const {
  if (size_bytes == 0 || ways <= 0 || block_bytes <= 0) {
    throw std::invalid_argument("cache config: geometry must be positive");
  }
  if ((size_bytes & (size_bytes - 1)) != 0 ||
      (static_cast<std::uint64_t>(block_bytes) &
       (static_cast<std::uint64_t>(block_bytes) - 1)) != 0) {
    throw std::invalid_argument("cache config: size and block must be powers of two");
  }
  const std::uint64_t lines = size_bytes / static_cast<std::uint64_t>(block_bytes);
  if (lines % static_cast<std::uint64_t>(ways) != 0) {
    throw std::invalid_argument("cache config: ways must divide line count");
  }
  if ((sets() & (sets() - 1)) != 0) {
    throw std::invalid_argument("cache config: set count must be a power of two");
  }
}

SystemCache::SystemCache(const CacheConfig& config)
    : config_(config), sets_(0) {
  config_.validate();
  sets_ = config_.sets();
  set_mask_ = sets_ - 1;
  lines_.resize(static_cast<std::size_t>(sets_) *
                static_cast<std::size_t>(config_.ways));
  tags_.assign(lines_.size(), 0);
  set_valid_.assign(sets_, 0);
  policy_ = make_replacement(config_.replacement, sets_, config_.ways,
                             config_.seed);
  if (config_.replacement == ReplacementKind::kLru) {
    lru_ = static_cast<LruPolicy*>(policy_.get());
  }
  pollution_fifo_.reserve(kPollutionFilterCap);
}

SystemCache::Line* SystemCache::find(std::uint64_t block) {
  // One set's worth of the SoA tag column; a stale tag on an invalid slot is
  // rejected by the line's valid bit (see tags_ in the header).
  const std::size_t base = static_cast<std::size_t>(set_of(block)) *
                           static_cast<std::size_t>(config_.ways);
  const std::uint64_t* tags = tags_.data() + base;
  for (int w = 0; w < config_.ways; ++w) {
    if (tags[w] == block && lines_[base + static_cast<std::size_t>(w)].valid) {
      return &lines_[base + static_cast<std::size_t>(w)];
    }
  }
  return nullptr;
}

const SystemCache::Line* SystemCache::find(std::uint64_t block) const {
  return const_cast<SystemCache*>(this)->find(block);
}

AccessResult SystemCache::access(std::uint64_t block, AccessType type) {
  AccessResult result;
  Line* line = find(block);
  if (type == AccessType::kRead) {
    ++stats_.demand_accesses;
    if (line != nullptr) {
      ++stats_.demand_hits;
      result.hit = true;
      const std::uint32_t set = set_of(block);
      const int way = static_cast<int>(line - lines_.data()) -
                      static_cast<int>(set) * config_.ways;
      policy_on_hit(set, way);
      if (line->prefetched) {
        result.first_use_of_prefetch = true;
        result.fill_source = line->source;
        ++stats_.demand_hits_on_prefetch;
        switch (line->source) {
          case FillSource::kPrefetchSlp: ++stats_.hits_on_slp; break;
          case FillSource::kPrefetchTlp: ++stats_.hits_on_tlp; break;
          case FillSource::kPrefetchOther: ++stats_.hits_on_other_pf; break;
          case FillSource::kDemand: break;
        }
        line->prefetched = false;  // consumed; further hits are ordinary
      }
    } else {
      ++stats_.demand_misses;
      if (pollution_set_.contains(block)) ++stats_.pollution_misses;
    }
    PLANARIA_ENSURE_MSG(kStorageBudget,
                        stats_.demand_hits + stats_.demand_misses ==
                            stats_.demand_accesses,
                        "demand accounting must stay exact");
    return result;
  }

  // Write: update-in-place on hit (writeback later), write-around on miss.
  if (line != nullptr) {
    ++stats_.write_hits;
    line->dirty = true;
    if (line->prefetched) line->prefetched = false;
    const std::uint32_t set = set_of(block);
    const int way = static_cast<int>(line - lines_.data()) -
                    static_cast<int>(set) * config_.ways;
    policy_on_hit(set, way);
    result.hit = true;
  } else {
    ++stats_.write_misses;
  }
  return result;
}

AccessResult SystemCache::fill(std::uint64_t block, FillSource source) {
  AccessResult result;
  const bool is_prefetch = source != FillSource::kDemand;
  if (Line* existing = find(block); existing != nullptr) {
    // Redundant fill (demand and prefetch raced, or duplicate prefetch).
    if (is_prefetch) ++redundant_fills_;
    return result;
  }
  if (is_prefetch) ++stats_.prefetch_fills;

  const std::uint32_t set = set_of(block);
  Line* base = &lines_[static_cast<std::size_t>(set) *
                       static_cast<std::size_t>(config_.ways)];
  int way = -1;
  if (set_valid_[set] < static_cast<std::uint16_t>(config_.ways)) {
    for (int w = 0; w < config_.ways; ++w) {
      if (!base[w].valid) {
        way = w;
        break;
      }
    }
    ++set_valid_[set];
  }
  if (way < 0) {
    way = policy_victim(set);
    // The policy owns recency state only; the way index it hands back must
    // stay inside the set it was asked about.
    PLANARIA_ENSURE_MSG(kTableOccupancy, way >= 0 && way < config_.ways,
                        "replacement policy returned an out-of-set victim");
    Line& victim = base[way];
    if (victim.prefetched) ++stats_.prefetch_unused_evictions;
    if (victim.dirty) {
      ++stats_.dirty_writebacks;
      result.has_writeback = true;
      result.writeback_block = victim.block;
    }
    // A useful (demand) line displaced by a speculative fill may come back as
    // a pollution miss; remember it so we can attribute that miss.
    if (is_prefetch && !victim.prefetched) {
      track_pollution_eviction(victim.block);
    }
  }
  Line& line = base[way];
  line.block = block;
  line.valid = true;
  line.dirty = false;
  line.prefetched = is_prefetch;
  line.source = source;
  tags_[static_cast<std::size_t>(&line - lines_.data())] = block;
  policy_on_fill(set, way, is_prefetch);
  // O(1) form of the residency postcondition: `line` is the slot whose tag
  // was just rewritten, so checking it directly proves contains(block)
  // without re-running the set scan.
  PLANARIA_ENSURE_MSG(kTableOccupancy, line.valid && line.block == block,
                      "filled block must be resident on return");
  return result;
}

bool SystemCache::contains(std::uint64_t block) const {
  return find(block) != nullptr;
}

bool SystemCache::is_unused_prefetch(std::uint64_t block) const {
  const Line* line = find(block);
  return line != nullptr && line->prefetched;
}

void SystemCache::track_pollution_eviction(std::uint64_t block) {
  if (pollution_fifo_.size() < kPollutionFilterCap) {
    pollution_fifo_.push_back(block);
    pollution_set_.insert(block);
    return;
  }
  const std::uint64_t old = pollution_fifo_[pollution_head_];
  pollution_set_.erase(old);
  pollution_fifo_[pollution_head_] = block;
  pollution_set_.insert(block);
  pollution_head_ = (pollution_head_ + 1) % kPollutionFilterCap;
  // Erase-before-insert matters when old == block (set semantics, not
  // multiset): the ordering above leaves the block a member, matching the
  // std::unordered_set implementation this structure replaced.
  // The FIFO and the membership set shadow each other; duplicates in the
  // FIFO would let the set shrink below it and break O(1) membership.
  PLANARIA_INVARIANT_MSG(kTableOccupancy,
                         pollution_fifo_.size() <= kPollutionFilterCap &&
                             pollution_set_.size() <= pollution_fifo_.size(),
                         "pollution filter FIFO/set lost synchronization");
}

void SystemCache::save_state(snapshot::Writer& w) const {
  w.tag(snapshot::tag4("CSH0"));
  // Valid lines only, in ascending slot order (canonical encoding).
  std::uint64_t valid = 0;
  for (const Line& line : lines_) valid += line.valid ? 1 : 0;
  w.u64(valid);
  for (std::size_t i = 0; i < lines_.size(); ++i) {
    const Line& line = lines_[i];
    if (!line.valid) continue;
    w.u64(static_cast<std::uint64_t>(i));
    w.u64(line.block);
    w.b(line.dirty);
    w.b(line.prefetched);
    w.u8(static_cast<std::uint8_t>(line.source));
  }
  policy_->save_state(w);
  w.u64(stats_.demand_accesses);
  w.u64(stats_.demand_hits);
  w.u64(stats_.demand_misses);
  w.u64(stats_.demand_hits_on_prefetch);
  w.u64(stats_.hits_on_slp);
  w.u64(stats_.hits_on_tlp);
  w.u64(stats_.hits_on_other_pf);
  w.u64(stats_.prefetch_fills);
  w.u64(stats_.prefetch_unused_evictions);
  w.u64(stats_.pollution_misses);
  w.u64(stats_.dirty_writebacks);
  w.u64(stats_.write_hits);
  w.u64(stats_.write_misses);
  w.u64(redundant_fills_);
  // Pollution filter: the FIFO is ordered as-is; the membership set is NOT
  // derivable from the FIFO (overwriting one duplicate erases the value from
  // the set while its twin stays queued), so it travels separately, sorted.
  w.u64(static_cast<std::uint64_t>(pollution_fifo_.size()));
  for (std::uint64_t v : pollution_fifo_) w.u64(v);
  w.u64(static_cast<std::uint64_t>(pollution_head_));
  std::vector<std::uint64_t> members;
  pollution_set_.sorted_members(members);
  w.u64(static_cast<std::uint64_t>(members.size()));
  for (std::uint64_t v : members) w.u64(v);
}

void SystemCache::load_state(snapshot::Reader& r) {
  r.expect_tag(snapshot::tag4("CSH0"));
  for (Line& line : lines_) line = Line{};
  const std::uint64_t valid = r.u64();
  if (valid > lines_.size()) {
    throw snapshot::SnapshotError("cache valid-line count exceeds capacity");
  }
  std::uint64_t prev = 0;
  for (std::uint64_t n = 0; n < valid; ++n) {
    const std::uint64_t i = r.u64();
    if (i >= lines_.size() || (n > 0 && i <= prev)) {
      throw snapshot::SnapshotError("cache line slot index out of order");
    }
    prev = i;
    Line& line = lines_[i];
    line.block = r.u64();
    line.dirty = r.b();
    line.prefetched = r.b();
    const std::uint8_t src = r.u8();
    if (src > static_cast<std::uint8_t>(FillSource::kPrefetchOther)) {
      throw snapshot::SnapshotError("cache line fill source out of range");
    }
    line.source = static_cast<FillSource>(src);
    line.valid = true;
  }
  tags_.assign(lines_.size(), 0);
  set_valid_.assign(sets_, 0);
  for (std::size_t i = 0; i < lines_.size(); ++i) {
    if (lines_[i].valid) {
      tags_[i] = lines_[i].block;
      ++set_valid_[i / static_cast<std::size_t>(config_.ways)];
    }
  }
  policy_->load_state(r);
  stats_.demand_accesses = r.u64();
  stats_.demand_hits = r.u64();
  stats_.demand_misses = r.u64();
  stats_.demand_hits_on_prefetch = r.u64();
  stats_.hits_on_slp = r.u64();
  stats_.hits_on_tlp = r.u64();
  stats_.hits_on_other_pf = r.u64();
  stats_.prefetch_fills = r.u64();
  stats_.prefetch_unused_evictions = r.u64();
  stats_.pollution_misses = r.u64();
  stats_.dirty_writebacks = r.u64();
  stats_.write_hits = r.u64();
  stats_.write_misses = r.u64();
  redundant_fills_ = r.u64();
  const std::uint64_t fifo_size = r.u64();
  if (fifo_size > kPollutionFilterCap) {
    throw snapshot::SnapshotError("pollution FIFO larger than its cap");
  }
  pollution_fifo_.assign(fifo_size, 0);
  for (std::uint64_t& v : pollution_fifo_) v = r.u64();
  pollution_head_ = static_cast<std::size_t>(r.u64());
  if (fifo_size > 0 && pollution_head_ >= kPollutionFilterCap) {
    throw snapshot::SnapshotError("pollution FIFO head out of range");
  }
  const std::uint64_t set_size = r.u64();
  if (set_size > fifo_size) {
    throw snapshot::SnapshotError("pollution set larger than its FIFO");
  }
  std::vector<std::uint64_t> members(set_size);
  for (std::uint64_t& v : members) v = r.u64();
  pollution_set_.assign(std::move(members));
}

}  // namespace planaria::cache
