// Planaria — the composite prefetcher (paper Sections 2 and the coordinator).
//
// Coordination rule: "parallel training, serial issuing".
//   * Learning: BOTH sub-prefetchers observe every demand access, so each
//     sees the full pattern regardless of which one gets to issue.
//   * Issuing: on a demand miss, exactly one sub-prefetcher issues. SLP has
//     priority; TLP is consulted "only when SLP does not have history
//     information to support generating prefetching requests".
//
// This decoupling is the paper's key structural insight: serial coordinators
// (TPC) gate *learning* too and starve the backup prefetcher of training
// data, while parallel coordinators (ISB+stream) issue from everyone and pay
// in accuracy/traffic. Decoupling gets full-coverage learning with
// single-issuer accuracy.
#pragma once

#include <cstdint>
#include <memory>

#include "core/slp.hpp"
#include "core/tlp.hpp"
#include "prefetch/prefetcher.hpp"

namespace planaria::core {

struct PlanariaConfig {
  SlpConfig slp;
  TlpConfig tlp;
  bool enable_slp = true;  ///< ablation hooks for the Fig. 9 breakdown
  bool enable_tlp = true;

  void validate() const;
};

struct PlanariaStats {
  std::uint64_t triggers = 0;       ///< demand misses presented for issuing
  std::uint64_t slp_issues = 0;     ///< triggers where SLP issued
  std::uint64_t tlp_issues = 0;     ///< triggers that fell through to TLP
  std::uint64_t no_issues = 0;      ///< neither sub-prefetcher had metadata
};

class PlanariaPrefetcher final : public prefetch::Prefetcher {
 public:
  explicit PlanariaPrefetcher(const PlanariaConfig& config = {});

  void on_demand(const prefetch::DemandEvent& event,
                 std::vector<prefetch::PrefetchRequest>& out) override;

  const char* name() const override;
  std::uint64_t storage_bits() const override;

  void set_fault_injector(fault::FaultInjector* injector) override {
    slp_.set_fault_injector(injector);
    tlp_.set_fault_injector(injector);
  }

  const Slp& slp() const { return slp_; }
  const Tlp& tlp() const { return tlp_; }
  const PlanariaStats& stats() const { return stats_; }

  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;

 private:
  PlanariaConfig config_;
  Slp slp_;
  Tlp tlp_;
  PlanariaStats stats_;
};

}  // namespace planaria::core
