#include "core/storage.hpp"

namespace planaria::core {

std::uint64_t StorageBreakdown::per_channel_bits() const {
  std::uint64_t bits = 0;
  for (const auto& item : items) bits += item.bits();
  return bits;
}

std::uint64_t StorageBreakdown::total_bits(int channels) const {
  return per_channel_bits() * static_cast<std::uint64_t>(channels);
}

double StorageBreakdown::total_kb(int channels) const {
  return static_cast<double>(total_bits(channels)) / 8.0 / 1024.0;
}

double StorageBreakdown::fraction_of_sc(std::uint64_t sc_bytes,
                                        int channels) const {
  if (sc_bytes == 0) return 0.0;
  return static_cast<double>(total_bits(channels)) / 8.0 /
         static_cast<double>(sc_bytes);
}

StorageBreakdown planaria_storage(const PlanariaConfig& config) {
  config.validate();
  StorageBreakdown b;
  const auto& slp = config.slp;
  const auto& tlp = config.tlp;
  if (config.enable_slp) {
    // Field widths mirror Slp::storage_bits(); kept in one visible table so
    // the storage bench can print the breakdown the paper summarizes.
    b.items.push_back(StorageItem{
        "FT (filter table): tag28 + 3*offset4 + count2 + lru3",
        static_cast<std::uint64_t>(slp.ft_sets) *
            static_cast<std::uint64_t>(slp.ft_ways),
        45});
    b.items.push_back(StorageItem{
        "AT (accumulation table): tag28 + bitmap16 + time20 + lru3",
        static_cast<std::uint64_t>(slp.at_sets) *
            static_cast<std::uint64_t>(slp.at_ways),
        67});
    b.items.push_back(StorageItem{
        "PT (pattern history table): tag28 + bitmap16 + lru4",
        static_cast<std::uint64_t>(slp.pt_sets) *
            static_cast<std::uint64_t>(slp.pt_ways),
        48});
  }
  if (config.enable_tlp) {
    const auto n = static_cast<std::uint64_t>(tlp.rpt_entries);
    b.items.push_back(StorageItem{
        "RPT (recent page table): tag28 + bitmap16 + ref" +
            std::to_string(n - 1) + " + lru7",
        n, 28 + 16 + (n - 1) + 7});
  }
  return b;
}

}  // namespace planaria::core
