#include "core/storage.hpp"

#include "check/contract.hpp"
#include "core/storage_layout.hpp"

namespace planaria::core {

std::uint64_t StorageBreakdown::per_channel_bits() const {
  std::uint64_t bits = 0;
  for (const auto& item : items) bits += item.bits();
  return bits;
}

std::uint64_t StorageBreakdown::total_bits(int channels) const {
  return per_channel_bits() * static_cast<std::uint64_t>(channels);
}

double StorageBreakdown::total_kb(int channels) const {
  return static_cast<double>(total_bits(channels)) / 8.0 / 1024.0;
}

double StorageBreakdown::fraction_of_sc(std::uint64_t sc_bytes,
                                        int channels) const {
  if (sc_bytes == 0) return 0.0;
  return static_cast<double>(total_bits(channels)) / 8.0 /
         static_cast<double>(sc_bytes);
}

StorageBreakdown planaria_storage(const PlanariaConfig& config) {
  config.validate();
  StorageBreakdown b;
  const auto& slp = config.slp;
  const auto& tlp = config.tlp;
  if (config.enable_slp) {
    // Entry widths come from core/storage_layout.hpp, the same constants
    // Slp::storage_bits() consumes, so the bench breakdown and the
    // per-instance accounting cannot drift apart.
    b.items.push_back(StorageItem{
        "FT (filter table): tag28 + 3*offset4 + count2 + lru3",
        static_cast<std::uint64_t>(slp.ft_sets) *
            static_cast<std::uint64_t>(slp.ft_ways),
        layout::kFtEntryBits});
    b.items.push_back(StorageItem{
        "AT (accumulation table): tag28 + bitmap16 + time20 + lru3",
        static_cast<std::uint64_t>(slp.at_sets) *
            static_cast<std::uint64_t>(slp.at_ways),
        layout::kAtEntryBits});
    b.items.push_back(StorageItem{
        "PT (pattern history table): tag28 + bitmap16 + lru4",
        static_cast<std::uint64_t>(slp.pt_sets) *
            static_cast<std::uint64_t>(slp.pt_ways),
        layout::kPtEntryBits});
  }
  if (config.enable_tlp) {
    const auto n = static_cast<std::uint64_t>(tlp.rpt_entries);
    b.items.push_back(StorageItem{
        "RPT (recent page table): tag28 + bitmap16 + ref" +
            std::to_string(n - 1) + " + lru7",
        n, layout::rpt_entry_bits(n)});
  }
  // Cross-check the breakdown against the independent accounting path in
  // slp.cpp/tlp.cpp: the same bits, summed by a different code path.
  PLANARIA_ENSURE_MSG(
      kStorageBudget,
      b.per_channel_bits() == PlanariaPrefetcher(config).storage_bits(),
      "storage breakdown disagrees with the component accounting");
  return b;
}

}  // namespace planaria::core
