// Hardware field widths for Planaria's metadata tables, in one place.
//
// Slp::storage_bits() / Tlp::storage_bits() (the per-instance accounting the
// SRAM power model consumes) and core/storage.cpp (the field-by-field
// breakdown the storage bench prints) must agree bit for bit — the paper's
// 345.2KB budget claim is only as good as that agreement. Both now derive
// from these constants, and the static_asserts pin each derived entry width
// to the documented value so an edit to one field cannot silently change a
// total. planaria-audit additionally cross-checks the two code paths against
// each other at runtime for every registered configuration.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace planaria::core::layout {

/// Page-number tag stored by every table. 28 bits covers 2^28 4KB pages
/// (1TB of physical address space), the regime mobile SoCs live in.
inline constexpr int kPageTagBits = 28;

/// A block offset within the 16-block per-channel segment.
inline constexpr int kOffsetBits = 4;
static_assert((1 << kOffsetBits) == kBlocksPerSegment,
              "offset field must index every block of a segment");

/// One bit per segment block, the footprint-snapshot currency.
inline constexpr int kBitmapBits = kBlocksPerSegment;

// Filter Table: tag + 3 probation offsets + a count + per-way LRU.
inline constexpr int kFtOffsetSlots = 3;
inline constexpr int kFtCountBits = 2;
inline constexpr int kFtLruBits = 3;
inline constexpr int kFtEntryBits =
    kPageTagBits + kFtOffsetSlots * kOffsetBits + kFtCountBits + kFtLruBits;
static_assert(kFtEntryBits == 45, "FT entry layout drifted from the design");
static_assert((1 << kFtCountBits) > kFtOffsetSlots,
              "FT count field must represent 0..kFtOffsetSlots");

// Accumulation Table: tag + current-visit bitmap + last-access time + LRU.
inline constexpr int kAtTimeBits = 20;
inline constexpr int kAtLruBits = 3;
inline constexpr int kAtEntryBits =
    kPageTagBits + kBitmapBits + kAtTimeBits + kAtLruBits;
static_assert(kAtEntryBits == 67, "AT entry layout drifted from the design");

// Pattern History Table: tag + learned bitmap + LRU (12 ways need 4 bits).
inline constexpr int kPtLruBits = 4;
inline constexpr int kPtEntryBits = kPageTagBits + kBitmapBits + kPtLruBits;
static_assert(kPtEntryBits == 48, "PT entry layout drifted from the design");

// Recent Page Table: tag + recent-access bitmap + one Ref bit per *other*
// entry + LRU (128 fully-associative entries need 7 bits).
inline constexpr int kRptLruBits = 7;
constexpr std::uint64_t rpt_entry_bits(std::uint64_t rpt_entries) {
  return static_cast<std::uint64_t>(kPageTagBits + kBitmapBits + kRptLruBits) +
         (rpt_entries - 1);
}
static_assert(rpt_entry_bits(128) == 178,
              "RPT entry layout drifted from the design");

/// The paper's reported hardware budget for the default 4-channel
/// configuration (Verilog synthesis, Section 6). planaria-audit gates every
/// registered configuration against this.
inline constexpr double kPaperBudgetKb = 345.2;

}  // namespace planaria::core::layout
