#include "core/coordinators.hpp"

#include <stdexcept>

#include "check/contract.hpp"

namespace planaria::core {

void SerialCoordinatorConfig::validate() const {
  slp.validate();
  tlp.validate();
  if (switch_after <= 0) {
    throw std::invalid_argument("serial coordinator: switch_after must be > 0");
  }
}

namespace {

SerialCoordinatorConfig validated(SerialCoordinatorConfig config) {
  config.validate();
  return config;
}

ParallelCoordinatorConfig validated(ParallelCoordinatorConfig config) {
  config.validate();
  return config;
}

}  // namespace

SerialComposite::SerialComposite(const SerialCoordinatorConfig& config)
    : config_(validated(config)), slp_(config_.slp), tlp_(config_.tlp) {}

void SerialComposite::on_demand(const prefetch::DemandEvent& event,
                                std::vector<prefetch::PrefetchRequest>& out) {
  // Monolithic sub-prefetchers: only the active one observes the access.
  // This is exactly the structural weakness Planaria's decoupling removes.
  if (slp_active_) {
    slp_.learn(event);
  } else {
    tlp_.learn(event);
  }
  if (event.sc_hit) return;

  if (slp_active_) {
    if (slp_.issue(event, out)) {
      slp_failures_ = 0;
      return;
    }
    if (++slp_failures_ >= config_.switch_after) {
      slp_active_ = false;
      slp_failures_ = 0;
      ++switches_;
    }
    // The failure streak resets on every switch and every successful issue,
    // so it can never accumulate past the switch threshold.
    PLANARIA_INVARIANT_MSG(kCoordinatorExclusivity,
                           slp_failures_ < config_.switch_after,
                           "serial coordinator missed its switch point");
    return;
  }

  // TLP active. Switch back as soon as SLP's history would have served this
  // trigger (the hardwired "boundary of expertise" heuristic).
  if (slp_.has_pattern(event.page)) {
    slp_active_ = true;
    slp_failures_ = 0;
    ++switches_;
    slp_.issue(event, out);
    return;
  }
  tlp_.issue(event, out);
}

std::uint64_t SerialComposite::storage_bits() const {
  return slp_.storage_bits() + tlp_.storage_bits();
}

ParallelComposite::ParallelComposite(const ParallelCoordinatorConfig& config)
    : config_(validated(config)), slp_(config_.slp), tlp_(config_.tlp) {}

void ParallelComposite::on_demand(const prefetch::DemandEvent& event,
                                  std::vector<prefetch::PrefetchRequest>& out) {
  const std::size_t queued_before = out.size();
  slp_.learn(event);
  tlp_.learn(event);
  if (event.sc_hit) return;
  // Both issue; the simulator's dedupe removes exact duplicates but the
  // union still carries TLP's lower-confidence fetches even when SLP already
  // knows the page — the accuracy cost of parallel issuing.
  slp_.issue(event, out);
  tlp_.issue(event, out);
  PLANARIA_ENSURE_MSG(kCoordinatorExclusivity, out.size() >= queued_before,
                      "issuing may only append prefetch requests");
}

std::uint64_t ParallelComposite::storage_bits() const {
  return slp_.storage_bits() + tlp_.storage_bits();
}

void SerialComposite::save_state(snapshot::Writer& w) const {
  w.tag(snapshot::tag4("SER0"));
  slp_.save_state(w);
  tlp_.save_state(w);
  w.b(slp_active_);
  w.u32(static_cast<std::uint32_t>(slp_failures_));
  w.u64(switches_);
}

void SerialComposite::load_state(snapshot::Reader& r) {
  r.expect_tag(snapshot::tag4("SER0"));
  slp_.load_state(r);
  tlp_.load_state(r);
  slp_active_ = r.b();
  slp_failures_ = static_cast<int>(r.u32());
  switches_ = r.u64();
}

void ParallelComposite::save_state(snapshot::Writer& w) const {
  w.tag(snapshot::tag4("PAR0"));
  slp_.save_state(w);
  tlp_.save_state(w);
}

void ParallelComposite::load_state(snapshot::Reader& r) {
  r.expect_tag(snapshot::tag4("PAR0"));
  slp_.load_state(r);
  tlp_.load_state(r);
}

}  // namespace planaria::core
