// Bit-exact storage accounting for Planaria's metadata.
//
// Replaces the paper's Verilog-synthesis area estimate: the prefetcher's
// area is dominated by its SRAM tables, which we can account field by field.
// The paper reports 345.2KB total (8.4% of the 4MB SC); the default
// configuration here lands in the same regime (see bench_table_storage).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/planaria.hpp"

namespace planaria::core {

struct StorageItem {
  std::string name;        ///< table name, e.g. "PT (pattern history)"
  std::uint64_t entries;   ///< entries per channel
  std::uint64_t bits_per_entry;
  std::uint64_t bits() const { return entries * bits_per_entry; }
};

struct StorageBreakdown {
  std::vector<StorageItem> items;  ///< per one channel

  std::uint64_t per_channel_bits() const;
  std::uint64_t total_bits(int channels = kChannels) const;
  double total_kb(int channels = kChannels) const;
  /// Fraction of a system cache of `sc_bytes` this metadata occupies.
  double fraction_of_sc(std::uint64_t sc_bytes, int channels = kChannels) const;
};

/// Field-by-field accounting of one channel's SLP + TLP tables.
StorageBreakdown planaria_storage(const PlanariaConfig& config = {});

}  // namespace planaria::core
