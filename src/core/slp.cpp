#include "core/slp.hpp"

#include <stdexcept>

#include "check/contract.hpp"
#include "common/assert.hpp"
#include "core/storage_layout.hpp"
#include "fault/fault.hpp"

namespace planaria::core {

void SlpConfig::validate() const {
  if (ft_sets <= 0 || ft_ways <= 0 || at_sets <= 0 || at_ways <= 0 ||
      pt_sets <= 0 || pt_ways <= 0) {
    throw std::invalid_argument("slp config: table sizes must be positive");
  }
  const auto pow2 = [](int v) { return (v & (v - 1)) == 0; };
  if (!pow2(ft_sets) || !pow2(at_sets) || !pow2(pt_sets)) {
    throw std::invalid_argument(
        "slp config: set counts must be powers of two (hardware set index)");
  }
  if (promote_threshold < 1 || promote_threshold > layout::kFtOffsetSlots) {
    throw std::invalid_argument(
        "slp config: promote_threshold must be 1..3 (FT stores 3 offsets)");
  }
  if (at_timeout == 0 || sweep_interval == 0) {
    throw std::invalid_argument("slp config: timeouts must be positive");
  }
  if (at_timeout >= (Cycle{1} << layout::kAtTimeBits)) {
    throw std::invalid_argument(
        "slp config: at_timeout must fit the AT's 20-bit time field");
  }
}

namespace {

/// Validates before the member tables are constructed (they assert on their
/// geometry, and a std::invalid_argument is the contract for bad configs).
SlpConfig validated(SlpConfig config) {
  config.validate();
  return config;
}

}  // namespace

Slp::Slp(const SlpConfig& config)
    : config_(validated(config)),
      ft_(static_cast<std::size_t>(config_.ft_sets), config_.ft_ways),
      at_(static_cast<std::size_t>(config_.at_sets), config_.at_ways),
      pt_(static_cast<std::size_t>(config_.pt_sets), config_.pt_ways) {}

void Slp::transfer_to_pt(PageNumber page, const SegmentBitmap& bitmap) {
  // A snapshot below the promotion threshold can arise when an AT entry is
  // promoted and immediately displaced; it carries too little signal to keep.
  if (bitmap.popcount() < config_.promote_threshold) return;
  pt_.insert(page, bitmap);
  ++stats_.snapshots_learned;
}

void Slp::sweep_timeouts(Cycle now) {
  at_.evict_if(
      [&](PageNumber, const AtEntry& e) {
        return now > e.last_access && now - e.last_access > config_.at_timeout;
      },
      [&](PageNumber page, AtEntry&& e) {
        ++stats_.timeout_evictions;
        transfer_to_pt(page, e.bitmap);
      });
}

void Slp::maybe_inject_fault() {
  if (fault_ == nullptr || !fault_->roll(fault::FaultClass::kSlpPatternFlip)) {
    return;
  }
  // Flip one bit in a random resident PT pattern. The scan wraps from a
  // random start so every resident entry is equally likely over time; an
  // empty PT simply means the roll applied to nothing and is not recorded.
  Rng& rng = fault_->rng(fault::FaultClass::kSlpPatternFlip);
  const std::size_t cap = pt_.capacity();
  const std::size_t start = static_cast<std::size_t>(rng.next_below(cap));
  for (std::size_t k = 0; k < cap; ++k) {
    const std::size_t i = (start + k) % cap;
    if (SegmentBitmap* pattern = pt_.payload_at(i); pattern != nullptr) {
      pattern->flip(static_cast<int>(rng.next_below(kBlocksPerSegment)));
      fault_->record(fault::FaultClass::kSlpPatternFlip);
      return;
    }
  }
}

void Slp::learn(const prefetch::DemandEvent& event) {
  maybe_inject_fault();
  PLANARIA_REQUIRE_MSG(kTableOccupancy,
                       event.block_in_segment >= 0 &&
                           event.block_in_segment < kBlocksPerSegment,
                       "segment block offset outside the 16-block bitmap");

  // Lazy timeout sweep (Step 4): scanning the whole AT on every access would
  // be both unrealistic hardware and a simulation hotspot, so the timeout is
  // checked every sweep_interval accesses — a slack far below at_timeout.
  if (++accesses_since_sweep_ >= config_.sweep_interval) {
    accesses_since_sweep_ = 0;
    sweep_timeouts(event.now);
  }

  const auto offset = static_cast<std::uint8_t>(event.block_in_segment);

  // Step 1: is the page already accumulating?
  if (AtEntry* at = at_.find(event.page); at != nullptr) {
    at->bitmap.set(event.block_in_segment);
    at->last_access = event.now;
    return;
  }

  // Step 2/3: run the page through the filter table.
  if (FtEntry* ft = ft_.find(event.page); ft != nullptr) {
    bool known = false;
    for (int i = 0; i < ft->count; ++i) {
      if (ft->offsets[i] == offset) {
        known = true;
        break;
      }
    }
    if (!known) {
      // The FT only holds pages below the promotion threshold, so a distinct
      // offset always has a free probation slot.
      PLANARIA_INVARIANT_MSG(kTableOccupancy,
                             ft->count < layout::kFtOffsetSlots,
                             "FT entry survived past the promotion threshold");
      ft->offsets[ft->count++] = offset;
    }
    if (ft->count >= config_.promote_threshold) {
      // Promote: seed the AT bitmap with the offsets the FT witnessed.
      AtEntry fresh;
      for (int i = 0; i < ft->count; ++i) fresh.bitmap.set(ft->offsets[i]);
      fresh.last_access = event.now;
      ft_.erase(event.page);
      if (auto evicted = at_.insert(event.page, fresh); evicted.has_value()) {
        ++stats_.capacity_evictions;
        transfer_to_pt(evicted->first, evicted->second.bitmap);
      }
      ++stats_.promotions;
      // Promotion moves the page FT -> AT; it must never live in both.
      PLANARIA_ENSURE_MSG(kTableOccupancy,
                          ft_.peek(event.page) == nullptr &&
                              at_.peek(event.page) != nullptr,
                          "promoted page must leave the FT and enter the AT");
      PLANARIA_DASSERT(at_.size() <= at_.capacity());
    }
    return;
  }

  FtEntry fresh;
  fresh.offsets[0] = offset;
  fresh.count = 1;
  ft_.insert(event.page, fresh);
  ++stats_.ft_inserts;
}

bool Slp::has_pattern(PageNumber page) const {
  return pt_.peek(page) != nullptr;
}

bool Slp::issue(const prefetch::DemandEvent& event,
                std::vector<prefetch::PrefetchRequest>& out) {
  SegmentBitmap* pattern = pt_.find(event.page);
  if (pattern == nullptr) return false;
  // transfer_to_pt never stores a pattern below the promotion threshold, so a
  // sub-threshold pattern here means the entry was corrupted after learning
  // (fault injection, or a real soft error the model emulates). Recovery:
  // drop the entry — it carries too little signal to act on — and decline the
  // trigger so the coordinator falls through to TLP or nothing.
  const int pop = pattern->popcount();
  PLANARIA_INVARIANT_MSG(kTableOccupancy, pop >= config_.promote_threshold,
                         "PT pattern below promotion threshold (corrupted entry)");
  if (pop < config_.promote_threshold) {
    pt_.erase(event.page);
    return false;
  }
  ++stats_.issue_triggers;

  // Prefetch every pattern block except those this visit already touched
  // (the AT bitmap) and the trigger block itself. The cache/in-flight
  // deduplication in the simulator suppresses re-issues for blocks already
  // present.
  SegmentBitmap already;
  if (const AtEntry* at = at_.peek(event.page); at != nullptr) {
    already = at->bitmap;
  }
  already.set(event.block_in_segment);
  const SegmentBitmap to_fetch = pattern->minus(already);
  to_fetch.for_each_set([&](int block) {
    out.push_back(prefetch::PrefetchRequest{
        event.page * kBlocksPerSegment + static_cast<std::uint64_t>(block),
        cache::FillSource::kPrefetchSlp});
    ++stats_.prefetches_issued;
  });
  return true;
}

std::uint64_t Slp::storage_bits() const {
  // Field widths per entry come from core/storage_layout.hpp, the single
  // source both this accounting and the storage-bench breakdown derive from.
  const std::uint64_t ft_bits = static_cast<std::uint64_t>(config_.ft_sets) *
                                config_.ft_ways * layout::kFtEntryBits;
  const std::uint64_t at_bits = static_cast<std::uint64_t>(config_.at_sets) *
                                config_.at_ways * layout::kAtEntryBits;
  const std::uint64_t pt_bits = static_cast<std::uint64_t>(config_.pt_sets) *
                                config_.pt_ways * layout::kPtEntryBits;
  return ft_bits + at_bits + pt_bits;
}

void Slp::save_state(snapshot::Writer& w) const {
  w.tag(snapshot::tag4("SLP0"));
  ft_.save_state(w, [](snapshot::Writer& o, const FtEntry& e) {
    for (std::uint8_t off : e.offsets) o.u8(off);
    o.u32(static_cast<std::uint32_t>(e.count));
  });
  at_.save_state(w, [](snapshot::Writer& o, const AtEntry& e) {
    o.u16(static_cast<std::uint16_t>(e.bitmap.raw()));
    o.u64(e.last_access);
  });
  pt_.save_state(w, [](snapshot::Writer& o, const SegmentBitmap& bm) {
    o.u16(static_cast<std::uint16_t>(bm.raw()));
  });
  w.u64(stats_.ft_inserts);
  w.u64(stats_.promotions);
  w.u64(stats_.snapshots_learned);
  w.u64(stats_.timeout_evictions);
  w.u64(stats_.capacity_evictions);
  w.u64(stats_.issue_triggers);
  w.u64(stats_.prefetches_issued);
  w.u64(accesses_since_sweep_);
}

void Slp::load_state(snapshot::Reader& r) {
  r.expect_tag(snapshot::tag4("SLP0"));
  ft_.load_state(r, [](snapshot::Reader& i) {
    FtEntry e;
    for (std::uint8_t& off : e.offsets) off = i.u8();
    e.count = static_cast<int>(i.u32());
    return e;
  });
  at_.load_state(r, [](snapshot::Reader& i) {
    AtEntry e;
    e.bitmap = SegmentBitmap(i.u16());
    e.last_access = i.u64();
    return e;
  });
  pt_.load_state(r, [](snapshot::Reader& i) { return SegmentBitmap(i.u16()); });
  stats_.ft_inserts = r.u64();
  stats_.promotions = r.u64();
  stats_.snapshots_learned = r.u64();
  stats_.timeout_evictions = r.u64();
  stats_.capacity_evictions = r.u64();
  stats_.issue_triggers = r.u64();
  stats_.prefetches_issued = r.u64();
  accesses_since_sweep_ = r.u64();
}

}  // namespace planaria::core
