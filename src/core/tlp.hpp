// TLP — the Transfer-Learning directed Prefetcher (paper Section 4).
//
// Exploits Observation 2: pages close in address space often share similar
// footprints (array-of-struct tilings, framebuffer rows, adjacent file
// pages). A page with no self-learned history "borrows" the footprint of its
// most similar nearby page.
//
// The single structure is the Recent Page Table (RPT), 128 fully-associative
// entries, each holding the page's 16-bit recent-access bitmap plus a row of
// 1-bit "Ref" flags — Ref[i][j] = 1 iff entries i and j are within the
// page-number distance threshold. The paper's prose states the inverted
// comparison ("larger than a threshold ... set as 1") but Figure 6 and the
// worked 0x100/0x110 example are unambiguous that *near* pages reference each
// other; we follow the figure (see DESIGN.md). The Ref matrix is maintained
// incrementally on allocation/eviction, exactly as cheap hardware would.
//
// Issuing: among referenced entries whose bitmap shares at least
// `min_common_bits` set bits with the trigger page's bitmap (the example's
// "four same bits"), the most similar wins, and every block set in the
// neighbor's bitmap but not yet touched on the trigger page is prefetched.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitmap.hpp"
#include "prefetch/prefetcher.hpp"

namespace planaria::core {

struct TlpConfig {
  int rpt_entries = 128;
  std::uint64_t distance_threshold = 64;  ///< |PN_i - PN_j| <= this => neighbors
  int min_common_bits = 4;                ///< similarity floor for transfer

  void validate() const;
};

struct TlpStats {
  std::uint64_t allocations = 0;
  std::uint64_t issue_triggers = 0;    ///< misses TLP was asked to handle
  std::uint64_t transfers = 0;         ///< a qualifying neighbor was found
  std::uint64_t prefetches_issued = 0;
};

class Tlp {
 public:
  explicit Tlp(const TlpConfig& config = {});

  /// Learning phase: records the access in the page's RPT bitmap, allocating
  /// (and wiring Ref bits) on first sight. Runs on every demand access.
  void learn(const prefetch::DemandEvent& event);

  /// Issuing phase: on a demand miss, transfer the best qualifying neighbor
  /// pattern. Returns true iff any prefetch was appended.
  bool issue(const prefetch::DemandEvent& event,
             std::vector<prefetch::PrefetchRequest>& out);

  std::uint64_t storage_bits() const;
  const TlpStats& stats() const { return stats_; }
  const TlpConfig& config() const { return config_; }

  /// Test hook: the bitmap currently recorded for `page`, if resident.
  const SegmentBitmap* bitmap_of(PageNumber page) const;

  /// Attaches a fault injector (src/fault): each learn() call may flip one
  /// recent-access bitmap bit in a random resident RPT entry. Ref bits are
  /// deliberately out of scope — the Ref matrix has its own consistency
  /// DASSERT and repairing it would require a full rebuild, not a local
  /// recovery. nullptr (the default) disables injection.
  void set_fault_injector(fault::FaultInjector* injector) { fault_ = injector; }

  /// Checkpoint/restore (DESIGN.md §11): every RPT slot (bitmap, Ref row,
  /// LRU stamp), the LRU tick and stats. Slot indices are part of the
  /// encoding because the Ref matrix is slot-addressed.
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

 private:
  struct RptEntry {
    PageNumber page = 0;
    SegmentBitmap bitmap;
    std::vector<bool> ref;   ///< ref[j]: entry j is an address-space neighbor
    std::uint64_t last_use = 0;
    bool valid = false;
  };

  int find_slot(PageNumber page) const;
  int allocate(PageNumber page);
  void maybe_inject_fault();

  /// Debug-only structural check: the Ref matrix is symmetric, irreflexive,
  /// and only links valid entries. O(N^2); used under PLANARIA_DASSERT.
  bool ref_matrix_consistent() const;

  TlpConfig config_;
  std::vector<RptEntry> entries_;
  std::uint64_t tick_ = 0;
  TlpStats stats_;
  fault::FaultInjector* fault_ = nullptr;
};

}  // namespace planaria::core
