// TLP — the Transfer-Learning directed Prefetcher (paper Section 4).
//
// Exploits Observation 2: pages close in address space often share similar
// footprints (array-of-struct tilings, framebuffer rows, adjacent file
// pages). A page with no self-learned history "borrows" the footprint of its
// most similar nearby page.
//
// The single structure is the Recent Page Table (RPT), 128 fully-associative
// entries, each holding the page's 16-bit recent-access bitmap plus a row of
// 1-bit "Ref" flags — Ref[i][j] = 1 iff entries i and j are within the
// page-number distance threshold. The paper's prose states the inverted
// comparison ("larger than a threshold ... set as 1") but Figure 6 and the
// worked 0x100/0x110 example are unambiguous that *near* pages reference each
// other; we follow the figure (see DESIGN.md). The Ref matrix is maintained
// incrementally on allocation/eviction, exactly as cheap hardware would.
//
// Issuing: among referenced entries whose bitmap shares at least
// `min_common_bits` set bits with the trigger page's bitmap (the example's
// "four same bits"), the most similar wins, and every block set in the
// neighbor's bitmap but not yet touched on the trigger page is prefetched.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitmap.hpp"
#include "common/tag_index.hpp"
#include "prefetch/prefetcher.hpp"

namespace planaria::core {

struct TlpConfig {
  int rpt_entries = 128;
  std::uint64_t distance_threshold = 64;  ///< |PN_i - PN_j| <= this => neighbors
  int min_common_bits = 4;                ///< similarity floor for transfer

  void validate() const;
};

struct TlpStats {
  std::uint64_t allocations = 0;
  std::uint64_t issue_triggers = 0;    ///< misses TLP was asked to handle
  std::uint64_t transfers = 0;         ///< a qualifying neighbor was found
  std::uint64_t prefetches_issued = 0;
};

class Tlp {
 public:
  explicit Tlp(const TlpConfig& config = {});

  /// Learning phase: records the access in the page's RPT bitmap, allocating
  /// (and wiring Ref bits) on first sight. Runs on every demand access.
  void learn(const prefetch::DemandEvent& event);

  /// Issuing phase: on a demand miss, transfer the best qualifying neighbor
  /// pattern. Returns true iff any prefetch was appended.
  bool issue(const prefetch::DemandEvent& event,
             std::vector<prefetch::PrefetchRequest>& out);

  std::uint64_t storage_bits() const;
  const TlpStats& stats() const { return stats_; }
  const TlpConfig& config() const { return config_; }

  /// Test hook: the bitmap currently recorded for `page`, if resident.
  const SegmentBitmap* bitmap_of(PageNumber page) const;

  /// Attaches a fault injector (src/fault): each learn() call may flip one
  /// recent-access bitmap bit in a random resident RPT entry. Ref bits are
  /// deliberately out of scope — the Ref matrix has its own consistency
  /// DASSERT and repairing it would require a full rebuild, not a local
  /// recovery. nullptr (the default) disables injection.
  void set_fault_injector(fault::FaultInjector* injector) { fault_ = injector; }

  /// Checkpoint/restore (DESIGN.md §11): every RPT slot (bitmap, Ref row,
  /// LRU stamp), the LRU tick and stats. Slot indices are part of the
  /// encoding because the Ref matrix is slot-addressed.
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

 private:
  // The RPT is stored as parallel columns rather than an array of structs:
  // allocate() scans every slot's valid flag / LRU stamp (victim selection)
  // and page number (Ref wiring) on each allocation, and issue() walks valid
  // flags and bitmaps. Splitting the fields keeps each of those scans inside
  // a handful of contiguous cache lines and lets the compiler vectorize the
  // min/compare loops; the snapshot encoding is per-slot logical fields, so
  // the layout change is invisible to PLNSNAP1 streams.
  std::size_t slot_count() const { return pages_.size(); }

  // The Ref matrix lives outside the entries in one flat bit matrix: row i
  // occupies ref_[i*ref_words_ .. (i+1)*ref_words_), one bit per slot packed
  // 64 slots per word (slot j -> word j/64 bit j%64). Allocation rewires a
  // whole column, which on a contiguous matrix is a strided walk through a
  // couple of KB instead of a pointer chase into N separate heap rows. Bits
  // >= rpt_entries stay zero. The snapshot encoding (8 slots per byte) is
  // exactly these words' little-endian bytes, so the packed representation
  // serializes byte-identically to the old per-entry vector<bool>.
  bool ref_get(std::size_t i, std::size_t j) const {
    return ((ref_[i * ref_words_ + j / 64] >> (j % 64)) & 1u) != 0;
  }
  void ref_put(std::size_t i, std::size_t j, bool v) {
    const std::uint64_t bit = 1ull << (j % 64);
    std::uint64_t& word = ref_[i * ref_words_ + j / 64];
    if (v) {
      word |= bit;
    } else {
      word &= ~bit;
    }
  }

  int find_slot(PageNumber page) const;
  int allocate(PageNumber page);
  void maybe_inject_fault();

  /// Debug-only structural check: the Ref matrix is symmetric, irreflexive,
  /// and only links valid entries. O(N^2); used under PLANARIA_DASSERT.
  bool ref_matrix_consistent() const;

  TlpConfig config_;
  std::vector<PageNumber> pages_;        ///< per-slot page tag
  std::vector<SegmentBitmap> bitmaps_;   ///< per-slot recent-access bitmap
  std::vector<std::uint64_t> last_use_;  ///< per-slot LRU stamp
  std::vector<std::uint8_t> valid_;      ///< per-slot occupancy flag
  std::size_t ref_words_ = 1;        ///< 64-bit words per Ref row
  std::vector<std::uint64_t> ref_;   ///< flat N x ref_words_ bit matrix
  TagIndex page_index_;  ///< page -> RPT slot, shadowing the valid entries
  std::uint64_t tick_ = 0;
  TlpStats stats_;
  fault::FaultInjector* fault_ = nullptr;
};

}  // namespace planaria::core
