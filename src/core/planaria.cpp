#include "core/planaria.hpp"

#include <stdexcept>

#include "check/contract.hpp"

namespace planaria::core {

void PlanariaConfig::validate() const {
  slp.validate();
  tlp.validate();
  if (!enable_slp && !enable_tlp) {
    throw std::invalid_argument(
        "planaria config: at least one sub-prefetcher must be enabled");
  }
}

PlanariaPrefetcher::PlanariaPrefetcher(const PlanariaConfig& config)
    : config_(config), slp_(config.slp), tlp_(config.tlp) {
  config_.validate();
}

void PlanariaPrefetcher::on_demand(const prefetch::DemandEvent& event,
                                   std::vector<prefetch::PrefetchRequest>& out) {
  // Learning phase: unconditionally parallel. Disabled sub-prefetchers (Fig. 9
  // ablations) skip learning too — they are absent from the hardware.
  if (config_.enable_slp) slp_.learn(event);
  if (config_.enable_tlp) tlp_.learn(event);

  // Issuing phase: only on demand misses (Figure 1, Step 5: "prefetch
  // requests will be generated if the demand request is a cache miss").
  if (event.sc_hit) return;
  ++stats_.triggers;

  // "Parallel training, serial issuing": SLP issues exactly when it holds
  // history for the page; TLP is consulted only on SLP's abstention; and
  // every trigger takes exactly one of the three dispositions. has_pattern is
  // re-queried AFTER each issue() call, not cached before: under fault
  // injection SLP's issue() may recover from a corrupted PT entry by erasing
  // it and abstaining, and a pre-issue snapshot would then fire the TLP-branch
  // ENSURE on a trigger that was handled correctly.
  const std::size_t out_before = out.size();

  if (config_.enable_slp && slp_.issue(event, out)) {
    PLANARIA_ENSURE_MSG(kCoordinatorExclusivity, slp_.has_pattern(event.page),
                        "SLP issued without history for the trigger page");
    ++stats_.slp_issues;
  } else if (config_.enable_tlp && tlp_.issue(event, out)) {
    PLANARIA_ENSURE_MSG(kCoordinatorExclusivity,
                        !config_.enable_slp || !slp_.has_pattern(event.page),
                        "TLP issued on a trigger SLP was entitled to");
    ++stats_.tlp_issues;
  } else {
    PLANARIA_ENSURE_MSG(kCoordinatorExclusivity, out.size() == out_before,
                        "abstaining trigger appended prefetch requests");
    ++stats_.no_issues;
  }
  PLANARIA_INVARIANT_MSG(
      kCoordinatorExclusivity,
      stats_.triggers ==
          stats_.slp_issues + stats_.tlp_issues + stats_.no_issues,
      "trigger dispositions must partition the trigger count");
}

const char* PlanariaPrefetcher::name() const {
  if (config_.enable_slp && config_.enable_tlp) return "planaria";
  return config_.enable_slp ? "planaria-slp-only" : "planaria-tlp-only";
}

std::uint64_t PlanariaPrefetcher::storage_bits() const {
  std::uint64_t bits = 0;
  if (config_.enable_slp) bits += slp_.storage_bits();
  if (config_.enable_tlp) bits += tlp_.storage_bits();
  return bits;
}

void PlanariaPrefetcher::save_state(snapshot::Writer& w) const {
  w.tag(snapshot::tag4("PLN0"));
  slp_.save_state(w);
  tlp_.save_state(w);
  w.u64(stats_.triggers);
  w.u64(stats_.slp_issues);
  w.u64(stats_.tlp_issues);
  w.u64(stats_.no_issues);
}

void PlanariaPrefetcher::load_state(snapshot::Reader& r) {
  r.expect_tag(snapshot::tag4("PLN0"));
  slp_.load_state(r);
  tlp_.load_state(r);
  stats_.triggers = r.u64();
  stats_.slp_issues = r.u64();
  stats_.tlp_issues = r.u64();
  stats_.no_issues = r.u64();
}

}  // namespace planaria::core
