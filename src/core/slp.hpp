// SLP — the Self-Learning directed Prefetcher (paper Section 3).
//
// Exploits Observation 1: at the SC level, a page's accessed blocks form a
// *footprint snapshot* whose membership is stable across visits even though
// the intra-snapshot access order is shuffled. SLP therefore abandons delta
// prediction entirely and learns the snapshot itself, keyed by page number
// alone (no PC exists at the memory side).
//
// Three tables per channel (Figure 1):
//   Filter Table (FT)        — probation. A page must show `promote_threshold`
//                               (default 3) distinct block offsets before it
//                               earns an Accumulation Table entry; one-touch
//                               pages never pollute the pattern store.
//   Accumulation Table (AT)  — records the 16-bit bitmap of blocks touched in
//                               the current visit. An entry idle longer than
//                               `at_timeout` is interpreted as a *complete,
//                               stable snapshot* and its bitmap transfers to
//                               the PT (the paper's Step 4). Capacity
//                               evictions transfer too — the snapshot was
//                               merely interrupted, and discarding it would
//                               throw away learning.
//   Pattern History Table (PT) — page number -> learned bitmap. On a demand
//                               miss to a page with a PT entry, every pattern
//                               block not yet fetched is prefetched.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitmap.hpp"
#include "common/set_table.hpp"
#include "prefetch/prefetcher.hpp"

namespace planaria::core {

struct SlpConfig {
  int ft_sets = 64;
  int ft_ways = 8;             ///< 512-entry filter table
  int at_sets = 64;
  int at_ways = 8;             ///< 512-entry accumulation table
  int pt_sets = 1024;
  int pt_ways = 12;            ///< 12288-entry pattern history table
  int promote_threshold = 3;   ///< distinct offsets before FT -> AT (Step 3)
  Cycle at_timeout = 50000;    ///< idle cycles before a snapshot is "complete"
  Cycle sweep_interval = 64;   ///< accesses between lazy timeout sweeps

  void validate() const;
};

struct SlpStats {
  std::uint64_t ft_inserts = 0;
  std::uint64_t promotions = 0;       ///< FT -> AT
  std::uint64_t snapshots_learned = 0;  ///< AT -> PT transfers
  std::uint64_t timeout_evictions = 0;
  std::uint64_t capacity_evictions = 0;
  std::uint64_t issue_triggers = 0;   ///< misses where PT had a pattern
  std::uint64_t prefetches_issued = 0;
};

class Slp {
 public:
  explicit Slp(const SlpConfig& config = {});

  /// Learning phase: runs on every demand access (the coordinator enables
  /// learning unconditionally — "full-pattern directed").
  void learn(const prefetch::DemandEvent& event);

  /// Issuing phase: consulted by the coordinator on demand misses. Returns
  /// true if SLP had a pattern for the page and appended prefetches for the
  /// not-yet-accessed pattern blocks ("history information to support
  /// generating prefetching requests").
  bool issue(const prefetch::DemandEvent& event,
             std::vector<prefetch::PrefetchRequest>& out);

  /// True iff the PT holds a pattern for `page`; the coordinator's selection
  /// rule is defined on exactly this predicate.
  bool has_pattern(PageNumber page) const;

  std::uint64_t storage_bits() const;
  const SlpStats& stats() const { return stats_; }
  const SlpConfig& config() const { return config_; }

  /// Attaches a fault injector (src/fault): each learn() call may flip one
  /// bit in a random resident PT pattern, modelling a metadata soft error.
  /// nullptr (the default) disables injection with zero overhead on the
  /// learn path beyond one pointer test.
  void set_fault_injector(fault::FaultInjector* injector) { fault_ = injector; }

  /// Checkpoint/restore (DESIGN.md §11): all three tables with exact LRU
  /// state, stats, and the sweep phase counter. The attached fault injector
  /// is serialized by its owner, not here.
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

 private:
  struct FtEntry {
    std::uint8_t offsets[3] = {0, 0, 0};  ///< first distinct offsets seen
    int count = 0;
  };

  struct AtEntry {
    SegmentBitmap bitmap;
    Cycle last_access = 0;
  };

  void transfer_to_pt(PageNumber page, const SegmentBitmap& bitmap);
  void sweep_timeouts(Cycle now);
  void maybe_inject_fault();

  SlpConfig config_;
  SetAssocTable<PageNumber, FtEntry> ft_;
  SetAssocTable<PageNumber, AtEntry> at_;
  SetAssocTable<PageNumber, SegmentBitmap> pt_;
  SlpStats stats_;
  std::uint64_t accesses_since_sweep_ = 0;
  fault::FaultInjector* fault_ = nullptr;
};

}  // namespace planaria::core
