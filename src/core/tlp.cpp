#include "core/tlp.hpp"

#include <stdexcept>

#include "check/contract.hpp"
#include "common/assert.hpp"
#include "core/storage_layout.hpp"
#include "fault/fault.hpp"

namespace planaria::core {

void TlpConfig::validate() const {
  if (rpt_entries <= 0) {
    throw std::invalid_argument("tlp config: rpt_entries must be positive");
  }
  if (distance_threshold == 0) {
    throw std::invalid_argument("tlp config: distance threshold must be positive");
  }
  if (min_common_bits < 1 || min_common_bits > 16) {
    throw std::invalid_argument("tlp config: min_common_bits must be 1..16");
  }
}

Tlp::Tlp(const TlpConfig& config)
    : config_(config),
      entries_(static_cast<std::size_t>(config.rpt_entries)) {
  config_.validate();
  for (auto& e : entries_) {
    e.ref.assign(static_cast<std::size_t>(config_.rpt_entries), false);
  }
}

int Tlp::find_slot(PageNumber page) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].valid && entries_[i].page == page) return static_cast<int>(i);
  }
  return -1;
}

int Tlp::allocate(PageNumber page) {
  // LRU victim (or first invalid slot).
  int victim = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (!entries_[i].valid) {
      victim = static_cast<int>(i);
      break;
    }
    if (entries_[i].last_use < entries_[static_cast<std::size_t>(victim)].last_use) {
      victim = static_cast<int>(i);
    }
  }
  auto& e = entries_[static_cast<std::size_t>(victim)];
  // Retire the old occupant's Ref bits in both directions.
  if (e.valid) {
    for (auto& other : entries_) {
      if (other.valid) other.ref[static_cast<std::size_t>(victim)] = false;
    }
  }
  e.page = page;
  e.bitmap.reset();
  e.valid = true;
  std::fill(e.ref.begin(), e.ref.end(), false);
  // Wire Ref bits against every resident page (the paper's allocation step:
  // "TLP allocates a new entry and sets Ref0 as 1 because ... neighboring
  // pages in space").
  for (std::size_t j = 0; j < entries_.size(); ++j) {
    auto& other = entries_[j];
    if (!other.valid || static_cast<int>(j) == victim) continue;
    const std::uint64_t distance =
        page > other.page ? page - other.page : other.page - page;
    const bool near = distance <= config_.distance_threshold;
    e.ref[j] = near;
    other.ref[static_cast<std::size_t>(victim)] = near;
  }
  // The neighbor matrix is irreflexive (no entry references itself) and,
  // after the bidirectional wiring above, symmetric.
  PLANARIA_ENSURE_MSG(kTableOccupancy, !e.ref[static_cast<std::size_t>(victim)],
                      "RPT entry must not reference itself");
  // The full O(N^2) sweep is too expensive for every allocation under
  // sanitizers; sample it instead. A corrupted Ref bit persists until one of
  // the involved entries is evicted, so periodic sweeps still catch drift.
  PLANARIA_DASSERT_MSG(
      (stats_.allocations & 255u) != 0 || ref_matrix_consistent(),
      "RPT Ref matrix lost symmetry on allocation");
  ++stats_.allocations;
  return victim;
}

bool Tlp::ref_matrix_consistent() const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].valid && entries_[i].ref[i]) return false;
    for (std::size_t j = 0; j < entries_.size(); ++j) {
      const bool ij = entries_[i].valid && entries_[i].ref[j];
      const bool ji = entries_[j].valid && entries_[j].ref[i];
      if (ij != ji) return false;
      if (ij && (!entries_[i].valid || !entries_[j].valid)) return false;
    }
  }
  return true;
}

void Tlp::maybe_inject_fault() {
  if (fault_ == nullptr || !fault_->roll(fault::FaultClass::kTlpPatternFlip)) {
    return;
  }
  // Flip one recent-access bitmap bit in a random resident RPT entry (wrap
  // scan from a random start). Only the bitmap is touched: a flipped bit
  // perturbs similarity scoring and the transferred pattern, which is the
  // failure mode of interest, while the Ref matrix stays consistent.
  Rng& rng = fault_->rng(fault::FaultClass::kTlpPatternFlip);
  const std::size_t n = entries_.size();
  const std::size_t start = static_cast<std::size_t>(rng.next_below(n));
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = (start + k) % n;
    if (!entries_[i].valid) continue;
    entries_[i].bitmap.flip(static_cast<int>(rng.next_below(kBlocksPerSegment)));
    fault_->record(fault::FaultClass::kTlpPatternFlip);
    return;
  }
}

void Tlp::learn(const prefetch::DemandEvent& event) {
  maybe_inject_fault();
  PLANARIA_REQUIRE_MSG(kTableOccupancy,
                       event.block_in_segment >= 0 &&
                           event.block_in_segment < kBlocksPerSegment,
                       "segment block offset outside the 16-block bitmap");
  int slot = find_slot(event.page);
  if (slot < 0) slot = allocate(event.page);
  PLANARIA_INVARIANT(kTableOccupancy,
                     slot >= 0 && slot < config_.rpt_entries);
  auto& e = entries_[static_cast<std::size_t>(slot)];
  e.bitmap.set(event.block_in_segment);
  e.last_use = ++tick_;
}

bool Tlp::issue(const prefetch::DemandEvent& event,
                std::vector<prefetch::PrefetchRequest>& out) {
  ++stats_.issue_triggers;
  const int slot = find_slot(event.page);
  // learn() runs before issue() in the coordinator, so the page is resident;
  // guard anyway for standalone use.
  if (slot < 0) return false;
  const auto& self = entries_[static_cast<std::size_t>(slot)];

  // Most similar referenced neighbor above the similarity floor wins
  // (Figure 6: page B with 6 common blocks beats page C with 3).
  const RptEntry* best = nullptr;
  int best_common = config_.min_common_bits - 1;
  for (std::size_t j = 0; j < entries_.size(); ++j) {
    if (!self.ref[j]) continue;
    const auto& cand = entries_[j];
    if (!cand.valid) continue;
    const int common = self.bitmap.common_with(cand.bitmap);
    if (common > best_common) {
      best_common = common;
      best = &cand;
    }
  }
  if (best == nullptr) return false;
  // The transfer source must clear the similarity floor — that is the whole
  // qualification rule the loop above implements.
  PLANARIA_INVARIANT_MSG(kCoordinatorExclusivity,
                         best_common >= config_.min_common_bits,
                         "TLP transferred from a below-threshold neighbor");

  const SegmentBitmap to_fetch = best->bitmap.minus(self.bitmap);
  if (to_fetch.empty()) return false;
  ++stats_.transfers;
  to_fetch.for_each_set([&](int block) {
    out.push_back(prefetch::PrefetchRequest{
        event.page * kBlocksPerSegment + static_cast<std::uint64_t>(block),
        cache::FillSource::kPrefetchTlp});
    ++stats_.prefetches_issued;
  });
  return true;
}

const SegmentBitmap* Tlp::bitmap_of(PageNumber page) const {
  const int slot = find_slot(page);
  return slot < 0 ? nullptr : &entries_[static_cast<std::size_t>(slot)].bitmap;
}

std::uint64_t Tlp::storage_bits() const {
  // Per entry: tag + bitmap + (N-1) Ref bits + LRU (core/storage_layout.hpp).
  const auto n = static_cast<std::uint64_t>(config_.rpt_entries);
  return n * layout::rpt_entry_bits(n);
}

void Tlp::save_state(snapshot::Writer& w) const {
  w.tag(snapshot::tag4("TLP0"));
  w.u64(static_cast<std::uint64_t>(entries_.size()));
  for (const RptEntry& e : entries_) {
    w.b(e.valid);
    if (!e.valid) continue;  // invalid slots are all-default by construction
    w.u64(e.page);
    w.u16(static_cast<std::uint16_t>(e.bitmap.raw()));
    w.u64(e.last_use);
    // Ref row, packed 8 slots per byte (slot j -> byte j/8 bit j%8).
    std::uint8_t byte = 0;
    for (std::size_t j = 0; j < e.ref.size(); ++j) {
      if (e.ref[j]) byte |= static_cast<std::uint8_t>(1u << (j % 8));
      if (j % 8 == 7 || j + 1 == e.ref.size()) {
        w.u8(byte);
        byte = 0;
      }
    }
  }
  w.u64(tick_);
  w.u64(stats_.allocations);
  w.u64(stats_.issue_triggers);
  w.u64(stats_.transfers);
  w.u64(stats_.prefetches_issued);
}

void Tlp::load_state(snapshot::Reader& r) {
  r.expect_tag(snapshot::tag4("TLP0"));
  if (r.u64() != entries_.size()) {
    throw snapshot::SnapshotError("RPT entry count mismatch");
  }
  for (RptEntry& e : entries_) {
    e = RptEntry{};
    e.ref.assign(entries_.size(), false);
    e.valid = r.b();
    if (!e.valid) continue;
    e.page = r.u64();
    e.bitmap = SegmentBitmap(r.u16());
    e.last_use = r.u64();
    for (std::size_t j = 0; j < e.ref.size(); j += 8) {
      const std::uint8_t byte = r.u8();
      for (std::size_t k = 0; k < 8 && j + k < e.ref.size(); ++k) {
        e.ref[j + k] = ((byte >> k) & 1u) != 0;
      }
    }
  }
  tick_ = r.u64();
  stats_.allocations = r.u64();
  stats_.issue_triggers = r.u64();
  stats_.transfers = r.u64();
  stats_.prefetches_issued = r.u64();
  PLANARIA_DASSERT_MSG(ref_matrix_consistent(),
                       "restored RPT Ref matrix lost symmetry");
}

}  // namespace planaria::core
