#include "core/tlp.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "check/contract.hpp"
#include "common/assert.hpp"
#include "core/storage_layout.hpp"
#include "fault/fault.hpp"

namespace planaria::core {

void TlpConfig::validate() const {
  if (rpt_entries <= 0) {
    throw std::invalid_argument("tlp config: rpt_entries must be positive");
  }
  if (distance_threshold == 0) {
    throw std::invalid_argument("tlp config: distance threshold must be positive");
  }
  if (min_common_bits < 1 || min_common_bits > 16) {
    throw std::invalid_argument("tlp config: min_common_bits must be 1..16");
  }
}

Tlp::Tlp(const TlpConfig& config)
    : config_(config),
      pages_(static_cast<std::size_t>(config.rpt_entries), 0),
      bitmaps_(static_cast<std::size_t>(config.rpt_entries)),
      last_use_(static_cast<std::size_t>(config.rpt_entries), 0),
      valid_(static_cast<std::size_t>(config.rpt_entries), 0),
      page_index_(static_cast<std::size_t>(config.rpt_entries)) {
  config_.validate();
  ref_words_ = (static_cast<std::size_t>(config_.rpt_entries) + 63) / 64;
  ref_.assign(slot_count() * ref_words_, 0);
}

int Tlp::find_slot(PageNumber page) const {
  const std::uint32_t s = page_index_.find(page);
  return s == TagIndex::npos ? -1 : static_cast<int>(s);
}

int Tlp::allocate(PageNumber page) {
  // LRU victim (or first invalid slot). Same selection as the historical
  // single loop over an entry struct array: first invalid index if any,
  // otherwise the lowest index holding the minimum LRU stamp. The two flat
  // column scans below are what the SoA layout buys — each reads one small
  // contiguous array instead of striding through 32-byte entry structs.
  const std::size_t n = slot_count();
  int victim = -1;
  for (std::size_t i = 0; i < n; ++i) {
    if (valid_[i] == 0) {
      victim = static_cast<int>(i);
      break;
    }
  }
  if (victim < 0) {
    victim = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (last_use_[i] < last_use_[static_cast<std::size_t>(victim)]) {
        victim = static_cast<int>(i);
      }
    }
  }
  const auto v = static_cast<std::size_t>(victim);
  if (valid_[v] != 0) page_index_.erase(pages_[v]);
  pages_[v] = page;
  bitmaps_[v].reset();
  valid_[v] = 1;
  const std::size_t vrow = v * ref_words_;
  std::fill(ref_.begin() + static_cast<std::ptrdiff_t>(vrow),
            ref_.begin() + static_cast<std::ptrdiff_t>(vrow + ref_words_), 0);
  page_index_.insert(page, static_cast<std::uint32_t>(victim));
  // Wire Ref bits against every resident page (the paper's allocation step:
  // "TLP allocates a new entry and sets Ref0 as 1 because ... neighboring
  // pages in space"). ref_put overwrites, so this single pass both retires
  // the old occupant's column and installs the new page's: every valid row's
  // victim bit is rewritten from the new distance, invalid rows are all-zero
  // by construction.
  // The victim's row was zeroed above, so its side is set-only; the column
  // side must overwrite (set or clear) every valid row's victim bit.
  std::uint64_t* vrow_words = ref_.data() + vrow;
  const std::size_t vword = v / 64;
  const std::uint64_t vbit = 1ull << (v % 64);
  const std::uint64_t threshold = config_.distance_threshold;
  for (std::size_t j = 0; j < n; ++j) {
    if (valid_[j] == 0 || j == v) continue;
    const std::uint64_t distance =
        page > pages_[j] ? page - pages_[j] : pages_[j] - page;
    const bool near = distance <= threshold;
    if (near) vrow_words[j / 64] |= 1ull << (j % 64);
    std::uint64_t& col = ref_[j * ref_words_ + vword];
    col = near ? (col | vbit) : (col & ~vbit);
  }
  // The neighbor matrix is irreflexive (no entry references itself) and,
  // after the bidirectional wiring above, symmetric.
  PLANARIA_ENSURE_MSG(kTableOccupancy,
                      !ref_get(static_cast<std::size_t>(victim),
                               static_cast<std::size_t>(victim)),
                      "RPT entry must not reference itself");
  // The full O(N^2) sweep is too expensive for every allocation under
  // sanitizers; sample it instead. A corrupted Ref bit persists until one of
  // the involved entries is evicted, so periodic sweeps still catch drift.
  PLANARIA_DASSERT_MSG(
      (stats_.allocations & 255u) != 0 || ref_matrix_consistent(),
      "RPT Ref matrix lost symmetry on allocation");
  ++stats_.allocations;
  return victim;
}

bool Tlp::ref_matrix_consistent() const {
  for (std::size_t i = 0; i < slot_count(); ++i) {
    if (valid_[i] != 0 && ref_get(i, i)) return false;
    for (std::size_t j = 0; j < slot_count(); ++j) {
      const bool ij = valid_[i] != 0 && ref_get(i, j);
      const bool ji = valid_[j] != 0 && ref_get(j, i);
      if (ij != ji) return false;
      if (ij && (valid_[i] == 0 || valid_[j] == 0)) return false;
    }
  }
  return true;
}

void Tlp::maybe_inject_fault() {
  if (fault_ == nullptr || !fault_->roll(fault::FaultClass::kTlpPatternFlip)) {
    return;
  }
  // Flip one recent-access bitmap bit in a random resident RPT entry (wrap
  // scan from a random start). Only the bitmap is touched: a flipped bit
  // perturbs similarity scoring and the transferred pattern, which is the
  // failure mode of interest, while the Ref matrix stays consistent.
  Rng& rng = fault_->rng(fault::FaultClass::kTlpPatternFlip);
  const std::size_t n = slot_count();
  const std::size_t start = static_cast<std::size_t>(rng.next_below(n));
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = (start + k) % n;
    if (valid_[i] == 0) continue;
    bitmaps_[i].flip(static_cast<int>(rng.next_below(kBlocksPerSegment)));
    fault_->record(fault::FaultClass::kTlpPatternFlip);
    return;
  }
}

void Tlp::learn(const prefetch::DemandEvent& event) {
  maybe_inject_fault();
  PLANARIA_REQUIRE_MSG(kTableOccupancy,
                       event.block_in_segment >= 0 &&
                           event.block_in_segment < kBlocksPerSegment,
                       "segment block offset outside the 16-block bitmap");
  int slot = find_slot(event.page);
  if (slot < 0) slot = allocate(event.page);
  PLANARIA_INVARIANT(kTableOccupancy,
                     slot >= 0 && slot < config_.rpt_entries);
  bitmaps_[static_cast<std::size_t>(slot)].set(event.block_in_segment);
  last_use_[static_cast<std::size_t>(slot)] = ++tick_;
}

bool Tlp::issue(const prefetch::DemandEvent& event,
                std::vector<prefetch::PrefetchRequest>& out) {
  ++stats_.issue_triggers;
  const int slot = find_slot(event.page);
  // learn() runs before issue() in the coordinator, so the page is resident;
  // guard anyway for standalone use.
  if (slot < 0) return false;
  const SegmentBitmap self = bitmaps_[static_cast<std::size_t>(slot)];

  // Most similar referenced neighbor above the similarity floor wins
  // (Figure 6: page B with 6 common blocks beats page C with 3). Walking the
  // set bits of the packed Ref row visits slots in the same ascending order
  // the column scan did, so ties still resolve to the lowest slot.
  int best = -1;
  int best_common = config_.min_common_bits - 1;
  const std::uint64_t* row =
      ref_.data() + static_cast<std::size_t>(slot) * ref_words_;
  for (std::size_t w = 0; w < ref_words_; ++w) {
    std::uint64_t bits = row[w];
    while (bits != 0) {
      const std::size_t j = w * 64 + static_cast<std::size_t>(
                                         std::countr_zero(bits));
      bits &= bits - 1;
      if (valid_[j] == 0) continue;
      const int common = self.common_with(bitmaps_[j]);
      if (common > best_common) {
        best_common = common;
        best = static_cast<int>(j);
      }
    }
  }
  if (best < 0) return false;
  // The transfer source must clear the similarity floor — that is the whole
  // qualification rule the loop above implements.
  PLANARIA_INVARIANT_MSG(kCoordinatorExclusivity,
                         best_common >= config_.min_common_bits,
                         "TLP transferred from a below-threshold neighbor");

  const SegmentBitmap to_fetch =
      bitmaps_[static_cast<std::size_t>(best)].minus(self);
  if (to_fetch.empty()) return false;
  ++stats_.transfers;
  to_fetch.for_each_set([&](int block) {
    out.push_back(prefetch::PrefetchRequest{
        event.page * kBlocksPerSegment + static_cast<std::uint64_t>(block),
        cache::FillSource::kPrefetchTlp});
    ++stats_.prefetches_issued;
  });
  return true;
}

const SegmentBitmap* Tlp::bitmap_of(PageNumber page) const {
  const int slot = find_slot(page);
  return slot < 0 ? nullptr : &bitmaps_[static_cast<std::size_t>(slot)];
}

std::uint64_t Tlp::storage_bits() const {
  // Per entry: tag + bitmap + (N-1) Ref bits + LRU (core/storage_layout.hpp).
  const auto n = static_cast<std::uint64_t>(config_.rpt_entries);
  return n * layout::rpt_entry_bits(n);
}

void Tlp::save_state(snapshot::Writer& w) const {
  w.tag(snapshot::tag4("TLP0"));
  w.u64(static_cast<std::uint64_t>(slot_count()));
  const std::size_t row_bytes = (slot_count() + 7) / 8;
  for (std::size_t i = 0; i < slot_count(); ++i) {
    w.b(valid_[i] != 0);
    if (valid_[i] == 0) continue;  // invalid slots are all-default
    w.u64(pages_[i]);
    w.u16(static_cast<std::uint16_t>(bitmaps_[i].raw()));
    w.u64(last_use_[i]);
    // Ref row, packed 8 slots per byte (slot j -> byte j/8 bit j%8): exactly
    // the little-endian bytes of the 64-bit words, truncated to ceil(N/8).
    const std::uint64_t* row = ref_.data() + i * ref_words_;
    for (std::size_t b = 0; b < row_bytes; ++b) {
      w.u8(static_cast<std::uint8_t>(row[b / 8] >> (8 * (b % 8))));
    }
  }
  w.u64(tick_);
  w.u64(stats_.allocations);
  w.u64(stats_.issue_triggers);
  w.u64(stats_.transfers);
  w.u64(stats_.prefetches_issued);
}

void Tlp::load_state(snapshot::Reader& r) {
  r.expect_tag(snapshot::tag4("TLP0"));
  if (r.u64() != slot_count()) {
    throw snapshot::SnapshotError("RPT entry count mismatch");
  }
  const std::size_t row_bytes = (slot_count() + 7) / 8;
  std::fill(ref_.begin(), ref_.end(), 0);
  for (std::size_t i = 0; i < slot_count(); ++i) {
    pages_[i] = 0;
    bitmaps_[i].reset();
    last_use_[i] = 0;
    valid_[i] = r.b() ? 1 : 0;
    if (valid_[i] == 0) continue;
    pages_[i] = r.u64();
    bitmaps_[i] = SegmentBitmap(r.u16());
    last_use_[i] = r.u64();
    std::uint64_t* row = ref_.data() + i * ref_words_;
    for (std::size_t b = 0; b < row_bytes; ++b) {
      row[b / 8] |= static_cast<std::uint64_t>(r.u8()) << (8 * (b % 8));
    }
    // Stray bits past the last slot (possible only in a crafted snapshot)
    // must not survive: issue() walks set bits and would index out of range.
    if (slot_count() % 64 != 0) {
      row[ref_words_ - 1] &= (1ull << (slot_count() % 64)) - 1;
    }
  }
  tick_ = r.u64();
  page_index_.clear();
  for (std::size_t i = 0; i < slot_count(); ++i) {
    if (valid_[i] != 0 && page_index_.find(pages_[i]) == TagIndex::npos) {
      page_index_.insert(pages_[i], static_cast<std::uint32_t>(i));
    }
  }
  stats_.allocations = r.u64();
  stats_.issue_triggers = r.u64();
  stats_.transfers = r.u64();
  stats_.prefetches_issued = r.u64();
  PLANARIA_DASSERT_MSG(ref_matrix_consistent(),
                       "restored RPT Ref matrix lost symmetry");
}

}  // namespace planaria::core
