// Alternative coordination strategies from the paper's related-work analysis
// (Section 7), implemented over the same SLP/TLP sub-prefetchers so the
// coordinator itself can be ablated:
//
//   * Serial (TPC-style): one sub-prefetcher is *active* at a time — it both
//     learns and issues; the other is idle. Hardwired decision logic switches
//     to TLP after SLP fails to issue on `switch_after` consecutive triggers,
//     and back on the first SLP-pattern hit. The cost the paper calls out:
//     the inactive sub-prefetcher misses training data, so after a switch it
//     starts cold.
//   * Parallel (ISB+stream-style): both sub-prefetchers learn AND issue on
//     every trigger. Coverage is maximal but the duplicated/blanket issuing
//     costs accuracy and traffic.
//   * Planaria's decoupled coordinator ("parallel training, serial issuing")
//     lives in planaria.hpp and is the reference point.
#pragma once

#include <cstdint>

#include "core/slp.hpp"
#include "core/tlp.hpp"
#include "prefetch/prefetcher.hpp"

namespace planaria::core {

struct SerialCoordinatorConfig {
  SlpConfig slp;
  TlpConfig tlp;
  int switch_after = 32;  ///< consecutive SLP issue failures before switching

  void validate() const;
};

/// TPC-style serial coordinator: gates learning and issuing together.
class SerialComposite final : public prefetch::Prefetcher {
 public:
  explicit SerialComposite(const SerialCoordinatorConfig& config = {});

  void on_demand(const prefetch::DemandEvent& event,
                 std::vector<prefetch::PrefetchRequest>& out) override;
  const char* name() const override { return "serial-composite"; }
  std::uint64_t storage_bits() const override;

  void set_fault_injector(fault::FaultInjector* injector) override {
    slp_.set_fault_injector(injector);
    tlp_.set_fault_injector(injector);
  }

  bool slp_active() const { return slp_active_; }
  std::uint64_t switches() const { return switches_; }

  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;

 private:
  SerialCoordinatorConfig config_;
  Slp slp_;
  Tlp tlp_;
  bool slp_active_ = true;
  int slp_failures_ = 0;
  std::uint64_t switches_ = 0;
};

struct ParallelCoordinatorConfig {
  SlpConfig slp;
  TlpConfig tlp;

  void validate() const {
    slp.validate();
    tlp.validate();
  }
};

/// Parallel coordinator: both sub-prefetchers learn and issue on every
/// trigger.
class ParallelComposite final : public prefetch::Prefetcher {
 public:
  explicit ParallelComposite(const ParallelCoordinatorConfig& config = {});

  void on_demand(const prefetch::DemandEvent& event,
                 std::vector<prefetch::PrefetchRequest>& out) override;
  const char* name() const override { return "parallel-composite"; }
  std::uint64_t storage_bits() const override;

  void set_fault_injector(fault::FaultInjector* injector) override {
    slp_.set_fault_injector(injector);
    tlp_.set_fault_injector(injector);
  }

  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;

 private:
  ParallelCoordinatorConfig config_;
  Slp slp_;
  Tlp tlp_;
};

}  // namespace planaria::core
