// Lightweight statistics collection.
//
// Every simulated component owns named counters/histograms registered in a
// StatSet; the sim layer snapshots these to build the per-figure tables. The
// design intentionally mirrors DRAMSim2/gem5-style stat dumps: flat name ->
// value, cheap to update on hot paths (a counter bump is one add).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace planaria {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Streaming mean/min/max accumulator for per-request quantities (latency).
class Accumulator {
 public:
  void add(double x) {
    sum_ += x;
    if (count_ == 0 || x < min_) min_ = x;
    if (count_ == 0 || x > max_) max_ = x;
    ++count_;
  }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  void reset() { *this = Accumulator{}; }

 private:
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t count_ = 0;
};

/// Fixed-bucket histogram over [0, bucket_width * buckets); the last bucket
/// absorbs overflow. Used for latency and reuse-distance distributions.
class Histogram {
 public:
  Histogram(double bucket_width, std::size_t buckets)
      : width_(bucket_width), counts_(buckets, 0) {
    PLANARIA_ASSERT(bucket_width > 0.0 && buckets > 0);
  }

  void add(double x) {
    std::size_t i = x <= 0.0 ? 0 : static_cast<std::size_t>(x / width_);
    if (i >= counts_.size()) i = counts_.size() - 1;
    ++counts_[i];
    ++total_;
  }

  std::uint64_t total() const { return total_; }
  std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  std::size_t buckets() const { return counts_.size(); }
  double bucket_width() const { return width_; }

  /// Value below which `q` (0..1) of the samples fall (bucket upper edge).
  double quantile(double q) const;

 private:
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Named snapshot of all stats owned by a component, used by benches and
/// tests. Values are doubles for uniformity; counters convert losslessly for
/// the magnitudes this simulator reaches.
using StatSnapshot = std::map<std::string, double>;

/// Registry mapping names to stat objects. Components create their stats
/// through the set so that dump() sees everything.
class StatSet {
 public:
  Counter& counter(const std::string& name);
  Accumulator& accumulator(const std::string& name);

  /// Flat name->value view: counters as their value, accumulators expanded
  /// into .count/.sum/.mean entries.
  StatSnapshot dump() const;

  void reset();

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Accumulator> accumulators_;
};

}  // namespace planaria
