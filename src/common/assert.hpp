// Checked assertion macro used throughout the library.
//
// Unlike <cassert>, PLANARIA_ASSERT stays enabled in release builds: the
// simulator's correctness depends on structural invariants (table occupancy,
// timing monotonicity) whose violation would silently corrupt results. The
// predicates used on hot paths are cheap (integer compares), so the cost is
// negligible relative to the simulation work per event.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace planaria::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "planaria: assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace planaria::detail

#define PLANARIA_ASSERT(expr)                                                  \
  ((expr) ? static_cast<void>(0)                                               \
          : ::planaria::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr))

#define PLANARIA_ASSERT_MSG(expr, msg)                                         \
  ((expr) ? static_cast<void>(0)                                               \
          : ::planaria::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)))
