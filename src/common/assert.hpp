// Checked assertion macro used throughout the library.
//
// Unlike <cassert>, PLANARIA_ASSERT stays enabled in release builds: the
// simulator's correctness depends on structural invariants (table occupancy,
// timing monotonicity) whose violation would silently corrupt results. The
// predicates used on hot paths are cheap (integer compares), so the cost is
// negligible relative to the simulation work per event.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace planaria::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "planaria: assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg != nullptr ? msg : "");
  std::abort();
}

[[noreturn]] inline void unreachable_fail(const char* file, int line) {
  std::fprintf(stderr, "planaria: reached unreachable code\n  at %s:%d\n", file,
               line);
  std::abort();
}

}  // namespace planaria::detail

#define PLANARIA_ASSERT(expr)                                                  \
  ((expr) ? static_cast<void>(0)                                               \
          : ::planaria::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr))

#define PLANARIA_ASSERT_MSG(expr, msg)                                         \
  ((expr) ? static_cast<void>(0)                                               \
          : ::planaria::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)))

// Marks switch fall-throughs and states the surrounding logic has already
// excluded. Unlike __builtin_unreachable(), reaching it is defined behaviour:
// it prints the location and aborts, in every build type.
#define PLANARIA_UNREACHABLE() \
  ::planaria::detail::unreachable_fail(__FILE__, __LINE__)

// Debug-only assertion for hot-path checks too expensive for release builds
// (full-table scans, O(n^2) symmetry sweeps). Enabled in Debug builds and in
// any build compiled with PLANARIA_DEBUG_CHECKS (the sanitizer configurations
// define it); elsewhere the predicate is not evaluated but stays
// semantically checked via sizeof, so variables it names never read as
// unused.
#if !defined(NDEBUG) || defined(PLANARIA_DEBUG_CHECKS)
#define PLANARIA_DASSERT(expr) PLANARIA_ASSERT(expr)
#define PLANARIA_DASSERT_MSG(expr, msg) PLANARIA_ASSERT_MSG(expr, (msg))
#else
#define PLANARIA_DASSERT(expr) static_cast<void>(sizeof(!(expr)))
#define PLANARIA_DASSERT_MSG(expr, msg) static_cast<void>(sizeof(!(expr)))
#endif
