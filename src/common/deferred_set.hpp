// Sorted-vector membership set with deferred merges.
//
// Replaces std::unordered_set on hot membership paths (the SC pollution
// filter probes on every demand miss and inserts on every
// prefetch-displaces-demand eviction): a node-based hash set pays an
// allocation per insert and two dependent cache misses per probe. Here the
// bulk of the membership lives in one sorted vector (binary-searchable,
// allocation-free at steady state) and mutations land in two small pending
// buffers — `pending_` (recent inserts) and `dead_` (recent erases) — that
// fold into the sorted spine only when they fill up, amortizing the merge.
//
// Semantics match std::unordered_set<uint64_t>: inserting a present value
// and erasing an absent one are no-ops. Invariants: pending_ is disjoint
// from sorted_, dead_ is a subset of sorted_, pending_ and dead_ are
// disjoint.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace planaria {

class DeferredSortedSet {
 public:
  bool contains(std::uint64_t v) const {
    if (in_small(pending_, v)) return true;
    return std::binary_search(sorted_.begin(), sorted_.end(), v) &&
           !in_small(dead_, v);
  }

  void insert(std::uint64_t v) {
    if (in_small(pending_, v)) return;
    if (std::binary_search(sorted_.begin(), sorted_.end(), v)) {
      // Present in the spine: live unless pending-dead, in which case the
      // insert resurrects it.
      auto it = std::find(dead_.begin(), dead_.end(), v);
      if (it != dead_.end()) dead_.erase(it);
      return;
    }
    pending_.push_back(v);
    maybe_flush();
  }

  void erase(std::uint64_t v) {
    auto it = std::find(pending_.begin(), pending_.end(), v);
    if (it != pending_.end()) {
      pending_.erase(it);
      return;
    }
    if (std::binary_search(sorted_.begin(), sorted_.end(), v) &&
        !in_small(dead_, v)) {
      dead_.push_back(v);
      maybe_flush();
    }
  }

  std::size_t size() const {
    return sorted_.size() + pending_.size() - dead_.size();
  }

  void clear() {
    sorted_.clear();
    pending_.clear();
    dead_.clear();
  }

  /// Members in ascending order (canonical, for serialization). Const — the
  /// merge happens into `out`, not into the spine.
  void sorted_members(std::vector<std::uint64_t>& out) const {
    out.clear();
    out.reserve(size());
    std::vector<std::uint64_t> dead = dead_;
    std::sort(dead.begin(), dead.end());
    std::set_difference(sorted_.begin(), sorted_.end(), dead.begin(),
                        dead.end(), std::back_inserter(out));
    out.insert(out.end(), pending_.begin(), pending_.end());
    std::sort(out.begin(), out.end());
  }

  /// Bulk restore from a member list (deserialization). Input need not be
  /// sorted or unique; the set normalizes it.
  void assign(std::vector<std::uint64_t> members) {
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
    sorted_ = std::move(members);
    pending_.clear();
    dead_.clear();
  }

 private:
  static constexpr std::size_t kFlushThreshold = 64;

  static bool in_small(const std::vector<std::uint64_t>& v, std::uint64_t x) {
    return std::find(v.begin(), v.end(), x) != v.end();
  }

  void maybe_flush() {
    if (pending_.size() + dead_.size() < kFlushThreshold) return;
    std::sort(pending_.begin(), pending_.end());
    std::sort(dead_.begin(), dead_.end());
    scratch_.clear();
    scratch_.reserve(sorted_.size() + pending_.size());
    std::set_difference(sorted_.begin(), sorted_.end(), dead_.begin(),
                        dead_.end(), std::back_inserter(scratch_));
    const std::size_t mid = scratch_.size();
    scratch_.insert(scratch_.end(), pending_.begin(), pending_.end());
    std::inplace_merge(scratch_.begin(),
                       scratch_.begin() + static_cast<std::ptrdiff_t>(mid),
                       scratch_.end());
    sorted_.swap(scratch_);
    pending_.clear();
    dead_.clear();
  }

  std::vector<std::uint64_t> sorted_;
  std::vector<std::uint64_t> pending_;
  std::vector<std::uint64_t> dead_;
  std::vector<std::uint64_t> scratch_;  ///< flush merge buffer, capacity reused
};

}  // namespace planaria
