// Generic fixed-capacity, fully-associative, LRU-evicting lookup table.
//
// All of Planaria's metadata structures (Filter Table, Accumulation Table,
// Pattern History Table, Recent Page Table) and SPP's signature/pattern
// tables are hardware tables of this shape: a small number of entries,
// content-addressed by a key (page number or signature), replaced LRU. The
// template centralizes the bookkeeping so each prefetcher only describes its
// payload, and gives tests one well-covered implementation to rely on.
//
// Hardware probes every entry (a CAM), but the simulation does not have to:
// an open-addressing TagIndex shadows the valid entries, making find / peek /
// erase / hit-insert O(1). Recency is generation-stamped (a monotonic tick
// per touch, no list reordering), so a hit writes one word. The slot array,
// the eviction rule (first invalid slot in slot order, else minimum
// last_use), and the save_state byte layout are unchanged from the linear
// implementation — tests/test_perf_structures.cpp pins the two against each
// other over randomized op sequences.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "common/tag_index.hpp"

namespace planaria {

template <typename Key, typename Payload>
class LruTable {
 public:
  struct Entry {
    Key key{};
    Payload payload{};
    std::uint64_t last_use = 0;  ///< LRU timestamp (monotonic probe counter)
    bool valid = false;
  };

  explicit LruTable(std::size_t capacity)
      : entries_(capacity), index_(capacity) {
    PLANARIA_ASSERT(capacity > 0);
    reset_free();
  }

  std::size_t capacity() const { return entries_.size(); }

  /// Live entry count, maintained incrementally (a rescan here is O(capacity)
  /// per call; occupancy contracts probe this on hot paths). Debug builds
  /// cross-check the counter against a full scan.
  std::size_t size() const {
    PLANARIA_DASSERT(live_ == scanned_size());
    return live_;
  }

  /// Looks up `key`; refreshes LRU on hit. Returns nullptr on miss.
  Payload* find(const Key& key) {
    const std::uint32_t s = index_.find(static_cast<std::uint64_t>(key));
    if (s == TagIndex::npos) return nullptr;
    Entry& e = entries_[s];
    e.last_use = ++tick_;
    return &e.payload;
  }

  /// Lookup without touching LRU state (for inspection in tests/analysis).
  const Payload* peek(const Key& key) const {
    const std::uint32_t s = index_.find(static_cast<std::uint64_t>(key));
    return s == TagIndex::npos ? nullptr : &entries_[s].payload;
  }

  /// Inserts (or overwrites) key -> payload. If the table is full, evicts the
  /// LRU entry and returns it so the caller can run its eviction hook (SLP
  /// promotes evicted Accumulation Table bitmaps into the Pattern History
  /// Table this way).
  std::optional<Entry> insert(const Key& key, Payload payload) {
    const std::uint32_t hit = index_.find(static_cast<std::uint64_t>(key));
    if (hit != TagIndex::npos) {
      Entry& e = entries_[hit];
      e.payload = std::move(payload);
      e.last_use = ++tick_;
      return std::nullopt;
    }
    std::optional<Entry> evicted;
    std::size_t slot;
    if (live_ < entries_.size()) {
      // Lowest-indexed free slot: identical victim to the linear scan's
      // "first invalid entry in slot order".
      std::pop_heap(free_.begin(), free_.end(), std::greater<>{});
      slot = free_.back();
      free_.pop_back();
      ++live_;
    } else {
      slot = 0;
      for (std::size_t i = 1; i < entries_.size(); ++i) {
        if (entries_[i].last_use < entries_[slot].last_use) slot = i;
      }
      Entry& v = entries_[slot];
      index_.erase(static_cast<std::uint64_t>(v.key));
      evicted = std::move(v);
    }
    Entry& e = entries_[slot];
    e.key = key;
    e.payload = std::move(payload);
    e.last_use = ++tick_;
    e.valid = true;
    index_.insert(static_cast<std::uint64_t>(key),
                  static_cast<std::uint32_t>(slot));
    return evicted;
  }

  /// Removes `key`; returns its payload if present.
  std::optional<Payload> erase(const Key& key) {
    const std::uint32_t s = index_.find(static_cast<std::uint64_t>(key));
    if (s == TagIndex::npos) return std::nullopt;
    Entry& e = entries_[s];
    e.valid = false;
    --live_;
    index_.erase(static_cast<std::uint64_t>(key));
    free_.push_back(s);
    std::push_heap(free_.begin(), free_.end(), std::greater<>{});
    return std::move(e.payload);
  }

  void clear() {
    for (auto& e : entries_) e.valid = false;
    tick_ = 0;
    live_ = 0;
    index_.clear();
    reset_free();
  }

  /// Calls fn(key, payload&) for every valid entry. Iteration order is slot
  /// order, not recency order.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (auto& e : entries_) {
      if (e.valid) fn(e.key, e.payload);
    }
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& e : entries_) {
      if (e.valid) fn(e.key, e.payload);
    }
  }

  /// Removes every entry for which pred(key, payload) is true and calls
  /// on_evict(key, payload&&) for each. Used for timeout-based eviction.
  template <typename Pred, typename OnEvict>
  void evict_if(Pred&& pred, OnEvict&& on_evict) {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      Entry& e = entries_[i];
      if (e.valid && pred(e.key, e.payload)) {
        e.valid = false;
        --live_;
        index_.erase(static_cast<std::uint64_t>(e.key));
        free_.push_back(static_cast<std::uint32_t>(i));
        std::push_heap(free_.begin(), free_.end(), std::greater<>{});
        on_evict(e.key, std::move(e.payload));
      }
    }
  }

  /// Checkpoint: valid slots in ascending slot order with exact LRU
  /// timestamps, mirroring SetAssocTable::save_state (same canonical,
  /// byte-stable layout guarantees). Templated on the writer type so the
  /// common layer never depends on the snapshot module (the layering DAG in
  /// tools/lint/layers.conf forbids that edge); any encoder with the
  /// snapshot::Writer integer interface works.
  template <typename Writer, typename SavePayload>
  void save_state(Writer& w, SavePayload&& sp) const {
    w.u64(tick_);
    w.u64(static_cast<std::uint64_t>(live_));
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      if (!e.valid) continue;
      w.u64(static_cast<std::uint64_t>(i));
      w.u64(static_cast<std::uint64_t>(e.key));
      w.u64(e.last_use);
      sp(w, e.payload);
    }
  }

  /// Restore counterpart; malformed input is rejected through
  /// `r.fail(message)`, which must not return (snapshot::Reader throws
  /// SnapshotError).
  template <typename Reader, typename LoadPayload>
  void load_state(Reader& r, LoadPayload&& lp) {
    clear();
    tick_ = r.u64();
    const std::uint64_t count = r.u64();
    if (count > entries_.size()) {
      r.fail("lru table live count exceeds capacity");
    }
    std::uint64_t prev = 0;
    for (std::uint64_t n = 0; n < count; ++n) {
      const std::uint64_t i = r.u64();
      if (i >= entries_.size() || (n > 0 && i <= prev)) {
        r.fail("lru table slot index out of order");
      }
      prev = i;
      Entry& e = entries_[i];
      e.key = static_cast<Key>(r.u64());
      e.last_use = r.u64();
      e.payload = lp(r);
      e.valid = true;
    }
    live_ = static_cast<std::size_t>(count);
    rebuild_index();
  }

 private:
  std::size_t scanned_size() const {
    std::size_t n = 0;
    for (const auto& e : entries_) n += e.valid ? 1 : 0;
    return n;
  }

  void reset_free() {
    free_.resize(entries_.size());
    for (std::size_t i = 0; i < free_.size(); ++i) {
      free_[i] = static_cast<std::uint32_t>(i);
    }
    // Ascending order is already a valid min-heap.
  }

  void rebuild_index() {
    index_.clear();
    free_.clear();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].valid) {
        index_.insert(static_cast<std::uint64_t>(entries_[i].key),
                      static_cast<std::uint32_t>(i));
      } else {
        free_.push_back(static_cast<std::uint32_t>(i));
      }
    }
  }

  std::vector<Entry> entries_;
  TagIndex index_;
  std::vector<std::uint32_t> free_;  ///< min-heap of invalid slot indices
  std::uint64_t tick_ = 0;
  std::size_t live_ = 0;
};

}  // namespace planaria
