// Generic fixed-capacity, fully-associative, LRU-evicting lookup table.
//
// All of Planaria's metadata structures (Filter Table, Accumulation Table,
// Pattern History Table, Recent Page Table) and SPP's signature/pattern
// tables are hardware tables of this shape: a small number of entries,
// content-addressed by a key (page number or signature), replaced LRU. The
// template centralizes the bookkeeping so each prefetcher only describes its
// payload, and gives tests one well-covered implementation to rely on.
//
// Complexity is O(capacity) per op, which is exact hardware behaviour (a CAM
// probes every entry) and irrelevant at the 64-512 entry sizes used here.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/assert.hpp"

namespace planaria {

template <typename Key, typename Payload>
class LruTable {
 public:
  struct Entry {
    Key key{};
    Payload payload{};
    std::uint64_t last_use = 0;  ///< LRU timestamp (monotonic probe counter)
    bool valid = false;
  };

  explicit LruTable(std::size_t capacity) : entries_(capacity) {
    PLANARIA_ASSERT(capacity > 0);
  }

  std::size_t capacity() const { return entries_.size(); }

  /// Live entry count, maintained incrementally (a rescan here is O(capacity)
  /// per call; occupancy contracts probe this on hot paths). Debug builds
  /// cross-check the counter against a full scan.
  std::size_t size() const {
    PLANARIA_DASSERT(live_ == scanned_size());
    return live_;
  }

  /// Looks up `key`; refreshes LRU on hit. Returns nullptr on miss.
  Payload* find(const Key& key) {
    for (auto& e : entries_) {
      if (e.valid && e.key == key) {
        e.last_use = ++tick_;
        return &e.payload;
      }
    }
    return nullptr;
  }

  /// Lookup without touching LRU state (for inspection in tests/analysis).
  const Payload* peek(const Key& key) const {
    for (const auto& e : entries_) {
      if (e.valid && e.key == key) return &e.payload;
    }
    return nullptr;
  }

  /// Inserts (or overwrites) key -> payload. If the table is full, evicts the
  /// LRU entry and returns it so the caller can run its eviction hook (SLP
  /// promotes evicted Accumulation Table bitmaps into the Pattern History
  /// Table this way).
  std::optional<Entry> insert(const Key& key, Payload payload) {
    Entry* victim = nullptr;
    for (auto& e : entries_) {
      if (e.valid && e.key == key) {
        e.payload = std::move(payload);
        e.last_use = ++tick_;
        return std::nullopt;
      }
      if (!e.valid) {
        if (victim == nullptr || victim->valid) victim = &e;
      } else if (victim == nullptr ||
                 (victim->valid && e.last_use < victim->last_use)) {
        victim = &e;
      }
    }
    PLANARIA_ASSERT(victim != nullptr);
    std::optional<Entry> evicted;
    if (victim->valid) {
      evicted = std::move(*victim);
    } else {
      ++live_;
    }
    victim->key = key;
    victim->payload = std::move(payload);
    victim->last_use = ++tick_;
    victim->valid = true;
    return evicted;
  }

  /// Removes `key`; returns its payload if present.
  std::optional<Payload> erase(const Key& key) {
    for (auto& e : entries_) {
      if (e.valid && e.key == key) {
        e.valid = false;
        --live_;
        return std::move(e.payload);
      }
    }
    return std::nullopt;
  }

  void clear() {
    for (auto& e : entries_) e.valid = false;
    tick_ = 0;
    live_ = 0;
  }

  /// Calls fn(key, payload&) for every valid entry. Iteration order is slot
  /// order, not recency order.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (auto& e : entries_) {
      if (e.valid) fn(e.key, e.payload);
    }
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& e : entries_) {
      if (e.valid) fn(e.key, e.payload);
    }
  }

  /// Removes every entry for which pred(key, payload) is true and calls
  /// on_evict(key, payload&&) for each. Used for timeout-based eviction.
  template <typename Pred, typename OnEvict>
  void evict_if(Pred&& pred, OnEvict&& on_evict) {
    for (auto& e : entries_) {
      if (e.valid && pred(e.key, e.payload)) {
        e.valid = false;
        --live_;
        on_evict(e.key, std::move(e.payload));
      }
    }
  }

  /// Checkpoint: valid slots in ascending slot order with exact LRU
  /// timestamps, mirroring SetAssocTable::save_state (same canonical,
  /// byte-stable layout guarantees). Templated on the writer type so the
  /// common layer never depends on the snapshot module (the layering DAG in
  /// tools/lint/layers.conf forbids that edge); any encoder with the
  /// snapshot::Writer integer interface works.
  template <typename Writer, typename SavePayload>
  void save_state(Writer& w, SavePayload&& sp) const {
    w.u64(tick_);
    w.u64(static_cast<std::uint64_t>(live_));
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      if (!e.valid) continue;
      w.u64(static_cast<std::uint64_t>(i));
      w.u64(static_cast<std::uint64_t>(e.key));
      w.u64(e.last_use);
      sp(w, e.payload);
    }
  }

  /// Restore counterpart; malformed input is rejected through
  /// `r.fail(message)`, which must not return (snapshot::Reader throws
  /// SnapshotError).
  template <typename Reader, typename LoadPayload>
  void load_state(Reader& r, LoadPayload&& lp) {
    clear();
    tick_ = r.u64();
    const std::uint64_t count = r.u64();
    if (count > entries_.size()) {
      r.fail("lru table live count exceeds capacity");
    }
    std::uint64_t prev = 0;
    for (std::uint64_t n = 0; n < count; ++n) {
      const std::uint64_t i = r.u64();
      if (i >= entries_.size() || (n > 0 && i <= prev)) {
        r.fail("lru table slot index out of order");
      }
      prev = i;
      Entry& e = entries_[i];
      e.key = static_cast<Key>(r.u64());
      e.last_use = r.u64();
      e.payload = lp(r);
      e.valid = true;
    }
    live_ = static_cast<std::size_t>(count);
  }

 private:
  std::size_t scanned_size() const {
    std::size_t n = 0;
    for (const auto& e : entries_) n += e.valid ? 1 : 0;
    return n;
  }

  std::vector<Entry> entries_;
  std::uint64_t tick_ = 0;
  std::size_t live_ = 0;
};

}  // namespace planaria
