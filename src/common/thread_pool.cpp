#include "common/thread_pool.hpp"

#include <cstdlib>
#include <stdexcept>

namespace planaria::common {

ThreadPool::ThreadPool(std::size_t threads) : threads_(threads) {
  if (threads == 0) {
    throw std::invalid_argument("thread pool: thread count must be >= 1");
  }
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

void ThreadPool::drain_batch(const std::shared_ptr<ForBatch>& batch) {
  for (;;) {
    const std::size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch->n) return;
    try {
      (*batch->body)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(batch->mutex);
      if (!batch->error) batch->error = std::current_exception();
    }
    if (batch->done.fetch_add(1, std::memory_order_acq_rel) + 1 == batch->n) {
      // Last index out: wake the owner, which may already be waiting.
      std::lock_guard<std::mutex> lock(batch->mutex);
      batch->cv.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  auto batch = std::make_shared<ForBatch>();
  batch->n = n;
  batch->body = &body;  // caller blocks until done == n, so body outlives use

  // One helper per worker lane that could usefully claim an index; late
  // helpers see next >= n and fall through without touching `body`.
  const std::size_t helpers = std::min(workers_.size(), n - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    enqueue([batch] { drain_batch(batch); });
  }

  drain_batch(batch);
  {
    std::unique_lock<std::mutex> lock(batch->mutex);
    batch->cv.wait(lock, [&] {
      return batch->done.load(std::memory_order_acquire) == batch->n;
    });
    if (batch->error) std::rethrow_exception(batch->error);
  }
}

std::size_t ThreadPool::threads_from_env(std::size_t fallback) {
  const char* env = std::getenv("PLANARIA_THREADS");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0' || v == 0 || v > kMaxThreads) {
    throw std::invalid_argument(
        "PLANARIA_THREADS must be a positive integer <= 4096");
  }
  return static_cast<std::size_t>(v);
}

}  // namespace planaria::common
