// Fixed-width block bitmaps.
//
// A bitmap records which blocks of a page (or of a 16-block page segment)
// have been touched. They are the central metadata currency of Planaria:
// SLP's Pattern History Table stores one per page, TLP compares them to find
// learnable neighbors, and the analysis tools (Figs. 2/4/5) are defined
// directly over them.
#pragma once

#include <bit>
#include <cstdint>
#include <string>

#include "common/assert.hpp"

namespace planaria {

/// Bitmap over N blocks (N <= 64). Bit i set <=> block i accessed/predicted.
template <int N>
class BlockBitmap {
  static_assert(N > 0 && N <= 64, "BlockBitmap supports 1..64 blocks");

 public:
  using Word = std::uint64_t;

  constexpr BlockBitmap() = default;
  constexpr explicit BlockBitmap(Word raw) : bits_(raw & mask()) {}

  static constexpr int size() { return N; }
  static constexpr Word mask() {
    return N == 64 ? ~Word{0} : ((Word{1} << N) - 1);
  }

  constexpr void set(int i) {
    PLANARIA_ASSERT(i >= 0 && i < N);
    bits_ |= Word{1} << i;
  }
  constexpr void clear(int i) {
    PLANARIA_ASSERT(i >= 0 && i < N);
    bits_ &= ~(Word{1} << i);
  }
  constexpr bool test(int i) const {
    PLANARIA_ASSERT(i >= 0 && i < N);
    return (bits_ >> i) & 1u;
  }
  constexpr void flip(int i) {
    PLANARIA_ASSERT(i >= 0 && i < N);
    bits_ ^= Word{1} << i;
  }
  constexpr void reset() { bits_ = 0; }

  constexpr int popcount() const { return std::popcount(bits_); }
  constexpr bool empty() const { return bits_ == 0; }
  constexpr Word raw() const { return bits_; }

  /// Number of blocks set in both bitmaps (the paper's "same bits" that are
  /// accessed in both pages; used by TLP's similarity test).
  constexpr int common_with(BlockBitmap other) const {
    return std::popcount(bits_ & other.bits_);
  }

  /// Number of positions where the two bitmaps differ (Fig. 5's "difference
  /// between the bitmap of two pages").
  constexpr int hamming_distance(BlockBitmap other) const {
    return std::popcount(bits_ ^ other.bits_);
  }

  /// Blocks set in this bitmap but not in `other` — what TLP prefetches when
  /// transferring a neighbor's pattern ("a bit in entry 0 is 1 but in entry 2
  /// is 0").
  constexpr BlockBitmap minus(BlockBitmap other) const {
    return BlockBitmap(bits_ & ~other.bits_);
  }

  constexpr BlockBitmap operator&(BlockBitmap o) const { return BlockBitmap(bits_ & o.bits_); }
  constexpr BlockBitmap operator|(BlockBitmap o) const { return BlockBitmap(bits_ | o.bits_); }
  constexpr BlockBitmap operator^(BlockBitmap o) const { return BlockBitmap(bits_ ^ o.bits_); }
  constexpr bool operator==(const BlockBitmap&) const = default;

  /// Index of lowest set bit, or -1 if empty.
  constexpr int first_set() const {
    return bits_ == 0 ? -1 : std::countr_zero(bits_);
  }

  /// Calls `fn(block_index)` for every set bit, in ascending order.
  template <typename Fn>
  constexpr void for_each_set(Fn&& fn) const {
    Word w = bits_;
    while (w != 0) {
      const int i = std::countr_zero(w);
      fn(i);
      w &= w - 1;
    }
  }

  /// "1011..." string, bit 0 first; handy in logs and tests.
  std::string to_string() const {
    std::string s(N, '0');
    for (int i = 0; i < N; ++i) {
      if (test(i)) s[static_cast<std::size_t>(i)] = '1';
    }
    return s;
  }

 private:
  Word bits_ = 0;
};

/// 16-block segment bitmap used by the per-channel prefetcher tables.
using SegmentBitmap = BlockBitmap<16>;
/// Whole-page bitmap used by the trace analysis tools.
using PageBitmap = BlockBitmap<64>;

}  // namespace planaria
