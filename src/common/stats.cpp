#include "common/stats.hpp"

namespace planaria {

double Histogram::quantile(double q) const {
  PLANARIA_ASSERT(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total_));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= target) return static_cast<double>(i + 1) * width_;
  }
  return static_cast<double>(counts_.size()) * width_;
}

Counter& StatSet::counter(const std::string& name) { return counters_[name]; }

Accumulator& StatSet::accumulator(const std::string& name) {
  return accumulators_[name];
}

StatSnapshot StatSet::dump() const {
  StatSnapshot out;
  for (const auto& [name, c] : counters_) {
    out[name] = static_cast<double>(c.value());
  }
  for (const auto& [name, a] : accumulators_) {
    out[name + ".count"] = static_cast<double>(a.count());
    out[name + ".sum"] = a.sum();
    out[name + ".mean"] = a.mean();
  }
  return out;
}

void StatSet::reset() {
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, a] : accumulators_) a.reset();
}

}  // namespace planaria
