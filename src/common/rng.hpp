// Deterministic random number generation for the synthetic trace generators.
//
// xoshiro256** (Blackman & Vigna) — small state, excellent statistical
// quality, and identical output on every platform, which keeps bench output
// reproducible run-to-run (std::mt19937's distributions are not guaranteed
// bit-identical across standard libraries, so we also ship our own
// distribution helpers).
#pragma once

#include <array>
#include <cstdint>

#include "common/assert.hpp"

namespace planaria {

class Rng {
 public:
  /// Seeds the full 256-bit state from a 64-bit seed via splitmix64, per the
  /// xoshiro authors' recommendation.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial.
  bool chance(double p);

  /// Geometric-ish burst length: 1 + number of successes before failure.
  int burst_length(double continue_p, int max_len);

  /// Approximately Zipf-distributed rank in [0, n) with exponent s, via
  /// rejection-free inverse-CDF over a harmonic approximation. Deterministic
  /// and cheap; adequate for workload skew modelling.
  std::uint64_t next_zipf(std::uint64_t n, double s);

  /// Raw 256-bit state, for checkpoint/restore: restoring state() into a
  /// fresh Rng continues the exact output sequence.
  std::array<std::uint64_t, 4> state() const { return {s_[0], s_[1], s_[2], s_[3]}; }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    for (int i = 0; i < 4; ++i) s_[i] = s[i];
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace planaria
