// Set-associative lookup table with per-set LRU.
//
// The larger hardware tables (SLP's Pattern History Table at thousands of
// entries, SPP's Signature Table) are set-associative in real designs, and a
// full CAM scan of that many entries would also be a simulation bottleneck.
// Keys are hashed to a set with a strong 64-bit mixer; each set holds `ways`
// entries replaced LRU. Same payload-centric interface as LruTable.
//
// Like LruTable, lookups go through an open-addressing TagIndex (key ->
// global slot) instead of scanning the ways, and recency is a generation
// stamp written on touch. Victim selection on a miss still walks the set's
// ways — that scan is bounded by associativity, and keeping it verbatim
// preserves the exact eviction order (first invalid way, else minimum
// last_use) and the canonical save_state layout.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/tag_index.hpp"

namespace planaria {

template <typename Key, typename Payload>
class SetAssocTable {
 public:
  SetAssocTable(std::size_t sets, int ways)
      : sets_(sets), ways_(ways),
        entries_(sets * static_cast<std::size_t>(ways)),
        index_(entries_.size()) {
    PLANARIA_ASSERT(sets > 0 && (sets & (sets - 1)) == 0);
    PLANARIA_ASSERT(ways > 0);
  }

  std::size_t capacity() const { return entries_.size(); }

  /// Live entry count, maintained incrementally (size() used to rescan all
  /// entries, an O(capacity) cost per call that dwarfed the operation being
  /// checked when contracts probe occupancy on hot paths). Debug builds
  /// cross-check the counter against a full scan.
  std::size_t size() const {
    PLANARIA_DASSERT(live_ == scanned_size());
    return live_;
  }

  Payload* find(const Key& key) {
    const std::uint32_t s = index_.find(static_cast<std::uint64_t>(key));
    if (s == TagIndex::npos) return nullptr;
    Entry& e = entries_[s];
    e.last_use = ++tick_;
    return &e.payload;
  }

  const Payload* peek(const Key& key) const {
    const std::uint32_t s = index_.find(static_cast<std::uint64_t>(key));
    return s == TagIndex::npos ? nullptr : &entries_[s].payload;
  }

  /// Inserts key -> payload; returns the evicted (key, payload) if a valid
  /// LRU victim had to make room.
  std::optional<std::pair<Key, Payload>> insert(const Key& key, Payload payload) {
    const std::uint32_t hit = index_.find(static_cast<std::uint64_t>(key));
    if (hit != TagIndex::npos) {
      Entry& e = entries_[hit];
      e.payload = std::move(payload);
      e.last_use = ++tick_;
      return std::nullopt;
    }
    Entry* base = set_base(key);
    Entry* victim = nullptr;
    for (int w = 0; w < ways_; ++w) {
      Entry& e = base[w];
      if (!e.valid) {
        if (victim == nullptr || victim->valid) victim = &e;
      } else if (victim == nullptr ||
                 (victim->valid && e.last_use < victim->last_use)) {
        victim = &e;
      }
    }
    PLANARIA_ASSERT(victim != nullptr);
    std::optional<std::pair<Key, Payload>> evicted;
    if (victim->valid) {
      index_.erase(static_cast<std::uint64_t>(victim->key));
      evicted.emplace(victim->key, std::move(victim->payload));
    } else {
      ++live_;
    }
    victim->key = key;
    victim->payload = std::move(payload);
    victim->last_use = ++tick_;
    victim->valid = true;
    index_.insert(static_cast<std::uint64_t>(key),
                  static_cast<std::uint32_t>(victim - entries_.data()));
    return evicted;
  }

  std::optional<Payload> erase(const Key& key) {
    const std::uint32_t s = index_.find(static_cast<std::uint64_t>(key));
    if (s == TagIndex::npos) return std::nullopt;
    Entry& e = entries_[s];
    e.valid = false;
    --live_;
    index_.erase(static_cast<std::uint64_t>(key));
    return std::move(e.payload);
  }

  void clear() {
    for (auto& e : entries_) e.valid = false;
    live_ = 0;
    index_.clear();
  }

  template <typename Fn>
  void for_each(Fn&& fn) {
    for (auto& e : entries_) {
      if (e.valid) fn(e.key, e.payload);
    }
  }

  /// Raw slot access for fault injection and diagnostics: the payload stored
  /// in slot `i` (0..capacity()), or nullptr when that slot is invalid. Does
  /// not touch LRU state — a corrupted entry must not look recently used.
  Payload* payload_at(std::size_t i) {
    PLANARIA_ASSERT(i < entries_.size());
    return entries_[i].valid ? &entries_[i].payload : nullptr;
  }

  /// Removes entries matching pred and hands them to on_evict. O(capacity);
  /// callers amortize by sweeping periodically.
  template <typename Pred, typename OnEvict>
  void evict_if(Pred&& pred, OnEvict&& on_evict) {
    for (auto& e : entries_) {
      if (e.valid && pred(e.key, e.payload)) {
        e.valid = false;
        --live_;
        index_.erase(static_cast<std::uint64_t>(e.key));
        on_evict(e.key, std::move(e.payload));
      }
    }
  }

  /// Checkpoint: valid slots in ascending slot order (canonical, so the
  /// encoding is byte-stable across save/load cycles), with the exact LRU
  /// timestamps — replacement decisions after a restore match the
  /// uninterrupted run bit for bit. `sp(w, payload)` encodes one payload.
  /// Templated on the writer type so the common layer never depends on the
  /// snapshot module (see common/table.hpp).
  template <typename Writer, typename SavePayload>
  void save_state(Writer& w, SavePayload&& sp) const {
    w.u64(tick_);
    w.u64(static_cast<std::uint64_t>(live_));
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      if (!e.valid) continue;
      w.u64(static_cast<std::uint64_t>(i));
      w.u64(static_cast<std::uint64_t>(e.key));
      w.u64(e.last_use);
      sp(w, e.payload);
    }
  }

  /// Restore counterpart; `lp(r)` decodes one payload. Geometry must match
  /// the constructed table (slot indices out of range, descending, or
  /// duplicated reject the snapshot via `r.fail`, which must not return).
  template <typename Reader, typename LoadPayload>
  void load_state(Reader& r, LoadPayload&& lp) {
    clear();
    tick_ = r.u64();
    const std::uint64_t count = r.u64();
    if (count > entries_.size()) {
      r.fail("set table live count exceeds capacity");
    }
    std::uint64_t prev = 0;
    for (std::uint64_t n = 0; n < count; ++n) {
      const std::uint64_t i = r.u64();
      if (i >= entries_.size() || (n > 0 && i <= prev)) {
        r.fail("set table slot index out of order");
      }
      prev = i;
      Entry& e = entries_[i];
      e.key = static_cast<Key>(r.u64());
      e.last_use = r.u64();
      e.payload = lp(r);
      e.valid = true;
      index_.insert(static_cast<std::uint64_t>(e.key),
                    static_cast<std::uint32_t>(i));
    }
    live_ = static_cast<std::size_t>(count);
  }

 private:
  std::size_t scanned_size() const {
    std::size_t n = 0;
    for (const auto& e : entries_) n += e.valid ? 1 : 0;
    return n;
  }
  struct Entry {
    Key key{};
    Payload payload{};
    std::uint64_t last_use = 0;
    bool valid = false;
  };

  static std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return x;
  }

  Entry* set_base(const Key& key) {
    const std::size_t set = mix(static_cast<std::uint64_t>(key)) & (sets_ - 1);
    return &entries_[set * static_cast<std::size_t>(ways_)];
  }
  const Entry* set_base(const Key& key) const {
    return const_cast<SetAssocTable*>(this)->set_base(key);
  }

  std::size_t sets_;
  int ways_;
  std::vector<Entry> entries_;
  TagIndex index_;
  std::uint64_t tick_ = 0;
  std::size_t live_ = 0;
};

}  // namespace planaria
