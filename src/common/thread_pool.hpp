// Fixed-size thread pool shared by the sweep engine and the channel-sharded
// simulator.
//
// Two usage shapes:
//   * submit(fn)          — fire-and-collect a single task via std::future.
//   * parallel_for(n, fn) — run fn(0..n-1) across the pool. The CALLING
//     thread participates in the batch: it claims indices from the same
//     atomic cursor as the workers, so a nested parallel_for issued from
//     inside a pool task can never deadlock — the caller drains its own
//     batch even when every worker is busy with outer-level tasks. Helper
//     jobs that reach the queue after the batch is fully claimed simply
//     return.
//
// Thread count comes from PLANARIA_THREADS (see threads_from_env, validated
// in the same style as PLANARIA_RECORDS in sim/experiment.cpp); a pool of
// size 1 degenerates to inline execution with no worker handoff.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace planaria::common {

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the caller is the remaining lane). A pool
  /// of 1 runs everything inline. Throws std::invalid_argument on 0.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Configured parallelism (worker threads + the participating caller).
  std::size_t size() const { return threads_; }

  /// Queues one task; the future reports its result or exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> out = task->get_future();
    enqueue([task] { (*task)(); });
    return out;
  }

  /// Runs body(0..n-1) with the caller participating; blocks until every
  /// index has finished. The first exception thrown by any index is
  /// rethrown on the calling thread after the batch drains. Safe to call
  /// from inside a pool task (see header comment). n == 0 is a no-op.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Reads PLANARIA_THREADS (decimal, e.g. "8") or returns `fallback`.
  /// Rejects zero, malformed values, and counts above kMaxThreads (which a
  /// wrapped negative would otherwise sail past as a huge unsigned).
  static std::size_t threads_from_env(std::size_t fallback);

  /// Upper bound accepted from the environment; far above any real machine
  /// this simulator targets, low enough to catch "-4" style wraparound.
  static constexpr std::size_t kMaxThreads = 4096;

 private:
  struct ForBatch {
    std::size_t n = 0;
    const std::function<void(std::size_t)>* body = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex mutex;
    std::condition_variable cv;
    std::exception_ptr error;  ///< first failure, guarded by mutex
  };

  void enqueue(std::function<void()> job);
  void worker_loop();
  static void drain_batch(const std::shared_ptr<ForBatch>& batch);

  std::size_t threads_;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace planaria::common
