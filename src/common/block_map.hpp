// Open-addressing block -> value map for the MSHR-style in-flight tables.
//
// The per-channel in-flight table lives on the per-record spine: every demand
// miss and every accepted prefetch inserts an entry, every DRAM completion
// looks it up and erases it. A node-based std::unordered_map pays one heap
// allocation and one free per miss, which at millions of records per second
// is a measurable slice of the hot loop. This map stores entries inline in a
// flat cell array (linear probing, backward-shift deletion — same discipline
// as TagIndex), so steady-state insert/erase churn touches no allocator at
// all once the table has grown to its working size.
//
// Unordered like the container it replaces: callers that serialize must
// collect-and-sort keys (the simulator already does), and range iteration is
// only for order-independent reductions. Key 0 is a legal block number, so
// occupancy is a separate flag, not a sentinel key.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace planaria::common {

template <typename T>
class BlockMap {
 public:
  BlockMap() { rehash(kMinCapacity); }

  /// Value for `key`, or nullptr. Pointers are invalidated by any mutation.
  T* find(std::uint64_t key) {
    std::size_t i = bucket(key);
    for (;;) {
      Cell& c = cells_[i];
      if (!c.used) return nullptr;
      if (c.key == key) return &c.value;
      i = (i + 1) & mask_;
    }
  }
  const T* find(std::uint64_t key) const {
    return const_cast<BlockMap*>(this)->find(key);
  }

  bool contains(std::uint64_t key) const { return find(key) != nullptr; }

  /// Inserts `key` -> `value`; the key must be absent (callers dispatch the
  /// present case beforehand, mirroring the emplace-after-count pattern the
  /// std::unordered_map call sites used).
  void insert(std::uint64_t key, T value) {
    PLANARIA_DASSERT(find(key) == nullptr);
    if ((size_ + 1) * 2 > cells_.size()) rehash(cells_.size() * 2);
    std::size_t i = bucket(key);
    while (cells_[i].used) i = (i + 1) & mask_;
    cells_[i].key = key;
    cells_[i].value = std::move(value);
    cells_[i].used = true;
    ++size_;
  }

  /// Removes `key` if present. Backward-shift deletion keeps probe chains
  /// intact without tombstones, so load factor — and probe length — never
  /// degrades under churn.
  void erase(std::uint64_t key) {
    std::size_t i = bucket(key);
    for (;;) {
      if (!cells_[i].used) return;
      if (cells_[i].key == key) break;
      i = (i + 1) & mask_;
    }
    std::size_t hole = i;
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask_;
      if (!cells_[j].used) break;
      const std::size_t home = bucket(cells_[j].key);
      if (((j - home) & mask_) >= ((j - hole) & mask_)) {
        cells_[hole].key = cells_[j].key;
        cells_[hole].value = std::move(cells_[j].value);
        hole = j;
      }
    }
    cells_[hole].used = false;
    cells_[hole].value = T{};
    --size_;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    for (Cell& c : cells_) {
      if (c.used) {
        c.used = false;
        c.value = T{};
      }
    }
    size_ = 0;
  }

  /// Order-independent visitation of every (key, value) pair. Deliberately
  /// not an iterator: the unordered order must never leak into an encoding,
  /// and a callback keeps call sites explicit about that.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Cell& c : cells_) {
      if (c.used) fn(c.key, c.value);
    }
  }

 private:
  struct Cell {
    std::uint64_t key = 0;
    T value{};
    bool used = false;
  };

  static constexpr std::size_t kMinCapacity = 16;

  // Same splitmix-style mixer as TagIndex: block numbers are dense sequences
  // that would cluster badly under identity hashing.
  static std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return x;
  }

  std::size_t bucket(std::uint64_t key) const {
    return static_cast<std::size_t>(mix(key)) & mask_;
  }

  void rehash(std::size_t want) {
    // lint: suppress(hot-alloc) doubling rehash is amortized O(1) per insert; steady state never re-enters
    std::vector<Cell> old = std::move(cells_);
    cells_.assign(want, Cell{});
    mask_ = want - 1;
    for (Cell& c : old) {
      if (!c.used) continue;
      std::size_t i = bucket(c.key);
      while (cells_[i].used) i = (i + 1) & mask_;
      cells_[i].key = c.key;
      cells_[i].value = std::move(c.value);
      cells_[i].used = true;
    }
  }

  std::vector<Cell> cells_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace planaria::common
