// Small-inline vector for trivially-copyable elements.
//
// The simulator's MSHR entries carry the arrival times of demands merged onto
// an in-flight fill. Almost every entry holds zero or one waiter (a second
// demand to the same airborne block within its DRAM service window is rare),
// yet std::vector pays a heap allocation for the first push and a pointer
// chase on every read. SmallVector keeps up to N elements in the object
// itself and spills to a heap vector only past that, so the common case is
// allocation-free and reads stay on the already-resident cache line.
//
// Deliberately minimal: append, iterate, clear — the full std::vector surface
// (insert/erase/resize) is not needed on this path and not provided.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <type_traits>
#include <vector>

namespace planaria::common {

template <typename T, std::size_t N>
class SmallVector {
  static_assert(N > 0, "inline capacity must be positive");
  static_assert(std::is_trivially_copyable_v<T>,
                "the spill copy assumes trivially copyable elements");

 public:
  SmallVector() = default;
  SmallVector(std::initializer_list<T> init) {
    for (const T& v : init) push_back(v);
  }

  void push_back(const T& v) {
    if (size_ < N) {
      inline_[size_] = v;
    } else {
      if (size_ == N) heap_.assign(inline_, inline_ + N);  // spill once
      heap_.push_back(v);
    }
    ++size_;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const T* begin() const { return size_ <= N ? inline_ : heap_.data(); }
  const T* end() const { return begin() + size_; }
  const T& operator[](std::size_t i) const { return begin()[i]; }

  void clear() {
    size_ = 0;
    heap_.clear();
  }

  /// Pre-sizes only the spilled storage; inline capacity needs no warning.
  void reserve(std::size_t n) {
    if (n > N) heap_.reserve(n);
  }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    if (a.size_ != b.size_) return false;
    const T* pa = a.begin();
    const T* pb = b.begin();
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (!(pa[i] == pb[i])) return false;
    }
    return true;
  }

 private:
  T inline_[N] = {};
  std::size_t size_ = 0;
  std::vector<T> heap_;  ///< holds ALL elements once size_ exceeds N
};

}  // namespace planaria::common
