// Open-addressing key -> slot index for the content-addressed tables.
//
// The hardware tables (LruTable, SetAssocTable, the SC tag array, TLP's
// Recent Page Table) are CAMs: a probe compares every entry. Exact at
// hardware scale, but a simulation bottleneck once the probe sits on the
// per-record spine. This index shadows a table's valid entries with an
// open-addressing hash (linear probing, backward-shift deletion) so lookups
// cost O(1) while the table itself keeps its slot array — and therefore its
// eviction order and PLNSNAP1 serialization — byte-for-byte unchanged.
//
// Capacity is fixed at construction (2x the owning table's slot count,
// rounded to a power of two), so the load factor never exceeds 1/2 and the
// index never rehashes mid-run. Deletion uses backward shifting instead of
// tombstones: probe distance stays bounded regardless of churn.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace planaria {

class TagIndex {
 public:
  static constexpr std::uint32_t npos = 0xFFFFFFFFu;

  /// Empty index (capacity 0); assign a sized one before use. Exists so
  /// owners whose geometry is validated in the constructor body can
  /// default-construct the member first.
  TagIndex() : cells_(1), mask_(0) {}

  explicit TagIndex(std::size_t table_capacity) {
    std::size_t want = 8;
    while (want < table_capacity * 2) want <<= 1;
    cells_.resize(want);
    mask_ = want - 1;
  }

  /// Slot holding `key`, or npos. Never touches the owning table's LRU state.
  std::uint32_t find(std::uint64_t key) const {
    std::size_t i = bucket(key);
    for (;;) {
      const Cell& c = cells_[i];
      if (c.slot == npos) return npos;
      if (c.key == key) return c.slot;
      i = (i + 1) & mask_;
    }
  }

  /// Key must be absent (the owning table dispatches hits beforehand).
  void insert(std::uint64_t key, std::uint32_t slot) {
    PLANARIA_DASSERT(slot != npos);
    PLANARIA_DASSERT(find(key) == npos);
    std::size_t i = bucket(key);
    while (cells_[i].slot != npos) i = (i + 1) & mask_;
    cells_[i].key = key;
    cells_[i].slot = slot;
  }

  /// Removes `key` if present (backward-shift deletion keeps probe chains
  /// intact without tombstones).
  void erase(std::uint64_t key) {
    std::size_t i = bucket(key);
    for (;;) {
      if (cells_[i].slot == npos) return;
      if (cells_[i].key == key) break;
      i = (i + 1) & mask_;
    }
    std::size_t hole = i;
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask_;
      if (cells_[j].slot == npos) break;
      const std::size_t home = bucket(cells_[j].key);
      if (((j - home) & mask_) >= ((j - hole) & mask_)) {
        cells_[hole] = cells_[j];
        hole = j;
      }
    }
    cells_[hole].slot = npos;
  }

  void clear() {
    for (Cell& c : cells_) c.slot = npos;
  }

 private:
  struct Cell {
    std::uint64_t key = 0;
    std::uint32_t slot = npos;
  };

  // Same 64-bit mixer the set-associative tables hash with: keys are page
  // numbers / block numbers, i.e. dense sequences that would cluster badly
  // under identity hashing.
  static std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return x;
  }

  std::size_t bucket(std::uint64_t key) const {
    return static_cast<std::size_t>(mix(key)) & mask_;
  }

  std::vector<Cell> cells_;
  std::size_t mask_ = 0;
};

}  // namespace planaria
