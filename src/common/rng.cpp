#include "common/rng.hpp"

#include <bit>
#include <cmath>

namespace planaria {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& word : s_) word = splitmix64(x);
  // xoshiro must not be seeded with the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  PLANARIA_ASSERT(bound > 0);
  // Lemire's multiply-shift rejection method: unbiased and fast.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t t = -bound % bound;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_range(std::int64_t lo, std::int64_t hi) {
  PLANARIA_ASSERT(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 high bits -> uniform double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

int Rng::burst_length(double continue_p, int max_len) {
  PLANARIA_ASSERT(max_len >= 1);
  int len = 1;
  while (len < max_len && chance(continue_p)) ++len;
  return len;
}

std::uint64_t Rng::next_zipf(std::uint64_t n, double s) {
  PLANARIA_ASSERT(n > 0);
  if (n == 1) return 0;
  // Inverse-CDF over the continuous approximation of the generalized
  // harmonic number H(k) ~ (k^(1-s) - 1) / (1-s) for s != 1, ln(k) for s == 1.
  const double u = next_double();
  double k;
  const auto nd = static_cast<double>(n);
  if (std::abs(s - 1.0) < 1e-9) {
    k = std::exp(u * std::log(nd));
  } else {
    const double h = (std::pow(nd, 1.0 - s) - 1.0) / (1.0 - s);
    k = std::pow(u * h * (1.0 - s) + 1.0, 1.0 / (1.0 - s));
  }
  auto rank = static_cast<std::uint64_t>(k);
  if (rank >= n) rank = n - 1;
  return rank;
}

}  // namespace planaria
