// Fundamental address/time types and the physical address geometry shared by
// every layer of the simulator.
//
// Geometry follows the paper's Table 1 / Figure 1:
//   * 4KB pages, 64B blocks  ->  64 blocks per page
//   * a page is split into four 16-block segments; segment s of every page is
//     statically mapped to DRAM channel s (and to that channel's system-cache
//     slice), so each per-channel prefetcher tracks pages with 16-bit bitmaps.
#pragma once

#include <cstdint>

#include "common/assert.hpp"

namespace planaria {

/// Physical byte address on the memory bus.
using Address = std::uint64_t;

/// Page number: physical address >> kPageShift.
using PageNumber = std::uint64_t;

/// Simulation time in memory-controller clock cycles.
using Cycle = std::uint64_t;

/// Identifies which SoC agent issued a request (the paper's trace format
/// records the "request device ID (CPU, GPU, DSP, etc.)").
enum class DeviceId : std::uint8_t {
  kCpuBig = 0,   ///< Cortex-A76 cluster
  kCpuLittle,    ///< Cortex-A55 cluster
  kGpu,          ///< Mali-G76
  kNpu,
  kIsp,
  kDsp,
  kCount,
};

/// Demand access type.
enum class AccessType : std::uint8_t { kRead = 0, kWrite = 1 };

inline constexpr int kBlockShift = 6;                   ///< 64B blocks
inline constexpr int kPageShift = 12;                   ///< 4KB pages
inline constexpr std::uint64_t kBlockBytes = 1ull << kBlockShift;
inline constexpr std::uint64_t kPageBytes = 1ull << kPageShift;
inline constexpr int kBlocksPerPage = 64;               ///< 4KB / 64B
inline constexpr int kChannels = 4;                     ///< Table 1: 4 channels
inline constexpr int kBlocksPerSegment = kBlocksPerPage / kChannels;  ///< 16

static_assert(kBlocksPerSegment == 16,
              "per-channel prefetchers assume 16-bit page bitmaps");

/// Decomposition helpers for the fixed geometry above. All functions are
/// branch-free bit manipulation and safe for any 64-bit physical address.
namespace addr {

constexpr Address block_align(Address a) { return a & ~(kBlockBytes - 1); }

constexpr PageNumber page_number(Address a) { return a >> kPageShift; }

/// Block index within the page: 0..63.
constexpr int block_in_page(Address a) {
  return static_cast<int>((a >> kBlockShift) & (kBlocksPerPage - 1));
}

/// Channel owning this address (= segment index within the page): 0..3.
/// Address bits [11:10] select the 16-block segment, per Figure 1's static
/// segment-to-channel map.
constexpr int channel_of(Address a) {
  return block_in_page(a) / kBlocksPerSegment;
}

/// Block index within the 16-block segment seen by one channel: 0..15.
constexpr int block_in_segment(Address a) {
  return block_in_page(a) % kBlocksPerSegment;
}

/// Rebuild a block-aligned address from (page, block-in-page).
constexpr Address compose(PageNumber pn, int block) {
  return (static_cast<Address>(pn) << kPageShift) |
         (static_cast<Address>(block) << kBlockShift);
}

/// Rebuild an address from (page, channel, block-in-segment).
constexpr Address compose_segment(PageNumber pn, int channel, int block_in_seg) {
  return compose(pn, channel * kBlocksPerSegment + block_in_seg);
}

}  // namespace addr

/// Returns a short human-readable name for a device id.
constexpr const char* device_name(DeviceId d) {
  switch (d) {
    case DeviceId::kCpuBig: return "cpu-big";
    case DeviceId::kCpuLittle: return "cpu-little";
    case DeviceId::kGpu: return "gpu";
    case DeviceId::kNpu: return "npu";
    case DeviceId::kIsp: return "isp";
    case DeviceId::kDsp: return "dsp";
    case DeviceId::kCount: break;
  }
  return "unknown";
}

}  // namespace planaria
