// Current/energy-based LPDDR4 power model.
//
// Stands in for the proprietary manufacturer power model the paper embeds in
// its simulator (Section 5). The structure is the standard Micron-style
// decomposition: per-command energies (ACT/PRE pair, read burst, write burst,
// IO, all-bank refresh) plus time-proportional background power. Default
// values are representative of an x16 LPDDR4-3200 channel of an 8Gb die at
// VDD2 = 1.1V; the evaluation only consumes *relative* power deltas between
// prefetcher configurations, which depend on command counts rather than the
// absolute calibration.
#pragma once

#include <stdexcept>

#include "dram/channel.hpp"

namespace planaria::dram {

struct PowerParams {
  double e_activate_nj = 0.9;   ///< ACT + eventual PRE pair, per row cycle
  double e_read_nj = 1.2;       ///< core array read energy per 64B burst
  double e_write_nj = 1.3;      ///< core array write energy per 64B burst
  double e_io_nj = 0.35;        ///< LVSTL IO + termination per 64B transfer
  double e_refresh_nj = 28.0;   ///< one all-bank refresh
  double p_background_mw = 55.0;  ///< active/idle standby power (CKE high)
  double p_powerdown_mw = 22.0;   ///< CKE-low power-down standby power
  double clock_ghz = 1.6;       ///< controller clock, converts cycles to time

  void validate() const {
    if (e_activate_nj < 0 || e_read_nj < 0 || e_write_nj < 0 || e_io_nj < 0 ||
        e_refresh_nj < 0 || p_background_mw < 0 || p_powerdown_mw < 0 ||
        clock_ghz <= 0) {
      throw std::invalid_argument("dram power params must be non-negative");
    }
  }
};

// lint: suppress(snapshot-missing) params_ holds validated constants; the model is stateless per query
class PowerModel {
 public:
  explicit PowerModel(const PowerParams& params = {}) : params_(params) {
    params_.validate();
  }

  /// Total energy consumed by one channel given its command counts, in nJ.
  /// Cycles the channel spent in CKE-low power-down are billed at the
  /// power-down rate instead of full standby.
  double energy_nj(const ChannelCounters& c) const {
    const double dynamic =
        static_cast<double>(c.activates) * params_.e_activate_nj +
        static_cast<double>(c.reads) * (params_.e_read_nj + params_.e_io_nj) +
        static_cast<double>(c.writes) * (params_.e_write_nj + params_.e_io_nj) +
        static_cast<double>(c.refreshes) * params_.e_refresh_nj +
        static_cast<double>(c.refreshes_pb) * params_.e_refresh_nj / 8.0;
    const Cycle standby =
        c.elapsed > c.powerdown_cycles ? c.elapsed - c.powerdown_cycles : 0;
    return dynamic + background_energy_nj(standby) +
           powerdown_energy_nj(c.powerdown_cycles);
  }

  /// Full-standby background energy for `cycles`, in nJ.
  double background_energy_nj(Cycle cycles) const {
    const double seconds =
        static_cast<double>(cycles) / (params_.clock_ghz * 1e9);
    return params_.p_background_mw * 1e-3 * seconds * 1e9;  // W*s -> nJ
  }

  /// CKE-low power-down energy for `cycles`, in nJ.
  double powerdown_energy_nj(Cycle cycles) const {
    const double seconds =
        static_cast<double>(cycles) / (params_.clock_ghz * 1e9);
    return params_.p_powerdown_mw * 1e-3 * seconds * 1e9;
  }

  /// Average power over the channel's elapsed time, in mW.
  double average_power_mw(const ChannelCounters& c) const {
    if (c.elapsed == 0) return 0.0;
    const double seconds =
        static_cast<double>(c.elapsed) / (params_.clock_ghz * 1e9);
    return energy_nj(c) * 1e-9 / seconds * 1e3;  // nJ/s -> mW
  }

  const PowerParams& params() const { return params_; }

 private:
  PowerParams params_;
};

}  // namespace planaria::dram
