#include "dram/channel.hpp"

#include <algorithm>

#include "check/contract.hpp"
#include "common/assert.hpp"

namespace planaria::dram {

DramChannel::DramChannel(const DramConfig& config)
    : config_(config),
      mapper_(config.geometry),
      banks_(static_cast<std::size_t>(config.geometry.banks) *
             static_cast<std::size_t>(config.geometry.ranks)),
      ranks_(static_cast<std::size_t>(config.geometry.ranks)),
      // REFpb refreshes one bank per deadline at banks-times the REFab rate.
      refresh_due_(static_cast<Cycle>(
          config.controller.per_bank_refresh
              ? config.timing.tREFI / config.geometry.banks
              : config.timing.tREFI)) {
  config_.validate();
  refresh_interval_ = refresh_due_;  // first deadline == deadline spacing
}

bool DramChannel::submit(const DramRequest& request) {
  // Any accepted (or coalesced) request can change what the scheduler would
  // issue next; drop the cached next-event bound.
  next_event_valid_ = false;
  // `arrival` may be earlier than now_: the controller can have fast-forwarded
  // through refresh while the request was in flight toward it. earliest
  // command scheduling clamps to max(now_, arrival).
  Queued q;
  q.req = request;
  q.loc = mapper_.map(request.local_block);
  q.order = ++order_counter_;

  if (request.is_write) {
    // Coalesce a write to a block already waiting in the write queue: the
    // later data simply replaces the earlier burst. The membership shadow
    // answers the (overwhelmingly common) miss case without a scan; on a hit
    // the scan finds the unique matching entry to retag.
    if (write_blocks_.contains(request.local_block)) {
      for (auto& w : write_q_) {
        if (w.req.local_block == request.local_block) {
          w.req.tag = request.tag;
          return true;
        }
      }
    }
    if (write_q_.size() >=
        static_cast<std::size_t>(config_.controller.write_queue_depth)) {
      ++counters_.read_queue_overflows;  // bus would have stalled here
    }
    write_q_.push_back(q);
    write_blocks_.insert(request.local_block, 1);
    return true;
  }

  // Read hitting the write queue is forwarded from the buffered data. Only
  // membership matters here — the completion is built from the read request.
  if (write_blocks_.contains(request.local_block)) {
    DramCompletion c;
    c.tag = request.tag;
    c.arrival = request.arrival;
    c.finish = request.arrival + static_cast<Cycle>(config_.timing.tCL);
    c.is_prefetch = request.is_prefetch;
    c.forwarded = true;
    PLANARIA_ENSURE_MSG(kTimingMonotonicity, c.finish >= c.arrival,
                        "forwarded read completed before it arrived");
    completions_.push_back(c);
    ++counters_.forwarded_reads;
    if (request.is_prefetch) {
      ++counters_.prefetch_reads;
    } else {
      ++counters_.demand_reads;
    }
    return true;
  }

  if (read_q_.size() >=
      static_cast<std::size_t>(config_.controller.read_queue_depth)) {
    if (request.is_prefetch) {
      ++counters_.prefetch_drops;
      return false;  // saturated channel throttles speculation first
    }
    ++counters_.read_queue_overflows;
  }
  read_q_.push_back(q);
  return true;
}

Cycle DramChannel::rank_act_ready(Cycle t, int rank) const {
  const RankState& rs = ranks_[static_cast<std::size_t>(rank)];
  Cycle ready = t;
  if (rs.have_last_act) {
    ready = std::max(ready, rs.last_act + static_cast<Cycle>(config_.timing.tRRD));
  }
  if (rs.act_count >= RankState::kFawWindow) {
    ready = std::max(ready,
                     rs.oldest_act() + static_cast<Cycle>(config_.timing.tFAW));
  }
  return ready;
}

Cycle DramChannel::rank_turnaround(Cycle t, int rank) const {
  // Switching the data bus between ranks costs tRTRS after the previous
  // burst; same-rank bursts are paced by tCCD alone. With 1 rank (Table 1)
  // this never fires.
  if (last_burst_rank_ < 0 || last_burst_rank_ == rank) return t;
  return std::max(t, last_burst_end_ + static_cast<Cycle>(config_.timing.tRTRS));
}

DramChannel::Candidate DramChannel::earliest_command(const Queued& q) const {
  const Bank& b = bank_of(q.loc);
  const Cycle base = std::max({now_, q.req.arrival, next_cmd_ok_});
  Candidate c;
  if (b.row_open && b.open_row == q.loc.row) {
    c.kind = CmdKind::kReadWrite;
    c.row_hit = true;
    c.when = rank_turnaround(
        std::max({base, b.rdwr_allowed,
                  q.req.is_write ? next_write_ok_ : next_read_ok_}),
        q.loc.rank);
  } else if (b.row_open) {
    c.kind = CmdKind::kPrecharge;
    c.when = std::max(base, b.pre_allowed);
  } else {
    c.kind = CmdKind::kActivate;
    c.when = std::max({base, b.act_allowed, rank_act_ready(base, q.loc.rank)});
  }
  return c;
}

bool DramChannel::pick(const std::vector<Queued>& queue, Candidate& out,
                       Cycle& min_when) const {
  if (queue.empty()) return false;

  // Anti-starvation: a request past the age cap preempts FR-FCFS ordering.
  // The winner's own time is the channel's next-event bound here: while the
  // starved request stays at the front (and it does — only its own issue
  // removes it), every later pick considers it alone, so no earlier command
  // can materialize without new state.
  const Queued& oldest = queue.front();
  if (now_ > oldest.req.arrival + kStarvationAge) {
    out = earliest_command(oldest);
    out.index = 0;
    min_when = out.when;
    PLANARIA_DASSERT_MSG(pick_matches_reference(queue, true, out),
                         "FR-FCFS picker diverged from the reference scan");
    return true;
  }

  // Singleton queue (the common steady state): the lone request wins both
  // priority classes, so the class bookkeeping below collapses to one
  // earliest_command evaluation.
  if (queue.size() == 1) {
    out = earliest_command(oldest);
    out.index = 0;
    min_when = out.when;
    PLANARIA_DASSERT_MSG(pick_matches_reference(queue, true, out),
                         "FR-FCFS picker diverged from the reference scan");
    return true;
  }

  // Two priority classes: demands, then prefetches. A prefetch command is
  // chosen only when no demand could issue within kPrefetchSlack cycles of
  // it — i.e. prefetches fill idle command slots instead of delaying demand
  // service (standard memory-side prefetch priority).
  bool have_demand = false, have_any = false;
  Candidate best_demand, best_any;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    Candidate c = earliest_command(queue[i]);
    c.index = i;
    const bool is_prefetch = queue[i].req.is_prefetch;
    // FR-FCFS within a class: earliest issue time, then open-row hits, then
    // age (queue position).
    const auto better = [](const Candidate& cand, const Candidate& incumbent) {
      if (cand.when != incumbent.when) return cand.when < incumbent.when;
      if (cand.row_hit != incumbent.row_hit) return cand.row_hit;
      return false;
    };
    if (!have_any || better(c, best_any)) {
      best_any = c;
      have_any = true;
    }
    if (!is_prefetch && (!have_demand || better(c, best_demand))) {
      best_demand = c;
      have_demand = true;
    }
  }
  if (!have_any) return false;
  out = (have_demand && best_demand.when <= best_any.when + kPrefetchSlack)
            ? best_demand
            : best_any;
  min_when = best_any.when;
  PLANARIA_DASSERT_MSG(pick_matches_reference(queue, true, out),
                       "FR-FCFS picker diverged from the reference scan");
  return true;
}

// Verbatim re-implementation of the pre-overhaul picker (deque-era FR-FCFS
// scan), used only as a PLANARIA_DASSERT oracle. Any change to pick() must
// keep this oracle in agreement or the divergence aborts in debug/sanitizer
// builds before it can corrupt a result.
bool DramChannel::pick_matches_reference(const std::vector<Queued>& queue,
                                         bool found,
                                         const Candidate& out) const {
  Candidate ref;
  bool ref_found = false;
  if (!queue.empty()) {
    const Queued& oldest = queue.front();
    if (now_ > oldest.req.arrival + kStarvationAge) {
      ref = earliest_command(oldest);
      ref.index = 0;
      ref_found = true;
    } else {
      bool have_demand = false, have_any = false;
      Candidate best_demand, best_any;
      for (std::size_t i = 0; i < queue.size(); ++i) {
        Candidate c = earliest_command(queue[i]);
        c.index = i;
        const bool is_prefetch = queue[i].req.is_prefetch;
        const auto better = [](const Candidate& c1, const Candidate& c2) {
          if (c1.when != c2.when) return c1.when < c2.when;
          if (c1.row_hit != c2.row_hit) return c1.row_hit;
          return false;
        };
        if (!have_any || better(c, best_any)) {
          best_any = c;
          have_any = true;
        }
        if (!is_prefetch && (!have_demand || better(c, best_demand))) {
          best_demand = c;
          have_demand = true;
        }
      }
      if (have_any) {
        ref = (have_demand && best_demand.when <= best_any.when + kPrefetchSlack)
                  ? best_demand
                  : best_any;
        ref_found = true;
      }
    }
  }
  if (ref_found != found) return false;
  if (!found) return true;
  return ref.when == out.when && ref.kind == out.kind &&
         ref.index == out.index && ref.row_hit == out.row_hit;
}

void DramChannel::issue(std::vector<Queued>& queue, const Candidate& cand) {
  Queued& q = queue[cand.index];
  Bank& b = bank_of(q.loc);
  const auto& t = config_.timing;
  const Cycle when = cand.when;
  const auto burst = static_cast<Cycle>(t.burst_cycles());

  switch (cand.kind) {
    case CmdKind::kActivate: {
      q.needed_act = true;
      b.row_open = true;
      b.open_row = q.loc.row;
      b.rdwr_allowed = when + static_cast<Cycle>(t.tRCD);
      b.pre_allowed = when + static_cast<Cycle>(t.tRAS);
      b.act_allowed = when + static_cast<Cycle>(t.tRC);
      RankState& rs = ranks_[static_cast<std::size_t>(q.loc.rank)];
      rs.last_act = when;
      rs.have_last_act = true;
      rs.push_act(when);
      ++counters_.activates;
      break;
    }
    case CmdKind::kPrecharge: {
      q.needed_act = true;
      b.row_open = false;
      b.act_allowed = std::max(b.act_allowed, when + static_cast<Cycle>(t.tRP));
      ++counters_.precharges;
      break;
    }
    case CmdKind::kReadWrite: {
      DramCompletion c;
      c.tag = q.req.tag;
      c.arrival = q.req.arrival;
      c.is_write = q.req.is_write;
      c.is_prefetch = q.req.is_prefetch;
      c.row_hit = !q.needed_act;
      if (q.req.is_write) {
        const Cycle data_end = when + static_cast<Cycle>(t.tCWL) + burst;
        c.finish = data_end;
        last_burst_rank_ = q.loc.rank;
        last_burst_end_ = data_end;
        next_write_ok_ = std::max(next_write_ok_, when + static_cast<Cycle>(t.tCCD));
        next_read_ok_ = std::max(next_read_ok_,
                                 data_end + static_cast<Cycle>(t.tWTR));
        b.pre_allowed = std::max(b.pre_allowed,
                                 data_end + static_cast<Cycle>(t.tWR));
        ++counters_.writes;
      } else {
        const Cycle data_end = when + static_cast<Cycle>(t.tCL) + burst;
        c.finish = data_end;
        last_burst_rank_ = q.loc.rank;
        last_burst_end_ = data_end;
        next_read_ok_ = std::max(next_read_ok_, when + static_cast<Cycle>(t.tCCD));
        // Write bursts must not collide with this read's data on the bus.
        const Cycle wr_ok = when + static_cast<Cycle>(t.tCL) + burst +
                            static_cast<Cycle>(t.tRTRS) -
                            static_cast<Cycle>(t.tCWL);
        next_write_ok_ = std::max(next_write_ok_, wr_ok);
        b.pre_allowed = std::max(b.pre_allowed, when + static_cast<Cycle>(t.tRTP));
        ++counters_.reads;
        if (q.req.is_prefetch) {
          ++counters_.prefetch_reads;
        } else {
          ++counters_.demand_reads;
        }
      }
      if (c.row_hit) {
        ++counters_.row_hits;
      } else {
        ++counters_.row_misses;
      }
      counters_.busy_data_cycles += burst;
      completions_.push_back(c);
      const std::uint64_t done_block = q.req.local_block;
      const bool from_write_q = &queue == &write_q_;
      queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(cand.index));
      if (from_write_q) {
        // Keep the shadow exact even if a restored queue held duplicate
        // blocks: membership stays while any twin remains queued.
        write_blocks_.erase(done_block);
        for (const Queued& e : write_q_) {
          if (e.req.local_block == done_block) {
            write_blocks_.insert(done_block, 1);
            break;
          }
        }
      }
      break;
    }
  }
  next_cmd_ok_ = when + static_cast<Cycle>(t.tCMD);
  last_cmd_time_ = when;
  ever_issued_ = true;
  now_ = when;
}

void DramChannel::perform_bank_refresh(Cycle at) {
  const auto& t = config_.timing;
  // Refresh one bank (round-robin across ranks x banks); the rest of the
  // channel keeps serving. The bank must be precharged first.
  Bank& b = banks_[static_cast<std::size_t>(refresh_bank_rr_)];
  refresh_bank_rr_ = (refresh_bank_rr_ + 1) % static_cast<int>(banks_.size());
  Cycle start = exit_powerdown(std::max(at, next_cmd_ok_));
  if (b.row_open) {
    start = std::max(start, b.pre_allowed);
    ++counters_.precharges;
    start += static_cast<Cycle>(t.tRP);
    b.row_open = false;
  }
  const Cycle done = start + static_cast<Cycle>(t.tRFCpb);
  b.act_allowed = std::max(b.act_allowed, done);
  next_cmd_ok_ = std::max(next_cmd_ok_, start + static_cast<Cycle>(t.tCMD));
  last_cmd_time_ = std::max(last_cmd_time_, done);
  ever_issued_ = true;
  now_ = std::max(now_, start);
  ++counters_.refreshes_pb;
}

void DramChannel::perform_refresh(Cycle at) {
  if (config_.controller.per_bank_refresh) {
    perform_bank_refresh(at);
    return;
  }
  const auto& t = config_.timing;
  // All banks must be precharged before REFab; a powered-down channel exits
  // first (self-refresh is not modelled separately — idle refresh cadence is
  // identical and the power model prices power-down time uniformly).
  Cycle start = exit_powerdown(std::max(at, next_cmd_ok_));
  bool any_open = false;
  for (const auto& b : banks_) {
    if (b.row_open) {
      any_open = true;
      start = std::max(start, b.pre_allowed);
    }
  }
  if (any_open) {
    ++counters_.precharges;  // modelled as one PREab
    start += static_cast<Cycle>(t.tRP);
  }
  const Cycle done = start + static_cast<Cycle>(t.tRFC);
  for (auto& b : banks_) {
    b.row_open = false;
    b.act_allowed = std::max(b.act_allowed, done);
  }
  next_cmd_ok_ = std::max(next_cmd_ok_, start + static_cast<Cycle>(t.tCMD));
  // The device is busy until tRFC completes; that interval is not idle time
  // for power-down accounting.
  last_cmd_time_ = std::max(last_cmd_time_, done);
  ever_issued_ = true;
  now_ = std::max(now_, start);
  ++counters_.refreshes;
}

bool DramChannel::write_drain_mode() const { return draining_writes_; }

Cycle DramChannel::exit_powerdown(Cycle when) {
  // Controller policy: enter CKE-low after powerdown_idle_threshold idle
  // cycles (a policy knob well above tCKE's minimum pulse width); exiting
  // costs tXP before the next command. The pre-first-command state is not
  // billed — the device has not been initialized into active standby yet.
  if (!ever_issued_) return when;
  const Cycle pd_entry =
      last_cmd_time_ +
      static_cast<Cycle>(config_.controller.powerdown_idle_threshold);
  if (when <= pd_entry) return when;
  counters_.powerdown_cycles += when - pd_entry;
  ++counters_.powerdown_entries;
  return when + static_cast<Cycle>(config_.timing.tXP);
}

void DramChannel::advance(Cycle until) {
  if (until < now_) until = now_;
  const auto& ctrl = config_.controller;

  // Event jump: when the cached bound says nothing can issue by `until` and
  // no refresh deadline falls due either, the whole preamble below is a
  // no-op (the hysteresis already reached its fixed point when the bound was
  // cached, and candidate issue times are independent of now_ below the
  // bound), so the clock moves in O(1). The oracle assertion re-runs the
  // full picker to prove the skip changed nothing.
  if (next_event_valid_ && refresh_due_ > until && next_event_when_ > until) {
    PLANARIA_DASSERT_MSG(
        [&] {
          Candidate c;
          Cycle mw = 0;
          const std::vector<Queued>& active =
              draining_writes_ ? write_q_ : read_q_;
          return !pick(active, c, mw) || mw > until;
        }(),
        "next-event cache skipped an issuable command");
    now_ = until;
    counters_.elapsed = now_;
    return;
  }
  next_event_valid_ = false;

  while (true) {
    // Refresh debt: every deadline that has passed becomes one owed refresh.
    while (refresh_due_ <= now_) {
      ++postponed_refreshes_;
      refresh_due_ += refresh_interval_;
    }
    if (postponed_refreshes_ > 0 &&
        (postponed_refreshes_ >= ctrl.max_postponed_refreshes ||
         (read_q_.empty() && write_q_.empty()))) {
      perform_refresh(now_);
      --postponed_refreshes_;
      continue;
    }

    // Write-drain hysteresis.
    if (draining_writes_) {
      if (write_q_.empty() ||
          (write_q_.size() <= static_cast<std::size_t>(ctrl.write_drain_low) &&
           !read_q_.empty())) {
        draining_writes_ = false;
      }
    } else {
      if (write_q_.size() >= static_cast<std::size_t>(ctrl.write_drain_high) ||
          (read_q_.empty() && !write_q_.empty())) {
        draining_writes_ = true;
      }
    }

    std::vector<Queued>& active = draining_writes_ ? write_q_ : read_q_;
    Candidate cand;
    Cycle min_when = 0;
    if (!pick(active, cand, min_when)) {
      // Idle: fast-forward refresh deadlines up to `until`, then stop. With
      // both queues empty every owed refresh was already performed above, so
      // the next event is the next deadline — cacheable as "infinitely far"
      // on the command side.
      while (read_q_.empty() && write_q_.empty() && refresh_due_ <= until) {
        perform_refresh(refresh_due_);
        refresh_due_ += refresh_interval_;
      }
      if (read_q_.empty() && write_q_.empty()) {
        next_event_valid_ = true;
        next_event_when_ = ~Cycle{0};
      }
      break;
    }
    if (cand.when > until) {
      // Nothing issuable by the horizon: min_when lower-bounds the next
      // command for every later advance() until new state arrives.
      next_event_valid_ = true;
      next_event_when_ = min_when;
      break;
    }
    cand.when = exit_powerdown(cand.when);
    issue(active, cand);
  }

  const Cycle before = now_;
  now_ = std::max(now_, until);
  counters_.elapsed = now_;
  // The channel clock never runs backward and always reaches the requested
  // horizon (the request flow in sim/simulator relies on both).
  PLANARIA_ENSURE_MSG(kTimingMonotonicity, now_ >= before && now_ >= until,
                      "channel clock regressed in advance()");
}

void DramChannel::drain() {
  // Small steps bound the time overshoot past the last completion; queues
  // being non-empty keeps the idle refresh fast-forward out of the loop.
  while (!read_q_.empty() || !write_q_.empty()) {
    advance(now_ + 64);
  }
  counters_.elapsed = now_;
  PLANARIA_ENSURE_MSG(kTimingMonotonicity,
                      read_q_.empty() && write_q_.empty(),
                      "drain() returned with queued requests");
}

void DramChannel::take_completions(std::vector<DramCompletion>& out) {
  // Most steps drain zero or one completion; a singleton is trivially sorted
  // and skipping the std::sort call entirely keeps that common case flat.
  if (completions_.size() > 1) {
    std::sort(completions_.begin(), completions_.end(),
              [](const DramCompletion& a, const DramCompletion& b) {
                return a.finish < b.finish;
              });
  }
  // Command scheduling clamps issue to max(now, arrival), so no burst can
  // complete before its request reached the controller. Each completion is
  // checked exactly once across the channel's lifetime.
  for (const auto& c : completions_) {
    PLANARIA_ENSURE_MSG(kTimingMonotonicity, c.finish >= c.arrival,
                        "data burst completed before its request arrived");
  }
  // clear() keeps out's capacity, so after the swap completions_ inherits it
  // and the next step's push_backs land in already-reserved storage.
  out.clear();
  out.swap(completions_);
}

std::vector<DramCompletion> DramChannel::take_completions() {
  // lint: no-contract(pure forwarder; the sink overload checks timing monotonicity)
  // lint: suppress(hot-alloc) convenience wrapper for tests; the simulator's step loop uses the sink overload above with a per-channel scratch buffer
  std::vector<DramCompletion> out;
  take_completions(out);
  return out;
}

void DramChannel::save_state(snapshot::Writer& w) const {
  w.tag(snapshot::tag4("DRM0"));
  w.u64(static_cast<std::uint64_t>(banks_.size()));
  for (const Bank& b : banks_) {
    w.b(b.row_open);
    w.u32(b.open_row);
    w.u64(b.act_allowed);
    w.u64(b.rdwr_allowed);
    w.u64(b.pre_allowed);
  }
  const auto save_queue = [&w](const std::vector<Queued>& q) {
    w.u64(static_cast<std::uint64_t>(q.size()));
    for (const Queued& e : q) {
      w.u64(e.req.local_block);
      w.u64(e.req.arrival);
      w.b(e.req.is_write);
      w.b(e.req.is_prefetch);
      w.u64(e.req.tag);
      w.u64(e.order);
      w.b(e.needed_act);
    }
  };
  save_queue(read_q_);
  save_queue(write_q_);
  w.u64(static_cast<std::uint64_t>(completions_.size()));
  for (const DramCompletion& c : completions_) {
    w.u64(c.tag);
    w.u64(c.arrival);
    w.u64(c.finish);
    w.b(c.is_write);
    w.b(c.is_prefetch);
    w.b(c.row_hit);
    w.b(c.forwarded);
  }
  w.u64(now_);
  w.u64(next_cmd_ok_);
  w.u64(next_read_ok_);
  w.u64(next_write_ok_);
  w.u64(static_cast<std::uint64_t>(ranks_.size()));
  for (const RankState& rs : ranks_) {
    w.u64(static_cast<std::uint64_t>(rs.act_count));
    for (std::size_t i = 0; i < rs.act_count; ++i) w.u64(rs.act_at(i));
    w.u64(rs.last_act);
    w.b(rs.have_last_act);
  }
  w.i64(last_burst_rank_);
  w.u64(last_burst_end_);
  w.u64(refresh_due_);
  w.i64(refresh_bank_rr_);
  w.u64(last_cmd_time_);
  w.b(ever_issued_);
  w.i64(postponed_refreshes_);
  w.b(draining_writes_);
  w.u64(order_counter_);
  w.u64(counters_.activates);
  w.u64(counters_.precharges);
  w.u64(counters_.reads);
  w.u64(counters_.writes);
  w.u64(counters_.refreshes);
  w.u64(counters_.refreshes_pb);
  w.u64(counters_.row_hits);
  w.u64(counters_.row_misses);
  w.u64(counters_.demand_reads);
  w.u64(counters_.prefetch_reads);
  w.u64(counters_.prefetch_drops);
  w.u64(counters_.read_queue_overflows);
  w.u64(counters_.forwarded_reads);
  w.u64(counters_.powerdown_entries);
  w.u64(counters_.powerdown_cycles);
  w.u64(counters_.elapsed);
  w.u64(counters_.busy_data_cycles);
}

void DramChannel::load_state(snapshot::Reader& r) {
  next_event_valid_ = false;  // derived state; never trust it across a restore
  r.expect_tag(snapshot::tag4("DRM0"));
  if (r.u64() != banks_.size()) {
    throw snapshot::SnapshotError("DRAM bank count mismatch");
  }
  for (Bank& b : banks_) {
    b.row_open = r.b();
    b.open_row = r.u32();
    b.act_allowed = r.u64();
    b.rdwr_allowed = r.u64();
    b.pre_allowed = r.u64();
  }
  const auto load_queue = [this, &r](std::vector<Queued>& q) {
    const std::uint64_t n = r.u64();
    q.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
      Queued e;
      e.req.local_block = r.u64();
      e.req.arrival = r.u64();
      e.req.is_write = r.b();
      e.req.is_prefetch = r.b();
      e.req.tag = r.u64();
      e.order = r.u64();
      e.needed_act = r.b();
      e.loc = mapper_.map(e.req.local_block);
      q.push_back(std::move(e));
    }
  };
  load_queue(read_q_);
  load_queue(write_q_);
  // Rebuild the derived write-queue membership shadow (first occurrence wins,
  // mirroring the pre-index forwarding scan on a crafted duplicate).
  write_blocks_.clear();
  for (const Queued& e : write_q_) {
    if (!write_blocks_.contains(e.req.local_block)) {
      write_blocks_.insert(e.req.local_block, 1);
    }
  }
  const std::uint64_t completion_count = r.u64();
  completions_.clear();
  for (std::uint64_t i = 0; i < completion_count; ++i) {
    DramCompletion c;
    c.tag = r.u64();
    c.arrival = r.u64();
    c.finish = r.u64();
    c.is_write = r.b();
    c.is_prefetch = r.b();
    c.row_hit = r.b();
    c.forwarded = r.b();
    completions_.push_back(c);
  }
  now_ = r.u64();
  next_cmd_ok_ = r.u64();
  next_read_ok_ = r.u64();
  next_write_ok_ = r.u64();
  if (r.u64() != ranks_.size()) {
    throw snapshot::SnapshotError("DRAM rank count mismatch");
  }
  for (RankState& rs : ranks_) {
    const std::uint64_t acts = r.u64();
    if (acts > RankState::kFawWindow) {
      throw snapshot::SnapshotError("rank ACT window larger than tFAW depth");
    }
    rs.clear_acts();
    for (std::uint64_t i = 0; i < acts; ++i) rs.push_act(r.u64());
    rs.last_act = r.u64();
    rs.have_last_act = r.b();
  }
  last_burst_rank_ = static_cast<int>(r.i64());
  last_burst_end_ = r.u64();
  refresh_due_ = r.u64();
  refresh_bank_rr_ = static_cast<int>(r.i64());
  last_cmd_time_ = r.u64();
  ever_issued_ = r.b();
  postponed_refreshes_ = static_cast<int>(r.i64());
  draining_writes_ = r.b();
  order_counter_ = r.u64();
  counters_.activates = r.u64();
  counters_.precharges = r.u64();
  counters_.reads = r.u64();
  counters_.writes = r.u64();
  counters_.refreshes = r.u64();
  counters_.refreshes_pb = r.u64();
  counters_.row_hits = r.u64();
  counters_.row_misses = r.u64();
  counters_.demand_reads = r.u64();
  counters_.prefetch_reads = r.u64();
  counters_.prefetch_drops = r.u64();
  counters_.read_queue_overflows = r.u64();
  counters_.forwarded_reads = r.u64();
  counters_.powerdown_entries = r.u64();
  counters_.powerdown_cycles = r.u64();
  counters_.elapsed = r.u64();
  counters_.busy_data_cycles = r.u64();
}

}  // namespace planaria::dram
