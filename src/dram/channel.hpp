// Cycle-level LPDDR4 channel controller.
//
// Models one of the four channels of Table 1's memory system: 8 banks with
// full state machines (ACT/PRE/RD/WR/REFab), every timing constraint from the
// TimingConfig, FR-FCFS scheduling with demand-over-prefetch priority and an
// anti-starvation age cap, buffered writes with high/low watermark draining,
// write-to-read forwarding, and all-bank refresh with LPDDR4-style
// postponement. The simulation is event-driven: time jumps straight to the
// next issuable command, so idle periods cost nothing.
//
// The controller is open-loop (trace-driven): demand requests are always
// accepted (an over-full read queue is counted, mirroring a stalled-bus
// condition), while prefetch requests are *dropped* when the queue is
// saturated — that drop is the natural throttle that keeps a prefetcher from
// monopolizing the channel.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/block_map.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "dram/config.hpp"
#include "snapshot/snapshot.hpp"

namespace planaria::dram {

struct DramRequest {
  std::uint64_t local_block = 0;  ///< channel-local block index
  Cycle arrival = 0;
  bool is_write = false;
  bool is_prefetch = false;
  std::uint64_t tag = 0;          ///< caller-chosen completion correlation id
};

struct DramCompletion {
  std::uint64_t tag = 0;
  Cycle arrival = 0;
  Cycle finish = 0;     ///< cycle the data burst completes
  bool is_write = false;
  bool is_prefetch = false;
  bool row_hit = false;
  bool forwarded = false;  ///< read served from the write queue
};

/// Raw command/occupancy counts consumed by the power model.
struct ChannelCounters {
  std::uint64_t activates = 0;
  std::uint64_t precharges = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t refreshes = 0;      ///< all-bank REFab commands
  std::uint64_t refreshes_pb = 0;   ///< per-bank REFpb commands
  std::uint64_t row_hits = 0;       ///< RD/WR issued to an already-open row
  std::uint64_t row_misses = 0;     ///< RD/WR that needed ACT (+PRE) first
  std::uint64_t demand_reads = 0;
  std::uint64_t prefetch_reads = 0;
  std::uint64_t prefetch_drops = 0; ///< prefetches rejected by a full queue
  std::uint64_t read_queue_overflows = 0;
  std::uint64_t forwarded_reads = 0;
  std::uint64_t powerdown_entries = 0;  ///< CKE-low entries (idle > tCKE)
  Cycle powerdown_cycles = 0;           ///< cycles spent powered down
  Cycle elapsed = 0;                ///< total simulated time
  Cycle busy_data_cycles = 0;       ///< cycles the data bus carried a burst
};

class DramChannel {
 public:
  explicit DramChannel(const DramConfig& config);

  /// Queues a request. `request.arrival` must be >= the time already advanced
  /// to. Returns false iff a prefetch was dropped due to queue saturation.
  bool submit(const DramRequest& request);

  /// Simulates command issue up to (and including) cycle `until`.
  void advance(Cycle until);

  /// Simulates until every queued request has completed.
  void drain();

  /// Fault-injection hook: holds the command bus idle for `cycles` from the
  /// current time, modelling a transient controller stall (thermal throttle,
  /// link retrain). Queued requests are preserved and issue once the stall
  /// lifts; only timing shifts, so no contract can fire from this class.
  void inject_stall(Cycle cycles) {
    next_cmd_ok_ = std::max(next_cmd_ok_, now_ + cycles);
    next_event_valid_ = false;
  }

  /// Completions accumulated since the last call (sorted by finish cycle).
  /// The sink overload swaps the pending buffer into `out` (cleared first),
  /// so a caller that reuses one scratch vector ping-pongs two allocations
  /// for the channel's whole lifetime instead of reallocating every step.
  void take_completions(std::vector<DramCompletion>& out);
  std::vector<DramCompletion> take_completions();

  /// True iff a data burst (or forwarded read) landed since the last
  /// take_completions(). Lets the per-record step skip the drain call on the
  /// many steps where nothing finished.
  bool has_completions() const { return !completions_.empty(); }

  Cycle now() const { return now_; }
  const ChannelCounters& counters() const { return counters_; }
  std::size_t read_queue_size() const { return read_q_.size(); }
  std::size_t write_queue_size() const { return write_q_.size(); }

  /// Checkpoint/restore (DESIGN.md §11): bank state machines, both request
  /// queues, pending completions, every timing horizon (command/data bus,
  /// tFAW windows, refresh schedule, power-down tracking) and all counters.
  /// Block locations are recomputed from the address mapper on load.
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

 private:
  struct Bank {
    bool row_open = false;
    std::uint32_t open_row = 0;
    Cycle act_allowed = 0;   ///< earliest next ACT (tRC, tRP after PRE, tRFC)
    Cycle rdwr_allowed = 0;  ///< earliest RD/WR after ACT (tRCD)
    Cycle pre_allowed = 0;   ///< earliest PRE (tRAS, tRTP, write recovery)
  };

  struct Queued {
    DramRequest req;
    BlockLocation loc;
    std::uint64_t order = 0;  ///< age for FCFS tie-breaks
    bool needed_act = false;  ///< a PRE/ACT was issued on this request's
                              ///< behalf => its RD/WR is not a row hit
  };

  enum class CmdKind { kActivate, kPrecharge, kReadWrite };

  struct Candidate {
    Cycle when = 0;
    CmdKind kind = CmdKind::kActivate;
    std::size_t index = 0;  ///< position in the active queue
    bool row_hit = false;
  };

  /// Earliest cycle the next command needed by `q` can issue.
  Candidate earliest_command(const Queued& q) const;

  Bank& bank_of(const BlockLocation& loc) {
    return banks_[static_cast<std::size_t>(loc.rank) *
                      static_cast<std::size_t>(config_.geometry.banks) +
                  static_cast<std::size_t>(loc.bank)];
  }
  const Bank& bank_of(const BlockLocation& loc) const {
    return const_cast<DramChannel*>(this)->bank_of(loc);
  }

  /// Picks the FR-FCFS winner from `queue`; returns false if empty.
  /// `min_when` receives the earliest issue time over ALL candidates (the
  /// winner's own time under anti-starvation) — the lower bound advance()
  /// caches as the channel's next event.
  bool pick(const std::vector<Queued>& queue, Candidate& out,
            Cycle& min_when) const;

  /// The original O(queue) FR-FCFS scan, kept verbatim as the oracle the
  /// production picker is cross-checked against under PLANARIA_DASSERT
  /// (debug / sanitizer builds): any divergence in (when, kind, index,
  /// row_hit) aborts.
  bool pick_matches_reference(const std::vector<Queued>& queue, bool found,
                              const Candidate& out) const;

  void issue(std::vector<Queued>& queue, const Candidate& cand);
  void perform_refresh(Cycle at);
  void perform_bank_refresh(Cycle at);
  Cycle rank_turnaround(Cycle t, int rank) const;

  /// Applies LPDDR4 power-down accounting: if the channel sat idle past tCKE
  /// since the last command, it entered CKE-low power-down and the next
  /// command at `when` pays the tXP exit penalty. Returns the adjusted time.
  Cycle exit_powerdown(Cycle when);
  bool write_drain_mode() const;
  Cycle rank_act_ready(Cycle t, int rank) const;

  DramConfig config_;
  AddressMapper mapper_;
  std::vector<Bank> banks_;
  // Request queues are vectors, not deques: FR-FCFS scans every entry per
  // pick and a contiguous scan is several times cheaper than chasing deque
  // map nodes. Entries leave from arbitrary positions (erase preserves FCFS
  // order); queue depth is capped by the controller config so the shift is
  // a few cache lines at worst.
  std::vector<Queued> read_q_;
  std::vector<Queued> write_q_;
  // Membership shadow of write_q_ by block: every read submitted probes the
  // write queue for store-to-load forwarding and every write probes it for
  // coalescing, so the common miss case must not pay a linear scan. Blocks
  // in write_q_ are unique (coalescing guarantees it), so presence is enough;
  // the rare coalesce hit still scans to find the entry to update. Derived
  // state: rebuilt from write_q_ on restore, never serialized.
  common::BlockMap<std::uint8_t> write_blocks_;
  std::vector<DramCompletion> completions_;

  Cycle now_ = 0;
  Cycle next_cmd_ok_ = 0;    ///< command-bus serialization (tCMD)
  Cycle next_read_ok_ = 0;   ///< data-bus + turnaround constraint for reads
  Cycle next_write_ok_ = 0;  ///< data-bus + turnaround constraint for writes
  /// Per-rank ACT tracking (tFAW window, tRRD). The tFAW window only ever
  /// needs the last four ACT times, so they live in a fixed ring (a deque
  /// here put a pointer chase on every ACT candidate evaluation). Snapshot
  /// encoding iterates oldest to newest — byte-identical to the deque it
  /// replaced.
  struct RankState {
    static constexpr std::size_t kFawWindow = 4;
    Cycle acts[kFawWindow] = {0, 0, 0, 0};
    std::size_t act_head = 0;   ///< slot of the oldest entry when full
    std::size_t act_count = 0;  ///< 0..kFawWindow
    Cycle last_act = 0;
    bool have_last_act = false;

    void push_act(Cycle when) {
      if (act_count < kFawWindow) {
        acts[(act_head + act_count) % kFawWindow] = when;
        ++act_count;
      } else {
        acts[act_head] = when;  // overwrite oldest == push_back + pop_front
        act_head = (act_head + 1) % kFawWindow;
      }
    }
    Cycle oldest_act() const { return acts[act_head]; }
    /// i-th entry, oldest first (for the canonical snapshot order).
    Cycle act_at(std::size_t i) const {
      return acts[(act_head + i) % kFawWindow];
    }
    void clear_acts() {
      act_head = 0;
      act_count = 0;
    }
  };
  std::vector<RankState> ranks_;
  int last_burst_rank_ = -1;  ///< for inter-rank tRTRS bus turnaround
  Cycle last_burst_end_ = 0;

  Cycle refresh_due_;
  Cycle refresh_interval_ = 0;  ///< deadline spacing, fixed by the config
  int refresh_bank_rr_ = 0;  ///< REFpb round-robin cursor
  Cycle last_cmd_time_ = 0;  ///< for power-down entry detection (tXP exits)
  bool ever_issued_ = false; ///< pre-init state is not billed as power-down
  int postponed_refreshes_ = 0;
  bool draining_writes_ = false;
  std::uint64_t order_counter_ = 0;
  ChannelCounters counters_;

  // Next-event cache (NOT serialized — pure derived state). When valid, no
  // command can issue strictly before next_event_when_ as long as the
  // queues, bank and bus state are untouched; candidate issue times do not
  // depend on now_ below that bound, so jumping the clock is exact. Set
  // when advance() stops with nothing issuable by its horizon; invalidated
  // by submit(), inject_stall() and load_state(). Refresh deadlines are
  // checked separately against refresh_due_. Lets advance() jump to `until`
  // in O(1) instead of re-running the refresh/hysteresis/pick preamble only
  // to conclude "nothing yet".
  bool next_event_valid_ = false;
  Cycle next_event_when_ = 0;

  /// Requests older than this many cycles win over row hits (anti-starvation).
  static constexpr Cycle kStarvationAge = 2000;

  /// A prefetch only issues when no demand could go within this many cycles
  /// of it (prefetches fill idle slots; they never displace demand service).
  static constexpr Cycle kPrefetchSlack = 0;
};

}  // namespace planaria::dram
