// Cycle-level LPDDR4 channel controller.
//
// Models one of the four channels of Table 1's memory system: 8 banks with
// full state machines (ACT/PRE/RD/WR/REFab), every timing constraint from the
// TimingConfig, FR-FCFS scheduling with demand-over-prefetch priority and an
// anti-starvation age cap, buffered writes with high/low watermark draining,
// write-to-read forwarding, and all-bank refresh with LPDDR4-style
// postponement. The simulation is event-driven: time jumps straight to the
// next issuable command, so idle periods cost nothing.
//
// The controller is open-loop (trace-driven): demand requests are always
// accepted (an over-full read queue is counted, mirroring a stalled-bus
// condition), while prefetch requests are *dropped* when the queue is
// saturated — that drop is the natural throttle that keeps a prefetcher from
// monopolizing the channel.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "dram/config.hpp"
#include "snapshot/snapshot.hpp"

namespace planaria::dram {

struct DramRequest {
  std::uint64_t local_block = 0;  ///< channel-local block index
  Cycle arrival = 0;
  bool is_write = false;
  bool is_prefetch = false;
  std::uint64_t tag = 0;          ///< caller-chosen completion correlation id
};

struct DramCompletion {
  std::uint64_t tag = 0;
  Cycle arrival = 0;
  Cycle finish = 0;     ///< cycle the data burst completes
  bool is_write = false;
  bool is_prefetch = false;
  bool row_hit = false;
  bool forwarded = false;  ///< read served from the write queue
};

/// Raw command/occupancy counts consumed by the power model.
struct ChannelCounters {
  std::uint64_t activates = 0;
  std::uint64_t precharges = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t refreshes = 0;      ///< all-bank REFab commands
  std::uint64_t refreshes_pb = 0;   ///< per-bank REFpb commands
  std::uint64_t row_hits = 0;       ///< RD/WR issued to an already-open row
  std::uint64_t row_misses = 0;     ///< RD/WR that needed ACT (+PRE) first
  std::uint64_t demand_reads = 0;
  std::uint64_t prefetch_reads = 0;
  std::uint64_t prefetch_drops = 0; ///< prefetches rejected by a full queue
  std::uint64_t read_queue_overflows = 0;
  std::uint64_t forwarded_reads = 0;
  std::uint64_t powerdown_entries = 0;  ///< CKE-low entries (idle > tCKE)
  Cycle powerdown_cycles = 0;           ///< cycles spent powered down
  Cycle elapsed = 0;                ///< total simulated time
  Cycle busy_data_cycles = 0;       ///< cycles the data bus carried a burst
};

class DramChannel {
 public:
  explicit DramChannel(const DramConfig& config);

  /// Queues a request. `request.arrival` must be >= the time already advanced
  /// to. Returns false iff a prefetch was dropped due to queue saturation.
  bool submit(const DramRequest& request);

  /// Simulates command issue up to (and including) cycle `until`.
  void advance(Cycle until);

  /// Simulates until every queued request has completed.
  void drain();

  /// Fault-injection hook: holds the command bus idle for `cycles` from the
  /// current time, modelling a transient controller stall (thermal throttle,
  /// link retrain). Queued requests are preserved and issue once the stall
  /// lifts; only timing shifts, so no contract can fire from this class.
  void inject_stall(Cycle cycles) {
    next_cmd_ok_ = std::max(next_cmd_ok_, now_ + cycles);
  }

  /// Completions accumulated since the last call (sorted by finish cycle).
  /// The sink overload swaps the pending buffer into `out` (cleared first),
  /// so a caller that reuses one scratch vector ping-pongs two allocations
  /// for the channel's whole lifetime instead of reallocating every step.
  void take_completions(std::vector<DramCompletion>& out);
  std::vector<DramCompletion> take_completions();

  Cycle now() const { return now_; }
  const ChannelCounters& counters() const { return counters_; }
  std::size_t read_queue_size() const { return read_q_.size(); }
  std::size_t write_queue_size() const { return write_q_.size(); }

  /// Checkpoint/restore (DESIGN.md §11): bank state machines, both request
  /// queues, pending completions, every timing horizon (command/data bus,
  /// tFAW windows, refresh schedule, power-down tracking) and all counters.
  /// Block locations are recomputed from the address mapper on load.
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

 private:
  struct Bank {
    bool row_open = false;
    std::uint32_t open_row = 0;
    Cycle act_allowed = 0;   ///< earliest next ACT (tRC, tRP after PRE, tRFC)
    Cycle rdwr_allowed = 0;  ///< earliest RD/WR after ACT (tRCD)
    Cycle pre_allowed = 0;   ///< earliest PRE (tRAS, tRTP, write recovery)
  };

  struct Queued {
    DramRequest req;
    BlockLocation loc;
    std::uint64_t order = 0;  ///< age for FCFS tie-breaks
    bool needed_act = false;  ///< a PRE/ACT was issued on this request's
                              ///< behalf => its RD/WR is not a row hit
  };

  enum class CmdKind { kActivate, kPrecharge, kReadWrite };

  struct Candidate {
    Cycle when = 0;
    CmdKind kind = CmdKind::kActivate;
    std::size_t index = 0;  ///< position in the active queue
    bool row_hit = false;
  };

  /// Earliest cycle the next command needed by `q` can issue.
  Candidate earliest_command(const Queued& q) const;

  Bank& bank_of(const BlockLocation& loc) {
    return banks_[static_cast<std::size_t>(loc.rank) *
                      static_cast<std::size_t>(config_.geometry.banks) +
                  static_cast<std::size_t>(loc.bank)];
  }
  const Bank& bank_of(const BlockLocation& loc) const {
    return const_cast<DramChannel*>(this)->bank_of(loc);
  }

  /// Picks the FR-FCFS winner from `queue`; returns false if empty.
  bool pick(const std::deque<Queued>& queue, Candidate& out) const;

  void issue(std::deque<Queued>& queue, const Candidate& cand);
  void perform_refresh(Cycle at);
  void perform_bank_refresh(Cycle at);
  Cycle rank_turnaround(Cycle t, int rank) const;

  /// Applies LPDDR4 power-down accounting: if the channel sat idle past tCKE
  /// since the last command, it entered CKE-low power-down and the next
  /// command at `when` pays the tXP exit penalty. Returns the adjusted time.
  Cycle exit_powerdown(Cycle when);
  bool write_drain_mode() const;
  Cycle rank_act_ready(Cycle t, int rank) const;

  DramConfig config_;
  AddressMapper mapper_;
  std::vector<Bank> banks_;
  std::deque<Queued> read_q_;
  std::deque<Queued> write_q_;
  std::vector<DramCompletion> completions_;

  Cycle now_ = 0;
  Cycle next_cmd_ok_ = 0;    ///< command-bus serialization (tCMD)
  Cycle next_read_ok_ = 0;   ///< data-bus + turnaround constraint for reads
  Cycle next_write_ok_ = 0;  ///< data-bus + turnaround constraint for writes
  /// Per-rank ACT tracking (tFAW window, tRRD).
  struct RankState {
    std::deque<Cycle> recent_acts;
    Cycle last_act = 0;
    bool have_last_act = false;
  };
  std::vector<RankState> ranks_;
  int last_burst_rank_ = -1;  ///< for inter-rank tRTRS bus turnaround
  Cycle last_burst_end_ = 0;

  Cycle refresh_due_;
  int refresh_bank_rr_ = 0;  ///< REFpb round-robin cursor
  Cycle last_cmd_time_ = 0;  ///< for power-down entry detection (tXP exits)
  bool ever_issued_ = false; ///< pre-init state is not billed as power-down
  int postponed_refreshes_ = 0;
  bool draining_writes_ = false;
  std::uint64_t order_counter_ = 0;
  ChannelCounters counters_;

  /// Requests older than this many cycles win over row hits (anti-starvation).
  static constexpr Cycle kStarvationAge = 2000;

  /// A prefetch only issues when no demand could go within this many cycles
  /// of it (prefetches fill idle slots; they never displace demand service).
  static constexpr Cycle kPrefetchSlack = 0;
};

}  // namespace planaria::dram
