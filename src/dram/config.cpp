#include "dram/config.hpp"

#include <string>

namespace planaria::dram {

namespace {

void require(bool ok, const std::string& what) {
  if (!ok) throw std::invalid_argument("dram config: " + what);
}

}  // namespace

void TimingConfig::validate() const {
  require(tRAS > 0 && tRCD > 0 && tRRD > 0 && tRC > 0 && tRP > 0 && tCCD > 0 &&
              tRTP > 0 && tWTR > 0 && tWR > 0 && tRTRS >= 0 && tRFC > 0 &&
              tFAW > 0 && tCKE > 0 && tXP > 0 && tCMD > 0,
          "all timing parameters must be positive");
  require(tCL > 0 && tCWL > 0 && tREFI > 0 && tRFCpb > 0,
          "latency parameters must be positive");
  require(burst_length > 0 && burst_length % 2 == 0,
          "burst length must be a positive even number");
  require(tRC >= tRAS, "tRC must cover tRAS");
  require(tFAW >= tRRD, "tFAW must be at least tRRD");
  require(tREFI > tRFC, "tREFI must exceed tRFC or refresh starves the bus");
}

void GeometryConfig::validate() const {
  require(channels > 0 && ranks > 0 && banks > 0 && rows > 0 && blocks_per_row > 0,
          "geometry must be positive");
  require((banks & (banks - 1)) == 0, "banks must be a power of two");
  require((blocks_per_row & (blocks_per_row - 1)) == 0,
          "blocks_per_row must be a power of two");
}

void ControllerConfig::validate() const {
  require(read_queue_depth > 0 && write_queue_depth > 0, "queues must be positive");
  require(write_drain_high > write_drain_low && write_drain_low >= 0,
          "write drain thresholds inverted");
  require(write_drain_high <= write_queue_depth,
          "drain-high exceeds write queue depth");
  require(max_postponed_refreshes >= 0, "negative refresh postponement");
  require(powerdown_idle_threshold > 0, "power-down threshold must be positive");
}

}  // namespace planaria::dram
