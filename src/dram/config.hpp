// LPDDR4 geometry and timing configuration.
//
// Timing values default to the paper's Table 1 (all in memory-controller
// clock cycles): tRAS=51, tRCD=16, tRRD=12, tRC=76, tRP=16, tCCD=8, tRTP=9,
// tWTR=12, tWR=22, tRTRS=2, tRFC=216, tFAW=48, tCKE=9, tXP=9, tCMD=1,
// burst length 16. The table omits CAS latencies and the refresh interval;
// we fill those from the LPDDR4-3200 speed grade the table's values imply
// (RL=28, WL=14, tREFI approx 3.9us at 1.6 GHz controller clock).
#pragma once

#include <cstdint>
#include <stdexcept>

#include "common/types.hpp"

namespace planaria::dram {

struct TimingConfig {
  // --- Table 1 values ---
  int tRAS = 51;   ///< ACT -> PRE, same bank
  int tRCD = 16;   ///< ACT -> RD/WR, same bank
  int tRRD = 12;   ///< ACT -> ACT, different banks, same rank
  int tRC = 76;    ///< ACT -> ACT, same bank
  int tRP = 16;    ///< PRE -> ACT, same bank
  int tCCD = 8;    ///< RD -> RD / WR -> WR burst spacing (= burst cycles)
  int tRTP = 9;    ///< RD -> PRE, same bank
  int tWTR = 12;   ///< end of write data -> RD, same rank
  int tWR = 22;    ///< end of write data -> PRE, same bank
  int tRTRS = 2;   ///< rank-to-rank / read-to-write bus turnaround pad
  int tRFC = 216;  ///< all-bank refresh cycle time
  int tFAW = 48;   ///< four-activate window
  int tCKE = 9;    ///< CKE minimum pulse (power-down entry)
  int tXP = 9;     ///< power-down exit -> any command
  int tCMD = 1;    ///< command bus occupancy
  int burst_length = 16;  ///< BL16, double data rate => 8 bus clocks of data

  // --- filled-in LPDDR4-3200 values (not in Table 1) ---
  int tCL = 28;    ///< read latency (RL)
  int tCWL = 14;   ///< write latency (WL)
  int tREFI = 6240;  ///< average all-bank refresh interval (~3.9us @ 1.6GHz)
  int tRFCpb = 108;  ///< per-bank refresh cycle time (~half of tRFCab)

  /// Data-bus clocks one burst occupies (DDR: BL/2).
  int burst_cycles() const { return burst_length / 2; }

  /// Throws std::invalid_argument if any constraint is non-positive or
  /// mutually inconsistent (e.g. tRC < tRAS + tRP).
  void validate() const;
};

struct GeometryConfig {
  int channels = kChannels;  ///< Table 1: 4 channels
  int ranks = 1;             ///< 1 rank per channel
  int banks = 8;             ///< 8 banks per channel
  int rows = 1 << 15;        ///< rows per bank
  int blocks_per_row = 32;   ///< 2KB row / 64B blocks

  void validate() const;
};

/// Per-channel read/write queue sizing and scheduling policy knobs.
struct ControllerConfig {
  int read_queue_depth = 64;
  int write_queue_depth = 64;
  int write_drain_high = 48;  ///< start draining writes at this occupancy
  int write_drain_low = 16;   ///< stop draining at this occupancy
  int max_postponed_refreshes = 8;  ///< LPDDR4 allows postponing up to 8
  int powerdown_idle_threshold = 128;  ///< idle cycles before CKE-low entry
                                       ///< (controller policy; >= tCKE)
  bool per_bank_refresh = false;  ///< REFpb instead of REFab: one bank at a
                                  ///< time at banks-times the rate, leaving
                                  ///< the other banks serving (the LPDDR4
                                  ///< feature mobile controllers lean on)

  void validate() const;
};

struct DramConfig {
  TimingConfig timing;
  GeometryConfig geometry;
  ControllerConfig controller;

  void validate() const {
    timing.validate();
    geometry.validate();
    controller.validate();
  }
};

/// Physical location of a block within one channel.
struct BlockLocation {
  int rank = 0;
  int bank = 0;
  std::uint32_t row = 0;
  int column = 0;  ///< block index within the row
};

/// Maps a channel-local block index to (rank, bank, row, column) with
/// column:bank:rank:row ordering (low bits = column) so that consecutive
/// pages interleave across banks (and ranks, when present) and sequential
/// traffic earns row hits. Table 1 uses 1 rank per channel; the rank digit
/// then decodes to 0 everywhere and the layout is unchanged.
// lint: suppress(snapshot-missing) geometry_ is derived from config at construction; nothing mutates
class AddressMapper {
 public:
  explicit AddressMapper(const GeometryConfig& g) : geometry_(g) {}

  BlockLocation map(std::uint64_t local_block) const {
    BlockLocation loc;
    loc.column = static_cast<int>(local_block %
                                  static_cast<std::uint64_t>(geometry_.blocks_per_row));
    std::uint64_t rest = local_block / static_cast<std::uint64_t>(geometry_.blocks_per_row);
    loc.bank = static_cast<int>(rest % static_cast<std::uint64_t>(geometry_.banks));
    rest /= static_cast<std::uint64_t>(geometry_.banks);
    loc.rank = static_cast<int>(rest % static_cast<std::uint64_t>(geometry_.ranks));
    rest /= static_cast<std::uint64_t>(geometry_.ranks);
    loc.row = static_cast<std::uint32_t>(rest % static_cast<std::uint64_t>(geometry_.rows));
    return loc;
  }

  /// Channel-local block index for a physical address: the two channel-select
  /// bits [11:10] are removed, concatenating page number with the 4-bit
  /// block-in-segment index.
  static std::uint64_t local_block(Address a) {
    return (addr::page_number(a) << 4) |
           static_cast<std::uint64_t>(addr::block_in_segment(a));
  }

 private:
  GeometryConfig geometry_;
};

}  // namespace planaria::dram
