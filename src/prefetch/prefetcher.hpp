// Memory-side prefetcher interface.
//
// A prefetcher instance is attached to one system-cache channel slice and
// observes every demand access that channel sees. Crucially — and this is the
// constraint the whole paper revolves around — the event carries NO program
// counter: at the SC level the reference stream is an anonymous interleaving
// of CPU clusters, GPU, NPU, ISP and DSP traffic, identified at best by a
// device id. All candidates evaluated here (Planaria, BOP, SPP, stride,
// next-line) operate within that constraint.
//
// Coordinates: prefetchers work on channel-local block indices
// (page_number * 16 + block_in_segment), the same coordinate space as the
// DRAM controller and cache slice.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/system_cache.hpp"
#include "common/types.hpp"
#include "snapshot/snapshot.hpp"

namespace planaria::fault {
class FaultInjector;
}  // namespace planaria::fault

namespace planaria::prefetch {

/// One demand access as observed by a channel's prefetcher.
struct DemandEvent {
  std::uint64_t local_block = 0;  ///< channel-local block index
  PageNumber page = 0;            ///< physical page number
  int block_in_segment = 0;       ///< 0..15 within this channel's segment
  Cycle now = 0;                  ///< arrival time
  AccessType type = AccessType::kRead;
  DeviceId device = DeviceId::kCpuBig;
  bool sc_hit = false;            ///< did the access hit in the SC slice
  bool hit_was_prefetch = false;  ///< the hit consumed a prefetched line
};

struct PrefetchRequest {
  std::uint64_t local_block = 0;
  cache::FillSource source = cache::FillSource::kPrefetchOther;
};

class Prefetcher : public snapshot::Snapshottable {
 public:
  ~Prefetcher() override = default;

  /// Observes one demand access and appends any prefetch requests to `out`.
  /// The simulator deduplicates against cache contents and in-flight fills.
  virtual void on_demand(const DemandEvent& event,
                         std::vector<PrefetchRequest>& out) = 0;

  /// Notifies that a fill (demand or prefetch) completed for `local_block`
  /// at `now`. BOP trains its recent-requests table from this; pattern-based
  /// prefetchers ignore it.
  virtual void on_fill(std::uint64_t local_block, bool was_prefetch, Cycle now);

  virtual const char* name() const = 0;

  /// Metadata storage this prefetcher requires per channel, in bits. Used by
  /// the Table "storage overhead" bench and the SRAM power model.
  virtual std::uint64_t storage_bits() const = 0;

  /// Attaches the channel's fault injector (src/fault) so metadata-corruption
  /// fault classes can flip bits in this prefetcher's tables. Default: the
  /// prefetcher has no injectable storage and ignores the hook. Passing
  /// nullptr detaches. The injector outlives the prefetcher's use of it (the
  /// simulator owns both with channel lifetime).
  virtual void set_fault_injector(fault::FaultInjector* injector) {
    (void)injector;
  }

  /// Snapshottable defaults for the stateless prefetchers (none, next-line):
  /// no bytes written, none consumed. Every prefetcher with learning state
  /// overrides both — the crash-recovery audit's bit-identity gate catches a
  /// stateful implementation that forgets to.
  void save_state(snapshot::Writer& w) const override { (void)w; }
  void load_state(snapshot::Reader& r) override { (void)r; }
};

inline void Prefetcher::on_fill(std::uint64_t, bool, Cycle) {}

/// The no-prefetcher baseline.
class NullPrefetcher final : public Prefetcher {
 public:
  void on_demand(const DemandEvent&, std::vector<PrefetchRequest>&) override {}
  const char* name() const override { return "none"; }
  std::uint64_t storage_bits() const override { return 0; }
};

}  // namespace planaria::prefetch
