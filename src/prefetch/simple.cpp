#include "prefetch/simple.hpp"

#include <stdexcept>

namespace planaria::prefetch {

NextLinePrefetcher::NextLinePrefetcher(int degree) : degree_(degree) {
  if (degree <= 0) throw std::invalid_argument("next-line: degree must be positive");
}

void NextLinePrefetcher::on_demand(const DemandEvent& event,
                                   std::vector<PrefetchRequest>& out) {
  if (event.sc_hit) return;
  for (int i = 1; i <= degree_; ++i) {
    out.push_back(PrefetchRequest{event.local_block + static_cast<std::uint64_t>(i),
                                  cache::FillSource::kPrefetchOther});
  }
}

StridePrefetcher::StridePrefetcher(int degree) : degree_(degree) {
  if (degree <= 0) throw std::invalid_argument("stride: degree must be positive");
}

void StridePrefetcher::on_demand(const DemandEvent& event,
                                 std::vector<PrefetchRequest>& out) {
  Stream& s = streams_[static_cast<int>(event.device)];
  if (!s.valid) {
    s = Stream{event.local_block, 0, 0, true};
    return;
  }
  const std::int64_t delta = static_cast<std::int64_t>(event.local_block) -
                             static_cast<std::int64_t>(s.last_block);
  if (delta == 0) return;
  if (delta == s.stride) {
    if (s.confidence < 3) ++s.confidence;
  } else {
    s.stride = delta;
    s.confidence = 1;
  }
  s.last_block = event.local_block;
  if (s.confidence < 2) return;
  std::int64_t target = static_cast<std::int64_t>(event.local_block);
  for (int i = 0; i < degree_; ++i) {
    target += s.stride;
    if (target < 0) break;
    out.push_back(PrefetchRequest{static_cast<std::uint64_t>(target),
                                  cache::FillSource::kPrefetchOther});
  }
}

std::uint64_t StridePrefetcher::storage_bits() const {
  // Per device: last block (40) + stride (16) + confidence (2) + valid (1).
  return static_cast<std::uint64_t>(static_cast<int>(DeviceId::kCount)) * 59;
}

void StridePrefetcher::save_state(snapshot::Writer& w) const {
  w.tag(snapshot::tag4("STR0"));
  for (const Stream& s : streams_) {
    w.u64(s.last_block);
    w.i64(s.stride);
    w.i64(s.confidence);
    w.b(s.valid);
  }
}

void StridePrefetcher::load_state(snapshot::Reader& r) {
  r.expect_tag(snapshot::tag4("STR0"));
  for (Stream& s : streams_) {
    s.last_block = r.u64();
    s.stride = r.i64();
    s.confidence = static_cast<int>(r.i64());
    s.valid = r.b();
  }
}

}  // namespace planaria::prefetch
