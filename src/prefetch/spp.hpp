// Signature Path Prefetcher (Kim et al., MICRO 2016), adapted to the memory
// side.
//
// SPP compresses the recent delta history of each page into a 12-bit
// signature, learns "signature -> next delta" transitions with confidence
// counters, and walks the learned path speculatively (lookahead), issuing
// prefetches while the multiplicative path confidence stays above threshold.
// A small Global History Register carries a signature across page boundaries
// so a brand-new page can start prefetching immediately.
//
// SPP is PC-free by design (signatures are per-page, not per-instruction),
// which is why the paper selects it as the stronger baseline for the SC. Its
// weakness there is the same one Observation 1 documents: the intra-page
// *order* of footprint blocks is shuffled by the higher cache levels, so the
// delta sequence is unstable and path confidence decays, costing coverage —
// SPP helps (AMAT -10.8% in the paper's motivation) but leaves most of the
// opportunity on the table.
//
// In this per-channel instantiation a "page" is the channel's 16-block
// segment of a 4KB page, so deltas span [-15, +15].
#pragma once

#include <cstdint>
#include <vector>

#include "common/table.hpp"
#include "prefetch/prefetcher.hpp"

namespace planaria::prefetch {

struct SppConfig {
  int st_entries = 256;         ///< signature table (page -> sig, last offset)
  int pt_entries = 1024;         ///< pattern table (sig -> delta candidates)
  int deltas_per_entry = 4;
  int counter_max = 15;         ///< 4-bit saturating confidence counters
  double fill_threshold = 0.30; ///< issue while path confidence >= this
  int max_lookahead = 6;        ///< cap on speculative path depth
  double global_accuracy = 0.9; ///< per-step path-confidence damping
  int ghr_entries = 8;

  void validate() const;
};

class SignaturePathPrefetcher final : public Prefetcher {
 public:
  explicit SignaturePathPrefetcher(const SppConfig& config = {});

  void on_demand(const DemandEvent& event,
                 std::vector<PrefetchRequest>& out) override;

  const char* name() const override { return "spp"; }
  std::uint64_t storage_bits() const override;

  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;

 private:
  struct StEntry {
    std::uint16_t signature = 0;
    int last_offset = 0;
  };

  struct DeltaSlot {
    int delta = 0;
    int counter = 0;
  };

  struct PtEntry {
    int sig_counter = 0;
    std::vector<DeltaSlot> slots;
  };

  struct GhrEntry {
    std::uint16_t signature = 0;
    double confidence = 0.0;
    int last_offset = 0;
    int delta = 0;
    bool valid = false;
  };

  static std::uint16_t fold(std::uint16_t sig, int delta) {
    const auto d = static_cast<std::uint16_t>(delta & 0x3F);
    return static_cast<std::uint16_t>(((sig << 3) ^ d) & 0xFFF);
  }

  PtEntry& pattern(std::uint16_t sig) {
    return pt_[sig % pt_.size()];
  }

  void learn(std::uint16_t sig, int delta);

  SppConfig config_;
  LruTable<PageNumber, StEntry> st_;
  std::vector<PtEntry> pt_;
  std::vector<GhrEntry> ghr_;
  std::size_t ghr_next_ = 0;
};

}  // namespace planaria::prefetch
