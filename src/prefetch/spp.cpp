#include "prefetch/spp.hpp"

#include <stdexcept>

#include "common/assert.hpp"

namespace planaria::prefetch {

void SppConfig::validate() const {
  if (st_entries <= 0 || pt_entries <= 0 || deltas_per_entry <= 0 ||
      counter_max <= 0 || max_lookahead <= 0 || ghr_entries <= 0) {
    throw std::invalid_argument("spp config: parameters must be positive");
  }
  if (fill_threshold <= 0.0 || fill_threshold > 1.0 || global_accuracy <= 0.0 ||
      global_accuracy > 1.0) {
    throw std::invalid_argument("spp config: thresholds must be in (0, 1]");
  }
}

SignaturePathPrefetcher::SignaturePathPrefetcher(const SppConfig& config)
    : config_(config),
      st_(static_cast<std::size_t>(config.st_entries)),
      pt_(static_cast<std::size_t>(config.pt_entries)),
      ghr_(static_cast<std::size_t>(config.ghr_entries)) {
  config_.validate();
  for (auto& e : pt_) e.slots.reserve(static_cast<std::size_t>(config_.deltas_per_entry));
}

void SignaturePathPrefetcher::learn(std::uint16_t sig, int delta) {
  PtEntry& entry = pattern(sig);
  if (entry.sig_counter >= config_.counter_max) {
    // Saturating: age everything so newer behaviour can displace stale deltas.
    entry.sig_counter /= 2;
    for (auto& s : entry.slots) s.counter /= 2;
  }
  ++entry.sig_counter;
  for (auto& s : entry.slots) {
    if (s.delta == delta) {
      if (s.counter < config_.counter_max) ++s.counter;
      return;
    }
  }
  if (entry.slots.size() < static_cast<std::size_t>(config_.deltas_per_entry)) {
    entry.slots.push_back(DeltaSlot{delta, 1});
    return;
  }
  // Replace the weakest delta slot.
  DeltaSlot* weakest = &entry.slots[0];
  for (auto& s : entry.slots) {
    if (s.counter < weakest->counter) weakest = &s;
  }
  *weakest = DeltaSlot{delta, 1};
}

void SignaturePathPrefetcher::on_demand(const DemandEvent& event,
                                        std::vector<PrefetchRequest>& out) {
  // Writes train the delta chain too: at the SC level a DMA stream mixes
  // reads and writes, and skipping either would shred the delta sequence.
  const int offset = event.block_in_segment;
  std::uint16_t sig;
  double conf = 1.0;

  if (StEntry* st = st_.find(event.page); st != nullptr) {
    const int delta = offset - st->last_offset;
    if (delta == 0) return;  // same block re-touch carries no pattern info
    learn(st->signature, delta);
    sig = fold(st->signature, delta);
    st->signature = sig;
    st->last_offset = offset;
  } else {
    // New page: try to inherit a signature from a lookahead path that walked
    // off the end of a previous page (GHR), else bootstrap from the offset.
    sig = static_cast<std::uint16_t>(offset + 1);
    for (const auto& g : ghr_) {
      if (g.valid && ((g.last_offset + g.delta) & 0xF) == offset) {
        sig = fold(g.signature, g.delta);
        conf = g.confidence;
        break;
      }
    }
    st_.insert(event.page, StEntry{sig, offset});
  }

  // Lookahead walk: follow the strongest delta chain while confident.
  int pf_offset = offset;
  std::uint16_t path_sig = sig;
  for (int depth = 0; depth < config_.max_lookahead; ++depth) {
    const PtEntry& entry = pattern(path_sig);
    if (entry.sig_counter == 0 || entry.slots.empty()) break;
    const DeltaSlot* best = &entry.slots[0];
    for (const auto& s : entry.slots) {
      if (s.counter > best->counter) best = &s;
    }
    conf *= config_.global_accuracy * static_cast<double>(best->counter) /
            static_cast<double>(entry.sig_counter);
    if (conf < config_.fill_threshold) break;

    pf_offset += best->delta;
    const std::int64_t target =
        static_cast<std::int64_t>(event.page) * kBlocksPerSegment + pf_offset;
    if (target < 0) break;
    if (pf_offset < 0 || pf_offset >= kBlocksPerSegment) {
      // Path crosses the page boundary: remember it in the GHR so the next
      // page starts warm, and keep prefetching into the neighboring page
      // (the channel-local block space is linear).
      ghr_[ghr_next_] = GhrEntry{path_sig, conf, pf_offset - best->delta,
                                 best->delta, true};
      ghr_next_ = (ghr_next_ + 1) % ghr_.size();
    }
    out.push_back(PrefetchRequest{static_cast<std::uint64_t>(target),
                                  cache::FillSource::kPrefetchOther});
    path_sig = fold(path_sig, best->delta);
  }
}

std::uint64_t SignaturePathPrefetcher::storage_bits() const {
  // ST: tag(16) + sig(12) + last offset(4) + LRU(8) per entry.
  // PT: sig counter(4) + 4 x (delta 6 + counter 4) per entry.
  // GHR: sig(12) + conf(8) + offset(5) + delta(6) per entry.
  const std::uint64_t st_bits =
      static_cast<std::uint64_t>(config_.st_entries) * (16 + 12 + 4 + 8);
  const std::uint64_t pt_bits =
      static_cast<std::uint64_t>(config_.pt_entries) *
      (4 + static_cast<std::uint64_t>(config_.deltas_per_entry) * 10);
  const std::uint64_t ghr_bits =
      static_cast<std::uint64_t>(config_.ghr_entries) * (12 + 8 + 5 + 6);
  return st_bits + pt_bits + ghr_bits;
}

void SignaturePathPrefetcher::save_state(snapshot::Writer& w) const {
  w.tag(snapshot::tag4("SPP0"));
  st_.save_state(w, [](snapshot::Writer& o, const StEntry& e) {
    o.u16(e.signature);
    o.i64(e.last_offset);
  });
  w.u64(static_cast<std::uint64_t>(pt_.size()));
  for (const PtEntry& e : pt_) {
    w.i64(e.sig_counter);
    w.u32(static_cast<std::uint32_t>(e.slots.size()));
    for (const DeltaSlot& s : e.slots) {
      w.i64(s.delta);
      w.i64(s.counter);
    }
  }
  w.u64(static_cast<std::uint64_t>(ghr_.size()));
  for (const GhrEntry& e : ghr_) {
    w.u16(e.signature);
    w.f64(e.confidence);
    w.i64(e.last_offset);
    w.i64(e.delta);
    w.b(e.valid);
  }
  w.u64(static_cast<std::uint64_t>(ghr_next_));
}

void SignaturePathPrefetcher::load_state(snapshot::Reader& r) {
  r.expect_tag(snapshot::tag4("SPP0"));
  st_.load_state(r, [](snapshot::Reader& i) {
    StEntry e;
    e.signature = i.u16();
    e.last_offset = static_cast<int>(i.i64());
    return e;
  });
  if (r.u64() != pt_.size()) {
    throw snapshot::SnapshotError("SPP pattern table size mismatch");
  }
  for (PtEntry& e : pt_) {
    e.sig_counter = static_cast<int>(r.i64());
    const std::uint32_t n = r.u32();
    if (n > static_cast<std::uint32_t>(config_.deltas_per_entry)) {
      throw snapshot::SnapshotError("SPP delta slot count exceeds config");
    }
    e.slots.assign(n, DeltaSlot{});
    for (DeltaSlot& s : e.slots) {
      s.delta = static_cast<int>(r.i64());
      s.counter = static_cast<int>(r.i64());
    }
  }
  if (r.u64() != ghr_.size()) {
    throw snapshot::SnapshotError("SPP GHR size mismatch");
  }
  for (GhrEntry& e : ghr_) {
    e.signature = r.u16();
    e.confidence = r.f64();
    e.last_offset = static_cast<int>(r.i64());
    e.delta = static_cast<int>(r.i64());
    e.valid = r.b();
  }
  ghr_next_ = static_cast<std::size_t>(r.u64());
  if (!ghr_.empty() && ghr_next_ >= ghr_.size()) {
    throw snapshot::SnapshotError("SPP GHR cursor out of range");
  }
}

}  // namespace planaria::prefetch
