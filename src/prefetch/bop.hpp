// Best-Offset Prefetcher (Michaud, HPCA 2016), adapted to the memory side.
//
// BOP learns a single best prefetch offset D by scoring candidate offsets
// against a Recent Requests (RR) table: offset d scores a point when the
// current trigger address X was preceded by a completed fill of X - d within
// the RR window — i.e. prefetching with offset d would have been timely. At
// the end of a learning round the highest-scoring offset becomes D; if even
// the best score is poor, prefetch turns off until a later round rehabilitates
// an offset.
//
// This is the paper's first baseline. It needs no PC, so it deploys at the SC
// unchanged; the evaluation shows its weakness there: the SC's shuffled
// intra-page order has no stable offset, so BOP either mistrains or fires a
// constant offset into noise, generating the +23.4% traffic the paper
// measures.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hpp"

namespace planaria::prefetch {

struct BopConfig {
  int score_max = 31;     ///< round ends when an offset reaches this score
  int round_max = 100;    ///< or when every offset was tested this many times
  int bad_score = 10;      ///< best score <= this disables prefetching
  int rr_entries = 256;   ///< recent-requests table size (direct-mapped)
  int degree = 1;         ///< prefetches per trigger when on

  void validate() const;
};

class BestOffsetPrefetcher final : public Prefetcher {
 public:
  explicit BestOffsetPrefetcher(const BopConfig& config = {});

  void on_demand(const DemandEvent& event,
                 std::vector<PrefetchRequest>& out) override;
  void on_fill(std::uint64_t local_block, bool was_prefetch, Cycle now) override;

  const char* name() const override { return "bop"; }
  std::uint64_t storage_bits() const override;

  int best_offset() const { return best_offset_; }
  bool prefetch_enabled() const { return prefetch_on_; }

  /// Checkpoint/restore: scores, round position, learned offset and the RR
  /// table. The candidate offset list is config-derived and rebuilt by the
  /// constructor, not serialized.
  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;

 private:
  void finish_round();

  BopConfig config_;
  /// Michaud's offset candidate list: positive offsets with prime factors
  /// {2,3,5} up to 256, which covers strides and common interleavings.
  std::vector<int> offsets_;
  std::vector<int> scores_;
  std::size_t test_index_ = 0;   ///< next offset to test (round-robin)
  int round_count_ = 0;
  int best_offset_ = 1;
  bool prefetch_on_ = false;

  std::vector<std::uint64_t> rr_table_;  ///< direct-mapped, stores block + 1
};

}  // namespace planaria::prefetch
