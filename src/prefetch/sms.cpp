#include "prefetch/sms.hpp"

#include <stdexcept>

namespace planaria::prefetch {

void SmsConfig::validate() const {
  if (agt_sets <= 0 || agt_ways <= 0 || pht_entries <= 0 ||
      generation_timeout == 0 || sweep_interval == 0) {
    throw std::invalid_argument("sms config: parameters must be positive");
  }
}

namespace {

SmsConfig validated(SmsConfig config) {
  config.validate();
  return config;
}

}  // namespace

SmsPrefetcher::SmsPrefetcher(const SmsConfig& config)
    : config_(validated(config)),
      agt_(static_cast<std::size_t>(config_.agt_sets), config_.agt_ways),
      pht_(static_cast<std::size_t>(config_.pht_entries)),
      pht_valid_(static_cast<std::size_t>(config_.pht_entries), false) {}

SegmentBitmap SmsPrefetcher::rotate(SegmentBitmap bm, int by) {
  const auto raw = bm.raw();
  const int n = SegmentBitmap::size();
  const int shift = ((by % n) + n) % n;
  const auto rotated =
      ((raw >> shift) | (raw << (n - shift))) & SegmentBitmap::mask();
  return SegmentBitmap(rotated);
}

void SmsPrefetcher::close_generation(const Generation& gen) {
  if (gen.bitmap.popcount() < 2) return;  // a lone trigger carries no pattern
  // {device, trigger offset} is the best PC-free signature available: every
  // generation a device opens at the same offset aliases into one slot — the
  // limitation this baseline exists to demonstrate. Stored trigger-relative.
  const int sig = signature(gen.device, gen.trigger_offset) %
                  static_cast<int>(pht_.size());
  pht_[static_cast<std::size_t>(sig)] = rotate(gen.bitmap, gen.trigger_offset);
  pht_valid_[static_cast<std::size_t>(sig)] = true;
}

void SmsPrefetcher::sweep(Cycle now) {
  agt_.evict_if(
      [&](PageNumber, const Generation& g) {
        return now > g.last_access &&
               now - g.last_access > config_.generation_timeout;
      },
      [&](PageNumber, Generation&& g) { close_generation(g); });
}

void SmsPrefetcher::on_demand(const DemandEvent& event,
                              std::vector<PrefetchRequest>& out) {
  if (++accesses_since_sweep_ >= config_.sweep_interval) {
    accesses_since_sweep_ = 0;
    sweep(event.now);
  }

  if (Generation* gen = agt_.find(event.page); gen != nullptr) {
    gen->bitmap.set(event.block_in_segment);
    gen->last_access = event.now;
    return;
  }

  // New generation: train-on-close bookkeeping plus predict-on-open issuing.
  Generation fresh;
  fresh.bitmap.set(event.block_in_segment);
  fresh.trigger_offset = event.block_in_segment;
  fresh.device = event.device;
  fresh.last_access = event.now;
  if (auto evicted = agt_.insert(event.page, fresh); evicted.has_value()) {
    close_generation(evicted->second);
  }

  if (event.sc_hit) return;
  const int sig = signature(event.device, event.block_in_segment) %
                  static_cast<int>(pht_.size());
  if (!pht_valid_[static_cast<std::size_t>(sig)]) return;
  const SegmentBitmap predicted =
      rotate(pht_[static_cast<std::size_t>(sig)], -event.block_in_segment);
  predicted.for_each_set([&](int block) {
    if (block == event.block_in_segment) return;
    out.push_back(PrefetchRequest{
        event.page * kBlocksPerSegment + static_cast<std::uint64_t>(block),
        cache::FillSource::kPrefetchOther});
  });
}

std::uint64_t SmsPrefetcher::storage_bits() const {
  // AGT: tag(28) + bitmap(16) + trigger(4) + time(20) + lru(3).
  // PHT: bitmap(16) + valid(1).
  return static_cast<std::uint64_t>(config_.agt_sets) * config_.agt_ways *
             (28 + 16 + 4 + 20 + 3) +
         static_cast<std::uint64_t>(config_.pht_entries) * 17;
}

void SmsPrefetcher::save_state(snapshot::Writer& w) const {
  w.tag(snapshot::tag4("SMS0"));
  agt_.save_state(w, [](snapshot::Writer& o, const Generation& g) {
    o.u16(static_cast<std::uint16_t>(g.bitmap.raw()));
    o.i64(g.trigger_offset);
    o.u8(static_cast<std::uint8_t>(g.device));
    o.u64(g.last_access);
  });
  w.u64(static_cast<std::uint64_t>(pht_.size()));
  for (std::size_t i = 0; i < pht_.size(); ++i) {
    w.b(pht_valid_[i]);
    w.u16(static_cast<std::uint16_t>(pht_[i].raw()));
  }
  w.u64(accesses_since_sweep_);
}

void SmsPrefetcher::load_state(snapshot::Reader& r) {
  r.expect_tag(snapshot::tag4("SMS0"));
  agt_.load_state(r, [](snapshot::Reader& i) {
    Generation g;
    g.bitmap = SegmentBitmap(i.u16());
    g.trigger_offset = static_cast<int>(i.i64());
    const std::uint8_t dev = i.u8();
    if (dev >= static_cast<std::uint8_t>(DeviceId::kCount)) {
      throw snapshot::SnapshotError("SMS generation device id out of range");
    }
    g.device = static_cast<DeviceId>(dev);
    g.last_access = i.u64();
    return g;
  });
  if (r.u64() != pht_.size()) {
    throw snapshot::SnapshotError("SMS PHT size mismatch");
  }
  for (std::size_t i = 0; i < pht_.size(); ++i) {
    pht_valid_[i] = r.b();
    pht_[i] = SegmentBitmap(r.u16());
  }
  accesses_since_sweep_ = r.u64();
}

}  // namespace planaria::prefetch
