// SMS-style spatial prefetcher (Somogyi et al., ISCA 2006), adapted to the
// memory side.
//
// Original SMS keys its Pattern History Table by a {PC, trigger-offset}
// signature. At the system cache there is no PC (the paper's Section 7:
// "it is expensive to transfer the PC from multiple cores to low-level
// cache"), so this adaptation uses the best PC-free proxy available:
// {device id, trigger offset}. That signature space is tiny (6 devices x 16
// offsets), so unrelated generations alias into the same pattern — exactly
// the failure mode that motivates SLP's page-number-keyed patterns. SMS here
// is a *didactic* baseline: it shows why "spatial pattern prefetching" alone
// does not transplant to the SC without the paper's PN-signature insight.
//
// Mechanism: a miss with no active generation starts one (records the
// trigger offset and consults the PHT); subsequent accesses accumulate the
// generation's bitmap; the generation ends when its page falls out of the
// Active Generation Table, at which point the bitmap — rotated so the
// trigger block is bit 0 — trains the PHT.
#pragma once

#include <cstdint>

#include "common/bitmap.hpp"
#include "common/set_table.hpp"
#include "prefetch/prefetcher.hpp"

namespace planaria::prefetch {

struct SmsConfig {
  int agt_sets = 32;
  int agt_ways = 8;      ///< 256 active generations
  int pht_entries = 128; ///< one per {device, trigger-offset} signature slot
  Cycle generation_timeout = 50000;
  Cycle sweep_interval = 64;

  void validate() const;
};

class SmsPrefetcher final : public Prefetcher {
 public:
  explicit SmsPrefetcher(const SmsConfig& config = {});

  void on_demand(const DemandEvent& event,
                 std::vector<PrefetchRequest>& out) override;
  const char* name() const override { return "sms"; }
  std::uint64_t storage_bits() const override;

  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;

 private:
  struct Generation {
    SegmentBitmap bitmap;
    int trigger_offset = 0;
    DeviceId device = DeviceId::kCpuBig;  ///< device that opened the generation
    Cycle last_access = 0;
  };

  static int signature(DeviceId device, int trigger_offset) {
    return (static_cast<int>(device) << 4) | trigger_offset;
  }

  /// Rotate so the trigger block becomes bit 0 (SMS's position-independent
  /// pattern encoding), and back.
  static SegmentBitmap rotate(SegmentBitmap bm, int by);

  void close_generation(const Generation& gen);
  void sweep(Cycle now);

  SmsConfig config_;
  SetAssocTable<PageNumber, Generation> agt_;
  std::vector<SegmentBitmap> pht_;
  std::vector<bool> pht_valid_;
  std::uint64_t accesses_since_sweep_ = 0;
};

}  // namespace planaria::prefetch
