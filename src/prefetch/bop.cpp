#include "prefetch/bop.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/assert.hpp"

namespace planaria::prefetch {

void BopConfig::validate() const {
  if (score_max <= 0 || round_max <= 0 || bad_score < 0 || rr_entries <= 0 ||
      degree <= 0) {
    throw std::invalid_argument("bop config: parameters must be positive");
  }
  if ((rr_entries & (rr_entries - 1)) != 0) {
    throw std::invalid_argument("bop config: rr_entries must be a power of two");
  }
}

namespace {

std::vector<int> michaud_offsets() {
  // All integers in [1, 256] whose prime factorization uses only 2, 3, 5.
  std::vector<int> offsets;
  for (int n = 1; n <= 256; ++n) {
    int m = n;
    for (int p : {2, 3, 5}) {
      while (m % p == 0) m /= p;
    }
    if (m == 1) offsets.push_back(n);
  }
  return offsets;
}

}  // namespace

BestOffsetPrefetcher::BestOffsetPrefetcher(const BopConfig& config)
    : config_(config), offsets_(michaud_offsets()),
      scores_(offsets_.size(), 0),
      rr_table_(static_cast<std::size_t>(config.rr_entries), 0) {
  config_.validate();
}

void BestOffsetPrefetcher::on_fill(std::uint64_t local_block, bool was_prefetch,
                                   Cycle) {
  // RR insertion per the paper: when a fetch of line X completes, insert
  // X - D so that a later trigger at X' = X - D + d scores offset d only if
  // the prefetch would have been issued early enough to cover the fetch.
  std::uint64_t base = local_block;
  if (was_prefetch) {
    if (local_block < static_cast<std::uint64_t>(best_offset_)) return;
    base = local_block - static_cast<std::uint64_t>(best_offset_);
  }
  const std::size_t idx =
      static_cast<std::size_t>(base) & (rr_table_.size() - 1);
  rr_table_[idx] = base + 1;  // +1 so that 0 means empty
}

void BestOffsetPrefetcher::finish_round() {
  const auto best = std::max_element(scores_.begin(), scores_.end());
  best_offset_ = offsets_[static_cast<std::size_t>(best - scores_.begin())];
  prefetch_on_ = *best > config_.bad_score;
  std::fill(scores_.begin(), scores_.end(), 0);
  round_count_ = 0;
  test_index_ = 0;
}

void BestOffsetPrefetcher::on_demand(const DemandEvent& event,
                                     std::vector<PrefetchRequest>& out) {
  // BOP triggers on demand-read misses and on first-use hits of prefetched
  // lines (which would have been misses without the prefetcher) — writes do
  // not trigger, as in the original paper's L2-read-miss attach point.
  if (event.type == AccessType::kWrite) return;
  if (event.sc_hit && !event.hit_was_prefetch) return;
  const std::uint64_t x = event.local_block;

  // Learning: test one candidate offset per trigger.
  const int d = offsets_[test_index_];
  bool round_finished = false;
  if (x >= static_cast<std::uint64_t>(d)) {
    const std::uint64_t wanted = x - static_cast<std::uint64_t>(d);
    const std::size_t idx =
        static_cast<std::size_t>(wanted) & (rr_table_.size() - 1);
    if (rr_table_[idx] == wanted + 1) {
      if (++scores_[test_index_] >= config_.score_max) {
        finish_round();  // resets test_index_; issue below uses the new offset
        round_finished = true;
      }
    }
  }
  if (!round_finished) {
    ++test_index_;
    if (test_index_ >= offsets_.size()) {
      test_index_ = 0;
      if (++round_count_ >= config_.round_max) finish_round();
    }
  }

  if (!prefetch_on_) return;
  std::uint64_t target = x;
  for (int i = 0; i < config_.degree; ++i) {
    target += static_cast<std::uint64_t>(best_offset_);
    out.push_back(PrefetchRequest{target, cache::FillSource::kPrefetchOther});
  }
}

std::uint64_t BestOffsetPrefetcher::storage_bits() const {
  // RR table: rr_entries x (tag ~ 12 bits). Scores: 52 x 6 bits (score_max
  // 31 fits in 5, round counters amortized). Best offset + state: ~16 bits.
  return static_cast<std::uint64_t>(config_.rr_entries) * 12 +
         offsets_.size() * 6 + 16;
}

void BestOffsetPrefetcher::save_state(snapshot::Writer& w) const {
  w.tag(snapshot::tag4("BOP0"));
  w.u64(static_cast<std::uint64_t>(scores_.size()));
  for (int s : scores_) w.u32(static_cast<std::uint32_t>(s));
  w.u64(static_cast<std::uint64_t>(test_index_));
  w.u32(static_cast<std::uint32_t>(round_count_));
  w.i64(best_offset_);
  w.b(prefetch_on_);
  w.u64(static_cast<std::uint64_t>(rr_table_.size()));
  for (std::uint64_t v : rr_table_) w.u64(v);
}

void BestOffsetPrefetcher::load_state(snapshot::Reader& r) {
  r.expect_tag(snapshot::tag4("BOP0"));
  if (r.u64() != scores_.size()) {
    throw snapshot::SnapshotError("BOP score table size mismatch");
  }
  for (int& s : scores_) s = static_cast<int>(r.u32());
  test_index_ = static_cast<std::size_t>(r.u64());
  if (test_index_ >= offsets_.size()) {
    throw snapshot::SnapshotError("BOP test index out of range");
  }
  round_count_ = static_cast<int>(r.u32());
  best_offset_ = static_cast<int>(r.i64());
  prefetch_on_ = r.b();
  if (r.u64() != rr_table_.size()) {
    throw snapshot::SnapshotError("BOP RR table size mismatch");
  }
  for (std::uint64_t& v : rr_table_) v = r.u64();
}

}  // namespace planaria::prefetch
