// Simple reference prefetchers: next-line and per-device stride.
//
// Not evaluated in the paper, but standard yardsticks: they bound what a
// trivial amount of state buys at the SC level, and the test suite uses them
// as well-understood behaviours to validate the simulator plumbing.
#pragma once

#include <cstdint>

#include "common/table.hpp"
#include "prefetch/prefetcher.hpp"

namespace planaria::prefetch {

/// Prefetches the next `degree` sequential blocks on every demand miss.
// lint: suppress(snapshot-missing) degree_ is a config constant; the base class no-op codec is exact
class NextLinePrefetcher final : public Prefetcher {
 public:
  explicit NextLinePrefetcher(int degree = 1);

  void on_demand(const DemandEvent& event,
                 std::vector<PrefetchRequest>& out) override;
  const char* name() const override { return "next-line"; }
  std::uint64_t storage_bits() const override { return 0; }

 private:
  int degree_;
};

/// Classic two-miss stride detector, keyed by device id — the closest thing
/// to a per-stream context that exists without a PC on the memory side.
class StridePrefetcher final : public Prefetcher {
 public:
  explicit StridePrefetcher(int degree = 2);

  void on_demand(const DemandEvent& event,
                 std::vector<PrefetchRequest>& out) override;
  const char* name() const override { return "stride"; }
  std::uint64_t storage_bits() const override;

  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;

 private:
  struct Stream {
    std::uint64_t last_block = 0;
    std::int64_t stride = 0;
    int confidence = 0;  ///< 0..3; issue at >= 2
    bool valid = false;
  };

  int degree_;
  Stream streams_[static_cast<int>(DeviceId::kCount)];
};

}  // namespace planaria::prefetch
