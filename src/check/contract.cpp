#include "check/contract.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace planaria::check {

namespace {

std::atomic<std::uint64_t> g_counts[kCategoryCount];
std::atomic<std::uint64_t> g_recoveries[kCategoryCount];
std::atomic<Mode> g_mode{Mode::kAbort};
std::atomic<Handler> g_handler{nullptr};
std::atomic<RecoveryHook> g_recovery_hooks[kCategoryCount];

/// The counting handler stays quiet after this many logged violations so a
/// fuzz run with a systematic bug does not drown its own output.
constexpr std::uint64_t kMaxLoggedViolations = 16;
std::atomic<std::uint64_t> g_logged{0};

void print_violation(const Violation& v) {
  std::fprintf(stderr,
               "planaria: contract violation [%s/%s]: %s\n  at %s:%d\n  %s\n",
               category_name(v.category), kind_name(v.kind),
               v.expr != nullptr ? v.expr : "", v.file != nullptr ? v.file : "?",
               v.line, v.message != nullptr ? v.message : "");
}

}  // namespace

const char* category_name(Category category) {
  switch (category) {
    case Category::kTableOccupancy: return "table-occupancy";
    case Category::kTimingMonotonicity: return "timing-monotonicity";
    case Category::kCoordinatorExclusivity: return "coordinator-exclusivity";
    case Category::kStorageBudget: return "storage-budget";
    case Category::kCount: break;
  }
  return "unknown";
}

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::kRequire: return "require";
    case Kind::kEnsure: return "ensure";
    case Kind::kInvariant: return "invariant";
  }
  return "unknown";
}

void set_mode(Mode mode) { g_mode.store(mode, std::memory_order_relaxed); }

Mode mode() { return g_mode.load(std::memory_order_relaxed); }

void set_handler(Handler handler) {
  g_handler.store(handler, std::memory_order_relaxed);
}

Handler handler() { return g_handler.load(std::memory_order_relaxed); }

void set_recovery_hook(Category category, RecoveryHook hook) {
  const auto i = static_cast<int>(category);
  if (i < 0 || i >= kCategoryCount) return;
  g_recovery_hooks[i].store(hook, std::memory_order_relaxed);
}

RecoveryHook recovery_hook(Category category) {
  const auto i = static_cast<int>(category);
  if (i < 0 || i >= kCategoryCount) return nullptr;
  return g_recovery_hooks[i].load(std::memory_order_relaxed);
}

CountingScope::CountingScope() : saved_mode_(mode()), saved_handler_(handler()) {
  set_handler(nullptr);
  set_mode(Mode::kCount);
}

CountingScope::~CountingScope() {
  set_mode(saved_mode_);
  set_handler(saved_handler_);
}

RecoveryScope::RecoveryScope()
    : saved_mode_(mode()), saved_handler_(handler()) {
  set_handler(nullptr);
  set_mode(Mode::kRecover);
}

RecoveryScope::~RecoveryScope() {
  set_mode(saved_mode_);
  set_handler(saved_handler_);
}

std::uint64_t violation_count(Category category) {
  const auto i = static_cast<int>(category);
  if (i < 0 || i >= kCategoryCount) return 0;
  return g_counts[i].load(std::memory_order_relaxed);
}

std::uint64_t total_violations() {
  std::uint64_t total = 0;
  for (const auto& c : g_counts) total += c.load(std::memory_order_relaxed);
  return total;
}

void reset_violations() {
  for (auto& c : g_counts) c.store(0, std::memory_order_relaxed);
  g_logged.store(0, std::memory_order_relaxed);
}

std::uint64_t recovery_count(Category category) {
  const auto i = static_cast<int>(category);
  if (i < 0 || i >= kCategoryCount) return 0;
  return g_recoveries[i].load(std::memory_order_relaxed);
}

std::uint64_t total_recoveries() {
  std::uint64_t total = 0;
  for (const auto& c : g_recoveries) total += c.load(std::memory_order_relaxed);
  return total;
}

void reset_recoveries() {
  for (auto& c : g_recoveries) c.store(0, std::memory_order_relaxed);
}

void export_violations(StatSet& stats) {
  for (int i = 0; i < kCategoryCount; ++i) {
    const auto category = static_cast<Category>(i);
    Counter& c = stats.counter(std::string("contract.violations.") +
                               category_name(category));
    c.reset();
    c.add(violation_count(category));
  }
}

void export_recoveries(StatSet& stats) {
  for (int i = 0; i < kCategoryCount; ++i) {
    const auto category = static_cast<Category>(i);
    Counter& c = stats.counter(std::string("contract.recoveries.") +
                               category_name(category));
    c.reset();
    c.add(recovery_count(category));
  }
}

namespace detail {

void report(Category category, Kind kind, const char* expr, const char* file,
            int line, const char* message) {
  const auto i = static_cast<int>(category);
  if (i >= 0 && i < kCategoryCount) {
    g_counts[i].fetch_add(1, std::memory_order_relaxed);
  }

  const Violation v{category, kind, expr, file, line, message};
  if (Handler h = handler(); h != nullptr) {
    h(v);
    return;
  }
  const Mode m = mode();
  if (m == Mode::kRecover) {
    if (i >= 0 && i < kCategoryCount) {
      g_recoveries[i].fetch_add(1, std::memory_order_relaxed);
      if (RecoveryHook hook =
              g_recovery_hooks[i].load(std::memory_order_relaxed);
          hook != nullptr) {
        hook(v);
      }
    }
    if (g_logged.fetch_add(1, std::memory_order_relaxed) <
        kMaxLoggedViolations) {
      print_violation(v);
    }
    return;
  }
  if (m == Mode::kCount) {
    if (g_logged.fetch_add(1, std::memory_order_relaxed) <
        kMaxLoggedViolations) {
      print_violation(v);
    }
    return;
  }
  print_violation(v);
  std::abort();
}

}  // namespace detail
}  // namespace planaria::check
