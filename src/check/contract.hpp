// Invariant contract layer.
//
// The paper's correctness argument rests on structural invariants the
// simulator previously only spot-checked with PLANARIA_ASSERT: bounded table
// occupancy in the FT -> AT -> PHT pipeline, monotone simulated time,
// "parallel training, serial issuing" (exactly one sub-prefetcher disposition
// per trigger), and bit-exact hardware storage budgets. This header gives
// those checks names, categories, and a pluggable response:
//
//   PLANARIA_REQUIRE(category, expr)    — precondition at a subsystem boundary
//   PLANARIA_ENSURE(category, expr)     — postcondition before returning
//   PLANARIA_INVARIANT(category, expr)  — structural property mid-operation
//
// All three stay enabled in release builds (predicates on hot paths are
// integer compares, same policy as PLANARIA_ASSERT). The default handler
// prints and aborts; fuzz/audit runs install the counting handler instead,
// which logs the first few violations and keeps per-category counters that
// `planaria-audit` and tests inspect. Counters are exported through
// common/stats so a violation tally can ride along any stat dump.
//
// Concurrency contract: the parallel sweep engine (common/thread_pool,
// sim/experiment) fires contracts from many threads at once, and this layer
// is the only cross-thread mutable state in the pipeline. The per-category
// counters, mode, and handler are std::atomic — concurrent violations are
// counted exactly (tests/test_parallel.cpp proves it under TSan) — and a
// custom Handler must itself be thread-safe. CountingScope saves/restores
// process-global state, so scopes belong at the orchestration level (a test
// body, an audit stage), never inside concurrently executing tasks.
#pragma once

#include <cstdint>

#include "common/stats.hpp"

namespace planaria::check {

/// Contract families, mirroring the invariant classes the paper's design
/// leans on. Index bounds and lifecycle checks map onto the nearest family
/// (a way index is table occupancy; "step after finish" is a time ordering).
enum class Category : std::uint8_t {
  kTableOccupancy = 0,      ///< entry counts/indices within configured bounds
  kTimingMonotonicity,      ///< simulated clocks and arrivals never run backward
  kCoordinatorExclusivity,  ///< exactly one SLP/TLP disposition per trigger
  kStorageBudget,           ///< bit-exact accounting matches hardware budget
  kCount,
};

inline constexpr int kCategoryCount = static_cast<int>(Category::kCount);

const char* category_name(Category category);

enum class Kind : std::uint8_t { kRequire = 0, kEnsure, kInvariant };

const char* kind_name(Kind kind);

/// Everything a handler learns about one failed contract.
struct Violation {
  Category category = Category::kTableOccupancy;
  Kind kind = Kind::kRequire;
  const char* expr = nullptr;
  const char* file = nullptr;
  int line = 0;
  const char* message = nullptr;  ///< optional, may be null
};

/// What happens after the per-category counter is bumped.
enum class Mode : std::uint8_t {
  kAbort = 0,  ///< print and abort (default; a violation is a bug)
  kCount,      ///< log the first few, keep counting, continue (fuzz/audit)
};

void set_mode(Mode mode);
Mode mode();

/// A custom handler overrides the mode entirely (counters still update
/// first). Pass nullptr to fall back to the mode-selected behaviour. The
/// handler may return in kCount-style use; returning is safe at every
/// contract site.
using Handler = void (*)(const Violation&);
void set_handler(Handler handler);
Handler handler();

/// Scoped arming of the counting mode, restoring the previous mode/handler on
/// destruction; used by the audit replay and the contract tests.
class CountingScope {
 public:
  CountingScope();
  ~CountingScope();
  CountingScope(const CountingScope&) = delete;
  CountingScope& operator=(const CountingScope&) = delete;

 private:
  Mode saved_mode_;
  Handler saved_handler_;
};

std::uint64_t violation_count(Category category);
std::uint64_t total_violations();
void reset_violations();

/// Mirrors the per-category counters into `stats` as absolute values under
/// "contract.violations.<category>", so a stat dump carries the tally.
void export_violations(StatSet& stats);

namespace detail {

void report(Category category, Kind kind, const char* expr, const char* file,
            int line, const char* message);

}  // namespace detail
}  // namespace planaria::check

#define PLANARIA_CONTRACT_CHECK_(category_, kind_, expr_, msg_)               \
  ((expr_) ? static_cast<void>(0)                                             \
           : ::planaria::check::detail::report(                               \
                 ::planaria::check::Category::category_,                      \
                 ::planaria::check::Kind::kind_, #expr_, __FILE__, __LINE__,  \
                 (msg_)))

#define PLANARIA_REQUIRE(category, expr) \
  PLANARIA_CONTRACT_CHECK_(category, kRequire, expr, nullptr)
#define PLANARIA_REQUIRE_MSG(category, expr, msg) \
  PLANARIA_CONTRACT_CHECK_(category, kRequire, expr, (msg))

#define PLANARIA_ENSURE(category, expr) \
  PLANARIA_CONTRACT_CHECK_(category, kEnsure, expr, nullptr)
#define PLANARIA_ENSURE_MSG(category, expr, msg) \
  PLANARIA_CONTRACT_CHECK_(category, kEnsure, expr, (msg))

#define PLANARIA_INVARIANT(category, expr) \
  PLANARIA_CONTRACT_CHECK_(category, kInvariant, expr, nullptr)
#define PLANARIA_INVARIANT_MSG(category, expr, msg) \
  PLANARIA_CONTRACT_CHECK_(category, kInvariant, expr, (msg))
