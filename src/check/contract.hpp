// Invariant contract layer.
//
// The paper's correctness argument rests on structural invariants the
// simulator previously only spot-checked with PLANARIA_ASSERT: bounded table
// occupancy in the FT -> AT -> PHT pipeline, monotone simulated time,
// "parallel training, serial issuing" (exactly one sub-prefetcher disposition
// per trigger), and bit-exact hardware storage budgets. This header gives
// those checks names, categories, and a pluggable response:
//
//   PLANARIA_REQUIRE(category, expr)    — precondition at a subsystem boundary
//   PLANARIA_ENSURE(category, expr)     — postcondition before returning
//   PLANARIA_INVARIANT(category, expr)  — structural property mid-operation
//
// All three stay enabled in release builds (predicates on hot paths are
// integer compares, same policy as PLANARIA_ASSERT). The default handler
// prints and aborts; fuzz/audit runs install the counting handler instead,
// which logs the first few violations and keeps per-category counters that
// `planaria-audit` and tests inspect. A third policy, kRecover, additionally
// tallies a per-category recovery counter and notifies an optional recovery
// hook, then returns so the call site's repair path runs (clamp a regressed
// clock, drop a corrupted table entry, skip a malformed request) — this is
// the graceful-degradation mode the fault-injection harness (src/fault,
// DESIGN.md §10) runs under. Counters are exported through common/stats so a
// violation tally can ride along any stat dump.
//
// Concurrency contract: the parallel sweep engine (common/thread_pool,
// sim/experiment) fires contracts from many threads at once, and this layer
// is the only cross-thread mutable state in the pipeline. The per-category
// counters, mode, and handler are std::atomic — concurrent violations are
// counted exactly (tests/test_parallel.cpp proves it under TSan) — and a
// custom Handler must itself be thread-safe. CountingScope saves/restores
// process-global state, so scopes belong at the orchestration level (a test
// body, an audit stage), never inside concurrently executing tasks.
#pragma once

#include <cstdint>

#include "common/stats.hpp"

namespace planaria::check {

/// Contract families, mirroring the invariant classes the paper's design
/// leans on. Index bounds and lifecycle checks map onto the nearest family
/// (a way index is table occupancy; "step after finish" is a time ordering).
enum class Category : std::uint8_t {
  kTableOccupancy = 0,      ///< entry counts/indices within configured bounds
  kTimingMonotonicity,      ///< simulated clocks and arrivals never run backward
  kCoordinatorExclusivity,  ///< exactly one SLP/TLP disposition per trigger
  kStorageBudget,           ///< bit-exact accounting matches hardware budget
  kCount,
};

inline constexpr int kCategoryCount = static_cast<int>(Category::kCount);

const char* category_name(Category category);

enum class Kind : std::uint8_t { kRequire = 0, kEnsure, kInvariant };

const char* kind_name(Kind kind);

/// Everything a handler learns about one failed contract.
struct Violation {
  Category category = Category::kTableOccupancy;
  Kind kind = Kind::kRequire;
  const char* expr = nullptr;
  const char* file = nullptr;
  int line = 0;
  const char* message = nullptr;  ///< optional, may be null
};

/// What happens after the per-category counter is bumped.
enum class Mode : std::uint8_t {
  kAbort = 0,  ///< print and abort (default; a violation is a bug)
  kCount,      ///< log the first few, keep counting, continue (fuzz/audit)
  kRecover,    ///< count, bump the recovery tally, notify the per-category
               ///< recovery hook, continue — the call site repairs locally
               ///< (clamp the clock, drop the entry, skip the request)
};

void set_mode(Mode mode);
Mode mode();

/// A custom handler overrides the mode entirely (counters still update
/// first). Pass nullptr to fall back to the mode-selected behaviour. The
/// handler may return in kCount-style use; returning is safe at every
/// contract site.
using Handler = void (*)(const Violation&);
void set_handler(Handler handler);
Handler handler();

/// Observability hook for kRecover mode: called once per recovered violation
/// of its category, after the violation and recovery counters update. The
/// hook must be thread-safe (violations fire from pooled channel tasks) and
/// must not throw. Structural repair itself happens at the call site, which
/// is the only place with access to the offending entry; the hook exists so
/// harnesses can trace or veto-log recoveries centrally.
using RecoveryHook = void (*)(const Violation&);
void set_recovery_hook(Category category, RecoveryHook hook);
RecoveryHook recovery_hook(Category category);

/// Scoped arming of the counting mode, restoring the previous mode/handler on
/// destruction; used by the audit replay and the contract tests.
class CountingScope {
 public:
  CountingScope();
  ~CountingScope();
  CountingScope(const CountingScope&) = delete;
  CountingScope& operator=(const CountingScope&) = delete;

 private:
  Mode saved_mode_;
  Handler saved_handler_;
};

/// Scoped arming of kRecover — violations are counted, recoveries tallied,
/// and execution continues through the call sites' repair paths. Used by the
/// audit chaos stage and the fault-injection tests.
class RecoveryScope {
 public:
  RecoveryScope();
  ~RecoveryScope();
  RecoveryScope(const RecoveryScope&) = delete;
  RecoveryScope& operator=(const RecoveryScope&) = delete;

 private:
  Mode saved_mode_;
  Handler saved_handler_;
};

std::uint64_t violation_count(Category category);
std::uint64_t total_violations();
void reset_violations();

/// Recoveries performed per category (kRecover mode only). A healthy
/// fault-injection run keeps recovery_count == violation_count for every
/// category the armed fault class manifests through.
std::uint64_t recovery_count(Category category);
std::uint64_t total_recoveries();
void reset_recoveries();

/// Mirrors the per-category counters into `stats` as absolute values under
/// "contract.violations.<category>", so a stat dump carries the tally.
void export_violations(StatSet& stats);

/// Same for recoveries, under "contract.recoveries.<category>".
void export_recoveries(StatSet& stats);

namespace detail {

void report(Category category, Kind kind, const char* expr, const char* file,
            int line, const char* message);

}  // namespace detail
}  // namespace planaria::check

#define PLANARIA_CONTRACT_CHECK_(category_, kind_, expr_, msg_)               \
  ((expr_) ? static_cast<void>(0)                                             \
           : ::planaria::check::detail::report(                               \
                 ::planaria::check::Category::category_,                      \
                 ::planaria::check::Kind::kind_, #expr_, __FILE__, __LINE__,  \
                 (msg_)))

#define PLANARIA_REQUIRE(category, expr) \
  PLANARIA_CONTRACT_CHECK_(category, kRequire, expr, nullptr)
#define PLANARIA_REQUIRE_MSG(category, expr, msg) \
  PLANARIA_CONTRACT_CHECK_(category, kRequire, expr, (msg))

#define PLANARIA_ENSURE(category, expr) \
  PLANARIA_CONTRACT_CHECK_(category, kEnsure, expr, nullptr)
#define PLANARIA_ENSURE_MSG(category, expr, msg) \
  PLANARIA_CONTRACT_CHECK_(category, kEnsure, expr, (msg))

#define PLANARIA_INVARIANT(category, expr) \
  PLANARIA_CONTRACT_CHECK_(category, kInvariant, expr, nullptr)
#define PLANARIA_INVARIANT_MSG(category, expr, msg) \
  PLANARIA_CONTRACT_CHECK_(category, kInvariant, expr, (msg))
