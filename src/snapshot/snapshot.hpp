// Versioned, CRC32-protected binary snapshot format (checkpoint/restore).
//
// A snapshot is a flat little-endian byte stream assembled by a Writer and
// decoded by a Reader. Every multi-byte integer is serialized byte-by-byte
// (no memcpy of structs), so the format is independent of host endianness,
// struct padding and ABI — a snapshot taken on one platform restores on any
// other. Doubles travel as their IEEE-754 bit patterns, which is what makes
// restored results *bit*-identical rather than merely close.
//
// On disk the payload is wrapped in an envelope:
//
//   offset  size  field
//   0       8     magic "PLNSNAP1"
//   8       4     format version (kFormatVersion)
//   12      8     payload length in bytes
//   20      4     CRC32 (IEEE 802.3, reflected) of the payload
//   24      n     payload
//
// read_file() validates all four header fields before handing out a single
// payload byte; any mismatch (truncation, bit rot, wrong version, alien file)
// raises SnapshotError, never undefined behaviour. write_file() is atomic
// AND durable (src/io VFS): the envelope is written to "<path>.tmp", fsynced,
// renamed into place, and the parent directory is fsynced — so a crash or
// power cut mid-checkpoint can lose the new snapshot but never corrupt the
// old one and never leave a zero-length directory entry.
//
// Structure errors inside the payload are caught two ways: the Reader throws
// on any read past the end, and components bracket their sections with
// fourcc tags (expect_tag) so a desynchronized decode fails fast at a section
// boundary instead of misinterpreting another component's bytes.
//
// Versioning rule (DESIGN.md §11): any change to what a component serializes
// must bump kFormatVersion. Old snapshots are then rejected cleanly (a
// checkpointed run falls back to cold start); there is no in-place migration.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace planaria::snapshot {

/// Raised on any malformed snapshot: truncated buffer, CRC mismatch, bad
/// magic/version, tag desynchronization, or impossible decoded values.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what)
      : std::runtime_error("snapshot: " + what) {}
};

/// Bump on any serialization layout change (see versioning rule above).
inline constexpr std::uint32_t kFormatVersion = 1;

/// Section marker built from four printable characters, e.g. tag4("SLP0").
constexpr std::uint32_t tag4(const char (&s)[5]) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(s[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[3])) << 24;
}

/// CRC32 (IEEE 802.3 polynomial, reflected) over `size` bytes.
std::uint32_t crc32(const void* data, std::size_t size);

/// Append-only little-endian encoder. Never fails; the buffer grows as
/// needed.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { put(v, 2); }
  void u32(std::uint32_t v) { put(v, 4); }
  void u64(std::uint64_t v) { put(v, 8); }
  void i64(std::int64_t v) { put(static_cast<std::uint64_t>(v), 8); }
  void b(bool v) { u8(v ? 1 : 0); }
  /// IEEE-754 bit pattern; round-trips every value including NaN payloads.
  void f64(double v);
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void tag(std::uint32_t t) { u32(t); }

  /// Opens a length-prefixed section: writes `t` plus a u64 placeholder that
  /// the matching end_section() backpatches with the enclosed byte count.
  /// Length framing lets a reader bound one component's bytes — skip a
  /// section it cannot decode, or verify a decode consumed exactly its
  /// section — which is what keeps one damaged session record in the serve
  /// envelope from desynchronizing every record after it. Sections nest;
  /// close them in LIFO order.
  std::size_t begin_section(std::uint32_t t) {
    tag(t);
    u64(0);
    return buf_.size();
  }

  /// Closes the section opened by the begin_section() that returned `token`,
  /// patching its length prefix in place.
  void end_section(std::size_t token);

  const std::vector<std::uint8_t>& buffer() const { return buf_; }

 private:
  void put(std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian decoder over a byte span it does not own.
/// Every accessor throws SnapshotError instead of reading past the end.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit Reader(const std::vector<std::uint8_t>& buf)
      : Reader(buf.data(), buf.size()) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(get(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(get(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(get(4)); }
  std::uint64_t u64() { return get(8); }
  std::int64_t i64() { return static_cast<std::int64_t>(get(8)); }
  bool b();
  double f64();
  std::string str();

  /// Consumes a tag and requires it to equal `expected` — the payload-level
  /// framing check that catches desynchronized or reordered sections.
  void expect_tag(std::uint32_t expected);

  /// Consumes the tag + length prefix written by Writer::begin_section and
  /// returns the section's byte length, after checking the length fits in
  /// the remaining buffer (an over-long prefix is corruption, not a request
  /// to read past the end). Pair with position() to verify the decode
  /// consumed exactly the section, or with skip() to step over it.
  std::uint64_t enter_section(std::uint32_t expected);

  /// Skips `bytes` without decoding them (e.g. a section whose tag version
  /// this reader does not understand).
  void skip(std::uint64_t bytes);

  /// Current decode offset into the payload; section consumers compare
  /// before/after against an enter_section() length.
  std::size_t position() const { return pos_; }

  std::size_t remaining() const { return size_ - pos_; }
  bool at_end() const { return pos_ == size_; }
  /// Rejects the snapshot with a decode error. Generic container templates
  /// (common/table.hpp, common/set_table.hpp) call this instead of naming
  /// SnapshotError so they stay independent of the snapshot module.
  [[noreturn]] void fail(const std::string& what) const {
    throw SnapshotError(what);
  }
  /// Trailing unread bytes mean the decode went out of sync somewhere.
  void require_end() const;

 private:
  std::uint64_t get(int bytes);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Serialization interface for stateful pipeline components. save_state must
/// write a byte-stable encoding: serialize -> deserialize -> serialize yields
/// the identical buffer (tests/test_snapshot.cpp holds every implementor to
/// this), which requires emitting unordered containers in a canonical order.
class Snapshottable {
 public:
  virtual ~Snapshottable() = default;
  virtual void save_state(Writer& w) const = 0;
  /// Restores from `r`, throwing SnapshotError on malformed input. A throw
  /// may leave the object partially updated; callers discard it and rebuild
  /// (the checkpoint recovery path constructs a fresh Simulator per attempt).
  virtual void load_state(Reader& r) = 0;
};

/// Wraps `payload` in the envelope and writes it atomically and durably
/// through the src/io VFS: the bytes land in "<path>.tmp", are fsynced,
/// renamed over `path`, and the parent directory entry is fsynced — so
/// `path` always holds either the previous complete snapshot or the new
/// complete snapshot, even across a power cut. Throws SnapshotError on any
/// filesystem failure (real or shim-injected).
void write_file(const std::string& path, const std::vector<std::uint8_t>& payload);

/// Reads and validates an envelope; returns the payload. Throws SnapshotError
/// on open failure, short file, bad magic, version mismatch, length mismatch
/// or CRC mismatch.
std::vector<std::uint8_t> read_file(const std::string& path);

}  // namespace planaria::snapshot
